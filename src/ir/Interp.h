//===- ir/Interp.h - Reference interpreter for the loop IR -----*- C++ -*-===//
//
// Executes a LoopFunction directly over a Memory image with strict scalar
// (iteration-ordered) semantics. This is both the golden reference the
// generated programs are checked against and the substrate the Pin-like
// loop profiler (src/profile) observes through the Observer interface.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_IR_INTERP_H
#define FLEXVEC_IR_INTERP_H

#include "ir/IR.h"
#include "memory/Memory.h"

#include <cstdint>
#include <vector>

namespace flexvec {
namespace ir {

/// Runtime bindings for one loop execution: scalar initial values (bit
/// patterns for floats) and array base addresses in the Memory image.
struct Bindings {
  std::vector<int64_t> ScalarValues;
  std::vector<uint64_t> ArrayBases;

  static Bindings forFunction(const LoopFunction &F) {
    Bindings B;
    B.ScalarValues.resize(F.scalars().size(), 0);
    B.ArrayBases.resize(F.arrays().size(), 0);
    return B;
  }

  int64_t getInt(int ScalarId) const { return ScalarValues[ScalarId]; }
  void setInt(int ScalarId, int64_t V) { ScalarValues[ScalarId] = V; }
  double getFloat(ElemType Ty, int ScalarId) const;
  void setFloat(ElemType Ty, int ScalarId, double V);
};

/// Observation hooks for profiling. Default implementations do nothing.
class Observer {
public:
  virtual ~Observer();
  virtual void onIterationStart(int64_t Iter) { (void)Iter; }
  /// Fires after a scalar assignment executes. \p Old and \p New are raw
  /// (bit-pattern) values.
  virtual void onScalarAssign(const Stmt *S, int64_t Iter, int64_t Old,
                              int64_t New) {
    (void)S;
    (void)Iter;
    (void)Old;
    (void)New;
  }
  virtual void onArrayLoad(int ArrayId, int64_t Index, int64_t Iter) {
    (void)ArrayId;
    (void)Index;
    (void)Iter;
  }
  virtual void onArrayStore(const Stmt *S, int64_t Index, int64_t Iter) {
    (void)S;
    (void)Index;
    (void)Iter;
  }
  virtual void onBreak(const Stmt *S, int64_t Iter) {
    (void)S;
    (void)Iter;
  }
};

/// Result of one interpreted execution.
struct InterpResult {
  int64_t IterationsExecuted = 0;
  bool BrokeEarly = false;
  /// An array access touched unmapped memory and execution stopped there.
  /// Hand-written loops never fault, but generated/shrunk candidates can
  /// index arbitrarily far out of bounds; the interpreter must report
  /// that, not abort the process.
  bool Faulted = false;
  uint64_t FaultAddr = 0;
};

/// The interpreter. Integer arithmetic wraps at the expression's element
/// width (matching the vector unit); floating point is computed at the
/// element precision.
class Interpreter {
public:
  explicit Interpreter(mem::Memory &M) : M(M) {}

  InterpResult run(const LoopFunction &F, Bindings &B,
                   Observer *Obs = nullptr);

private:
  struct Frame;
  int64_t evalInt(const Frame &Fr, const Expr *E);
  double evalFloat(const Frame &Fr, const Expr *E);
  /// Evaluates any expression to a raw 64-bit value (float → bit pattern).
  int64_t evalRaw(const Frame &Fr, const Expr *E);

  /// Checked element access: on an unmapped address, latches the fault and
  /// returns 0 (loads) or drops the store. Evaluation unwinds at the next
  /// statement boundary.
  int64_t loadElem(uint64_t Addr, uint64_t Size);
  void storeElem(uint64_t Addr, int64_t Raw, uint64_t Size);

  /// Executes a statement list; returns false if a break fired or a memory
  /// fault latched.
  bool execStmts(Frame &Fr, const std::vector<Stmt *> &Stmts);

  mem::Memory &M;
  bool Faulted = false;
  uint64_t FaultAddr = 0;
};

} // namespace ir
} // namespace flexvec

#endif // FLEXVEC_IR_INTERP_H
