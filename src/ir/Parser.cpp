//===- ir/Parser.cpp ------------------------------------------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <vector>

using namespace flexvec;
using namespace flexvec::ir;
using isa::CmpKind;
using isa::ElemType;

namespace {

enum class TokKind {
  Ident,
  Number,
  Float,
  Punct, ///< Single or double character punctuation, in Text.
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  int Line = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) { advance(); }

  const Token &peek() const { return Cur; }

  Token take() {
    Token T = Cur;
    advance();
    return T;
  }

  std::string Error;

private:
  void advance() {
    // Skip whitespace and // comments.
    while (Pos < Src.size()) {
      if (Src[Pos] == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(Src[Pos]))) {
        ++Pos;
      } else if (Src[Pos] == '/' && Pos + 1 < Src.size() &&
                 Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
    Cur = Token();
    Cur.Line = Line;
    if (Pos >= Src.size())
      return;

    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Cur.Kind = TokKind::Ident;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Src.size() &&
         std::isdigit(static_cast<unsigned char>(Src[Pos + 1])))) {
      size_t Start = Pos;
      if (C == '-')
        ++Pos;
      bool IsFloat = false;
      while (Pos < Src.size() &&
             (std::isdigit(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '.')) {
        IsFloat |= Src[Pos] == '.';
        ++Pos;
      }
      // Optional exponent ([eE][+-]?digits), so %.17g reproducer output
      // like 9.9999999999999995e-08 lexes back as one FLOAT token.
      if (Pos < Src.size() && (Src[Pos] == 'e' || Src[Pos] == 'E')) {
        size_t E = Pos + 1;
        if (E < Src.size() && (Src[E] == '+' || Src[E] == '-'))
          ++E;
        if (E < Src.size() && std::isdigit(static_cast<unsigned char>(Src[E]))) {
          Pos = E;
          while (Pos < Src.size() &&
                 std::isdigit(static_cast<unsigned char>(Src[Pos])))
            ++Pos;
          IsFloat = true;
        }
      }
      std::string Text = Src.substr(Start, Pos - Start);
      if (IsFloat) {
        Cur.Kind = TokKind::Float;
        Cur.FloatValue = std::stod(Text);
      } else {
        Cur.Kind = TokKind::Number;
        Cur.IntValue = std::stoll(Text);
      }
      Cur.Text = Text;
      return;
    }
    // Two-character punctuation first.
    static const char *Twos[] = {"==", "!=", "<=", ">=", "&&", "[]"};
    for (const char *Two : Twos) {
      if (Src.compare(Pos, 2, Two) == 0) {
        Cur.Kind = TokKind::Punct;
        Cur.Text = Two;
        Pos += 2;
        return;
      }
    }
    Cur.Kind = TokKind::Punct;
    Cur.Text = std::string(1, C);
    ++Pos;
  }

  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
  Token Cur;
};

class Parser {
public:
  explicit Parser(const std::string &Source) : Lex(Source) {}

  ParseResult run() {
    ParseResult Result;
    if (!parseHeader()) {
      Result.Error = Error;
      return Result;
    }
    std::vector<Stmt *> Body;
    if (!parseBlock(Body)) {
      Result.Error = Error;
      return Result;
    }
    if (Lex.peek().Kind != TokKind::End) {
      fail("trailing input after the loop body");
      Result.Error = Error;
      return Result;
    }
    if (F->tripCountScalar() < 0) {
      Result.Error = "no parameter is marked 'trip'";
      return Result;
    }
    F->setBody(Body);
    Result.F = std::move(F);
    return Result;
  }

private:
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(Lex.peek().Line) + ": " + Msg;
    return false;
  }

  bool expectPunct(const std::string &P) {
    if (Lex.peek().Kind == TokKind::Punct && Lex.peek().Text == P) {
      Lex.take();
      return true;
    }
    return fail("expected '" + P + "', found '" + Lex.peek().Text + "'");
  }

  bool expectIdent(const std::string &I) {
    if (Lex.peek().Kind == TokKind::Ident && Lex.peek().Text == I) {
      Lex.take();
      return true;
    }
    return fail("expected '" + I + "', found '" + Lex.peek().Text + "'");
  }

  bool isPunct(const std::string &P) {
    return Lex.peek().Kind == TokKind::Punct && Lex.peek().Text == P;
  }

  bool isIdent(const std::string &I) {
    return Lex.peek().Kind == TokKind::Ident && Lex.peek().Text == I;
  }

  bool parseType(ElemType &Ty) {
    static const std::map<std::string, ElemType> Types = {
        {"i32", ElemType::I32},
        {"i64", ElemType::I64},
        {"f32", ElemType::F32},
        {"f64", ElemType::F64},
    };
    if (Lex.peek().Kind != TokKind::Ident)
      return fail("expected a type");
    auto It = Types.find(Lex.peek().Text);
    if (It == Types.end())
      return fail("unknown type '" + Lex.peek().Text + "'");
    Ty = It->second;
    Lex.take();
    return true;
  }

  bool parseHeader() {
    if (!expectIdent("loop"))
      return false;
    if (Lex.peek().Kind != TokKind::Ident)
      return fail("expected a loop name");
    F = std::make_unique<LoopFunction>(Lex.take().Text);
    if (!expectPunct("("))
      return false;
    while (true) {
      ElemType Ty = ElemType::I32;
      if (!parseType(Ty))
        return false;
      if (Lex.peek().Kind != TokKind::Ident)
        return fail("expected a parameter name");
      std::string Name = Lex.take().Text;
      if (Name == "i")
        return fail("'i' is reserved for the induction variable");

      bool IsArray = false, LiveOut = false, ReadOnly = false, Trip = false;
      if (isPunct("[]")) {
        Lex.take();
        IsArray = true;
      }
      while (Lex.peek().Kind == TokKind::Ident &&
             (isIdent("liveout") || isIdent("readonly") || isIdent("trip"))) {
        std::string Attr = Lex.take().Text;
        LiveOut |= Attr == "liveout";
        ReadOnly |= Attr == "readonly";
        Trip |= Attr == "trip";
      }
      if (IsArray) {
        if (LiveOut || Trip)
          return fail("array parameters cannot be liveout/trip");
        Arrays[Name] = F->addArray(Name, Ty, ReadOnly);
      } else {
        if (ReadOnly)
          return fail("'readonly' applies to arrays");
        int Id = F->addScalar(Name, Ty, LiveOut);
        Scalars[Name] = Id;
        if (Trip)
          F->setTripCountScalar(Id);
      }
      if (isPunct(",")) {
        Lex.take();
        continue;
      }
      break;
    }
    return expectPunct(")");
  }

  bool parseBlock(std::vector<Stmt *> &Out) {
    if (!expectPunct("{"))
      return false;
    while (!isPunct("}")) {
      if (Lex.peek().Kind == TokKind::End)
        return fail("unterminated block");
      Stmt *S = parseStmt();
      if (!S)
        return false;
      Out.push_back(S);
    }
    Lex.take(); // '}'
    return true;
  }

  Stmt *parseStmt() {
    if (isIdent("break")) {
      Lex.take();
      if (!expectPunct(";"))
        return nullptr;
      return F->makeBreak();
    }
    if (isIdent("if")) {
      Lex.take();
      if (!expectPunct("("))
        return nullptr;
      const Expr *Cond = parseExpr();
      if (!Cond)
        return nullptr;
      if (!Cond->isBool()) {
        fail("if condition must be a comparison");
        return nullptr;
      }
      if (!expectPunct(")"))
        return nullptr;
      // Shell first so statement ids follow source order.
      Stmt *If = F->makeIfShell(Cond);
      std::vector<Stmt *> Then;
      if (!parseBlock(Then))
        return nullptr;
      for (Stmt *S : Then)
        F->addThen(If, S);
      if (isIdent("else")) {
        Lex.take();
        std::vector<Stmt *> Else;
        if (!parseBlock(Else))
          return nullptr;
        for (Stmt *S : Else)
          F->addElse(If, S);
      }
      return If;
    }

    if (Lex.peek().Kind != TokKind::Ident) {
      fail("expected a statement");
      return nullptr;
    }
    std::string Name = Lex.take().Text;
    if (isPunct("[")) {
      // Array store.
      auto It = Arrays.find(Name);
      if (It == Arrays.end()) {
        fail("unknown array '" + Name + "'");
        return nullptr;
      }
      Lex.take();
      const Expr *Index = parseExpr();
      if (!Index || !expectPunct("]") || !expectPunct("="))
        return nullptr;
      const Expr *Value = parseExpr();
      if (!Value || !expectPunct(";"))
        return nullptr;
      if (F->array(It->second).ReadOnly) {
        fail("store to readonly array '" + Name + "'");
        return nullptr;
      }
      const Expr *ElemProto = F->arrayRef(It->second, F->indexRef());
      coerce(ElemProto, Value);
      return F->storeArray(It->second, Index, Value);
    }
    auto It = Scalars.find(Name);
    if (It == Scalars.end()) {
      fail("unknown scalar '" + Name + "'");
      return nullptr;
    }
    if (!expectPunct("="))
      return nullptr;
    const Expr *Value = parseExpr();
    if (!Value || !expectPunct(";"))
      return nullptr;
    // Literal on the right of a typed scalar adopts the scalar's type.
    const Expr *Target = F->scalarRef(It->second);
    coerce(Target, Value);
    return F->assignScalar(It->second, Value);
  }

  const Expr *parseExpr() { return parseAnd(); }

  /// Integer literals written in float context become float constants of
  /// the sibling's type (the IR requires matched operand types).
  void coerce(const Expr *&L, const Expr *&R) {
    if (L->Kind == ExprKind::ConstInt && isFloatType(R->Type))
      L = F->constFloat(R->Type, static_cast<double>(L->IntValue));
    if (R->Kind == ExprKind::ConstInt && isFloatType(L->Type))
      R = F->constFloat(L->Type, static_cast<double>(R->IntValue));
    // And f32 literals next to f64 values (or vice versa) adopt the
    // non-literal side's width.
    if (L->Kind == ExprKind::ConstFloat && isFloatType(R->Type) &&
        L->Type != R->Type)
      L = F->constFloat(R->Type, L->FloatValue);
    if (R->Kind == ExprKind::ConstFloat && isFloatType(L->Type) &&
        R->Type != L->Type)
      R = F->constFloat(L->Type, R->FloatValue);
    // Integer literals next to i64 values widen.
    if (L->Kind == ExprKind::ConstInt && !isFloatType(R->Type) &&
        L->Type != R->Type)
      L = F->constInt(R->Type, L->IntValue);
    if (R->Kind == ExprKind::ConstInt && !isFloatType(L->Type) &&
        R->Type != L->Type)
      R = F->constInt(L->Type, R->IntValue);
  }

  const Expr *parseAnd() {
    const Expr *L = parseCmp();
    if (!L)
      return nullptr;
    while (isPunct("&&")) {
      Lex.take();
      const Expr *R = parseCmp();
      if (!R)
        return nullptr;
      if (!L->isBool() || !R->isBool()) {
        fail("'&&' requires comparisons on both sides");
        return nullptr;
      }
      L = F->logicalAnd(L, R);
    }
    return L;
  }

  const Expr *parseCmp() {
    const Expr *L = parseAdd();
    if (!L)
      return nullptr;
    static const std::map<std::string, CmpKind> Cmps = {
        {"==", CmpKind::EQ}, {"!=", CmpKind::NE}, {"<", CmpKind::LT},
        {"<=", CmpKind::LE}, {">", CmpKind::GT},  {">=", CmpKind::GE},
    };
    if (Lex.peek().Kind == TokKind::Punct) {
      auto It = Cmps.find(Lex.peek().Text);
      if (It != Cmps.end()) {
        Lex.take();
        const Expr *R = parseAdd();
        if (!R)
          return nullptr;
        coerce(L, R);
        return F->compare(It->second, L, R);
      }
    }
    return L;
  }

  const Expr *parseAdd() {
    const Expr *L = parseMul();
    if (!L)
      return nullptr;
    while (Lex.peek().Kind == TokKind::Punct &&
           (Lex.peek().Text == "+" || Lex.peek().Text == "-" ||
            Lex.peek().Text == "&" || Lex.peek().Text == "|" ||
            Lex.peek().Text == "^")) {
      std::string Op = Lex.take().Text;
      const Expr *R = parseMul();
      if (!R)
        return nullptr;
      BinOp K = Op == "+"   ? BinOp::Add
                : Op == "-" ? BinOp::Sub
                : Op == "&" ? BinOp::And
                : Op == "|" ? BinOp::Or
                            : BinOp::Xor;
      coerce(L, R);
      L = F->binary(K, L, R);
    }
    return L;
  }

  const Expr *parseMul() {
    const Expr *L = parsePrimary();
    if (!L)
      return nullptr;
    while (Lex.peek().Kind == TokKind::Punct &&
           (Lex.peek().Text == "*" || Lex.peek().Text == "/")) {
      std::string Op = Lex.take().Text;
      const Expr *R = parsePrimary();
      if (!R)
        return nullptr;
      coerce(L, R);
      L = F->binary(Op == "*" ? BinOp::Mul : BinOp::Div, L, R);
    }
    return L;
  }

  const Expr *parsePrimary() {
    const Token &T = Lex.peek();
    if (T.Kind == TokKind::Number) {
      int64_t V = Lex.take().IntValue;
      return F->constInt(ElemType::I32, V);
    }
    if (T.Kind == TokKind::Float) {
      double V = Lex.take().FloatValue;
      return F->constFloat(ElemType::F32, V);
    }
    if (T.Kind == TokKind::Punct && T.Text == "(") {
      Lex.take();
      const Expr *E = parseExpr();
      if (!E || !expectPunct(")"))
        return nullptr;
      return E;
    }
    if (T.Kind != TokKind::Ident) {
      fail("expected an expression");
      return nullptr;
    }
    // (size/char comparison sidesteps a GCC 12 -Wmaybe-uninitialized
    // false positive on the string equality path.)
    std::string Name = Lex.take().Text;
    if (Name.size() == 1 && Name[0] == 'i')
      return F->indexRef();
    if (Name == "min" || Name == "max") {
      if (!expectPunct("("))
        return nullptr;
      const Expr *A = parseExpr();
      if (!A || !expectPunct(","))
        return nullptr;
      const Expr *B = parseExpr();
      if (!B || !expectPunct(")"))
        return nullptr;
      coerce(A, B);
      return F->binary(Name == "min" ? BinOp::Min : BinOp::Max, A, B);
    }
    if (isPunct("[")) {
      auto It = Arrays.find(Name);
      if (It == Arrays.end()) {
        fail("unknown array '" + Name + "'");
        return nullptr;
      }
      Lex.take();
      const Expr *Index = parseExpr();
      if (!Index || !expectPunct("]"))
        return nullptr;
      return F->arrayRef(It->second, Index);
    }
    auto It = Scalars.find(Name);
    if (It == Scalars.end()) {
      fail("unknown identifier '" + Name + "'");
      return nullptr;
    }
    return F->scalarRef(It->second);
  }

  Lexer Lex;
  std::unique_ptr<LoopFunction> F;
  std::map<std::string, int> Scalars;
  std::map<std::string, int> Arrays;
  std::string Error;
};

} // namespace

ParseResult ir::parseLoop(const std::string &Source) {
  Parser P(Source);
  return P.run();
}

//===----------------------------------------------------------------------===//
// DSL unparser
//===----------------------------------------------------------------------===//

namespace {

/// Expression rendering that matches the grammar exactly: fully
/// parenthesized binaries, min/max as calls, float literals always with a
/// decimal point so they lex as FLOAT and not NUMBER.
std::string renderExpr(const LoopFunction &F, const Expr *E) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
    return std::to_string(E->IntValue);
  case ExprKind::ConstFloat: {
    // %.17g so every finite double round-trips exactly; a differential-test
    // reproducer must reproduce the failing constant bit-for-bit.
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%.17g", E->FloatValue);
    std::string S = Buf;
    if (S.find_first_of(".e") == std::string::npos)
      S += ".0";
    return S;
  }
  case ExprKind::ScalarRef:
    return F.scalar(E->ScalarId).Name;
  case ExprKind::IndexRef:
    return "i";
  case ExprKind::ArrayRef:
    return F.array(E->ArrayId).Name + "[" + renderExpr(F, E->Index) + "]";
  case ExprKind::Binary:
    if (E->Op == BinOp::Min || E->Op == BinOp::Max)
      return std::string(binOpName(E->Op)) + "(" + renderExpr(F, E->Lhs) +
             ", " + renderExpr(F, E->Rhs) + ")";
    return "(" + renderExpr(F, E->Lhs) + " " + binOpName(E->Op) + " " +
           renderExpr(F, E->Rhs) + ")";
  case ExprKind::Compare: {
    const char *Sym = "==";
    switch (E->Cmp) {
    case CmpKind::EQ: Sym = "=="; break;
    case CmpKind::NE: Sym = "!="; break;
    case CmpKind::LT: Sym = "<"; break;
    case CmpKind::LE: Sym = "<="; break;
    case CmpKind::GT: Sym = ">"; break;
    case CmpKind::GE: Sym = ">="; break;
    }
    return "(" + renderExpr(F, E->Lhs) + " " + Sym + " " +
           renderExpr(F, E->Rhs) + ")";
  }
  case ExprKind::LogicalAnd:
    return "(" + renderExpr(F, E->Lhs) + " && " + renderExpr(F, E->Rhs) +
           ")";
  }
  return "?";
}

void renderStmts(const LoopFunction &F, const std::vector<Stmt *> &Stmts,
                 int Depth, std::string &Out) {
  std::string Indent(static_cast<size_t>(Depth) * 2, ' ');
  for (const Stmt *S : Stmts) {
    switch (S->Kind) {
    case StmtKind::AssignScalar:
      Out += Indent + F.scalar(S->ScalarId).Name + " = " +
             renderExpr(F, S->Value) + ";\n";
      break;
    case StmtKind::StoreArray:
      Out += Indent + F.array(S->ArrayId).Name + "[" +
             renderExpr(F, S->Index) + "] = " + renderExpr(F, S->Value) +
             ";\n";
      break;
    case StmtKind::If:
      Out += Indent + "if " + renderExpr(F, S->Cond) + " {\n";
      renderStmts(F, S->Then, Depth + 1, Out);
      if (!S->Else.empty()) {
        Out += Indent + "} else {\n";
        renderStmts(F, S->Else, Depth + 1, Out);
      }
      Out += Indent + "}\n";
      break;
    case StmtKind::Break:
      Out += Indent + "break;\n";
      break;
    }
  }
}

} // namespace

std::string ir::printLoopDsl(const LoopFunction &F) {
  std::string Out = "loop " + F.name() + "(";
  bool First = true;
  for (size_t S = 0; S < F.scalars().size(); ++S) {
    if (!First)
      Out += ", ";
    First = false;
    const ScalarParam &P = F.scalar(static_cast<int>(S));
    Out += std::string(isa::elemTypeName(P.Type)) + " " + P.Name;
    if (static_cast<int>(S) == F.tripCountScalar())
      Out += " trip";
    if (P.IsLiveOut)
      Out += " liveout";
  }
  for (size_t A = 0; A < F.arrays().size(); ++A) {
    if (!First)
      Out += ", ";
    First = false;
    const ArrayParam &P = F.array(static_cast<int>(A));
    Out += std::string(isa::elemTypeName(P.Elem)) + " " + P.Name + "[]";
    if (P.ReadOnly)
      Out += " readonly";
  }
  Out += ") {\n";
  renderStmts(F, F.body(), 1, Out);
  Out += "}\n";
  return Out;
}
