//===- ir/Parser.h - Textual loop DSL ---------------------------*- C++ -*-===//
//
// A small C-like surface syntax for LoopFunctions, so candidate loops can
// be written as text (tests, the CLI driver, documentation) instead of
// builder calls:
//
//   loop h264_motion_search(i64 max_pos trip, i32 min_mcost liveout,
//                           i32 best_pos liveout, i32 mcost, i32 cand,
//                           i32 block_sad[] readonly,
//                           i32 spiral[] readonly, i32 mv[] readonly) {
//     if (block_sad[i] < min_mcost) {
//       mcost = block_sad[i];
//       cand = spiral[i];
//       mcost = mcost + mv[cand];
//       if (mcost < min_mcost) { min_mcost = mcost; best_pos = i; }
//     }
//   }
//
// Grammar (EBNF-ish):
//   loop      := "loop" IDENT "(" param ("," param)* ")" block
//   param     := type IDENT [ "[]" ] attr*
//   attr      := "trip" | "liveout" | "readonly"
//   type      := "i32" | "i64" | "f32" | "f64"
//   block     := "{" stmt* "}"
//   stmt      := IDENT "=" expr ";"
//              | IDENT "[" expr "]" "=" expr ";"
//              | "if" "(" expr ")" block [ "else" block ]
//              | "break" ";"
//   expr      := andexpr
//   andexpr   := cmpexpr ( "&&" cmpexpr )*
//   cmpexpr   := addexpr [ cmpop addexpr ]
//   addexpr   := mulexpr ( ("+"|"-"|"&"|"|"|"^") mulexpr )*
//   mulexpr   := primary ( ("*"|"/") primary )*
//   primary   := NUMBER | FLOAT | "i" | IDENT | IDENT "[" expr "]"
//              | "min" "(" expr "," expr ")" | "max" "(" expr "," expr ")"
//              | "(" expr ")"
//
// `i` is the induction variable. Statement ids follow source order, so
// printed plans and disassembly comments line up with the text.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_IR_PARSER_H
#define FLEXVEC_IR_PARSER_H

#include "ir/IR.h"

#include <memory>
#include <string>

namespace flexvec {
namespace ir {

/// Result of parsing: the function, or a diagnostic with line information.
struct ParseResult {
  std::unique_ptr<LoopFunction> F;
  std::string Error; ///< Empty on success.

  explicit operator bool() const { return F != nullptr; }
};

/// Parses one loop definition from \p Source.
ParseResult parseLoop(const std::string &Source);

/// Renders \p F as parseable DSL text — the inverse of parseLoop, used by
/// the differential tests to print failing generated loops in a form that
/// reproduces with `flexvec-cli`. Covers everything the grammar covers;
/// loops using IR-only operators (shifts) render but do not re-parse.
std::string printLoopDsl(const LoopFunction &F);

} // namespace ir
} // namespace flexvec

#endif // FLEXVEC_IR_PARSER_H
