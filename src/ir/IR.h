//===- ir/IR.h - High-level AST-like loop IR --------------------*- C++ -*-===//
//
// The paper implements FlexVec "as a pass in a high-level, AST like IR that
// feeds into the vector code generation module" (Section 4). This is that
// IR: a single counted loop (for i = 0; i < n; ++i) over scalar and array
// parameters, with structured control flow (if/else, break) in the body.
//
// Statements carry stable ids (S1, S2, ...) used by the PDG, the analysis
// tags, and the disassembly comments, mirroring the paper's figures.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_IR_IR_H
#define FLEXVEC_IR_IR_H

#include "isa/Opcode.h"
#include "isa/Reg.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace flexvec {
namespace ir {

using isa::CmpKind;
using isa::ElemType;

class LoopFunction;

/// Binary operators on same-typed operands.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Min,
  Max,
};

const char *binOpName(BinOp Op);

/// Expression kinds.
enum class ExprKind : uint8_t {
  ConstInt,  ///< Integer literal.
  ConstFloat,///< Floating literal.
  ScalarRef, ///< Read of a scalar parameter/variable.
  IndexRef,  ///< The loop induction variable.
  ArrayRef,  ///< Array element read: Array[Index].
  Binary,    ///< Lhs <BinOp> Rhs.
  Compare,   ///< Lhs <CmpKind> Rhs, yields bool (i64 0/1).
  LogicalAnd,///< Lhs && Rhs over bools (non-short-circuit in vector code).
};

/// One expression node (immutable after construction, arena-owned).
struct Expr {
  ExprKind Kind;
  ElemType Type; ///< Result type (Compare/LogicalAnd yield ElemType::I64).

  int64_t IntValue = 0;  ///< ConstInt.
  double FloatValue = 0; ///< ConstFloat.
  int ScalarId = -1;     ///< ScalarRef.
  int ArrayId = -1;      ///< ArrayRef.
  const Expr *Index = nullptr; ///< ArrayRef subscript.
  BinOp Op = BinOp::Add;       ///< Binary.
  CmpKind Cmp = CmpKind::EQ;   ///< Compare.
  const Expr *Lhs = nullptr;
  const Expr *Rhs = nullptr;

  bool isBool() const { return Kind == ExprKind::Compare ||
                               Kind == ExprKind::LogicalAnd; }

  /// Source-like rendering ("block_sad[pos] < min_mcost").
  std::string str(const LoopFunction &F) const;
};

/// Statement kinds.
enum class StmtKind : uint8_t {
  AssignScalar, ///< Scalar = Value.
  StoreArray,   ///< Array[Index] = Value.
  If,           ///< if (Cond) Then else Else.
  Break,        ///< Exit the loop.
};

/// One statement node (arena-owned). Mutable children only through the
/// LoopFunction builder.
struct Stmt {
  StmtKind Kind;
  int Id = 0; ///< Stable statement number (1-based, creation order).

  int ScalarId = -1;           ///< AssignScalar target.
  int ArrayId = -1;            ///< StoreArray target.
  const Expr *Index = nullptr; ///< StoreArray subscript.
  const Expr *Value = nullptr; ///< AssignScalar/StoreArray RHS.
  const Expr *Cond = nullptr;  ///< If condition.
  std::vector<Stmt *> Then;    ///< If true-region.
  std::vector<Stmt *> Else;    ///< If false-region.

  /// Source-like rendering of this statement only (no children).
  std::string str(const LoopFunction &F) const;
};

/// A scalar parameter/variable of the loop.
struct ScalarParam {
  std::string Name;
  ElemType Type;
  bool IsLiveOut = false; ///< Value after the loop is observed.
};

/// An array parameter of the loop (bound to a base address at run time).
struct ArrayParam {
  std::string Name;
  ElemType Elem;
  /// Declared element count; subscripts are asserted in-bounds by the
  /// reference interpreter (bound at execution time, not here).
  bool ReadOnly = false; ///< Never stored to by this loop (analysis aid).
};

/// A single counted loop:  for (i = 0; i < <bound scalar>; ++i) { body }.
///
/// Owns all Expr and Stmt nodes. Construction is via the expr*/stmt*
/// factory methods; the finished body is installed with setBody().
class LoopFunction {
public:
  explicit LoopFunction(std::string Name) : Name(std::move(Name)) {}
  LoopFunction(const LoopFunction &) = delete;
  LoopFunction &operator=(const LoopFunction &) = delete;

  const std::string &name() const { return Name; }

  // --- Parameters ---
  int addScalar(std::string ScalarName, ElemType Type, bool IsLiveOut = false);
  int addArray(std::string ArrayName, ElemType Elem, bool ReadOnly = false);

  /// Declares which scalar parameter holds the trip count (upper bound).
  void setTripCountScalar(int ScalarId) { TripCountScalar = ScalarId; }
  int tripCountScalar() const { return TripCountScalar; }

  const std::vector<ScalarParam> &scalars() const { return Scalars; }
  const std::vector<ArrayParam> &arrays() const { return Arrays; }
  const ScalarParam &scalar(int Id) const { return Scalars[Id]; }
  const ArrayParam &array(int Id) const { return Arrays[Id]; }

  // --- Expression factories ---
  const Expr *constInt(ElemType Type, int64_t V);
  const Expr *constFloat(ElemType Type, double V);
  const Expr *scalarRef(int ScalarId);
  const Expr *indexRef();
  const Expr *arrayRef(int ArrayId, const Expr *Index);
  const Expr *binary(BinOp Op, const Expr *Lhs, const Expr *Rhs);
  const Expr *compare(CmpKind Cmp, const Expr *Lhs, const Expr *Rhs);
  const Expr *logicalAnd(const Expr *Lhs, const Expr *Rhs);

  // --- Statement factories ---
  Stmt *assignScalar(int ScalarId, const Expr *Value);
  Stmt *storeArray(int ArrayId, const Expr *Index, const Expr *Value);
  Stmt *makeIf(const Expr *Cond, std::vector<Stmt *> Then,
               std::vector<Stmt *> Else = {});
  /// Creates an empty if so children can be numbered after their parent
  /// (matching the paper's lexical S-numbering); attach children with
  /// addThen/addElse.
  Stmt *makeIfShell(const Expr *Cond);
  void addThen(Stmt *If, Stmt *Child);
  void addElse(Stmt *If, Stmt *Child);
  Stmt *makeBreak();

  void setBody(std::vector<Stmt *> Stmts) { Body = std::move(Stmts); }
  const std::vector<Stmt *> &body() const { return Body; }

  /// Total number of statements created (ids are 1..numStmts()).
  int numStmts() const { return NextStmtId - 1; }

  /// Visits every statement in lexical order (pre-order over if-regions).
  void forEachStmt(const std::function<void(const Stmt *)> &Fn) const;

  /// Source-like rendering of the whole loop.
  std::string print() const;

private:
  static void forEachStmtIn(const std::vector<Stmt *> &Stmts,
                            const std::function<void(const Stmt *)> &Fn);

  std::string Name;
  std::vector<ScalarParam> Scalars;
  std::vector<ArrayParam> Arrays;
  int TripCountScalar = -1;
  std::vector<Stmt *> Body;
  std::vector<std::unique_ptr<Expr>> ExprArena;
  std::vector<std::unique_ptr<Stmt>> StmtArena;
  int NextStmtId = 1;
};

} // namespace ir
} // namespace flexvec

#endif // FLEXVEC_IR_IR_H
