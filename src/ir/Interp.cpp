//===- ir/Interp.cpp ------------------------------------------------------===//

#include "ir/Interp.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace flexvec;
using namespace flexvec::ir;
using isa::elemSize;

Observer::~Observer() = default;

double Bindings::getFloat(ElemType Ty, int ScalarId) const {
  int64_t Raw = ScalarValues[ScalarId];
  if (Ty == ElemType::F32) {
    float F;
    uint32_t Bits = static_cast<uint32_t>(Raw);
    std::memcpy(&F, &Bits, 4);
    return F;
  }
  double D;
  std::memcpy(&D, &Raw, 8);
  return D;
}

void Bindings::setFloat(ElemType Ty, int ScalarId, double V) {
  if (Ty == ElemType::F32) {
    float F = static_cast<float>(V);
    uint32_t Bits;
    std::memcpy(&Bits, &F, 4);
    ScalarValues[ScalarId] = static_cast<int64_t>(static_cast<uint64_t>(Bits));
    return;
  }
  int64_t Raw;
  std::memcpy(&Raw, &V, 8);
  ScalarValues[ScalarId] = Raw;
}

struct Interpreter::Frame {
  const LoopFunction *F;
  Bindings *B;
  Observer *Obs;
  int64_t Iter;
  Interpreter *Self;
};

int64_t Interpreter::loadElem(uint64_t Addr, uint64_t Size) {
  if (Faulted)
    return 0;
  uint64_t Raw = 0;
  // The debug path (no fault-hook consultation): the reference run is
  // never subject to injected faults, but a generated or shrunk loop can
  // compute a genuinely unmapped address — latch it instead of aborting.
  mem::AccessResult R = M.peek(Addr, &Raw, Size);
  if (!R.Ok) {
    Faulted = true;
    FaultAddr = R.FaultAddr;
    return 0;
  }
  return static_cast<int64_t>(Raw);
}

void Interpreter::storeElem(uint64_t Addr, int64_t Raw, uint64_t Size) {
  if (Faulted)
    return;
  mem::AccessResult R = M.poke(Addr, &Raw, Size);
  if (!R.Ok) {
    Faulted = true;
    FaultAddr = R.FaultAddr;
  }
}

static int64_t wrapToType(ElemType Ty, int64_t V) {
  if (elemSize(Ty) == 4 && !isFloatType(Ty))
    return static_cast<int64_t>(static_cast<int32_t>(V));
  return V;
}

int64_t Interpreter::evalInt(const Frame &Fr, const Expr *E) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
    return E->IntValue;
  case ExprKind::ConstFloat:
    unreachable("float constant in integer context");
  case ExprKind::ScalarRef:
    return Fr.B->getInt(E->ScalarId);
  case ExprKind::IndexRef:
    return Fr.Iter;
  case ExprKind::ArrayRef: {
    int64_t Idx = evalInt(Fr, E->Index);
    const ArrayParam &A = Fr.F->array(E->ArrayId);
    uint64_t Addr = Fr.B->ArrayBases[E->ArrayId] +
                    static_cast<uint64_t>(Idx) * elemSize(A.Elem);
    if (Fr.Obs)
      Fr.Obs->onArrayLoad(E->ArrayId, Idx, Fr.Iter);
    if (elemSize(A.Elem) == 4)
      return static_cast<int64_t>(
          static_cast<int32_t>(loadElem(Addr, 4)));
    return loadElem(Addr, 8);
  }
  case ExprKind::Binary: {
    int64_t L = evalInt(Fr, E->Lhs);
    int64_t R = evalInt(Fr, E->Rhs);
    int64_t V;
    switch (E->Op) {
    case BinOp::Add:
      V = static_cast<int64_t>(static_cast<uint64_t>(L) +
                               static_cast<uint64_t>(R));
      break;
    case BinOp::Sub:
      V = static_cast<int64_t>(static_cast<uint64_t>(L) -
                               static_cast<uint64_t>(R));
      break;
    case BinOp::Mul:
      V = static_cast<int64_t>(static_cast<uint64_t>(L) *
                               static_cast<uint64_t>(R));
      break;
    case BinOp::Div:
      assert(R != 0 && "division by zero in reference interpreter");
      V = L / R;
      break;
    case BinOp::And:
      V = L & R;
      break;
    case BinOp::Or:
      V = L | R;
      break;
    case BinOp::Xor:
      V = L ^ R;
      break;
    case BinOp::Shl:
      V = static_cast<int64_t>(static_cast<uint64_t>(L)
                               << (static_cast<uint64_t>(R) & 63));
      break;
    case BinOp::Shr:
      V = static_cast<int64_t>(static_cast<uint64_t>(L) >>
                               (static_cast<uint64_t>(R) & 63));
      break;
    case BinOp::Min:
      V = std::min(L, R);
      break;
    case BinOp::Max:
      V = std::max(L, R);
      break;
    default:
      unreachable("unknown binop");
    }
    return wrapToType(E->Type, V);
  }
  case ExprKind::Compare: {
    bool Bit;
    if (isFloatType(E->Lhs->Type))
      Bit = isa::evalCmp(E->Cmp, evalFloat(Fr, E->Lhs), evalFloat(Fr, E->Rhs));
    else
      Bit = isa::evalCmp(E->Cmp, evalInt(Fr, E->Lhs), evalInt(Fr, E->Rhs));
    return Bit ? 1 : 0;
  }
  case ExprKind::LogicalAnd:
    return (evalInt(Fr, E->Lhs) != 0 && evalInt(Fr, E->Rhs) != 0) ? 1 : 0;
  }
  unreachable("unknown expr kind");
}

double Interpreter::evalFloat(const Frame &Fr, const Expr *E) {
  assert(isFloatType(E->Type) && "float evaluation of integer expression");
  bool Single = E->Type == ElemType::F32;
  switch (E->Kind) {
  case ExprKind::ConstFloat:
    return Single ? static_cast<float>(E->FloatValue) : E->FloatValue;
  case ExprKind::ScalarRef:
    return Fr.B->getFloat(E->Type, E->ScalarId);
  case ExprKind::ArrayRef: {
    int64_t Idx = evalInt(Fr, E->Index);
    const ArrayParam &A = Fr.F->array(E->ArrayId);
    uint64_t Addr = Fr.B->ArrayBases[E->ArrayId] +
                    static_cast<uint64_t>(Idx) * elemSize(A.Elem);
    if (Fr.Obs)
      Fr.Obs->onArrayLoad(E->ArrayId, Idx, Fr.Iter);
    if (Single) {
      uint32_t Bits = static_cast<uint32_t>(loadElem(Addr, 4));
      float V;
      std::memcpy(&V, &Bits, 4);
      return V;
    }
    int64_t Raw = loadElem(Addr, 8);
    double V;
    std::memcpy(&V, &Raw, 8);
    return V;
  }
  case ExprKind::Binary: {
    double L = evalFloat(Fr, E->Lhs);
    double R = evalFloat(Fr, E->Rhs);
    double V;
    switch (E->Op) {
    case BinOp::Add:
      V = L + R;
      break;
    case BinOp::Sub:
      V = L - R;
      break;
    case BinOp::Mul:
      V = L * R;
      break;
    case BinOp::Div:
      V = L / R;
      break;
    case BinOp::Min:
      V = std::min(L, R);
      break;
    case BinOp::Max:
      V = std::max(L, R);
      break;
    default:
      unreachable("bitwise binop on floats");
    }
    // Round intermediate results to single precision so the interpreter
    // matches the F32 vector lanes bit for bit.
    return Single ? static_cast<double>(static_cast<float>(V)) : V;
  }
  default:
    unreachable("expression kind cannot be float-typed");
  }
}

int64_t Interpreter::evalRaw(const Frame &Fr, const Expr *E) {
  if (!isFloatType(E->Type))
    return evalInt(Fr, E);
  double V = evalFloat(Fr, E);
  if (E->Type == ElemType::F32) {
    float F = static_cast<float>(V);
    uint32_t Bits;
    std::memcpy(&Bits, &F, 4);
    return static_cast<int64_t>(static_cast<uint64_t>(Bits));
  }
  int64_t Raw;
  std::memcpy(&Raw, &V, 8);
  return Raw;
}

bool Interpreter::execStmts(Frame &Fr, const std::vector<Stmt *> &Stmts) {
  for (const Stmt *S : Stmts) {
    switch (S->Kind) {
    case StmtKind::AssignScalar: {
      int64_t Old = Fr.B->getInt(S->ScalarId);
      int64_t New = evalRaw(Fr, S->Value);
      Fr.B->setInt(S->ScalarId, New);
      if (Fr.Obs)
        Fr.Obs->onScalarAssign(S, Fr.Iter, Old, New);
      break;
    }
    case StmtKind::StoreArray: {
      int64_t Idx = evalInt(Fr, S->Index);
      const ArrayParam &A = Fr.F->array(S->ArrayId);
      uint64_t Addr = Fr.B->ArrayBases[S->ArrayId] +
                      static_cast<uint64_t>(Idx) * elemSize(A.Elem);
      int64_t Raw = evalRaw(Fr, S->Value);
      storeElem(Addr, Raw, elemSize(A.Elem));
      if (Fr.Obs)
        Fr.Obs->onArrayStore(S, Idx, Fr.Iter);
      break;
    }
    case StmtKind::If: {
      bool Cond = evalInt(Fr, S->Cond) != 0;
      if (!execStmts(Fr, Cond ? S->Then : S->Else))
        return false;
      break;
    }
    case StmtKind::Break:
      if (Fr.Obs)
        Fr.Obs->onBreak(S, Fr.Iter);
      return false;
    }
    if (Faulted)
      return false; // Stop at the faulting statement boundary.
  }
  return true;
}

InterpResult Interpreter::run(const LoopFunction &F, Bindings &B,
                              Observer *Obs) {
  assert(F.tripCountScalar() >= 0 && "loop has no trip-count binding");
  int64_t Trip = B.getInt(F.tripCountScalar());
  InterpResult Result;
  Faulted = false;
  FaultAddr = 0;
  Frame Fr{&F, &B, Obs, 0, this};
  for (int64_t I = 0; I < Trip; ++I) {
    Fr.Iter = I;
    if (Obs)
      Obs->onIterationStart(I);
    ++Result.IterationsExecuted;
    if (!execStmts(Fr, F.body())) {
      Result.BrokeEarly = !Faulted;
      break;
    }
  }
  Result.Faulted = Faulted;
  Result.FaultAddr = FaultAddr;
  return Result;
}
