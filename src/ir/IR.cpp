//===- ir/IR.cpp ----------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Error.h"

#include <cassert>
#include <cstdio>

using namespace flexvec;
using namespace flexvec::ir;

const char *ir::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::And:
    return "&";
  case BinOp::Or:
    return "|";
  case BinOp::Xor:
    return "^";
  case BinOp::Shl:
    return "<<";
  case BinOp::Shr:
    return ">>";
  case BinOp::Min:
    return "min";
  case BinOp::Max:
    return "max";
  }
  unreachable("unknown binop");
}

static const char *cmpSymbol(CmpKind K) {
  switch (K) {
  case CmpKind::EQ:
    return "==";
  case CmpKind::NE:
    return "!=";
  case CmpKind::LT:
    return "<";
  case CmpKind::LE:
    return "<=";
  case CmpKind::GT:
    return ">";
  case CmpKind::GE:
    return ">=";
  }
  unreachable("unknown cmp kind");
}

std::string Expr::str(const LoopFunction &F) const {
  switch (Kind) {
  case ExprKind::ConstInt: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(IntValue));
    return Buf;
  }
  case ExprKind::ConstFloat: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", FloatValue);
    return Buf;
  }
  case ExprKind::ScalarRef:
    return F.scalar(ScalarId).Name;
  case ExprKind::IndexRef:
    return "i";
  case ExprKind::ArrayRef:
    return F.array(ArrayId).Name + "[" + Index->str(F) + "]";
  case ExprKind::Binary:
    if (Op == BinOp::Min || Op == BinOp::Max)
      return std::string(binOpName(Op)) + "(" + Lhs->str(F) + ", " +
             Rhs->str(F) + ")";
    return "(" + Lhs->str(F) + " " + binOpName(Op) + " " + Rhs->str(F) + ")";
  case ExprKind::Compare:
    return "(" + Lhs->str(F) + " " + cmpSymbol(Cmp) + " " + Rhs->str(F) + ")";
  case ExprKind::LogicalAnd:
    return "(" + Lhs->str(F) + " && " + Rhs->str(F) + ")";
  }
  unreachable("unknown expr kind");
}

std::string Stmt::str(const LoopFunction &F) const {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "S%d: ", Id);
  std::string Prefix = Buf;
  switch (Kind) {
  case StmtKind::AssignScalar:
    return Prefix + F.scalar(ScalarId).Name + " = " + Value->str(F);
  case StmtKind::StoreArray:
    return Prefix + F.array(ArrayId).Name + "[" + Index->str(F) +
           "] = " + Value->str(F);
  case StmtKind::If:
    return Prefix + "if " + Cond->str(F);
  case StmtKind::Break:
    return Prefix + "break";
  }
  unreachable("unknown stmt kind");
}

int LoopFunction::addScalar(std::string ScalarName, ElemType Type,
                            bool IsLiveOut) {
  Scalars.push_back(ScalarParam{std::move(ScalarName), Type, IsLiveOut});
  return static_cast<int>(Scalars.size()) - 1;
}

int LoopFunction::addArray(std::string ArrayName, ElemType Elem,
                           bool ReadOnly) {
  Arrays.push_back(ArrayParam{std::move(ArrayName), Elem, ReadOnly});
  return static_cast<int>(Arrays.size()) - 1;
}

const Expr *LoopFunction::constInt(ElemType Type, int64_t V) {
  assert(!isFloatType(Type) && "integer constant with float type");
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::ConstInt;
  E->Type = Type;
  E->IntValue = V;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

const Expr *LoopFunction::constFloat(ElemType Type, double V) {
  assert(isFloatType(Type) && "float constant with integer type");
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::ConstFloat;
  E->Type = Type;
  E->FloatValue = V;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

const Expr *LoopFunction::scalarRef(int ScalarId) {
  assert(ScalarId >= 0 && ScalarId < static_cast<int>(Scalars.size()));
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::ScalarRef;
  E->Type = Scalars[ScalarId].Type;
  E->ScalarId = ScalarId;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

const Expr *LoopFunction::indexRef() {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::IndexRef;
  E->Type = ElemType::I64;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

const Expr *LoopFunction::arrayRef(int ArrayId, const Expr *Index) {
  assert(ArrayId >= 0 && ArrayId < static_cast<int>(Arrays.size()));
  assert(!isFloatType(Index->Type) && "array subscript must be integral");
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::ArrayRef;
  E->Type = Arrays[ArrayId].Elem;
  E->ArrayId = ArrayId;
  E->Index = Index;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

const Expr *LoopFunction::binary(BinOp Op, const Expr *Lhs, const Expr *Rhs) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  E->Type = Lhs->Type;
  E->Op = Op;
  E->Lhs = Lhs;
  E->Rhs = Rhs;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

const Expr *LoopFunction::compare(CmpKind Cmp, const Expr *Lhs,
                                  const Expr *Rhs) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Compare;
  E->Type = ElemType::I64;
  E->Cmp = Cmp;
  E->Lhs = Lhs;
  E->Rhs = Rhs;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

const Expr *LoopFunction::logicalAnd(const Expr *Lhs, const Expr *Rhs) {
  assert(Lhs->isBool() && Rhs->isBool() && "logical-and over non-bools");
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::LogicalAnd;
  E->Type = ElemType::I64;
  E->Lhs = Lhs;
  E->Rhs = Rhs;
  ExprArena.push_back(std::move(E));
  return ExprArena.back().get();
}

Stmt *LoopFunction::assignScalar(int ScalarId, const Expr *Value) {
  assert(ScalarId >= 0 && ScalarId < static_cast<int>(Scalars.size()));
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::AssignScalar;
  S->Id = NextStmtId++;
  S->ScalarId = ScalarId;
  S->Value = Value;
  StmtArena.push_back(std::move(S));
  return StmtArena.back().get();
}

Stmt *LoopFunction::storeArray(int ArrayId, const Expr *Index,
                               const Expr *Value) {
  assert(ArrayId >= 0 && ArrayId < static_cast<int>(Arrays.size()));
  assert(!Arrays[ArrayId].ReadOnly && "store to read-only array");
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::StoreArray;
  S->Id = NextStmtId++;
  S->ArrayId = ArrayId;
  S->Index = Index;
  S->Value = Value;
  StmtArena.push_back(std::move(S));
  return StmtArena.back().get();
}

Stmt *LoopFunction::makeIf(const Expr *Cond, std::vector<Stmt *> Then,
                           std::vector<Stmt *> Else) {
  assert(Cond->isBool() && "if condition must be boolean");
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Id = NextStmtId++;
  S->Cond = Cond;
  S->Then = std::move(Then);
  S->Else = std::move(Else);
  StmtArena.push_back(std::move(S));
  return StmtArena.back().get();
}

Stmt *LoopFunction::makeIfShell(const Expr *Cond) {
  return makeIf(Cond, {}, {});
}

void LoopFunction::addThen(Stmt *If, Stmt *Child) {
  assert(If->Kind == StmtKind::If && "addThen on a non-if statement");
  If->Then.push_back(Child);
}

void LoopFunction::addElse(Stmt *If, Stmt *Child) {
  assert(If->Kind == StmtKind::If && "addElse on a non-if statement");
  If->Else.push_back(Child);
}

Stmt *LoopFunction::makeBreak() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Break;
  S->Id = NextStmtId++;
  StmtArena.push_back(std::move(S));
  return StmtArena.back().get();
}

void LoopFunction::forEachStmtIn(
    const std::vector<Stmt *> &Stmts,
    const std::function<void(const Stmt *)> &Fn) {
  for (const Stmt *S : Stmts) {
    Fn(S);
    if (S->Kind == StmtKind::If) {
      forEachStmtIn(S->Then, Fn);
      forEachStmtIn(S->Else, Fn);
    }
  }
}

void LoopFunction::forEachStmt(
    const std::function<void(const Stmt *)> &Fn) const {
  forEachStmtIn(Body, Fn);
}

static void printStmts(const LoopFunction &F, const std::vector<Stmt *> &Stmts,
                       int Depth, std::string &Out) {
  std::string Indent(static_cast<size_t>(Depth) * 2, ' ');
  for (const Stmt *S : Stmts) {
    Out += Indent + S->str(F);
    if (S->Kind == StmtKind::If) {
      Out += " {\n";
      printStmts(F, S->Then, Depth + 1, Out);
      if (!S->Else.empty()) {
        Out += Indent + "} else {\n";
        printStmts(F, S->Else, Depth + 1, Out);
      }
      Out += Indent + "}\n";
    } else {
      Out += "\n";
    }
  }
}

std::string LoopFunction::print() const {
  std::string Out = "loop " + Name + " (";
  for (size_t I = 0; I < Scalars.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::string(isa::elemTypeName(Scalars[I].Type)) + " " +
           Scalars[I].Name;
    if (Scalars[I].IsLiveOut)
      Out += " /*liveout*/";
  }
  for (size_t I = 0; I < Arrays.size(); ++I) {
    Out += ", ";
    Out += std::string(isa::elemTypeName(Arrays[I].Elem)) + " " +
           Arrays[I].Name + "[]";
  }
  Out += ")\n";
  Out += "for (i = 0; i < " +
         (TripCountScalar >= 0 ? Scalars[TripCountScalar].Name
                               : std::string("?")) +
         "; ++i) {\n";
  printStmts(*this, Body, 1, Out);
  Out += "}\n";
  return Out;
}
