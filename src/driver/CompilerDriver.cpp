//===- driver/CompilerDriver.cpp ------------------------------------------===//

#include "driver/CompilerDriver.h"

#include "codegen/ScalarCodeGen.h"
#include "driver/LoweringStrategy.h"
#include "driver/Verifier.h"
#include "pdg/Pdg.h"
#include "support/Error.h"

#include <utility>

using namespace flexvec;
using namespace flexvec::driver;
using codegen::CodeGenKind;
using codegen::CompiledLoop;

namespace {

std::string stmtRef(int Node) { return "S" + std::to_string(Node); }

// --- ir-normalize -----------------------------------------------------------

/// Validates the loop against the register conventions and records its
/// static shape. This is where a malformed loop dies loudly instead of
/// overflowing the parameter register file mid-emission.
class IrNormalizePass final : public Pass {
public:
  const char *name() const override { return "ir-normalize"; }

  void run(PassContext &Ctx) override {
    if (Ctx.F.scalars().size() > codegen::MaxScalarParams)
      fatalError("loop has more scalar parameters than the register "
                 "conventions allow");
    if (Ctx.F.arrays().size() > codegen::MaxArrayParams)
      fatalError("loop has more array parameters than the register "
                 "conventions allow");
    if (Ctx.F.tripCountScalar() < 0)
      fatalError("loop has no trip-count scalar");

    Ctx.R.Shape = analysis::computeLoopShape(Ctx.F);
    Ctx.R.Remarks.analysis(
        name(), "loop-shape",
        "vector-memory-ops=" + std::to_string(Ctx.R.Shape.VectorMemoryOps) +
            " gather-scatter=" +
            std::to_string(Ctx.R.Shape.GatherScatterOps) +
            " compute-ops=" + std::to_string(Ctx.R.Shape.ComputeOps));
  }
};

// --- pdg-build --------------------------------------------------------------

class PdgBuildPass final : public Pass {
public:
  const char *name() const override { return "pdg-build"; }

  void run(PassContext &Ctx) override {
    Ctx.Graph = std::make_unique<pdg::Pdg>(Ctx.F);
    Ctx.R.PdgDump = Ctx.Graph->dump();
  }
};

// --- pattern-analysis -------------------------------------------------------

class PatternAnalysisPass final : public Pass {
public:
  const char *name() const override { return "pattern-analysis"; }

  void run(PassContext &Ctx) override {
    const ir::LoopFunction &F = Ctx.F;
    RemarkStream &Rs = Ctx.R.Remarks;
    analysis::VectorizationPlan &Plan = Ctx.R.Plan;
    Plan = analysis::analyzeLoop(*Ctx.Graph);

    if (!Plan.Vectorizable)
      Rs.missed(name(), "not-vectorizable", Plan.Reason);

    for (const analysis::ReductionInfo &R : Plan.Reductions) {
      const char *Kind = R.Kind == analysis::ReductionKind::Add   ? "add"
                         : R.Kind == analysis::ReductionKind::Min ? "min"
                                                                  : "max";
      Rs.analysis(name(), "reduction",
                  std::string("recognized ") + Kind + " reduction over '" +
                      F.scalar(R.ScalarId).Name + "'" +
                      (R.GuardNode ? " (guarded)" : ""))
          .Node = R.Node;
    }
    for (const analysis::EarlyExitInfo &EE : Plan.EarlyExits)
      Rs.analysis(name(), "early-exit",
                  "early loop termination: guard " + stmtRef(EE.GuardNode) +
                      " breaks at " + stmtRef(EE.BreakNode) +
                      (EE.BreakInElse ? " (break in else region)" : ""))
          .Node = EE.GuardNode;
    for (const analysis::CondUpdateVpl &CU : Plan.CondUpdateVpls) {
      std::string Names;
      for (const analysis::CondUpdateScalar &U : CU.Updates) {
        if (!Names.empty())
          Names += ", ";
        Names += "'" + F.scalar(U.ScalarId).Name + "'";
      }
      Rs.analysis(name(), "cond-update-vpl",
                  "conditional-update VPL over top-level statements " +
                      std::to_string(CU.FirstTop) + ".." +
                      std::to_string(CU.LastTop) + " updating " + Names)
          .Node = CU.Updates.empty() ? 0 : CU.Updates[0].UpdateNode;
    }
    for (const analysis::MemConflictVpl &MC : Plan.MemConflictVpls)
      Rs.analysis(name(), "mem-conflict-vpl",
                  "runtime memory-conflict VPL on array '" +
                      F.array(MC.ArrayId).Name +
                      "' over top-level statements " +
                      std::to_string(MC.FirstTop) + ".." +
                      std::to_string(MC.LastTop));
  }
};

// --- plan-legalize ----------------------------------------------------------

/// Finalizes the plan for emission: builds the per-statement speculative-
/// load bitset so isSpeculative() is O(1) during codegen.
class PlanLegalizePass final : public Pass {
public:
  const char *name() const override { return "plan-legalize"; }

  void run(PassContext &Ctx) override {
    analysis::VectorizationPlan &Plan = Ctx.R.Plan;
    Plan.seal(Ctx.F.numStmts());
    if (!Plan.SpeculativeLoadNodes.empty()) {
      std::string Sites;
      for (int N : Plan.SpeculativeLoadNodes) {
        if (!Sites.empty())
          Sites += ", ";
        Sites += stmtRef(N);
      }
      Ctx.R.Remarks.analysis(name(), "speculative-loads",
                             "loads at " + Sites +
                                 " execute speculatively and need "
                                 "first-faulting forms (or RTM)");
    }
  }
};

// --- lower ------------------------------------------------------------------

/// Generates the scalar baseline and runs each of the four vector
/// strategies through the Algorithm-1 skeleton.
class LowerPass final : public Pass {
public:
  const char *name() const override { return "lower"; }

  void run(PassContext &Ctx) override {
    CompileResult &R = Ctx.R;
    R.Scalar = codegen::generateScalar(Ctx.F);
    R.Remarks.note(name(), "scalar", R.Scalar.Notes).Variant = "scalar";

    R.Traditional = lower(Ctx, CodeGenKind::Traditional);
    R.Speculative = lower(Ctx, CodeGenKind::Speculative);
    R.FlexVec = lower(Ctx, CodeGenKind::FlexVec);
    if (!R.FlexVec && !R.Remarks.empty()) {
      // Legacy diagnostic surface, kept for callers of PipelineResult.
      const Remark &Last = R.Remarks.remarks().back();
      if (Last.Kind == RemarkKind::Missed && Last.Variant == "flexvec")
        R.Diagnostics.push_back("flexvec: " + Last.Message);
    }
    R.Rtm = lower(Ctx, CodeGenKind::FlexVecRtm);
    {
      std::unique_ptr<LoweringStrategy> S =
          createAdaptiveStrategy(Ctx.Opts.Adaptive);
      R.Adaptive = lowerLoop(Ctx.F, R.Plan, Ctx.Opts.RtmTile, *S, R.Remarks,
                             Ctx.Opts.Vec, Ctx.Opts.Predicated);
    }
  }

private:
  static std::optional<CompiledLoop> lower(PassContext &Ctx,
                                           CodeGenKind Kind) {
    std::unique_ptr<LoweringStrategy> S = createStrategy(Kind);
    return lowerLoop(Ctx.F, Ctx.R.Plan, Ctx.Opts.RtmTile, *S, Ctx.R.Remarks,
                     Ctx.Opts.Vec, Ctx.Opts.Predicated);
  }
};

// --- peephole ---------------------------------------------------------------

class PeepholePass final : public Pass {
public:
  const char *name() const override { return "peephole"; }

  void run(PassContext &Ctx) override {
    CompileResult &R = Ctx.R;
    if (!R.FlexVec)
      return;
    CompiledLoop Opt = *R.FlexVec;
    Opt.Prog = codegen::optimizeProgram(R.FlexVec->Prog,
                                        codegen::PeepholeOptions(),
                                        &R.OptStats);
    Opt.Notes += "; peephole: " + R.OptStats.describe();
    R.FlexVecOpt = std::move(Opt);
    R.Remarks.note(name(), "peephole", R.OptStats.describe()).Variant =
        "flexvec";
  }
};

// --- program-verify ---------------------------------------------------------

/// Runs the structural verifier over every generated program. Emits no
/// remarks (it is gated on build config / environment, and remark streams
/// must be identical across configs); a violation is a codegen bug and
/// dies loudly.
class ProgramVerifyPass final : public Pass {
public:
  const char *name() const override { return "program-verify"; }

  void run(PassContext &Ctx) override {
    bool Enabled = Ctx.Opts.Verify == DriverOptions::VerifyMode::On ||
                   (Ctx.Opts.Verify == DriverOptions::VerifyMode::Auto &&
                    verificationEnabled());
    if (!Enabled)
      return;
    const CompileResult &R = Ctx.R;
    verify(Ctx, "scalar", R.Scalar);
    verify(Ctx, "traditional", R.Traditional);
    verify(Ctx, "speculative", R.Speculative);
    verify(Ctx, "flexvec", R.FlexVec);
    verify(Ctx, "flexvec-rtm", R.Rtm);
    verify(Ctx, "flexvec-adaptive", R.Adaptive);
    verify(Ctx, "flexvec-opt", R.FlexVecOpt);
  }

private:
  static void verify(PassContext &Ctx, const char *Variant,
                     const std::optional<CompiledLoop> &C) {
    if (C)
      verify(Ctx, Variant, *C);
  }
  static void verify(PassContext &Ctx, const char *Variant,
                     const CompiledLoop &C) {
    std::vector<std::string> Errors = verifyProgram(C.Prog);
    if (Errors.empty())
      return;
    std::string Msg = "program verification failed for loop '" +
                      Ctx.F.name() + "' variant " + Variant + ":";
    for (const std::string &E : Errors)
      Msg += "\n  " + E;
    fatalError(Msg);
  }
};

} // namespace

PassManager driver::buildPipeline() {
  PassManager PM;
  PM.add(std::make_unique<IrNormalizePass>());
  PM.add(std::make_unique<PdgBuildPass>());
  PM.add(std::make_unique<PatternAnalysisPass>());
  PM.add(std::make_unique<PlanLegalizePass>());
  PM.add(std::make_unique<LowerPass>());
  PM.add(std::make_unique<PeepholePass>());
  PM.add(std::make_unique<ProgramVerifyPass>());
  return PM;
}

CompileResult driver::compileLoop(const ir::LoopFunction &F,
                                  const DriverOptions &Opts) {
  CompileResult R;
  PassContext Ctx(F, Opts, R);
  PassManager PM = buildPipeline();
  PM.run(Ctx);
  return R;
}
