//===- driver/LoweringStrategy.h - Algorithm-1 lowering driver --*- C++ -*-===//
//
// The single Algorithm-1 lowering skeleton and the strategy interface the
// four vector variants plug into. The skeleton owns everything the paper's
// Algorithm 1 shares across variants — preheader, the chunked vector loop
// (head guard, chunk prolog, body, chunk epilog, early-exit break,
// backedge), the live-out block, and the halt — while a LoweringStrategy
// contributes only what genuinely differs: legality, emitter options, the
// shape of the loop nest (flat chunks vs. RTM tiles vs. checkpointed
// straightline chunks), and the scalar-fallback tails.
//
// Emission-order contract: the skeleton emits, in order,
//
//   preheader | loop nest | resume blocks | VecExit: live-outs |
//   fallback tail | HaltL: halt
//
// where "resume blocks" are fallback bodies that re-enter the loop (the
// RTM abort handler, the speculative scalar chunk) and the "fallback tail"
// runs after the live-outs (FlexVec's first-faulting scalar fallback, or
// just the jmp-to-halt that skips it). Strategies with empty tails fall
// through from the live-outs straight into the halt, reproducing the
// traditional layout byte-for-byte.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_DRIVER_LOWERINGSTRATEGY_H
#define FLEXVEC_DRIVER_LOWERINGSTRATEGY_H

#include "codegen/Compiled.h"
#include "codegen/VectorEmitter.h"
#include "driver/Remarks.h"

#include <functional>
#include <memory>
#include <optional>

namespace flexvec {
namespace driver {

/// Optional early-exit break emitted after the chunk epilog. (Namespace
/// scope rather than nested: a nested aggregate with member initializers
/// cannot be a `= {}` default argument inside its own enclosing class.)
struct BreakCheck {
  bool Enabled = false;
  isa::ProgramBuilder::Label To = 0;
  const char *Comment = nullptr;
};

/// Shared state of one lowering: the builder, the loop, the plan, and the
/// skeleton's labels. Owned by lowerLoop(); strategies receive it in every
/// hook.
struct LoweringContext {
  isa::ProgramBuilder B;
  const ir::LoopFunction &F;
  const analysis::VectorizationPlan &Plan;
  unsigned RtmTile;
  RemarkStream &Remarks;
  /// Valid during the emission hooks (constructed after prepare()).
  codegen::VectorEmitter *Em = nullptr;
  /// Bound by the skeleton: the live-out block and the final halt.
  isa::ProgramBuilder::Label VecExit = 0;
  isa::ProgramBuilder::Label HaltL = 0;
  /// Non-zero only under the adaptive strategy: base address of the
  /// persistent dispatch cell. Strategies whose resume/fallback blocks mark
  /// an aborted speculative attempt bump the cell's abort-event counter
  /// when this is set; normal lowering (0) is byte-identical to before.
  uint64_t DispatchCellAddr = 0;
  /// Vector width this lowering compiles for; stamped into the Program and
  /// the emitter options. Defaults to the 512-bit baseline.
  isa::VectorConfig Vec;
  /// SVE-style predicated loop control (KWHILELT chunk heads).
  bool Predicated = false;

  LoweringContext(const ir::LoopFunction &F,
                  const analysis::VectorizationPlan &Plan, unsigned RtmTile,
                  RemarkStream &Remarks,
                  isa::VectorConfig Vec = isa::VectorConfig(),
                  bool Predicated = false)
      : F(F), Plan(Plan), RtmTile(RtmTile), Remarks(Remarks), Vec(Vec),
        Predicated(Predicated) {
    B.setVectorBytes(Vec.Bytes);
  }

  /// Trip-count register (scalar parameter holding n).
  isa::Reg trip() const {
    return codegen::scalarParamReg(F.tripCountScalar());
  }
  /// Scratch register used by every loop-head guard.
  isa::Reg headTemp() const { return isa::Reg::scalar(25); }

  /// Optional early-exit break emitted after the chunk epilog.
  using BreakCheck = driver::BreakCheck;

  /// Algorithm 1's loop-head guard: `t = i < Bound; brZero t, ExitTo`.
  void emitLoopHead(isa::Reg Bound, isa::ProgramBuilder::Label ExitTo);

  /// One full Algorithm-1 chunk loop against \p Bound:
  ///
  ///   Top:  head guard (exit to ExitTo)
  ///         chunk prolog
  ///         [AfterProlog]
  ///         body            (Em->emitBody() unless Body overrides)
  ///         chunk epilog
  ///         [break check]
  ///         jmp Top
  ///
  /// This is the one place the chunked loop structure exists; every
  /// strategy's nest is built from it. Returns the loop-top label so
  /// resume blocks can re-enter the loop.
  isa::ProgramBuilder::Label
  emitChunkLoop(isa::Reg Bound, isa::ProgramBuilder::Label ExitTo,
                BreakCheck Break = {},
                const std::function<void()> &AfterProlog = {},
                const std::function<void()> &Body = {});
};

/// One code-generation variant plugged into the Algorithm-1 skeleton.
class LoweringStrategy {
public:
  virtual ~LoweringStrategy() = default;

  virtual codegen::CodeGenKind kind() const = 0;
  /// Variant name, matching the evaluation matrix columns ("traditional",
  /// "speculative", "flexvec", "flexvec-rtm").
  virtual const char *name() const = 0;

  /// Legality check and per-loop setup (labels, checkpoint schedules).
  /// Runs before the emitter exists. A decline must emit a Missed remark
  /// tagged with name() and return false — no refusal is ever silent.
  virtual bool prepare(LoweringContext &Ctx) = 0;

  /// Emitter configuration for this strategy.
  virtual codegen::VectorEmitter::Options
  emitterOptions(const LoweringContext &Ctx) const = 0;

  /// The strategy's loop nest, built from Ctx.emitChunkLoop /
  /// Ctx.emitLoopHead. Exits branch to Ctx.VecExit.
  virtual void emitLoopNest(LoweringContext &Ctx) = 0;

  /// Blocks between the loop nest and the live-out block that re-enter the
  /// loop (RTM abort handler, speculative scalar chunk). Default: none.
  virtual void emitResumeBlocks(LoweringContext &Ctx) { (void)Ctx; }

  /// Code after the live-outs: the jmp-to-halt plus any scalar fallback
  /// entered from inside the loop (FlexVec's first-faulting bail). The
  /// default emits nothing, so control falls through into the halt.
  virtual void emitFallbackTail(LoweringContext &Ctx) { (void)Ctx; }

  /// CompiledLoop::Notes text; called after emission completes.
  virtual std::string notes(const LoweringContext &Ctx) const = 0;
};

/// Creates the strategy for \p Kind (one of the five vector variants; the
/// adaptive strategy is built with its default configuration — use
/// createAdaptiveStrategy for a custom one).
std::unique_ptr<LoweringStrategy> createStrategy(codegen::CodeGenKind Kind);

/// The body of the Algorithm-1 skeleton: creates fresh VecExit/HaltL labels
/// on \p Ctx, constructs the emitter from \p S's options, and emits
/// preheader | nest | resume | live-outs | tail | halt. Returns the
/// strategy's notes (computed while the emitter is still alive). Exposed so
/// the adaptive strategy can nest a complete traditional skeleton behind
/// its dispatch guard; \p S must already have prepare()d successfully.
std::string emitSkeletonBody(LoweringContext &Ctx, LoweringStrategy &S);

/// THE Algorithm-1 driver: runs \p S through the shared skeleton. Returns
/// nullopt when the strategy declines (after it has emitted a Missed
/// remark); otherwise emits an Applied remark recording the generation.
std::optional<codegen::CompiledLoop>
lowerLoop(const ir::LoopFunction &F, const analysis::VectorizationPlan &Plan,
          unsigned RtmTile, LoweringStrategy &S, RemarkStream &Remarks,
          isa::VectorConfig Vec = isa::VectorConfig(),
          bool Predicated = false);

} // namespace driver
} // namespace flexvec

#endif // FLEXVEC_DRIVER_LOWERINGSTRATEGY_H
