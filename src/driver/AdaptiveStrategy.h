//===- driver/AdaptiveStrategy.h - Adaptive multi-versioned codegen -*- C++ -*-===//
//
// The fifth lowering product, flexvec-adaptive: one program carrying BOTH
// the speculative variant (flexvec-rtm, or flexvec when RTM declines) and
// the traditional variant (or a scalar tail when the loop needs FlexVec),
// dispatched at run time by a preheader prologue that consults
//
//  (a) a cheap runtime guard — a minimum trip-count check plus an
//      alias-range overlap check over the loop's store/load base+extent
//      pairs — and
//  (b) a persistent per-loop dispatch cell: a counter block in the
//      program's data image tracking invocations, aborted invocations,
//      guard outcomes, and demotions.
//
// Once the observed abort rate crosses the configured threshold (default:
// >= 50% aborted invocations over >= 8 invocations) the prologue stores a
// demoted state flag and every later invocation re-dispatches permanently
// to the traditional variant — graceful degradation under abort storms
// instead of paying the retry+rollback tax forever.
//
// Demotion state machine (cell word +0):
//
//    0 = promoted: run guard, then the speculative nest
//    1 = demoted:  jump straight to the traditional variant
//
// The state is sticky by construction — no emitted instruction ever clears
// it — so a storm that ends after demotion cannot flap the program back.
//
// Abort attribution is lag-1: the speculative resume blocks bump an
// abort-event counter (cell +24); the NEXT invocation's prologue compares
// it against the previous snapshot (+32) and, when it grew, charges one
// aborted invocation. The counter block uses only existing scalar
// load/store/ALU/branch instructions — no new opcodes.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_DRIVER_ADAPTIVESTRATEGY_H
#define FLEXVEC_DRIVER_ADAPTIVESTRATEGY_H

#include "driver/LoweringStrategy.h"

namespace flexvec {
namespace driver {
namespace dispatch {

/// Base address of the dispatch cell. Far above any BumpAllocator image
/// (which grows up from 0x10000) so the cell can never collide with
/// workload data; harnesses map it before running an adaptive program and
/// unmap it before fingerprinting so memory digests stay comparable with
/// the scalar reference.
inline constexpr uint64_t CellAddr = 1ULL << 40;
inline constexpr uint64_t CellSize = 64;

/// I64 field offsets within the cell.
inline constexpr int64_t StateOff = 0;           ///< 0 promoted, 1 demoted.
inline constexpr int64_t InvocationsOff = 8;     ///< Speculative invocations.
inline constexpr int64_t AbortedOff = 16;        ///< Aborted invocations.
inline constexpr int64_t AbortEventsOff = 24;    ///< Fallback entries.
inline constexpr int64_t PrevAbortEventsOff = 32;///< Lag-1 reconcile snapshot.
inline constexpr int64_t GuardPassOff = 40;
inline constexpr int64_t GuardFailOff = 48;
inline constexpr int64_t DemotionsOff = 56;

} // namespace dispatch

/// Thresholds of the dispatch prologue; all compiled into the program.
struct AdaptiveConfig {
  /// Trip counts below this fail the guard (vector setup cost dominates).
  unsigned MinTrip = 16;
  /// Demotion is considered only after this many speculative invocations.
  unsigned Window = 8;
  /// Demote when aborted invocations reach this percentage of speculative
  /// invocations (>= comparison, integer arithmetic).
  unsigned DemotePercent = 50;
  /// Dispatch-cell base address (tests may relocate it).
  uint64_t CellAddr = dispatch::CellAddr;
};

/// Post-run dispatch-cell counter values, read back by the harnesses.
struct DispatchCounts {
  uint64_t State = 0;
  uint64_t Invocations = 0;
  uint64_t AbortedInvocations = 0;
  uint64_t AbortEvents = 0;
  uint64_t GuardPass = 0;
  uint64_t GuardFail = 0;
  uint64_t Demotions = 0;
};

/// Synthesizes the runtime dispatch remarks for one adaptive execution:
/// `dispatch.guard-failed` when any invocation failed the runtime guard,
/// then exactly one of `dispatch.demoted` / `dispatch.promoted-stay`
/// describing where the state machine ended up. Stable ids, pinned by
/// RemarksGoldenTest.
std::vector<Remark> dispatchRemarks(const DispatchCounts &C);

/// Creates the adaptive strategy with \p Cfg.
std::unique_ptr<LoweringStrategy>
createAdaptiveStrategy(const AdaptiveConfig &Cfg = AdaptiveConfig());

} // namespace driver
} // namespace flexvec

#endif // FLEXVEC_DRIVER_ADAPTIVESTRATEGY_H
