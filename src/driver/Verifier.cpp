//===- driver/Verifier.cpp ------------------------------------------------===//

#include "driver/Verifier.h"

#include <cstdlib>
#include <string>

using namespace flexvec;
using namespace flexvec::driver;
using namespace flexvec::isa;

namespace {

/// Expected register class of one operand slot. Optional slots accept
/// Reg::none(); required slots do not.
enum class Want : uint8_t {
  None,     ///< Must be absent (Reg::none()).
  Scalar,   ///< Required scalar.
  Vector,   ///< Required vector.
  Mask,     ///< Required mask.
  OptScalar,///< Scalar or absent.
  OptVector,///< Vector or absent.
  OptMask,  ///< Mask or absent (absent reads as k0 / all lanes).
};

/// Operand contract of one opcode.
struct OperandSpec {
  Want Dst = Want::None;
  Want Src1 = Want::None;
  Want Src2 = Want::None;
  Want Src3 = Want::None;
  Want MaskReg = Want::None;
  bool NeedsTarget = false;
  bool IsMemory = false; ///< Scale must be 1/2/4/8.
  /// First-faulting: MaskReg is an in/out operand and must be writable
  /// (k1..k7) — k0 cannot record the clip point.
  bool MaskInOut = false;
};

OperandSpec specFor(Opcode Op) {
  OperandSpec S;
  switch (Op) {
  case Opcode::Halt:
  case Opcode::Nop:
  case Opcode::XEnd:
  case Opcode::XAbort:
    return S;
  case Opcode::Jmp:
    S.NeedsTarget = true;
    return S;
  case Opcode::XBegin:
    S.NeedsTarget = true;
    return S;
  case Opcode::BrZero:
  case Opcode::BrNonZero:
    S.Src1 = Want::Scalar;
    S.NeedsTarget = true;
    return S;

  case Opcode::MovImm:
  case Opcode::FMovImm:
    S.Dst = Want::Scalar;
    return S;
  case Opcode::Mov:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Scalar;
    return S;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Cmp:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FMin:
  case Opcode::FMax:
  case Opcode::FCmp:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Scalar;
    S.Src2 = Want::Scalar;
    return S;
  case Opcode::AddImm:
  case Opcode::MulImm:
  case Opcode::AndImm:
  case Opcode::ShlImm:
  case Opcode::ShrImm:
  case Opcode::CmpImm:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Scalar;
    return S;
  case Opcode::Select:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Scalar;
    S.Src2 = Want::Scalar;
    S.Src3 = Want::Scalar;
    return S;
  case Opcode::Load:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Scalar;
    S.Src2 = Want::OptScalar;
    S.IsMemory = true;
    return S;
  case Opcode::Store:
    S.Src1 = Want::Scalar;
    S.Src2 = Want::OptScalar;
    S.Src3 = Want::Scalar;
    S.IsMemory = true;
    return S;

  case Opcode::VBroadcast:
    S.Dst = Want::Vector;
    S.Src1 = Want::Scalar;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VBroadcastImm:
    S.Dst = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VIndex:
    S.Dst = Want::Vector;
    S.Src1 = Want::Scalar;
    return S;
  case Opcode::VAdd:
  case Opcode::VSub:
  case Opcode::VMul:
  case Opcode::VAnd:
  case Opcode::VOr:
  case Opcode::VXor:
  case Opcode::VMin:
  case Opcode::VMax:
  case Opcode::VFAdd:
  case Opcode::VFSub:
  case Opcode::VFMul:
  case Opcode::VFDiv:
  case Opcode::VFMin:
  case Opcode::VFMax:
    S.Dst = Want::Vector;
    S.Src1 = Want::Vector;
    S.Src2 = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VAddImm:
  case Opcode::VMulImm:
  case Opcode::VShlImm:
    S.Dst = Want::Vector;
    S.Src1 = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VCmp:
    S.Dst = Want::Mask;
    S.Src1 = Want::Vector;
    S.Src2 = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VCmpImm:
    S.Dst = Want::Mask;
    S.Src1 = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VBlend:
    S.Dst = Want::Vector;
    S.Src1 = Want::Vector;
    S.Src2 = Want::Vector;
    S.MaskReg = Want::Mask;
    return S;
  case Opcode::VExtractLast:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VReduceAdd:
  case Opcode::VReduceMin:
  case Opcode::VReduceMax:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Vector;
    S.Src2 = Want::Scalar; // running/identity value folded into the result
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VLoad:
    S.Dst = Want::Vector;
    S.Src1 = Want::Scalar;
    S.Src2 = Want::OptScalar;
    S.MaskReg = Want::OptMask;
    S.IsMemory = true;
    return S;
  case Opcode::VStore:
    S.Src1 = Want::Scalar;
    S.Src2 = Want::OptScalar;
    S.Src3 = Want::Vector;
    S.MaskReg = Want::OptMask;
    S.IsMemory = true;
    return S;
  case Opcode::VGather:
    S.Dst = Want::Vector;
    S.Src1 = Want::Scalar;
    S.Src2 = Want::Vector;
    S.MaskReg = Want::OptMask;
    S.IsMemory = true;
    return S;
  case Opcode::VScatter:
    S.Src1 = Want::Scalar;
    S.Src2 = Want::Vector;
    S.Src3 = Want::Vector;
    S.MaskReg = Want::OptMask;
    S.IsMemory = true;
    return S;

  case Opcode::VMovFF:
    S.Dst = Want::Vector;
    S.Src1 = Want::Scalar;
    S.Src2 = Want::OptScalar;
    S.MaskReg = Want::Mask;
    S.IsMemory = true;
    S.MaskInOut = true;
    return S;
  case Opcode::VGatherFF:
    S.Dst = Want::Vector;
    S.Src1 = Want::Scalar;
    S.Src2 = Want::Vector;
    S.MaskReg = Want::Mask;
    S.IsMemory = true;
    S.MaskInOut = true;
    return S;
  case Opcode::VSlctLast:
    S.Dst = Want::Vector;
    S.Src1 = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::VConflictM:
    S.Dst = Want::Mask;
    S.Src1 = Want::Vector;
    S.Src2 = Want::Vector;
    S.MaskReg = Want::OptMask;
    return S;
  case Opcode::KFtmExc:
  case Opcode::KFtmInc:
    S.Dst = Want::Mask;
    S.Src1 = Want::Mask; // k_stop
    S.MaskReg = Want::OptMask;
    return S;

  case Opcode::KMov:
  case Opcode::KNot:
    S.Dst = Want::Mask;
    S.Src1 = Want::Mask;
    return S;
  case Opcode::KSet:
    S.Dst = Want::Mask;
    return S;
  case Opcode::KAnd:
  case Opcode::KOr:
  case Opcode::KXor:
  case Opcode::KAndN:
    S.Dst = Want::Mask;
    S.Src1 = Want::Mask;
    S.Src2 = Want::Mask;
    return S;
  case Opcode::KTest:
  case Opcode::KPopcnt:
    S.Dst = Want::Scalar;
    S.Src1 = Want::Mask;
    return S;
  case Opcode::KWhileLT:
    S.Dst = Want::Mask;
    S.Src1 = Want::Scalar; // induction value
    S.Src2 = Want::Scalar; // bound
    return S;
  }
  return S; // unreachable; covered switch
}

const char *wantName(Want W) {
  switch (W) {
  case Want::None:
    return "no register";
  case Want::Scalar:
  case Want::OptScalar:
    return "a scalar register";
  case Want::Vector:
  case Want::OptVector:
    return "a vector register";
  case Want::Mask:
  case Want::OptMask:
    return "a mask register";
  }
  return "?";
}

bool classMatches(Want W, const Reg &R) {
  switch (W) {
  case Want::None:
    return !R.isValid();
  case Want::Scalar:
    return R.isScalar();
  case Want::Vector:
    return R.isVector();
  case Want::Mask:
    return R.isMask();
  case Want::OptScalar:
    return !R.isValid() || R.isScalar();
  case Want::OptVector:
    return !R.isValid() || R.isVector();
  case Want::OptMask:
    return !R.isValid() || R.isMask();
  }
  return false;
}

bool indexInRange(const Reg &R) {
  switch (R.Class) {
  case RegClass::None:
    return true;
  case RegClass::Scalar:
    return R.Index < NumScalarRegs;
  case RegClass::Vector:
    return R.Index < NumVectorRegs;
  case RegClass::Mask:
    return R.Index < NumMaskRegs;
  }
  return false;
}

} // namespace

bool driver::verificationEnabled() {
#ifndef NDEBUG
  return true;
#else
  const char *Env = std::getenv("FLEXVEC_VERIFY");
  return Env && Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0');
#endif
}

std::vector<std::string> driver::verifyProgram(const Program &Prog) {
  std::vector<std::string> Errors;
  auto Fail = [&](size_t Idx, const Instruction &I, std::string Why) {
    Errors.push_back("instr " + std::to_string(Idx) + " `" + I.str() +
                     "`: " + std::move(Why));
  };

  if (Prog.empty()) {
    Errors.push_back("program is empty");
    return Errors;
  }

  bool SawHalt = false;
  for (size_t Idx = 0; Idx < Prog.size(); ++Idx) {
    const Instruction &I = Prog[Idx];
    OperandSpec Spec = specFor(I.Op);

    struct Slot {
      const char *Name;
      const Reg &R;
      Want W;
    } Slots[] = {
        {"Dst", I.Dst, Spec.Dst},         {"Src1", I.Src1, Spec.Src1},
        {"Src2", I.Src2, Spec.Src2},      {"Src3", I.Src3, Spec.Src3},
        {"MaskReg", I.MaskReg, Spec.MaskReg},
    };
    for (const Slot &S : Slots) {
      if (!classMatches(S.W, S.R))
        Fail(Idx, I,
             std::string(S.Name) + " must be " + wantName(S.W) + ", got " +
                 (S.R.isValid() ? S.R.str() : std::string("none")));
      if (!indexInRange(S.R))
        Fail(Idx, I, std::string(S.Name) + " register index out of range");
    }

    // k0 reads as all-ones but is not writable — a mask-producing op
    // targeting it silently loses its result.
    if (I.Dst.isMask() && I.Dst.Index == 0)
      Fail(Idx, I, "writes k0, which is hard-wired to all-ones");
    if (Spec.MaskInOut && I.MaskReg.isMask() && I.MaskReg.Index == 0)
      Fail(Idx, I, "first-faulting mask operand is in/out and cannot be k0");

    if (Spec.NeedsTarget) {
      if (I.Target < 0 || static_cast<size_t>(I.Target) >= Prog.size())
        Fail(Idx, I, "branch target " + std::to_string(I.Target) +
                         " is outside the program");
    } else if (I.Target != NoTarget) {
      Fail(Idx, I, "non-branch carries a branch target");
    }

    if (Spec.IsMemory && I.Scale != 1 && I.Scale != 2 && I.Scale != 4 &&
        I.Scale != 8)
      Fail(Idx, I, "memory scale must be 1, 2, 4, or 8");

    SawHalt |= I.Op == Opcode::Halt;
  }

  if (!SawHalt)
    Errors.push_back("program has no Halt");
  const Instruction &Last = Prog[Prog.size() - 1];
  if (Last.Op != Opcode::Halt && Last.Op != Opcode::Jmp)
    Errors.push_back("program can fall off the end (last instruction is `" +
                     Last.str() + "`)");
  return Errors;
}
