//===- driver/Verifier.h - Post-codegen Program verification ----*- C++ -*-===//
//
// Structural verification of finalized Programs: register-class and
// register-index validity per opcode, the mask-role conventions from
// codegen/Compiled.h (k0 is hard-wired all-ones and must never be written;
// first-faulting loads need a writable in/out mask), branch-target range
// checks, memory-scale validity, and program-termination invariants.
//
// The verifier is a diagnostic pass, not a sanitizer of emulator inputs:
// it reports convention violations that the emulator may happily execute
// (e.g. a vector op writing a reserved register) but that indicate a
// codegen bug. It runs on every compiled variant in debug builds and, via
// FLEXVEC_VERIFY=1, in the release CI jobs.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_DRIVER_VERIFIER_H
#define FLEXVEC_DRIVER_VERIFIER_H

#include "isa/Program.h"

#include <string>
#include <vector>

namespace flexvec {
namespace driver {

/// Checks \p Prog against the ISA operand contracts and the register-role
/// conventions. Returns one human-readable message per violation (empty
/// means the program verified clean). Messages name the instruction index
/// and its disassembly.
std::vector<std::string> verifyProgram(const isa::Program &Prog);

/// Whether the program-verify pass should run: true in !NDEBUG builds and
/// whenever the FLEXVEC_VERIFY environment variable is set to a non-empty,
/// non-"0" value.
bool verificationEnabled();

} // namespace driver
} // namespace flexvec

#endif // FLEXVEC_DRIVER_VERIFIER_H
