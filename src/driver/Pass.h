//===- driver/Pass.h - Typed pass pipeline ----------------------*- C++ -*-===//
//
// The minimal pass infrastructure the FlexVec driver runs on: a Pass is a
// named unit of work over one loop, a PassManager runs a fixed sequence of
// them, and a PassContext carries the loop, the driver options, the
// under-construction CompileResult, and pass-to-pass state (the PDG).
//
// Unlike a general compiler pass manager there is no scheduling or
// invalidation — the pipeline is a straight line by design (the paper's
// flow is analysis → plan → lowering) — but every stage has a name, its
// own remarks, and a single place in the order, which is what the remark
// engine, the verifier, and future cost-model experiments need.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_DRIVER_PASS_H
#define FLEXVEC_DRIVER_PASS_H

#include <memory>
#include <vector>

namespace flexvec {

namespace ir {
class LoopFunction;
}
namespace pdg {
class Pdg;
}

namespace driver {

struct CompileResult;
struct DriverOptions;

/// Everything a pass can see: the loop, the options, the result being
/// built (plans, programs, remarks), and inter-pass analyses.
struct PassContext {
  const ir::LoopFunction &F;
  const DriverOptions &Opts;
  CompileResult &R;
  /// Built by pdg-build, consumed by pattern-analysis.
  std::unique_ptr<pdg::Pdg> Graph;

  PassContext(const ir::LoopFunction &F, const DriverOptions &Opts,
              CompileResult &R)
      : F(F), Opts(Opts), R(R) {}
};

/// One named stage of the compilation pipeline.
class Pass {
public:
  virtual ~Pass() = default;
  /// Stable pass name; remarks reference it and docs/COMPILER.md catalogs
  /// it.
  virtual const char *name() const = 0;
  virtual void run(PassContext &Ctx) = 0;
};

/// Runs passes in registration order.
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  void run(PassContext &Ctx) {
    for (const std::unique_ptr<Pass> &P : Passes)
      P->run(Ctx);
  }

  size_t size() const { return Passes.size(); }
  const Pass &pass(size_t I) const { return *Passes[I]; }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

} // namespace driver
} // namespace flexvec

#endif // FLEXVEC_DRIVER_PASS_H
