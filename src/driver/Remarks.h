//===- driver/Remarks.h - Structured vectorization remarks ------*- C++ -*-===//
//
// LLVM-style optimization remarks for the FlexVec compiler: every pass
// reports what it recognized, what it transformed, and — crucially — why it
// declined, as structured records instead of ad-hoc strings or silent
// nullopts. The stream is part of the compile result, so it is cached with
// the programs, rendered into the bench payload's per-cell JSON, and
// exposed through `flexvec-cli --remarks[=json]`.
//
// Determinism contract: a remark stream is a pure function of the loop
// *structure* (remarks never embed the loop's name — structurally identical
// loops share one cached compile, so any name-dependent byte would make the
// bench payload depend on which workload compiled first). Messages may
// reference scalar/array parameter names and statement ids, which are part
// of the structural cache key.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_DRIVER_REMARKS_H
#define FLEXVEC_DRIVER_REMARKS_H

#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace flexvec {
namespace driver {

/// What a remark reports.
enum class RemarkKind : uint8_t {
  Analysis, ///< A fact established about the loop (patterns, shape).
  Applied,  ///< A transformation that fired (a variant was generated).
  Missed,   ///< A transformation that was declined, with the reason.
  Note,     ///< Supporting detail (peephole stats, scalar codegen).
};

const char *remarkKindName(RemarkKind K);

/// One structured remark.
struct Remark {
  RemarkKind Kind = RemarkKind::Note;
  std::string Pass;    ///< Emitting pass ("pattern-analysis", "lower", ...).
  std::string Id;      ///< Stable machine-readable slug ("early-exit",
                       ///< "decline.reductions-with-speculative-loads", ...).
  std::string Variant; ///< Lowering strategy name; empty for analysis passes.
  int Node = 0;        ///< Statement id (S1..Sn); 0 means the whole loop.
  std::string Message; ///< Human-readable explanation.

  /// Deterministic JSON object (insertion-ordered keys; optional fields
  /// omitted rather than nulled so payloads stay compact and stable).
  Json toJson() const;

  /// One-line text rendering for `flexvec-cli --remarks`.
  std::string str() const;
};

/// Insertion-ordered remark collector, owned by the compile result.
class RemarkStream {
public:
  /// Emits a remark and returns it for field fixups (Node, Variant).
  Remark &emit(RemarkKind K, std::string Pass, std::string Id,
               std::string Message);

  Remark &analysis(std::string Pass, std::string Id, std::string Message) {
    return emit(RemarkKind::Analysis, std::move(Pass), std::move(Id),
                std::move(Message));
  }
  Remark &applied(std::string Pass, std::string Id, std::string Message) {
    return emit(RemarkKind::Applied, std::move(Pass), std::move(Id),
                std::move(Message));
  }
  Remark &missed(std::string Pass, std::string Id, std::string Message) {
    return emit(RemarkKind::Missed, std::move(Pass), std::move(Id),
                std::move(Message));
  }
  Remark &note(std::string Pass, std::string Id, std::string Message) {
    return emit(RemarkKind::Note, std::move(Pass), std::move(Id),
                std::move(Message));
  }

  const std::vector<Remark> &remarks() const { return All; }
  bool empty() const { return All.empty(); }
  size_t size() const { return All.size(); }

  /// How many remarks of kind \p K the stream holds (bench counters).
  size_t count(RemarkKind K) const {
    size_t N = 0;
    for (const Remark &R : All)
      N += R.Kind == K;
    return N;
  }

  /// The whole stream as a deterministic JSON array.
  Json toJson() const;

  /// The stream filtered for one variant column: remarks with no variant
  /// (analysis facts) plus remarks tagged \p Variant.
  Json toJsonFor(const std::string &Variant) const;

  /// Text listing, one remark per line.
  std::string render() const;

private:
  std::vector<Remark> All;
};

} // namespace driver
} // namespace flexvec

#endif // FLEXVEC_DRIVER_REMARKS_H
