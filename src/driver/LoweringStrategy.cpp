//===- driver/LoweringStrategy.cpp ----------------------------------------===//
//
// The four variant strategies and the shared Algorithm-1 skeleton. The
// emission order here is pinned byte-for-byte by tests/golden/*.golden and
// the pipeline-equivalence suite; any reordering is a codegen change and
// must be reviewed as one.
//
//===----------------------------------------------------------------------===//

#include "driver/LoweringStrategy.h"

#include "codegen/ScalarCodeGen.h"
#include "driver/AdaptiveStrategy.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace flexvec;
using namespace flexvec::driver;
using namespace flexvec::ir;
using namespace flexvec::isa;
using codegen::CodeGenKind;
using codegen::CompiledLoop;
using codegen::VectorEmitter;
using flexvec::analysis::VectorizationPlan;

// --- Skeleton helpers -----------------------------------------------------===//

void LoweringContext::emitLoopHead(Reg Bound, ProgramBuilder::Label ExitTo) {
  B.cmp(headTemp(), CmpKind::LT, codegen::inductionReg(), Bound);
  B.brZero(headTemp(), ExitTo);
}

ProgramBuilder::Label
LoweringContext::emitChunkLoop(Reg Bound, ProgramBuilder::Label ExitTo,
                               BreakCheck Break,
                               const std::function<void()> &AfterProlog,
                               const std::function<void()> &Body) {
  assert(Em && "chunk loop emitted outside the skeleton");
  ProgramBuilder::Label Top = B.createLabel();
  B.bind(Top);
  if (Predicated)
    Em->emitPredicatedHead(headTemp(), Bound, ExitTo);
  else
    emitLoopHead(Bound, ExitTo);
  Em->emitChunkProlog(Bound);
  if (AfterProlog)
    AfterProlog();
  if (Body)
    Body();
  else
    Em->emitBody();
  Em->emitChunkEpilog();
  if (Break.Enabled) {
    Instruction &I = B.brNonZero(Em->breakFlag(), Break.To);
    if (Break.Comment)
      I.Comment = Break.Comment;
  }
  B.jmp(Top);
  return Top;
}

namespace {

/// Tags a decline with the refusing strategy so no refusal is silent.
void declineRemark(LoweringContext &Ctx, const char *Strategy, std::string Id,
                   std::string Message) {
  Ctx.Remarks.missed("lower", std::move(Id), std::move(Message)).Variant =
      Strategy;
}

/// When lowering under the adaptive dispatcher, entering a scalar fallback
/// marks one aborted speculative attempt: bump the dispatch cell's
/// abort-event word so the next invocation's prologue can charge it.
/// Both call sites sit at the very top of a fallback block, before the
/// scalar emitter's scratch pool is live, so r25..r27 are free.
void bumpAbortEvents(LoweringContext &Ctx) {
  if (!Ctx.DispatchCellAddr)
    return;
  ProgramBuilder &B = Ctx.B;
  Reg Cell = Reg::scalar(25);
  Reg Zero = Reg::scalar(26);
  Reg Val = Reg::scalar(27);
  B.movImm(Cell, static_cast<int64_t>(Ctx.DispatchCellAddr)).Comment =
      "dispatch cell base";
  B.movImm(Zero, 0);
  B.load(Val, ElemType::I64, Cell, Zero, 1, dispatch::AbortEventsOff);
  B.binOpImm(Opcode::AddImm, Val, Val, 1).Comment =
      "dispatch: abort_events++";
  B.store(ElemType::I64, Cell, Zero, 1, dispatch::AbortEventsOff, Val);
}

// --- IR walking helpers shared by the speculative legality checks ---------===//

/// Scalars read by \p E.
void scalarReadsOf(const Expr *E, std::vector<int> &Out) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::IndexRef:
    return;
  case ExprKind::ScalarRef:
    Out.push_back(E->ScalarId);
    return;
  case ExprKind::ArrayRef:
    scalarReadsOf(E->Index, Out);
    return;
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    scalarReadsOf(E->Lhs, Out);
    scalarReadsOf(E->Rhs, Out);
    return;
  }
}

void assignedIn(const std::vector<Stmt *> &Stmts, std::vector<bool> &Set) {
  for (const Stmt *S : Stmts) {
    if (S->Kind == StmtKind::AssignScalar)
      Set[S->ScalarId] = true;
    if (S->Kind == StmtKind::If) {
      assignedIn(S->Then, Set);
      assignedIn(S->Else, Set);
    }
  }
}

bool containsStmt(const Stmt *Root, int Id) {
  if (Root->Id == Id)
    return true;
  if (Root->Kind != StmtKind::If)
    return false;
  for (const Stmt *C : Root->Then)
    if (containsStmt(C, Id))
      return true;
  for (const Stmt *C : Root->Else)
    if (containsStmt(C, Id))
      return true;
  return false;
}

bool hasStoreIn(const std::vector<Stmt *> &Stmts) {
  for (const Stmt *S : Stmts) {
    if (S->Kind == StmtKind::StoreArray)
      return true;
    if (S->Kind == StmtKind::If &&
        (hasStoreIn(S->Then) || hasStoreIn(S->Else)))
      return true;
  }
  return false;
}

// --- Traditional ----------------------------------------------------------===//

class TraditionalStrategy final : public LoweringStrategy {
public:
  CodeGenKind kind() const override { return CodeGenKind::Traditional; }
  const char *name() const override { return "traditional"; }

  bool prepare(LoweringContext &Ctx) override {
    if (!Ctx.Plan.Vectorizable) {
      declineRemark(Ctx, name(), "decline.not-vectorizable",
                    "loop is not vectorizable: " + Ctx.Plan.Reason);
      return false;
    }
    if (Ctx.Plan.needsFlexVec()) {
      // Exactly the loops the baseline cannot vectorize.
      declineRemark(Ctx, name(), "decline.needs-flexvec",
                    "loop needs FlexVec mechanisms (early exit, conditional "
                    "update, or memory conflict); a traditional vectorizer "
                    "emits scalar code");
      return false;
    }
    return true;
  }

  VectorEmitter::Options
  emitterOptions(const LoweringContext &) const override {
    VectorEmitter::Options Opts;
    Opts.UseFirstFaulting = false;
    return Opts;
  }

  void emitLoopNest(LoweringContext &Ctx) override {
    Ctx.emitChunkLoop(Ctx.trip(), Ctx.VecExit);
  }

  std::string notes(const LoweringContext &Ctx) const override {
    return "traditional masked vectorization; " + Ctx.Em->notes();
  }
};

// --- FlexVec ---------------------------------------------------------------===//

class FlexVecStrategy final : public LoweringStrategy {
public:
  CodeGenKind kind() const override { return CodeGenKind::FlexVec; }
  const char *name() const override { return "flexvec"; }

  bool prepare(LoweringContext &Ctx) override {
    if (!Ctx.Plan.Vectorizable) {
      declineRemark(Ctx, name(), "decline.not-vectorizable",
                    "loop is not vectorizable: " + Ctx.Plan.Reason);
      return false;
    }
    HasSpec = !Ctx.Plan.SpeculativeLoadNodes.empty();
    if (HasSpec && !Ctx.Plan.Reductions.empty()) {
      // Declining is recoverable — the pipeline still has the scalar and
      // RTM variants; a process abort here would take the whole driver
      // down.
      declineRemark(Ctx, name(), "decline.reductions-with-speculative-loads",
                    "reductions combined with speculative loads are "
                    "unsupported (the scalar fallback cannot undo optimistic "
                    "accumulation)");
      return false;
    }
    ScalarEntry = Ctx.B.createLabel();
    return true;
  }

  VectorEmitter::Options
  emitterOptions(const LoweringContext &) const override {
    VectorEmitter::Options Opts;
    Opts.UseFirstFaulting = true;
    Opts.HasFaultBail = HasSpec;
    Opts.FaultBail = ScalarEntry;
    return Opts;
  }

  void emitLoopNest(LoweringContext &Ctx) override {
    LoweringContext::BreakCheck Break;
    Break.Enabled = !Ctx.Plan.EarlyExits.empty();
    Break.To = Ctx.VecExit;
    Break.Comment = "a lane broke: stop";
    Ctx.emitChunkLoop(Ctx.trip(), Ctx.VecExit, Break);
  }

  void emitFallbackTail(LoweringContext &Ctx) override {
    Ctx.B.jmp(Ctx.HaltL);
    // Scalar fallback: re-executes from the current chunk start with the
    // chunk-entry scalar state (no side effects have committed when a
    // first-faulting check bails).
    Ctx.B.bind(ScalarEntry);
    bumpAbortEvents(Ctx);
    codegen::emitScalarLoopBody(Ctx.B, Ctx.F, Ctx.trip(), Ctx.HaltL);
  }

  std::string notes(const LoweringContext &Ctx) const override {
    return "FlexVec partial vector code; " + Ctx.Em->notes() +
           (HasSpec ? "; first-faulting loads with scalar fallback" : "");
  }

private:
  bool HasSpec = false;
  ProgramBuilder::Label ScalarEntry = 0;
};

// --- FlexVec over RTM -------------------------------------------------------===//

class RtmStrategy final : public LoweringStrategy {
public:
  CodeGenKind kind() const override { return CodeGenKind::FlexVecRtm; }
  const char *name() const override { return "flexvec-rtm"; }

  bool prepare(LoweringContext &Ctx) override {
    if (!Ctx.Plan.Vectorizable) {
      // Historically a silent nullopt; every refusal is a remark now.
      declineRemark(Ctx, name(), "decline.not-vectorizable",
                    "loop is not vectorizable: " + Ctx.Plan.Reason);
      return false;
    }
    Outer = Ctx.B.createLabel();
    AbortHandler = Ctx.B.createLabel();
    return true;
  }

  VectorEmitter::Options
  emitterOptions(const LoweringContext &) const override {
    VectorEmitter::Options Opts;
    Opts.UseFirstFaulting = false; // Faults abort the transaction instead.
    return Opts;
  }

  void emitLoopNest(LoweringContext &Ctx) override {
    ProgramBuilder &B = Ctx.B;
    ProgramBuilder::Label InnerDone = B.createLabel();
    bool HasBreak = !Ctx.Plan.EarlyExits.empty();

    B.bind(Outer);
    Ctx.emitLoopHead(Ctx.trip(), Ctx.VecExit);
    // tile_end = min(i + TILE, n); computed before XBEGIN so the abort path
    // sees the same bound after register rollback.
    B.binOpImm(Opcode::AddImm, TileEnd, codegen::inductionReg(),
               static_cast<int64_t>(Ctx.RtmTile));
    B.binOp(Opcode::Min, TileEnd, TileEnd, Ctx.trip()).Comment =
        "tile_end = min(i + tile, n)";
    B.xbegin(AbortHandler).Comment = "speculative tile begins";

    LoweringContext::BreakCheck Break;
    Break.Enabled = HasBreak;
    Break.To = InnerDone;
    Ctx.emitChunkLoop(TileEnd, InnerDone, Break);

    B.bind(InnerDone);
    // The last chunk's `i += VL` can overshoot a tile boundary that is not
    // a multiple of VL; the next tile must resume exactly at tile_end.
    B.mov(codegen::inductionReg(), TileEnd).Comment = "i = tile_end";
    B.xend().Comment = "tile commits";
    if (HasBreak)
      B.brNonZero(Ctx.Em->breakFlag(), Ctx.VecExit);
    B.jmp(Outer);
  }

  void emitResumeBlocks(LoweringContext &Ctx) override {
    // Abort handler: registers (including i and the scalar images) were
    // rolled back to the XBEGIN point and memory was restored; re-execute
    // the tile in scalar, then resume vector execution. The handler runs
    // outside any transaction, so the dispatch-cell bump survives.
    Ctx.B.bind(AbortHandler);
    bumpAbortEvents(Ctx);
    codegen::emitScalarLoopBody(Ctx.B, Ctx.F, TileEnd, Ctx.VecExit);
    Ctx.B.jmp(Outer);
  }

  void emitFallbackTail(LoweringContext &Ctx) override {
    Ctx.B.jmp(Ctx.HaltL);
  }

  std::string notes(const LoweringContext &Ctx) const override {
    return "FlexVec over RTM; tile=" + std::to_string(Ctx.RtmTile) + "; " +
           Ctx.Em->notes();
  }

private:
  ProgramBuilder::Label Outer = 0;
  ProgramBuilder::Label AbortHandler = 0;
  /// The tile bound must survive the scalar abort handler, whose expression
  /// scratch pool owns r25..r31; r0 is reserved for loop bounds.
  Reg TileEnd = Reg::scalar(0);
};

// --- Speculative (PACT'13-style) baseline ------------------------------------===//

class SpeculativeStrategy final : public LoweringStrategy {
public:
  CodeGenKind kind() const override { return CodeGenKind::Speculative; }
  const char *name() const override { return "speculative"; }

  bool prepare(LoweringContext &Ctx) override {
    const VectorizationPlan &Plan = Ctx.Plan;
    if (!Plan.Vectorizable) {
      declineRemark(Ctx, name(), "decline.not-vectorizable",
                    "loop is not vectorizable: " + Plan.Reason);
      return false;
    }
    if (!Plan.needsFlexVec()) {
      declineRemark(Ctx, name(), "decline.nothing-to-speculate",
                    "loop has no relaxed dependence to speculate on; the "
                    "traditional variant already covers it");
      return false;
    }

    const std::vector<Stmt *> &Body = Ctx.F.body();

    // Reject when the check conditions need values defined at/after their
    // checkpoint, or when stores precede a checkpoint (the scalar chunk
    // would re-execute them non-idempotently).
    auto readsDefinedLater = [&](const Expr *E, int FromTop,
                                 const std::vector<int> &Allowed) {
      std::vector<bool> Later(Ctx.F.scalars().size(), false);
      std::vector<Stmt *> Tail(Body.begin() + FromTop, Body.end());
      assignedIn(Tail, Later);
      std::vector<int> Reads;
      scalarReadsOf(E, Reads);
      for (int S : Reads) {
        bool IsAllowed = false;
        for (int A : Allowed)
          IsAllowed |= A == S;
        if (Later[S] && !IsAllowed)
          return true;
      }
      return false;
    };

    for (const auto &CU : Plan.CondUpdateVpls) {
      // The dependence condition is the outermost guard of the first
      // update.
      const Stmt *TopGuard = nullptr;
      for (int I = CU.FirstTop; I <= CU.LastTop; ++I)
        if (containsStmt(Body[I], CU.Updates[0].UpdateNode))
          TopGuard = Body[I];
      if (!TopGuard || TopGuard->Kind != StmtKind::If) {
        declineRemark(Ctx, name(), "decline.guard-shape",
                      "conditional-update dependence guard is not a "
                      "top-level if; the up-front check cannot be hoisted");
        return false;
      }
      std::vector<int> Allowed;
      for (const auto &U : CU.Updates)
        Allowed.push_back(U.ScalarId);
      if (readsDefinedLater(TopGuard->Cond, CU.FirstTop, Allowed)) {
        declineRemark(Ctx, name(), "decline.guard-reads-later-defs",
                      "conditional-update guard reads scalars defined at or "
                      "after its checkpoint");
        return false;
      }
      Check C;
      C.Top = CU.FirstTop;
      C.Kind = Check::CondUpdate;
      C.CU = &CU;
      C.GuardCond = TopGuard->Cond;
      Checks.push_back(C);
    }
    for (const auto &MC : Plan.MemConflictVpls) {
      std::vector<int> Allowed;
      bool Later = readsDefinedLater(MC.StoreIndex, MC.FirstTop, Allowed);
      for (const Expr *L : MC.LoadIndices)
        Later = Later || readsDefinedLater(L, MC.FirstTop, Allowed);
      if (Later) {
        declineRemark(Ctx, name(), "decline.check-reads-later-defs",
                      "conflict-check subscripts read scalars defined at or "
                      "after their checkpoint");
        return false;
      }
      Check C;
      C.Top = MC.FirstTop;
      C.Kind = Check::Conflict;
      C.MC = &MC;
      Checks.push_back(C);
    }
    for (const auto &EE : Plan.EarlyExits) {
      if (EE.BreakInElse) {
        declineRemark(Ctx, name(), "decline.inverted-exit",
                      "inverted early-exit checks (break in the else "
                      "region) are unsupported");
        return false;
      }
      int Top = -1;
      for (size_t I = 0; I < Body.size(); ++I)
        if (Body[I]->Id == EE.GuardNode)
          Top = static_cast<int>(I);
      if (Top < 0) {
        declineRemark(Ctx, name(), "decline.nested-exit-guard",
                      "early-exit guard is nested below the top level; the "
                      "up-front check cannot be hoisted");
        return false;
      }
      const Stmt *Guard = Body[Top];
      std::vector<int> Allowed;
      if (readsDefinedLater(Guard->Cond, Top, Allowed)) {
        declineRemark(Ctx, name(), "decline.guard-reads-later-defs",
                      "early-exit guard reads scalars defined at or after "
                      "its checkpoint");
        return false;
      }
      Check C;
      C.Top = Top;
      C.Kind = Check::Exit;
      C.EE = &EE;
      C.GuardCond = Guard->Cond;
      C.Invert = EE.BreakInElse;
      Checks.push_back(C);
    }
    // Every statement emitted before the bail-out branch is re-executed by
    // the scalar chunk, so stores anywhere before the last checkpoint make
    // the fallback non-idempotent; reject those shapes.
    int LastCheck = 0;
    for (const Check &C : Checks)
      LastCheck = std::max(LastCheck, C.Top);
    for (int I = 0; I < LastCheck; ++I)
      if (hasStoreIn({Body[static_cast<size_t>(I)]})) {
        declineRemark(Ctx, name(), "decline.store-before-checkpoint",
                      "stores before the last dependence checkpoint make "
                      "the scalar fallback non-idempotent");
        return false;
      }

    std::sort(Checks.begin(), Checks.end(),
              [](const Check &A, const Check &B2) { return A.Top < B2.Top; });
    ScalarChunk = Ctx.B.createLabel();
    return true;
  }

  VectorEmitter::Options
  emitterOptions(const LoweringContext &) const override {
    VectorEmitter::Options Opts;
    Opts.UseFirstFaulting = false;
    Opts.StraightlineOnly = true;
    return Opts;
  }

  void emitLoopNest(LoweringContext &Ctx) override {
    ProgramBuilder &B = Ctx.B;
    VectorEmitter &Em = *Ctx.Em;
    const std::vector<Stmt *> &Body = Ctx.F.body();

    LoopTop = Ctx.emitChunkLoop(
        Ctx.trip(), Ctx.VecExit, {},
        /*AfterProlog=*/[&] { B.movImm(DepFlag, 0); },
        /*Body=*/[&] {
          // Emit the body straightline, inserting checks at their
          // checkpoints; prefix statements between checkpoints keep the
          // generated code faithful to PACT'13.
          size_t NextStmt = 0;
          for (const Check &C : Checks) {
            while (NextStmt < Body.size() &&
                   static_cast<int>(NextStmt) < C.Top) {
              Em.emitStraightlineTopLevel(Body[NextStmt]);
              ++NextStmt;
            }
            switch (C.Kind) {
            case Check::CondUpdate:
            case Check::Exit:
              Em.emitSpecCondCheck(C.GuardCond, DepFlag);
              break;
            case Check::Conflict:
              Em.emitSpecConflictCheck(*C.MC, DepFlag);
              break;
            }
          }
          B.brNonZero(DepFlag, ScalarChunk).Comment =
              "dependence may fire: roll back to scalar for this chunk";
          while (NextStmt < Body.size()) {
            Em.emitStraightlineTopLevel(Body[NextStmt]);
            ++NextStmt;
          }
        });
  }

  void emitResumeBlocks(LoweringContext &Ctx) override {
    // Scalar chunk: VL iterations starting at i.
    ProgramBuilder &B = Ctx.B;
    B.bind(ScalarChunk);
    B.binOpImm(Opcode::AddImm, ChunkEnd, codegen::inductionReg(),
               static_cast<int64_t>(Ctx.Em->vl()));
    B.binOp(Opcode::Min, ChunkEnd, ChunkEnd, Ctx.trip());
    codegen::emitScalarLoopBody(B, Ctx.F, ChunkEnd, Ctx.VecExit);
    B.jmp(LoopTop);
  }

  void emitFallbackTail(LoweringContext &Ctx) override {
    Ctx.B.jmp(Ctx.HaltL);
  }

  std::string notes(const LoweringContext &Ctx) const override {
    return "PACT'13-style speculative vectorization: all-or-nothing "
           "chunks; " + Ctx.Em->notes();
  }

private:
  /// Checkpoints: (top-level index, kind).
  struct Check {
    int Top;
    enum { CondUpdate, Conflict, Exit } Kind;
    const analysis::CondUpdateVpl *CU = nullptr;
    const analysis::MemConflictVpl *MC = nullptr;
    const analysis::EarlyExitInfo *EE = nullptr;
    const Expr *GuardCond = nullptr;
    bool Invert = false;
  };
  std::vector<Check> Checks;
  ProgramBuilder::Label ScalarChunk = 0;
  ProgramBuilder::Label LoopTop = 0;
  /// r0/r1 are outside both the parameter map and the scalar scratch pool,
  /// so the chunk bound and the check flag survive the scalar fallback.
  Reg ChunkEnd = Reg::scalar(0);
  Reg DepFlag = Reg::scalar(1);
};

} // namespace

// --- The skeleton ----------------------------------------------------------===//

std::unique_ptr<LoweringStrategy> driver::createStrategy(CodeGenKind Kind) {
  switch (Kind) {
  case CodeGenKind::Traditional:
    return std::make_unique<TraditionalStrategy>();
  case CodeGenKind::Speculative:
    return std::make_unique<SpeculativeStrategy>();
  case CodeGenKind::FlexVec:
    return std::make_unique<FlexVecStrategy>();
  case CodeGenKind::FlexVecRtm:
    return std::make_unique<RtmStrategy>();
  case CodeGenKind::FlexVecAdaptive:
    return createAdaptiveStrategy();
  case CodeGenKind::Scalar:
    break; // Scalar codegen is not an Algorithm-1 strategy.
  }
  fatalError("no lowering strategy for this CodeGenKind");
}

std::string driver::emitSkeletonBody(LoweringContext &Ctx,
                                     LoweringStrategy &S) {
  Ctx.VecExit = Ctx.B.createLabel();
  Ctx.HaltL = Ctx.B.createLabel();
  VectorEmitter::Options Opts = S.emitterOptions(Ctx);
  Opts.VectorBytes = Ctx.Vec.Bytes;
  Opts.Predicated = Ctx.Predicated;
  VectorEmitter Em(Ctx.B, Ctx.F, Ctx.Plan, Opts);
  Ctx.Em = &Em;

  Em.emitPreheader();         // 1. broadcast invariants, init accumulators
  S.emitLoopNest(Ctx);        // 2. the chunked vector loop (strategy shape)
  S.emitResumeBlocks(Ctx);    // 3. fallbacks that re-enter the loop
  Ctx.B.bind(Ctx.VecExit);
  Em.emitLiveOuts();          // 4. reduce accumulators into live-outs
  S.emitFallbackTail(Ctx);    // 5. fallbacks that end at the halt
  Ctx.B.bind(Ctx.HaltL);
  Ctx.B.halt();               // 6. done

  // Notes must be composed while the emitter is still alive.
  return S.notes(Ctx);
}

std::optional<CompiledLoop>
driver::lowerLoop(const LoopFunction &F, const VectorizationPlan &Plan,
                  unsigned RtmTile, LoweringStrategy &S,
                  RemarkStream &Remarks, isa::VectorConfig Vec,
                  bool Predicated) {
  LoweringContext Ctx(F, Plan, RtmTile, Remarks, Vec, Predicated);
  if (!S.prepare(Ctx))
    return std::nullopt; // The strategy has already remarked the decline.

  CompiledLoop Out;
  Out.Notes = emitSkeletonBody(Ctx, S);
  Out.Kind = S.kind();
  Out.Prog = Ctx.B.finalize();
  Remarks.applied("lower", "vectorized", Out.Notes).Variant = S.name();
  return Out;
}
