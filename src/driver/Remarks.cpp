//===- driver/Remarks.cpp -------------------------------------------------===//

#include "driver/Remarks.h"

using namespace flexvec;
using namespace flexvec::driver;

const char *driver::remarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Analysis:
    return "analysis";
  case RemarkKind::Applied:
    return "applied";
  case RemarkKind::Missed:
    return "missed";
  case RemarkKind::Note:
    return "note";
  }
  return "?";
}

Json Remark::toJson() const {
  Json J = Json::object();
  J.set("kind", remarkKindName(Kind));
  J.set("pass", Pass);
  J.set("id", Id);
  if (!Variant.empty())
    J.set("variant", Variant);
  if (Node > 0)
    J.set("node", Node);
  J.set("message", Message);
  return J;
}

std::string Remark::str() const {
  std::string Out = "[";
  Out += remarkKindName(Kind);
  Out += "] ";
  Out += Pass;
  if (!Variant.empty()) {
    Out += "/";
    Out += Variant;
  }
  if (Node > 0) {
    Out += " S";
    Out += std::to_string(Node);
  }
  Out += ": ";
  Out += Message;
  Out += " (";
  Out += Id;
  Out += ")";
  return Out;
}

Remark &RemarkStream::emit(RemarkKind K, std::string Pass, std::string Id,
                           std::string Message) {
  Remark R;
  R.Kind = K;
  R.Pass = std::move(Pass);
  R.Id = std::move(Id);
  R.Message = std::move(Message);
  All.push_back(std::move(R));
  return All.back();
}

Json RemarkStream::toJson() const {
  Json A = Json::array();
  for (const Remark &R : All)
    A.push(R.toJson());
  return A;
}

Json RemarkStream::toJsonFor(const std::string &Variant) const {
  Json A = Json::array();
  for (const Remark &R : All)
    if (R.Variant.empty() || R.Variant == Variant)
      A.push(R.toJson());
  return A;
}

std::string RemarkStream::render() const {
  std::string Out;
  for (const Remark &R : All) {
    Out += "remark: ";
    Out += R.str();
    Out += '\n';
  }
  return Out;
}
