//===- driver/CompilerDriver.h - The FlexVec compiler driver ----*- C++ -*-===//
//
// Public entry point of the compiler: runs one loop through the named pass
// pipeline
//
//   ir-normalize → pdg-build → pattern-analysis → plan-legalize →
//   lower → peephole → program-verify
//
// and returns every program variant the evaluation compares plus the full
// remark stream. core::compileLoop / core::PipelineResult are thin aliases
// over this driver, so existing call sites keep working unchanged.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_DRIVER_COMPILERDRIVER_H
#define FLEXVEC_DRIVER_COMPILERDRIVER_H

#include "analysis/CostModel.h"
#include "analysis/Patterns.h"
#include "codegen/Compiled.h"
#include "codegen/Peephole.h"
#include "driver/AdaptiveStrategy.h"
#include "driver/Pass.h"
#include "driver/Remarks.h"

#include <optional>
#include <string>
#include <vector>

namespace flexvec {
namespace codegen {

/// Default RTM strip-mining tile, in scalar iterations (the paper found
/// 128-256 within 1-2% of first-faulting codegen).
inline constexpr unsigned DefaultRtmTile = 192;

} // namespace codegen

namespace driver {

/// Driver configuration.
struct DriverOptions {
  unsigned RtmTile = codegen::DefaultRtmTile;
  /// Vector width every variant is compiled for. Defaults to the session
  /// configuration (FLEXVEC_VL in bits, else the 512-bit baseline).
  isa::VectorConfig Vec = isa::defaultVectorConfig();
  /// SVE-style predicated loop control: chunk heads compute k_loop with
  /// KWHILELT instead of the vindex/broadcast/vcmp triple.
  bool Predicated = false;
  /// Thresholds compiled into the flexvec-adaptive dispatch prologue.
  AdaptiveConfig Adaptive;
  /// When the post-codegen program verifier runs. Auto means "debug builds
  /// always; release builds when FLEXVEC_VERIFY is set" (see
  /// driver/Verifier.h).
  enum class VerifyMode : uint8_t { Auto, On, Off };
  VerifyMode Verify = VerifyMode::Auto;
};

/// Everything the pipeline produces for one loop.
struct CompileResult {
  analysis::VectorizationPlan Plan;
  analysis::LoopShape Shape;
  codegen::CompiledLoop Scalar;
  std::optional<codegen::CompiledLoop> Traditional;
  std::optional<codegen::CompiledLoop> Speculative;
  std::optional<codegen::CompiledLoop> FlexVec;
  std::optional<codegen::CompiledLoop> Rtm;
  /// Multi-versioned program: speculative + demoted variant behind the
  /// runtime dispatch guard (see driver/AdaptiveStrategy.h).
  std::optional<codegen::CompiledLoop> Adaptive;
  /// FlexVec program after the downstream peephole passes (Section 3.7's
  /// "down-stream passes of the compiler"); kept separate so the ablation
  /// benchmark can compare.
  std::optional<codegen::CompiledLoop> FlexVecOpt;
  codegen::PeepholeStats OptStats;
  std::string PdgDump;
  /// Legacy diagnostic strings ("flexvec: <why>"); derived from the missed
  /// remarks for callers that predate the remark engine.
  std::vector<std::string> Diagnostics;
  /// Structured remarks from every pass: what was recognized, what was
  /// generated, and why each variant that is absent was declined.
  RemarkStream Remarks;

  /// The program the baseline (ICC/AVX-512 -fast) would execute: the
  /// traditional vector code when legal, otherwise scalar.
  const codegen::CompiledLoop &baseline() const {
    return Traditional ? *Traditional : Scalar;
  }

  /// The best FlexVec program (first-faulting variant).
  const codegen::CompiledLoop &flexvec() const {
    return FlexVec ? *FlexVec : baseline();
  }
};

/// Builds the standard seven-pass pipeline.
PassManager buildPipeline();

/// Runs the full pipeline over \p F.
CompileResult compileLoop(const ir::LoopFunction &F,
                          const DriverOptions &Opts);

inline CompileResult compileLoop(const ir::LoopFunction &F,
                                 unsigned RtmTile = codegen::DefaultRtmTile) {
  DriverOptions Opts;
  Opts.RtmTile = RtmTile;
  return compileLoop(F, Opts);
}

} // namespace driver
} // namespace flexvec

#endif // FLEXVEC_DRIVER_COMPILERDRIVER_H
