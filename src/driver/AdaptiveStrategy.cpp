//===- driver/AdaptiveStrategy.cpp - Adaptive multi-versioned codegen -----===//
//
// Program layout (one program, two complete variants):
//
//   prologue:   state != 0 ............................ jmp TradEntry
//               reconcile lag-1 abort events
//               invocations >= window && rate >= pct .. demote, jmp TradEntry
//               trip < MinTrip ........................ jmp GuardFail
//               per-pair alias-range overlap .......... jmp GuardFail
//               guard_pass++, invocations++
//   spec nest:  the full flexvec-rtm (or flexvec) skeleton; its scalar
//               fallback blocks bump abort_events via Ctx.DispatchCellAddr
//   GuardFail:  guard_fail++, jmp TradEntry
//   TradEntry:  the full traditional skeleton (own preheader/halt), or a
//               plain scalar loop when traditional declines the shape
//
// The guard is a *heuristic* router, not a safety check: both variants
// compute the same function, so unboundable (indirect-subscript) array
// pairs are simply skipped rather than pessimized.
//
//===----------------------------------------------------------------------===//

#include "driver/AdaptiveStrategy.h"

#include "codegen/ScalarCodeGen.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace flexvec;
using namespace flexvec::driver;
using namespace flexvec::ir;
using namespace flexvec::isa;
using codegen::CodeGenKind;

namespace {

// --- Static alias-extent analysis ------------------------------------------===//

/// The guard needs, per array, a constant c such that every subscript this
/// loop uses stays below trip + c. Direct affine forms are boundable;
/// anything data-dependent (b[a[i]]) is not.
std::optional<int64_t> subscriptEndOffset(const Expr *Idx) {
  switch (Idx->Kind) {
  case ExprKind::IndexRef:
    return 0;
  case ExprKind::ConstInt:
    // end = (trip + c) * elem overshoots the true (c + 1) * elem for a
    // constant subscript, which is fine for a routing heuristic.
    return Idx->IntValue >= 0 ? std::optional<int64_t>(Idx->IntValue)
                              : std::nullopt;
  case ExprKind::Binary:
    if (Idx->Op == BinOp::Add) {
      if (Idx->Lhs->Kind == ExprKind::IndexRef &&
          Idx->Rhs->Kind == ExprKind::ConstInt && Idx->Rhs->IntValue >= 0)
        return Idx->Rhs->IntValue;
      if (Idx->Rhs->Kind == ExprKind::IndexRef &&
          Idx->Lhs->Kind == ExprKind::ConstInt && Idx->Lhs->IntValue >= 0)
        return Idx->Lhs->IntValue;
    }
    if (Idx->Op == BinOp::Sub && Idx->Lhs->Kind == ExprKind::IndexRef &&
        Idx->Rhs->Kind == ExprKind::ConstInt && Idx->Rhs->IntValue >= 0)
      return 0; // i - c only lowers the end.
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

struct ArrayBound {
  bool Accessed = false;
  bool Written = false;
  bool Boundable = true;
  int64_t MaxOff = 0; ///< Max subscript is trip - 1 + MaxOff.
};

void noteSubscript(std::vector<ArrayBound> &Bounds, int ArrayId,
                   const Expr *Idx, bool IsWrite) {
  ArrayBound &B = Bounds[static_cast<size_t>(ArrayId)];
  B.Accessed = true;
  B.Written |= IsWrite;
  if (std::optional<int64_t> Off = subscriptEndOffset(Idx))
    B.MaxOff = std::max(B.MaxOff, *Off);
  else
    B.Boundable = false;
}

void collectFromExpr(std::vector<ArrayBound> &Bounds, const Expr *E) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::ArrayRef:
    noteSubscript(Bounds, E->ArrayId, E->Index, /*IsWrite=*/false);
    collectFromExpr(Bounds, E->Index);
    return;
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    collectFromExpr(Bounds, E->Lhs);
    collectFromExpr(Bounds, E->Rhs);
    return;
  default:
    return;
  }
}

std::vector<ArrayBound> analyzeArrayBounds(const LoopFunction &F) {
  std::vector<ArrayBound> Bounds(F.arrays().size());
  F.forEachStmt([&](const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::AssignScalar:
      collectFromExpr(Bounds, S->Value);
      break;
    case StmtKind::StoreArray:
      noteSubscript(Bounds, S->ArrayId, S->Index, /*IsWrite=*/true);
      collectFromExpr(Bounds, S->Index);
      collectFromExpr(Bounds, S->Value);
      break;
    case StmtKind::If:
      collectFromExpr(Bounds, S->Cond);
      break;
    case StmtKind::Break:
      break;
    }
  });
  return Bounds;
}

// --- The strategy -----------------------------------------------------------===//

class AdaptiveStrategy final : public LoweringStrategy {
public:
  explicit AdaptiveStrategy(const AdaptiveConfig &Cfg) : Cfg(Cfg) {}

  CodeGenKind kind() const override { return CodeGenKind::FlexVecAdaptive; }
  const char *name() const override { return "flexvec-adaptive"; }

  bool prepare(LoweringContext &Ctx) override {
    if (!Ctx.Plan.Vectorizable) {
      Ctx.Remarks
          .missed("lower", "decline.not-vectorizable",
                  "loop is not vectorizable: " + Ctx.Plan.Reason)
          .Variant = name();
      return false;
    }

    // Probe candidate inner strategies on a throwaway context so declined
    // probes leave no remarks or labels behind.
    auto probeOk = [&](CodeGenKind K) {
      RemarkStream Scratch;
      LoweringContext Probe(Ctx.F, Ctx.Plan, Ctx.RtmTile, Scratch, Ctx.Vec,
                            Ctx.Predicated);
      return createStrategy(K)->prepare(Probe);
    };

    CodeGenKind SpecKind;
    if (probeOk(CodeGenKind::FlexVecRtm))
      SpecKind = CodeGenKind::FlexVecRtm;
    else if (probeOk(CodeGenKind::FlexVec))
      SpecKind = CodeGenKind::FlexVec;
    else {
      Ctx.Remarks
          .missed("lower", "decline.no-speculative-variant",
                  "neither flexvec-rtm nor flexvec accepts this loop; "
                  "there is nothing to dispatch between")
          .Variant = name();
      return false;
    }

    Spec = createStrategy(SpecKind);
    if (!Spec->prepare(Ctx))
      fatalError("speculative inner strategy declined after its probe "
                 "accepted the identical plan");

    if (probeOk(CodeGenKind::Traditional)) {
      Trad = createStrategy(CodeGenKind::Traditional);
      if (!Trad->prepare(Ctx))
        fatalError("traditional inner strategy declined after its probe "
                   "accepted the identical plan");
    }

    TradEntry = Ctx.B.createLabel();
    Ctx.DispatchCellAddr = Cfg.CellAddr;
    Bounds = analyzeArrayBounds(Ctx.F);
    return true;
  }

  codegen::VectorEmitter::Options
  emitterOptions(const LoweringContext &Ctx) const override {
    return Spec->emitterOptions(Ctx);
  }

  void emitLoopNest(LoweringContext &Ctx) override {
    emitDispatchPrologue(Ctx);
    Spec->emitLoopNest(Ctx);
  }

  void emitResumeBlocks(LoweringContext &Ctx) override {
    Spec->emitResumeBlocks(Ctx);
  }

  void emitFallbackTail(LoweringContext &Ctx) override {
    Spec->emitFallbackTail(Ctx);
    // FlexVec's scalar fallback falls through at its Done label expecting
    // the halt next; route it (and the RTM/no-tail layouts, where this is
    // one dead instruction) over the demoted variant.
    Ctx.B.jmp(Ctx.HaltL);

    Ctx.B.bind(TradEntry);
    if (Trad) {
      // Nest the complete traditional skeleton: own labels, own emitter,
      // own preheader and halt. Save the outer skeleton state around it;
      // the nested nest must not bump abort events.
      ProgramBuilder::Label SavedVecExit = Ctx.VecExit;
      ProgramBuilder::Label SavedHalt = Ctx.HaltL;
      codegen::VectorEmitter *SavedEm = Ctx.Em;
      uint64_t SavedCell = Ctx.DispatchCellAddr;
      Ctx.DispatchCellAddr = 0;
      TradNotes = emitSkeletonBody(Ctx, *Trad);
      Ctx.VecExit = SavedVecExit;
      Ctx.HaltL = SavedHalt;
      Ctx.Em = SavedEm;
      Ctx.DispatchCellAddr = SavedCell;
    } else {
      // Traditional declines FlexVec-shaped loops; the graceful floor is
      // the plain scalar loop, falling through into the outer halt.
      Ctx.B.movImm(codegen::inductionReg(), 0).Comment = "i = 0";
      codegen::emitScalarLoopBody(Ctx.B, Ctx.F, Ctx.trip(), Ctx.HaltL);
    }
  }

  std::string notes(const LoweringContext &Ctx) const override {
    std::string N = "adaptive dispatch: minTrip=" +
                    std::to_string(effectiveMinTrip(Ctx)) +
                    ", aliasPairs=" + std::to_string(GuardPairs) +
                    ", demote>=" + std::to_string(Cfg.DemotePercent) +
                    "% over " + std::to_string(Cfg.Window) +
                    " invocations; speculative=[" + Spec->notes(Ctx) +
                    "]; demoted=[" +
                    (Trad ? TradNotes : std::string("scalar loop")) + "]";
    return N;
  }

private:
  /// A wide configuration raises the guard floor to one full vector of the
  /// narrowest lane width: below that, a chunk cannot even fill its lanes
  /// and the vector setup cost always dominates. At the 512-bit default
  /// this equals the configured MinTrip of 16, so nothing changes.
  unsigned effectiveMinTrip(const LoweringContext &Ctx) const {
    return std::max(Cfg.MinTrip, Ctx.Vec.Bytes / 4);
  }

  /// The prologue reads and writes only r25..r29; r24 (i), r31 (break
  /// flag), and r0/r1 (strategy-reserved) stay untouched.
  void emitDispatchPrologue(LoweringContext &Ctx) {
    ProgramBuilder &B = Ctx.B;
    const Reg Cell = Reg::scalar(25);
    const Reg Zero = Reg::scalar(26);
    const Reg T0 = Reg::scalar(27);
    const Reg T1 = Reg::scalar(28);
    const Reg T2 = Reg::scalar(29);
    const auto Ld = [&](Reg D, int64_t Off) {
      B.load(D, ElemType::I64, Cell, Zero, 1, Off);
    };
    const auto St = [&](int64_t Off, Reg V) {
      B.store(ElemType::I64, Cell, Zero, 1, Off, V);
    };
    const auto Inc = [&](int64_t Off, const char *What) {
      Ld(T0, Off);
      B.binOpImm(Opcode::AddImm, T0, T0, 1).Comment = What;
      St(Off, T0);
    };

    B.movImm(Cell, static_cast<int64_t>(Cfg.CellAddr)).Comment =
        "dispatch cell base";
    B.movImm(Zero, 0);

    // Sticky demotion: once state != 0, never speculate again.
    Ld(T0, dispatch::StateOff);
    B.brNonZero(T0, TradEntry).Comment = "dispatch: demoted?";

    // Lag-1 reconcile: the previous invocation's fallback entries were
    // recorded after its prologue ran; charge them now.
    ProgramBuilder::Label NoNewAborts = B.createLabel();
    Ld(T0, dispatch::AbortEventsOff);
    Ld(T1, dispatch::PrevAbortEventsOff);
    B.cmp(T2, CmpKind::GT, T0, T1).Comment = "dispatch: new aborts?";
    B.brZero(T2, NoNewAborts);
    Ld(T2, dispatch::AbortedOff);
    B.binOpImm(Opcode::AddImm, T2, T2, 1).Comment =
        "dispatch: aborted_invocations++";
    St(dispatch::AbortedOff, T2);
    St(dispatch::PrevAbortEventsOff, T0);
    B.bind(NoNewAborts);

    // Demotion check: invocations >= window and
    // aborted * 100 >= invocations * percent.
    ProgramBuilder::Label GuardL = B.createLabel();
    Ld(T0, dispatch::InvocationsOff);
    B.cmpImm(T1, CmpKind::GE, T0, static_cast<int64_t>(Cfg.Window));
    B.brZero(T1, GuardL).Comment = "dispatch: window not reached";
    Ld(T1, dispatch::AbortedOff);
    B.binOpImm(Opcode::MulImm, T1, T1, 100);
    B.binOpImm(Opcode::MulImm, T0, T0, static_cast<int64_t>(Cfg.DemotePercent));
    B.cmp(T2, CmpKind::GE, T1, T0).Comment = "dispatch: abort rate at threshold?";
    B.brZero(T2, GuardL);
    B.movImm(T0, 1);
    St(dispatch::StateOff, T0);
    Inc(dispatch::DemotionsOff, "dispatch: demotions++");
    B.jmp(TradEntry);
    B.bind(GuardL);

    // Runtime guard. Failure routes this invocation to the demoted code
    // without touching the state machine.
    ProgramBuilder::Label GuardFailL = B.createLabel();
    ProgramBuilder::Label GuardPassL = B.createLabel();
    B.cmpImm(T0, CmpKind::LT, Ctx.trip(),
             static_cast<int64_t>(effectiveMinTrip(Ctx)));
    B.brNonZero(T0, GuardFailL).Comment = "guard: trip count too small";

    GuardPairs = 0;
    for (size_t A = 0; A < Bounds.size(); ++A) {
      for (size_t C = A + 1; C < Bounds.size(); ++C) {
        const ArrayBound &BA = Bounds[A];
        const ArrayBound &BC = Bounds[C];
        if (!BA.Accessed || !BC.Accessed || !(BA.Written || BC.Written) ||
            !BA.Boundable || !BC.Boundable)
          continue;
        ++GuardPairs;
        const Reg BaseA = codegen::arrayBaseReg(static_cast<int>(A));
        const Reg BaseC = codegen::arrayBaseReg(static_cast<int>(C));
        const auto extent = [&](Reg D, const ArrayBound &AB, const Reg Base,
                                const ArrayParam &P) {
          B.binOpImm(Opcode::AddImm, D, Ctx.trip(), AB.MaxOff);
          B.binOpImm(Opcode::MulImm, D, D,
                     static_cast<int64_t>(elemSize(P.Elem)));
          B.binOp(Opcode::Add, D, Base, D).Comment =
              "guard: end of " + P.Name;
        };
        extent(T0, BA, BaseA, Ctx.F.array(static_cast<int>(A)));
        extent(T1, BC, BaseC, Ctx.F.array(static_cast<int>(C)));
        // Overlap iff baseA < endC && baseC < endA.
        B.cmp(T2, CmpKind::LT, BaseA, T1);
        B.cmp(T1, CmpKind::LT, BaseC, T0);
        B.binOp(Opcode::And, T2, T2, T1).Comment = "guard: ranges overlap?";
        B.brNonZero(T2, GuardFailL);
      }
    }
    B.jmp(GuardPassL);

    B.bind(GuardFailL);
    Inc(dispatch::GuardFailOff, "dispatch: guard_fail++");
    B.jmp(TradEntry);

    B.bind(GuardPassL);
    Inc(dispatch::GuardPassOff, "dispatch: guard_pass++");
    Inc(dispatch::InvocationsOff, "dispatch: speculative invocations++");
    // Fall through into the speculative nest.
  }

  AdaptiveConfig Cfg;
  std::unique_ptr<LoweringStrategy> Spec;
  std::unique_ptr<LoweringStrategy> Trad; ///< Null: scalar floor instead.
  ProgramBuilder::Label TradEntry = 0;
  std::vector<ArrayBound> Bounds;
  std::string TradNotes;
  /// Emitted alias checks, counted during emission for notes().
  unsigned GuardPairs = 0;
};

} // namespace

std::vector<Remark> driver::dispatchRemarks(const DispatchCounts &C) {
  std::vector<Remark> Out;
  const auto add = [&](RemarkKind K, const char *Id, std::string Msg) {
    Remark R;
    R.Kind = K;
    R.Pass = "dispatch";
    R.Id = Id;
    R.Variant = "flexvec-adaptive";
    R.Message = std::move(Msg);
    Out.push_back(std::move(R));
  };
  if (C.GuardFail > 0)
    add(RemarkKind::Analysis, "dispatch.guard-failed",
        "runtime guard rejected " + std::to_string(C.GuardFail) +
            " invocation(s) (trip count or alias-range overlap); routed to "
            "the demoted variant without touching the state machine");
  if (C.State != 0)
    add(RemarkKind::Applied, "dispatch.demoted",
        "abort rate crossed the threshold after " +
            std::to_string(C.Invocations) + " speculative invocation(s) (" +
            std::to_string(C.AbortedInvocations) +
            " aborted); permanently re-dispatched to the demoted variant");
  else
    add(RemarkKind::Analysis, "dispatch.promoted-stay",
        "abort rate stayed below the threshold (" +
            std::to_string(C.AbortedInvocations) + "/" +
            std::to_string(C.Invocations) +
            " speculative invocation(s) aborted); staying speculative");
  return Out;
}

std::unique_ptr<LoweringStrategy>
driver::createAdaptiveStrategy(const AdaptiveConfig &Cfg) {
  return std::make_unique<AdaptiveStrategy>(Cfg);
}
