//===- memory/Memory.cpp --------------------------------------------------===//

#include "memory/Memory.h"

#include "obs/Metrics.h"
#include "support/Error.h"

#include <cassert>

using namespace flexvec;
using namespace flexvec::mem;

FaultHook::~FaultHook() = default;

Memory::Memory(Memory &&Other) noexcept
    : Pages(std::move(Other.Pages)), Hook(Other.Hook), Tlb(Other.Tlb),
      Stats(Other.Stats) {
  // Map nodes are address-stable across the move, so the inherited TLB
  // slots stay valid here; the moved-from side must forget them.
  Other.Pages.clear();
  Other.flushTlb();
  Other.Hook = nullptr;
  Other.Stats = MemoryStats();
}

Memory &Memory::operator=(Memory &&Other) noexcept {
  if (this != &Other) {
    Pages = std::move(Other.Pages);
    Hook = Other.Hook;
    Tlb = Other.Tlb;
    Stats = Other.Stats;
    Other.Pages.clear();
    Other.flushTlb();
    Other.Hook = nullptr;
    Other.Stats = MemoryStats();
  }
  return *this;
}

void Memory::checkOk(const AccessResult &R) {
  // Only reachable through the debug accessors (get/set), which bypass
  // fault injection: a failure here is a genuinely unmapped address, i.e.
  // a harness programming error, not a runtime fault to recover from.
  if (!R.Ok)
    fatalError("unexpected memory fault at address " +
               std::to_string(R.FaultAddr));
}

void Memory::flushTlb() const {
  for (TlbEntry &E : Tlb)
    E = TlbEntry();
}

Memory::PageRef *Memory::lookup(uint64_t PageIdx) const {
  TlbEntry &E = Tlb[PageIdx & (TlbEntries - 1)];
  if (E.PageIdx == PageIdx) {
    ++Stats.TlbHits;
    return E.Slot;
  }
  ++Stats.TlbMisses;
  // The map is the authoritative structure; the TLB is a cache over it.
  auto &Map = const_cast<std::map<uint64_t, PageRef> &>(Pages);
  auto It = Map.find(PageIdx);
  if (It == Map.end())
    return nullptr; // Negative results are not cached.
  E.PageIdx = PageIdx;
  E.Slot = &It->second;
  return E.Slot;
}

const Memory::Page *Memory::findPage(uint64_t PageIdx) const {
  PageRef *S = lookup(PageIdx);
  return S ? S->get() : nullptr;
}

const uint8_t *Memory::spanForRead(uint64_t Addr, uint64_t Size,
                                   uint64_t Accesses) const {
  if (Hook || Size == 0)
    return nullptr;
  const uint64_t Off = Addr & PageMask;
  if (Off + Size > PageSize)
    return nullptr;
  const uint64_t PageIdx = Addr / PageSize;
  TlbEntry &E = Tlb[PageIdx & (TlbEntries - 1)];
  if (E.PageIdx == PageIdx) {
    const Page *Pg = E.Slot->get();
    if (!(Pg->Perms & PermRead))
      return nullptr; // fallback loop books the hit and faults
    Stats.TlbHits += Accesses;
    return Pg->Data.data() + Off;
  }
  // TLB miss: probe the map without booking, so an ineligible span leaves
  // the counters for the fallback loop to produce.
  auto &Map = const_cast<std::map<uint64_t, PageRef> &>(Pages);
  auto It = Map.find(PageIdx);
  if (It == Map.end() || !(It->second->Perms & PermRead))
    return nullptr;
  // Eligible: the reference loop's first access would miss and install,
  // the remaining Accesses-1 would hit.
  ++Stats.TlbMisses;
  Stats.TlbHits += Accesses - 1;
  E.PageIdx = PageIdx;
  E.Slot = &It->second;
  return It->second->Data.data() + Off;
}

uint8_t *Memory::spanForWrite(uint64_t Addr, uint64_t Size,
                              uint64_t Accesses) {
  if (Hook || Size == 0)
    return nullptr;
  const uint64_t Off = Addr & PageMask;
  if (Off + Size > PageSize)
    return nullptr;
  const uint64_t PageIdx = Addr / PageSize;
  TlbEntry &E = Tlb[PageIdx & (TlbEntries - 1)];
  PageRef *S = nullptr;
  bool Missed = false;
  if (E.PageIdx == PageIdx) {
    S = E.Slot;
  } else {
    auto It = Pages.find(PageIdx);
    if (It == Pages.end())
      return nullptr;
    S = &It->second;
    Missed = true;
  }
  // Perm check before any booking or COW, mirroring write(): a faulting
  // write never copies a page.
  if (!((*S)->Perms & PermWrite))
    return nullptr;
  if (Missed) {
    ++Stats.TlbMisses;
    Stats.TlbHits += Accesses - 1;
    E.PageIdx = PageIdx;
    E.Slot = S;
  } else {
    Stats.TlbHits += Accesses;
  }
  if (S->use_count() > 1) {
    *S = std::make_shared<Page>(**S);
    ++Stats.CowCopies;
  }
  return (*S)->Data.data() + Off;
}

Memory::Page *Memory::findPageForWrite(uint64_t PageIdx) {
  PageRef *S = lookup(PageIdx);
  if (!S)
    return nullptr;
  if (S->use_count() > 1) {
    // Shared with a COW clone: copy before the first write. The slot (and
    // any TLB entry pointing at it) survives; only the pointee changes.
    *S = std::make_shared<Page>(**S);
    ++Stats.CowCopies;
  }
  return S->get();
}

void Memory::map(uint64_t Addr, uint64_t Size, uint8_t Perms) {
  assert(Size > 0 && "cannot map an empty range");
  uint64_t First = Addr / PageSize;
  uint64_t Last = (Addr + Size - 1) / PageSize;
  for (uint64_t P = First; P <= Last; ++P) {
    auto It = Pages.find(P);
    if (It != Pages.end()) {
      PageRef &Ref = It->second;
      if (Ref->Perms != Perms) {
        // A permission change is a write for COW purposes.
        if (Ref.use_count() > 1) {
          Ref = std::make_shared<Page>(*Ref);
          ++Stats.CowCopies;
        }
        Ref->Perms = Perms;
      }
      continue;
    }
    auto NewPage = std::make_shared<Page>();
    NewPage->Data.fill(0);
    NewPage->Perms = Perms;
    Pages.emplace(P, std::move(NewPage));
  }
}

void Memory::unmap(uint64_t Addr, uint64_t Size) {
  assert(Size > 0 && "cannot unmap an empty range");
  uint64_t First = Addr / PageSize;
  uint64_t Last = (Addr + Size - 1) / PageSize;
  for (uint64_t P = First; P <= Last; ++P)
    Pages.erase(P);
  // Erasure invalidates slot pointers; drop every cached translation.
  flushTlb();
}

bool Memory::isAccessible(uint64_t Addr, uint64_t Size, uint8_t Perms) const {
  if (Size == 0)
    return true;
  uint64_t First = Addr / PageSize;
  uint64_t Last = (Addr + Size - 1) / PageSize;
  for (uint64_t P = First; P <= Last; ++P) {
    const Page *Pg = findPage(P);
    if (!Pg || (Pg->Perms & Perms) != Perms)
      return false;
  }
  return true;
}

AccessResult Memory::readCold(uint64_t Addr, void *Out, uint64_t Size) const {
  if (Hook) {
    uint64_t FaultAddr = Addr;
    if (Hook->shouldFault(Addr, Size, /*IsWrite=*/false, FaultAddr))
      return AccessResult::fault(FaultAddr);
  }
  return doRead(Addr, Out, Size);
}

AccessResult Memory::writeCold(uint64_t Addr, const void *Data,
                               uint64_t Size) {
  if (Hook) {
    uint64_t FaultAddr = Addr;
    if (Hook->shouldFault(Addr, Size, /*IsWrite=*/true, FaultAddr))
      return AccessResult::fault(FaultAddr);
  }
  return doWrite(Addr, Data, Size);
}

AccessResult Memory::peek(uint64_t Addr, void *Out, uint64_t Size) const {
  return doRead(Addr, Out, Size);
}

AccessResult Memory::poke(uint64_t Addr, const void *Data, uint64_t Size) {
  return doWrite(Addr, Data, Size);
}

AccessResult Memory::doRead(uint64_t Addr, void *Out, uint64_t Size) const {
  // Fast path: the access stays inside one page (the overwhelmingly common
  // case), so one TLB-accelerated lookup both validates and services it.
  uint64_t Off = Addr & PageMask;
  if (Size != 0 && Off + Size <= PageSize) {
    const Page *Pg = findPage(Addr / PageSize);
    if (!Pg || !(Pg->Perms & PermRead))
      return AccessResult::fault(Addr);
    std::memcpy(Out, Pg->Data.data() + Off, Size);
    return AccessResult::success();
  }

  // Validate the whole range first so faulting reads have no partial effect.
  uint64_t First = Addr / PageSize;
  uint64_t Last = Size ? (Addr + Size - 1) / PageSize : First;
  for (uint64_t P = First; P <= Last; ++P) {
    const Page *Pg = findPage(P);
    if (!Pg || !(Pg->Perms & PermRead)) {
      uint64_t FaultAddr = P == First ? Addr : P * PageSize;
      return AccessResult::fault(FaultAddr);
    }
  }
  uint8_t *Dst = static_cast<uint8_t *>(Out);
  uint64_t Remaining = Size;
  uint64_t Cur = Addr;
  while (Remaining) {
    const Page *Pg = findPage(Cur / PageSize);
    uint64_t O = Cur & PageMask;
    uint64_t Chunk = std::min<uint64_t>(Remaining, PageSize - O);
    std::memcpy(Dst, Pg->Data.data() + O, Chunk);
    Dst += Chunk;
    Cur += Chunk;
    Remaining -= Chunk;
  }
  return AccessResult::success();
}

AccessResult Memory::doWrite(uint64_t Addr, const void *Data, uint64_t Size) {
  // Fast path: single-page write. Permission check happens before the COW
  // copy, so a faulting write never copies (and never modifies) anything.
  uint64_t Off = Addr & PageMask;
  if (Size != 0 && Off + Size <= PageSize) {
    PageRef *S = lookup(Addr / PageSize);
    if (!S || !((*S)->Perms & PermWrite))
      return AccessResult::fault(Addr);
    if (S->use_count() > 1) {
      *S = std::make_shared<Page>(**S);
      ++Stats.CowCopies;
    }
    std::memcpy((*S)->Data.data() + Off, Data, Size);
    return AccessResult::success();
  }

  // Validate before modifying: a faulting write has no partial effect, and
  // in particular performs no COW copies.
  uint64_t First = Addr / PageSize;
  uint64_t Last = Size ? (Addr + Size - 1) / PageSize : First;
  for (uint64_t P = First; P <= Last; ++P) {
    const Page *Pg = findPage(P);
    if (!Pg || !(Pg->Perms & PermWrite)) {
      uint64_t FaultAddr = P == First ? Addr : P * PageSize;
      return AccessResult::fault(FaultAddr);
    }
  }
  const uint8_t *Src = static_cast<const uint8_t *>(Data);
  uint64_t Remaining = Size;
  uint64_t Cur = Addr;
  while (Remaining) {
    Page *Pg = findPageForWrite(Cur / PageSize);
    uint64_t O = Cur & PageMask;
    uint64_t Chunk = std::min<uint64_t>(Remaining, PageSize - O);
    std::memcpy(Pg->Data.data() + O, Src, Chunk);
    Src += Chunk;
    Cur += Chunk;
    Remaining -= Chunk;
  }
  return AccessResult::success();
}

uint64_t Memory::fingerprint() const {
  // FNV-1a-style mix over (page index, permissions, contents) in address
  // order, one 64-bit word at a time (pages are word-multiples), with a
  // final avalanche so every input bit reaches every output bit. The
  // value is only ever compared against another fingerprint() from the
  // same build — the exact mixing function is not a stable contract — so
  // the word-at-a-time form trades nothing for an 8x shorter multiply
  // chain on the image-hashing path the evaluation sweep runs per cell.
  static_assert(PageSize % 8 == 0, "page contents hash word-at-a-time");
  uint64_t Hash = 0xcbf29ce484222325ULL;
  auto mixWord = [&Hash](uint64_t W) {
    Hash = (Hash ^ W) * 0x100000001b3ULL;
  };
  for (const auto &[Idx, Pg] : Pages) {
    mixWord(Idx);
    mixWord(static_cast<uint64_t>(Pg->Perms));
    const uint8_t *Bytes = Pg->Data.data();
    for (size_t I = 0; I < PageSize; I += 8) {
      uint64_t W;
      std::memcpy(&W, Bytes + I, 8);
      mixWord(W);
    }
  }
  Hash ^= Hash >> 33;
  Hash *= 0xff51afd7ed558ccdULL;
  Hash ^= Hash >> 33;
  return Hash;
}

Memory Memory::clone() const {
  Memory Copy;
  // Share every page; either side copies a page on its first write to it.
  Copy.Pages = Pages;
  return Copy;
}

Memory Memory::deepClone() const {
  Memory Copy;
  for (const auto &[Idx, Pg] : Pages)
    Copy.Pages.emplace(Idx, std::make_shared<Page>(*Pg));
  return Copy;
}

bool Memory::contentsEqual(const Memory &Other) const {
  if (Pages.size() != Other.Pages.size())
    return false;
  auto ItA = Pages.begin();
  auto ItB = Other.Pages.begin();
  for (; ItA != Pages.end(); ++ItA, ++ItB) {
    if (ItA->first != ItB->first)
      return false;
    if (ItA->second == ItB->second)
      continue; // Still COW-shared: trivially equal.
    if (ItA->second->Perms != ItB->second->Perms)
      return false;
    if (ItA->second->Data != ItB->second->Data)
      return false;
  }
  return true;
}

uint64_t BumpAllocator::alloc(uint64_t Size, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  Next = (Next + Align - 1) & ~(Align - 1);
  uint64_t Addr = Next;
  if (Size == 0)
    Size = 1;
  M.map(Addr, Size, PermReadWrite);
  // Advance past the allocation and one unmapped guard page so speculative
  // vector loads that run off the end of an array genuinely fault.
  Next = ((Addr + Size + PageSize - 1) / PageSize + 1) * PageSize;
  return Addr;
}

// --- Metrics export ------------------------------------------------------===//

void mem::recordMetrics(const MemoryStats &S, obs::Registry &R) {
  R.counter("mem.tlb.hits").inc(S.TlbHits);
  R.counter("mem.tlb.misses").inc(S.TlbMisses);
  R.counter("mem.cow.page_copies").inc(S.CowCopies);
}
