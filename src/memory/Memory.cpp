//===- memory/Memory.cpp --------------------------------------------------===//

#include "memory/Memory.h"

#include "support/Error.h"

#include <cassert>

using namespace flexvec;
using namespace flexvec::mem;

FaultHook::~FaultHook() = default;

void Memory::checkOk(const AccessResult &R) {
  // Only reachable through the debug accessors (get/set), which bypass
  // fault injection: a failure here is a genuinely unmapped address, i.e.
  // a harness programming error, not a runtime fault to recover from.
  if (!R.Ok)
    fatalError("unexpected memory fault at address " +
               std::to_string(R.FaultAddr));
}

const Memory::Page *Memory::findPage(uint64_t PageIdx) const {
  auto It = Pages.find(PageIdx);
  return It == Pages.end() ? nullptr : It->second.get();
}

Memory::Page *Memory::findPage(uint64_t PageIdx) {
  auto It = Pages.find(PageIdx);
  return It == Pages.end() ? nullptr : It->second.get();
}

void Memory::map(uint64_t Addr, uint64_t Size, uint8_t Perms) {
  assert(Size > 0 && "cannot map an empty range");
  uint64_t First = Addr / PageSize;
  uint64_t Last = (Addr + Size - 1) / PageSize;
  for (uint64_t P = First; P <= Last; ++P) {
    Page *Existing = findPage(P);
    if (Existing) {
      Existing->Perms = Perms;
      continue;
    }
    auto NewPage = std::make_unique<Page>();
    NewPage->Data.fill(0);
    NewPage->Perms = Perms;
    Pages.emplace(P, std::move(NewPage));
  }
}

void Memory::unmap(uint64_t Addr, uint64_t Size) {
  assert(Size > 0 && "cannot unmap an empty range");
  uint64_t First = Addr / PageSize;
  uint64_t Last = (Addr + Size - 1) / PageSize;
  for (uint64_t P = First; P <= Last; ++P)
    Pages.erase(P);
}

bool Memory::isAccessible(uint64_t Addr, uint64_t Size, uint8_t Perms) const {
  if (Size == 0)
    return true;
  uint64_t First = Addr / PageSize;
  uint64_t Last = (Addr + Size - 1) / PageSize;
  for (uint64_t P = First; P <= Last; ++P) {
    const Page *Pg = findPage(P);
    if (!Pg || (Pg->Perms & Perms) != Perms)
      return false;
  }
  return true;
}

AccessResult Memory::read(uint64_t Addr, void *Out, uint64_t Size) const {
  if (Hook) {
    uint64_t FaultAddr = Addr;
    if (Hook->shouldFault(Addr, Size, /*IsWrite=*/false, FaultAddr))
      return AccessResult::fault(FaultAddr);
  }
  return doRead(Addr, Out, Size);
}

AccessResult Memory::write(uint64_t Addr, const void *Data, uint64_t Size) {
  if (Hook) {
    uint64_t FaultAddr = Addr;
    if (Hook->shouldFault(Addr, Size, /*IsWrite=*/true, FaultAddr))
      return AccessResult::fault(FaultAddr);
  }
  return doWrite(Addr, Data, Size);
}

AccessResult Memory::peek(uint64_t Addr, void *Out, uint64_t Size) const {
  return doRead(Addr, Out, Size);
}

AccessResult Memory::poke(uint64_t Addr, const void *Data, uint64_t Size) {
  return doWrite(Addr, Data, Size);
}

AccessResult Memory::doRead(uint64_t Addr, void *Out, uint64_t Size) const {
  // Validate the whole range first so faulting reads have no partial effect.
  uint64_t First = Addr / PageSize;
  uint64_t Last = Size ? (Addr + Size - 1) / PageSize : First;
  for (uint64_t P = First; P <= Last; ++P) {
    const Page *Pg = findPage(P);
    if (!Pg || !(Pg->Perms & PermRead)) {
      uint64_t FaultAddr = P == First ? Addr : P * PageSize;
      return AccessResult::fault(FaultAddr);
    }
  }
  uint8_t *Dst = static_cast<uint8_t *>(Out);
  uint64_t Remaining = Size;
  uint64_t Cur = Addr;
  while (Remaining) {
    const Page *Pg = findPage(Cur / PageSize);
    uint64_t Off = Cur & PageMask;
    uint64_t Chunk = std::min<uint64_t>(Remaining, PageSize - Off);
    std::memcpy(Dst, Pg->Data.data() + Off, Chunk);
    Dst += Chunk;
    Cur += Chunk;
    Remaining -= Chunk;
  }
  return AccessResult::success();
}

AccessResult Memory::doWrite(uint64_t Addr, const void *Data, uint64_t Size) {
  uint64_t First = Addr / PageSize;
  uint64_t Last = Size ? (Addr + Size - 1) / PageSize : First;
  for (uint64_t P = First; P <= Last; ++P) {
    const Page *Pg = findPage(P);
    if (!Pg || !(Pg->Perms & PermWrite)) {
      uint64_t FaultAddr = P == First ? Addr : P * PageSize;
      return AccessResult::fault(FaultAddr);
    }
  }
  const uint8_t *Src = static_cast<const uint8_t *>(Data);
  uint64_t Remaining = Size;
  uint64_t Cur = Addr;
  while (Remaining) {
    Page *Pg = findPage(Cur / PageSize);
    uint64_t Off = Cur & PageMask;
    uint64_t Chunk = std::min<uint64_t>(Remaining, PageSize - Off);
    std::memcpy(Pg->Data.data() + Off, Src, Chunk);
    Src += Chunk;
    Cur += Chunk;
    Remaining -= Chunk;
  }
  return AccessResult::success();
}

uint64_t Memory::fingerprint() const {
  // FNV-1a over (page index, permissions, contents), in address order.
  uint64_t Hash = 0xcbf29ce484222325ULL;
  auto mix = [&Hash](const void *Data, size_t Size) {
    const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I < Size; ++I) {
      Hash ^= Bytes[I];
      Hash *= 0x100000001b3ULL;
    }
  };
  for (const auto &[Idx, Pg] : Pages) {
    mix(&Idx, sizeof(Idx));
    mix(&Pg->Perms, sizeof(Pg->Perms));
    mix(Pg->Data.data(), Pg->Data.size());
  }
  return Hash;
}

Memory Memory::clone() const {
  Memory Copy;
  for (const auto &[Idx, Pg] : Pages) {
    auto NewPage = std::make_unique<Page>(*Pg);
    Copy.Pages.emplace(Idx, std::move(NewPage));
  }
  return Copy;
}

bool Memory::contentsEqual(const Memory &Other) const {
  if (Pages.size() != Other.Pages.size())
    return false;
  auto ItA = Pages.begin();
  auto ItB = Other.Pages.begin();
  for (; ItA != Pages.end(); ++ItA, ++ItB) {
    if (ItA->first != ItB->first)
      return false;
    if (ItA->second->Perms != ItB->second->Perms)
      return false;
    if (ItA->second->Data != ItB->second->Data)
      return false;
  }
  return true;
}

uint64_t BumpAllocator::alloc(uint64_t Size, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  Next = (Next + Align - 1) & ~(Align - 1);
  uint64_t Addr = Next;
  if (Size == 0)
    Size = 1;
  M.map(Addr, Size, PermReadWrite);
  // Advance past the allocation and one unmapped guard page so speculative
  // vector loads that run off the end of an array genuinely fault.
  Next = ((Addr + Size + PageSize - 1) / PageSize + 1) * PageSize;
  return Addr;
}
