//===- memory/Memory.h - Sparse paged address space -------------*- C++ -*-===//
//
// A sparse, 64-bit, paged memory model with per-page permissions. Accesses
// to unmapped or permission-violating addresses report faults rather than
// aborting, which is what the first-faulting FlexVec loads (Section 3.3.1)
// and the RTM abort path (Section 3.3.2) are built on.
//
// Two hot-path mechanisms keep the model fast without changing observable
// behaviour (docs/PERFORMANCE.md):
//
//   * A direct-mapped software TLB caches the last-N page lookups in front
//     of the std::map tree walk, so same-page accesses (the common case
//     for loop workloads) skip the tree entirely.
//   * clone() is copy-on-write: pages are shared between the clone and its
//     source via refcount and copied the first time either side writes
//     them, so per-run image clones cost O(mapped pages) pointer copies
//     instead of O(bytes).
//
// A Memory must only be read or written from one thread at a time. A
// published base image that is no longer read or written directly may be
// clone()d from several threads at once: clone() only copies the page map
// (shared_ptr copies, atomic refcounts), and because the base keeps a
// reference to every shared page, no clone ever sees use_count()==1 on a
// shared page — so clones copy pages before writing and never mutate
// shared bytes in place. The evaluation engine relies on this: the five
// variant cells of one workload row clone one shared input image.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_MEMORY_MEMORY_H
#define FLEXVEC_MEMORY_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

namespace flexvec {
namespace obs {
class Registry;
}
namespace mem {

inline constexpr uint64_t PageSize = 4096;
inline constexpr uint64_t PageMask = PageSize - 1;

/// Page permission bits.
enum PagePerms : uint8_t {
  PermNone = 0,
  PermRead = 1,
  PermWrite = 2,
  PermReadWrite = PermRead | PermWrite,
};

/// Outcome of a memory access. Faulting accesses perform no partial work.
struct AccessResult {
  bool Ok = true;
  uint64_t FaultAddr = 0;

  static AccessResult success() { return {}; }
  static AccessResult fault(uint64_t Addr) { return {false, Addr}; }
};

/// Hot-path event counts. Pure functions of the access sequence (which is
/// deterministic per cell), so they are safe to export into the
/// deterministic bench payload.
struct MemoryStats {
  uint64_t TlbHits = 0;   ///< Page lookups served by the software TLB.
  uint64_t TlbMisses = 0; ///< Lookups that walked the page map.
  uint64_t CowCopies = 0; ///< Shared pages copied on first write.

  void merge(const MemoryStats &O) {
    TlbHits += O.TlbHits;
    TlbMisses += O.TlbMisses;
    CowCopies += O.CowCopies;
  }
};

/// Policy interface consulted on every *architectural* access (read/write
/// and the typed helpers built on them). A hook can force an access to
/// fault even though the underlying pages are mapped, which is how the
/// fault-injection subsystem (faults/FaultInjector.h) models transient and
/// persistent memory errors. Debug accesses (peek/poke, get/set) bypass
/// the hook so harnesses can always inspect and rebuild state.
class FaultHook {
public:
  virtual ~FaultHook();

  /// Returns true to inject a fault into the access of [Addr, Addr+Size).
  /// On injection \p FaultAddr must be set to the reported fault address.
  virtual bool shouldFault(uint64_t Addr, uint64_t Size, bool IsWrite,
                           uint64_t &FaultAddr) = 0;
};

/// The sparse paged address space.
class Memory {
public:
  Memory() = default;
  Memory(const Memory &) = delete;
  Memory &operator=(const Memory &) = delete;
  Memory(Memory &&Other) noexcept;
  Memory &operator=(Memory &&Other) noexcept;

  /// Maps [Addr, Addr+Size) with \p Perms; Addr and Size need not be
  /// page-aligned (the covering pages are mapped). Newly mapped pages are
  /// zero-filled. Re-mapping updates permissions and preserves contents.
  void map(uint64_t Addr, uint64_t Size, uint8_t Perms = PermReadWrite);

  /// Unmaps all pages covering [Addr, Addr+Size).
  void unmap(uint64_t Addr, uint64_t Size);

  /// True if every byte of [Addr, Addr+Size) is mapped with \p Perms.
  bool isAccessible(uint64_t Addr, uint64_t Size, uint8_t Perms) const;

  /// Reads \p Size bytes into \p Out. On fault nothing is written.
  /// Defined inline below: the TLB-hit single-page case is resolved in the
  /// caller; everything else takes the out-of-line general path.
  AccessResult read(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Writes \p Size bytes. On fault nothing is modified.
  AccessResult write(uint64_t Addr, const void *Data, uint64_t Size);

  /// Vector fast-path span resolution (src/emu/simd): a direct pointer to
  /// the page bytes backing [Addr, Addr+Size), or nullptr when the span is
  /// ineligible (hook armed, page straddle, zero size, unmapped, or
  /// permission-violating). On success it books exactly what \p Accesses
  /// same-page architectural accesses would have booked — TlbHits on a TLB
  /// hit, one TlbMiss plus Accesses-1 hits (and a TLB install) on a miss,
  /// plus CowCopies for the write flavour — so collapsing a per-lane loop
  /// into one block copy is invisible in MemoryStats. On failure it books
  /// nothing and caches nothing: the caller's fallback loop re-runs the
  /// reference access sequence, which produces the legacy counts and the
  /// legacy fault. The pointer is valid until the next map/unmap/clone.
  const uint8_t *spanForRead(uint64_t Addr, uint64_t Size,
                             uint64_t Accesses) const;
  uint8_t *spanForWrite(uint64_t Addr, uint64_t Size, uint64_t Accesses);

  /// Debug accessors: identical to read()/write() except that they never
  /// consult the fault hook. Used by test harnesses, image construction,
  /// and the RTM undo-log rollback, all of which must keep working while
  /// fault injection is armed.
  AccessResult peek(uint64_t Addr, void *Out, uint64_t Size) const;
  AccessResult poke(uint64_t Addr, const void *Data, uint64_t Size);

  /// Installs (or clears, with nullptr) the fault-injection hook. The hook
  /// is not owned and must outlive the Memory; clone() does not copy it.
  void setFaultHook(FaultHook *H) { Hook = H; }
  FaultHook *faultHook() const { return Hook; }

  /// Typed helpers; fault behaviour as read()/write().
  template <typename T> AccessResult readValue(uint64_t Addr, T &Out) const {
    return read(Addr, &Out, sizeof(T));
  }
  template <typename T> AccessResult writeValue(uint64_t Addr, T Value) {
    return write(Addr, &Value, sizeof(T));
  }

  /// Convenience accessors for tests/workloads. They use the debug path
  /// (no fault-hook consultation), so an armed fault injector can never
  /// reach checkOk's process abort: the only way these fail is a genuinely
  /// unmapped or permission-violating address, which is a harness bug.
  template <typename T> T get(uint64_t Addr) const {
    T V{};
    AccessResult R = peek(Addr, &V, sizeof(T));
    checkOk(R);
    return V;
  }
  template <typename T> void set(uint64_t Addr, T Value) {
    checkOk(poke(Addr, &Value, sizeof(T)));
  }

  /// Number of mapped pages.
  size_t numPages() const { return Pages.size(); }

  /// Order-independent digest of the mapped contents, used to compare final
  /// memory images across scalar and vectorized executions.
  uint64_t fingerprint() const;

  /// Copy-on-write copy: pages are shared with the source and copied the
  /// first time either side writes them. Initial images are cloned per
  /// program under test. The clone starts with fresh stats and no hook.
  Memory clone() const;

  /// Eager byte-wise copy sharing nothing with the source. Used by tests
  /// as the reference against which clone()'s copy-on-write behaviour is
  /// verified.
  Memory deepClone() const;

  /// Byte-wise comparison of mapped contents (and the mapped-page sets).
  bool contentsEqual(const Memory &Other) const;

  /// Hot-path event counts since construction (clones start at zero).
  const MemoryStats &stats() const { return Stats; }

private:
  struct Page {
    std::array<uint8_t, PageSize> Data;
    uint8_t Perms;
  };
  /// Pages are shared between COW clones; use_count()==1 means this
  /// Memory is the sole owner and may write in place.
  using PageRef = std::shared_ptr<Page>;

  /// One direct-mapped TLB entry. Slot points at the PageRef inside the
  /// std::map node, which is address-stable across insertions and moves,
  /// so an entry stays valid until its page is unmapped — including across
  /// the COW copy, which replaces the pointee, not the slot.
  struct TlbEntry {
    uint64_t PageIdx = ~0ULL;
    PageRef *Slot = nullptr;
  };
  static constexpr size_t TlbEntries = 64; // power of two (direct-mapped)

  static void checkOk(const AccessResult &R);

  /// TLB-accelerated slot lookup; null when the page is unmapped.
  PageRef *lookup(uint64_t PageIdx) const;

  const Page *findPage(uint64_t PageIdx) const;
  /// Lookup for mutation: copies a shared page first (copy-on-write).
  Page *findPageForWrite(uint64_t PageIdx);

  void flushTlb() const;

  AccessResult doRead(uint64_t Addr, void *Out, uint64_t Size) const;
  AccessResult doWrite(uint64_t Addr, const void *Data, uint64_t Size);

  /// General-case architectural access (hook armed, TLB miss, straddle,
  /// fault, zero size). Counts and behaves identically to the inline fast
  /// path where the two overlap.
  AccessResult readCold(uint64_t Addr, void *Out, uint64_t Size) const;
  AccessResult writeCold(uint64_t Addr, const void *Data, uint64_t Size);

  // std::map keeps iteration deterministic for fingerprint/compare, and
  // its node stability is what lets TLB entries hold slot pointers.
  std::map<uint64_t, PageRef> Pages;
  FaultHook *Hook = nullptr;
  // The TLB is a cache warmed by const reads; stats are event counts on
  // const paths too. Both are logically non-observable state.
  mutable std::array<TlbEntry, TlbEntries> Tlb{};
  mutable MemoryStats Stats;
};

// The architectural accessors resolve the dominant case — no fault hook,
// single page, TLB hit — right in the caller (one table probe, one perm
// test, one memcpy). Every other case falls through to the out-of-line
// general path. Counter updates mirror the general path exactly: a TLB hit
// books TlbHits whether the access then succeeds or perm-faults, and a COW
// copy books CowCopies, so the fast path is invisible in the metrics.

inline AccessResult Memory::read(uint64_t Addr, void *Out,
                                 uint64_t Size) const {
  if (!Hook) {
    uint64_t Off = Addr & PageMask;
    uint64_t PageIdx = Addr / PageSize;
    const TlbEntry &E = Tlb[PageIdx & (TlbEntries - 1)];
    if (Size != 0 && Off + Size <= PageSize && E.PageIdx == PageIdx) {
      ++Stats.TlbHits;
      const Page *Pg = E.Slot->get();
      if (!(Pg->Perms & PermRead))
        return AccessResult::fault(Addr);
      std::memcpy(Out, Pg->Data.data() + Off, Size);
      return AccessResult::success();
    }
  }
  return readCold(Addr, Out, Size);
}

inline AccessResult Memory::write(uint64_t Addr, const void *Data,
                                  uint64_t Size) {
  if (!Hook) {
    uint64_t Off = Addr & PageMask;
    uint64_t PageIdx = Addr / PageSize;
    const TlbEntry &E = Tlb[PageIdx & (TlbEntries - 1)];
    if (Size != 0 && Off + Size <= PageSize && E.PageIdx == PageIdx) {
      ++Stats.TlbHits;
      PageRef *S = E.Slot;
      if (!((*S)->Perms & PermWrite))
        return AccessResult::fault(Addr);
      if (S->use_count() > 1) {
        // Shared with a COW clone: copy before the first write (the perm
        // check above ran first, so a faulting write never copies).
        *S = std::make_shared<Page>(**S);
        ++Stats.CowCopies;
      }
      std::memcpy((*S)->Data.data() + Off, Data, Size);
      return AccessResult::success();
    }
  }
  return writeCold(Addr, Data, Size);
}

/// Exports \p S into \p R under the `mem.` metric namespace; see
/// docs/OBSERVABILITY.md for the catalog.
void recordMetrics(const MemoryStats &S, obs::Registry &R);

/// Monotonic allocator handing out disjoint regions of a Memory, used to
/// lay out workload data images. Leaves an unmapped guard page between
/// allocations so out-of-bounds speculative accesses genuinely fault.
class BumpAllocator {
public:
  explicit BumpAllocator(Memory &M, uint64_t Base = 0x10000)
      : M(M), Next(Base) {}

  /// Allocates \p Size bytes aligned to \p Align; maps the pages ReadWrite.
  uint64_t alloc(uint64_t Size, uint64_t Align = 64);

  /// Allocates and copies \p Values into memory; returns the base address.
  /// Uses the debug write path so image construction is unaffected by an
  /// armed fault injector.
  template <typename T> uint64_t allocArray(const std::vector<T> &Values) {
    uint64_t Addr = alloc(Values.size() * sizeof(T), 64);
    if (!Values.empty())
      M.poke(Addr, Values.data(), Values.size() * sizeof(T));
    return Addr;
  }

  uint64_t nextFree() const { return Next; }

private:
  Memory &M;
  uint64_t Next;
};

} // namespace mem
} // namespace flexvec

#endif // FLEXVEC_MEMORY_MEMORY_H
