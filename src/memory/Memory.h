//===- memory/Memory.h - Sparse paged address space -------------*- C++ -*-===//
//
// A sparse, 64-bit, paged memory model with per-page permissions. Accesses
// to unmapped or permission-violating addresses report faults rather than
// aborting, which is what the first-faulting FlexVec loads (Section 3.3.1)
// and the RTM abort path (Section 3.3.2) are built on.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_MEMORY_MEMORY_H
#define FLEXVEC_MEMORY_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

namespace flexvec {
namespace mem {

inline constexpr uint64_t PageSize = 4096;
inline constexpr uint64_t PageMask = PageSize - 1;

/// Page permission bits.
enum PagePerms : uint8_t {
  PermNone = 0,
  PermRead = 1,
  PermWrite = 2,
  PermReadWrite = PermRead | PermWrite,
};

/// Outcome of a memory access. Faulting accesses perform no partial work.
struct AccessResult {
  bool Ok = true;
  uint64_t FaultAddr = 0;

  static AccessResult success() { return {}; }
  static AccessResult fault(uint64_t Addr) { return {false, Addr}; }
};

/// Policy interface consulted on every *architectural* access (read/write
/// and the typed helpers built on them). A hook can force an access to
/// fault even though the underlying pages are mapped, which is how the
/// fault-injection subsystem (faults/FaultInjector.h) models transient and
/// persistent memory errors. Debug accesses (peek/poke, get/set) bypass
/// the hook so harnesses can always inspect and rebuild state.
class FaultHook {
public:
  virtual ~FaultHook();

  /// Returns true to inject a fault into the access of [Addr, Addr+Size).
  /// On injection \p FaultAddr must be set to the reported fault address.
  virtual bool shouldFault(uint64_t Addr, uint64_t Size, bool IsWrite,
                           uint64_t &FaultAddr) = 0;
};

/// The sparse paged address space.
class Memory {
public:
  Memory() = default;
  Memory(const Memory &) = delete;
  Memory &operator=(const Memory &) = delete;
  Memory(Memory &&) = default;
  Memory &operator=(Memory &&) = default;

  /// Maps [Addr, Addr+Size) with \p Perms; Addr and Size need not be
  /// page-aligned (the covering pages are mapped). Newly mapped pages are
  /// zero-filled. Re-mapping updates permissions and preserves contents.
  void map(uint64_t Addr, uint64_t Size, uint8_t Perms = PermReadWrite);

  /// Unmaps all pages covering [Addr, Addr+Size).
  void unmap(uint64_t Addr, uint64_t Size);

  /// True if every byte of [Addr, Addr+Size) is mapped with \p Perms.
  bool isAccessible(uint64_t Addr, uint64_t Size, uint8_t Perms) const;

  /// Reads \p Size bytes into \p Out. On fault nothing is written.
  AccessResult read(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Writes \p Size bytes. On fault nothing is modified.
  AccessResult write(uint64_t Addr, const void *Data, uint64_t Size);

  /// Debug accessors: identical to read()/write() except that they never
  /// consult the fault hook. Used by test harnesses, image construction,
  /// and the RTM undo-log rollback, all of which must keep working while
  /// fault injection is armed.
  AccessResult peek(uint64_t Addr, void *Out, uint64_t Size) const;
  AccessResult poke(uint64_t Addr, const void *Data, uint64_t Size);

  /// Installs (or clears, with nullptr) the fault-injection hook. The hook
  /// is not owned and must outlive the Memory; clone() does not copy it.
  void setFaultHook(FaultHook *H) { Hook = H; }
  FaultHook *faultHook() const { return Hook; }

  /// Typed helpers; fault behaviour as read()/write().
  template <typename T> AccessResult readValue(uint64_t Addr, T &Out) const {
    return read(Addr, &Out, sizeof(T));
  }
  template <typename T> AccessResult writeValue(uint64_t Addr, T Value) {
    return write(Addr, &Value, sizeof(T));
  }

  /// Convenience accessors for tests/workloads. They use the debug path
  /// (no fault-hook consultation), so an armed fault injector can never
  /// reach checkOk's process abort: the only way these fail is a genuinely
  /// unmapped or permission-violating address, which is a harness bug.
  template <typename T> T get(uint64_t Addr) const {
    T V{};
    AccessResult R = peek(Addr, &V, sizeof(T));
    checkOk(R);
    return V;
  }
  template <typename T> void set(uint64_t Addr, T Value) {
    checkOk(poke(Addr, &Value, sizeof(T)));
  }

  /// Number of mapped pages.
  size_t numPages() const { return Pages.size(); }

  /// Order-independent digest of the mapped contents, used to compare final
  /// memory images across scalar and vectorized executions.
  uint64_t fingerprint() const;

  /// Deep copy (initial images are cloned per program under test).
  Memory clone() const;

  /// Byte-wise comparison of mapped contents (and the mapped-page sets).
  bool contentsEqual(const Memory &Other) const;

private:
  struct Page {
    std::array<uint8_t, PageSize> Data;
    uint8_t Perms;
  };

  static void checkOk(const AccessResult &R);

  const Page *findPage(uint64_t PageIdx) const;
  Page *findPage(uint64_t PageIdx);

  AccessResult doRead(uint64_t Addr, void *Out, uint64_t Size) const;
  AccessResult doWrite(uint64_t Addr, const void *Data, uint64_t Size);

  // std::map keeps iteration deterministic for fingerprint/compare.
  std::map<uint64_t, std::unique_ptr<Page>> Pages;
  FaultHook *Hook = nullptr;
};

/// Monotonic allocator handing out disjoint regions of a Memory, used to
/// lay out workload data images. Leaves an unmapped guard page between
/// allocations so out-of-bounds speculative accesses genuinely fault.
class BumpAllocator {
public:
  explicit BumpAllocator(Memory &M, uint64_t Base = 0x10000)
      : M(M), Next(Base) {}

  /// Allocates \p Size bytes aligned to \p Align; maps the pages ReadWrite.
  uint64_t alloc(uint64_t Size, uint64_t Align = 64);

  /// Allocates and copies \p Values into memory; returns the base address.
  /// Uses the debug write path so image construction is unaffected by an
  /// armed fault injector.
  template <typename T> uint64_t allocArray(const std::vector<T> &Values) {
    uint64_t Addr = alloc(Values.size() * sizeof(T), 64);
    if (!Values.empty())
      M.poke(Addr, Values.data(), Values.size() * sizeof(T));
    return Addr;
  }

  uint64_t nextFree() const { return Next; }

private:
  Memory &M;
  uint64_t Next;
};

} // namespace mem
} // namespace flexvec

#endif // FLEXVEC_MEMORY_MEMORY_H
