//===- support/Random.h - Deterministic PRNGs ------------------*- C++ -*-===//
//
// Deterministic, seedable random number generation used by workload input
// generators and property-based tests. std::mt19937 is avoided so that
// every platform and standard library produces identical workload images.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_RANDOM_H
#define FLEXVEC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace flexvec {

/// SplitMix64: used to expand a user seed into stream state.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256**: the workhorse generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eedf1e8f1e8c0deULL) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a non-zero bound");
    // Lemire's nearly-divisionless method.
    uint64_t X = next();
    __uint128_t M = static_cast<__uint128_t>(X) * Bound;
    uint64_t L = static_cast<uint64_t>(M);
    if (L < Bound) {
      uint64_t Threshold = (0 - Bound) % Bound;
      while (L < Threshold) {
        X = next();
        M = static_cast<__uint128_t>(X) * Bound;
        L = static_cast<uint64_t>(M);
      }
    }
    return static_cast<uint64_t>(M >> 64);
  }

  /// Returns an integer in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_RANDOM_H
