//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace flexvec;

void Json::push(Json V) {
  assert(K == Kind::Array && "push on a non-array");
  Elems.push_back(std::move(V));
}

void Json::set(const std::string &Key, Json V) {
  assert(K == Kind::Object && "set on a non-object");
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

std::string Json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void Json::render(std::string &Out, int Depth) const {
  std::string Indent(static_cast<size_t>(Depth) * 2, ' ');
  std::string ChildIndent(static_cast<size_t>(Depth + 1) * 2, ' ');
  char Buf[40];
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(IntV));
    Out += Buf;
    break;
  case Kind::UInt:
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(UIntV));
    Out += Buf;
    break;
  case Kind::Double:
    // %.17g round-trips every finite double; non-finite values have no
    // JSON spelling, so emit null like most serializers.
    if (std::isfinite(DoubleV)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleV);
      Out += Buf;
    } else {
      Out += "null";
    }
    break;
  case Kind::String:
    Out += '"';
    Out += escape(StringV);
    Out += '"';
    break;
  case Kind::Array:
    if (Elems.empty()) {
      Out += "[]";
      break;
    }
    Out += "[\n";
    for (size_t I = 0; I < Elems.size(); ++I) {
      Out += ChildIndent;
      Elems[I].render(Out, Depth + 1);
      Out += I + 1 < Elems.size() ? ",\n" : "\n";
    }
    Out += Indent;
    Out += ']';
    break;
  case Kind::Object:
    if (Members.empty()) {
      Out += "{}";
      break;
    }
    Out += "{\n";
    for (size_t I = 0; I < Members.size(); ++I) {
      Out += ChildIndent;
      Out += '"';
      Out += escape(Members[I].first);
      Out += "\": ";
      Members[I].second.render(Out, Depth + 1);
      Out += I + 1 < Members.size() ? ",\n" : "\n";
    }
    Out += Indent;
    Out += '}';
    break;
  }
}

std::string Json::dump() const {
  std::string Out;
  render(Out, 0);
  Out += '\n';
  return Out;
}

int64_t Json::asInt() const {
  switch (K) {
  case Kind::Int:
    return IntV;
  case Kind::UInt:
    return static_cast<int64_t>(UIntV);
  case Kind::Double:
    return static_cast<int64_t>(DoubleV);
  default:
    return 0;
  }
}

uint64_t Json::asUInt() const {
  switch (K) {
  case Kind::Int:
    return static_cast<uint64_t>(IntV);
  case Kind::UInt:
    return UIntV;
  case Kind::Double:
    return static_cast<uint64_t>(DoubleV);
  default:
    return 0;
  }
}

double Json::asDouble() const {
  switch (K) {
  case Kind::Int:
    return static_cast<double>(IntV);
  case Kind::UInt:
    return static_cast<double>(UIntV);
  case Kind::Double:
    return DoubleV;
  default:
    return 0.0;
  }
}

const Json *Json::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

size_t Json::size() const {
  if (K == Kind::Array)
    return Elems.size();
  if (K == Kind::Object)
    return Members.size();
  return 0;
}

namespace {

/// Strict recursive-descent parser over the byte range [P, End). No
/// recovery: the first violation aborts with a message + offset.
class Parser {
public:
  Parser(const std::string &Text, std::string &Err)
      : Begin(Text.data()), P(Text.data()), End(Text.data() + Text.size()),
        Err(Err) {}

  bool run(Json &Out) {
    skipWs();
    if (!value(Out, 0))
      return false;
    skipWs();
    if (P != End)
      return fail("trailing characters after top-level value");
    return true;
  }

private:
  /// Containers may nest this deep before the parser refuses (with the
  /// byte offset of the container that crossed the line). 256 frames of
  /// value/object recursion stay far below any platform stack limit while
  /// admitting every payload this project produces.
  static constexpr int MaxDepth = 256;

  bool fail(const std::string &Msg) {
    Err = Msg + " at offset " + std::to_string(P - Begin);
    return false;
  }

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool literal(const char *Lit) {
    const char *Q = P;
    for (; *Lit; ++Lit, ++Q)
      if (Q == End || *Q != *Lit)
        return fail("invalid literal");
    P = Q;
    return true;
  }

  bool value(Json &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (P == End)
      return fail("unexpected end of input");
    switch (*P) {
    case '{':
      return object(Out, Depth);
    case '[':
      return array(Out, Depth);
    case '"': {
      std::string S;
      if (!string(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = Json(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Json(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = Json();
      return true;
    default:
      return number(Out);
    }
  }

  bool object(Json &Out, int Depth) {
    ++P; // '{'
    Out = Json::object();
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (P == End || *P != '"')
        return fail("expected object key");
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (P == End || *P != ':')
        return fail("expected ':' after object key");
      ++P;
      skipWs();
      Json V;
      if (!value(V, Depth + 1))
        return false;
      Out.set(Key, std::move(V));
      skipWs();
      if (P == End)
        return fail("unterminated object");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(Json &Out, int Depth) {
    ++P; // '['
    Out = Json::array();
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      Json V;
      if (!value(V, Depth + 1))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (P == End)
        return fail("unterminated array");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string(std::string &Out) {
    ++P; // '"'
    while (P != End && *P != '"') {
      unsigned char C = static_cast<unsigned char>(*P);
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (*P == '\\') {
        ++P;
        if (P == End)
          return fail("unterminated escape");
        switch (*P) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            ++P;
            if (P == End)
              return fail("unterminated \\u escape");
            char H = *P;
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          // The writer only emits \u00XX for control bytes; decode BMP
          // code points as UTF-8 and reject surrogates, which it never
          // produces.
          if (V >= 0xD800 && V <= 0xDFFF)
            return fail("surrogate \\u escapes are not supported");
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else if (V < 0x800) {
            Out += static_cast<char>(0xC0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape character");
        }
        ++P;
      } else {
        Out += *P;
        ++P;
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing '"'
    return true;
  }

  bool number(Json &Out) {
    const char *Start = P;
    bool Negative = P != End && *P == '-';
    if (Negative)
      ++P;
    if (P == End || *P < '0' || *P > '9')
      return fail("invalid number");
    if (*P == '0' && P + 1 != End && P[1] >= '0' && P[1] <= '9')
      return fail("leading zeros are not allowed");
    bool Integral = true;
    while (P != End && *P >= '0' && *P <= '9')
      ++P;
    if (P != End && *P == '.') {
      Integral = false;
      ++P;
      if (P == End || *P < '0' || *P > '9')
        return fail("digits required after decimal point");
      while (P != End && *P >= '0' && *P <= '9')
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      Integral = false;
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      if (P == End || *P < '0' || *P > '9')
        return fail("digits required in exponent");
      while (P != End && *P >= '0' && *P <= '9')
        ++P;
    }
    std::string Tok(Start, P);
    errno = 0;
    if (Integral && !Negative) {
      char *TokEnd = nullptr;
      unsigned long long V = std::strtoull(Tok.c_str(), &TokEnd, 10);
      if (errno == 0 && TokEnd == Tok.c_str() + Tok.size()) {
        Out = Json(static_cast<uint64_t>(V));
        return true;
      }
    } else if (Integral) {
      char *TokEnd = nullptr;
      long long V = std::strtoll(Tok.c_str(), &TokEnd, 10);
      if (errno == 0 && TokEnd == Tok.c_str() + Tok.size()) {
        Out = Json(static_cast<int64_t>(V));
        return true;
      }
    }
    // Fractions, exponents, and out-of-range integers widen to double.
    errno = 0;
    char *TokEnd = nullptr;
    double D = std::strtod(Tok.c_str(), &TokEnd);
    if (TokEnd != Tok.c_str() + Tok.size())
      return fail("invalid number");
    Out = Json(D);
    return true;
  }

  const char *Begin;
  const char *P;
  const char *End;
  std::string &Err;
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string &Err) {
  Parser Prs(Text, Err);
  return Prs.run(Out);
}
