//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace flexvec;

void Json::push(Json V) {
  assert(K == Kind::Array && "push on a non-array");
  Elems.push_back(std::move(V));
}

void Json::set(const std::string &Key, Json V) {
  assert(K == Kind::Object && "set on a non-object");
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

std::string Json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void Json::render(std::string &Out, int Depth) const {
  std::string Indent(static_cast<size_t>(Depth) * 2, ' ');
  std::string ChildIndent(static_cast<size_t>(Depth + 1) * 2, ' ');
  char Buf[40];
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(IntV));
    Out += Buf;
    break;
  case Kind::UInt:
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(UIntV));
    Out += Buf;
    break;
  case Kind::Double:
    // %.17g round-trips every finite double; non-finite values have no
    // JSON spelling, so emit null like most serializers.
    if (std::isfinite(DoubleV)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleV);
      Out += Buf;
    } else {
      Out += "null";
    }
    break;
  case Kind::String:
    Out += '"';
    Out += escape(StringV);
    Out += '"';
    break;
  case Kind::Array:
    if (Elems.empty()) {
      Out += "[]";
      break;
    }
    Out += "[\n";
    for (size_t I = 0; I < Elems.size(); ++I) {
      Out += ChildIndent;
      Elems[I].render(Out, Depth + 1);
      Out += I + 1 < Elems.size() ? ",\n" : "\n";
    }
    Out += Indent;
    Out += ']';
    break;
  case Kind::Object:
    if (Members.empty()) {
      Out += "{}";
      break;
    }
    Out += "{\n";
    for (size_t I = 0; I < Members.size(); ++I) {
      Out += ChildIndent;
      Out += '"';
      Out += escape(Members[I].first);
      Out += "\": ";
      Members[I].second.render(Out, Depth + 1);
      Out += I + 1 < Members.size() ? ",\n" : "\n";
    }
    Out += Indent;
    Out += '}';
    break;
  }
}

std::string Json::dump() const {
  std::string Out;
  render(Out, 0);
  Out += '\n';
  return Out;
}
