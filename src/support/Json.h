//===- support/Json.h - Minimal deterministic JSON emission -----*- C++ -*-===//
//
// A tiny insertion-ordered JSON document model for the machine-readable
// bench output (BENCH_*.json). The renderer must be stable — the
// determinism tests compare rendered bytes — so keys keep insertion
// order, doubles always format with %.17g, and indentation is fixed
// two-space. parse() is the inverse, added for flexvec-benchdiff: a
// strict recursive-descent reader for the documents dump() produces
// (and hand-edited baselines), reporting the byte offset on error.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_JSON_H
#define FLEXVEC_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace flexvec {

class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Int, UInt, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool V) : K(Kind::Bool), BoolV(V) {}
  Json(int V) : K(Kind::Int), IntV(V) {}
  Json(int64_t V) : K(Kind::Int), IntV(V) {}
  Json(uint64_t V) : K(Kind::UInt), UIntV(V) {}
  Json(unsigned V) : K(Kind::UInt), UIntV(V) {}
  Json(double V) : K(Kind::Double), DoubleV(V) {}
  Json(const char *V) : K(Kind::String), StringV(V) {}
  Json(std::string V) : K(Kind::String), StringV(std::move(V)) {}

  static Json array() { Json J; J.K = Kind::Array; return J; }
  static Json object() { Json J; J.K = Kind::Object; return J; }

  Kind kind() const { return K; }

  /// Appends to an array.
  void push(Json V);
  /// Sets a key on an object (insertion-ordered; duplicate keys replace).
  void set(const std::string &Key, Json V);

  /// Renders with two-space indentation and a trailing newline at the top
  /// level.
  std::string dump() const;

  /// JSON string escaping of \p S (without surrounding quotes).
  static std::string escape(const std::string &S);

  /// Parses \p Text into \p Out. Returns false and fills \p Err (message
  /// plus byte offset) on malformed input. Numbers without '.', 'e', or a
  /// leading '-' parse as UInt, negative integers as Int, the rest as
  /// Double; duplicate object keys keep the last value, matching set().
  static bool parse(const std::string &Text, Json &Out, std::string &Err);

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const {
    return K == Kind::Int || K == Kind::UInt || K == Kind::Double;
  }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolV; }
  int64_t asInt() const;
  uint64_t asUInt() const;
  /// Numeric value widened to double (0.0 for non-numbers).
  double asDouble() const;
  const std::string &asString() const { return StringV; }

  /// Member lookup on an object; null when absent or not an object.
  const Json *find(const std::string &Key) const;
  /// Array/object element count (0 for scalars).
  size_t size() const;
  const std::vector<Json> &elems() const { return Elems; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

private:
  void render(std::string &Out, int Depth) const;

  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  uint64_t UIntV = 0;
  double DoubleV = 0.0;
  std::string StringV;
  std::vector<Json> Elems;
  std::vector<std::pair<std::string, Json>> Members;
};

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_JSON_H
