//===- support/Json.h - Minimal deterministic JSON emission -----*- C++ -*-===//
//
// A tiny insertion-ordered JSON document model for the machine-readable
// bench output (BENCH_*.json). Writing, not parsing: the bench emits
// documents and the determinism tests compare the rendered bytes, so the
// renderer must be stable — keys keep insertion order, doubles always
// format with %.17g, and indentation is fixed two-space.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_JSON_H
#define FLEXVEC_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace flexvec {

class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Int, UInt, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool V) : K(Kind::Bool), BoolV(V) {}
  Json(int V) : K(Kind::Int), IntV(V) {}
  Json(int64_t V) : K(Kind::Int), IntV(V) {}
  Json(uint64_t V) : K(Kind::UInt), UIntV(V) {}
  Json(unsigned V) : K(Kind::UInt), UIntV(V) {}
  Json(double V) : K(Kind::Double), DoubleV(V) {}
  Json(const char *V) : K(Kind::String), StringV(V) {}
  Json(std::string V) : K(Kind::String), StringV(std::move(V)) {}

  static Json array() { Json J; J.K = Kind::Array; return J; }
  static Json object() { Json J; J.K = Kind::Object; return J; }

  Kind kind() const { return K; }

  /// Appends to an array.
  void push(Json V);
  /// Sets a key on an object (insertion-ordered; duplicate keys replace).
  void set(const std::string &Key, Json V);

  /// Renders with two-space indentation and a trailing newline at the top
  /// level.
  std::string dump() const;

  /// JSON string escaping of \p S (without surrounding quotes).
  static std::string escape(const std::string &S);

private:
  void render(std::string &Out, int Depth) const;

  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  uint64_t UIntV = 0;
  double DoubleV = 0.0;
  std::string StringV;
  std::vector<Json> Elems;
  std::vector<std::pair<std::string, Json>> Members;
};

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_JSON_H
