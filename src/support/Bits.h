//===- support/Bits.h - Bit and lane-mask utilities ------------*- C++ -*-===//
//
// Helpers for manipulating lane masks. Lane 0 is the least significant bit,
// matching the paper's convention that vector elements are laid out from
// the least significant ("leftmost" in the paper's figures) lane upward.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_BITS_H
#define FLEXVEC_SUPPORT_BITS_H

#include <bit>
#include <cassert>
#include <cstdint>

namespace flexvec {

/// Number of set bits.
inline unsigned popcount(uint64_t X) { return std::popcount(X); }

/// Index of the lowest set bit; 64 when X is zero.
inline unsigned countTrailingZeros(uint64_t X) { return std::countr_zero(X); }

/// A mask with the low \p N bits set. N may be 0..64.
inline uint64_t lowBitMask(unsigned N) {
  assert(N <= 64 && "bit count out of range");
  return N >= 64 ? ~0ULL : ((1ULL << N) - 1);
}

/// True if bit \p Lane is set in \p Mask.
inline bool testBit(uint64_t Mask, unsigned Lane) {
  assert(Lane < 64 && "lane out of range");
  return (Mask >> Lane) & 1;
}

/// Returns \p Mask with bit \p Lane set or cleared.
inline uint64_t assignBit(uint64_t Mask, unsigned Lane, bool Value) {
  assert(Lane < 64 && "lane out of range");
  uint64_t Bit = 1ULL << Lane;
  return Value ? (Mask | Bit) : (Mask & ~Bit);
}

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_BITS_H
