//===- support/ArgParse.h - Strict CLI value parsing ------------*- C++ -*-===//
//
// Strict numeric parsing for command-line flags. The drivers used to run
// flag values through atoll/atof, which silently turn typos ("--trip=1O0",
// "--jobs=") into zeros; these helpers accept a value only when the entire
// string parses, so the drivers can reject malformed input with a usage
// hint and a nonzero exit instead.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_ARGPARSE_H
#define FLEXVEC_SUPPORT_ARGPARSE_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace flexvec {

/// Parses all of \p S as a signed decimal integer.
inline bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

/// Parses all of \p S as an unsigned decimal integer (leading '-' rejected).
inline bool parseUInt(const std::string &S, uint64_t &Out) {
  if (S.empty() || S[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

/// Parses all of \p S as a floating-point value.
inline bool parseDouble(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_ARGPARSE_H
