//===- support/Hash.h - Stable content hashing ------------------*- C++ -*-===//
//
// Platform-stable hashing for cache keys and per-job PRNG stream seeds.
// std::hash is implementation-defined, so anything that feeds a cache key,
// a bench JSON payload, or a seeded worker stream goes through these
// instead: the same inputs must hash identically on every toolchain the
// determinism tests run under.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_HASH_H
#define FLEXVEC_SUPPORT_HASH_H

#include "support/Random.h"

#include <cstdint>
#include <string>

namespace flexvec {

/// 64-bit FNV-1a over a byte range.
inline uint64_t fnv1a64(const void *Data, size_t Size,
                        uint64_t Seed = 0xcbf29ce484222325ULL) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

inline uint64_t fnv1a64(const std::string &S,
                        uint64_t Seed = 0xcbf29ce484222325ULL) {
  return fnv1a64(S.data(), S.size(), Seed);
}

/// Boost-style combiner for folding word streams into one digest.
inline uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

/// Derives the seed of an independent PRNG stream from a base seed and a
/// stream label (job index, benchmark name hash, ...). Two SplitMix64
/// steps decorrelate adjacent labels so parallel jobs never share a
/// stream, and the result depends only on (BaseSeed, Label) — never on
/// which worker thread runs the job.
inline uint64_t deriveStreamSeed(uint64_t BaseSeed, uint64_t Label) {
  SplitMix64 SM(hashCombine(BaseSeed, Label));
  SM.next();
  return SM.next();
}

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_HASH_H
