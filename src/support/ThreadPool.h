//===- support/ThreadPool.h - Deterministic fixed-size pool -----*- C++ -*-===//
//
// A work-stealing-free thread pool for the parallel evaluation engine.
// Design constraints (docs/EVALUATION.md):
//
//   * Fixed worker count, chosen at construction; never grows or shrinks.
//   * Jobs are indices 0..N-1 over a pure function. Workers claim indices
//     from one shared ticket counter (no per-worker deques, no stealing),
//     and every job writes only its own result slot, so the collected
//     result vector is ordered by job index and bit-identical regardless
//     of the worker count or interleaving.
//   * Per-job PRNG streams are derived from (base seed, job label) with
//     support/Hash.h, never from thread identity.
//
// A pool constructed with <= 1 workers spawns no threads at all and runs
// jobs inline on the caller; `--jobs=1` therefore exercises the exact
// code path the determinism tests compare against.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_THREADPOOL_H
#define FLEXVEC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flexvec {

class ThreadPool {
public:
  /// \p Workers = 0 asks for one worker per hardware thread.
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of workers executing jobs (>= 1; 1 means inline execution).
  unsigned workerCount() const { return Workers; }

  /// Runs Fn(0), ..., Fn(N-1) across the workers and returns once all have
  /// finished. The first exception thrown by any job is rethrown on the
  /// caller after the batch drains; remaining jobs still run.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// parallelFor that collects Fn's results ordered by job index.
  template <typename T>
  std::vector<T> map(size_t N, const std::function<T(size_t)> &Fn) {
    std::vector<T> Out(N);
    parallelFor(N, [&](size_t I) { Out[I] = Fn(I); });
    return Out;
  }

private:
  void workerLoop();
  /// Claims and runs jobs from the current batch until it drains.
  void drainBatch();

  unsigned Workers;
  std::vector<std::thread> Threads;

  std::mutex Mu;
  std::condition_variable WorkCv;  ///< Workers wait for a new batch.
  std::condition_variable DoneCv;  ///< Caller waits for batch completion.
  const std::function<void(size_t)> *BatchFn = nullptr;
  size_t BatchSize = 0;
  uint64_t BatchGeneration = 0;
  unsigned BusyWorkers = 0;
  bool ShuttingDown = false;
  std::exception_ptr BatchError;

  std::atomic<size_t> NextJob{0}; ///< Shared ticket counter.
};

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_THREADPOOL_H
