//===- support/ThreadPool.h - Deterministic fixed-size pool -----*- C++ -*-===//
//
// A work-stealing-free thread pool for the parallel evaluation engine.
// Design constraints (docs/EVALUATION.md):
//
//   * Fixed worker count, chosen at construction; never grows or shrinks.
//   * Jobs are indices 0..N-1 over a pure function. Workers claim indices
//     from one shared ticket counter (no per-worker deques, no stealing),
//     and every job writes only its own result slot, so the collected
//     result vector is ordered by job index and bit-identical regardless
//     of the worker count or interleaving.
//   * Per-job PRNG streams are derived from (base seed, job label) with
//     support/Hash.h, never from thread identity.
//
// A pool constructed with <= 1 workers spawns no threads at all and runs
// jobs inline on the caller; `--jobs=1` therefore exercises the exact
// code path the determinism tests compare against.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_THREADPOOL_H
#define FLEXVEC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace flexvec {

class ThreadPool {
public:
  /// \p Workers = 0 asks for one worker per hardware thread.
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of workers executing jobs (>= 1; 1 means inline execution).
  unsigned workerCount() const { return Workers; }

  /// Runs Fn(0), ..., Fn(N-1) across the workers and returns once all have
  /// finished. The first exception thrown by any job is rethrown on the
  /// caller after the batch drains; remaining jobs still run.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// parallelFor that collects Fn's results ordered by job index.
  template <typename T>
  std::vector<T> map(size_t N, const std::function<T(size_t)> &Fn) {
    std::vector<T> Out(N);
    parallelFor(N, [&](size_t I) { Out[I] = Fn(I); });
    return Out;
  }

private:
  struct Batch;

  void workerLoop();
  /// Claims and runs jobs from \p B until its tickets are exhausted.
  void drainBatch(Batch &B);

  unsigned Workers;
  std::vector<std::thread> Threads;

  /// All state for one parallelFor call. Owned by a shared_ptr so a worker
  /// that wakes up late holds the batch it snapshotted alive and can never
  /// read state the caller has already reused for the next batch. Tickets
  /// and completion are counted per batch, so a stale worker cannot steal a
  /// ticket from (or double-count a job of) any other batch.
  struct Batch {
    Batch(const std::function<void(size_t)> &F, size_t N) : Fn(F), Size(N) {}
    const std::function<void(size_t)> &Fn; ///< Valid until DoneJobs == Size.
    const size_t Size;
    std::atomic<size_t> NextJob{0};  ///< Ticket counter; may exceed Size.
    std::atomic<size_t> DoneJobs{0}; ///< Jobs finished (ran or threw).
    std::exception_ptr Error;        ///< Guarded by Mu.
  };

  std::mutex Mu;
  std::condition_variable WorkCv;  ///< Workers wait for a new batch.
  std::condition_variable DoneCv;  ///< Caller waits for batch completion.
  std::shared_ptr<Batch> Current;  ///< Guarded by Mu; null between batches.
  uint64_t BatchGeneration = 0;    ///< Guarded by Mu; bumped per batch.
  bool ShuttingDown = false;       ///< Guarded by Mu.
};

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_THREADPOOL_H
