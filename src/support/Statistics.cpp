//===- support/Statistics.cpp ---------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace flexvec;

double flexvec::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double flexvec::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

void RunningStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  Sum += X;
  ++N;
}

void Histogram::add(uint64_t Value) {
  assert(!Buckets.empty() && "histogram has no buckets");
  unsigned Idx = Value < Buckets.size() ? static_cast<unsigned>(Value)
                                        : numBuckets() - 1;
  ++Buckets[Idx];
  ++Total;
}
