//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace flexvec;

ThreadPool::ThreadPool(unsigned RequestedWorkers) {
  Workers = RequestedWorkers != 0 ? RequestedWorkers
                                  : std::max(1u, std::thread::hardware_concurrency());
  if (Workers <= 1)
    return; // Inline execution; no threads.
  Threads.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::drainBatch(Batch &B) {
  for (;;) {
    size_t I = B.NextJob.fetch_add(1, std::memory_order_relaxed);
    if (I >= B.Size)
      return;
    try {
      B.Fn(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!B.Error)
        B.Error = std::current_exception();
    }
    // The acq_rel increment chain makes every job's side effects visible to
    // whichever worker performs the final increment; that worker then
    // notifies the caller under Mu, which publishes them to the caller.
    if (B.DoneJobs.fetch_add(1, std::memory_order_acq_rel) + 1 == B.Size) {
      std::lock_guard<std::mutex> Lock(Mu);
      DoneCv.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCv.wait(Lock, [&] {
      return ShuttingDown || BatchGeneration != SeenGeneration;
    });
    if (ShuttingDown)
      return;
    SeenGeneration = BatchGeneration;
    // Snapshot the batch under the lock. A worker that missed a whole batch
    // (the others drained it before this one woke) observes either the next
    // batch or null; it can never see a half-torn-down one, and the
    // shared_ptr keeps whatever it did observe alive while it drains.
    std::shared_ptr<Batch> B = Current;
    if (!B)
      continue;
    Lock.unlock();
    drainBatch(*B);
    Lock.lock();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Threads.empty()) {
    // Inline path: identical run-all-then-rethrow semantics to the pool.
    std::exception_ptr Err;
    for (size_t I = 0; I < N; ++I) {
      try {
        Fn(I);
      } catch (...) {
        if (!Err)
          Err = std::current_exception();
      }
    }
    if (Err)
      std::rethrow_exception(Err);
    return;
  }

  auto B = std::make_shared<Batch>(Fn, N);
  std::unique_lock<std::mutex> Lock(Mu);
  Current = B;
  ++BatchGeneration;
  WorkCv.notify_all();
  // All Size jobs completed implies all Size tickets were claimed, so any
  // worker still holding this batch will see NextJob >= Size and bail
  // without touching Fn; returning (and destroying Fn) is then safe even
  // though that worker may not have re-acquired Mu yet.
  DoneCv.wait(Lock, [&] {
    return B->DoneJobs.load(std::memory_order_acquire) == B->Size;
  });
  if (Current == B)
    Current.reset();
  std::exception_ptr Err = B->Error;
  Lock.unlock();
  if (Err)
    std::rethrow_exception(Err);
}
