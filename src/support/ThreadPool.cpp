//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace flexvec;

ThreadPool::ThreadPool(unsigned RequestedWorkers) {
  Workers = RequestedWorkers != 0 ? RequestedWorkers
                                  : std::max(1u, std::thread::hardware_concurrency());
  if (Workers <= 1)
    return; // Inline execution; no threads.
  Threads.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::drainBatch() {
  for (;;) {
    size_t I = NextJob.fetch_add(1, std::memory_order_relaxed);
    if (I >= BatchSize)
      return;
    try {
      (*BatchFn)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!BatchError)
        BatchError = std::current_exception();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    WorkCv.wait(Lock, [&] {
      return ShuttingDown || BatchGeneration != SeenGeneration;
    });
    if (ShuttingDown)
      return;
    SeenGeneration = BatchGeneration;
    ++BusyWorkers;
    Lock.unlock();
    drainBatch();
    Lock.lock();
    if (--BusyWorkers == 0)
      DoneCv.notify_all();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Threads.empty()) {
    // Inline path: identical run-all-then-rethrow semantics to the pool.
    std::exception_ptr Err;
    for (size_t I = 0; I < N; ++I) {
      try {
        Fn(I);
      } catch (...) {
        if (!Err)
          Err = std::current_exception();
      }
    }
    if (Err)
      std::rethrow_exception(Err);
    return;
  }

  std::unique_lock<std::mutex> Lock(Mu);
  BatchFn = &Fn;
  BatchSize = N;
  BatchError = nullptr;
  NextJob.store(0, std::memory_order_relaxed);
  ++BatchGeneration;
  WorkCv.notify_all();
  DoneCv.wait(Lock, [&] {
    return NextJob.load(std::memory_order_relaxed) >= BatchSize &&
           BusyWorkers == 0;
  });
  BatchFn = nullptr;
  BatchSize = 0;
  std::exception_ptr Err = BatchError;
  BatchError = nullptr;
  Lock.unlock();
  if (Err)
    std::rethrow_exception(Err);
}
