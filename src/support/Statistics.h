//===- support/Statistics.h - Summary statistics ---------------*- C++ -*-===//
//
// Aggregation helpers used by the evaluation harness (geomean speedups,
// means, distribution summaries for VPL iteration counts).
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_STATISTICS_H
#define FLEXVEC_SUPPORT_STATISTICS_H

#include <cstdint>
#include <vector>

namespace flexvec {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double> &Values);

/// Geometric mean; 0 for an empty range. All values must be positive.
double geomean(const std::vector<double> &Values);

/// Incrementally built summary of a stream of observations.
class RunningStats {
public:
  void add(double X);

  uint64_t count() const { return N; }
  double mean() const { return N ? Sum / static_cast<double>(N) : 0.0; }
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }
  double sum() const { return Sum; }

private:
  uint64_t N = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Fixed-bucket histogram for small non-negative integer observations
/// (e.g. VPL iterations per vector iteration).
class Histogram {
public:
  explicit Histogram(unsigned NumBuckets) : Buckets(NumBuckets, 0) {}

  /// Adds an observation; values >= NumBuckets land in the last bucket.
  void add(uint64_t Value);

  uint64_t bucket(unsigned Idx) const { return Buckets[Idx]; }
  unsigned numBuckets() const { return static_cast<unsigned>(Buckets.size()); }
  uint64_t total() const { return Total; }

private:
  std::vector<uint64_t> Buckets;
  uint64_t Total = 0;
};

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_STATISTICS_H
