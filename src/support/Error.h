//===- support/Error.h - Fatal error and unreachable helpers ---*- C++ -*-===//
//
// Part of the FlexVec reproduction. Follows the LLVM error-handling model:
// programmatic errors abort at the point of failure with a diagnostic.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_ERROR_H
#define FLEXVEC_SUPPORT_ERROR_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace flexvec {

/// Reports an unrecoverable internal error and aborts.
///
/// Use for invariant violations that must be diagnosed even in release
/// builds (the moral equivalent of llvm::report_fatal_error).
[[noreturn]] inline void fatalError(const std::string &Msg) {
  std::fprintf(stderr, "flexvec fatal error: %s\n", Msg.c_str());
  std::abort();
}

/// Marks a point in the code that must be unreachable if program invariants
/// hold (the moral equivalent of llvm_unreachable).
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "flexvec unreachable executed: %s\n", Msg);
  std::abort();
}

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_ERROR_H
