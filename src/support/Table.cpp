//===- support/Table.cpp --------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace flexvec;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

void TextTable::addSeparator() { Rows.emplace_back(); }

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < Header.size(); ++I) {
      const std::string &Cell = I < Row.size() ? Row[I] : std::string();
      Line += "  ";
      Line += Cell;
      Line.append(Widths[I] - Cell.size(), ' ');
    }
    // Trim trailing spaces.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;

  std::string Out = renderRow(Header);
  Out.append(TotalWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    Out += renderRow(Row);
  }
  return Out;
}

void TextTable::print(std::FILE *Out) const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), Out);
}

std::string TextTable::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string TextTable::fmtInt(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  std::string Digits = Buf;
  bool Negative = !Digits.empty() && Digits[0] == '-';
  std::string Body = Negative ? Digits.substr(1) : Digits;
  std::string Result;
  int Count = 0;
  for (auto It = Body.rbegin(); It != Body.rend(); ++It) {
    if (Count && Count % 3 == 0)
      Result += ',';
    Result += *It;
    ++Count;
  }
  std::reverse(Result.begin(), Result.end());
  return Negative ? "-" + Result : Result;
}

std::string TextTable::fmtPercent(double Fraction, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Fraction * 100.0);
  return Buf;
}
