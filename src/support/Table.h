//===- support/Table.h - Aligned text table printing -----------*- C++ -*-===//
//
// The benchmark harnesses print the paper's tables and figures as aligned
// text tables; this is the shared formatter.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SUPPORT_TABLE_H
#define FLEXVEC_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace flexvec {

/// A simple column-aligned text table.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one row; the row is padded or truncated to the header width.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table with per-column alignment.
  std::string render() const;

  /// Renders the table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  /// Formats a double with \p Precision fractional digits.
  static std::string fmt(double Value, int Precision = 2);

  /// Formats an integer with thousands separators ("12,345").
  static std::string fmtInt(long long Value);

  /// Formats a ratio as a percentage string ("9.3%").
  static std::string fmtPercent(double Fraction, int Precision = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows; // empty row == separator
};

} // namespace flexvec

#endif // FLEXVEC_SUPPORT_TABLE_H
