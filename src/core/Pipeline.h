//===- core/Pipeline.h - The FlexVec compilation pipeline -------*- C++ -*-===//
//
// Public entry point: takes a loop in the high-level IR and produces every
// program variant the evaluation compares — scalar baseline, traditional
// vectorization (when legal), the PACT'13-style speculative baseline (when
// applicable), FlexVec partial vector code, and the RTM variant.
//
// The implementation lives in src/driver (the named pass pipeline and the
// Algorithm-1 lowering skeleton); this header is the stable core-layer
// alias so existing call sites keep compiling unchanged.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CORE_PIPELINE_H
#define FLEXVEC_CORE_PIPELINE_H

#include "driver/CompilerDriver.h"

namespace flexvec {
namespace core {

/// Everything the pipeline produces for one loop (see
/// driver::CompileResult, which adds the structured remark stream).
using PipelineResult = driver::CompileResult;

/// Runs the full pass pipeline over \p F.
inline PipelineResult compileLoop(const ir::LoopFunction &F,
                                  unsigned RtmTile = codegen::DefaultRtmTile) {
  return driver::compileLoop(F, RtmTile);
}

} // namespace core
} // namespace flexvec

#endif // FLEXVEC_CORE_PIPELINE_H
