//===- core/Pipeline.h - The FlexVec compilation pipeline -------*- C++ -*-===//
//
// Public entry point: takes a loop in the high-level IR and produces every
// program variant the evaluation compares — scalar baseline, traditional
// vectorization (when legal), the PACT'13-style speculative baseline (when
// applicable), FlexVec partial vector code, and the RTM variant.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CORE_PIPELINE_H
#define FLEXVEC_CORE_PIPELINE_H

#include "analysis/CostModel.h"
#include "analysis/Patterns.h"
#include "codegen/Generators.h"
#include "codegen/Peephole.h"

#include <optional>
#include <string>
#include <vector>

namespace flexvec {
namespace core {

/// Everything the pipeline produces for one loop.
struct PipelineResult {
  analysis::VectorizationPlan Plan;
  analysis::LoopShape Shape;
  codegen::CompiledLoop Scalar;
  std::optional<codegen::CompiledLoop> Traditional;
  std::optional<codegen::CompiledLoop> Speculative;
  std::optional<codegen::CompiledLoop> FlexVec;
  std::optional<codegen::CompiledLoop> Rtm;
  /// FlexVec program after the downstream peephole passes (Section 3.7's
  /// "down-stream passes of the compiler"); kept separate so the ablation
  /// benchmark can compare.
  std::optional<codegen::CompiledLoop> FlexVecOpt;
  codegen::PeepholeStats OptStats;
  std::string PdgDump;
  /// Structured diagnostics from generators that declined the loop
  /// (recoverable conditions that previously aborted the process).
  std::vector<std::string> Diagnostics;

  /// The program the baseline (ICC/AVX-512 -fast) would execute: the
  /// traditional vector code when legal, otherwise scalar.
  const codegen::CompiledLoop &baseline() const {
    return Traditional ? *Traditional : Scalar;
  }

  /// The best FlexVec program (first-faulting variant).
  const codegen::CompiledLoop &flexvec() const {
    return FlexVec ? *FlexVec : baseline();
  }
};

/// Runs analysis and all code generators over \p F.
PipelineResult compileLoop(const ir::LoopFunction &F,
                           unsigned RtmTile = codegen::DefaultRtmTile);

} // namespace core
} // namespace flexvec

#endif // FLEXVEC_CORE_PIPELINE_H
