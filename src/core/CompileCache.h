//===- core/CompileCache.h - Compiled-loop content cache --------*- C++ -*-===//
//
// Caches compileLoop() results keyed by a content hash of the IR loop and
// the pipeline configuration (RTM tile size + a pipeline version stamp),
// so repeated sweeps and multi-trip runs skip recompilation. The key
// deliberately ignores the loop's *name*: the 18 Table 2 workloads are
// instantiated from five templates, and two benchmarks whose loops differ
// only by name share one compilation.
//
// Thread-safe: concurrent getOrCompile calls for the same key block on a
// shared future while the first caller compiles, so each key is compiled
// exactly once. That makes the hit/miss counters deterministic functions
// of the request multiset, independent of the worker count — which the
// determinism tests rely on when they compare BENCH JSON payloads across
// --jobs values.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CORE_COMPILECACHE_H
#define FLEXVEC_CORE_COMPILECACHE_H

#include "core/Pipeline.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>

namespace flexvec {
namespace core {

class CompileCache {
public:
  /// Content hash of (loop structure, RtmTile, vector width, predication
  /// mode, pipeline version). Stable across platforms and runs; ignores
  /// the loop name. Width and predication participate so compilations for
  /// different VLs never alias.
  static uint64_t keyFor(const ir::LoopFunction &F, unsigned RtmTile,
                         isa::VectorConfig Vec = isa::defaultVectorConfig(),
                         bool Predicated = false);

  /// Returns the cached pipeline result for \p F, compiling it on the
  /// first request. \p WasHit (optional) reports whether this call was
  /// served from cache (a call that waits on an in-flight compile counts
  /// as a hit).
  std::shared_ptr<const PipelineResult>
  getOrCompile(const ir::LoopFunction &F,
               unsigned RtmTile = codegen::DefaultRtmTile,
               bool *WasHit = nullptr,
               isa::VectorConfig Vec = isa::defaultVectorConfig(),
               bool Predicated = false);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  /// Hits that found the compile still in flight and blocked on the shared
  /// future. Schedule-dependent (more workers → more overlap), so the
  /// bench reports it as a non-deterministic run metric only.
  uint64_t waits() const { return Waits.load(std::memory_order_relaxed); }
  size_t size() const;

  /// Drops every cached program (counters are kept).
  void clear();

private:
  using Entry = std::shared_future<std::shared_ptr<const PipelineResult>>;

  mutable std::mutex Mu;
  std::map<uint64_t, Entry> Map;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Waits{0};
};

} // namespace core
} // namespace flexvec

#endif // FLEXVEC_CORE_COMPILECACHE_H
