//===- core/Evaluator.h - Correctness and performance evaluation -*- C++ -*-===//
//
// Runs compiled programs on the functional emulator against cloned memory
// images, cross-checks them against the IR reference interpreter, and (via
// a caller-provided trace sink) feeds the timing model. Also implements
// the paper's coverage scaling: hot-region speedups are scaled down by the
// region's contribution to total program execution (Section 5).
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CORE_EVALUATOR_H
#define FLEXVEC_CORE_EVALUATOR_H

#include "codegen/Compiled.h"
#include "driver/AdaptiveStrategy.h"
#include "emu/Machine.h"
#include "ir/Interp.h"

#include <string>
#include <vector>

namespace flexvec {
namespace core {

/// Result of one program (or reference) execution.
struct RunOutcome {
  bool Ok = false; ///< Ran to completion (Halt / interpreter return).
  emu::ExecResult Exec;           ///< Machine runs only.
  rtm::TxStats Tx;                ///< Transaction-unit stats (machine runs).
  mem::MemoryStats Mem;           ///< Image TLB/COW stats (machine runs).
  uint64_t MemFingerprint = 0;    ///< Final memory image digest.
  std::vector<int64_t> LiveOuts;  ///< Raw live-out scalar values, in
                                  ///< scalar-parameter order.
  uint64_t LiveOutHash = 0; ///< Folded live-outs across multi-invocations.
  /// flexvec-adaptive runs only (HasDispatch): the dispatch-cell counters
  /// read back after the final invocation.
  driver::DispatchCounts Dispatch;
  bool HasDispatch = false;
  std::string Error;
};

/// Maps the adaptive dispatch-cell page on \p M when \p CL is a
/// flexvec-adaptive program (no-op otherwise). Must run before the first
/// invocation; the cell starts zeroed (promoted state).
void setUpDispatchCell(const codegen::CompiledLoop &CL, mem::Memory &M);

/// Reads the dispatch counters back into \p Out and unmaps the cell page
/// (so fingerprints stay comparable with the scalar reference). Returns
/// true when \p CL is flexvec-adaptive. Must run before fingerprint().
bool tearDownDispatchCell(const codegen::CompiledLoop &CL, mem::Memory &M,
                          driver::DispatchCounts &Out);

/// Runs \p CL on a clone of \p BaseImage with \p B's inputs. \p Sink
/// optionally receives the dynamic instruction trace.
RunOutcome runProgram(const codegen::CompiledLoop &CL,
                      const mem::Memory &BaseImage, const ir::Bindings &B,
                      emu::TraceSink *Sink = nullptr,
                      uint64_t MaxInstructions = 1ULL << 32);

/// Runs the IR reference interpreter on a clone of \p BaseImage.
RunOutcome runReference(const ir::LoopFunction &F,
                        const mem::Memory &BaseImage, const ir::Bindings &B);

/// Runs \p CL once per element of \p Invocations against one persistent
/// memory clone (mutations carry across invocations, like repeated calls
/// into a hot loop). LiveOutHash folds every invocation's live-outs.
RunOutcome runProgramMulti(const ir::LoopFunction &F,
                           const codegen::CompiledLoop &CL,
                           const mem::Memory &BaseImage,
                           const std::vector<ir::Bindings> &Invocations,
                           emu::TraceSink *Sink = nullptr,
                           uint64_t MaxInstructionsPerRun = 1ULL << 32);

/// Reference-interpreter counterpart of runProgramMulti.
RunOutcome runReferenceMulti(const ir::LoopFunction &F,
                             const mem::Memory &BaseImage,
                             const std::vector<ir::Bindings> &Invocations);

/// True when two outcomes agree on memory and live-outs.
bool outcomesMatch(const ir::LoopFunction &F, const RunOutcome &A,
                   const RunOutcome &B);

/// Amdahl scaling used in Section 5: overall = 1 / (1 - c + c / s).
double coverageScaledSpeedup(double HotSpeedup, double Coverage);

} // namespace core
} // namespace flexvec

#endif // FLEXVEC_CORE_EVALUATOR_H
