//===- core/ParallelEvaluator.h - Parallel evaluation engine ----*- C++ -*-===//
//
// The parallel evaluation engine behind `flexvec-bench` and the --jobs
// flags: fans a workload x 6-variant matrix (for the paper evaluation,
// the 18 Table 2 workloads) out over a deterministic thread pool as
// independent (compile -> emulate -> simulate) jobs, with a
// content-addressed compiled-loop cache so the six variant cells of one
// workload — and repeated sweeps — compile once.
//
// Determinism contract: every aggregated number (cycles, speedups,
// geomeans, cache hit/miss counts) is a pure function of (workloads, seed,
// trips); the worker count only changes wall-clock time. Per-cell inputs
// come from PRNG streams seeded by (base seed, workload name), reductions
// run over the result vector in matrix order after the fan-in, and the
// cache compiles each key exactly once. ParallelEvaluatorTest compares
// --jobs=1 against --jobs=8 byte-for-byte on the rendered JSON.
//
// The engine lives below the workload library, so it takes loops through
// the SweepWorkload view; workloads/Figure8.h adapts the 18 Table 2
// benchmarks onto it.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CORE_PARALLELEVALUATOR_H
#define FLEXVEC_CORE_PARALLELEVALUATOR_H

#include "core/CompileCache.h"
#include "ir/Interp.h"
#include "memory/Memory.h"
#include "obs/Metrics.h"
#include "sim/Sampled.h"
#include "support/Json.h"
#include "support/Random.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace flexvec {
namespace core {

/// The six code variants of the evaluation matrix, in column order.
enum class VariantId : uint8_t {
  Scalar = 0,
  Traditional,
  Speculative,
  FlexVec,
  Rtm,
  Adaptive,
};
inline constexpr unsigned NumVariants = 6;

const char *variantName(VariantId V);

/// The variant's program within \p PR, or nullptr if the generator
/// declined the loop.
const codegen::CompiledLoop *selectVariant(const PipelineResult &PR,
                                           VariantId V);

/// A memory image plus the bindings of every hot-loop invocation.
struct WorkloadInstance {
  mem::Memory Image;
  std::vector<ir::Bindings> Invocations;
};

/// One row of the evaluation matrix, as the engine sees it. \p F must
/// outlive the sweep; \p Gen must be safe to call concurrently (it only
/// reads its captures and draws from the Rng it is handed).
struct SweepWorkload {
  std::string Name;
  std::string Group; ///< "SPEC", "APPS", or an imported kernel family.
  double Coverage = 0;
  double PaperSpeedup = 0;
  const ir::LoopFunction *F = nullptr;
  std::function<WorkloadInstance(Rng &)> Gen;
};

/// Timing-model fidelity for the sweep. Full plays every retired
/// instruction through the OOO model; Sampled simulates deterministic
/// seed-chosen windows and extrapolates (sim::SampledCore), trading a
/// documented error bound for throughput. Full mode's JSON payload is
/// byte-identical to the pre-sampling baseline.
enum class SimMode : uint8_t { Full, Sampled };

struct SweepOptions {
  unsigned Jobs = 1;  ///< Worker threads (0 = one per hardware thread).
  uint64_t Seed = 1;  ///< Base seed for the per-workload input streams.
  double Scale = 1.0; ///< Recorded in the result (workload sizing).
  unsigned Trips = 1; ///< Whole-matrix repetitions (cache reuse check).
  unsigned RtmTile = codegen::DefaultRtmTile;
  /// Vector width every cell is compiled and run at. Defaults to the
  /// session configuration (FLEXVEC_VL in bits, else the 512-bit
  /// baseline).
  isa::VectorConfig Vec = isa::defaultVectorConfig();
  /// SVE-style predicated loop control for every compiled variant.
  bool Predicated = false;
  SimMode Sim = SimMode::Full;  ///< Timing-model fidelity.
  sim::SampleConfig Sample;     ///< Regimen when Sim == Sampled.
  /// Chaos mode: when non-zero, every cell runs under a seeded RTM
  /// conflict-abort storm (probability 0.5, derived per workload from this
  /// seed) through the fault harness. Timing-model cycles are not
  /// collected in this mode; correctness still compares against the
  /// reference interpreter. 0 = off (the normal sweep).
  uint64_t FaultSeed = 0;
};

/// Wall-clock stage breakdown of one cell, in milliseconds. Excluded from
/// the deterministic JSON payload.
struct StageTimes {
  double CompileMs = 0;  ///< Cache lookup + compile on miss.
  double InputsMs = 0;   ///< Memory image / invocation generation.
  double EmulateMs = 0;  ///< Reference-interpreter run.
  double SimulateMs = 0; ///< Emulator + OOO timing model run.
};

/// One (workload, variant) cell of the matrix.
struct CellResult {
  std::string Benchmark;
  std::string Group;   ///< "SPEC" or "APPS".
  std::string Variant; ///< variantName of the column.
  bool Generated = false; ///< Variant produced by the pipeline.
  bool Correct = false;   ///< Matched the reference interpreter.
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Uops = 0;
  /// Instructions retired by the functional emulator for the variant run
  /// (deterministic; feeds the schedule-dependent throughput gauges).
  uint64_t EmuInstructions = 0;
  double HotSpeedup = 0;  ///< Scalar cycles / this variant's cycles.
  double Overall = 0;     ///< Coverage-scaled (Section 5) speedup.
  double Coverage = 0;
  double PaperSpeedup = 0; ///< Paper's Figure 8 number, for reference.
  StageTimes Times;
  /// Per-cell structured metrics harvested from the variant's simulated
  /// run (emu.*, rtm.*, sim.* — see docs/OBSERVABILITY.md). Pure event
  /// counts and ratios of them: byte-stable across worker counts.
  obs::Registry Metrics;
  /// The compiler's remark stream filtered to this cell's variant (see
  /// docs/COMPILER.md). Declined cells carry the missed-remark explaining
  /// why. Remarks never mention the loop name, so the payload is
  /// byte-stable under compiled-loop cache sharing.
  Json Remarks;
};

/// The full sweep, cells in matrix order (workload-major, variant-minor).
struct SweepResult {
  std::vector<CellResult> Cells;
  double SpecGeomean = 0; ///< Over FlexVec overall speedups, SPEC group.
  double AppsGeomean = 0; ///< Over FlexVec overall speedups, apps group.
  /// Geomean of FlexVec overall speedups per group, every group, in
  /// first-seen matrix order. SPEC and APPS appear here too (identical to
  /// the mirrors above); imported kernel families add their own entries.
  std::vector<std::pair<std::string, double>> GroupGeomeans;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Schedule-dependent pipeline observability (excluded from the
  /// deterministic JSON payload): cache hits that blocked on an in-flight
  /// compile, and the peak number of concurrently evaluating cells.
  uint64_t SingleFlightWaits = 0;
  unsigned PeakInFlight = 0;
  unsigned Jobs = 0;    ///< Requested worker count.
  unsigned Workers = 0; ///< Actual worker count used.
  uint64_t Seed = 0;
  double Scale = 1.0;
  unsigned Trips = 1;
  double WallSeconds = 0;
  /// Width the cells compiled and ran at.
  isa::VectorConfig Vec;
  SimMode Sim = SimMode::Full;  ///< Fidelity the cells ran under.
  sim::SampleConfig Sample;     ///< Regimen (meaningful when Sampled).

  double cacheHitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total ? static_cast<double>(CacheHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Runs the workloads x variants matrix. \p Cache (optional) persists
/// compiled loops across calls; when null an internal cache scoped to this
/// sweep is used.
SweepResult runSweep(const std::vector<SweepWorkload> &Workloads,
                     const SweepOptions &Opts, CompileCache *Cache = nullptr);

/// Renders \p R as the BENCH_figure8.json document. With \p Deterministic
/// set, wall-time fields and the run-environment section (jobs, workers,
/// wall_seconds, per-stage timings) are omitted so payloads from runs with
/// different worker counts compare byte-identical.
Json benchJson(const SweepResult &R, bool Deterministic = false);

} // namespace core
} // namespace flexvec

#endif // FLEXVEC_CORE_PARALLELEVALUATOR_H
