//===- core/CompileCache.cpp ----------------------------------------------===//

#include "core/CompileCache.h"

#include "support/Hash.h"

#include <chrono>

using namespace flexvec;
using namespace flexvec::core;

/// Bump when a pipeline change should invalidate previously hashed keys
/// (persisted keys may outlive one process in the future).
static constexpr uint64_t PipelineVersion =
    5; // width-generic pipeline: VL + predication join the key

uint64_t CompileCache::keyFor(const ir::LoopFunction &F, unsigned RtmTile,
                              isa::VectorConfig Vec, bool Predicated) {
  // F.print() renders the full structure — parameters with types and
  // attributes, statements in lexical order — prefixed by the loop name on
  // its first line. Strip the name so structurally identical loops share a
  // key: the name occurs exactly once, between "loop " and " (".
  std::string Text = F.print();
  size_t Open = Text.find(" (");
  if (Text.rfind("loop ", 0) == 0 && Open != std::string::npos)
    Text.erase(5, Open - 5);
  uint64_t H = fnv1a64(Text);
  H = hashCombine(H, RtmTile);
  H = hashCombine(H, Vec.Bytes);
  H = hashCombine(H, Predicated ? 1u : 0u);
  H = hashCombine(H, PipelineVersion);
  return H;
}

std::shared_ptr<const PipelineResult>
CompileCache::getOrCompile(const ir::LoopFunction &F, unsigned RtmTile,
                           bool *WasHit, isa::VectorConfig Vec,
                           bool Predicated) {
  uint64_t Key = keyFor(F, RtmTile, Vec, Predicated);

  std::promise<std::shared_ptr<const PipelineResult>> Promise;
  Entry Fut;
  bool Compile = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      Fut = It->second;
    } else {
      Fut = Promise.get_future().share();
      Map.emplace(Key, Fut);
      Compile = true;
    }
  }

  if (Compile) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    if (WasHit)
      *WasHit = false;
    try {
      driver::DriverOptions Opts;
      Opts.RtmTile = RtmTile;
      Opts.Vec = Vec;
      Opts.Predicated = Predicated;
      auto R = std::make_shared<const PipelineResult>(
          driver::compileLoop(F, Opts));
      Promise.set_value(R);
      return R;
    } catch (...) {
      // Unblock any waiters, drop the poisoned entry, and rethrow.
      Promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> Lock(Mu);
      Map.erase(Key);
      throw;
    }
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  if (WasHit)
    *WasHit = true;
  if (Fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
    Waits.fetch_add(1, std::memory_order_relaxed);
  return Fut.get();
}

size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
}
