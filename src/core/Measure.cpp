//===- core/Measure.cpp ---------------------------------------------------===//

#include "core/Measure.h"

using namespace flexvec;
using namespace flexvec::core;

Measurement core::measureProgram(const codegen::CompiledLoop &CL,
                                 const mem::Memory &BaseImage,
                                 const ir::Bindings &B,
                                 const sim::CoreConfig &Cfg,
                                 uint64_t MaxInstructions) {
  Measurement M;
  sim::OooCore Core(Cfg);
  M.Outcome = runProgram(CL, BaseImage, B, &Core, MaxInstructions);
  M.Timing = Core.stats();
  return M;
}
