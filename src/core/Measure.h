//===- core/Measure.h - Functional + timing measurement ---------*- C++ -*-===//
//
// Couples the functional emulator to the OOO timing model: one call runs a
// compiled loop to completion while the cycle model consumes its dynamic
// instruction stream — the repository's equivalent of replaying a LIT
// checkpoint through the paper's cycle-accurate simulator.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CORE_MEASURE_H
#define FLEXVEC_CORE_MEASURE_H

#include "core/Evaluator.h"
#include "sim/OooCore.h"

namespace flexvec {
namespace core {

struct Measurement {
  RunOutcome Outcome;
  sim::SimStats Timing;
};

/// Runs \p CL on a clone of \p BaseImage and measures it on \p Cfg.
Measurement measureProgram(const codegen::CompiledLoop &CL,
                           const mem::Memory &BaseImage,
                           const ir::Bindings &B,
                           const sim::CoreConfig &Cfg = sim::CoreConfig(),
                           uint64_t MaxInstructions = 1ULL << 32);

/// Cycles(A) / Cycles(B): how much faster B is than A.
inline double speedup(const Measurement &BaselineM, const Measurement &NewM) {
  return static_cast<double>(BaselineM.Timing.Cycles) /
         static_cast<double>(NewM.Timing.Cycles);
}

} // namespace core
} // namespace flexvec

#endif // FLEXVEC_CORE_MEASURE_H
