//===- core/ParallelEvaluator.cpp -----------------------------------------===//

#include "core/ParallelEvaluator.h"

#include "core/Evaluator.h"
#include "core/FaultHarness.h"
#include "driver/Remarks.h"
#include "sim/OooCore.h"
#include "support/Hash.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <mutex>

using namespace flexvec;
using namespace flexvec::core;

const char *core::variantName(VariantId V) {
  switch (V) {
  case VariantId::Scalar:
    return "scalar";
  case VariantId::Traditional:
    return "traditional";
  case VariantId::Speculative:
    return "speculative";
  case VariantId::FlexVec:
    return "flexvec";
  case VariantId::Rtm:
    return "flexvec-rtm";
  case VariantId::Adaptive:
    return "flexvec-adaptive";
  }
  return "?";
}

const codegen::CompiledLoop *core::selectVariant(const PipelineResult &PR,
                                                 VariantId V) {
  switch (V) {
  case VariantId::Scalar:
    return &PR.Scalar;
  case VariantId::Traditional:
    return PR.Traditional ? &*PR.Traditional : nullptr;
  case VariantId::Speculative:
    return PR.Speculative ? &*PR.Speculative : nullptr;
  case VariantId::FlexVec:
    return PR.FlexVec ? &*PR.FlexVec : nullptr;
  case VariantId::Rtm:
    return PR.Rtm ? &*PR.Rtm : nullptr;
  case VariantId::Adaptive:
    return PR.Adaptive ? &*PR.Adaptive : nullptr;
  }
  return nullptr;
}

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Per-workload state shared by the five variant cells of one row: the
/// generated inputs and the reference-interpreter outcome are pure
/// functions of (workload, seed), so the first cell to need them computes
/// them once and the others reuse the result. After publication the image
/// is only ever clone()d — concurrent COW clones are safe because the
/// shared base holds a reference to every page, so no clone can ever write
/// shared bytes in place.
struct SharedInputs {
  std::once_flag Once;
  WorkloadInstance In;
  RunOutcome Ref;
};

/// One fan-out job: compile (through the cache), fetch this workload's
/// inputs and reference-interpreter outcome (computed once per row, see
/// SharedInputs), then run the variant through the emulator with the
/// Table 1 timing model attached. Speedups are filled in after the
/// fan-in, when the scalar column is available.
CellResult evalCell(const SweepWorkload &W, VariantId V,
                    const SweepOptions &Opts, CompileCache &Cache,
                    SharedInputs &SI) {
  CellResult Cell;
  Cell.Benchmark = W.Name;
  Cell.Group = W.Group;
  Cell.Variant = variantName(V);
  Cell.Coverage = W.Coverage;
  Cell.PaperSpeedup = W.PaperSpeedup;

  std::shared_ptr<const PipelineResult> PR;
  {
    obs::ScopedTimer T(Cell.Times.CompileMs);
    PR = Cache.getOrCompile(*W.F, Opts.RtmTile, nullptr, Opts.Vec,
                            Opts.Predicated);
  }

  // Every cell carries the remark stream filtered to its variant —
  // including declined cells, where the missed-remark is the machine-
  // readable "why not". Remarks are a pure function of the loop structure
  // (no names), so this stays byte-stable under cache sharing. The
  // counters register first so the cell registry renders in a fixed order.
  Cell.Remarks = PR->Remarks.toJsonFor(Cell.Variant);
  obs::Counter &Applied = Cell.Metrics.counter("driver.remarks.applied");
  obs::Counter &Missed = Cell.Metrics.counter("driver.remarks.missed");
  for (const driver::Remark &Rk : PR->Remarks.remarks()) {
    if (Rk.Variant != Cell.Variant)
      continue;
    if (Rk.Kind == driver::RemarkKind::Applied)
      Applied.inc();
    else if (Rk.Kind == driver::RemarkKind::Missed)
      Missed.inc();
  }

  const codegen::CompiledLoop *CL = selectVariant(*PR, V);
  if (!CL)
    return Cell; // Strategy declined the loop: empty cell (see Remarks).
  Cell.Generated = true;

  // First cell of this row to arrive pays for input generation and the
  // reference run and charges them to its stage clock; the other four see
  // zero here. Cells that block on an in-flight init (jobs > 1) simply
  // wait inside call_once — stage_ms is observational either way.
  std::call_once(SI.Once, [&] {
    {
      obs::ScopedTimer T(Cell.Times.InputsMs);
      Rng R(deriveStreamSeed(Opts.Seed, fnv1a64(W.Name)));
      SI.In = W.Gen(R);
    }
    obs::ScopedTimer T(Cell.Times.EmulateMs);
    SI.Ref = runReferenceMulti(*W.F, SI.In.Image, SI.In.Invocations);
  });
  const WorkloadInstance &In = SI.In;
  const RunOutcome &Ref = SI.Ref;

  sim::OooCore Core;
  // In sampled mode the emulator's trace feeds the sampler, which routes
  // seed-chosen windows into the core and extrapolates; in full mode the
  // core drinks the whole stream directly (the sampler sits unused).
  sim::SampledCore Sampler(Core, Opts.Sample);
  emu::TraceSink *Sink =
      Opts.Sim == SimMode::Sampled ? static_cast<emu::TraceSink *>(&Sampler)
                                   : &Core;
  RunOutcome Out;
  {
    obs::ScopedTimer T(Cell.Times.SimulateMs);
    if (Opts.FaultSeed) {
      // Chaos mode: a seeded RTM conflict storm rides through the fault
      // harness (no trace sink — the timing model stays cold; the cell
      // carries correctness and emu/rtm/dispatch counters only).
      FaultPlan Plan;
      Plan.Tx.Seed = deriveStreamSeed(Opts.FaultSeed, fnv1a64(W.Name));
      Plan.Tx.AbortProb = 0.5;
      Plan.Tx.Reason = rtm::AbortReason::Conflict;
      Out = runProgramMultiWithFaults(*W.F, *CL, In.Image, In.Invocations,
                                      Plan)
                .Outcome;
    } else {
      Out = runProgramMulti(*W.F, *CL, In.Image, In.Invocations, Sink);
    }
  }

  Cell.Correct = outcomesMatch(*W.F, Ref, Out);
  sim::SimStats Stats = Core.stats();
  if (Opts.Sim == SimMode::Sampled && !Opts.FaultSeed) {
    // Extrapolated cycle count over the full stream; instruction count is
    // the full stream too (the emulator always retires everything). Uops
    // stay a detailed-subset counter — documented in the v2-sampled
    // schema notes (docs/EVALUATION.md).
    sim::SampledStats SS = Sampler.stats();
    Cell.Cycles = SS.EstimatedCycles;
    Cell.Instructions = SS.Instructions;
    Cell.Uops = Stats.Uops;
  } else {
    Cell.Cycles = Stats.Cycles;
    Cell.Instructions = Stats.Instructions;
    Cell.Uops = Stats.Uops;
  }
  Cell.EmuInstructions = Out.Exec.Stats.Instructions;

  // Harvest the per-layer stats into this cell's registry. Registration
  // order is fixed (emu, rtm, sim, mem, dispatch) so two registries for
  // the same cell render byte-identically regardless of the worker
  // schedule.
  emu::recordMetrics(Out.Exec.Stats, Cell.Metrics);
  rtm::recordMetrics(Out.Tx, Cell.Metrics);
  if (Out.Tx.Begins)
    Cell.Metrics.gauge("rtm.fallback_rate")
        .set(static_cast<double>(Out.Exec.Stats.RtmFallbacks) /
             static_cast<double>(Out.Tx.Begins));
  sim::recordMetrics(Stats, Cell.Metrics);
  if (Opts.Sim == SimMode::Sampled && !Opts.FaultSeed) {
    // Sampling observability (only in the v2-sampled payload): how much
    // of the stream the detailed model actually saw. The sim.* counters
    // above cover the detailed subset only.
    sim::SampledStats SS = Sampler.stats();
    Cell.Metrics.counter("sim.sample.windows").inc(SS.Windows);
    Cell.Metrics.counter("sim.sample.measured_instructions")
        .inc(SS.MeasuredInstructions);
    Cell.Metrics.counter("sim.sample.detailed_instructions")
        .inc(SS.DetailedInstructions);
    Cell.Metrics.counter("sim.sample.estimated_cycles")
        .inc(SS.EstimatedCycles);
  }
  mem::recordMetrics(Out.Mem, Cell.Metrics);
  if (Out.HasDispatch) {
    const driver::DispatchCounts &D = Out.Dispatch;
    Cell.Metrics.counter("dispatch.guard.pass").inc(D.GuardPass);
    Cell.Metrics.counter("dispatch.guard.fail").inc(D.GuardFail);
    Cell.Metrics.counter("dispatch.demotions").inc(D.Demotions);
    Cell.Metrics.counter("dispatch.speculative_invocations")
        .inc(D.Invocations);
    // The runtime dispatch story joins the compiler remarks in this
    // cell's stream: guard outcomes plus the demoted/promoted verdict.
    for (const driver::Remark &Rk : driver::dispatchRemarks(D))
      Cell.Remarks.push(Rk.toJson());
  }
  return Cell;
}

} // namespace

SweepResult core::runSweep(const std::vector<SweepWorkload> &Workloads,
                           const SweepOptions &Opts, CompileCache *Cache) {
  Clock::time_point Start = Clock::now();
  CompileCache Local;
  CompileCache &C = Cache ? *Cache : Local;
  uint64_t Hits0 = C.hits(), Misses0 = C.misses(), Waits0 = C.waits();

  size_t NumCells = Workloads.size() * NumVariants;
  // Row-shared inputs/reference outcomes (never resized: SharedInputs
  // holds a once_flag and must not move).
  std::vector<SharedInputs> Shared(Workloads.size());

  ThreadPool Pool(Opts.Jobs);
  SweepResult R;
  R.Jobs = Opts.Jobs;
  R.Workers = Pool.workerCount();
  R.Seed = Opts.Seed;
  R.Scale = Opts.Scale;
  R.Trips = std::max(1u, Opts.Trips);
  R.Vec = Opts.Vec;
  R.Sim = Opts.Sim;
  R.Sample = Opts.Sample;

  // Pool-occupancy probe: cells in flight right now, and the high-water
  // mark. Observability only — the values are schedule-dependent and are
  // excluded from the deterministic JSON payload.
  std::atomic<unsigned> InFlight{0}, PeakInFlight{0};

  for (unsigned Trip = 0; Trip < R.Trips; ++Trip) {
    R.Cells = Pool.map<CellResult>(NumCells, [&](size_t I) {
      unsigned Now = InFlight.fetch_add(1, std::memory_order_relaxed) + 1;
      unsigned Peak = PeakInFlight.load(std::memory_order_relaxed);
      while (Now > Peak && !PeakInFlight.compare_exchange_weak(
                               Peak, Now, std::memory_order_relaxed))
        ;
      const SweepWorkload &W = Workloads[I / NumVariants];
      VariantId V = static_cast<VariantId>(I % NumVariants);
      CellResult Cell = evalCell(W, V, Opts, C, Shared[I / NumVariants]);
      InFlight.fetch_sub(1, std::memory_order_relaxed);
      return Cell;
    });
  }
  R.PeakInFlight = PeakInFlight.load(std::memory_order_relaxed);
  R.SingleFlightWaits = C.waits() - Waits0;

  // Ordered fan-in: speedups against the scalar column, then the group
  // geomeans over the FlexVec column — all reductions walk the cells in
  // matrix order so the aggregates are independent of worker scheduling.
  // Groups accumulate by name in first-seen order, so imported kernel
  // families fan into their own geomeans instead of polluting SPEC/APPS.
  std::vector<std::pair<std::string, std::vector<double>>> ByGroup;
  auto groupBucket = [&](const std::string &G) -> std::vector<double> & {
    for (auto &Entry : ByGroup)
      if (Entry.first == G)
        return Entry.second;
    ByGroup.emplace_back(G, std::vector<double>());
    return ByGroup.back().second;
  };
  for (size_t W = 0; W < Workloads.size(); ++W) {
    const CellResult &Scalar = R.Cells[W * NumVariants];
    for (unsigned V = 0; V < NumVariants; ++V) {
      CellResult &Cell = R.Cells[W * NumVariants + V];
      if (!Cell.Generated || !Cell.Cycles || !Scalar.Cycles)
        continue;
      Cell.HotSpeedup = static_cast<double>(Scalar.Cycles) /
                        static_cast<double>(Cell.Cycles);
      Cell.Overall = coverageScaledSpeedup(Cell.HotSpeedup, Cell.Coverage);
      if (V == static_cast<unsigned>(VariantId::FlexVec))
        groupBucket(Cell.Group).push_back(Cell.Overall);
    }
  }
  for (const auto &Entry : ByGroup) {
    double G = geomean(Entry.second);
    R.GroupGeomeans.emplace_back(Entry.first, G);
    if (Entry.first == "SPEC")
      R.SpecGeomean = G;
    else if (Entry.first == "APPS")
      R.AppsGeomean = G;
  }
  R.CacheHits = C.hits() - Hits0;
  R.CacheMisses = C.misses() - Misses0;
  R.WallSeconds = msSince(Start) / 1000.0;
  return R;
}

Json core::benchJson(const SweepResult &R, bool Deterministic) {
  Json Doc = Json::object();
  // Sampled runs carry their own schema tag and a sampling section; full
  // runs render exactly the v2 document — byte-identical to the
  // pre-sampling baseline, which is what the benchdiff gate compares.
  bool Sampled = R.Sim == SimMode::Sampled;
  Doc.set("schema", Sampled ? "flexvec-bench-figure8/v2-sampled"
                            : "flexvec-bench-figure8/v2");
  Doc.set("seed", R.Seed);
  Doc.set("scale", R.Scale);
  Doc.set("trips", R.Trips);
  // Sweep-config field: the vector width the cells ran at, in bits.
  // Emitted only at non-default widths so the VL=512 payload stays
  // byte-identical to the v2 baseline; absent means 512 (benchdiff
  // treats the two spellings as equal).
  if (R.Vec.Bytes != isa::VectorBytes)
    Doc.set("vl", R.Vec.bits());
  if (Sampled) {
    Json Samp = Json::object();
    Samp.set("interval_instrs", R.Sample.IntervalInstrs);
    Samp.set("detail_instrs", R.Sample.DetailInstrs);
    Samp.set("warmup_instrs", R.Sample.WarmupInstrs);
    Samp.set("seed", R.Sample.Seed);
    Doc.set("sampling", std::move(Samp));
  }

  if (!Deterministic) {
    Json Run = Json::object();
    Run.set("jobs", R.Jobs);
    Run.set("workers", R.Workers);
    // Host/environment-dependent, so run-section only: which lane-kernel
    // table the machines actually executed (FLEXVEC_SIMD + CPUID).
    Run.set("emu.simd.backend",
            emu::simdBackendName(emu::resolveSimdBackend(
                emu::SimdBackend::Auto)));
    Run.set("wall_seconds", R.WallSeconds);
    Run.set("single_flight_waits", R.SingleFlightWaits);
    Run.set("peak_in_flight", R.PeakInFlight);
    // Throughput gauges live only here, in the schedule-dependent run
    // section, so the deterministic payload stays byte-stable across
    // worker counts and machine speeds.
    if (R.WallSeconds > 0) {
      uint64_t EmuInstrs = 0;
      for (const CellResult &Cell : R.Cells)
        EmuInstrs += Cell.EmuInstructions;
      Run.set("cells_per_sec",
              static_cast<double>(R.Cells.size()) / R.WallSeconds);
      Run.set("emu_instrs_per_sec",
              static_cast<double>(EmuInstrs) / R.WallSeconds);
    }
    Doc.set("run", std::move(Run));
  }

  Json CacheJ = Json::object();
  CacheJ.set("hits", R.CacheHits);
  CacheJ.set("misses", R.CacheMisses);
  CacheJ.set("hit_rate", R.cacheHitRate());
  Doc.set("cache", std::move(CacheJ));

  Json Geo = Json::object();
  Geo.set("spec", R.SpecGeomean);
  Geo.set("apps", R.AppsGeomean);
  // Additional groups (imported kernel families) follow the two legacy
  // keys, lowercased, in first-seen matrix order. Additive vs the v2
  // baseline: benchdiff walks baseline keys only.
  for (const auto &Entry : R.GroupGeomeans) {
    if (Entry.first == "SPEC" || Entry.first == "APPS")
      continue;
    std::string Key = Entry.first;
    for (char &Ch : Key)
      Ch = static_cast<char>(std::tolower(static_cast<unsigned char>(Ch)));
    Geo.set(Key, Entry.second);
  }
  Doc.set("geomean_overall_speedup", std::move(Geo));

  // Sweep-level metric aggregate: per-cell registries merged in matrix
  // order (gauges are per-cell derived values and drop out of the merge),
  // so the aggregate is as deterministic as the cells themselves.
  obs::Registry Totals;
  for (const CellResult &Cell : R.Cells)
    Totals.merge(Cell.Metrics);
  Doc.set("metrics", Totals.toJson(/*IncludeTimers=*/!Deterministic));

  Json Cells = Json::array();
  for (const CellResult &Cell : R.Cells) {
    Json J = Json::object();
    J.set("benchmark", Cell.Benchmark);
    J.set("group", Cell.Group);
    J.set("variant", Cell.Variant);
    J.set("generated", Cell.Generated);
    // The variant-filtered remark stream rides along for every cell —
    // declined cells are exactly where the "why not" matters. New key,
    // additive vs the v2 baseline (benchdiff walks baseline keys only).
    J.set("remarks", Cell.Remarks);
    if (Cell.Generated) {
      J.set("correct", Cell.Correct);
      J.set("cycles", Cell.Cycles);
      J.set("instructions", Cell.Instructions);
      J.set("uops", Cell.Uops);
      J.set("hot_speedup", Cell.HotSpeedup);
      J.set("overall_speedup", Cell.Overall);
      J.set("coverage", Cell.Coverage);
      J.set("paper_speedup", Cell.PaperSpeedup);
      J.set("metrics",
            Cell.Metrics.toJson(/*IncludeTimers=*/!Deterministic));
      if (!Deterministic) {
        Json Stage = Json::object();
        Stage.set("compile_ms", Cell.Times.CompileMs);
        Stage.set("inputs_ms", Cell.Times.InputsMs);
        Stage.set("emulate_ms", Cell.Times.EmulateMs);
        Stage.set("simulate_ms", Cell.Times.SimulateMs);
        if (Cell.Times.SimulateMs > 0)
          Stage.set("emu_instrs_per_sec",
                    static_cast<double>(Cell.EmuInstructions) /
                        (Cell.Times.SimulateMs / 1000.0));
        J.set("stage_ms", std::move(Stage));
      }
    }
    Cells.push(std::move(J));
  }
  Doc.set("cells", std::move(Cells));
  return Doc;
}
