//===- core/FaultHarness.h - Differential fault-tolerance harness -*- C++ -*-===//
//
// Runs the scalar reference program and a FlexVec-vectorized program under
// the *same* seeded fault schedule and decides whether they reached
// equivalent architectural outcomes:
//
//  * both ran to completion with identical memory fingerprints and
//    live-out values (the injected faults were absorbed — clipped by
//    first-faulting loads, or retried/fallen-back around by the RTM
//    policy), or
//  * both stopped with the same well-formed fault report — same stop
//    reason and same faulting address. PCs and opcodes necessarily differ
//    between the two programs and are diagnostic context only.
//
// Address-deterministic range faults (see faults/FaultInjector.h) are what
// make the comparison meaningful: the same data addresses are poisoned no
// matter how the program orders or batches its accesses.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CORE_FAULTHARNESS_H
#define FLEXVEC_CORE_FAULTHARNESS_H

#include "core/Evaluator.h"
#include "faults/FaultInjector.h"

#include <string>

namespace flexvec {
namespace core {

/// Everything injected into one execution, plus the resilience policy.
struct FaultPlan {
  faults::MemFaultPlan Mem;
  faults::TxFaultPlan Tx;
  uint64_t MaxInstructions = 1ULL << 32;
  unsigned MaxRtmRetries = 4;
  /// Dispatch loop the machine runs under (JitEquivalenceTest pins both
  /// modes to prove fault delivery is dispatch-invariant).
  emu::DispatchMode Dispatch = emu::DispatchMode::Auto;
  /// SIMD lane-kernel backend (SimdEquivalenceTest pins each backend to
  /// prove fault storms are backend-invariant too).
  emu::SimdBackend Simd = emu::SimdBackend::Auto;
};

/// One execution under injection: the usual outcome plus what was
/// actually injected and how the transaction unit fared.
struct FaultedRun {
  RunOutcome Outcome;
  faults::InjectorStats Injection;
  rtm::TxStats Tx;

  /// Structured one-line fault report (stop reason, fault address, PC,
  /// opcode, abort history).
  std::string report() const;
};

/// Runs \p CL on a clone of \p BaseImage with a fresh FaultInjector armed
/// over the clone's memory and the machine's transaction unit.
FaultedRun runProgramWithFaults(const codegen::CompiledLoop &CL,
                                const mem::Memory &BaseImage,
                                const ir::Bindings &B, const FaultPlan &Plan);

/// Verdict of a scalar-vs-vectorized differential run.
struct DiffVerdict {
  bool Equivalent = false;
  std::string Detail; ///< Why (not) equivalent, human-readable.
  FaultedRun Scalar;
  FaultedRun Vector;

  std::string describe() const;
};

/// Runs \p ScalarCL and \p VectorCL under identical fault schedules
/// (separate injector instances, same plan and seeds) and compares the
/// architectural outcomes.
DiffVerdict runDifferential(const ir::LoopFunction &F,
                            const codegen::CompiledLoop &ScalarCL,
                            const codegen::CompiledLoop &VectorCL,
                            const mem::Memory &BaseImage,
                            const ir::Bindings &B, const FaultPlan &Plan);

/// Multi-invocation counterpart of runProgramWithFaults: one persistent
/// memory clone, one injector armed across every invocation (so a bounded
/// TxFaultPlan models a storm that eventually ends), per-invocation
/// register reset. This is what drives the adaptive dispatch cell through
/// its whole lifecycle — the cell is mapped before the first invocation
/// and read back/unmapped before the fingerprint.
FaultedRun runProgramMultiWithFaults(const ir::LoopFunction &F,
                                     const codegen::CompiledLoop &CL,
                                     const mem::Memory &BaseImage,
                                     const std::vector<ir::Bindings> &Invocations,
                                     const FaultPlan &Plan);

/// Multi-invocation differential: \p ScalarCL and \p VectorCL each run the
/// whole invocation sequence under identical fault schedules; outcomes
/// compare via outcomesMatch (folded live-outs + final fingerprint).
DiffVerdict runDifferentialMulti(const ir::LoopFunction &F,
                                 const codegen::CompiledLoop &ScalarCL,
                                 const codegen::CompiledLoop &VectorCL,
                                 const mem::Memory &BaseImage,
                                 const std::vector<ir::Bindings> &Invocations,
                                 const FaultPlan &Plan);

} // namespace core
} // namespace flexvec

#endif // FLEXVEC_CORE_FAULTHARNESS_H
