//===- core/FaultHarness.cpp ----------------------------------------------===//

#include "core/FaultHarness.h"

#include "codegen/Compiled.h"

using namespace flexvec;
using namespace flexvec::core;

namespace {

void bindMachine(emu::Machine &Machine, const ir::Bindings &B) {
  for (size_t S = 0; S < B.ScalarValues.size(); ++S)
    Machine.setScalar(codegen::scalarParamReg(static_cast<int>(S)).Index,
                      B.ScalarValues[S]);
  for (size_t A = 0; A < B.ArrayBases.size(); ++A)
    Machine.setScalar(codegen::arrayBaseReg(static_cast<int>(A)).Index,
                      static_cast<int64_t>(B.ArrayBases[A]));
}

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

/// Mirrors the fold in Evaluator.cpp so multi-invocation fault runs compare
/// against runReferenceMulti outcomes.
uint64_t foldLiveOuts(const ir::LoopFunction &F, uint64_t H,
                      const std::vector<int64_t> &LiveOuts) {
  for (size_t S = 0; S < F.scalars().size(); ++S)
    if (F.scalar(S).IsLiveOut)
      H = hashCombine(H, static_cast<uint64_t>(LiveOuts[S]));
  return H;
}

} // namespace

std::string FaultedRun::report() const {
  std::string S = Outcome.Exec.describe();
  S += "; injected mem=" + std::to_string(Injection.MemFaultsInjected) +
       " tx=" + std::to_string(Injection.TxAbortsInjected);
  return S;
}

FaultedRun core::runProgramWithFaults(const codegen::CompiledLoop &CL,
                                      const mem::Memory &BaseImage,
                                      const ir::Bindings &B,
                                      const FaultPlan &Plan) {
  FaultedRun Run;
  mem::Memory M = BaseImage.clone();
  setUpDispatchCell(CL, M);
  emu::Machine Machine(M);
  bindMachine(Machine, B);

  faults::FaultInjector Injector(Plan.Mem, Plan.Tx);
  Injector.arm(M, &Machine.tx());

  emu::RunLimits Limits;
  Limits.MaxInstructions = Plan.MaxInstructions;
  Limits.MaxRtmRetries = Plan.MaxRtmRetries;
  Limits.Dispatch = Plan.Dispatch;
  Limits.Simd = Plan.Simd;
  Run.Outcome.Exec = Machine.run(CL.Prog, Limits);
  Run.Outcome.Ok = Run.Outcome.Exec.Reason == emu::StopReason::Halted;
  if (!Run.Outcome.Ok)
    Run.Outcome.Error = Run.Outcome.Exec.describe();
  Injector.disarm();

  Run.Outcome.HasDispatch = tearDownDispatchCell(CL, M, Run.Outcome.Dispatch);
  Run.Outcome.MemFingerprint = M.fingerprint();
  for (size_t S = 0; S < B.ScalarValues.size(); ++S)
    Run.Outcome.LiveOuts.push_back(Machine.getScalar(
        codegen::scalarParamReg(static_cast<int>(S)).Index));
  Run.Injection = Injector.stats();
  Run.Tx = Machine.txStats();
  return Run;
}

FaultedRun core::runProgramMultiWithFaults(
    const ir::LoopFunction &F, const codegen::CompiledLoop &CL,
    const mem::Memory &BaseImage, const std::vector<ir::Bindings> &Invocations,
    const FaultPlan &Plan) {
  FaultedRun Run;
  RunOutcome &Out = Run.Outcome;
  Out.Ok = true;
  mem::Memory M = BaseImage.clone();
  setUpDispatchCell(CL, M);
  emu::Machine Machine(M);

  faults::FaultInjector Injector(Plan.Mem, Plan.Tx);
  Injector.arm(M, &Machine.tx());

  emu::RunLimits Limits;
  Limits.MaxInstructions = Plan.MaxInstructions;
  Limits.MaxRtmRetries = Plan.MaxRtmRetries;
  Limits.Dispatch = Plan.Dispatch;
  Limits.Simd = Plan.Simd;
  for (const ir::Bindings &B : Invocations) {
    Machine.resetRegisters();
    bindMachine(Machine, B);
    emu::ExecResult R = Machine.run(CL.Prog, Limits);
    Out.Exec.Stats.merge(R.Stats);
    if (R.Reason != emu::StopReason::Halted) {
      Out.Ok = false;
      Out.Exec.Reason = R.Reason;
      Out.Exec.FaultAddr = R.FaultAddr;
      Out.Exec.FaultPC = R.FaultPC;
      Out.Error = "invocation failed: " + R.describe();
      break;
    }
    Out.LiveOuts.clear();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Out.LiveOuts.push_back(Machine.getScalar(
          codegen::scalarParamReg(static_cast<int>(S)).Index));
    Out.LiveOutHash = foldLiveOuts(F, Out.LiveOutHash, Out.LiveOuts);
  }
  Injector.disarm();

  Out.HasDispatch = tearDownDispatchCell(CL, M, Out.Dispatch);
  Out.MemFingerprint = M.fingerprint();
  Run.Injection = Injector.stats();
  Run.Tx = Machine.txStats();
  Out.Tx = Run.Tx;
  Out.Mem = M.stats();
  return Run;
}

DiffVerdict core::runDifferentialMulti(
    const ir::LoopFunction &F, const codegen::CompiledLoop &ScalarCL,
    const codegen::CompiledLoop &VectorCL, const mem::Memory &BaseImage,
    const std::vector<ir::Bindings> &Invocations, const FaultPlan &Plan) {
  DiffVerdict V;
  V.Scalar = runProgramMultiWithFaults(F, ScalarCL, BaseImage, Invocations,
                                       Plan);
  V.Vector = runProgramMultiWithFaults(F, VectorCL, BaseImage, Invocations,
                                       Plan);

  const RunOutcome &A = V.Scalar.Outcome;
  const RunOutcome &C = V.Vector.Outcome;
  if (A.Ok && C.Ok) {
    if (outcomesMatch(F, A, C)) {
      V.Equivalent = true;
      V.Detail = "both completed every invocation; memory fingerprints and "
                 "folded live-outs match";
    } else {
      V.Detail = "both completed but diverged: scalar mem=" +
                 std::to_string(A.MemFingerprint) +
                 " vector mem=" + std::to_string(C.MemFingerprint);
    }
    return V;
  }
  if (!A.Ok && !C.Ok) {
    if (A.Exec.Reason == C.Exec.Reason &&
        A.Exec.FaultAddr == C.Exec.FaultAddr) {
      V.Equivalent = true;
      V.Detail = std::string("both stopped with the same fault report: ") +
                 emu::stopReasonName(A.Exec.Reason) + " at addr " +
                 std::to_string(A.Exec.FaultAddr);
    } else {
      V.Detail = "fault reports differ: scalar{" + A.Exec.describe() +
                 "} vector{" + C.Exec.describe() + "}";
    }
    return V;
  }
  V.Detail = std::string("only one execution survived: scalar ") +
             (A.Ok ? "completed" : A.Exec.describe()) + ", vector " +
             (C.Ok ? "completed" : C.Exec.describe());
  return V;
}

DiffVerdict core::runDifferential(const ir::LoopFunction &F,
                                  const codegen::CompiledLoop &ScalarCL,
                                  const codegen::CompiledLoop &VectorCL,
                                  const mem::Memory &BaseImage,
                                  const ir::Bindings &B,
                                  const FaultPlan &Plan) {
  DiffVerdict V;
  V.Scalar = runProgramWithFaults(ScalarCL, BaseImage, B, Plan);
  V.Vector = runProgramWithFaults(VectorCL, BaseImage, B, Plan);

  const RunOutcome &A = V.Scalar.Outcome;
  const RunOutcome &C = V.Vector.Outcome;
  if (A.Ok && C.Ok) {
    if (outcomesMatch(F, A, C)) {
      V.Equivalent = true;
      V.Detail = "both completed; memory fingerprints and live-outs match";
    } else {
      V.Detail = "both completed but diverged: scalar mem=" +
                 std::to_string(A.MemFingerprint) +
                 " vector mem=" + std::to_string(C.MemFingerprint);
    }
    return V;
  }
  if (!A.Ok && !C.Ok) {
    if (A.Exec.Reason == C.Exec.Reason &&
        A.Exec.FaultAddr == C.Exec.FaultAddr) {
      V.Equivalent = true;
      V.Detail = std::string("both stopped with the same fault report: ") +
                 emu::stopReasonName(A.Exec.Reason) + " at addr " +
                 std::to_string(A.Exec.FaultAddr);
    } else {
      V.Detail = "fault reports differ: scalar{" + A.Exec.describe() +
                 "} vector{" + C.Exec.describe() + "}";
    }
    return V;
  }
  std::string ScalarDesc = A.Ok ? "completed" : A.Exec.describe();
  std::string VectorDesc = C.Ok ? "completed" : C.Exec.describe();
  V.Detail = "only one execution survived: scalar " + ScalarDesc +
             ", vector " + VectorDesc;
  return V;
}

std::string DiffVerdict::describe() const {
  std::string S = Equivalent ? "EQUIVALENT: " : "DIVERGED: ";
  S += Detail;
  S += "\n  scalar: " + Scalar.report();
  S += "\n  vector: " + Vector.report();
  return S;
}
