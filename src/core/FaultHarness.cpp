//===- core/FaultHarness.cpp ----------------------------------------------===//

#include "core/FaultHarness.h"

#include "codegen/Compiled.h"

using namespace flexvec;
using namespace flexvec::core;

namespace {

void bindMachine(emu::Machine &Machine, const ir::Bindings &B) {
  for (size_t S = 0; S < B.ScalarValues.size(); ++S)
    Machine.setScalar(codegen::scalarParamReg(static_cast<int>(S)).Index,
                      B.ScalarValues[S]);
  for (size_t A = 0; A < B.ArrayBases.size(); ++A)
    Machine.setScalar(codegen::arrayBaseReg(static_cast<int>(A)).Index,
                      static_cast<int64_t>(B.ArrayBases[A]));
}

} // namespace

std::string FaultedRun::report() const {
  std::string S = Outcome.Exec.describe();
  S += "; injected mem=" + std::to_string(Injection.MemFaultsInjected) +
       " tx=" + std::to_string(Injection.TxAbortsInjected);
  return S;
}

FaultedRun core::runProgramWithFaults(const codegen::CompiledLoop &CL,
                                      const mem::Memory &BaseImage,
                                      const ir::Bindings &B,
                                      const FaultPlan &Plan) {
  FaultedRun Run;
  mem::Memory M = BaseImage.clone();
  emu::Machine Machine(M);
  bindMachine(Machine, B);

  faults::FaultInjector Injector(Plan.Mem, Plan.Tx);
  Injector.arm(M, &Machine.tx());

  emu::RunLimits Limits;
  Limits.MaxInstructions = Plan.MaxInstructions;
  Limits.MaxRtmRetries = Plan.MaxRtmRetries;
  Run.Outcome.Exec = Machine.run(CL.Prog, Limits);
  Run.Outcome.Ok = Run.Outcome.Exec.Reason == emu::StopReason::Halted;
  if (!Run.Outcome.Ok)
    Run.Outcome.Error = Run.Outcome.Exec.describe();
  Injector.disarm();

  Run.Outcome.MemFingerprint = M.fingerprint();
  for (size_t S = 0; S < B.ScalarValues.size(); ++S)
    Run.Outcome.LiveOuts.push_back(Machine.getScalar(
        codegen::scalarParamReg(static_cast<int>(S)).Index));
  Run.Injection = Injector.stats();
  Run.Tx = Machine.txStats();
  return Run;
}

DiffVerdict core::runDifferential(const ir::LoopFunction &F,
                                  const codegen::CompiledLoop &ScalarCL,
                                  const codegen::CompiledLoop &VectorCL,
                                  const mem::Memory &BaseImage,
                                  const ir::Bindings &B,
                                  const FaultPlan &Plan) {
  DiffVerdict V;
  V.Scalar = runProgramWithFaults(ScalarCL, BaseImage, B, Plan);
  V.Vector = runProgramWithFaults(VectorCL, BaseImage, B, Plan);

  const RunOutcome &A = V.Scalar.Outcome;
  const RunOutcome &C = V.Vector.Outcome;
  if (A.Ok && C.Ok) {
    if (outcomesMatch(F, A, C)) {
      V.Equivalent = true;
      V.Detail = "both completed; memory fingerprints and live-outs match";
    } else {
      V.Detail = "both completed but diverged: scalar mem=" +
                 std::to_string(A.MemFingerprint) +
                 " vector mem=" + std::to_string(C.MemFingerprint);
    }
    return V;
  }
  if (!A.Ok && !C.Ok) {
    if (A.Exec.Reason == C.Exec.Reason &&
        A.Exec.FaultAddr == C.Exec.FaultAddr) {
      V.Equivalent = true;
      V.Detail = std::string("both stopped with the same fault report: ") +
                 emu::stopReasonName(A.Exec.Reason) + " at addr " +
                 std::to_string(A.Exec.FaultAddr);
    } else {
      V.Detail = "fault reports differ: scalar{" + A.Exec.describe() +
                 "} vector{" + C.Exec.describe() + "}";
    }
    return V;
  }
  std::string ScalarDesc = A.Ok ? "completed" : A.Exec.describe();
  std::string VectorDesc = C.Ok ? "completed" : C.Exec.describe();
  V.Detail = "only one execution survived: scalar " + ScalarDesc +
             ", vector " + VectorDesc;
  return V;
}

std::string DiffVerdict::describe() const {
  std::string S = Equivalent ? "EQUIVALENT: " : "DIVERGED: ";
  S += Detail;
  S += "\n  scalar: " + Scalar.report();
  S += "\n  vector: " + Vector.report();
  return S;
}
