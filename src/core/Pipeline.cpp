//===- core/Pipeline.cpp --------------------------------------------------===//

#include "core/Pipeline.h"

#include "codegen/ScalarCodeGen.h"
#include "pdg/Pdg.h"

using namespace flexvec;
using namespace flexvec::core;

PipelineResult core::compileLoop(const ir::LoopFunction &F,
                                 unsigned RtmTile) {
  PipelineResult R;
  pdg::Pdg P(F);
  R.PdgDump = P.dump();
  R.Plan = analysis::analyzeLoop(P);
  R.Shape = analysis::computeLoopShape(F);
  R.Scalar = codegen::generateScalar(F);
  R.Traditional = codegen::generateTraditional(F, R.Plan);
  R.Speculative = codegen::generateSpeculative(F, R.Plan);
  std::string WhyNot;
  R.FlexVec = codegen::generateFlexVec(F, R.Plan, &WhyNot);
  if (!R.FlexVec && !WhyNot.empty())
    R.Diagnostics.push_back("flexvec: " + WhyNot);
  R.Rtm = codegen::generateFlexVecRtm(F, R.Plan, RtmTile);
  if (R.FlexVec) {
    codegen::CompiledLoop Opt = *R.FlexVec;
    Opt.Prog = codegen::optimizeProgram(R.FlexVec->Prog,
                                        codegen::PeepholeOptions(),
                                        &R.OptStats);
    Opt.Notes += "; peephole: " + R.OptStats.describe();
    R.FlexVecOpt = std::move(Opt);
  }
  return R;
}
