//===- core/Evaluator.cpp -------------------------------------------------===//

#include "core/Evaluator.h"

#include <cassert>

using namespace flexvec;
using namespace flexvec::core;
using namespace flexvec::ir;

void core::setUpDispatchCell(const codegen::CompiledLoop &CL,
                             mem::Memory &M) {
  if (CL.Kind != codegen::CodeGenKind::FlexVecAdaptive)
    return;
  M.map(driver::dispatch::CellAddr, driver::dispatch::CellSize);
}

bool core::tearDownDispatchCell(const codegen::CompiledLoop &CL,
                                mem::Memory &M,
                                driver::DispatchCounts &Out) {
  if (CL.Kind != codegen::CodeGenKind::FlexVecAdaptive)
    return false;
  const uint64_t Base = driver::dispatch::CellAddr;
  const auto Rd = [&](int64_t Off) {
    return static_cast<uint64_t>(
        M.get<int64_t>(Base + static_cast<uint64_t>(Off)));
  };
  Out.State = Rd(driver::dispatch::StateOff);
  Out.Invocations = Rd(driver::dispatch::InvocationsOff);
  Out.AbortedInvocations = Rd(driver::dispatch::AbortedOff);
  Out.AbortEvents = Rd(driver::dispatch::AbortEventsOff);
  Out.GuardPass = Rd(driver::dispatch::GuardPassOff);
  Out.GuardFail = Rd(driver::dispatch::GuardFailOff);
  Out.Demotions = Rd(driver::dispatch::DemotionsOff);
  M.unmap(Base, driver::dispatch::CellSize);
  return true;
}

RunOutcome core::runProgram(const codegen::CompiledLoop &CL,
                            const mem::Memory &BaseImage, const Bindings &B,
                            emu::TraceSink *Sink, uint64_t MaxInstructions) {
  RunOutcome Out;
  mem::Memory M = BaseImage.clone();
  setUpDispatchCell(CL, M);
  emu::Machine Machine(M);
  for (size_t S = 0; S < B.ScalarValues.size(); ++S)
    Machine.setScalar(codegen::scalarParamReg(static_cast<int>(S)).Index,
                      B.ScalarValues[S]);
  for (size_t A = 0; A < B.ArrayBases.size(); ++A)
    Machine.setScalar(codegen::arrayBaseReg(static_cast<int>(A)).Index,
                      static_cast<int64_t>(B.ArrayBases[A]));
  emu::RunLimits Limits;
  Limits.MaxInstructions = MaxInstructions;
  Out.Exec = Machine.run(CL.Prog, Limits, Sink);
  Out.Tx = Machine.txStats();
  Out.Mem = M.stats();
  Out.Ok = Out.Exec.Reason == emu::StopReason::Halted;
  if (!Out.Ok)
    Out.Error = Out.Exec.describe();
  Out.HasDispatch = tearDownDispatchCell(CL, M, Out.Dispatch);
  Out.MemFingerprint = M.fingerprint();
  for (size_t S = 0; S < B.ScalarValues.size(); ++S)
    Out.LiveOuts.push_back(Machine.getScalar(
        codegen::scalarParamReg(static_cast<int>(S)).Index));
  return Out;
}

RunOutcome core::runReference(const LoopFunction &F,
                              const mem::Memory &BaseImage,
                              const Bindings &B) {
  RunOutcome Out;
  mem::Memory M = BaseImage.clone();
  Bindings Work = B;
  Interpreter Interp(M);
  InterpResult R = Interp.run(F, Work);
  Out.Ok = !R.Faulted;
  if (R.Faulted)
    Out.Error = "reference memory fault at address " +
                std::to_string(R.FaultAddr);
  Out.MemFingerprint = M.fingerprint();
  Out.LiveOuts = Work.ScalarValues;
  return Out;
}

namespace {

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

uint64_t foldLiveOuts(const LoopFunction &F, uint64_t H,
                      const std::vector<int64_t> &LiveOuts) {
  for (size_t S = 0; S < F.scalars().size(); ++S)
    if (F.scalar(S).IsLiveOut)
      H = hashCombine(H, static_cast<uint64_t>(LiveOuts[S]));
  return H;
}

} // namespace

RunOutcome core::runProgramMulti(const LoopFunction &F,
                                 const codegen::CompiledLoop &CL,
                                 const mem::Memory &BaseImage,
                                 const std::vector<Bindings> &Invocations,
                                 emu::TraceSink *Sink,
                                 uint64_t MaxInstructionsPerRun) {
  RunOutcome Out;
  Out.Ok = true;
  mem::Memory M = BaseImage.clone();
  setUpDispatchCell(CL, M);
  emu::Machine Machine(M);
  emu::RunLimits Limits;
  Limits.MaxInstructions = MaxInstructionsPerRun;
  for (const Bindings &B : Invocations) {
    Machine.resetRegisters();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Machine.setScalar(codegen::scalarParamReg(static_cast<int>(S)).Index,
                        B.ScalarValues[S]);
    for (size_t A = 0; A < B.ArrayBases.size(); ++A)
      Machine.setScalar(codegen::arrayBaseReg(static_cast<int>(A)).Index,
                        static_cast<int64_t>(B.ArrayBases[A]));
    emu::ExecResult R = Machine.run(CL.Prog, Limits, Sink);
    Out.Exec.Stats.merge(R.Stats);
    if (R.Reason != emu::StopReason::Halted) {
      Out.Ok = false;
      Out.Error = "invocation failed: " + R.describe();
      break;
    }
    Out.LiveOuts.clear();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Out.LiveOuts.push_back(Machine.getScalar(
          codegen::scalarParamReg(static_cast<int>(S)).Index));
    Out.LiveOutHash = foldLiveOuts(F, Out.LiveOutHash, Out.LiveOuts);
  }
  Out.Tx = Machine.txStats();
  Out.Mem = M.stats();
  Out.HasDispatch = tearDownDispatchCell(CL, M, Out.Dispatch);
  Out.MemFingerprint = M.fingerprint();
  return Out;
}

RunOutcome core::runReferenceMulti(const LoopFunction &F,
                                   const mem::Memory &BaseImage,
                                   const std::vector<Bindings> &Invocations) {
  RunOutcome Out;
  Out.Ok = true;
  mem::Memory M = BaseImage.clone();
  Interpreter Interp(M);
  for (const Bindings &B : Invocations) {
    Bindings Work = B;
    InterpResult R = Interp.run(F, Work);
    if (R.Faulted) {
      Out.Ok = false;
      Out.Error = "reference memory fault at address " +
                  std::to_string(R.FaultAddr);
      break;
    }
    Out.LiveOuts = Work.ScalarValues;
    Out.LiveOutHash = foldLiveOuts(F, Out.LiveOutHash, Out.LiveOuts);
  }
  Out.MemFingerprint = M.fingerprint();
  return Out;
}

bool core::outcomesMatch(const LoopFunction &F, const RunOutcome &A,
                         const RunOutcome &B) {
  if (!A.Ok || !B.Ok)
    return false;
  if (A.MemFingerprint != B.MemFingerprint)
    return false;
  if (A.LiveOutHash != B.LiveOutHash)
    return false;
  assert(A.LiveOuts.size() == B.LiveOuts.size());
  for (size_t S = 0; S < F.scalars().size(); ++S) {
    if (!F.scalar(S).IsLiveOut)
      continue;
    if (A.LiveOuts[S] != B.LiveOuts[S])
      return false;
  }
  return true;
}

double core::coverageScaledSpeedup(double HotSpeedup, double Coverage) {
  assert(HotSpeedup > 0 && Coverage >= 0 && Coverage <= 1);
  return 1.0 / (1.0 - Coverage + Coverage / HotSpeedup);
}
