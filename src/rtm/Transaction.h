//===- rtm/Transaction.h - Rollback-only transactional memory --*- C++ -*-===//
//
// Restricted transactional memory in the style of Intel RTM / POWER8
// rollback-only transactions (paper Section 3.3.2). The transaction buffers
// an undo log for memory writes and tracks read/write-set footprints in
// cache-line granules; exceeding the capacity, touching a faulting address,
// or an explicit XABORT rolls all tentative memory changes back.
//
// Register rollback is the executing machine's responsibility (it snapshots
// the register file at XBEGIN); this class owns only the memory side.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_RTM_TRANSACTION_H
#define FLEXVEC_RTM_TRANSACTION_H

#include "memory/Memory.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace flexvec {
namespace obs {
class Registry;
}
namespace rtm {

/// Why a transaction aborted.
enum class AbortReason : uint8_t {
  None,     ///< No abort (still running or committed).
  Explicit, ///< XABORT executed.
  Fault,    ///< A memory access inside the transaction faulted.
  Capacity, ///< Read- or write-set exceeded the hardware buffers.
  Conflict, ///< Another core touched the read/write set (injected).
  Spurious, ///< Interrupt/TLB-shootdown style abort (injected).
  Nested,   ///< XBEGIN executed while a transaction was already active.
};

const char *abortReasonName(AbortReason R);

/// True for abort causes that can succeed on re-execution (the bounded
/// retry policy in emu::Machine only retries these). Faults and capacity
/// overflows are deterministic, explicit aborts are intentional, and a
/// nested XBEGIN is a structural bug in the generated code.
inline bool isRetryableAbort(AbortReason R) {
  return R == AbortReason::Conflict || R == AbortReason::Spurious;
}

/// Policy interface for injecting transaction aborts (conflict, capacity,
/// spurious) at deterministic points: before each transactional access and
/// at commit. Returning AbortReason::None injects nothing.
class TxFaultHook {
public:
  virtual ~TxFaultHook();

  /// \p AtCommit is true when consulted from commit(), false when
  /// consulted before a transactional read or write.
  virtual AbortReason injectAbort(bool AtCommit) = 0;
};

/// Hardware capacity limits. Defaults approximate Haswell RTM: the write
/// set is bounded by the L1D (32 KiB) and the read set by the L2 footprint
/// available for tracking.
struct TxLimits {
  unsigned MaxWriteSetLines = 512;  ///< 512 * 64B = 32 KiB.
  unsigned MaxReadSetLines = 4096;  ///< 4096 * 64B = 256 KiB.
};

/// Aggregate statistics across a TransactionManager's lifetime.
struct TxStats {
  uint64_t Begins = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t AbortsByFault = 0;
  uint64_t AbortsByCapacity = 0;
  uint64_t AbortsExplicit = 0;
  uint64_t AbortsByConflict = 0;
  uint64_t AbortsSpurious = 0;
  uint64_t AbortsNested = 0;
  uint64_t InjectedAborts = 0;
  uint64_t BytesLogged = 0;
};

/// Manages (non-nested) transactions over one Memory instance.
class TransactionManager {
public:
  explicit TransactionManager(mem::Memory &M, TxLimits Limits = TxLimits())
      : M(M), Limits(Limits) {}

  bool isActive() const { return Active; }
  const TxStats &stats() const { return Stats; }

  /// Reason of the most recent abort (sticky until the next abort).
  AbortReason lastAbortReason() const { return LastAbort; }

  /// Installs (or clears) the abort-injection hook; not owned.
  void setFaultHook(TxFaultHook *H) { Hook = H; }

  /// Starts a transaction. Nesting is an architectural abort, not an
  /// error: a begin() while active aborts the running transaction with
  /// AbortReason::Nested and returns false, leaving the caller to branch
  /// to the abort handler. Returns true when a transaction started.
  bool begin();

  /// Commits: tentative writes become permanent, the undo log is
  /// discarded. An injected commit-time abort rolls back instead and
  /// returns false (reason via lastAbortReason()).
  bool commit();

  /// Aborts: tentative writes are undone in reverse order.
  void abort(AbortReason Reason);

  /// Transactional read. Outside a transaction this is a plain read.
  /// Returns false (and aborts the transaction) on fault or capacity
  /// overflow; the caller must then redirect control to the abort handler.
  bool read(uint64_t Addr, void *Out, uint64_t Size, AbortReason &Reason);

  /// Transactional write; undo data is logged first. Same failure contract
  /// as read().
  bool write(uint64_t Addr, const void *Data, uint64_t Size,
             AbortReason &Reason);

private:
  struct UndoRecord {
    uint64_t Addr;
    std::vector<uint8_t> OldBytes;
  };

  bool trackFootprint(uint64_t Addr, uint64_t Size, bool IsWrite);

  mem::Memory &M;
  TxLimits Limits;
  bool Active = false;
  std::vector<UndoRecord> UndoLog;
  std::unordered_set<uint64_t> ReadSetLines;
  std::unordered_set<uint64_t> WriteSetLines;
  TxStats Stats;
  TxFaultHook *Hook = nullptr;
  AbortReason LastAbort = AbortReason::None;
};

/// Exports \p S into \p R under the `rtm.` metric namespace: begin/commit/
/// abort counters, aborts split by AbortReason, bytes logged, and the
/// derived commit-rate gauge (see docs/OBSERVABILITY.md).
void recordMetrics(const TxStats &S, obs::Registry &R);

} // namespace rtm
} // namespace flexvec

#endif // FLEXVEC_RTM_TRANSACTION_H
