//===- rtm/Transaction.h - Rollback-only transactional memory --*- C++ -*-===//
//
// Restricted transactional memory in the style of Intel RTM / POWER8
// rollback-only transactions (paper Section 3.3.2). The transaction buffers
// an undo log for memory writes and tracks read/write-set footprints in
// cache-line granules; exceeding the capacity, touching a faulting address,
// or an explicit XABORT rolls all tentative memory changes back.
//
// Register rollback is the executing machine's responsibility (it snapshots
// the register file at XBEGIN); this class owns only the memory side.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_RTM_TRANSACTION_H
#define FLEXVEC_RTM_TRANSACTION_H

#include "memory/Memory.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace flexvec {
namespace rtm {

/// Why a transaction aborted.
enum class AbortReason : uint8_t {
  None,     ///< No abort (still running or committed).
  Explicit, ///< XABORT executed.
  Fault,    ///< A memory access inside the transaction faulted.
  Capacity, ///< Read- or write-set exceeded the hardware buffers.
};

const char *abortReasonName(AbortReason R);

/// Hardware capacity limits. Defaults approximate Haswell RTM: the write
/// set is bounded by the L1D (32 KiB) and the read set by the L2 footprint
/// available for tracking.
struct TxLimits {
  unsigned MaxWriteSetLines = 512;  ///< 512 * 64B = 32 KiB.
  unsigned MaxReadSetLines = 4096;  ///< 4096 * 64B = 256 KiB.
};

/// Aggregate statistics across a TransactionManager's lifetime.
struct TxStats {
  uint64_t Begins = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t AbortsByFault = 0;
  uint64_t AbortsByCapacity = 0;
  uint64_t AbortsExplicit = 0;
  uint64_t BytesLogged = 0;
};

/// Manages (non-nested) transactions over one Memory instance.
class TransactionManager {
public:
  explicit TransactionManager(mem::Memory &M, TxLimits Limits = TxLimits())
      : M(M), Limits(Limits) {}

  bool isActive() const { return Active; }
  const TxStats &stats() const { return Stats; }

  /// Starts a transaction. Nested transactions are not supported.
  void begin();

  /// Commits: tentative writes become permanent, the undo log is discarded.
  void commit();

  /// Aborts: tentative writes are undone in reverse order.
  void abort(AbortReason Reason);

  /// Transactional read. Outside a transaction this is a plain read.
  /// Returns false (and aborts the transaction) on fault or capacity
  /// overflow; the caller must then redirect control to the abort handler.
  bool read(uint64_t Addr, void *Out, uint64_t Size, AbortReason &Reason);

  /// Transactional write; undo data is logged first. Same failure contract
  /// as read().
  bool write(uint64_t Addr, const void *Data, uint64_t Size,
             AbortReason &Reason);

private:
  struct UndoRecord {
    uint64_t Addr;
    std::vector<uint8_t> OldBytes;
  };

  bool trackFootprint(uint64_t Addr, uint64_t Size, bool IsWrite);

  mem::Memory &M;
  TxLimits Limits;
  bool Active = false;
  std::vector<UndoRecord> UndoLog;
  std::unordered_set<uint64_t> ReadSetLines;
  std::unordered_set<uint64_t> WriteSetLines;
  TxStats Stats;
};

} // namespace rtm
} // namespace flexvec

#endif // FLEXVEC_RTM_TRANSACTION_H
