//===- rtm/Transaction.cpp ------------------------------------------------===//

#include "rtm/Transaction.h"

#include "obs/Metrics.h"
#include "support/Error.h"

#include <cassert>

using namespace flexvec;
using namespace flexvec::rtm;

namespace {
constexpr uint64_t LineBytes = 64;
} // namespace

TxFaultHook::~TxFaultHook() = default;

const char *rtm::abortReasonName(AbortReason R) {
  switch (R) {
  case AbortReason::None:
    return "none";
  case AbortReason::Explicit:
    return "explicit";
  case AbortReason::Fault:
    return "fault";
  case AbortReason::Capacity:
    return "capacity";
  case AbortReason::Conflict:
    return "conflict";
  case AbortReason::Spurious:
    return "spurious";
  case AbortReason::Nested:
    return "nested";
  }
  unreachable("unknown abort reason");
}

bool TransactionManager::begin() {
  if (Active) {
    // A nested XBEGIN is an architectural abort of the running
    // transaction (Intel RTM aborts on unsupported nesting depth), not a
    // process-fatal condition: roll back and let the machine redirect to
    // the abort handler.
    abort(AbortReason::Nested);
    return false;
  }
  Active = true;
  UndoLog.clear();
  ReadSetLines.clear();
  WriteSetLines.clear();
  ++Stats.Begins;
  return true;
}

bool TransactionManager::commit() {
  assert(Active && "commit outside a transaction");
  if (Hook) {
    AbortReason Injected = Hook->injectAbort(/*AtCommit=*/true);
    if (Injected != AbortReason::None) {
      ++Stats.InjectedAborts;
      abort(Injected);
      return false;
    }
  }
  Active = false;
  UndoLog.clear();
  ReadSetLines.clear();
  WriteSetLines.clear();
  ++Stats.Commits;
  return true;
}

void TransactionManager::abort(AbortReason Reason) {
  assert(Active && "abort outside a transaction");
  assert(Reason != AbortReason::None && "abort requires a reason");
  // Undo tentative writes in reverse order. The rollback uses the debug
  // write path: undo targets were mapped and writable when logged, and an
  // armed fault injector must not be able to corrupt a rollback (real
  // hardware discards the speculative cache lines unconditionally).
  for (auto It = UndoLog.rbegin(); It != UndoLog.rend(); ++It) {
    mem::AccessResult R = M.poke(It->Addr, It->OldBytes.data(),
                                 It->OldBytes.size());
    if (!R.Ok)
      fatalError("rollback write faulted; undo log is corrupt");
  }
  Active = false;
  UndoLog.clear();
  ReadSetLines.clear();
  WriteSetLines.clear();
  ++Stats.Aborts;
  LastAbort = Reason;
  switch (Reason) {
  case AbortReason::Explicit:
    ++Stats.AbortsExplicit;
    break;
  case AbortReason::Fault:
    ++Stats.AbortsByFault;
    break;
  case AbortReason::Capacity:
    ++Stats.AbortsByCapacity;
    break;
  case AbortReason::Conflict:
    ++Stats.AbortsByConflict;
    break;
  case AbortReason::Spurious:
    ++Stats.AbortsSpurious;
    break;
  case AbortReason::Nested:
    ++Stats.AbortsNested;
    break;
  case AbortReason::None:
    break;
  }
}

bool TransactionManager::trackFootprint(uint64_t Addr, uint64_t Size,
                                        bool IsWrite) {
  uint64_t First = Addr / LineBytes;
  uint64_t Last = Size ? (Addr + Size - 1) / LineBytes : First;
  for (uint64_t L = First; L <= Last; ++L) {
    if (IsWrite)
      WriteSetLines.insert(L);
    else
      ReadSetLines.insert(L);
  }
  return WriteSetLines.size() <= Limits.MaxWriteSetLines &&
         ReadSetLines.size() <= Limits.MaxReadSetLines;
}

bool TransactionManager::read(uint64_t Addr, void *Out, uint64_t Size,
                              AbortReason &Reason) {
  Reason = AbortReason::None;
  if (Active && Hook) {
    AbortReason Injected = Hook->injectAbort(/*AtCommit=*/false);
    if (Injected != AbortReason::None) {
      ++Stats.InjectedAborts;
      Reason = Injected;
      abort(Reason);
      return false;
    }
  }
  mem::AccessResult R = M.read(Addr, Out, Size);
  if (!Active)
    return R.Ok; // Non-transactional: fault surfaces to the machine.
  if (!R.Ok) {
    Reason = AbortReason::Fault;
    abort(Reason);
    return false;
  }
  if (!trackFootprint(Addr, Size, /*IsWrite=*/false)) {
    Reason = AbortReason::Capacity;
    abort(Reason);
    return false;
  }
  return true;
}

bool TransactionManager::write(uint64_t Addr, const void *Data, uint64_t Size,
                               AbortReason &Reason) {
  Reason = AbortReason::None;
  if (!Active) {
    mem::AccessResult R = M.write(Addr, Data, Size);
    return R.Ok;
  }
  if (Hook) {
    AbortReason Injected = Hook->injectAbort(/*AtCommit=*/false);
    if (Injected != AbortReason::None) {
      ++Stats.InjectedAborts;
      Reason = Injected;
      abort(Reason);
      return false;
    }
  }
  // Log old contents before modifying; a failed read of the old contents is
  // a fault on the write address range.
  UndoRecord Rec;
  Rec.Addr = Addr;
  Rec.OldBytes.resize(Size);
  mem::AccessResult Old = M.read(Addr, Rec.OldBytes.data(), Size);
  if (!Old.Ok) {
    Reason = AbortReason::Fault;
    abort(Reason);
    return false;
  }
  mem::AccessResult W = M.write(Addr, Data, Size);
  if (!W.Ok) {
    Reason = AbortReason::Fault;
    abort(Reason);
    return false;
  }
  Stats.BytesLogged += Size;
  UndoLog.push_back(std::move(Rec));
  if (!trackFootprint(Addr, Size, /*IsWrite=*/true)) {
    Reason = AbortReason::Capacity;
    abort(Reason);
    return false;
  }
  return true;
}

// --- Metrics export ------------------------------------------------------===//

void rtm::recordMetrics(const TxStats &S, obs::Registry &R) {
  R.counter("rtm.begins").inc(S.Begins);
  R.counter("rtm.commits").inc(S.Commits);
  R.counter("rtm.aborts").inc(S.Aborts);
  R.counter("rtm.aborts.fault").inc(S.AbortsByFault);
  R.counter("rtm.aborts.capacity").inc(S.AbortsByCapacity);
  R.counter("rtm.aborts.explicit").inc(S.AbortsExplicit);
  R.counter("rtm.aborts.conflict").inc(S.AbortsByConflict);
  R.counter("rtm.aborts.spurious").inc(S.AbortsSpurious);
  R.counter("rtm.aborts.nested").inc(S.AbortsNested);
  R.counter("rtm.injected_aborts").inc(S.InjectedAborts);
  R.counter("rtm.bytes_logged").inc(S.BytesLogged);
  if (S.Begins)
    R.gauge("rtm.commit_rate")
        .set(static_cast<double>(S.Commits) / static_cast<double>(S.Begins));
}
