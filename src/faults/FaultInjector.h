//===- faults/FaultInjector.h - Deterministic fault injection ---*- C++ -*-===//
//
// Seeded, deterministic fault-injection policies for the memory and RTM
// layers. The FlexVec correctness story rests on graceful fault handling —
// first-faulting loads clip the write mask instead of trapping (paper
// Section 3.3.1) and RTM regions abort, roll back, and reach a fallback
// path (Section 3.3.2) — so those paths must be first-class, *injectable*
// architectural events, not accidents of input data.
//
// One FaultInjector implements both hook interfaces:
//
//  * mem::FaultHook — fail-the-Nth-architectural-access schedules and
//    per-address-range probabilistic faults (transient or persistent).
//    Range decisions are derived from hash(seed, cache line), NOT from a
//    sequential PRNG draw, so the same addresses are faulty no matter how
//    many or in what order accesses happen. That address-determinism is
//    what lets the differential harness run a scalar and a vectorized
//    program under the *same* fault schedule and expect the same
//    architectural outcome.
//
//  * rtm::TxFaultHook — abort the Nth transactional operation and/or
//    abort each operation with a fixed probability, with a configurable
//    abort reason (Conflict, Capacity, Spurious).
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_FAULTS_FAULTINJECTOR_H
#define FLEXVEC_FAULTS_FAULTINJECTOR_H

#include "memory/Memory.h"
#include "rtm/Transaction.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace flexvec {
namespace faults {

/// Whether an injected memory fault clears once it has fired.
enum class FaultDuration : uint8_t {
  Transient,  ///< Faults on the first touch of a line, then heals.
  Persistent, ///< Faults on every touch.
};

/// A probabilistic per-address-range fault. A cache line within
/// [Lo, Hi) is faulty iff hash(Seed, line) < Prob — deterministic in the
/// address, independent of access order and count.
struct RangeFault {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  double Prob = 1.0;
  FaultDuration Duration = FaultDuration::Persistent;
};

/// Memory-side injection plan.
struct MemFaultPlan {
  uint64_t Seed = 1;
  /// 1-based index of the architectural access to fail (0 = disabled).
  uint64_t FailNthAccess = 0;
  /// When true, every FailNthAccess-th access fails, not just the first.
  bool RepeatNth = false;
  std::vector<RangeFault> Ranges;

  bool enabled() const { return FailNthAccess != 0 || !Ranges.empty(); }
};

/// RTM-side injection plan.
struct TxFaultPlan {
  uint64_t Seed = 1;
  /// 1-based index of the transactional operation to abort (0 = disabled).
  uint64_t AbortNthOp = 0;
  /// When true, every AbortNthOp-th operation aborts, not just the first.
  bool RepeatNth = false;
  /// Per-operation abort probability (0 = disabled).
  double AbortProb = 0.0;
  /// Reason reported for injected aborts.
  rtm::AbortReason Reason = rtm::AbortReason::Conflict;
  /// Injection stops after this many aborts (models a transient storm).
  uint64_t MaxInjected = UINT64_MAX;

  bool enabled() const { return AbortNthOp != 0 || AbortProb > 0.0; }
};

/// Injection counters, for assertions and reports.
struct InjectorStats {
  uint64_t MemAccessesSeen = 0;
  uint64_t MemFaultsInjected = 0;
  uint64_t TxOpsSeen = 0;
  uint64_t TxAbortsInjected = 0;
};

/// The concrete injector; attach with arm()/disarm() or install the hook
/// interfaces manually.
class FaultInjector : public mem::FaultHook, public rtm::TxFaultHook {
public:
  FaultInjector() = default;
  explicit FaultInjector(MemFaultPlan Mem, TxFaultPlan Tx = TxFaultPlan())
      : Mem(std::move(Mem)), Tx(Tx) {}

  /// Installs this injector into \p M (and \p T if given). The injector
  /// must outlive the armed objects or be disarmed first.
  void arm(mem::Memory &M, rtm::TransactionManager *T = nullptr);
  void disarm();

  /// Resets counters and healed/transient state (not the plans), so one
  /// injector config can be replayed against a second execution.
  void reset();

  const InjectorStats &stats() const { return Stats; }
  const MemFaultPlan &memPlan() const { return Mem; }
  const TxFaultPlan &txPlan() const { return Tx; }

  /// Human-readable one-line summary of the armed policies.
  std::string describe() const;

  // mem::FaultHook
  bool shouldFault(uint64_t Addr, uint64_t Size, bool IsWrite,
                   uint64_t &FaultAddr) override;

  // rtm::TxFaultHook
  rtm::AbortReason injectAbort(bool AtCommit) override;

private:
  bool lineIsFaulty(const RangeFault &R, uint64_t Line) const;

  MemFaultPlan Mem;
  TxFaultPlan Tx;
  InjectorStats Stats;
  std::unordered_set<uint64_t> HealedLines; ///< Transient lines that fired.
  mem::Memory *ArmedMem = nullptr;
  rtm::TransactionManager *ArmedTx = nullptr;
};

/// Parses "LO:HI:PROB[:transient|persistent]" (addresses in decimal or
/// 0x-hex) into \p Out; returns false with \p Error set on malformed input.
bool parseRangeFault(const std::string &Spec, RangeFault &Out,
                     std::string &Error);

} // namespace faults
} // namespace flexvec

#endif // FLEXVEC_FAULTS_FAULTINJECTOR_H
