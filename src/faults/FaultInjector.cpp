//===- faults/FaultInjector.cpp -------------------------------------------===//

#include "faults/FaultInjector.h"

#include "support/Random.h"

#include <algorithm>
#include <cstdlib>

using namespace flexvec;
using namespace flexvec::faults;

namespace {

/// Granule of the address-deterministic range faults; matches the RTM
/// footprint tracking granule.
constexpr uint64_t LineBytes = 64;

/// Uniform [0,1) value derived from (Seed, Key) alone.
double hashToUnit(uint64_t Seed, uint64_t Key) {
  SplitMix64 SM(Seed ^ (Key * 0x9e3779b97f4a7c15ULL));
  // Burn one expansion step so nearby keys decorrelate.
  SM.next();
  return static_cast<double>(SM.next() >> 11) * 0x1.0p-53;
}

} // namespace

void FaultInjector::arm(mem::Memory &M, rtm::TransactionManager *T) {
  M.setFaultHook(this);
  ArmedMem = &M;
  if (T) {
    T->setFaultHook(this);
    ArmedTx = T;
  }
}

void FaultInjector::disarm() {
  if (ArmedMem)
    ArmedMem->setFaultHook(nullptr);
  if (ArmedTx)
    ArmedTx->setFaultHook(nullptr);
  ArmedMem = nullptr;
  ArmedTx = nullptr;
}

void FaultInjector::reset() {
  Stats = InjectorStats();
  HealedLines.clear();
}

bool FaultInjector::lineIsFaulty(const RangeFault &R, uint64_t Line) const {
  if (R.Prob >= 1.0)
    return true;
  if (R.Prob <= 0.0)
    return false;
  return hashToUnit(Mem.Seed, Line) < R.Prob;
}

bool FaultInjector::shouldFault(uint64_t Addr, uint64_t Size, bool IsWrite,
                                uint64_t &FaultAddr) {
  (void)IsWrite;
  ++Stats.MemAccessesSeen;

  if (Mem.FailNthAccess != 0) {
    bool Hit = Mem.RepeatNth
                   ? Stats.MemAccessesSeen % Mem.FailNthAccess == 0
                   : Stats.MemAccessesSeen == Mem.FailNthAccess;
    if (Hit) {
      ++Stats.MemFaultsInjected;
      FaultAddr = Addr;
      return true;
    }
  }

  if (Mem.Ranges.empty() || Size == 0)
    return false;
  uint64_t FirstLine = Addr / LineBytes;
  uint64_t LastLine = (Addr + Size - 1) / LineBytes;
  for (uint64_t L = FirstLine; L <= LastLine; ++L) {
    uint64_t LineLo = L * LineBytes;
    uint64_t LineHi = LineLo + LineBytes;
    for (const RangeFault &R : Mem.Ranges) {
      if (LineHi <= R.Lo || LineLo >= R.Hi)
        continue;
      if (!lineIsFaulty(R, L))
        continue;
      if (R.Duration == FaultDuration::Transient) {
        if (!HealedLines.insert(L).second)
          continue; // Already fired once; the line has healed.
      }
      ++Stats.MemFaultsInjected;
      FaultAddr = std::max({Addr, LineLo, R.Lo});
      return true;
    }
  }
  return false;
}

rtm::AbortReason FaultInjector::injectAbort(bool AtCommit) {
  (void)AtCommit;
  ++Stats.TxOpsSeen;
  if (Stats.TxAbortsInjected >= Tx.MaxInjected)
    return rtm::AbortReason::None;

  bool Hit = false;
  if (Tx.AbortNthOp != 0)
    Hit = Tx.RepeatNth ? Stats.TxOpsSeen % Tx.AbortNthOp == 0
                       : Stats.TxOpsSeen == Tx.AbortNthOp;
  if (!Hit && Tx.AbortProb > 0.0)
    Hit = hashToUnit(Tx.Seed, Stats.TxOpsSeen) < Tx.AbortProb;
  if (!Hit)
    return rtm::AbortReason::None;
  ++Stats.TxAbortsInjected;
  return Tx.Reason;
}

std::string FaultInjector::describe() const {
  std::string S = "faults{seed=" + std::to_string(Mem.Seed);
  if (Mem.FailNthAccess != 0)
    S += ", mem.nth=" + std::to_string(Mem.FailNthAccess) +
         (Mem.RepeatNth ? " (repeat)" : "");
  for (const RangeFault &R : Mem.Ranges)
    S += ", mem.range=[" + std::to_string(R.Lo) + "," +
         std::to_string(R.Hi) + ")@" + std::to_string(R.Prob) +
         (R.Duration == FaultDuration::Transient ? " transient"
                                                 : " persistent");
  if (Tx.AbortNthOp != 0)
    S += ", tx.nth=" + std::to_string(Tx.AbortNthOp) +
         (Tx.RepeatNth ? " (repeat)" : "");
  if (Tx.AbortProb > 0.0)
    S += ", tx.prob=" + std::to_string(Tx.AbortProb);
  if (Tx.enabled())
    S += std::string(", tx.reason=") + rtm::abortReasonName(Tx.Reason);
  S += "}";
  return S;
}

bool faults::parseRangeFault(const std::string &Spec, RangeFault &Out,
                             std::string &Error) {
  // LO:HI:PROB[:transient|persistent]
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Spec.size()) {
    size_t Colon = Spec.find(':', Start);
    if (Colon == std::string::npos) {
      Parts.push_back(Spec.substr(Start));
      break;
    }
    Parts.push_back(Spec.substr(Start, Colon - Start));
    Start = Colon + 1;
  }
  if (Parts.size() < 3 || Parts.size() > 4) {
    Error = "expected LO:HI:PROB[:transient|persistent]";
    return false;
  }
  Out.Lo = std::strtoull(Parts[0].c_str(), nullptr, 0);
  Out.Hi = std::strtoull(Parts[1].c_str(), nullptr, 0);
  Out.Prob = std::atof(Parts[2].c_str());
  Out.Duration = FaultDuration::Persistent;
  if (Parts.size() == 4) {
    if (Parts[3] == "transient")
      Out.Duration = FaultDuration::Transient;
    else if (Parts[3] != "persistent") {
      Error = "duration must be 'transient' or 'persistent'";
      return false;
    }
  }
  if (Out.Hi <= Out.Lo) {
    Error = "empty address range";
    return false;
  }
  if (Out.Prob < 0.0 || Out.Prob > 1.0) {
    Error = "probability must be in [0, 1]";
    return false;
  }
  return true;
}
