//===- pdg/Pdg.cpp --------------------------------------------------------===//

#include "pdg/Pdg.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace flexvec;
using namespace flexvec::pdg;
using namespace flexvec::ir;

const char *pdg::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Control:
    return "control";
  case DepKind::ControlCarried:
    return "control-carried";
  case DepKind::ScalarFlow:
    return "scalar-flow";
  case DepKind::ScalarFlowCarried:
    return "scalar-flow-carried";
  case DepKind::ScalarAnti:
    return "scalar-anti";
  case DepKind::MemoryFlowCarried:
    return "memory-flow-carried";
  case DepKind::MemoryMaybeCarried:
    return "memory-maybe-carried";
  }
  unreachable("unknown dep kind");
}

std::optional<AffineSubscript> pdg::matchAffine(const Expr *E) {
  if (E->Kind == ExprKind::IndexRef)
    return AffineSubscript{0};
  if (E->Kind == ExprKind::Binary) {
    const Expr *L = E->Lhs;
    const Expr *R = E->Rhs;
    if (E->Op == BinOp::Add) {
      if (L->Kind == ExprKind::IndexRef && R->Kind == ExprKind::ConstInt)
        return AffineSubscript{R->IntValue};
      if (R->Kind == ExprKind::IndexRef && L->Kind == ExprKind::ConstInt)
        return AffineSubscript{L->IntValue};
    }
    if (E->Op == BinOp::Sub && L->Kind == ExprKind::IndexRef &&
        R->Kind == ExprKind::ConstInt)
      return AffineSubscript{-R->IntValue};
  }
  return std::nullopt;
}

namespace {

/// Collects scalar reads and array reads from an expression tree.
void collectExprUses(const Expr *E, std::vector<int> &ScalarIds,
                     std::vector<const Expr *> &ArrayReads) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::IndexRef:
    return;
  case ExprKind::ScalarRef:
    ScalarIds.push_back(E->ScalarId);
    return;
  case ExprKind::ArrayRef:
    ArrayReads.push_back(E);
    collectExprUses(E->Index, ScalarIds, ArrayReads);
    return;
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    collectExprUses(E->Lhs, ScalarIds, ArrayReads);
    collectExprUses(E->Rhs, ScalarIds, ArrayReads);
    return;
  }
  unreachable("unknown expr kind");
}

} // namespace

Pdg::Pdg(const LoopFunction &Fn) : F(Fn) {
  NumNodes = F.numStmts() + 1;
  Stmts.assign(NumNodes, nullptr);
  LexPos.assign(NumNodes, 0);
  CtrlParent.assign(NumNodes, HeaderNode);
  InElse.assign(NumNodes, false);
  Uses.assign(NumNodes, {});

  // Pre-order walk establishing lexical positions and control parents.
  int NextPos = 1;
  std::function<void(const std::vector<Stmt *> &, int, bool)> Walk =
      [&](const std::vector<Stmt *> &Body, int Parent, bool IsElse) {
        for (const Stmt *S : Body) {
          assert(S->Id > 0 && S->Id < NumNodes && "bad statement id");
          Stmts[S->Id] = S;
          LexPos[S->Id] = NextPos++;
          CtrlParent[S->Id] = Parent;
          InElse[S->Id] = IsElse;
          if (S->Kind == StmtKind::If) {
            Walk(S->Then, S->Id, false);
            Walk(S->Else, S->Id, true);
          }
        }
      };
  Walk(F.body(), HeaderNode, false);

  // Per-node scalar uses.
  for (int N = 1; N < NumNodes; ++N) {
    const Stmt *S = Stmts[N];
    if (!S)
      fatalError("statement " + std::to_string(N) +
                 " was created but never placed in the loop body");
    std::vector<const Expr *> Reads;
    switch (S->Kind) {
    case StmtKind::AssignScalar:
      collectExprUses(S->Value, Uses[N], Reads);
      break;
    case StmtKind::StoreArray:
      collectExprUses(S->Index, Uses[N], Reads);
      collectExprUses(S->Value, Uses[N], Reads);
      break;
    case StmtKind::If:
      collectExprUses(S->Cond, Uses[N], Reads);
      break;
    case StmtKind::Break:
      break;
    }
    std::sort(Uses[N].begin(), Uses[N].end());
    Uses[N].erase(std::unique(Uses[N].begin(), Uses[N].end()), Uses[N].end());
  }

  buildControl();
  buildScalar();
  buildMemory();
}

void Pdg::addEdge(DepEdge E) { Edges.push_back(E); }

void Pdg::buildControl() {
  // Structured control dependence: each statement depends on its innermost
  // controlling if (or the loop header).
  for (int N = 1; N < NumNodes; ++N)
    addEdge(DepEdge{CtrlParent[N], N, DepKind::Control, -1, -1, 0});

  // Early exits: the guard of each break gets a backward control arc to the
  // loop header (Figure 5(c)), and all lexically later statements become
  // control dependent on the guard.
  for (int N = 1; N < NumNodes; ++N) {
    const Stmt *S = Stmts[N];
    if (S->Kind != StmtKind::Break)
      continue;
    int Guard = CtrlParent[N];
    if (Guard == HeaderNode)
      fatalError("unconditional break: loop body is dead code");
    addEdge(DepEdge{Guard, HeaderNode, DepKind::ControlCarried, -1, -1, 0});
    for (int M = 1; M < NumNodes; ++M) {
      if (M == Guard || LexPos[M] <= LexPos[Guard])
        continue;
      // Skip descendants of the guard; they already depend on it.
      int P = CtrlParent[M];
      bool Desc = false;
      while (P != HeaderNode) {
        if (P == Guard) {
          Desc = true;
          break;
        }
        P = CtrlParent[P];
      }
      if (!Desc)
        addEdge(DepEdge{Guard, M, DepKind::Control, -1, -1, 0});
    }
  }
}

void Pdg::buildScalar() {
  // True when def node \p D2 executes whenever node \p U executes, earlier
  // in the same iteration: D2 lexically precedes U and D2's controlling if
  // is an ancestor (or self) of U.
  auto killsBefore = [this](int D2, int U) {
    if (LexPos[D2] >= LexPos[U])
      return false;
    int Parent = CtrlParent[D2];
    if (Parent == HeaderNode)
      return true;
    for (int A = U; A != HeaderNode; A = CtrlParent[A])
      if (CtrlParent[A] == Parent && InElse[A] == InElse[D2])
        return true;
    return false;
  };

  for (int D = 1; D < NumNodes; ++D) {
    const Stmt *Def = Stmts[D];
    if (Def->Kind != StmtKind::AssignScalar)
      continue;
    int S = Def->ScalarId;
    for (int U = 1; U < NumNodes; ++U) {
      bool UsesS = std::binary_search(Uses[U].begin(), Uses[U].end(), S);
      if (!UsesS)
        continue;
      if (LexPos[U] > LexPos[D]) {
        addEdge(DepEdge{D, U, DepKind::ScalarFlow, S, -1, 0});
      } else {
        // Use at or before the def: the def reaches the use in the next
        // iteration — the backward arc FlexVec relaxes — unless another
        // def of S is guaranteed to execute before the use and kill the
        // incoming value.
        bool Killed = false;
        for (int D2 = 1; D2 < NumNodes && !Killed; ++D2) {
          const Stmt *Other = Stmts[D2];
          if (Other->Kind == StmtKind::AssignScalar && Other->ScalarId == S)
            Killed = killsBefore(D2, U);
        }
        if (!Killed)
          addEdge(DepEdge{D, U, DepKind::ScalarFlowCarried, S, -1, 1});
      }
      if (LexPos[U] < LexPos[D])
        addEdge(DepEdge{U, D, DepKind::ScalarAnti, S, -1, 0});
    }
  }
}

void Pdg::buildMemory() {
  // Gather loads per node.
  std::vector<std::vector<const Expr *>> LoadsPerNode(NumNodes);
  for (int N = 1; N < NumNodes; ++N) {
    const Stmt *S = Stmts[N];
    std::vector<int> Dummy;
    switch (S->Kind) {
    case StmtKind::AssignScalar:
      collectExprUses(S->Value, Dummy, LoadsPerNode[N]);
      break;
    case StmtKind::StoreArray:
      collectExprUses(S->Index, Dummy, LoadsPerNode[N]);
      collectExprUses(S->Value, Dummy, LoadsPerNode[N]);
      break;
    case StmtKind::If:
      collectExprUses(S->Cond, Dummy, LoadsPerNode[N]);
      break;
    case StmtKind::Break:
      break;
    }
  }

  for (int SN = 1; SN < NumNodes; ++SN) {
    const Stmt *Store = Stmts[SN];
    if (Store->Kind != StmtKind::StoreArray)
      continue;
    std::optional<AffineSubscript> StoreAff = matchAffine(Store->Index);
    for (int LN = 1; LN < NumNodes; ++LN) {
      for (const Expr *Load : LoadsPerNode[LN]) {
        if (Load->ArrayId != Store->ArrayId)
          continue;
        std::optional<AffineSubscript> LoadAff = matchAffine(Load->Index);
        if (StoreAff && LoadAff) {
          int64_t Distance = StoreAff->Offset - LoadAff->Offset;
          if (Distance > 0)
            addEdge(DepEdge{SN, LN, DepKind::MemoryFlowCarried,
                            -1, Store->ArrayId, Distance, Load});
          // Distance 0 is an intra-iteration relation handled by lexical
          // order; negative distances are anti dependences a vector read-
          // before-write already respects.
          continue;
        }
        // At least one subscript is not provably affine: a runtime-resolved
        // dependence (the VPCONFLICTM candidates).
        addEdge(DepEdge{SN, LN, DepKind::MemoryMaybeCarried, -1,
                        Store->ArrayId, 0, Load});
      }
    }
  }
}

std::vector<size_t> Pdg::edgesOfKind(DepKind K) const {
  std::vector<size_t> Result;
  for (size_t I = 0; I < Edges.size(); ++I)
    if (Edges[I].Kind == K)
      Result.push_back(I);
  return Result;
}

std::vector<std::vector<int>> Pdg::stronglyConnectedComponents() const {
  std::vector<bool> Alive(Edges.size(), true);
  return sccImpl(Alive);
}

std::vector<std::vector<int>> Pdg::stronglyConnectedComponents(
    const std::vector<size_t> &RemovedEdges) const {
  std::vector<bool> Alive(Edges.size(), true);
  for (size_t I : RemovedEdges) {
    assert(I < Edges.size() && "edge index out of range");
    Alive[I] = false;
  }
  return sccImpl(Alive);
}

std::vector<std::vector<int>> Pdg::nontrivialSccs() const {
  std::vector<std::vector<int>> All = stronglyConnectedComponents();
  std::vector<std::vector<int>> Result;
  for (auto &Scc : All) {
    if (Scc.size() > 1) {
      Result.push_back(Scc);
      continue;
    }
    // Single node with a self edge is still a cycle.
    int N = Scc[0];
    for (const DepEdge &E : Edges)
      if (E.From == N && E.To == N) {
        Result.push_back(Scc);
        break;
      }
  }
  return Result;
}

std::vector<std::vector<int>>
Pdg::sccImpl(const std::vector<bool> &EdgeAlive) const {
  // Tarjan's algorithm (iterative-friendly sizes here; recursion is fine
  // for statement counts).
  std::vector<std::vector<int>> Adj(NumNodes);
  for (size_t I = 0; I < Edges.size(); ++I)
    if (EdgeAlive[I])
      Adj[Edges[I].From].push_back(Edges[I].To);

  std::vector<int> IndexOf(NumNodes, -1), LowLink(NumNodes, 0);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<int> Stack;
  std::vector<std::vector<int>> Sccs;
  int NextIndex = 0;

  std::function<void(int)> Strongconnect = [&](int N) {
    IndexOf[N] = LowLink[N] = NextIndex++;
    Stack.push_back(N);
    OnStack[N] = true;
    for (int M : Adj[N]) {
      if (IndexOf[M] == -1) {
        Strongconnect(M);
        LowLink[N] = std::min(LowLink[N], LowLink[M]);
      } else if (OnStack[M]) {
        LowLink[N] = std::min(LowLink[N], IndexOf[M]);
      }
    }
    if (LowLink[N] == IndexOf[N]) {
      std::vector<int> Scc;
      int M;
      do {
        M = Stack.back();
        Stack.pop_back();
        OnStack[M] = false;
        Scc.push_back(M);
      } while (M != N);
      std::sort(Scc.begin(), Scc.end());
      Sccs.push_back(std::move(Scc));
    }
  };

  for (int N = 0; N < NumNodes; ++N)
    if (IndexOf[N] == -1)
      Strongconnect(N);

  // Tarjan emits components in reverse topological order; flip it.
  std::reverse(Sccs.begin(), Sccs.end());
  return Sccs;
}

std::string Pdg::dump() const {
  std::string Out = "pdg for " + F.name() + "\n";
  for (int N = 1; N < NumNodes; ++N)
    Out += "  node " + std::to_string(N) + ": " + Stmts[N]->str(F) + "\n";
  for (const DepEdge &E : Edges) {
    Out += "  edge S" + std::to_string(E.From) + " -> S" +
           std::to_string(E.To) + " [" + depKindName(E.Kind);
    if (E.ScalarId >= 0)
      Out += ", scalar " + F.scalar(E.ScalarId).Name;
    if (E.ArrayId >= 0)
      Out += ", array " + F.array(E.ArrayId).Name;
    if (E.Distance > 0)
      Out += ", distance " + std::to_string(E.Distance);
    Out += "]\n";
  }
  return Out;
}
