//===- pdg/Pdg.h - Program Dependence Graph ---------------------*- C++ -*-===//
//
// Statement-level Program Dependence Graph (Ferrante et al.) for a
// LoopFunction, in the form the paper's analysis module consumes
// (Section 4, Figures 5-7):
//
//  * Node 0 is the virtual loop header; statement nodes use statement ids.
//  * Control dependences follow the structured control flow; a conditional
//    break adds the "false backward control dependence arc from the
//    immediate dominator of the exit statement to the loop header".
//  * Scalar data dependences distinguish intra-iteration flow from
//    loop-carried flow (the backward arcs FlexVec relaxes).
//  * Memory dependences are classified by subscript analysis: independent,
//    provably carried (affine distance), or runtime "maybe" (non-affine
//    subscripts) — the latter are the conflict-detection candidates.
//
// Strongly connected components are computed with Tarjan's algorithm.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_PDG_PDG_H
#define FLEXVEC_PDG_PDG_H

#include "ir/IR.h"

#include <optional>
#include <string>
#include <vector>

namespace flexvec {
namespace pdg {

/// Dependence edge kinds.
enum class DepKind : uint8_t {
  Control,            ///< Structured control dependence (header/if → child).
  ControlCarried,     ///< Backward control arc from an early-exit guard to
                      ///< the loop header.
  ScalarFlow,         ///< Def → lexically later use, same iteration.
  ScalarFlowCarried,  ///< Def → use in a later iteration (backward arc).
  ScalarAnti,         ///< Use → lexically later def, same iteration.
  MemoryFlowCarried,  ///< Provable cross-iteration store → load (affine).
  MemoryMaybeCarried, ///< Possible cross-iteration store → load that only
                      ///< run-time conflict detection can resolve.
};

const char *depKindName(DepKind K);

/// True for the backward arcs that make a loop traditionally
/// non-vectorizable and that FlexVec considers for relaxation.
inline bool isCarried(DepKind K) {
  return K == DepKind::ControlCarried || K == DepKind::ScalarFlowCarried ||
         K == DepKind::MemoryFlowCarried || K == DepKind::MemoryMaybeCarried;
}

/// One dependence edge between PDG nodes (0 = loop header).
struct DepEdge {
  int From = 0;
  int To = 0;
  DepKind Kind = DepKind::Control;
  int ScalarId = -1; ///< For scalar dependences.
  int ArrayId = -1;  ///< For memory dependences.
  /// For provable memory dependences: the dependence distance in
  /// iterations.
  int64_t Distance = 0;
  /// For memory dependences: the ArrayRef expression at the sink (load)
  /// end, whose subscript becomes a VPCONFLICTM operand.
  const ir::Expr *LoadExpr = nullptr;
};

/// Result of affine subscript analysis: Index = i + Offset.
struct AffineSubscript {
  int64_t Offset = 0;
};

/// Attempts to match \p E as (i + c), (c + i), (i - c), or plain i.
std::optional<AffineSubscript> matchAffine(const ir::Expr *E);

/// The PDG for one LoopFunction.
class Pdg {
public:
  /// Node id of the virtual loop header.
  static constexpr int HeaderNode = 0;

  /// Builds the PDG for \p F.
  explicit Pdg(const ir::LoopFunction &F);

  const ir::LoopFunction &function() const { return F; }
  const std::vector<DepEdge> &edges() const { return Edges; }
  int numNodes() const { return NumNodes; }

  /// The statement for a node id (nullptr for the header).
  const ir::Stmt *stmtOf(int Node) const { return Stmts[Node]; }

  /// Lexical position of a node (pre-order over the body; header is 0).
  int lexicalPos(int Node) const { return LexPos[Node]; }

  /// The innermost controlling if of a statement node (HeaderNode if it is
  /// top-level).
  int controlParent(int Node) const { return CtrlParent[Node]; }

  /// True if node \p Node is in the false-region of its control parent.
  bool inElseRegion(int Node) const { return InElse[Node]; }

  /// Scalar ids read (transitively through expressions) by each node.
  const std::vector<int> &scalarUses(int Node) const { return Uses[Node]; }

  /// Strongly connected components over all edges, in topological order of
  /// the condensation. Components are lists of node ids.
  std::vector<std::vector<int>> stronglyConnectedComponents() const;

  /// SCCs computed with the given edges removed (by index into edges()).
  std::vector<std::vector<int>>
  stronglyConnectedComponents(const std::vector<size_t> &RemovedEdges) const;

  /// Non-trivial SCCs (more than one node, or a self-loop).
  std::vector<std::vector<int>> nontrivialSccs() const;

  /// Edge indices with the given kind.
  std::vector<size_t> edgesOfKind(DepKind K) const;

  /// Textual dump for tests and debugging.
  std::string dump() const;

private:
  void addEdge(DepEdge E);
  void buildControl();
  void buildScalar();
  void buildMemory();

  std::vector<std::vector<int>>
  sccImpl(const std::vector<bool> &EdgeAlive) const;

  const ir::LoopFunction &F;
  int NumNodes = 1;
  std::vector<const ir::Stmt *> Stmts; ///< Node id → statement.
  std::vector<int> LexPos;
  std::vector<int> CtrlParent;
  std::vector<bool> InElse;
  std::vector<std::vector<int>> Uses;
  std::vector<DepEdge> Edges;
};

} // namespace pdg
} // namespace flexvec

#endif // FLEXVEC_PDG_PDG_H
