//===- profile/LoopProfiler.h - Pin-like loop profiler ----------*- C++ -*-===//
//
// The paper drives hotloop selection with a Pin-based profiling tool that
// "detects loops with cross iteration dependency patterns ... collects
// trip counts and the effective vector length" (Section 5). This module
// plays that role over the reference interpreter: it observes executions
// of a loop, counts the dynamic dependency events for each relaxed
// pattern, and produces the LoopProfile the cost model consumes.
//
// Effective vector length is the paper's definition: the ratio of the
// average trip count to the average number of times a cross-iteration
// dependency is detected at runtime.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_PROFILE_LOOPPROFILER_H
#define FLEXVEC_PROFILE_LOOPPROFILER_H

#include "analysis/CostModel.h"
#include "analysis/Patterns.h"
#include "ir/Interp.h"

#include <cstdint>

namespace flexvec {
namespace profile {

/// Raw event counts from one or more observed executions.
struct ProfileCounts {
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;
  uint64_t CondUpdateEvents = 0; ///< Relaxed scalar updates that fired.
  uint64_t ConflictEvents = 0;   ///< Stores hitting a recently-read slot.
  uint64_t BreakEvents = 0;      ///< Early exits taken.

  uint64_t totalDepEvents() const {
    return CondUpdateEvents + ConflictEvents + BreakEvents;
  }
};

/// Observes interpreter executions and accumulates dependency events for
/// the patterns in a VectorizationPlan.
class LoopProfiler : public ir::Observer {
public:
  /// \p VectorLength is the hardware VL used to window conflict detection
  /// (a store conflicts when a lane within the same prospective vector
  /// iteration read or wrote the location).
  LoopProfiler(const ir::LoopFunction &F,
               const analysis::VectorizationPlan &Plan,
               unsigned VectorLength = 16);

  /// Runs one profiled execution (call any number of times).
  void profileRun(mem::Memory &M, ir::Bindings B);

  const ProfileCounts &counts() const { return Counts; }

  /// Summarizes into the cost-model form; \p Coverage is supplied by the
  /// caller (it is a whole-application property).
  analysis::LoopProfile summarize(double Coverage) const;

  // Observer callbacks.
  void onIterationStart(int64_t Iter) override;
  void onScalarAssign(const ir::Stmt *S, int64_t Iter, int64_t Old,
                      int64_t New) override;
  void onArrayLoad(int ArrayId, int64_t Index, int64_t Iter) override;
  void onArrayStore(const ir::Stmt *S, int64_t Index, int64_t Iter) override;
  void onBreak(const ir::Stmt *S, int64_t Iter) override;

private:
  const ir::LoopFunction &F;
  const analysis::VectorizationPlan &Plan;
  unsigned VL;

  std::vector<bool> IsUpdateNode;   ///< By statement id.
  std::vector<bool> IsConflictArray; ///< By array id.

  /// Recently touched indices of conflict arrays within the current
  /// VL-iteration window: (array, index, iteration).
  struct Touch {
    int ArrayId;
    int64_t Index;
    int64_t Iter;
  };
  std::vector<Touch> RecentReads;

  // The paper counts "the number of times a cross iteration dependency is
  // detected" — at most once per iteration per mechanism.
  int64_t LastCondUpdateIter = -1;
  int64_t LastConflictIter = -1;

  ProfileCounts Counts;
};

} // namespace profile
} // namespace flexvec

#endif // FLEXVEC_PROFILE_LOOPPROFILER_H
