//===- profile/LoopProfiler.cpp -------------------------------------------===//

#include "profile/LoopProfiler.h"

using namespace flexvec;
using namespace flexvec::profile;
using namespace flexvec::ir;

LoopProfiler::LoopProfiler(const LoopFunction &F,
                           const analysis::VectorizationPlan &Plan,
                           unsigned VectorLength)
    : F(F), Plan(Plan), VL(VectorLength) {
  IsUpdateNode.assign(static_cast<size_t>(F.numStmts()) + 1, false);
  for (const auto &V : Plan.CondUpdateVpls)
    for (const auto &U : V.Updates)
      IsUpdateNode[static_cast<size_t>(U.UpdateNode)] = true;
  IsConflictArray.assign(F.arrays().size(), false);
  for (const auto &V : Plan.MemConflictVpls)
    IsConflictArray[static_cast<size_t>(V.ArrayId)] = true;
}

void LoopProfiler::profileRun(mem::Memory &M, Bindings B) {
  RecentReads.clear();
  LastCondUpdateIter = -1;
  LastConflictIter = -1;
  ++Counts.Invocations;
  Interpreter Interp(M);
  InterpResult R = Interp.run(F, B, this);
  Counts.Iterations += static_cast<uint64_t>(R.IterationsExecuted);
}

void LoopProfiler::onIterationStart(int64_t Iter) {
  // Expire window entries older than one prospective vector iteration.
  int64_t Cutoff = Iter - static_cast<int64_t>(VL) + 1;
  size_t Keep = 0;
  for (const Touch &T : RecentReads)
    if (T.Iter >= Cutoff)
      RecentReads[Keep++] = T;
  RecentReads.resize(Keep);
}

void LoopProfiler::onScalarAssign(const Stmt *S, int64_t Iter, int64_t Old,
                                  int64_t New) {
  if (!IsUpdateNode[static_cast<size_t>(S->Id)])
    return;
  if (Old != New && Iter != LastCondUpdateIter) {
    ++Counts.CondUpdateEvents;
    LastCondUpdateIter = Iter;
  }
}

void LoopProfiler::onArrayLoad(int ArrayId, int64_t Index, int64_t Iter) {
  if (ArrayId < 0 || static_cast<size_t>(ArrayId) >= IsConflictArray.size() ||
      !IsConflictArray[static_cast<size_t>(ArrayId)])
    return;
  // A read-after-write dependency fires when an earlier scalar iteration
  // within the same prospective vector iteration stored to this slot —
  // exactly what VPCONFLICTM detects lane-to-lane.
  if (Iter == LastConflictIter)
    return;
  for (const Touch &T : RecentReads) {
    if (T.ArrayId == ArrayId && T.Index == Index && T.Iter < Iter) {
      ++Counts.ConflictEvents;
      LastConflictIter = Iter;
      break;
    }
  }
}

void LoopProfiler::onArrayStore(const Stmt *S, int64_t Index, int64_t Iter) {
  if (static_cast<size_t>(S->ArrayId) >= IsConflictArray.size() ||
      !IsConflictArray[static_cast<size_t>(S->ArrayId)])
    return;
  RecentReads.push_back(Touch{S->ArrayId, Index, Iter});
}

void LoopProfiler::onBreak(const Stmt *, int64_t) { ++Counts.BreakEvents; }

analysis::LoopProfile LoopProfiler::summarize(double Coverage) const {
  analysis::LoopProfile P;
  P.Coverage = Coverage;
  if (Counts.Invocations == 0)
    return P;
  P.AvgTripCount = static_cast<double>(Counts.Iterations) /
                   static_cast<double>(Counts.Invocations);
  P.AvgDepEvents = static_cast<double>(Counts.totalDepEvents()) /
                   static_cast<double>(Counts.Invocations);
  P.EffectiveVL = P.AvgTripCount / (P.AvgDepEvents + 1.0);
  return P;
}
