//===- obs/BenchDiff.h - Bench JSON regression comparator -------*- C++ -*-===//
//
// The engine behind `flexvec-benchdiff baseline.json current.json`: loads
// two flexvec-bench-figure8/v2 documents, pairs cells by
// (benchmark, variant), and decides pass/fail. The CI bench-gate job runs
// this against the checked-in bench/BENCH_figure8.baseline.json on every
// PR (docs/OBSERVABILITY.md describes the thresholds and the
// FLEXVEC_UPDATE_BASELINE regen flow).
//
// Exit-code contract, shared with flexvec-bench and flexvec-cli:
//   0  no regression
//   1  regression (correctness flipped, cycles/geomean beyond tolerance,
//      a baseline cell disappeared, or a configured metric threshold
//      tripped)
//   2  unusable input (parse failure, schema mismatch, different
//      seed/scale/trips — the two runs are not comparable)
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_OBS_BENCHDIFF_H
#define FLEXVEC_OBS_BENCHDIFF_H

#include "support/Json.h"

#include <string>
#include <utility>
#include <vector>

namespace flexvec {
namespace obs {

struct BenchDiffOptions {
  /// Max per-cell simulated-cycle growth, percent, before failing. Cycles
  /// are deterministic event counts, so any nonzero growth is a real
  /// change; the tolerance only absorbs intentional small modelling
  /// tweaks that are not worth a baseline bump.
  double CyclesTolerancePct = 2.0;
  /// Max drop in geomean overall speedup (spec and apps), percent.
  double GeomeanTolerancePct = 2.0;
  /// Per-metric failure thresholds on the top-level aggregate `metrics`
  /// object: (name, max growth percent). Metrics without a threshold are
  /// reported when they drift but never fail the diff.
  std::vector<std::pair<std::string, double>> MetricThresholds;
};

struct BenchDiffReport {
  /// 0 / 1 / 2 per the contract above.
  int ExitCode = 0;
  /// Human-readable findings, one per line: regressions first, then
  /// informational drift notes.
  std::vector<std::string> Regressions;
  std::vector<std::string> Notes;
};

/// Compares \p Current against \p Baseline (both parsed bench documents).
BenchDiffReport diffBench(const Json &Baseline, const Json &Current,
                          const BenchDiffOptions &Opts);

/// Convenience wrapper: reads and parses both files, then diffs. IO and
/// parse errors land in the report as ExitCode 2.
BenchDiffReport diffBenchFiles(const std::string &BaselinePath,
                               const std::string &CurrentPath,
                               const BenchDiffOptions &Opts);

} // namespace obs
} // namespace flexvec

#endif // FLEXVEC_OBS_BENCHDIFF_H
