//===- obs/Metrics.cpp ----------------------------------------------------===//

#include "obs/Metrics.h"

#include <cassert>

using namespace flexvec;
using namespace flexvec::obs;

Registry::Entry &Registry::entry(const std::string &Name, Entry::Kind K) {
  auto It = Index.find(Name);
  if (It != Index.end()) {
    Entry &E = *Entries[It->second];
    assert(E.K == K && "metric re-registered with a different kind");
    return E;
  }
  auto E = std::make_unique<Entry>();
  E->K = K;
  E->Name = Name;
  Entries.push_back(std::move(E));
  Index.emplace(Name, Entries.size() - 1);
  return *Entries.back();
}

const Registry::Entry *Registry::find(const std::string &Name,
                                      Entry::Kind K) const {
  auto It = Index.find(Name);
  if (It == Index.end())
    return nullptr;
  const Entry &E = *Entries[It->second];
  return E.K == K ? &E : nullptr;
}

Counter &Registry::counter(const std::string &Name) {
  return entry(Name, Entry::Kind::Counter).C;
}

Gauge &Registry::gauge(const std::string &Name) {
  return entry(Name, Entry::Kind::Gauge).G;
}

Histogram &Registry::histogram(const std::string &Name, unsigned NumBuckets) {
  Entry &E = entry(Name, Entry::Kind::Histogram);
  if (E.H.numBuckets() < NumBuckets)
    E.H.Buckets.resize(NumBuckets, 0);
  return E.H;
}

Timer &Registry::timer(const std::string &Name) {
  return entry(Name, Entry::Kind::Timer).T;
}

const Counter *Registry::findCounter(const std::string &Name) const {
  const Entry *E = find(Name, Entry::Kind::Counter);
  return E ? &E->C : nullptr;
}

const Histogram *Registry::findHistogram(const std::string &Name) const {
  const Entry *E = find(Name, Entry::Kind::Histogram);
  return E ? &E->H : nullptr;
}

void Registry::copyFrom(const Registry &O) {
  Entries.reserve(O.Entries.size());
  for (const auto &E : O.Entries) {
    Entries.push_back(std::make_unique<Entry>(*E));
    Index.emplace(E->Name, Entries.size() - 1);
  }
}

void Registry::merge(const Registry &O) {
  for (const auto &EP : O.Entries) {
    const Entry &S = *EP;
    switch (S.K) {
    case Entry::Kind::Counter:
      counter(S.Name).inc(S.C.value());
      break;
    case Entry::Kind::Gauge:
      // Gauges are per-scope derived values; aggregating by sum would be
      // meaningless, so merge drops them.
      break;
    case Entry::Kind::Histogram: {
      Histogram &D = histogram(S.Name, S.H.numBuckets());
      for (unsigned B = 0; B < S.H.numBuckets(); ++B)
        if (S.H.bucket(B))
          D.addToBucket(B, S.H.bucket(B));
      break;
    }
    case Entry::Kind::Timer:
      timer(S.Name).add(S.T.ms());
      break;
    }
  }
}

Json Registry::toJson(bool IncludeTimers) const {
  Json Out = Json::object();
  for (const auto &EP : Entries) {
    const Entry &E = *EP;
    switch (E.K) {
    case Entry::Kind::Counter:
      Out.set(E.Name, Json(E.C.value()));
      break;
    case Entry::Kind::Gauge:
      Out.set(E.Name, Json(E.G.value()));
      break;
    case Entry::Kind::Histogram: {
      Json Buckets = Json::array();
      for (unsigned B = 0; B < E.H.numBuckets(); ++B)
        Buckets.push(Json(E.H.bucket(B)));
      Out.set(E.Name, std::move(Buckets));
      break;
    }
    case Entry::Kind::Timer:
      if (IncludeTimers)
        Out.set(E.Name, Json(E.T.ms()));
      break;
    }
  }
  return Out;
}
