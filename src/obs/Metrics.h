//===- obs/Metrics.h - Structured metrics registry --------------*- C++ -*-===//
//
// The observability substrate behind the per-cell `metrics` objects in
// BENCH_figure8.json (schema v2) and docs/OBSERVABILITY.md: named
// counters, gauges, fixed-bucket histograms, and wall-clock timers
// collected in an insertion-ordered Registry that renders to the
// deterministic JSON writer (support/Json.h).
//
// Design rules:
//
//   * Hot paths never touch a Registry. The emulator, transaction
//     manager, and timing model keep their plain always-on stats structs
//     (ExecStats, TxStats, SimStats) — single-increment counters with no
//     indirection — and each layer exports them into a Registry *after*
//     the run via its recordMetrics() hook. The disabled path therefore
//     costs exactly nothing on the hot loop.
//   * For call sites that do hold an optional `Registry *`, the null-safe
//     free helpers (obs::inc / obs::set / obs::observe) and the
//     ScopedTimer(nullptr, ...) constructor no-op without reading the
//     clock, so "off" is a single branch.
//   * Determinism: counters, gauges, and histograms derive from event
//     counts and are byte-stable across worker counts and machines;
//     timers are wall-clock and are excluded from deterministic exports
//     (toJson(/*IncludeTimers=*/false)).
//   * Merging sums counters, histograms, and timers in the target's
//     insertion order (new names append in source order). Gauges are
//     per-scope derived values (e.g. IPC) and are skipped by merge();
//     recompute them for aggregates.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_OBS_METRICS_H
#define FLEXVEC_OBS_METRICS_H

#include "support/Json.h"

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace flexvec {
namespace obs {

/// Monotonic event counter.
class Counter {
public:
  void inc(uint64_t N = 1) { N_ += N; }
  uint64_t value() const { return N_; }

private:
  uint64_t N_ = 0;
};

/// Point-in-time derived value (a rate, a ratio). Not merged across
/// scopes — recompute for aggregates.
class Gauge {
public:
  void set(double V) { V_ = V; }
  double value() const { return V_; }

private:
  double V_ = 0.0;
};

/// Fixed-bucket histogram over small non-negative integers; observations
/// >= the bucket count land in the last bucket.
class Histogram {
public:
  explicit Histogram(unsigned NumBuckets = 1) : Buckets(NumBuckets, 0) {}

  void observe(uint64_t Value) {
    unsigned B = Value < Buckets.size() ? static_cast<unsigned>(Value)
                                        : static_cast<unsigned>(Buckets.size()) - 1;
    ++Buckets[B];
    ++Total_;
  }
  /// Bulk add into one bucket (used when harvesting plain stats arrays).
  void addToBucket(unsigned Bucket, uint64_t Count) {
    unsigned B = Bucket < Buckets.size()
                     ? Bucket
                     : static_cast<unsigned>(Buckets.size()) - 1;
    Buckets[B] += Count;
    Total_ += Count;
  }

  uint64_t bucket(unsigned Idx) const { return Buckets[Idx]; }
  unsigned numBuckets() const { return static_cast<unsigned>(Buckets.size()); }
  uint64_t total() const { return Total_; }

private:
  friend class Registry;
  std::vector<uint64_t> Buckets;
  uint64_t Total_ = 0;
};

/// Accumulated wall-clock time in milliseconds. Non-deterministic by
/// nature; excluded from deterministic JSON exports.
class Timer {
public:
  void add(double Ms) { Ms_ += Ms; }
  double ms() const { return Ms_; }

private:
  double Ms_ = 0.0;
};

/// Insertion-ordered collection of named metrics. Rendering walks the
/// entries in first-registration order, so two registries populated by the
/// same code path render byte-identically.
class Registry {
public:
  Registry() = default;
  Registry(const Registry &O) { copyFrom(O); }
  Registry &operator=(const Registry &O) {
    if (this != &O) {
      Entries.clear();
      Index.clear();
      copyFrom(O);
    }
    return *this;
  }
  Registry(Registry &&) = default;
  Registry &operator=(Registry &&) = default;

  /// Returns the named metric, creating it on first use. A name maps to
  /// exactly one metric kind; re-requesting an existing name with a
  /// different kind is a programming error (asserted).
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name, unsigned NumBuckets);
  Timer &timer(const std::string &Name);

  /// Lookup without creation; null when \p Name is absent or of a
  /// different kind.
  const Counter *findCounter(const std::string &Name) const;
  const Histogram *findHistogram(const std::string &Name) const;

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  /// Sums \p O's counters, histograms, and timers into this registry
  /// (creating entries as needed, in \p O's order). Gauges are derived
  /// per-scope values and are skipped.
  void merge(const Registry &O);

  /// Renders an object mapping metric name -> value: counters as
  /// integers, gauges as doubles, histograms as arrays of bucket counts.
  /// Timers (wall-clock, non-deterministic) are included only when
  /// \p IncludeTimers is set.
  Json toJson(bool IncludeTimers = true) const;

private:
  struct Entry {
    enum class Kind : uint8_t { Counter, Gauge, Histogram, Timer } K;
    std::string Name;
    Counter C;
    Gauge G;
    Histogram H{1};
    Timer T;
  };

  Entry &entry(const std::string &Name, Entry::Kind K);
  const Entry *find(const std::string &Name, Entry::Kind K) const;
  void copyFrom(const Registry &O);

  /// unique_ptr entries keep returned references stable across growth.
  std::vector<std::unique_ptr<Entry>> Entries;
  std::unordered_map<std::string, size_t> Index;
};

/// RAII wall-clock timer. Two sinks: a plain `double&` accumulator in
/// milliseconds, or a named Timer in a Registry. The Registry form
/// accepts null ("off"): nothing is recorded and the clock is never read.
class ScopedTimer {
public:
  explicit ScopedTimer(double &SinkMs) : Sink(&SinkMs) { arm(); }
  ScopedTimer(Registry *R, const char *Name)
      : T(R ? &R->timer(Name) : nullptr) {
    if (T)
      arm();
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() {
    if (!Armed)
      return;
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    if (Sink)
      *Sink += Ms;
    if (T)
      T->add(Ms);
  }

private:
  void arm() {
    Armed = true;
    Start = std::chrono::steady_clock::now();
  }

  double *Sink = nullptr;
  Timer *T = nullptr;
  bool Armed = false;
  std::chrono::steady_clock::time_point Start;
};

/// Null-safe recording helpers: a disabled site passes a null registry
/// and pays one predictable branch.
inline void inc(Registry *R, const char *Name, uint64_t N = 1) {
  if (R)
    R->counter(Name).inc(N);
}
inline void set(Registry *R, const char *Name, double V) {
  if (R)
    R->gauge(Name).set(V);
}
inline void observe(Registry *R, const char *Name, unsigned NumBuckets,
                    uint64_t Value) {
  if (R)
    R->histogram(Name, NumBuckets).observe(Value);
}

} // namespace obs
} // namespace flexvec

#endif // FLEXVEC_OBS_METRICS_H
