//===- obs/BenchDiff.cpp --------------------------------------------------===//

#include "obs/BenchDiff.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

using namespace flexvec;
using namespace flexvec::obs;

namespace {

std::string fmtPct(double Pct) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%+.2f%%", Pct);
  return Buf;
}

/// Tolerance values as the user wrote them: "2" not "2.000000".
std::string fmtTol(double Tol) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", Tol);
  return Buf;
}

/// Percent growth of Cur over Base; 0 when Base is 0 and Cur is 0,
/// +inf-ish sentinel (report as "from zero") handled by callers.
double growthPct(double Base, double Cur) {
  if (Base == 0.0)
    return Cur == 0.0 ? 0.0 : 100.0;
  return (Cur - Base) / Base * 100.0;
}

const Json *cellField(const Json &Cell, const char *Name) {
  return Cell.find(Name);
}

std::string cellKey(const Json &Cell) {
  const Json *B = Cell.find("benchmark");
  const Json *V = Cell.find("variant");
  return (B ? B->asString() : "?") + "/" + (V ? V->asString() : "?");
}

bool numbersDiffer(const Json &A, const Json &B) {
  return A.asDouble() != B.asDouble();
}

/// Structural equality for metric values (numbers and histogram arrays).
bool metricsEqual(const Json &A, const Json &B) {
  if (A.isArray() != B.isArray())
    return false;
  if (A.isArray()) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (numbersDiffer(A.elems()[I], B.elems()[I]))
        return false;
    return true;
  }
  return !numbersDiffer(A, B);
}

class Differ {
public:
  Differ(const Json &Base, const Json &Cur, const BenchDiffOptions &Opts)
      : Base(Base), Cur(Cur), Opts(Opts) {}

  BenchDiffReport run() {
    if (!comparable())
      return R;
    diffGeomeans();
    diffCells();
    diffAggregateMetrics();
    if (!R.Regressions.empty())
      R.ExitCode = 1;
    return R;
  }

private:
  void regress(const std::string &Msg) { R.Regressions.push_back(Msg); }
  void note(const std::string &Msg) { R.Notes.push_back(Msg); }
  void unusable(const std::string &Msg) {
    R.ExitCode = 2;
    R.Regressions.push_back(Msg);
  }

  /// Schema + sweep-configuration gate: exit 2 when the two documents do
  /// not describe the same experiment.
  bool comparable() {
    const Json *BS = Base.find("schema"), *CS = Cur.find("schema");
    if (!BS || !BS->isString() || !CS || !CS->isString()) {
      unusable("schema: missing or non-string in one of the inputs");
      return false;
    }
    if (BS->asString() != CS->asString()) {
      unusable("schema mismatch: baseline '" + BS->asString() +
               "' vs current '" + CS->asString() + "'");
      return false;
    }
    for (const char *Key : {"seed", "scale", "trips"}) {
      const Json *BV = Base.find(Key), *CV = Cur.find(Key);
      if (!BV || !CV || numbersDiffer(*BV, *CV)) {
        unusable(std::string(Key) +
                 ": sweep configuration differs; runs are not comparable");
        return false;
      }
    }
    // Vector width is a sweep-config field too. An absent key means the
    // 512-bit default (the v2 baseline predates the field), so an old
    // baseline still compares against a current default run — but a
    // payload produced at a different VL is a different experiment, not
    // a regression.
    auto vlBits = [](const Json &Doc) {
      const Json *V = Doc.find("vl");
      return V ? V->asDouble() : 512.0;
    };
    double BVl = vlBits(Base), CVl = vlBits(Cur);
    if (BVl != CVl) {
      std::ostringstream Msg;
      Msg << "vl: sweep configuration differs (baseline " << BVl
          << " vs current " << CVl << " bits); runs are not comparable";
      unusable(Msg.str());
      return false;
    }
    if (!Base.find("cells") || !Base.find("cells")->isArray() ||
        !Cur.find("cells") || !Cur.find("cells")->isArray()) {
      unusable("cells: missing array in one of the inputs");
      return false;
    }
    return true;
  }

  void diffGeomeans() {
    const Json *BG = Base.find("geomean_overall_speedup");
    const Json *CG = Cur.find("geomean_overall_speedup");
    if (!BG || !CG)
      return;
    for (const char *Group : {"spec", "apps"}) {
      const Json *BV = BG->find(Group), *CV = CG->find(Group);
      if (!BV || !CV)
        continue;
      double B = BV->asDouble(), C = CV->asDouble();
      double DropPct = -growthPct(B, C); // positive when current is slower
      std::ostringstream Msg;
      Msg << "geomean_overall_speedup." << Group << ": " << B << " -> " << C
          << " (" << fmtPct(-DropPct) << ")";
      if (DropPct > Opts.GeomeanTolerancePct)
        regress(Msg.str() + " exceeds -" + fmtTol(Opts.GeomeanTolerancePct) +
                "% tolerance");
      else if (B != C)
        note(Msg.str());
    }
  }

  void diffCells() {
    std::map<std::string, const Json *> CurCells;
    for (const Json &Cell : Cur.find("cells")->elems())
      CurCells[cellKey(Cell)] = &Cell;

    for (const Json &BCell : Base.find("cells")->elems()) {
      std::string Key = cellKey(BCell);
      auto It = CurCells.find(Key);
      if (It == CurCells.end()) {
        regress(Key + ": cell present in baseline but missing from current");
        continue;
      }
      diffCell(Key, BCell, *It->second);
      CurCells.erase(It);
    }
    for (const auto &KV : CurCells)
      note(KV.first + ": new cell, not in baseline");
  }

  void diffCell(const std::string &Key, const Json &B, const Json &C) {
    const Json *BGen = cellField(B, "generated");
    const Json *CGen = cellField(C, "generated");
    bool BG = BGen && BGen->asBool(), CG = CGen && CGen->asBool();
    if (BG && !CG) {
      regress(Key + ": variant was generated in baseline but not in current");
      return;
    }
    if (!BG && CG) {
      note(Key + ": variant newly generated");
      return;
    }
    if (!BG)
      return;

    const Json *BCor = cellField(B, "correct");
    const Json *CCor = cellField(C, "correct");
    if (BCor && CCor && BCor->asBool() && !CCor->asBool()) {
      regress(Key + ": correctness regression (differential check now fails)");
      return;
    }
    if (BCor && CCor && !BCor->asBool() && CCor->asBool())
      note(Key + ": correctness fixed");

    const Json *BCyc = cellField(B, "cycles");
    const Json *CCyc = cellField(C, "cycles");
    if (BCyc && CCyc) {
      double Pct = growthPct(BCyc->asDouble(), CCyc->asDouble());
      if (Pct != 0.0) {
        std::ostringstream Msg;
        Msg << Key << ": cycles " << BCyc->asUInt() << " -> " << CCyc->asUInt()
            << " (" << fmtPct(Pct) << ")";
        if (Pct > Opts.CyclesTolerancePct)
          regress(Msg.str() + " exceeds +" + fmtTol(Opts.CyclesTolerancePct) +
                  "% tolerance");
        else
          note(Msg.str());
      }
    }
  }

  /// Aggregate (top-level) metrics: always reported when they drift, but
  /// only configured thresholds can fail the diff — most counters are
  /// expected to move when codegen or workloads change.
  void diffAggregateMetrics() {
    const Json *BM = Base.find("metrics"), *CM = Cur.find("metrics");
    if (!BM || !BM->isObject())
      return;
    for (const auto &M : BM->members()) {
      const Json *CV = CM ? CM->find(M.first) : nullptr;
      double Threshold = thresholdFor(M.first);
      if (!CV) {
        if (Threshold >= 0.0)
          regress("metrics." + M.first +
                  ": thresholded metric missing from current");
        else
          note("metrics." + M.first + ": missing from current");
        continue;
      }
      if (metricsEqual(M.second, *CV))
        continue;
      if (M.second.isArray() || CV->isArray()) {
        note("metrics." + M.first + ": histogram changed");
        continue;
      }
      double Pct = growthPct(M.second.asDouble(), CV->asDouble());
      std::ostringstream Msg;
      Msg << "metrics." << M.first << ": " << M.second.asDouble() << " -> "
          << CV->asDouble() << " (" << fmtPct(Pct) << ")";
      if (Threshold >= 0.0 && Pct > Threshold)
        regress(Msg.str() + " exceeds +" + fmtTol(Threshold) + "% threshold");
      else
        note(Msg.str());
    }
  }

  /// Configured max-growth threshold for \p Name, or -1 when unset.
  double thresholdFor(const std::string &Name) const {
    for (const auto &T : Opts.MetricThresholds)
      if (T.first == Name)
        return T.second;
    return -1.0;
  }

  const Json &Base;
  const Json &Cur;
  const BenchDiffOptions &Opts;
  BenchDiffReport R;
};

bool readFile(const std::string &Path, std::string &Out, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = Path + ": cannot open";
    return false;
  }
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

} // namespace

BenchDiffReport obs::diffBench(const Json &Baseline, const Json &Current,
                               const BenchDiffOptions &Opts) {
  return Differ(Baseline, Current, Opts).run();
}

BenchDiffReport obs::diffBenchFiles(const std::string &BaselinePath,
                                    const std::string &CurrentPath,
                                    const BenchDiffOptions &Opts) {
  BenchDiffReport R;
  std::string BaseText, CurText, Err;
  if (!readFile(BaselinePath, BaseText, Err) ||
      !readFile(CurrentPath, CurText, Err)) {
    R.ExitCode = 2;
    R.Regressions.push_back(Err);
    return R;
  }
  Json Base, Cur;
  if (!Json::parse(BaseText, Base, Err)) {
    R.ExitCode = 2;
    R.Regressions.push_back(BaselinePath + ": " + Err);
    return R;
  }
  if (!Json::parse(CurText, Cur, Err)) {
    R.ExitCode = 2;
    R.Regressions.push_back(CurrentPath + ": " + Err);
    return R;
  }
  return diffBench(Base, Cur, Opts);
}
