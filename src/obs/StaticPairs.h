//===- obs/StaticPairs.h - Static opcode-pair histogram ---------*- C++ -*-===//
//
// Histogram of adjacent static opcode pairs over a finalized program. The
// emulator's superinstruction pass (emu::Machine) builds one per program
// and keys every fusion decision on it, so the fusion table is a pure
// function of the static opcode sequence — never of loop names, comments,
// or instruction addresses (the cache-safety contract in
// docs/PERFORMANCE.md). The histogram is sparse: programs are tens to a
// few hundred instructions, so a sorted vector beats a dense
// NumOpcodes^2 table that would need clearing per run.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_OBS_STATICPAIRS_H
#define FLEXVEC_OBS_STATICPAIRS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flexvec {
namespace obs {

class StaticPairHistogram {
public:
  struct Entry {
    uint16_t First = 0;  ///< Leading symbol (opcode value).
    uint16_t Second = 0; ///< Trailing symbol.
    uint64_t Count = 0;

    bool operator==(const Entry &O) const {
      return First == O.First && Second == O.Second && Count == O.Count;
    }
  };

  void clear() { Entries.clear(); }
  bool empty() const { return Entries.empty(); }

  /// Counts one occurrence of the pair (A, B).
  void add(unsigned A, unsigned B);

  /// Occurrences of (A, B); zero when never added.
  uint64_t count(unsigned A, unsigned B) const;

  /// Sum over all pairs.
  uint64_t total() const;

  /// The N most frequent pairs, ties broken by (First, Second) ascending
  /// so the ranking is deterministic.
  std::vector<Entry> top(size_t N) const;

  /// All pairs in (First, Second) order.
  const std::vector<Entry> &entries() const { return Entries; }

  bool operator==(const StaticPairHistogram &O) const {
    return Entries == O.Entries;
  }

private:
  /// Sorted by (First, Second); add() keeps the order.
  std::vector<Entry> Entries;
};

} // namespace obs
} // namespace flexvec

#endif // FLEXVEC_OBS_STATICPAIRS_H
