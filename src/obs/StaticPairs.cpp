//===- obs/StaticPairs.cpp ------------------------------------------------===//

#include "obs/StaticPairs.h"

#include <algorithm>

using namespace flexvec;
using namespace flexvec::obs;

namespace {

bool keyLess(const StaticPairHistogram::Entry &E, uint32_t Key) {
  return (static_cast<uint32_t>(E.First) << 16 | E.Second) < Key;
}

uint32_t keyOf(unsigned A, unsigned B) {
  return static_cast<uint32_t>(A) << 16 | static_cast<uint32_t>(B & 0xffff);
}

} // namespace

void StaticPairHistogram::add(unsigned A, unsigned B) {
  uint32_t Key = keyOf(A, B);
  auto It = std::lower_bound(Entries.begin(), Entries.end(), Key, keyLess);
  if (It != Entries.end() && It->First == (A & 0xffff) &&
      It->Second == (B & 0xffff)) {
    ++It->Count;
    return;
  }
  Entry E;
  E.First = static_cast<uint16_t>(A);
  E.Second = static_cast<uint16_t>(B);
  E.Count = 1;
  Entries.insert(It, E);
}

uint64_t StaticPairHistogram::count(unsigned A, unsigned B) const {
  uint32_t Key = keyOf(A, B);
  auto It = std::lower_bound(Entries.begin(), Entries.end(), Key, keyLess);
  if (It != Entries.end() && It->First == (A & 0xffff) &&
      It->Second == (B & 0xffff))
    return It->Count;
  return 0;
}

uint64_t StaticPairHistogram::total() const {
  uint64_t T = 0;
  for (const Entry &E : Entries)
    T += E.Count;
  return T;
}

std::vector<StaticPairHistogram::Entry>
StaticPairHistogram::top(size_t N) const {
  std::vector<Entry> Out = Entries;
  std::sort(Out.begin(), Out.end(), [](const Entry &A, const Entry &B) {
    if (A.Count != B.Count)
      return A.Count > B.Count;
    if (A.First != B.First)
      return A.First < B.First;
    return A.Second < B.Second;
  });
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}
