//===- isa/Opcode.cpp -----------------------------------------------------===//

#include "isa/Opcode.h"

#include "isa/Reg.h"
#include "support/Error.h"

#include <cstdlib>

using namespace flexvec;
using namespace flexvec::isa;

VectorConfig isa::defaultVectorConfig() {
  static const VectorConfig Cached = [] {
    if (const char *Env = std::getenv("FLEXVEC_VL")) {
      char *End = nullptr;
      unsigned long Bits = std::strtoul(Env, &End, 10);
      if (End && *End == '\0' && VectorConfig::isValidBits(
                                     static_cast<unsigned>(Bits)))
        return VectorConfig(static_cast<unsigned>(Bits) / 8);
    }
    return VectorConfig();
  }();
  return Cached;
}

const char *isa::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Halt:
    return "halt";
  case Opcode::Nop:
    return "nop";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::BrZero:
    return "brz";
  case Opcode::BrNonZero:
    return "brnz";
  case Opcode::MovImm:
    return "movimm";
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::AddImm:
    return "addi";
  case Opcode::MulImm:
    return "muli";
  case Opcode::AndImm:
    return "andi";
  case Opcode::ShlImm:
    return "shli";
  case Opcode::ShrImm:
    return "shri";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Cmp:
    return "cmp";
  case Opcode::CmpImm:
    return "cmpi";
  case Opcode::Select:
    return "select";
  case Opcode::FMovImm:
    return "fmovimm";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FMin:
    return "fmin";
  case Opcode::FMax:
    return "fmax";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::VBroadcast:
    return "vbroadcast";
  case Opcode::VBroadcastImm:
    return "vbroadcasti";
  case Opcode::VIndex:
    return "vindex";
  case Opcode::VAdd:
    return "vadd";
  case Opcode::VSub:
    return "vsub";
  case Opcode::VMul:
    return "vmul";
  case Opcode::VAnd:
    return "vand";
  case Opcode::VOr:
    return "vor";
  case Opcode::VXor:
    return "vxor";
  case Opcode::VMin:
    return "vmin";
  case Opcode::VMax:
    return "vmax";
  case Opcode::VAddImm:
    return "vaddi";
  case Opcode::VMulImm:
    return "vmuli";
  case Opcode::VShlImm:
    return "vshli";
  case Opcode::VFAdd:
    return "vfadd";
  case Opcode::VFSub:
    return "vfsub";
  case Opcode::VFMul:
    return "vfmul";
  case Opcode::VFDiv:
    return "vfdiv";
  case Opcode::VFMin:
    return "vfmin";
  case Opcode::VFMax:
    return "vfmax";
  case Opcode::VCmp:
    return "vcmp";
  case Opcode::VCmpImm:
    return "vcmpi";
  case Opcode::VBlend:
    return "vblend";
  case Opcode::VExtractLast:
    return "vextractlast";
  case Opcode::VReduceAdd:
    return "vreduceadd";
  case Opcode::VReduceMin:
    return "vreducemin";
  case Opcode::VReduceMax:
    return "vreducemax";
  case Opcode::VLoad:
    return "vload";
  case Opcode::VStore:
    return "vstore";
  case Opcode::VGather:
    return "vpgather";
  case Opcode::VScatter:
    return "vpscatter";
  case Opcode::VMovFF:
    return "vmovff";
  case Opcode::VGatherFF:
    return "vpgatherff";
  case Opcode::VSlctLast:
    return "vpslctlast";
  case Opcode::VConflictM:
    return "vpconflictm";
  case Opcode::KFtmExc:
    return "kftm.exc";
  case Opcode::KFtmInc:
    return "kftm.inc";
  case Opcode::KMov:
    return "kmov";
  case Opcode::KSet:
    return "kset";
  case Opcode::KAnd:
    return "kand";
  case Opcode::KOr:
    return "kor";
  case Opcode::KXor:
    return "kxor";
  case Opcode::KAndN:
    return "kandn";
  case Opcode::KNot:
    return "knot";
  case Opcode::KTest:
    return "ktest";
  case Opcode::KPopcnt:
    return "kpopcnt";
  case Opcode::KWhileLT:
    return "kwhilelt";
  case Opcode::XBegin:
    return "xbegin";
  case Opcode::XEnd:
    return "xend";
  case Opcode::XAbort:
    return "xabort";
  }
  unreachable("unknown opcode");
}

const char *isa::cmpKindName(CmpKind K) {
  switch (K) {
  case CmpKind::EQ:
    return "eq";
  case CmpKind::NE:
    return "ne";
  case CmpKind::LT:
    return "lt";
  case CmpKind::LE:
    return "le";
  case CmpKind::GT:
    return "gt";
  case CmpKind::GE:
    return "ge";
  }
  unreachable("unknown compare kind");
}

bool isa::evalCmp(CmpKind K, int64_t A, int64_t B) {
  switch (K) {
  case CmpKind::EQ:
    return A == B;
  case CmpKind::NE:
    return A != B;
  case CmpKind::LT:
    return A < B;
  case CmpKind::LE:
    return A <= B;
  case CmpKind::GT:
    return A > B;
  case CmpKind::GE:
    return A >= B;
  }
  unreachable("unknown compare kind");
}

bool isa::evalCmp(CmpKind K, double A, double B) {
  switch (K) {
  case CmpKind::EQ:
    return A == B;
  case CmpKind::NE:
    return A != B;
  case CmpKind::LT:
    return A < B;
  case CmpKind::LE:
    return A <= B;
  case CmpKind::GT:
    return A > B;
  case CmpKind::GE:
    return A >= B;
  }
  unreachable("unknown compare kind");
}
