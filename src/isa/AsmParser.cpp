//===- isa/AsmParser.cpp --------------------------------------------------===//

#include "isa/AsmParser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

using namespace flexvec;
using namespace flexvec::isa;

namespace {

/// Opcodes that print no destination register.
bool opcodeHasDst(Opcode Op) {
  switch (Op) {
  case Opcode::Halt:
  case Opcode::Nop:
  case Opcode::Jmp:
  case Opcode::BrZero:
  case Opcode::BrNonZero:
  case Opcode::Store:
  case Opcode::VStore:
  case Opcode::VScatter:
  case Opcode::XBegin:
  case Opcode::XEnd:
  case Opcode::XAbort:
    return false;
  default:
    return true;
  }
}

const std::map<std::string, Opcode> &opcodeTable() {
  static std::map<std::string, Opcode> Table = [] {
    std::map<std::string, Opcode> T;
    for (unsigned O = 0; O < NumOpcodes; ++O)
      T[opcodeName(static_cast<Opcode>(O))] = static_cast<Opcode>(O);
    return T;
  }();
  return Table;
}

bool parseCmpKind(const std::string &S, CmpKind &K) {
  static const std::map<std::string, CmpKind> Table = {
      {"eq", CmpKind::EQ}, {"ne", CmpKind::NE}, {"lt", CmpKind::LT},
      {"le", CmpKind::LE}, {"gt", CmpKind::GT}, {"ge", CmpKind::GE},
  };
  auto It = Table.find(S);
  if (It == Table.end())
    return false;
  K = It->second;
  return true;
}

bool parseElemType(const std::string &S, ElemType &Ty) {
  static const std::map<std::string, ElemType> Table = {
      {"i32", ElemType::I32},
      {"i64", ElemType::I64},
      {"f32", ElemType::F32},
      {"f64", ElemType::F64},
  };
  auto It = Table.find(S);
  if (It == Table.end())
    return false;
  Ty = It->second;
  return true;
}

bool parseReg(const std::string &S, Reg &R) {
  if (S.size() < 2)
    return false;
  char C = S[0];
  for (size_t I = 1; I < S.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
  unsigned Index = static_cast<unsigned>(std::stoul(S.substr(1)));
  if (C == 'r' && Index < NumScalarRegs) {
    R = Reg::scalar(Index);
    return true;
  }
  if (C == 'v' && Index < NumVectorRegs) {
    R = Reg::vector(Index);
    return true;
  }
  if (C == 'k' && Index < NumMaskRegs) {
    R = Reg::mask(Index);
    return true;
  }
  return false;
}

struct Assembler {
  std::string Error;
  int Line = 0;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  /// Splits an operand string on top-level commas (brackets/braces keep
  /// their contents together).
  static std::vector<std::string> splitOperands(const std::string &S) {
    std::vector<std::string> Out;
    std::string Cur;
    int Depth = 0;
    for (char C : S) {
      if (C == '[' || C == '{')
        ++Depth;
      if (C == ']' || C == '}')
        --Depth;
      if (C == ',' && Depth == 0) {
        Out.push_back(Cur);
        Cur.clear();
        continue;
      }
      Cur += C;
    }
    if (!Cur.empty())
      Out.push_back(Cur);
    for (std::string &T : Out) {
      size_t B = T.find_first_not_of(" \t");
      size_t E = T.find_last_not_of(" \t");
      T = B == std::string::npos ? "" : T.substr(B, E - B + 1);
    }
    return Out;
  }

  bool parseMemOperand(const std::string &S, Instruction &I) {
    // [rB + xI*S + D] with each piece optional after the base.
    if (S.size() < 2 || S.front() != '[' || S.back() != ']')
      return fail("malformed memory operand '" + S + "'");
    std::string Body = S.substr(1, S.size() - 2);
    std::vector<std::string> Parts;
    std::string Cur;
    for (char C : Body) {
      if (C == '+') {
        Parts.push_back(Cur);
        Cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(C))) {
        Cur += C;
      }
    }
    Parts.push_back(Cur);
    if (Parts.empty() || Parts[0].empty())
      return fail("memory operand needs a base register");
    if (!parseReg(Parts[0], I.Src1) || !I.Src1.isScalar())
      return fail("bad base register '" + Parts[0] + "'");
    for (size_t P = 1; P < Parts.size(); ++P) {
      const std::string &Part = Parts[P];
      if (Part.empty())
        return fail("empty memory operand component");
      if (std::isdigit(static_cast<unsigned char>(Part[0])) ||
          Part[0] == '-') {
        I.Disp = std::stoll(Part);
        continue;
      }
      // Register with optional *scale.
      size_t Star = Part.find('*');
      std::string RegText = Star == std::string::npos ? Part
                                                      : Part.substr(0, Star);
      if (!parseReg(RegText, I.Src2))
        return fail("bad index register '" + RegText + "'");
      if (Star != std::string::npos)
        I.Scale = static_cast<uint8_t>(std::stoul(Part.substr(Star + 1)));
    }
    return true;
  }

  /// Parses one instruction line (mnemonic + operands, no label/comment).
  bool parseInstruction(const std::string &Text, Instruction &I,
                        std::string &TargetLabel) {
    std::istringstream In(Text);
    std::string Mnemonic;
    In >> Mnemonic;
    if (Mnemonic.empty())
      return fail("missing mnemonic");

    // Greedy opcode match over dot-joined prefixes ("kftm.exc" has a dot).
    std::vector<std::string> Segs;
    {
      std::string Seg;
      std::istringstream MS(Mnemonic);
      while (std::getline(MS, Seg, '.'))
        Segs.push_back(Seg);
    }
    size_t Used = 0;
    std::string Candidate;
    for (size_t N = Segs.size(); N >= 1; --N) {
      Candidate.clear();
      for (size_t S = 0; S < N; ++S)
        Candidate += (S ? "." : "") + Segs[S];
      if (opcodeTable().count(Candidate)) {
        Used = N;
        break;
      }
    }
    if (Used == 0)
      return fail("unknown mnemonic '" + Mnemonic + "'");
    I.Op = opcodeTable().at(Candidate);
    // Remaining segments: optional condition, optional element type.
    for (size_t S = Used; S < Segs.size(); ++S) {
      CmpKind K;
      ElemType Ty;
      if (parseCmpKind(Segs[S], K))
        I.Cond = K;
      else if (parseElemType(Segs[S], Ty))
        I.Type = Ty;
      else
        return fail("bad mnemonic suffix '." + Segs[S] + "'");
    }

    std::string Rest;
    std::getline(In, Rest);
    std::vector<std::string> Ops = splitOperands(Rest);

    bool SawDst = false;
    int SrcSlot = 0;
    bool IsMem = false;
    for (const std::string &Op : Ops) {
      if (Op.empty())
        continue;
      if (Op.front() == '{') {
        if (Op.back() != '}')
          return fail("malformed write mask '" + Op + "'");
        if (!parseReg(Op.substr(1, Op.size() - 2), I.MaskReg))
          return fail("bad mask register in '" + Op + "'");
        continue;
      }
      if (Op.front() == '[') {
        if (!parseMemOperand(Op, I))
          return false;
        IsMem = true;
        SrcSlot = 2; // Stored value (if any) lands in Src3.
        continue;
      }
      if (Op.front() == '@') {
        std::string T = Op.substr(1);
        if (!T.empty() && (std::isdigit(static_cast<unsigned char>(T[0]))))
          I.Target = static_cast<int32_t>(std::stol(T));
        else
          TargetLabel = T;
        continue;
      }
      Reg R;
      if (parseReg(Op, R)) {
        if (!SawDst && opcodeHasDst(I.Op) && !IsMem) {
          I.Dst = R;
          SawDst = true;
        } else if (!SawDst && opcodeHasDst(I.Op) && IsMem) {
          // Destination printed before the memory operand for loads; it
          // can only appear here for loads that list [mem] first, which
          // the disassembler never does, so treat as source.
          I.Dst = R;
          SawDst = true;
        } else {
          switch (SrcSlot++) {
          case 0:
            I.Src1 = R;
            break;
          case 1:
            I.Src2 = R;
            break;
          case 2:
            I.Src3 = R;
            break;
          default:
            return fail("too many register operands");
          }
        }
        continue;
      }
      // Immediate.
      char *End = nullptr;
      long long V = std::strtoll(Op.c_str(), &End, 0);
      if (End && *End == '\0') {
        I.Imm = V;
        continue;
      }
      return fail("unrecognized operand '" + Op + "'");
    }
    return true;
  }

  AsmResult run(const std::string &Source) {
    AsmResult Result;
    std::vector<Instruction> Instrs;
    std::vector<std::pair<size_t, std::string>> Fixups;
    std::map<std::string, int32_t> Labels;

    std::istringstream In(Source);
    std::string RawLine;
    while (std::getline(In, RawLine)) {
      ++Line;
      std::string Text = RawLine;
      // Strip comment.
      std::string Comment;
      size_t Semi = Text.find(';');
      if (Semi != std::string::npos) {
        Comment = Text.substr(Semi + 1);
        size_t B = Comment.find_first_not_of(" \t");
        Comment = B == std::string::npos ? "" : Comment.substr(B);
        Text = Text.substr(0, Semi);
      }
      // Trim.
      size_t B = Text.find_first_not_of(" \t");
      if (B == std::string::npos)
        continue;
      size_t E = Text.find_last_not_of(" \t");
      Text = Text.substr(B, E - B + 1);

      // Leading "LABEL:" — numeric labels (disassembler indices) are
      // positional decoration and are ignored; symbolic labels bind.
      size_t Colon = Text.find(':');
      if (Colon != std::string::npos) {
        std::string Label = Text.substr(0, Colon);
        bool Numeric = !Label.empty();
        bool Symbolic = !Label.empty();
        for (char C : Label) {
          Numeric &= std::isdigit(static_cast<unsigned char>(C)) != 0;
          Symbolic &= (std::isalnum(static_cast<unsigned char>(C)) ||
                       C == '_') != 0;
        }
        if (Numeric || (Symbolic && Label.find(' ') == std::string::npos)) {
          if (!Numeric)
            Labels[Label] = static_cast<int32_t>(Instrs.size());
          Text = Text.substr(Colon + 1);
          size_t B2 = Text.find_first_not_of(" \t");
          if (B2 == std::string::npos)
            continue; // Label-only line.
          Text = Text.substr(B2);
        }
      }

      Instruction I;
      std::string TargetLabel;
      if (!parseInstruction(Text, I, TargetLabel)) {
        Result.Error = Error;
        return Result;
      }
      I.Comment = Comment;
      if (!TargetLabel.empty())
        Fixups.emplace_back(Instrs.size(), TargetLabel);
      Instrs.push_back(std::move(I));
    }

    for (auto &[Idx, Label] : Fixups) {
      auto It = Labels.find(Label);
      if (It == Labels.end()) {
        Result.Error = "undefined label '" + Label + "'";
        return Result;
      }
      Instrs[Idx].Target = It->second;
    }
    for (size_t I = 0; I < Instrs.size(); ++I) {
      if (Instrs[I].Target != NoTarget &&
          (Instrs[I].Target < 0 ||
           static_cast<size_t>(Instrs[I].Target) >= Instrs.size())) {
        Result.Error = "branch target out of range at instruction " +
                       std::to_string(I);
        return Result;
      }
    }
    Result.Prog = Program(std::move(Instrs));
    Result.Ok = true;
    return Result;
  }
};

} // namespace

AsmResult isa::assembleProgram(const std::string &Source) {
  Assembler A;
  return A.run(Source);
}
