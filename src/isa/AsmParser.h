//===- isa/AsmParser.h - Assembly text parser -------------------*- C++ -*-===//
//
// Parses the textual form produced by Program::disassemble() (and written
// by hand in tests) back into an executable Program, completing the
// ISA tool chain: build → disassemble → parse → run round-trips.
//
// Accepted line forms:
//
//     [LABEL:]  MNEMONIC[.cond][.type] operands...   [; comment]
//
// Operands follow the disassembler: registers (r0.., v0.., k0..),
// write-masks in braces ({k1}), memory operands ([rB + rI*S + D] or
// [rB + vI*S + D]), immediates, and branch targets as @LABEL (symbolic)
// or @N (absolute instruction index, as the disassembler prints).
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ISA_ASMPARSER_H
#define FLEXVEC_ISA_ASMPARSER_H

#include "isa/Program.h"

#include <string>

namespace flexvec {
namespace isa {

/// Result of assembling: the program or a line-tagged diagnostic.
struct AsmResult {
  Program Prog;
  bool Ok = false;
  std::string Error;

  explicit operator bool() const { return Ok; }
};

/// Assembles \p Source into a Program.
AsmResult assembleProgram(const std::string &Source);

} // namespace isa
} // namespace flexvec

#endif // FLEXVEC_ISA_ASMPARSER_H
