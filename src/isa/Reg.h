//===- isa/Reg.h - Register file model --------------------------*- C++ -*-===//
//
// Architectural register classes for the FlexVec target: 32 64-bit scalar
// registers, 32 512-bit vector registers, and 8 mask registers (k0..k7),
// mirroring the AVX-512 register file the paper builds on. k0 is hard-wired
// to all-ones when used as a write mask, matching AVX-512 semantics.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ISA_REG_H
#define FLEXVEC_ISA_REG_H

#include <cassert>
#include <cstdint>
#include <string>

namespace flexvec {
namespace isa {

/// Default width of a vector register in bytes (AVX-512: 512 bits). The
/// pipeline is width-generic — see VectorConfig below — and this is the
/// value every layer assumes when no configuration is threaded through.
inline constexpr unsigned VectorBytes = 64;

/// The supported vector-width range: 128-bit (SSE/NEON-class) through
/// 2048-bit (the SVE architectural maximum). Emulator register storage is
/// sized for the maximum so one Machine can run any configuration.
inline constexpr unsigned MinVectorBytes = 16;
inline constexpr unsigned MaxVectorBytes = 256;

inline constexpr unsigned NumScalarRegs = 32;
inline constexpr unsigned NumVectorRegs = 32;
inline constexpr unsigned NumMaskRegs = 8;

/// Vector element types supported by the target.
enum class ElemType : uint8_t { I32, I64, F32, F64 };

/// Size of one element in bytes.
inline unsigned elemSize(ElemType Ty) {
  switch (Ty) {
  case ElemType::I32:
  case ElemType::F32:
    return 4;
  case ElemType::I64:
  case ElemType::F64:
    return 8;
  }
  assert(false && "covered switch");
  return 0;
}

/// THE lane-count definition: lanes a \p VecBytes-wide vector holds for
/// \p Ty. Every other lane-count helper (lanesFor, laneCount,
/// VectorConfig::lanes) is a thin wrapper over this one.
constexpr unsigned laneCountFor(unsigned VecBytes, ElemType Ty) {
  return VecBytes / ((Ty == ElemType::I32 || Ty == ElemType::F32) ? 4u : 8u);
}

/// Number of lanes a default-width (512-bit) vector holds for \p Ty.
inline unsigned lanesFor(ElemType Ty) {
  return laneCountFor(VectorBytes, Ty);
}

/// Per-compilation / per-run vector width. Valid widths are the powers of
/// two from MinVectorBytes to MaxVectorBytes (128 -> 2048 bits); masks
/// stay uint64_t because the widest configuration with the narrowest lane
/// (2048-bit / 4-byte lanes) is exactly 64 lanes.
struct VectorConfig {
  unsigned Bytes = VectorBytes;

  constexpr VectorConfig() = default;
  constexpr explicit VectorConfig(unsigned Bytes) : Bytes(Bytes) {}

  static constexpr bool isValidBytes(unsigned B) {
    return B >= MinVectorBytes && B <= MaxVectorBytes &&
           (B & (B - 1)) == 0;
  }
  static constexpr bool isValidBits(unsigned Bits) {
    return Bits % 8 == 0 && isValidBytes(Bits / 8);
  }

  constexpr unsigned bits() const { return Bytes * 8; }
  constexpr unsigned lanes(ElemType Ty) const {
    return laneCountFor(Bytes, Ty);
  }
  /// Most lanes any element type yields at this width (4-byte lanes).
  constexpr unsigned maxLanes() const { return Bytes / 4; }

  bool operator==(const VectorConfig &O) const { return Bytes == O.Bytes; }
  bool operator!=(const VectorConfig &O) const { return Bytes != O.Bytes; }
};

/// Process-default vector configuration: the FLEXVEC_VL environment
/// variable (in bits: 128, 256, 512, 1024, 2048) when set and valid,
/// otherwise the 512-bit default. Read once and cached, matching the
/// FLEXVEC_DISPATCH / FLEXVEC_SIMD override pattern.
VectorConfig defaultVectorConfig();

inline bool isFloatType(ElemType Ty) {
  return Ty == ElemType::F32 || Ty == ElemType::F64;
}

const char *elemTypeName(ElemType Ty);

/// Register classes.
enum class RegClass : uint8_t { None, Scalar, Vector, Mask };

/// A typed architectural register reference.
struct Reg {
  RegClass Class = RegClass::None;
  uint8_t Index = 0;

  constexpr Reg() = default;
  constexpr Reg(RegClass Class, uint8_t Index) : Class(Class), Index(Index) {}

  static constexpr Reg none() { return Reg(); }
  static Reg scalar(unsigned I) {
    assert(I < NumScalarRegs && "scalar register index out of range");
    return Reg(RegClass::Scalar, static_cast<uint8_t>(I));
  }
  static Reg vector(unsigned I) {
    assert(I < NumVectorRegs && "vector register index out of range");
    return Reg(RegClass::Vector, static_cast<uint8_t>(I));
  }
  static Reg mask(unsigned I) {
    assert(I < NumMaskRegs && "mask register index out of range");
    return Reg(RegClass::Mask, static_cast<uint8_t>(I));
  }

  bool isValid() const { return Class != RegClass::None; }
  bool isScalar() const { return Class == RegClass::Scalar; }
  bool isVector() const { return Class == RegClass::Vector; }
  bool isMask() const { return Class == RegClass::Mask; }

  bool operator==(const Reg &O) const {
    return Class == O.Class && Index == O.Index;
  }
  bool operator!=(const Reg &O) const { return !(*this == O); }

  /// Printable name: r0..r31, v0..v31, k0..k7.
  std::string str() const;
};

} // namespace isa
} // namespace flexvec

#endif // FLEXVEC_ISA_REG_H
