//===- isa/InstrInfo.h - Per-opcode timing and structural info -*- C++ -*-===//
//
// Static description of each opcode used by the out-of-order timing model:
// execution latency, reciprocal throughput, issue port class, and micro-op
// expansion. The FlexVec instruction entries reproduce Table 1 (bottom) of
// the paper:
//
//   KFTM.INC/KFTM.EXC   latency 2, throughput 1
//   VPSLCTLAST          latency 3, throughput 1
//   VPGATHERFF/VMOVFF   1-cycle AGU latency, 2 loads per cycle
//   VPCONFLICTM         latency 20, throughput 2 (micro-op sequence)
//
// Remaining entries use conservative AVX-512-class numbers in the spirit of
// Fog's instruction tables, which is what the paper says it did for the
// baseline ISA.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ISA_INSTRINFO_H
#define FLEXVEC_ISA_INSTRINFO_H

#include "isa/Instruction.h"

namespace flexvec {
namespace isa {

/// Functional unit classes used for issue-port arbitration in the simulator.
enum class PortKind : uint8_t {
  ALU,    ///< Scalar integer ALU (also resolves branches).
  Mul,    ///< Scalar multiply/divide pipe (shares an ALU port).
  FP,     ///< Scalar floating point (executes on a vector port).
  Vec,    ///< Vector integer/fp/mask execution.
  Load,   ///< Load ports (2 units per Table 1).
  Store,  ///< Store port (1 unit per Table 1).
  Branch, ///< Direct jumps.
  None,   ///< Consumes no execution port (nop, halt).
};

/// Static per-opcode timing description.
struct InstrTiming {
  unsigned Latency = 1;      ///< Result latency in cycles.
  double RecipThroughput = 1; ///< Min cycles between issues of this opcode.
  PortKind Port = PortKind::ALU;
  unsigned FixedUops = 1; ///< Uops, before per-lane memory expansion.
  /// For gathers/scatters: number of lanes serviced per memory uop (the
  /// paper's first-faulting gather sustains 2 loads per cycle on 2 ports,
  /// i.e. one lane per uop, one uop per load port per cycle).
  unsigned LanesPerMemUop = 0;
};

/// Returns the timing record for \p Op.
const InstrTiming &instrTiming(Opcode Op);

/// Total micro-op count for \p I (memory lane expansion included),
/// given \p ActiveLanes lanes enabled by the write mask.
unsigned uopCount(const Instruction &I, unsigned ActiveLanes);

} // namespace isa
} // namespace flexvec

#endif // FLEXVEC_ISA_INSTRINFO_H
