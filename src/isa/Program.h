//===- isa/Program.h - Instruction sequences and assembly ------*- C++ -*-===//
//
// A Program is a finalized, branch-resolved instruction sequence starting
// at index 0. ProgramBuilder is the assembler-like construction API used
// by all code generators: it provides typed emit helpers and symbolic
// labels that finalize() resolves into instruction indices.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ISA_PROGRAM_H
#define FLEXVEC_ISA_PROGRAM_H

#include "isa/Instruction.h"

#include <string>
#include <vector>

namespace flexvec {
namespace isa {

/// A finalized instruction sequence.
class Program {
public:
  Program() = default;
  explicit Program(std::vector<Instruction> Instrs,
                   unsigned VecBytes = VectorBytes)
      : Instrs(std::move(Instrs)), VecBytes(VecBytes) {}

  /// Vector-register width (bytes) this program was compiled for; the
  /// emulator predecodes lane counts and all-lanes masks from it.
  unsigned vectorBytes() const { return VecBytes; }
  void setVectorBytes(unsigned Bytes) { VecBytes = Bytes; }

  size_t size() const { return Instrs.size(); }
  bool empty() const { return Instrs.empty(); }
  const Instruction &operator[](size_t I) const { return Instrs[I]; }

  const std::vector<Instruction> &instructions() const { return Instrs; }

  /// Counts instructions for which \p Pred holds.
  template <typename PredT> unsigned countIf(PredT Pred) const {
    unsigned N = 0;
    for (const Instruction &I : Instrs)
      if (Pred(I))
        ++N;
    return N;
  }

  /// True if any instruction uses \p Op.
  bool usesOpcode(Opcode Op) const {
    return countIf([Op](const Instruction &I) { return I.Op == Op; }) != 0;
  }

  /// Renders the whole program as assembly text with instruction indices.
  std::string disassemble() const;

private:
  std::vector<Instruction> Instrs;
  unsigned VecBytes = VectorBytes;
};

/// Assembler-style builder with symbolic labels.
class ProgramBuilder {
public:
  using Label = int32_t;

  /// Creates a fresh unbound label.
  Label createLabel();

  /// Binds \p L to the next emitted instruction.
  void bind(Label L);

  /// Emits a raw instruction; returns a reference valid until the next emit.
  Instruction &emit(Instruction I);

  /// Number of instructions emitted so far.
  size_t size() const { return Instrs.size(); }

  // --- Control ---
  Instruction &halt();
  Instruction &nop();
  Instruction &jmp(Label L);
  Instruction &brZero(Reg Cond, Label L);
  Instruction &brNonZero(Reg Cond, Label L);

  // --- Scalar ---
  Instruction &movImm(Reg D, int64_t V);
  Instruction &mov(Reg D, Reg S);
  Instruction &binOp(Opcode Op, Reg D, Reg A, Reg B);
  Instruction &binOpImm(Opcode Op, Reg D, Reg A, int64_t Imm);
  Instruction &cmp(Reg D, CmpKind K, Reg A, Reg B);
  Instruction &cmpImm(Reg D, CmpKind K, Reg A, int64_t Imm);
  Instruction &fcmp(Reg D, CmpKind K, ElemType Ty, Reg A, Reg B);
  Instruction &fbinOp(Opcode Op, ElemType Ty, Reg D, Reg A, Reg B);
  Instruction &fmovImm(Reg D, ElemType Ty, double V);
  Instruction &select(Reg D, Reg Cond, Reg IfTrue, Reg IfFalse);
  Instruction &load(Reg D, ElemType Ty, Reg Base, Reg Index, uint8_t Scale,
                    int64_t Disp);
  Instruction &store(ElemType Ty, Reg Base, Reg Index, uint8_t Scale,
                     int64_t Disp, Reg Value);

  // --- Vector ---
  Instruction &vbroadcast(Reg D, ElemType Ty, Reg S, Reg Mask = Reg::none());
  Instruction &vbroadcastImm(Reg D, ElemType Ty, int64_t Imm,
                             Reg Mask = Reg::none());
  Instruction &vindex(Reg D, ElemType Ty, Reg Base);
  Instruction &vbinOp(Opcode Op, ElemType Ty, Reg D, Reg A, Reg B,
                      Reg Mask = Reg::none());
  Instruction &vbinOpImm(Opcode Op, ElemType Ty, Reg D, Reg A, int64_t Imm,
                         Reg Mask = Reg::none());
  Instruction &vcmp(Reg KD, CmpKind K, ElemType Ty, Reg A, Reg B,
                    Reg Mask = Reg::none());
  Instruction &vcmpImm(Reg KD, CmpKind K, ElemType Ty, Reg A, int64_t Imm,
                       Reg Mask = Reg::none());
  Instruction &vblend(Reg D, ElemType Ty, Reg Mask, Reg IfTrue, Reg IfFalse);
  Instruction &vextractLast(Reg D, ElemType Ty, Reg Mask, Reg S);
  Instruction &vreduce(Opcode Op, ElemType Ty, Reg D, Reg Mask, Reg S,
                       Reg Identity);
  Instruction &vload(Reg D, ElemType Ty, Reg Mask, Reg Base, Reg Index,
                     uint8_t Scale, int64_t Disp);
  Instruction &vstore(ElemType Ty, Reg Mask, Reg Base, Reg Index,
                      uint8_t Scale, int64_t Disp, Reg Value);
  Instruction &vgather(Reg D, ElemType Ty, Reg Mask, Reg Base, Reg VIndex,
                       uint8_t Scale, int64_t Disp);
  Instruction &vscatter(ElemType Ty, Reg Mask, Reg Base, Reg VIndex,
                        uint8_t Scale, int64_t Disp, Reg Value);

  // --- FlexVec extensions ---
  Instruction &vmovff(Reg D, ElemType Ty, Reg MaskInOut, Reg Base, Reg Index,
                      uint8_t Scale, int64_t Disp);
  Instruction &vgatherff(Reg D, ElemType Ty, Reg MaskInOut, Reg Base,
                         Reg VIndex, uint8_t Scale, int64_t Disp);
  Instruction &vslctlast(Reg D, ElemType Ty, Reg Mask, Reg S);
  Instruction &vconflictm(Reg KD, ElemType Ty, Reg WriteEnable, Reg V1,
                          Reg V2);
  Instruction &kftmExc(Reg KD, ElemType Ty, Reg WriteEnable, Reg KStop);
  Instruction &kftmInc(Reg KD, ElemType Ty, Reg WriteEnable, Reg KStop);
  /// SVE-style loop-control predicate: KD[l] = (I + l < Bound) for the
  /// lanes of Ty at the builder's vector width.
  Instruction &kwhilelt(Reg KD, ElemType Ty, Reg I, Reg Bound);

  // --- Masks ---
  Instruction &kmov(Reg D, Reg S);
  Instruction &kset(Reg D, uint64_t Imm);
  Instruction &kbinOp(Opcode Op, Reg D, Reg A, Reg B);
  Instruction &knot(Reg D, ElemType Ty, Reg S);
  Instruction &ktest(Reg D, Reg K);
  Instruction &kpopcnt(Reg D, Reg K);

  // --- RTM ---
  Instruction &xbegin(Label AbortTarget);
  Instruction &xend();
  Instruction &xabort();

  /// Vector width (bytes) stamped onto the finalized Program. Defaults to
  /// the 512-bit architecture default; the lowering pipeline sets it from
  /// the compilation's VectorConfig.
  void setVectorBytes(unsigned Bytes) { VecBytes = Bytes; }
  unsigned vectorBytes() const { return VecBytes; }

  /// Resolves all labels and produces the program. Every created label must
  /// have been bound.
  Program finalize();

private:
  std::vector<Instruction> Instrs;
  std::vector<int32_t> LabelOffsets; ///< -1 while unbound.
  unsigned VecBytes = VectorBytes;
};

} // namespace isa
} // namespace flexvec

#endif // FLEXVEC_ISA_PROGRAM_H
