//===- isa/Opcode.h - Opcode and condition enumerations ---------*- C++ -*-===//
//
// The instruction set: an AVX-512-like predicated vector ISA plus the
// FlexVec extensions from the paper (Section 3):
//
//   KFtmExc / KFtmInc  - partial mask generation (KFTM.EXC / KFTM.INC)
//   VSlctLast          - select-last broadcast (VPSLCTLAST)
//   VConflictM         - memory conflict detection (VPCONFLICTM.D/Q)
//   VMovFF / VGatherFF - first-faulting load / gather (VMOVFF, VPGATHERFF)
//   XBegin/XEnd/XAbort - restricted transactional memory (RTM alternative)
//   KWhileLT           - SVE-style whilelt loop-control predicate (the
//                        predicated lowering mode's chunk mask generator)
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ISA_OPCODE_H
#define FLEXVEC_ISA_OPCODE_H

#include <cstdint>

namespace flexvec {
namespace isa {

enum class Opcode : uint8_t {
  // --- Control ---
  Halt,      ///< Stop execution.
  Nop,       ///< No operation.
  Jmp,       ///< Unconditional branch to Target.
  BrZero,    ///< Branch to Target if scalar Src1 == 0.
  BrNonZero, ///< Branch to Target if scalar Src1 != 0.

  // --- Scalar integer ---
  MovImm, ///< Dst = Imm.
  Mov,    ///< Dst = Src1.
  Add,    ///< Dst = Src1 + Src2.
  Sub,    ///< Dst = Src1 - Src2.
  Mul,    ///< Dst = Src1 * Src2.
  Div,    ///< Dst = Src1 / Src2 (signed; Src2 != 0).
  And,    ///< Dst = Src1 & Src2.
  Or,     ///< Dst = Src1 | Src2.
  Xor,    ///< Dst = Src1 ^ Src2.
  Shl,    ///< Dst = Src1 << (Src2 & 63).
  Shr,    ///< Dst = (uint64)Src1 >> (Src2 & 63).
  AddImm, ///< Dst = Src1 + Imm.
  MulImm, ///< Dst = Src1 * Imm.
  AndImm, ///< Dst = Src1 & Imm.
  ShlImm, ///< Dst = Src1 << Imm.
  ShrImm, ///< Dst = (uint64)Src1 >> Imm.
  Min,    ///< Dst = min(Src1, Src2) signed.
  Max,    ///< Dst = max(Src1, Src2) signed.
  Cmp,    ///< Dst = Src1 <Cond> Src2 ? 1 : 0 (signed).
  CmpImm, ///< Dst = Src1 <Cond> Imm ? 1 : 0 (signed).
  Select, ///< Dst = Src1 != 0 ? Src2 : Src3 (CMOV-like).

  // --- Scalar floating point (values held in scalar registers) ---
  FMovImm, ///< Dst = bit pattern Imm interpreted per Type.
  FAdd,    ///< Dst = Src1 + Src2.
  FSub,    ///< Dst = Src1 - Src2.
  FMul,    ///< Dst = Src1 * Src2.
  FDiv,    ///< Dst = Src1 / Src2.
  FMin,    ///< Dst = min(Src1, Src2).
  FMax,    ///< Dst = max(Src1, Src2).
  FCmp,    ///< Dst = Src1 <Cond> Src2 ? 1 : 0.

  // --- Scalar memory (address = Src1(base) + Src2(index)*Scale + Disp) ---
  Load,  ///< Dst = mem[addr], element width from Type.
  Store, ///< mem[addr] = Src3, element width from Type.

  // --- Vector (all writes predicated by MaskReg; k0 = all lanes) ---
  VBroadcast,    ///< Dst[l] = scalar Src1 for all l.
  VBroadcastImm, ///< Dst[l] = Imm for all l.
  VIndex,        ///< Dst[l] = scalar Src1 + l (iota).
  VAdd,          ///< Dst[l] = Src1[l] + Src2[l].
  VSub,          ///< Dst[l] = Src1[l] - Src2[l].
  VMul,          ///< Dst[l] = Src1[l] * Src2[l].
  VAnd,          ///< Dst[l] = Src1[l] & Src2[l].
  VOr,           ///< Dst[l] = Src1[l] | Src2[l].
  VXor,          ///< Dst[l] = Src1[l] ^ Src2[l].
  VMin,          ///< Dst[l] = min(Src1[l], Src2[l]) signed.
  VMax,          ///< Dst[l] = max(Src1[l], Src2[l]) signed.
  VAddImm,       ///< Dst[l] = Src1[l] + Imm.
  VMulImm,       ///< Dst[l] = Src1[l] * Imm.
  VShlImm,       ///< Dst[l] = Src1[l] << Imm.
  VFAdd,         ///< Dst[l] = Src1[l] + Src2[l] (fp).
  VFSub,         ///< Dst[l] = Src1[l] - Src2[l] (fp).
  VFMul,         ///< Dst[l] = Src1[l] * Src2[l] (fp).
  VFDiv,         ///< Dst[l] = Src1[l] / Src2[l] (fp).
  VFMin,         ///< Dst[l] = min(Src1[l], Src2[l]) (fp).
  VFMax,         ///< Dst[l] = max(Src1[l], Src2[l]) (fp).
  VCmp,          ///< Dst(kreg)[l] = MaskReg[l] && (Src1[l] <Cond> Src2[l]).
  VCmpImm,       ///< Dst(kreg)[l] = MaskReg[l] && (Src1[l] <Cond> Imm).
  VBlend,        ///< Dst[l] = MaskReg[l] ? Src1[l] : Src2[l].
  VExtractLast,  ///< Dst(scalar) = last MaskReg-enabled lane of Src1
                 ///< (last lane when MaskReg is empty).
  VReduceAdd,    ///< Dst(scalar) = sum of MaskReg-enabled lanes of Src1.
  VReduceMin,    ///< Dst(scalar) = Src2 (identity) min enabled lanes of Src1.
  VReduceMax,    ///< Dst(scalar) = Src2 (identity) max enabled lanes of Src1.

  // --- Vector memory ---
  VLoad,  ///< Dst[l] = mem[addr + l*esize] for MaskReg-enabled l.
  VStore, ///< mem[addr + l*esize] = Src3[l] for MaskReg-enabled l.
  VGather, ///< Dst[l] = mem[Src1(base) + Src2[l]*Scale + Disp] for enabled l.
  VScatter, ///< mem[Src1 + Src2[l]*Scale + Disp] = Src3[l] for enabled l.

  // --- FlexVec extensions (Section 3) ---
  VMovFF,    ///< First-faulting unaligned vector load; MaskReg in/out.
  VGatherFF, ///< First-faulting gather; MaskReg in/out.
  VSlctLast, ///< Dst[*] = broadcast of last MaskReg-enabled lane of Src1.
  VConflictM, ///< Dst(kreg) = conflict stop-points of Src1 against preceding
              ///< MaskReg-enabled lanes of Src2 (VPCONFLICTM.D/Q).
  KFtmExc, ///< Dst = MaskReg-enabled lanes strictly before first enabled
           ///< set bit of Src1 (KFTM.EXC).
  KFtmInc, ///< Same, including the first enabled set bit lane (KFTM.INC).

  // --- Mask manipulation ---
  KMov,    ///< Dst = Src1 (mask copy).
  KSet,    ///< Dst = Imm (mask immediate).
  KAnd,    ///< Dst = Src1 & Src2.
  KOr,     ///< Dst = Src1 | Src2.
  KXor,    ///< Dst = Src1 ^ Src2.
  KAndN,   ///< Dst = ~Src1 & Src2.
  KNot,    ///< Dst = ~Src1 (within lane width of Type).
  KTest,   ///< Dst(scalar) = (Src1 != 0) ? 1 : 0.
  KPopcnt, ///< Dst(scalar) = popcount(Src1).
  KWhileLT, ///< Dst[l] = (Src1 + l < Src2) for l < lanes(Type); the
            ///< SVE-style whilelt loop-control predicate generator.

  // --- Restricted transactional memory (Section 3.3.2) ---
  XBegin, ///< Begin transaction; on abort, control transfers to Target
          ///< with all register and memory effects rolled back.
  XEnd,   ///< Commit transaction.
  XAbort, ///< Explicitly abort the enclosing transaction.
};

inline constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::XAbort) + 1;

/// Comparison predicates (shared by scalar and vector compares).
enum class CmpKind : uint8_t { EQ, NE, LT, LE, GT, GE };

/// Mnemonic for an opcode ("vpgatherff", "kftm.exc", ...).
const char *opcodeName(Opcode Op);

/// Textual form of a predicate ("lt", "ge", ...).
const char *cmpKindName(CmpKind K);

/// Evaluates \p K over signed integers.
bool evalCmp(CmpKind K, int64_t A, int64_t B);

/// Evaluates \p K over doubles (covers both F32 and F64 lane compares).
bool evalCmp(CmpKind K, double A, double B);

} // namespace isa
} // namespace flexvec

#endif // FLEXVEC_ISA_OPCODE_H
