//===- isa/LaneTraits.h - Per-ElemType lane-kernel traits -------*- C++ -*-===//
//
// Compile-time facts about how each ElemType's lanes behave inside the
// emulator's 64-bit lane pipeline. VecReg widens every lane to int64 on
// read and truncates on write; *which* extension it applies is the one
// semantic degree of freedom between the element types, and every lane
// kernel (src/emu/simd) must reproduce it exactly:
//
//   I32 -> sign-extend  (signed 32-bit arithmetic/compares)
//   F32 -> zero-extend  (raw 32-bit bit patterns; integer min/max and
//                        compares on F32-typed lanes are unsigned)
//   I64/F64 -> identity (raw 64-bit)
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ISA_LANETRAITS_H
#define FLEXVEC_ISA_LANETRAITS_H

#include "isa/Reg.h"

namespace flexvec {
namespace isa {

/// Number of ElemType enumerators (table dimension for per-type kernels).
inline constexpr unsigned NumElemTypes = 4;

/// Number of CmpKind enumerators (table dimension for compare kernels).
inline constexpr unsigned NumCmpKinds = 6;

/// True when VecReg::laneInt sign-extends this type's lanes to 64 bits
/// (false means zero-extension for 4-byte lanes, identity for 8-byte).
constexpr bool laneSignExtends(ElemType Ty) { return Ty == ElemType::I32; }

/// Lane width in bytes, usable in constant expressions (elemSize is the
/// runtime twin with a covered-switch assert).
constexpr unsigned laneBytes(ElemType Ty) {
  return (Ty == ElemType::I32 || Ty == ElemType::F32) ? 4 : 8;
}

/// Lanes of a default-width (512-bit) vector at this element width; thin
/// constexpr wrapper over the single laneCountFor definition (isa/Reg.h).
constexpr unsigned laneCount(ElemType Ty) {
  return laneCountFor(VectorBytes, Ty);
}

} // namespace isa
} // namespace flexvec

#endif // FLEXVEC_ISA_LANETRAITS_H
