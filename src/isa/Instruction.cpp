//===- isa/Instruction.cpp ------------------------------------------------===//

#include "isa/Instruction.h"

#include <cstdio>

using namespace flexvec;
using namespace flexvec::isa;

const char *isa::elemTypeName(ElemType Ty) {
  switch (Ty) {
  case ElemType::I32:
    return "i32";
  case ElemType::I64:
    return "i64";
  case ElemType::F32:
    return "f32";
  case ElemType::F64:
    return "f64";
  }
  return "?";
}

std::string Reg::str() const {
  char Buf[8];
  switch (Class) {
  case RegClass::None:
    return "<none>";
  case RegClass::Scalar:
    std::snprintf(Buf, sizeof(Buf), "r%u", Index);
    return Buf;
  case RegClass::Vector:
    std::snprintf(Buf, sizeof(Buf), "v%u", Index);
    return Buf;
  case RegClass::Mask:
    std::snprintf(Buf, sizeof(Buf), "k%u", Index);
    return Buf;
  }
  return "<bad>";
}

bool Instruction::isVector() const {
  switch (Op) {
  case Opcode::VBroadcast:
  case Opcode::VBroadcastImm:
  case Opcode::VIndex:
  case Opcode::VAdd:
  case Opcode::VSub:
  case Opcode::VMul:
  case Opcode::VAnd:
  case Opcode::VOr:
  case Opcode::VXor:
  case Opcode::VMin:
  case Opcode::VMax:
  case Opcode::VAddImm:
  case Opcode::VMulImm:
  case Opcode::VShlImm:
  case Opcode::VFAdd:
  case Opcode::VFSub:
  case Opcode::VFMul:
  case Opcode::VFDiv:
  case Opcode::VFMin:
  case Opcode::VFMax:
  case Opcode::VCmp:
  case Opcode::VCmpImm:
  case Opcode::VBlend:
  case Opcode::VExtractLast:
  case Opcode::VReduceAdd:
  case Opcode::VReduceMin:
  case Opcode::VReduceMax:
  case Opcode::VLoad:
  case Opcode::VStore:
  case Opcode::VGather:
  case Opcode::VScatter:
  case Opcode::VMovFF:
  case Opcode::VGatherFF:
  case Opcode::VSlctLast:
  case Opcode::VConflictM:
  case Opcode::KFtmExc:
  case Opcode::KFtmInc:
  case Opcode::KWhileLT:
    return true;
  default:
    return false;
  }
}

std::string Instruction::str() const {
  std::string Out = opcodeName(Op);
  switch (Op) {
  case Opcode::Cmp:
  case Opcode::CmpImm:
  case Opcode::FCmp:
  case Opcode::VCmp:
  case Opcode::VCmpImm:
    Out += '.';
    Out += cmpKindName(Cond);
    break;
  default:
    break;
  }
  if (isVector() || Op == Opcode::Load || Op == Opcode::Store ||
      Op == Opcode::FMovImm) {
    Out += '.';
    Out += elemTypeName(Type);
  }

  bool FirstOperand = true;
  auto appendOperand = [&Out, &FirstOperand](const std::string &S) {
    Out += FirstOperand ? " " : ", ";
    FirstOperand = false;
    Out += S;
  };

  if (Dst.isValid())
    appendOperand(Dst.str());
  if (MaskReg.isValid())
    appendOperand("{" + MaskReg.str() + "}");

  if (isMemory()) {
    std::string Mem = "[" + Src1.str();
    if (Src2.isValid()) {
      Mem += " + " + Src2.str();
      if (Scale != 1) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "*%u", Scale);
        Mem += Buf;
      }
    }
    if (Disp != 0) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), " + %lld", static_cast<long long>(Disp));
      Mem += Buf;
    }
    Mem += "]";
    appendOperand(Mem);
    if (Src3.isValid())
      appendOperand(Src3.str());
  } else {
    if (Src1.isValid())
      appendOperand(Src1.str());
    if (Src2.isValid())
      appendOperand(Src2.str());
    if (Src3.isValid())
      appendOperand(Src3.str());
  }

  switch (Op) {
  case Opcode::MovImm:
  case Opcode::FMovImm:
  case Opcode::AddImm:
  case Opcode::MulImm:
  case Opcode::AndImm:
  case Opcode::ShlImm:
  case Opcode::ShrImm:
  case Opcode::CmpImm:
  case Opcode::VBroadcastImm:
  case Opcode::VAddImm:
  case Opcode::VMulImm:
  case Opcode::VShlImm:
  case Opcode::VCmpImm:
  case Opcode::KSet: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Imm));
    appendOperand(Buf);
    break;
  }
  default:
    break;
  }

  if (Target != NoTarget) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "@%d", Target);
    appendOperand(Buf);
  }

  if (!Comment.empty())
    Out += "    ; " + Comment;
  return Out;
}
