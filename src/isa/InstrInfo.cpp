//===- isa/InstrInfo.cpp --------------------------------------------------===//

#include "isa/InstrInfo.h"

#include "support/Error.h"

#include <array>

using namespace flexvec;
using namespace flexvec::isa;

namespace {

std::array<InstrTiming, NumOpcodes> buildTimingTable() {
  std::array<InstrTiming, NumOpcodes> T{};
  auto set = [&T](Opcode Op, unsigned Lat, double Tput, PortKind Port,
                  unsigned Uops = 1, unsigned LanesPerMemUop = 0) {
    T[static_cast<unsigned>(Op)] =
        InstrTiming{Lat, Tput, Port, Uops, LanesPerMemUop};
  };

  // Control.
  set(Opcode::Halt, 1, 1, PortKind::None, 0);
  set(Opcode::Nop, 1, 0.25, PortKind::None, 0);
  set(Opcode::Jmp, 1, 1, PortKind::Branch);
  set(Opcode::BrZero, 1, 1, PortKind::ALU);
  set(Opcode::BrNonZero, 1, 1, PortKind::ALU);

  // Scalar integer: single-cycle ALU except multiply/divide.
  for (Opcode Op : {Opcode::MovImm, Opcode::Mov, Opcode::Add, Opcode::Sub,
                    Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Shl,
                    Opcode::Shr, Opcode::AddImm, Opcode::AndImm,
                    Opcode::ShlImm, Opcode::ShrImm, Opcode::Min, Opcode::Max,
                    Opcode::Cmp, Opcode::CmpImm, Opcode::Select})
    set(Op, 1, 0.25, PortKind::ALU);
  set(Opcode::Mul, 3, 1, PortKind::Mul);
  set(Opcode::MulImm, 3, 1, PortKind::Mul);
  set(Opcode::Div, 21, 10, PortKind::Mul, 4);

  // Scalar floating point.
  set(Opcode::FMovImm, 1, 0.5, PortKind::FP);
  set(Opcode::FAdd, 4, 0.5, PortKind::FP);
  set(Opcode::FSub, 4, 0.5, PortKind::FP);
  set(Opcode::FMul, 4, 0.5, PortKind::FP);
  set(Opcode::FDiv, 14, 4, PortKind::FP);
  set(Opcode::FMin, 4, 0.5, PortKind::FP);
  set(Opcode::FMax, 4, 0.5, PortKind::FP);
  set(Opcode::FCmp, 4, 0.5, PortKind::FP);

  // Scalar memory. Latency here covers address generation; the cache model
  // adds the hierarchy latency (Table 1: 4-cycle L1 load-to-use).
  set(Opcode::Load, 1, 0.5, PortKind::Load);
  set(Opcode::Store, 1, 1, PortKind::Store);

  // Vector integer.
  for (Opcode Op : {Opcode::VAdd, Opcode::VSub, Opcode::VAnd, Opcode::VOr,
                    Opcode::VXor, Opcode::VMin, Opcode::VMax, Opcode::VAddImm,
                    Opcode::VShlImm})
    set(Op, 1, 0.5, PortKind::Vec);
  set(Opcode::VMul, 5, 1, PortKind::Vec, 2);
  set(Opcode::VMulImm, 5, 1, PortKind::Vec, 2);
  set(Opcode::VBroadcast, 3, 1, PortKind::Vec);
  set(Opcode::VBroadcastImm, 3, 1, PortKind::Vec);
  set(Opcode::VIndex, 1, 0.5, PortKind::Vec);
  set(Opcode::VBlend, 1, 0.5, PortKind::Vec);

  // Vector floating point.
  for (Opcode Op : {Opcode::VFAdd, Opcode::VFSub, Opcode::VFMul,
                    Opcode::VFMin, Opcode::VFMax})
    set(Op, 4, 0.5, PortKind::Vec);
  set(Opcode::VFDiv, 16, 8, PortKind::Vec, 2);

  // Compares write mask registers (3-cycle k-register forwarding, AVX-512).
  set(Opcode::VCmp, 3, 1, PortKind::Vec);
  set(Opcode::VCmpImm, 3, 1, PortKind::Vec);

  // Horizontal operations.
  set(Opcode::VExtractLast, 3, 1, PortKind::Vec, 2);
  set(Opcode::VReduceAdd, 8, 2, PortKind::Vec, 4);
  set(Opcode::VReduceMin, 8, 2, PortKind::Vec, 4);
  set(Opcode::VReduceMax, 8, 2, PortKind::Vec, 4);

  // Vector memory. Contiguous accesses are single memory uops; gathers and
  // scatters expand to one memory uop per active lane (2 load ports sustain
  // the paper's 2 loads per cycle).
  set(Opcode::VLoad, 1, 0.5, PortKind::Load);
  set(Opcode::VStore, 1, 1, PortKind::Store);
  set(Opcode::VGather, 1, 0.5, PortKind::Load, 1, /*LanesPerMemUop=*/1);
  set(Opcode::VScatter, 1, 1, PortKind::Store, 1, /*LanesPerMemUop=*/1);

  // FlexVec extensions: Table 1 (bottom).
  set(Opcode::VMovFF, 1, 0.5, PortKind::Load);
  set(Opcode::VGatherFF, 1, 0.5, PortKind::Load, 1, /*LanesPerMemUop=*/1);
  set(Opcode::VSlctLast, 3, 1, PortKind::Vec);
  set(Opcode::VConflictM, 20, 2, PortKind::Vec, 8);
  set(Opcode::KFtmExc, 2, 1, PortKind::Vec);
  set(Opcode::KFtmInc, 2, 1, PortKind::Vec);

  // Mask manipulation (single-cycle, mask unit shares the vector ports).
  for (Opcode Op : {Opcode::KMov, Opcode::KSet, Opcode::KAnd, Opcode::KOr,
                    Opcode::KXor, Opcode::KAndN, Opcode::KNot})
    set(Op, 1, 0.5, PortKind::Vec);
  set(Opcode::KTest, 2, 1, PortKind::ALU);
  set(Opcode::KPopcnt, 2, 1, PortKind::ALU);
  // SVE-style whilelt predicate generation: same class as the KFTM mask
  // producers (scalar compare fanned across the mask unit).
  set(Opcode::KWhileLT, 2, 1, PortKind::Vec);

  // RTM begin/commit overhead, in the spirit of Haswell TSX measurements.
  set(Opcode::XBegin, 16, 16, PortKind::ALU, 5);
  set(Opcode::XEnd, 16, 16, PortKind::ALU, 5);
  set(Opcode::XAbort, 8, 8, PortKind::ALU, 2);

  return T;
}

const std::array<InstrTiming, NumOpcodes> TimingTable = buildTimingTable();

} // namespace

const InstrTiming &isa::instrTiming(Opcode Op) {
  return TimingTable[static_cast<unsigned>(Op)];
}

unsigned isa::uopCount(const Instruction &I, unsigned ActiveLanes) {
  const InstrTiming &T = instrTiming(I.Op);
  if (T.LanesPerMemUop == 0)
    return T.FixedUops;
  // Gather/scatter-style expansion: address-generation uop(s) plus one
  // memory uop per LanesPerMemUop active lanes (at least one).
  unsigned MemUops =
      (ActiveLanes + T.LanesPerMemUop - 1) / T.LanesPerMemUop;
  if (MemUops == 0)
    MemUops = 1;
  return T.FixedUops + MemUops;
}
