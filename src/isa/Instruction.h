//===- isa/Instruction.h - Machine instruction representation --*- C++ -*-===//
//
// A single fixed-shape instruction record. All instructions share one
// struct; which fields are meaningful depends on the opcode (see
// isa/Opcode.h). Branch targets are symbolic label ids until
// ProgramBuilder::finalize resolves them to instruction indices.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ISA_INSTRUCTION_H
#define FLEXVEC_ISA_INSTRUCTION_H

#include "isa/Opcode.h"
#include "isa/Reg.h"

#include <cstdint>
#include <string>

namespace flexvec {
namespace isa {

/// Sentinel for "no branch target".
inline constexpr int32_t NoTarget = -1;

/// One machine instruction.
///
/// Memory-operand addressing follows x86: effective address =
/// Src1 (base register) + Src2 (index, scalar or vector) * Scale + Disp.
struct Instruction {
  Opcode Op = Opcode::Nop;
  ElemType Type = ElemType::I64; ///< Element/operand type.
  CmpKind Cond = CmpKind::EQ;    ///< Predicate for compare opcodes.

  Reg Dst;         ///< Destination register (scalar, vector, or mask).
  Reg Src1;        ///< First source (base register for memory ops).
  Reg Src2;        ///< Second source (index register for memory ops).
  Reg Src3;        ///< Third source (stored value for Store/VStore/VScatter).
  Reg MaskReg;     ///< Write mask (vector ops); invalid means k0 (all lanes).
  int64_t Imm = 0; ///< Immediate operand.
  uint8_t Scale = 1;  ///< Memory index scale (1, 2, 4, or 8).
  int64_t Disp = 0;   ///< Memory displacement.
  int32_t Target = NoTarget; ///< Branch target (label id, then instr index).

  /// Optional annotation carried through to the disassembly, used by the
  /// code generators to tie emitted instructions back to source statements
  /// ("S7: d_arr[coord] = s").
  std::string Comment;

  bool isBranch() const {
    return Op == Opcode::Jmp || Op == Opcode::BrZero ||
           Op == Opcode::BrNonZero;
  }
  bool isConditionalBranch() const {
    return Op == Opcode::BrZero || Op == Opcode::BrNonZero;
  }
  bool isLoad() const {
    return Op == Opcode::Load || Op == Opcode::VLoad || Op == Opcode::VGather ||
           Op == Opcode::VMovFF || Op == Opcode::VGatherFF;
  }
  bool isStore() const {
    return Op == Opcode::Store || Op == Opcode::VStore ||
           Op == Opcode::VScatter;
  }
  bool isMemory() const { return isLoad() || isStore(); }
  bool isFirstFaulting() const {
    return Op == Opcode::VMovFF || Op == Opcode::VGatherFF;
  }
  bool isVector() const;

  /// Renders the instruction as assembly text.
  std::string str() const;
};

} // namespace isa
} // namespace flexvec

#endif // FLEXVEC_ISA_INSTRUCTION_H
