//===- isa/Program.cpp ----------------------------------------------------===//

#include "isa/Program.h"

#include "support/Error.h"

#include <cassert>
#include <cstdio>

using namespace flexvec;
using namespace flexvec::isa;

std::string Program::disassemble() const {
  std::string Out;
  for (size_t I = 0; I < Instrs.size(); ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%4zu:  ", I);
    Out += Buf;
    Out += Instrs[I].str();
    Out += '\n';
  }
  return Out;
}

ProgramBuilder::Label ProgramBuilder::createLabel() {
  LabelOffsets.push_back(-1);
  return static_cast<Label>(LabelOffsets.size() - 1);
}

void ProgramBuilder::bind(Label L) {
  assert(L >= 0 && static_cast<size_t>(L) < LabelOffsets.size() &&
         "unknown label");
  assert(LabelOffsets[L] == -1 && "label bound twice");
  LabelOffsets[L] = static_cast<int32_t>(Instrs.size());
}

Instruction &ProgramBuilder::emit(Instruction I) {
  Instrs.push_back(std::move(I));
  return Instrs.back();
}

Program ProgramBuilder::finalize() {
  for (size_t L = 0; L < LabelOffsets.size(); ++L)
    if (LabelOffsets[L] == -1)
      fatalError("unbound label in program");
  std::vector<Instruction> Resolved = Instrs;
  for (Instruction &I : Resolved) {
    if (I.Target == NoTarget)
      continue;
    assert(I.Target >= 0 &&
           static_cast<size_t>(I.Target) < LabelOffsets.size() &&
           "branch to unknown label");
    I.Target = LabelOffsets[I.Target];
  }
  return Program(std::move(Resolved), VecBytes);
}

// --- Control -----------------------------------------------------------===//

Instruction &ProgramBuilder::halt() {
  Instruction I;
  I.Op = Opcode::Halt;
  return emit(I);
}

Instruction &ProgramBuilder::nop() {
  Instruction I;
  I.Op = Opcode::Nop;
  return emit(I);
}

Instruction &ProgramBuilder::jmp(Label L) {
  Instruction I;
  I.Op = Opcode::Jmp;
  I.Target = L;
  return emit(I);
}

Instruction &ProgramBuilder::brZero(Reg Cond, Label L) {
  assert(Cond.isScalar() && "branch condition must be scalar");
  Instruction I;
  I.Op = Opcode::BrZero;
  I.Src1 = Cond;
  I.Target = L;
  return emit(I);
}

Instruction &ProgramBuilder::brNonZero(Reg Cond, Label L) {
  assert(Cond.isScalar() && "branch condition must be scalar");
  Instruction I;
  I.Op = Opcode::BrNonZero;
  I.Src1 = Cond;
  I.Target = L;
  return emit(I);
}

// --- Scalar ------------------------------------------------------------===//

Instruction &ProgramBuilder::movImm(Reg D, int64_t V) {
  assert(D.isScalar());
  Instruction I;
  I.Op = Opcode::MovImm;
  I.Dst = D;
  I.Imm = V;
  return emit(I);
}

Instruction &ProgramBuilder::mov(Reg D, Reg S) {
  assert(D.isScalar() && S.isScalar());
  Instruction I;
  I.Op = Opcode::Mov;
  I.Dst = D;
  I.Src1 = S;
  return emit(I);
}

Instruction &ProgramBuilder::binOp(Opcode Op, Reg D, Reg A, Reg B) {
  assert(D.isScalar() && A.isScalar() && B.isScalar());
  Instruction I;
  I.Op = Op;
  I.Dst = D;
  I.Src1 = A;
  I.Src2 = B;
  return emit(I);
}

Instruction &ProgramBuilder::binOpImm(Opcode Op, Reg D, Reg A, int64_t Imm) {
  assert(D.isScalar() && A.isScalar());
  Instruction I;
  I.Op = Op;
  I.Dst = D;
  I.Src1 = A;
  I.Imm = Imm;
  return emit(I);
}

Instruction &ProgramBuilder::cmp(Reg D, CmpKind K, Reg A, Reg B) {
  Instruction &I = binOp(Opcode::Cmp, D, A, B);
  I.Cond = K;
  return I;
}

Instruction &ProgramBuilder::cmpImm(Reg D, CmpKind K, Reg A, int64_t Imm) {
  Instruction &I = binOpImm(Opcode::CmpImm, D, A, Imm);
  I.Cond = K;
  return I;
}

Instruction &ProgramBuilder::fcmp(Reg D, CmpKind K, ElemType Ty, Reg A,
                                  Reg B) {
  assert(isFloatType(Ty) && "fcmp requires a float type");
  Instruction &I = binOp(Opcode::FCmp, D, A, B);
  I.Cond = K;
  I.Type = Ty;
  return I;
}

Instruction &ProgramBuilder::fbinOp(Opcode Op, ElemType Ty, Reg D, Reg A,
                                    Reg B) {
  assert(isFloatType(Ty) && "scalar fp op requires a float type");
  Instruction &I = binOp(Op, D, A, B);
  I.Type = Ty;
  return I;
}

Instruction &ProgramBuilder::fmovImm(Reg D, ElemType Ty, double V) {
  assert(D.isScalar() && isFloatType(Ty));
  Instruction I;
  I.Op = Opcode::FMovImm;
  I.Dst = D;
  I.Type = Ty;
  if (Ty == ElemType::F32) {
    float F = static_cast<float>(V);
    uint32_t Bits;
    __builtin_memcpy(&Bits, &F, 4);
    I.Imm = Bits;
  } else {
    uint64_t Bits;
    __builtin_memcpy(&Bits, &V, 8);
    I.Imm = static_cast<int64_t>(Bits);
  }
  return emit(I);
}

Instruction &ProgramBuilder::select(Reg D, Reg Cond, Reg IfTrue, Reg IfFalse) {
  assert(D.isScalar() && Cond.isScalar() && IfTrue.isScalar() &&
         IfFalse.isScalar());
  Instruction I;
  I.Op = Opcode::Select;
  I.Dst = D;
  I.Src1 = Cond;
  I.Src2 = IfTrue;
  I.Src3 = IfFalse;
  return emit(I);
}

Instruction &ProgramBuilder::load(Reg D, ElemType Ty, Reg Base, Reg Index,
                                  uint8_t Scale, int64_t Disp) {
  assert(D.isScalar() && Base.isScalar());
  assert(!Index.isValid() || Index.isScalar());
  Instruction I;
  I.Op = Opcode::Load;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = Base;
  I.Src2 = Index;
  I.Scale = Scale;
  I.Disp = Disp;
  return emit(I);
}

Instruction &ProgramBuilder::store(ElemType Ty, Reg Base, Reg Index,
                                   uint8_t Scale, int64_t Disp, Reg Value) {
  assert(Base.isScalar() && Value.isScalar());
  assert(!Index.isValid() || Index.isScalar());
  Instruction I;
  I.Op = Opcode::Store;
  I.Type = Ty;
  I.Src1 = Base;
  I.Src2 = Index;
  I.Src3 = Value;
  I.Scale = Scale;
  I.Disp = Disp;
  return emit(I);
}

// --- Vector ------------------------------------------------------------===//

Instruction &ProgramBuilder::vbroadcast(Reg D, ElemType Ty, Reg S, Reg Mask) {
  assert(D.isVector() && S.isScalar());
  Instruction I;
  I.Op = Opcode::VBroadcast;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = S;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vbroadcastImm(Reg D, ElemType Ty, int64_t Imm,
                                           Reg Mask) {
  assert(D.isVector());
  Instruction I;
  I.Op = Opcode::VBroadcastImm;
  I.Type = Ty;
  I.Dst = D;
  I.Imm = Imm;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vindex(Reg D, ElemType Ty, Reg Base) {
  assert(D.isVector() && Base.isScalar());
  Instruction I;
  I.Op = Opcode::VIndex;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = Base;
  return emit(I);
}

Instruction &ProgramBuilder::vbinOp(Opcode Op, ElemType Ty, Reg D, Reg A,
                                    Reg B, Reg Mask) {
  assert(D.isVector() && A.isVector() && B.isVector());
  Instruction I;
  I.Op = Op;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = A;
  I.Src2 = B;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vbinOpImm(Opcode Op, ElemType Ty, Reg D, Reg A,
                                       int64_t Imm, Reg Mask) {
  assert(D.isVector() && A.isVector());
  Instruction I;
  I.Op = Op;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = A;
  I.Imm = Imm;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vcmp(Reg KD, CmpKind K, ElemType Ty, Reg A,
                                  Reg B, Reg Mask) {
  assert(KD.isMask() && A.isVector() && B.isVector());
  Instruction I;
  I.Op = Opcode::VCmp;
  I.Cond = K;
  I.Type = Ty;
  I.Dst = KD;
  I.Src1 = A;
  I.Src2 = B;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vcmpImm(Reg KD, CmpKind K, ElemType Ty, Reg A,
                                     int64_t Imm, Reg Mask) {
  assert(KD.isMask() && A.isVector());
  Instruction I;
  I.Op = Opcode::VCmpImm;
  I.Cond = K;
  I.Type = Ty;
  I.Dst = KD;
  I.Src1 = A;
  I.Imm = Imm;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vblend(Reg D, ElemType Ty, Reg Mask, Reg IfTrue,
                                    Reg IfFalse) {
  assert(D.isVector() && Mask.isMask() && IfTrue.isVector() &&
         IfFalse.isVector());
  Instruction I;
  I.Op = Opcode::VBlend;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = IfTrue;
  I.Src2 = IfFalse;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vextractLast(Reg D, ElemType Ty, Reg Mask,
                                          Reg S) {
  assert(D.isScalar() && S.isVector());
  Instruction I;
  I.Op = Opcode::VExtractLast;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = S;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vreduce(Opcode Op, ElemType Ty, Reg D, Reg Mask,
                                     Reg S, Reg Identity) {
  assert((Op == Opcode::VReduceAdd || Op == Opcode::VReduceMin ||
          Op == Opcode::VReduceMax) &&
         "not a reduction opcode");
  assert(D.isScalar() && S.isVector() && Identity.isScalar());
  Instruction I;
  I.Op = Op;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = S;
  I.Src2 = Identity;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vload(Reg D, ElemType Ty, Reg Mask, Reg Base,
                                   Reg Index, uint8_t Scale, int64_t Disp) {
  assert(D.isVector() && Base.isScalar());
  Instruction I;
  I.Op = Opcode::VLoad;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = Base;
  I.Src2 = Index;
  I.Scale = Scale;
  I.Disp = Disp;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vstore(ElemType Ty, Reg Mask, Reg Base,
                                    Reg Index, uint8_t Scale, int64_t Disp,
                                    Reg Value) {
  assert(Base.isScalar() && Value.isVector());
  Instruction I;
  I.Op = Opcode::VStore;
  I.Type = Ty;
  I.Src1 = Base;
  I.Src2 = Index;
  I.Src3 = Value;
  I.Scale = Scale;
  I.Disp = Disp;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vgather(Reg D, ElemType Ty, Reg Mask, Reg Base,
                                     Reg VIndex, uint8_t Scale, int64_t Disp) {
  assert(D.isVector() && Base.isScalar() && VIndex.isVector());
  Instruction I;
  I.Op = Opcode::VGather;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = Base;
  I.Src2 = VIndex;
  I.Scale = Scale;
  I.Disp = Disp;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vscatter(ElemType Ty, Reg Mask, Reg Base,
                                      Reg VIndex, uint8_t Scale, int64_t Disp,
                                      Reg Value) {
  assert(Base.isScalar() && VIndex.isVector() && Value.isVector());
  Instruction I;
  I.Op = Opcode::VScatter;
  I.Type = Ty;
  I.Src1 = Base;
  I.Src2 = VIndex;
  I.Src3 = Value;
  I.Scale = Scale;
  I.Disp = Disp;
  I.MaskReg = Mask;
  return emit(I);
}

// --- FlexVec extensions -------------------------------------------------===//

Instruction &ProgramBuilder::vmovff(Reg D, ElemType Ty, Reg MaskInOut,
                                    Reg Base, Reg Index, uint8_t Scale,
                                    int64_t Disp) {
  assert(D.isVector() && MaskInOut.isMask() && Base.isScalar());
  assert(MaskInOut.Index != 0 && "first-faulting mask must be writable");
  Instruction I;
  I.Op = Opcode::VMovFF;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = Base;
  I.Src2 = Index;
  I.Scale = Scale;
  I.Disp = Disp;
  I.MaskReg = MaskInOut;
  return emit(I);
}

Instruction &ProgramBuilder::vgatherff(Reg D, ElemType Ty, Reg MaskInOut,
                                       Reg Base, Reg VIndex, uint8_t Scale,
                                       int64_t Disp) {
  assert(D.isVector() && MaskInOut.isMask() && Base.isScalar() &&
         VIndex.isVector());
  assert(MaskInOut.Index != 0 && "first-faulting mask must be writable");
  Instruction I;
  I.Op = Opcode::VGatherFF;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = Base;
  I.Src2 = VIndex;
  I.Scale = Scale;
  I.Disp = Disp;
  I.MaskReg = MaskInOut;
  return emit(I);
}

Instruction &ProgramBuilder::vslctlast(Reg D, ElemType Ty, Reg Mask, Reg S) {
  assert(D.isVector() && Mask.isMask() && S.isVector());
  Instruction I;
  I.Op = Opcode::VSlctLast;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = S;
  I.MaskReg = Mask;
  return emit(I);
}

Instruction &ProgramBuilder::vconflictm(Reg KD, ElemType Ty, Reg WriteEnable,
                                        Reg V1, Reg V2) {
  assert(KD.isMask() && V1.isVector() && V2.isVector());
  Instruction I;
  I.Op = Opcode::VConflictM;
  I.Type = Ty;
  I.Dst = KD;
  I.Src1 = V1;
  I.Src2 = V2;
  I.MaskReg = WriteEnable;
  return emit(I);
}

Instruction &ProgramBuilder::kftmExc(Reg KD, ElemType Ty, Reg WriteEnable,
                                     Reg KStop) {
  assert(KD.isMask() && KStop.isMask());
  Instruction I;
  I.Op = Opcode::KFtmExc;
  I.Type = Ty;
  I.Dst = KD;
  I.Src1 = KStop;
  I.MaskReg = WriteEnable;
  return emit(I);
}

Instruction &ProgramBuilder::kftmInc(Reg KD, ElemType Ty, Reg WriteEnable,
                                     Reg KStop) {
  assert(KD.isMask() && KStop.isMask());
  Instruction I;
  I.Op = Opcode::KFtmInc;
  I.Type = Ty;
  I.Dst = KD;
  I.Src1 = KStop;
  I.MaskReg = WriteEnable;
  return emit(I);
}

Instruction &ProgramBuilder::kwhilelt(Reg KD, ElemType Ty, Reg I_, Reg Bound) {
  assert(KD.isMask() && I_.isScalar() && Bound.isScalar());
  Instruction I;
  I.Op = Opcode::KWhileLT;
  I.Type = Ty;
  I.Dst = KD;
  I.Src1 = I_;
  I.Src2 = Bound;
  return emit(I);
}

// --- Masks --------------------------------------------------------------===//

Instruction &ProgramBuilder::kmov(Reg D, Reg S) {
  assert(D.isMask() && S.isMask());
  Instruction I;
  I.Op = Opcode::KMov;
  I.Dst = D;
  I.Src1 = S;
  return emit(I);
}

Instruction &ProgramBuilder::kset(Reg D, uint64_t Imm) {
  assert(D.isMask());
  Instruction I;
  I.Op = Opcode::KSet;
  I.Dst = D;
  I.Imm = static_cast<int64_t>(Imm);
  return emit(I);
}

Instruction &ProgramBuilder::kbinOp(Opcode Op, Reg D, Reg A, Reg B) {
  assert(D.isMask() && A.isMask() && B.isMask());
  Instruction I;
  I.Op = Op;
  I.Dst = D;
  I.Src1 = A;
  I.Src2 = B;
  return emit(I);
}

Instruction &ProgramBuilder::knot(Reg D, ElemType Ty, Reg S) {
  assert(D.isMask() && S.isMask());
  Instruction I;
  I.Op = Opcode::KNot;
  I.Type = Ty;
  I.Dst = D;
  I.Src1 = S;
  return emit(I);
}

Instruction &ProgramBuilder::ktest(Reg D, Reg K) {
  assert(D.isScalar() && K.isMask());
  Instruction I;
  I.Op = Opcode::KTest;
  I.Dst = D;
  I.Src1 = K;
  return emit(I);
}

Instruction &ProgramBuilder::kpopcnt(Reg D, Reg K) {
  assert(D.isScalar() && K.isMask());
  Instruction I;
  I.Op = Opcode::KPopcnt;
  I.Dst = D;
  I.Src1 = K;
  return emit(I);
}

// --- RTM ----------------------------------------------------------------===//

Instruction &ProgramBuilder::xbegin(Label AbortTarget) {
  Instruction I;
  I.Op = Opcode::XBegin;
  I.Target = AbortTarget;
  return emit(I);
}

Instruction &ProgramBuilder::xend() {
  Instruction I;
  I.Op = Opcode::XEnd;
  return emit(I);
}

Instruction &ProgramBuilder::xabort() {
  Instruction I;
  I.Op = Opcode::XAbort;
  return emit(I);
}
