//===- workloads/Benchmarks.h - The 18 evaluation kernels -------*- C++ -*-===//
//
// One kernel per row of Table 2: eleven SPEC CPU 2006 C/C++ benchmarks and
// seven real applications. SPEC sources and ref inputs are proprietary, so
// each kernel is a synthetic loop with the *same dependence pattern*,
// published coverage, average trip count, and FlexVec instruction mix as
// the paper reports for that benchmark (see DESIGN.md for the
// substitution argument).
//
// Kernels are instantiated from five templates:
//   * argmin/argmax        - conditional scalar update (KFTM, VPSLCTLAST)
//   * conditional gather   - h264-style update guarding speculative loads
//                            (adds VPGATHERFF/VMOVFF)
//   * string match         - early termination (KFTM, VPSLCTLAST, FF loads)
//   * scatter-accumulate   - runtime memory dependence (KFTM, VPCONFLICTM)
//   * force                - conditional update + memory dependence
//                            (KFTM, VPSLCTLAST, VPCONFLICTM)
//
// Each instance carries the paper's Figure 8 speedup so the harness can
// print paper-vs-measured side by side.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_WORKLOADS_BENCHMARKS_H
#define FLEXVEC_WORKLOADS_BENCHMARKS_H

#include "workloads/PaperLoops.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace flexvec {
namespace workloads {

/// A memory image plus the bindings of every hot-loop invocation in the
/// modeled application run.
struct BenchInstance {
  mem::Memory Image;
  std::vector<ir::Bindings> Invocations;
};

/// Kernel templates (Table 2 instruction-mix classes).
enum class KernelKind : uint8_t {
  ArgExtreme,   ///< KFTM, VPSLCTLAST
  CondGather,   ///< KFTM, VPSLCTLAST, VPGATHERFF, VMOVFF
  Match,        ///< KFTM, VPSLCTLAST, VPGATHERFF, VMOVFF (early exit)
  ScatterAccum, ///< KFTM, VPCONFLICTM
  Force,        ///< KFTM, VPSLCTLAST, VPCONFLICTM
  // Imported kernel-family kinds (KernelFamilies.h); never produced by
  // buildAllBenchmarks.
  Affine,      ///< Unit-stride / affine-offset only (POLY family).
  GatherChain, ///< Runtime-resolved gathers, no conflicts (IRREG family).
};

const char *kernelKindName(KernelKind K);

/// One evaluation benchmark.
struct Benchmark {
  std::string Name;  ///< "464.h264ref", "LAMMPS", ...
  std::string Group; ///< "SPEC" or "APPS".
  KernelKind Kind;
  double Coverage;        ///< Table 2.
  int64_t PaperTripCount; ///< Table 2 (average trip count).
  double PaperSpeedup;    ///< Figure 8 (overall application speedup).
  std::string PaperMix;   ///< Table 2 instruction-mix string.

  std::unique_ptr<ir::LoopFunction> F;
  /// Generates the memory image and invocation list, sized so the whole
  /// benchmark simulates in reasonable time while preserving the paper's
  /// trip-count structure (short-trip loops run many invocations).
  std::function<BenchInstance(Rng &)> Gen;
};

/// Builds all 18 benchmarks. \p IterationScale scales total simulated
/// iterations (1.0 ≈ a few tens of thousands of iterations per benchmark;
/// tests can pass a smaller value).
std::vector<Benchmark> buildAllBenchmarks(double IterationScale = 1.0);

// --- Template builders (exposed for tests and ablation benches) ---------===//

/// argmin/argmax: if (e <op> best) { best = e; best_idx = i; } with
/// \p ExtraCompute additive fused multiply-add steps and an optional
/// 50%-taken outer data-dependent branch (the "branchy" 450.soplex shape).
std::unique_ptr<ir::LoopFunction>
buildArgExtremeLoop(const std::string &Name, bool Fp, unsigned ExtraCompute,
                    bool Branchy, bool IsMin = true);

BenchInstance genArgExtremeInputs(const ir::LoopFunction &F, Rng &R,
                                  int64_t Trip, int64_t Invocations,
                                  double UpdateProb, bool Fp,
                                  unsigned ExtraCompute, bool Branchy,
                                  bool IsMin = true);

/// scatter-accumulate: d[idx[i]] += e with \p ExtraCompute steps.
std::unique_ptr<ir::LoopFunction>
buildScatterAccumLoop(const std::string &Name, bool Fp,
                      unsigned ExtraCompute);

BenchInstance genScatterAccumInputs(const ir::LoopFunction &F, Rng &R,
                                    int64_t Trip, int64_t Invocations,
                                    double ConflictProb, int64_t TableSize,
                                    bool Fp, unsigned ExtraCompute);

/// force: argmax over e plus d[idx[i]] += e (two disjoint VPLs).
std::unique_ptr<ir::LoopFunction>
buildForceLoop(const std::string &Name, bool Fp, unsigned ExtraCompute);

BenchInstance genForceInputs(const ir::LoopFunction &F, Rng &R, int64_t Trip,
                             int64_t Invocations, double UpdateProb,
                             double ConflictProb, int64_t TableSize, bool Fp,
                             unsigned ExtraCompute);

/// h264-style conditional gather: reuses the paper loop with a corpus of
/// invocations.
BenchInstance genCondGatherInputs(const ir::LoopFunction &F, Rng &R,
                                  int64_t Trip, int64_t Invocations,
                                  double UpdateProb,
                                  double OuterPassProb = 0.05);

/// String match over a corpus: each invocation searches from the previous
/// match (mean match distance = \p MeanTrip).
BenchInstance genMatchInputs(const ir::LoopFunction &F, Rng &R,
                             int64_t MeanTrip, int64_t Invocations);

} // namespace workloads
} // namespace flexvec

#endif // FLEXVEC_WORKLOADS_BENCHMARKS_H
