//===- workloads/Figure8.cpp ----------------------------------------------===//

#include "workloads/Figure8.h"

#include "workloads/KernelFamilies.h"

using namespace flexvec;
using namespace flexvec::workloads;

Figure8Suite workloads::buildFigure8Suite(double IterationScale) {
  Figure8Suite Suite;
  Suite.Benchmarks = buildAllBenchmarks(IterationScale);
  // The imported kernel-family rows (POLY + IRREG) ride after the 18
  // Table 2 rows so existing row indices and per-cell seeds are untouched.
  for (Benchmark &B : buildFamilyBenchmarks(IterationScale))
    Suite.Benchmarks.push_back(std::move(B));
  Suite.Workloads.reserve(Suite.Benchmarks.size());
  for (const Benchmark &B : Suite.Benchmarks) {
    core::SweepWorkload W;
    W.Name = B.Name;
    W.Group = B.Group;
    W.Coverage = B.Coverage;
    W.PaperSpeedup = B.PaperSpeedup;
    W.F = B.F.get();
    // &B points into Suite.Benchmarks' heap buffer, which stays put when
    // the suite itself is moved.
    W.Gen = [Bench = &B](Rng &R) {
      BenchInstance In = Bench->Gen(R);
      return core::WorkloadInstance{std::move(In.Image),
                                    std::move(In.Invocations)};
    };
    Suite.Workloads.push_back(std::move(W));
  }
  return Suite;
}

core::SweepResult
workloads::runFigure8Sweep(const core::SweepOptions &Opts,
                           core::CompileCache *Cache) {
  Figure8Suite Suite = buildFigure8Suite(Opts.Scale);
  return core::runSweep(Suite.Workloads, Opts, Cache);
}
