//===- workloads/Benchmarks.cpp -------------------------------------------===//

#include "workloads/Benchmarks.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace flexvec;
using namespace flexvec::workloads;
using namespace flexvec::ir;
using isa::CmpKind;
using isa::ElemType;

const char *workloads::kernelKindName(KernelKind K) {
  switch (K) {
  case KernelKind::ArgExtreme:
    return "arg-extreme";
  case KernelKind::CondGather:
    return "cond-gather";
  case KernelKind::Match:
    return "match";
  case KernelKind::ScatterAccum:
    return "scatter-accum";
  case KernelKind::Force:
    return "force";
  case KernelKind::Affine:
    return "affine";
  case KernelKind::GatherChain:
    return "gather-chain";
  }
  unreachable("unknown kernel kind");
}

namespace {

/// Extra-compute multipliers (small, float-exact).
constexpr int64_t ExtraConsts[] = {3, 5, 7, 2, 9, 4};

/// Sets scalar \p Id's initial value of type \p Ty to integer \p V.
void bindValue(Bindings &B, const LoopFunction &F, int Id, int64_t V) {
  if (isFloatType(F.scalar(Id).Type))
    B.setFloat(F.scalar(Id).Type, Id, static_cast<double>(V));
  else
    B.setInt(Id, V);
}

/// One step of the running-extreme trace: with probability UpdateProb the
/// target strictly improves; otherwise it is strictly worse. Returns the
/// per-iteration final values of `e`.
std::vector<int64_t> extremeTrace(Rng &R, int64_t Trip, double UpdateProb,
                                  bool IsMin, int64_t Start) {
  std::vector<int64_t> T(static_cast<size_t>(Trip));
  int64_t Cur = Start;
  for (int64_t I = 0; I < Trip; ++I) {
    if (R.nextBool(UpdateProb)) {
      int64_t Step = R.nextInRange(1, 8);
      Cur = IsMin ? Cur - Step : Cur + Step;
      T[static_cast<size_t>(I)] = Cur;
    } else {
      int64_t Away = static_cast<int64_t>(R.nextBelow(1000));
      T[static_cast<size_t>(I)] = IsMin ? Cur + Away : Cur - Away;
    }
    assert(Cur > 16 && Cur < (1 << 24) && "extreme trace out of range");
  }
  return T;
}

/// Writes \p Values (exact small integers) as the array's element type.
uint64_t allocTyped(mem::BumpAllocator &Alloc, const std::vector<int64_t> &V,
                    bool Fp) {
  if (Fp) {
    std::vector<float> F(V.size());
    for (size_t I = 0; I < V.size(); ++I)
      F[I] = static_cast<float>(V[I]);
    return Alloc.allocArray(F);
  }
  std::vector<int32_t> I32(V.size());
  for (size_t I = 0; I < V.size(); ++I)
    I32[I] = static_cast<int32_t>(V[I]);
  return Alloc.allocArray(I32);
}

int64_t extraSumOf(const std::vector<int64_t> &Aux, int64_t I,
                   unsigned ExtraCompute) {
  int64_t Sum = 0;
  for (unsigned K = 0; K < ExtraCompute; ++K)
    Sum += Aux[static_cast<size_t>(I)] * ExtraConsts[K % 6];
  return Sum;
}

/// Appends the additive extra-compute statements: e = e + aux[i] * Ck.
void appendExtraCompute(LoopFunction &F, std::vector<Stmt *> &Body, int EId,
                        int AuxArray, ElemType Ty, unsigned ExtraCompute) {
  for (unsigned K = 0; K < ExtraCompute; ++K) {
    const Expr *C = isFloatType(Ty)
                        ? F.constFloat(Ty, static_cast<double>(
                                               ExtraConsts[K % 6]))
                        : F.constInt(Ty, ExtraConsts[K % 6]);
    const Expr *Term =
        F.binary(BinOp::Mul, F.arrayRef(AuxArray, F.indexRef()), C);
    Body.push_back(
        F.assignScalar(EId, F.binary(BinOp::Add, F.scalarRef(EId), Term)));
  }
}

} // namespace

// --- arg-extreme ----------------------------------------------------------===//

std::unique_ptr<LoopFunction>
workloads::buildArgExtremeLoop(const std::string &Name, bool Fp,
                               unsigned ExtraCompute, bool Branchy,
                               bool IsMin) {
  ElemType Ty = Fp ? ElemType::F32 : ElemType::I32;
  auto F = std::make_unique<LoopFunction>(Name);
  int N = F->addScalar("n", ElemType::I64);
  int Best = F->addScalar("best", Ty, /*IsLiveOut=*/true);
  int BestIdx = F->addScalar("best_idx", ElemType::I32, /*IsLiveOut=*/true);
  int E = F->addScalar("e", Ty);
  int Key = F->addArray("key", Ty, /*ReadOnly=*/true);
  int Aux = ExtraCompute ? F->addArray("aux", Ty, true) : -1;
  int Flag = Branchy ? F->addArray("flag", ElemType::I32, true) : -1;
  F->setTripCountScalar(N);

  std::vector<Stmt *> Body;
  Body.push_back(F->assignScalar(E, F->arrayRef(Key, F->indexRef())));
  appendExtraCompute(*F, Body, E, Aux, Ty, ExtraCompute);

  Stmt *Guard = F->makeIfShell(F->compare(IsMin ? CmpKind::LT : CmpKind::GT,
                                          F->scalarRef(E),
                                          F->scalarRef(Best)));
  F->addThen(Guard, F->assignScalar(Best, F->scalarRef(E)));
  F->addThen(Guard, F->assignScalar(BestIdx, F->indexRef()));

  if (Branchy) {
    Stmt *Outer = F->makeIfShell(F->compare(
        CmpKind::NE, F->arrayRef(Flag, F->indexRef()),
        F->constInt(ElemType::I32, 0)));
    F->addThen(Outer, Guard);
    Body.push_back(Outer);
  } else {
    Body.push_back(Guard);
  }
  F->setBody(Body);
  return F;
}

BenchInstance workloads::genArgExtremeInputs(const LoopFunction &F, Rng &R,
                                             int64_t Trip,
                                             int64_t Invocations,
                                             double UpdateProb, bool Fp,
                                             unsigned ExtraCompute,
                                             bool Branchy, bool IsMin) {
  BenchInstance Out;
  mem::BumpAllocator Alloc(Out.Image);
  int64_t Start = IsMin ? (1 << 22) : (1 << 16);

  // Each invocation processes its own slice of a large backing array, the
  // way repeated calls into a hot loop stream over fresh data.
  int64_t Slices = std::min<int64_t>(Invocations, 48);
  int64_t Total = Trip * Slices;

  std::vector<int64_t> Aux(static_cast<size_t>(Total), 0);
  for (auto &V : Aux)
    V = static_cast<int64_t>(R.nextBelow(16));
  std::vector<int64_t> Flag(static_cast<size_t>(Total), 1);
  if (Branchy)
    for (auto &V : Flag)
      V = R.nextBool(0.98) ? 1 : 0;

  std::vector<int64_t> Key(static_cast<size_t>(Total));
  for (int64_t S = 0; S < Slices; ++S) {
    std::vector<int64_t> Targets =
        extremeTrace(R, Trip, UpdateProb, IsMin, Start);
    // With the branchy outer guard, an "update" target only fires when
    // flag=1; force flags on at improving steps so UpdateProb is respected.
    if (Branchy) {
      int64_t Cur = Start;
      for (int64_t I = 0; I < Trip; ++I) {
        bool Improves = IsMin ? Targets[static_cast<size_t>(I)] < Cur
                              : Targets[static_cast<size_t>(I)] > Cur;
        if (Improves) {
          Flag[static_cast<size_t>(S * Trip + I)] = 1;
          Cur = Targets[static_cast<size_t>(I)];
        }
      }
    }
    for (int64_t I = 0; I < Trip; ++I)
      Key[static_cast<size_t>(S * Trip + I)] =
          Targets[static_cast<size_t>(I)] -
          extraSumOf(Aux, S * Trip + I, ExtraCompute);
  }

  uint64_t KeyBase = allocTyped(Alloc, Key, Fp);
  uint64_t AuxBase = ExtraCompute ? allocTyped(Alloc, Aux, Fp) : 0;
  uint64_t FlagBase = Branchy ? allocTyped(Alloc, Flag, /*Fp=*/false) : 0;

  for (int64_t Inv = 0; Inv < Invocations; ++Inv) {
    uint64_t Off = static_cast<uint64_t>((Inv % Slices) * Trip) * 4;
    Bindings B = Bindings::forFunction(F);
    B.ArrayBases[0] = KeyBase + Off;
    int NextArray = 1;
    if (ExtraCompute)
      B.ArrayBases[NextArray++] = AuxBase + Off;
    if (Branchy)
      B.ArrayBases[NextArray++] = FlagBase + Off;
    B.setInt(0, Trip);
    bindValue(B, F, 1, Start); // best
    B.setInt(2, -1);           // best_idx
    Out.Invocations.push_back(B);
  }
  return Out;
}

// --- scatter-accumulate -----------------------------------------------------===//

std::unique_ptr<LoopFunction>
workloads::buildScatterAccumLoop(const std::string &Name, bool Fp,
                                 unsigned ExtraCompute) {
  ElemType Ty = Fp ? ElemType::F32 : ElemType::I32;
  auto F = std::make_unique<LoopFunction>(Name);
  int N = F->addScalar("n", ElemType::I64);
  int J = F->addScalar("j", ElemType::I32);
  int E = F->addScalar("e", Ty);
  int Idx = F->addArray("idx", ElemType::I32, /*ReadOnly=*/true);
  int W = F->addArray("w", Ty, true);
  int Aux = ExtraCompute ? F->addArray("aux", Ty, true) : -1;
  int D = F->addArray("d", Ty);
  F->setTripCountScalar(N);

  std::vector<Stmt *> Body;
  Body.push_back(F->assignScalar(J, F->arrayRef(Idx, F->indexRef())));
  Body.push_back(F->assignScalar(E, F->arrayRef(W, F->indexRef())));
  appendExtraCompute(*F, Body, E, Aux, Ty, ExtraCompute);
  const Expr *JRef = F->scalarRef(J); // Shared by the load and the store.
  Body.push_back(F->storeArray(
      D, JRef,
      F->binary(BinOp::Add, F->arrayRef(D, JRef), F->scalarRef(E))));
  F->setBody(Body);
  return F;
}

namespace {

std::vector<int64_t> conflictIndices(Rng &R, int64_t Trip,
                                     double ConflictProb, int64_t TableSize) {
  std::vector<int64_t> Idx(static_cast<size_t>(Trip));
  std::vector<int64_t> Recent;
  for (int64_t I = 0; I < Trip; ++I) {
    int64_t V;
    if (!Recent.empty() && R.nextBool(ConflictProb))
      V = Recent[R.nextBelow(Recent.size())];
    else
      V = static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(TableSize)));
    Idx[static_cast<size_t>(I)] = V;
    Recent.push_back(V);
    if (Recent.size() > 12)
      Recent.erase(Recent.begin());
  }
  return Idx;
}

} // namespace

BenchInstance workloads::genScatterAccumInputs(const LoopFunction &F, Rng &R,
                                               int64_t Trip,
                                               int64_t Invocations,
                                               double ConflictProb,
                                               int64_t TableSize, bool Fp,
                                               unsigned ExtraCompute) {
  BenchInstance Out;
  mem::BumpAllocator Alloc(Out.Image);

  int64_t Slices = std::min<int64_t>(Invocations, 48);
  int64_t Total = Trip * Slices;

  std::vector<int64_t> Idx(static_cast<size_t>(Total));
  for (int64_t S = 0; S < Slices; ++S) {
    std::vector<int64_t> SliceIdx =
        conflictIndices(R, Trip, ConflictProb, TableSize);
    std::copy(SliceIdx.begin(), SliceIdx.end(),
              Idx.begin() + static_cast<long>(S * Trip));
  }
  std::vector<int64_t> W(static_cast<size_t>(Total));
  for (auto &V : W)
    V = static_cast<int64_t>(R.nextBelow(16));
  std::vector<int64_t> Aux(static_cast<size_t>(Total));
  for (auto &V : Aux)
    V = static_cast<int64_t>(R.nextBelow(16));
  std::vector<int64_t> D(static_cast<size_t>(TableSize));
  for (auto &V : D)
    V = static_cast<int64_t>(R.nextBelow(64));

  uint64_t IdxBase = allocTyped(Alloc, Idx, /*Fp=*/false);
  uint64_t WBase = allocTyped(Alloc, W, Fp);
  uint64_t AuxBase = ExtraCompute ? allocTyped(Alloc, Aux, Fp) : 0;
  uint64_t DBase = allocTyped(Alloc, D, Fp);

  for (int64_t Inv = 0; Inv < Invocations; ++Inv) {
    uint64_t Off = static_cast<uint64_t>((Inv % Slices) * Trip) * 4;
    Bindings B = Bindings::forFunction(F);
    B.ArrayBases[0] = IdxBase + Off;
    B.ArrayBases[1] = WBase + Off;
    int NextArray = 2;
    if (ExtraCompute)
      B.ArrayBases[NextArray++] = AuxBase + Off;
    B.ArrayBases[NextArray] = DBase;
    B.setInt(0, Trip);
    Out.Invocations.push_back(B);
  }
  return Out;
}

// --- force -------------------------------------------------------------------===//

std::unique_ptr<LoopFunction>
workloads::buildForceLoop(const std::string &Name, bool Fp,
                          unsigned ExtraCompute) {
  ElemType Ty = Fp ? ElemType::F32 : ElemType::I32;
  auto F = std::make_unique<LoopFunction>(Name);
  int N = F->addScalar("n", ElemType::I64);
  int Best = F->addScalar("max_e", Ty, /*IsLiveOut=*/true);
  int BestIdx = F->addScalar("argmax", ElemType::I32, /*IsLiveOut=*/true);
  int E = F->addScalar("e", Ty);
  int J = F->addScalar("j", ElemType::I32);
  int W = F->addArray("w", Ty, /*ReadOnly=*/true);
  int Aux = ExtraCompute ? F->addArray("aux", Ty, true) : -1;
  int Idx = F->addArray("idx", ElemType::I32, true);
  int D = F->addArray("d", Ty);
  F->setTripCountScalar(N);

  std::vector<Stmt *> Body;
  Body.push_back(F->assignScalar(E, F->arrayRef(W, F->indexRef())));
  appendExtraCompute(*F, Body, E, Aux, Ty, ExtraCompute);
  Stmt *Guard = F->makeIfShell(
      F->compare(CmpKind::GT, F->scalarRef(E), F->scalarRef(Best)));
  F->addThen(Guard, F->assignScalar(Best, F->scalarRef(E)));
  F->addThen(Guard, F->assignScalar(BestIdx, F->indexRef()));
  Body.push_back(Guard);
  Body.push_back(F->assignScalar(J, F->arrayRef(Idx, F->indexRef())));
  const Expr *JRef = F->scalarRef(J);
  Body.push_back(F->storeArray(
      D, JRef,
      F->binary(BinOp::Add, F->arrayRef(D, JRef), F->scalarRef(E))));
  F->setBody(Body);
  return F;
}

BenchInstance workloads::genForceInputs(const LoopFunction &F, Rng &R,
                                        int64_t Trip, int64_t Invocations,
                                        double UpdateProb,
                                        double ConflictProb,
                                        int64_t TableSize, bool Fp,
                                        unsigned ExtraCompute) {
  BenchInstance Out;
  mem::BumpAllocator Alloc(Out.Image);

  int64_t Slices = std::min<int64_t>(Invocations, 48);
  int64_t Total = Trip * Slices;

  std::vector<int64_t> Aux(static_cast<size_t>(Total));
  for (auto &V : Aux)
    V = static_cast<int64_t>(R.nextBelow(16));
  std::vector<int64_t> W(static_cast<size_t>(Total));
  std::vector<int64_t> Idx(static_cast<size_t>(Total));
  for (int64_t S = 0; S < Slices; ++S) {
    std::vector<int64_t> Targets =
        extremeTrace(R, Trip, UpdateProb, /*IsMin=*/false, 1 << 16);
    for (int64_t I = 0; I < Trip; ++I)
      W[static_cast<size_t>(S * Trip + I)] =
          Targets[static_cast<size_t>(I)] -
          extraSumOf(Aux, S * Trip + I, ExtraCompute);
    std::vector<int64_t> SliceIdx =
        conflictIndices(R, Trip, ConflictProb, TableSize);
    std::copy(SliceIdx.begin(), SliceIdx.end(),
              Idx.begin() + static_cast<long>(S * Trip));
  }
  std::vector<int64_t> D(static_cast<size_t>(TableSize));
  for (auto &V : D)
    V = static_cast<int64_t>(R.nextBelow(64));

  uint64_t WBase = allocTyped(Alloc, W, Fp);
  uint64_t AuxBase = ExtraCompute ? allocTyped(Alloc, Aux, Fp) : 0;
  uint64_t IdxBase = allocTyped(Alloc, Idx, /*Fp=*/false);
  uint64_t DBase = allocTyped(Alloc, D, Fp);

  for (int64_t Inv = 0; Inv < Invocations; ++Inv) {
    uint64_t Off = static_cast<uint64_t>((Inv % Slices) * Trip) * 4;
    Bindings B = Bindings::forFunction(F);
    B.ArrayBases[0] = WBase + Off;
    int NextArray = 1;
    if (ExtraCompute)
      B.ArrayBases[NextArray++] = AuxBase + Off;
    B.ArrayBases[NextArray++] = IdxBase + Off;
    B.ArrayBases[NextArray] = DBase;
    B.setInt(0, Trip);
    bindValue(B, F, 1, 1 << 16); // max_e seed
    B.setInt(2, -1);             // argmax
    Out.Invocations.push_back(B);
  }
  return Out;
}

// --- cond-gather & match ------------------------------------------------------===//

BenchInstance workloads::genCondGatherInputs(const LoopFunction &F, Rng &R,
                                             int64_t Trip,
                                             int64_t Invocations,
                                             double UpdateProb,
                                             double OuterPassProb) {
  LoopInputs In = genH264Inputs(F, R, Trip, UpdateProb, OuterPassProb);
  BenchInstance Out;
  Out.Image = std::move(In.Image);
  Out.Invocations.assign(static_cast<size_t>(Invocations), In.B);
  return Out;
}

BenchInstance workloads::genMatchInputs(const LoopFunction &F, Rng &R,
                                        int64_t MeanTrip,
                                        int64_t Invocations) {
  BenchInstance Out;
  mem::BumpAllocator Alloc(Out.Image);

  constexpr int32_t MatchChar = 200;
  constexpr int32_t MatchVal = 999;
  std::vector<int32_t> Tab(256);
  for (size_t C = 0; C < Tab.size(); ++C)
    Tab[C] = static_cast<int32_t>(C) * 2;
  Tab[MatchChar] = MatchVal;

  // Corpus with matches planted at ~MeanTrip spacing; each invocation
  // resumes one element past the previous match.
  int64_t CorpusLen = Invocations * (2 * MeanTrip + 2) + 1024;
  std::vector<int32_t> Corpus(static_cast<size_t>(CorpusLen));
  for (auto &C : Corpus) {
    int32_t V = static_cast<int32_t>(R.nextBelow(256));
    C = V == MatchChar ? 17 : V;
  }
  std::vector<int64_t> MatchPos(static_cast<size_t>(Invocations));
  int64_t Pos = 0;
  for (int64_t Inv = 0; Inv < Invocations; ++Inv) {
    int64_t Dist = 1 + static_cast<int64_t>(
                           R.nextBelow(static_cast<uint64_t>(2 * MeanTrip)));
    int64_t At = Pos + Dist;
    assert(At < CorpusLen);
    Corpus[static_cast<size_t>(At)] = MatchChar;
    MatchPos[static_cast<size_t>(Inv)] = At;
    Pos = At + 1;
  }

  uint64_t CorpusBase = Alloc.allocArray(Corpus);
  uint64_t TabBase = Alloc.allocArray(Tab);

  Pos = 0;
  for (int64_t Inv = 0; Inv < Invocations; ++Inv) {
    Bindings B = Bindings::forFunction(F);
    B.ArrayBases[0] = CorpusBase + static_cast<uint64_t>(Pos) * 4;
    B.ArrayBases[1] = TabBase;
    int64_t Remaining = CorpusLen - Pos;
    B.setInt(0, std::min<int64_t>(512, Remaining)); // length
    B.setInt(1, MatchVal);                          // val
    B.setInt(2, -1);                                // best_pos
    Out.Invocations.push_back(B);
    Pos = MatchPos[static_cast<size_t>(Inv)] + 1;
  }
  return Out;
}

// --- the 18 benchmarks ----------------------------------------------------===//

std::vector<Benchmark> workloads::buildAllBenchmarks(double IterationScale) {
  std::vector<Benchmark> Out;
  auto scaled = [IterationScale](int64_t V) {
    int64_t S = static_cast<int64_t>(static_cast<double>(V) * IterationScale);
    return std::max<int64_t>(1, S);
  };

  struct Row {
    const char *Name;
    const char *Group;
    KernelKind Kind;
    double Coverage;
    int64_t PaperTrip;
    double PaperSpeedup;
    const char *Mix;
    int64_t SimTrip;
    int64_t Invocations;
    bool Fp;
    unsigned Extra;
    bool Branchy;
    double DepProb;      // Update prob / conflict prob.
    double ConflictProb; // Force kernels only.
    int64_t TableSize;
  };

  const Row Rows[] = {
      {"401.bzip2", "SPEC", KernelKind::CondGather, 0.21, 4235, 1.10,
       "KFTM, VPSLCTLAST, VPGATHERFF, VMOVFF", 4235, 6, false, 0, false,
       0.01, 0.06, 0},
      {"403.gcc", "SPEC", KernelKind::ArgExtreme, 0.041, 31000, 1.03,
       "KFTM, VPSLCTLAST", 20000, 2, false, 0, false, 0.004, 0, 0},
      {"445.gobmk", "SPEC", KernelKind::ArgExtreme, 0.068, 67, 1.04,
       "KFTM, VPSLCTLAST", 67, 360, false, 2, false, 0.03, 0, 0},
      {"458.sjeng", "SPEC", KernelKind::ArgExtreme, 0.072, 22, 1.04,
       "KFTM, VPSLCTLAST", 22, 1000, false, 2, false, 0.05, 0, 0},
      {"464.h264ref", "SPEC", KernelKind::CondGather, 0.602, 1089, 1.13,
       "KFTM, VPSLCTLAST, VPGATHERFF, VMOVFF", 1089, 22, false, 0, false,
       0.06, 0.05, 0},
      {"473.astar", "SPEC", KernelKind::ScatterAccum, 0.365, 961, 1.16,
       "KFTM, VPCONFLICTM", 961, 25, false, 2, false, 0.02, 0, 4096},
      {"433.milc", "SPEC", KernelKind::ScatterAccum, 0.229, 160000, 1.10,
       "KFTM, VPCONFLICTM", 24000, 1, true, 5, false, 0.005, 0, 16384},
      {"435.gromacs", "SPEC", KernelKind::ScatterAccum, 0.495, 83, 1.11,
       "KFTM, VPCONFLICTM", 83, 290, true, 2, false, 0.06, 0, 2048},
      {"444.namd", "SPEC", KernelKind::ArgExtreme, 0.374, 157, 1.16,
       "KFTM, VPSLCTLAST", 157, 150, true, 1, false, 0.12, 0, 0},
      {"450.soplex", "SPEC", KernelKind::ArgExtreme, 0.13, 1422, 1.05,
       "KFTM, VPSLCTLAST", 1422, 17, true, 0, true, 0.02, 0, 0},
      {"454.calculix", "SPEC", KernelKind::ScatterAccum, 0.11, 4298, 1.08,
       "KFTM, VPCONFLICTM", 4298, 6, true, 4, false, 0.01, 0, 4096},
      {"LAMMPS", "APPS", KernelKind::Force, 0.66, 683, 1.13,
       "KFTM, VPSLCTLAST, VPCONFLICTM", 683, 35, true, 2, false, 0.04, 0.04,
       4096},
      {"GROMACS", "APPS", KernelKind::Force, 0.48, 512, 1.12,
       "KFTM, VPSLCTLAST, VPCONFLICTM", 512, 47, true, 2, false, 0.02, 0.02,
       2048},
      {"SSCA2", "APPS", KernelKind::Force, 0.595, 58000, 1.15,
       "KFTM, VPSLCTLAST, VPCONFLICTM", 24000, 1, false, 1, false, 0.01,
       0.01, 65536},
      {"MILC", "APPS", KernelKind::ScatterAccum, 0.12, 16000, 1.06,
       "KFTM, VPCONFLICTM", 16000, 2, true, 1, false, 0.005, 0, 4000000},
      {"BLAST", "APPS", KernelKind::Force, 0.191, 600, 1.09,
       "KFTM, VPSLCTLAST, VPCONFLICTM", 600, 40, false, 4, false, 0.02, 0.02,
       4096},
      {"GZIP", "APPS", KernelKind::Match, 0.467, 33, 1.10,
       "KFTM, VPSLCTLAST, VPGATHERFF, VMOVFF", 33, 700, false, 0, false, 0,
       0, 0},
      {"ZLIB", "APPS", KernelKind::Match, 0.567, 54, 1.12,
       "KFTM, VPSLCTLAST, VPGATHERFF, VMOVFF", 54, 440, false, 0, false, 0,
       0, 0},
  };

  for (const Row &R : Rows) {
    Benchmark B;
    B.Name = R.Name;
    B.Group = R.Group;
    B.Kind = R.Kind;
    B.Coverage = R.Coverage;
    B.PaperTripCount = R.PaperTrip;
    B.PaperSpeedup = R.PaperSpeedup;
    B.PaperMix = R.Mix;

    switch (R.Kind) {
    case KernelKind::ArgExtreme:
      B.F = buildArgExtremeLoop(R.Name, R.Fp, R.Extra, R.Branchy);
      break;
    case KernelKind::CondGather:
      B.F = buildH264Loop();
      break;
    case KernelKind::Match:
      B.F = buildEarlyExitLoop();
      break;
    case KernelKind::ScatterAccum:
      B.F = buildScatterAccumLoop(R.Name, R.Fp, R.Extra);
      break;
    case KernelKind::Force:
      B.F = buildForceLoop(R.Name, R.Fp, R.Extra);
      break;
    case KernelKind::Affine:
    case KernelKind::GatherChain:
      unreachable("family kinds are built in KernelFamilies.cpp");
    }

    const LoopFunction *FPtr = B.F.get();
    Row RC = R;
    int64_t Invs = scaled(R.Invocations);
    B.Gen = [FPtr, RC, Invs](Rng &Rand) {
      switch (RC.Kind) {
      case KernelKind::ArgExtreme:
        return genArgExtremeInputs(*FPtr, Rand, RC.SimTrip, Invs, RC.DepProb,
                                   RC.Fp, RC.Extra, RC.Branchy);
      case KernelKind::CondGather:
        return genCondGatherInputs(*FPtr, Rand, RC.SimTrip, Invs, RC.DepProb,
                                   RC.ConflictProb);
      case KernelKind::Match:
        return genMatchInputs(*FPtr, Rand, RC.SimTrip, Invs);
      case KernelKind::ScatterAccum:
        return genScatterAccumInputs(*FPtr, Rand, RC.SimTrip, Invs,
                                     RC.DepProb, RC.TableSize, RC.Fp,
                                     RC.Extra);
      case KernelKind::Force:
        return genForceInputs(*FPtr, Rand, RC.SimTrip, Invs, RC.DepProb,
                              RC.ConflictProb, RC.TableSize, RC.Fp, RC.Extra);
      case KernelKind::Affine:
      case KernelKind::GatherChain:
        break; // Family kinds generate inputs in KernelFamilies.cpp.
      }
      unreachable("unknown kernel kind");
    };
    Out.push_back(std::move(B));
  }
  return Out;
}
