#include <algorithm>
//===- workloads/PaperLoops.cpp -------------------------------------------===//

#include "workloads/PaperLoops.h"

#include <cassert>

using namespace flexvec;
using namespace flexvec::workloads;
using namespace flexvec::ir;
using isa::CmpKind;
using isa::ElemType;

std::unique_ptr<LoopFunction> workloads::buildH264Loop() {
  auto F = std::make_unique<LoopFunction>("h264_motion_search");
  int MaxPos = F->addScalar("max_pos", ElemType::I64);
  int MinMcost = F->addScalar("min_mcost", ElemType::I32, /*IsLiveOut=*/true);
  int BestPos = F->addScalar("best_pos", ElemType::I32, /*IsLiveOut=*/true);
  int Mcost = F->addScalar("mcost", ElemType::I32);
  int Cand = F->addScalar("cand", ElemType::I32);
  int Sad = F->addArray("block_sad", ElemType::I32, /*ReadOnly=*/true);
  int Spiral = F->addArray("spiral", ElemType::I32, /*ReadOnly=*/true);
  int Mv = F->addArray("mv", ElemType::I32, /*ReadOnly=*/true);
  F->setTripCountScalar(MaxPos);

  Stmt *Outer = F->makeIfShell(F->compare(
      CmpKind::LT, F->arrayRef(Sad, F->indexRef()), F->scalarRef(MinMcost)));
  Stmt *LoadSad = F->assignScalar(Mcost, F->arrayRef(Sad, F->indexRef()));
  Stmt *LoadCand = F->assignScalar(Cand, F->arrayRef(Spiral, F->indexRef()));
  Stmt *AddMv = F->assignScalar(
      Mcost, F->binary(BinOp::Add, F->scalarRef(Mcost),
                       F->arrayRef(Mv, F->scalarRef(Cand))));
  Stmt *Inner = F->makeIfShell(F->compare(CmpKind::LT, F->scalarRef(Mcost),
                                          F->scalarRef(MinMcost)));
  Stmt *Upd = F->assignScalar(MinMcost, F->scalarRef(Mcost));
  Stmt *Payload = F->assignScalar(BestPos, F->indexRef());

  F->addThen(Outer, LoadSad);
  F->addThen(Outer, LoadCand);
  F->addThen(Outer, AddMv);
  F->addThen(Outer, Inner);
  F->addThen(Inner, Upd);
  F->addThen(Inner, Payload);
  F->setBody({Outer});
  return F;
}

LoopInputs workloads::genH264Inputs(const LoopFunction &F, Rng &R, int64_t N,
                                    double UpdateProb,
                                    double OuterPassProb) {
  assert(N > 0);
  LoopInputs In;
  mem::BumpAllocator Alloc(In.Image);

  constexpr int64_t MvSize = 1024;
  std::vector<int32_t> Mv(MvSize);
  for (auto &V : Mv)
    V = static_cast<int32_t>(R.nextInRange(1, 8));
  std::vector<int32_t> Spiral(static_cast<size_t>(N));
  for (auto &V : Spiral)
    V = static_cast<int32_t>(R.nextBelow(MvSize));

  // Drive the running minimum so the inner update fires with probability
  // UpdateProb (plus a sliver of outer-true/inner-false iterations).
  int64_t Cur = 1 << 22;
  std::vector<int32_t> Sad(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I) {
    int32_t Mvv = Mv[static_cast<size_t>(Spiral[static_cast<size_t>(I)])];
    double Roll = R.nextDouble();
    if (Roll < UpdateProb) {
      // Real update: mcost = Cur - d.
      int64_t D = R.nextInRange(1, 8);
      Sad[static_cast<size_t>(I)] = static_cast<int32_t>(Cur - D - Mvv);
      Cur = Cur - D;
    } else if (Roll < UpdateProb + OuterPassProb) {
      // Outer passes, inner fails: mcost ends in [Cur, Cur + Mvv).
      int64_t DPrime = R.nextBelow(static_cast<uint64_t>(Mvv));
      Sad[static_cast<size_t>(I)] =
          static_cast<int32_t>(Cur + DPrime - Mvv);
    } else {
      Sad[static_cast<size_t>(I)] =
          static_cast<int32_t>(Cur + static_cast<int64_t>(R.nextBelow(1000)));
    }
    assert(Cur > 16 && "running minimum underflowed; shrink N");
  }

  In.B = Bindings::forFunction(F);
  In.B.ArrayBases[0] = Alloc.allocArray(Sad);
  In.B.ArrayBases[1] = Alloc.allocArray(Spiral);
  In.B.ArrayBases[2] = Alloc.allocArray(Mv);
  In.B.setInt(0, N);       // max_pos
  In.B.setInt(1, 1 << 22); // min_mcost
  In.B.setInt(2, -1);      // best_pos
  return In;
}

std::unique_ptr<LoopFunction> workloads::buildConflictLoop() {
  auto F = std::make_unique<LoopFunction>("pairs_conflict");
  int Hits = F->addScalar("hits", ElemType::I64);
  int Q = F->addScalar("q", ElemType::I32);
  int S = F->addScalar("s", ElemType::I32);
  int Coord = F->addScalar("coord", ElemType::I32);
  int Qa = F->addArray("qa", ElemType::I32, /*ReadOnly=*/true);
  int Sa = F->addArray("sa", ElemType::I32, /*ReadOnly=*/true);
  int DArr = F->addArray("d_arr", ElemType::I32);
  F->setTripCountScalar(Hits);

  Stmt *S1 = F->assignScalar(Q, F->arrayRef(Qa, F->indexRef()));
  Stmt *S2 = F->assignScalar(S, F->arrayRef(Sa, F->indexRef()));
  Stmt *S3 = F->assignScalar(
      Coord, F->binary(BinOp::Sub, F->scalarRef(Q), F->scalarRef(S)));
  // `if (s < d_arr[coord]) continue; d_arr[coord] = s;` with the continue
  // folded into the guard.
  const Expr *CoordRef = F->scalarRef(Coord);
  Stmt *S4 = F->makeIfShell(
      F->compare(CmpKind::GE, F->scalarRef(S), F->arrayRef(DArr, CoordRef)));
  Stmt *S5 = F->storeArray(DArr, CoordRef, F->scalarRef(S));
  F->addThen(S4, S5);
  F->setBody({S1, S2, S3, S4});
  return F;
}

LoopInputs workloads::genConflictInputs(const LoopFunction &F, Rng &R,
                                        int64_t N, double ConflictProb,
                                        int64_t TableSize) {
  assert(N > 0 && TableSize > 16);
  LoopInputs In;
  mem::BumpAllocator Alloc(In.Image);

  std::vector<int32_t> Qa(static_cast<size_t>(N)), Sa(static_cast<size_t>(N));
  std::vector<int32_t> D(static_cast<size_t>(TableSize));
  for (auto &V : D)
    V = static_cast<int32_t>(R.nextBelow(100));

  std::vector<int32_t> Recent;
  for (int64_t I = 0; I < N; ++I) {
    int32_t Coord;
    if (!Recent.empty() && R.nextBool(ConflictProb)) {
      Coord = Recent[R.nextBelow(Recent.size())];
    } else {
      Coord = static_cast<int32_t>(R.nextBelow(TableSize));
    }
    Recent.push_back(Coord);
    if (Recent.size() > 12)
      Recent.erase(Recent.begin());
    int32_t SVal = static_cast<int32_t>(R.nextBelow(100));
    Sa[static_cast<size_t>(I)] = SVal;
    Qa[static_cast<size_t>(I)] = Coord + SVal;
  }

  In.B = Bindings::forFunction(F);
  In.B.ArrayBases[0] = Alloc.allocArray(Qa);
  In.B.ArrayBases[1] = Alloc.allocArray(Sa);
  In.B.ArrayBases[2] = Alloc.allocArray(D);
  In.B.setInt(0, N); // hits
  return In;
}

std::unique_ptr<LoopFunction> workloads::buildEarlyExitLoop() {
  auto F = std::make_unique<LoopFunction>("string_search");
  int Length = F->addScalar("length", ElemType::I64);
  int Val = F->addScalar("val", ElemType::I32);
  int BestPos = F->addScalar("best_pos", ElemType::I32, /*IsLiveOut=*/true);
  int C = F->addScalar("c", ElemType::I32);
  int D = F->addScalar("d", ElemType::I32);
  int Str = F->addArray("str", ElemType::I32, /*ReadOnly=*/true);
  int Tab = F->addArray("tab", ElemType::I32, /*ReadOnly=*/true);
  F->setTripCountScalar(Length);

  Stmt *S1 = F->assignScalar(C, F->arrayRef(Str, F->indexRef()));
  Stmt *S2 = F->assignScalar(D, F->arrayRef(Tab, F->scalarRef(C)));
  Stmt *S3 = F->makeIfShell(
      F->compare(CmpKind::EQ, F->scalarRef(D), F->scalarRef(Val)));
  Stmt *S4 = F->assignScalar(BestPos, F->indexRef());
  Stmt *S5 = F->makeBreak();
  F->addThen(S3, S4);
  F->addThen(S3, S5);
  F->setBody({S1, S2, S3});
  return F;
}

LoopInputs workloads::genEarlyExitInputs(const LoopFunction &F, Rng &R,
                                         int64_t N, int64_t MatchPos,
                                         bool TightPages) {
  assert(N > 0);
  LoopInputs In;

  constexpr int32_t MatchChar = 200;
  constexpr int32_t MatchVal = 999;
  std::vector<int32_t> Tab(256);
  for (size_t C = 0; C < Tab.size(); ++C)
    Tab[C] = static_cast<int32_t>(C) * 2;
  Tab[MatchChar] = MatchVal;

  int64_t StrLen = TightPages ? std::min<int64_t>(N, MatchPos + 1) : N;
  std::vector<int32_t> Str(static_cast<size_t>(StrLen));
  for (int64_t I = 0; I < StrLen; ++I) {
    int32_t C = static_cast<int32_t>(R.nextBelow(256));
    if (C == MatchChar)
      C = 17;
    Str[static_cast<size_t>(I)] = C;
  }
  if (MatchPos < StrLen)
    Str[static_cast<size_t>(MatchPos)] = MatchChar;

  In.B = Bindings::forFunction(F);
  if (TightPages) {
    // Place the string so its last element ends exactly at a page
    // boundary; speculative lanes past the match genuinely fault.
    uint64_t Bytes = static_cast<uint64_t>(StrLen) * 4;
    uint64_t End = 0x40000; // Page-aligned.
    while (End < Bytes + mem::PageSize)
      End += mem::PageSize;
    uint64_t Base = End - Bytes;
    In.Image.map(Base, Bytes, mem::PermReadWrite);
    In.Image.write(Base, Str.data(), Bytes);
    In.B.ArrayBases[0] = Base;
    mem::BumpAllocator Alloc(In.Image, End + mem::PageSize * 4);
    In.B.ArrayBases[1] = Alloc.allocArray(Tab);
  } else {
    mem::BumpAllocator Alloc(In.Image);
    In.B.ArrayBases[0] = Alloc.allocArray(Str);
    In.B.ArrayBases[1] = Alloc.allocArray(Tab);
  }
  In.B.setInt(0, N);        // length
  In.B.setInt(1, MatchVal); // val
  In.B.setInt(2, -1);       // best_pos
  return In;
}
