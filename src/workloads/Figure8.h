//===- workloads/Figure8.h - Table 2 matrix on the parallel engine -*- C++ -*-===//
//
// Adapts the 18 Table 2 benchmarks onto core::runSweep: builds the
// benchmark set at a given iteration scale and exposes it as the engine's
// SweepWorkload views, plus the one-call wrapper every driver
// (flexvec-bench, bench_figure8, the determinism tests) goes through so
// they all measure exactly the same matrix.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_WORKLOADS_FIGURE8_H
#define FLEXVEC_WORKLOADS_FIGURE8_H

#include "core/ParallelEvaluator.h"
#include "workloads/Benchmarks.h"

namespace flexvec {
namespace workloads {

/// The 18 benchmarks plus the engine views into them. Views hold pointers
/// into Benchmarks, so keep the suite alive for the duration of the sweep.
struct Figure8Suite {
  std::vector<Benchmark> Benchmarks;
  std::vector<core::SweepWorkload> Workloads;
};

Figure8Suite buildFigure8Suite(double IterationScale = 1.0);

/// Runs the full 18 x 6 Figure 8 / Table 2 sweep with \p Opts (Opts.Scale
/// sizes the workloads). \p Cache optionally persists compiled loops
/// across sweeps.
core::SweepResult runFigure8Sweep(const core::SweepOptions &Opts,
                                  core::CompileCache *Cache = nullptr);

} // namespace workloads
} // namespace flexvec

#endif // FLEXVEC_WORKLOADS_FIGURE8_H
