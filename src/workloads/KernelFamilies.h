//===- workloads/KernelFamilies.h - Imported kernel families ----*- C++ -*-===//
//
// Two real kernel families imported as extra sweep rows alongside the 18
// Table 2 benchmarks:
//
//   * POLY  - polybench-style affine kernels (axpy, jacobi-1d stencil, a
//             conditional-min dot product). These stay inside the
//             traditional-vectorization envelope and pin down the affine
//             end of the legality spectrum: the sweep must report them as
//             vectorizable by *both* the traditional and FlexVec columns.
//   * IRREG - Autovesk-style gather/scatter kernels (a two-level gather
//             chain, scatter-max histogram, graph relaxation with a
//             gathered potential and a conflicting scatter-min, and a
//             non-unit-stride blend). These exercise the runtime-resolved
//             subscripts (VPGATHERFF / VPCONFLICTM) end.
//
// Each kernel is written in the loop DSL and parsed at build time, so the
// row *is* its reproducer; inputs come from gen::buildConventionInputs,
// the same naming-convention contract the fuzzer and the corpus use.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_WORKLOADS_KERNELFAMILIES_H
#define FLEXVEC_WORKLOADS_KERNELFAMILIES_H

#include "workloads/Benchmarks.h"

namespace flexvec {
namespace workloads {

/// Builds the imported family rows (POLY + IRREG groups). \p IterationScale
/// scales invocation counts exactly like buildAllBenchmarks does.
std::vector<Benchmark> buildFamilyBenchmarks(double IterationScale = 1.0);

} // namespace workloads
} // namespace flexvec

#endif // FLEXVEC_WORKLOADS_KERNELFAMILIES_H
