//===- workloads/PaperLoops.h - The paper's example loops -------*- C++ -*-===//
//
// The three worked loops from the paper, used by tests, examples, and the
// ablation benchmarks:
//
//  * h264ref motion-search loop (Sections 1.1, 4.2, Figure 6) —
//    conditional scalar update with speculative loads and an argmin
//    payload.
//  * The pairs/d_arr loop (Section 3.1, Figure 2 — the 473.astar shape) —
//    runtime cross-iteration memory dependence.
//  * The string-search loop (Section 4.1, Figure 5) — early loop
//    termination with speculative load and gather.
//
// Each loop comes with a parameterized input generator whose dependence
// probability controls the effective vector length.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_WORKLOADS_PAPERLOOPS_H
#define FLEXVEC_WORKLOADS_PAPERLOOPS_H

#include "ir/IR.h"
#include "ir/Interp.h"
#include "memory/Memory.h"
#include "support/Random.h"

#include <memory>

namespace flexvec {
namespace workloads {

/// A memory image plus bindings ready to execute.
struct LoopInputs {
  mem::Memory Image;
  ir::Bindings B;
};

// --- h264ref conditional update (Figure 6) -------------------------------===//
//
//  for (i = 0; i < max_pos; ++i)
//    if (block_sad[i] < min_mcost) {            // S2
//      mcost = block_sad[i];                    // S3
//      cand  = spiral[i];                       // S4  (speculative load)
//      mcost = mcost + mv[cand];                // S5  (speculative gather)
//      if (mcost < min_mcost) {                 // S7
//        min_mcost = mcost;                     // S8
//        best_pos  = i;                         // S9
//      }
//    }
//
// Scalar order: max_pos, min_mcost, best_pos, mcost, cand.
// Array order: block_sad, spiral, mv.
std::unique_ptr<ir::LoopFunction> buildH264Loop();

/// \p UpdateProb is the per-iteration probability that the inner update
/// fires (effective VL ≈ 1 / UpdateProb, capped at VL); \p OuterPassProb
/// is the extra probability that the outer guard passes without the inner
/// update firing.
LoopInputs genH264Inputs(const ir::LoopFunction &F, Rng &R, int64_t N,
                         double UpdateProb, double OuterPassProb = 0.05);

// --- Memory conflict (Figure 2) -------------------------------------------===//
//
//  for (i = 0; i < hits; ++i) {
//    q = qa[i];                                 // S1
//    s = sa[i];                                 // S2
//    coord = q - s;                             // S3
//    if (s >= d_arr[coord])                     // S4
//      d_arr[coord] = s;                        // S5
//  }
//
// Scalar order: hits, q, s, coord.  Array order: qa, sa, d_arr.
std::unique_ptr<ir::LoopFunction> buildConflictLoop();

/// \p ConflictProb is the probability that an iteration's coord collides
/// with one of the previous 12 iterations' coords.
LoopInputs genConflictInputs(const ir::LoopFunction &F, Rng &R, int64_t N,
                             double ConflictProb, int64_t TableSize = 4096);

// --- Early loop termination (Figure 5) ------------------------------------===//
//
//  for (i = 0; i < length; ++i) {
//    c = str[i];                                // S1  (speculative load)
//    d = tab[c];                                // S2  (speculative gather)
//    if (d == val) {                            // S3
//      best_pos = i;                            // S4
//      break;                                   // S5
//    }
//  }
//
// Scalar order: length, val, best_pos, c, d.  Array order: str, tab.
std::unique_ptr<ir::LoopFunction> buildEarlyExitLoop();

/// The match is planted at iteration \p MatchPos (pass MatchPos >= N for
/// "no match"). The declared length exceeds the mapped string so that
/// speculative lanes can genuinely fault past the match when
/// \p TightPages is true.
LoopInputs genEarlyExitInputs(const ir::LoopFunction &F, Rng &R, int64_t N,
                              int64_t MatchPos, bool TightPages = false);

} // namespace workloads
} // namespace flexvec

#endif // FLEXVEC_WORKLOADS_PAPERLOOPS_H
