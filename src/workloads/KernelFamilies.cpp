//===- workloads/KernelFamilies.cpp ---------------------------------------===//

#include "workloads/KernelFamilies.h"

#include "gen/Gen.h"
#include "ir/Parser.h"
#include "support/Error.h"

#include <algorithm>

using namespace flexvec;
using namespace flexvec::workloads;

namespace {

struct FamilyRow {
  const char *Name;  ///< Sweep-row name ("poly.axpy", "avk.gather_chain").
  const char *Group; ///< "POLY" or "IRREG".
  KernelKind Kind;
  const char *Mix;     ///< Expected FlexVec instruction classes.
  int64_t Trip;        ///< Iterations per invocation.
  int64_t Invocations; ///< Before iteration scaling.
  int64_t IndexBound;  ///< Values in idx-convention arrays.
  int64_t IndexMask;   ///< Largest masked subscript in the kernel.
  const char *Dsl;
};

// The subscripts each kernel can form are bounded by its row's IndexMask /
// IndexBound; gen::buildConventionInputs sizes every array past both, so
// the DSL below never reads or writes out of bounds.
const FamilyRow Rows[] = {
    // --- POLY: polybench-style affine kernels ---------------------------
    {"poly.axpy", "POLY", KernelKind::Affine, "VMUL/VADD (unit stride)",
     1024, 10, 64, 255,
     R"(loop poly_axpy(i64 n trip, i32 alpha, i32 x[] readonly, i32 y[]) {
  y[i] = (y[i] + (alpha * x[i]));
})"},
    {"poly.jacobi1d", "POLY", KernelKind::Affine,
     "VADD (affine +1/+2 offsets)", 1024, 10, 64, 255,
     R"(loop poly_jacobi1d(i64 n trip, i32 t1, i32 a[] readonly, i32 b[]) {
  t1 = ((a[i] + a[(i + 1)]) + a[(i + 2)]);
  b[i] = t1;
})"},
    {"poly.dotmin", "POLY", KernelKind::ArgExtreme,
     "KFTM, VPSLCTLAST (conditional-min reduction)", 2048, 8, 64, 255,
     R"(loop poly_dotmin(i64 n trip, i32 best liveout, i32 pay liveout,
                 i32 t1, i32 x[] readonly, i32 y[] readonly) {
  t1 = (x[i] * y[i]);
  if (t1 < best) {
    best = t1;
    pay = i;
  }
})"},
    // --- IRREG: Autovesk-style gather/scatter kernels -------------------
    {"avk.gather_chain", "IRREG", KernelKind::GatherChain,
     "VPGATHERFF x2 (two-level indirection)", 1024, 10, 256, 255,
     R"(loop avk_gather_chain(i64 n trip, i32 t1, i32 t2,
                      i32 idx[] readonly, i32 lut[] readonly, i32 out[]) {
  t1 = lut[(idx[i] & 255)];
  t2 = lut[(t1 & 255)];
  out[i] = (t1 + t2);
})"},
    {"avk.scatter_max", "IRREG", KernelKind::ScatterAccum,
     "KFTM, VPCONFLICTM (scatter-max histogram)", 1024, 10, 128, 255,
     R"(loop avk_scatter_max(i64 n trip, i32 j, i32 idx[] readonly,
                     i32 w[] readonly, i32 hist[]) {
  j = idx[i];
  hist[j] = max(hist[j], w[i]);
})"},
    {"avk.graph_relax", "IRREG", KernelKind::Force,
     "VPGATHERFF, VPCONFLICTM (edge relaxation)", 1024, 10, 128, 255,
     R"(loop avk_graph_relax(i64 n trip, i32 j, i32 t1,
                     i32 idxdst[] readonly, i32 idxsrc[] readonly,
                     i32 w[] readonly, i32 pot[] readonly, i32 d[]) {
  j = idxdst[i];
  t1 = (pot[(idxsrc[i] & 255)] + w[i]);
  d[j] = min(d[j], t1);
})"},
    {"avk.stride_blend", "IRREG", KernelKind::GatherChain,
     "VPGATHERFF (non-unit stride)", 1024, 10, 64, 255,
     R"(loop avk_stride_blend(i64 n trip, i32 t1, i32 s0[] readonly,
                      i32 out[]) {
  t1 = (s0[((i * 2) & 255)] + s0[(((i * 2) + 1) & 255)]);
  out[i] = t1;
})"},
};

} // namespace

std::vector<Benchmark>
workloads::buildFamilyBenchmarks(double IterationScale) {
  std::vector<Benchmark> Out;
  Out.reserve(std::size(Rows));
  for (const FamilyRow &R : Rows) {
    ir::ParseResult P = ir::parseLoop(R.Dsl);
    if (!P)
      fatalError("family kernel failed to parse: " + std::string(R.Name) +
                 ": " + P.Error);

    Benchmark B;
    B.Name = R.Name;
    B.Group = R.Group;
    B.Kind = R.Kind;
    B.Coverage = 1.0; // The kernel *is* the workload; no app around it.
    B.PaperTripCount = R.Trip;
    B.PaperSpeedup = 0.0; // Imported family: no Figure 8 reference point.
    B.PaperMix = R.Mix;
    B.F = std::move(P.F);

    gen::InputPlan Plan;
    Plan.Trip = R.Trip;
    Plan.IndexBound = R.IndexBound;
    Plan.IndexMask = R.IndexMask;
    Plan.ArraySlack = 8;
    int64_t Invs = std::max<int64_t>(
        1, static_cast<int64_t>(
               static_cast<double>(R.Invocations) * IterationScale));
    const ir::LoopFunction *FPtr = B.F.get();
    B.Gen = [FPtr, Plan, Invs](Rng &Rand) {
      BenchInstance In;
      In.Invocations.reserve(static_cast<size_t>(Invs));
      for (int64_t V = 0; V < Invs; ++V) {
        ir::Bindings Bind = ir::Bindings::forFunction(*FPtr);
        gen::buildConventionInputs(*FPtr, Rand, Plan, In.Image, Bind);
        In.Invocations.push_back(std::move(Bind));
      }
      return In;
    };
    Out.push_back(std::move(B));
  }
  return Out;
}
