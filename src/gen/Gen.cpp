//===- gen/Gen.cpp --------------------------------------------------------===//

#include "gen/Gen.h"

#include <algorithm>
#include <vector>

using namespace flexvec;
using namespace flexvec::gen;
using namespace flexvec::ir;
using isa::CmpKind;
using isa::ElemType;

Envelope Envelope::classic() { return Envelope(); }

Envelope Envelope::widened() {
  Envelope E;
  E.NestedIndexProb = 0.35;
  E.StrideLoadProb = 0.25;
  E.AffineOffsetProb = 0.25;
  E.AffineStoreProb = 0.35;
  return E;
}

namespace {

/// Expression sampler over the declared parameters. Every subscript it can
/// form is in bounds for arrays sized per InputPlan: affine reads reach at
/// most i + MaxAffineOffset, strided and indirect reads are masked to
/// [0, IndexMask].
struct ExprGen {
  Rng &R;
  LoopFunction &F;
  const Envelope &E;
  std::vector<int> ReadableScalars; ///< Defined-before-use values.
  std::vector<int> RoArrays;

  const Expr *arrayRead(int Depth) {
    int A = RoArrays[R.nextBelow(RoArrays.size())];
    // Subscript-shape rolls in a fixed order so a given seed always
    // consumes the same stream no matter which knobs are zero.
    if (R.nextBool(E.StrideLoadProb)) {
      int64_t Stride = R.nextInRange(2, 4);
      int64_t Off = R.nextInRange(0, 7);
      const Expr *Idx = F.binary(
          BinOp::And,
          F.binary(BinOp::Add,
                   F.binary(BinOp::Mul, F.indexRef(),
                            F.constInt(ElemType::I32, Stride)),
                   F.constInt(ElemType::I32, Off)),
          F.constInt(ElemType::I32, E.IndexMask));
      return F.arrayRef(A, Idx);
    }
    if (R.nextBool(E.IndirectLoadProb)) {
      const Expr *Inner;
      if (Depth > 0 && R.nextBool(E.NestedIndexProb)) {
        // Gather chain: the index is itself an affine read.
        int B = RoArrays[R.nextBelow(RoArrays.size())];
        Inner = F.arrayRef(B, F.indexRef());
      } else {
        Inner = randomValue(0);
      }
      const Expr *Idx = F.binary(BinOp::And, Inner,
                                 F.constInt(ElemType::I32, E.IndexMask));
      return F.arrayRef(A, Idx);
    }
    if (R.nextBool(E.AffineOffsetProb)) {
      int64_t Off = R.nextInRange(1, std::max(1, E.MaxAffineOffset));
      return F.arrayRef(
          A, F.binary(BinOp::Add, F.indexRef(),
                      F.constInt(ElemType::I32, Off)));
    }
    return F.arrayRef(A, F.indexRef());
  }

  const Expr *randomValue(int Depth) {
    switch (R.nextBelow(Depth <= 0 ? 3 : 5)) {
    case 0:
      return F.constInt(ElemType::I32, R.nextInRange(-20, 20));
    case 1:
      return F.scalarRef(
          ReadableScalars[R.nextBelow(ReadableScalars.size())]);
    case 2:
      return arrayRead(Depth);
    case 3: {
      BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Min, BinOp::Max};
      return F.binary(Ops[R.nextBelow(4)], randomValue(Depth - 1),
                      randomValue(Depth - 1));
    }
    default:
      return F.binary(BinOp::Mul, randomValue(Depth - 1),
                      F.constInt(ElemType::I32, R.nextInRange(1, 4)));
    }
  }

  const Expr *randomCond(int Depth) {
    CmpKind Kinds[] = {CmpKind::LT, CmpKind::LE, CmpKind::GT,
                       CmpKind::GE, CmpKind::EQ, CmpKind::NE};
    return F.compare(Kinds[R.nextBelow(6)], randomValue(Depth),
                     randomValue(Depth));
  }
};

} // namespace

GeneratedLoop gen::generateLoop(uint64_t Seed, const Envelope &E) {
  Rng R(Seed);
  GeneratedLoop Out;
  Out.Seed = Seed;
  Out.F = std::make_unique<LoopFunction>("fuzz_" + std::to_string(Seed));
  LoopFunction &F = *Out.F;

  int N = F.addScalar("n", ElemType::I64);
  F.setTripCountScalar(N);
  int Inv = F.addScalar("inv", ElemType::I32);
  int T1 = F.addScalar("t1", ElemType::I32);
  int T2 = F.addScalar("t2", ElemType::I32);

  Out.HasUpdate = R.nextBool(E.UpdateProb);
  int Best = -1, Pay = -1;
  if (Out.HasUpdate) {
    Best = F.addScalar("best", ElemType::I32, /*IsLiveOut=*/true);
    Pay = F.addScalar("pay", ElemType::I32, /*IsLiveOut=*/true);
  }
  Out.HasExit = R.nextBool(E.ExitProb);
  int ExitPos = -1;
  if (Out.HasExit)
    ExitPos = F.addScalar("exit_pos", ElemType::I32, /*IsLiveOut=*/true);

  Out.NumRoArrays =
      1 + static_cast<int>(R.nextBelow(std::max(1u, E.MaxRoArrays)));
  std::vector<int> Ro;
  for (int A = 0; A < Out.NumRoArrays; ++A)
    Ro.push_back(F.addArray("ro" + std::to_string(A), ElemType::I32, true));

  Out.HasOut = R.nextBool(E.AffineStoreProb);
  int OutArr = -1;
  if (Out.HasOut)
    OutArr = F.addArray("out", ElemType::I32);

  Out.HasConflict = R.nextBool(E.ConflictProb);
  int Rw = -1, IdxArr = -1;
  if (Out.HasConflict) {
    IdxArr = F.addArray("iarr", ElemType::I32, true);
    Rw = F.addArray("rw", ElemType::I32);
  }

  ExprGen G{R, F, E, {Inv}, Ro};
  std::vector<Stmt *> Body;

  // Prologue: define the temporaries (unconditionally, so later reads are
  // killed within the iteration).
  Body.push_back(F.assignScalar(T1, G.randomValue(E.MaxDepth)));
  G.ReadableScalars.push_back(T1);
  Body.push_back(F.assignScalar(T2, G.randomValue(E.MaxDepth)));
  G.ReadableScalars.push_back(T2);

  // Optional early exit (top level, before the other patterns): a rare-ish
  // equality against a constant.
  if (Out.HasExit) {
    const Expr *Cond = F.compare(
        CmpKind::EQ,
        F.binary(BinOp::And, G.randomValue(1),
                 F.constInt(ElemType::I32, 1023)),
        F.constInt(ElemType::I32, 77));
    Stmt *Guard = F.makeIfShell(Cond);
    F.addThen(Guard, F.assignScalar(ExitPos, F.indexRef()));
    F.addThen(Guard, F.makeBreak());
    Body.push_back(Guard);
  }

  // Optional plain masked region.
  Out.HasMasked = R.nextBool(E.MaskedIfProb);
  if (Out.HasMasked) {
    Stmt *If = F.makeIfShell(G.randomCond(1));
    F.addThen(If, F.assignScalar(T2, G.randomValue(E.MaxDepth)));
    if (R.nextBool(E.ElseProb))
      F.addElse(If, F.assignScalar(T1, G.randomValue(1)));
    Body.push_back(If);
  }

  // Optional conditional update.
  if (Out.HasUpdate) {
    const Expr *Cand = F.scalarRef(R.nextBool(0.5) ? T1 : T2);
    Stmt *Guard =
        F.makeIfShell(F.compare(CmpKind::LT, Cand, F.scalarRef(Best)));
    F.addThen(Guard, F.assignScalar(Best, Cand));
    F.addThen(Guard, F.assignScalar(Pay, F.indexRef()));
    Body.push_back(Guard);
  }

  // Optional affine output store (disjoint from every other region).
  if (Out.HasOut)
    Body.push_back(F.storeArray(OutArr, F.indexRef(), G.randomValue(1)));

  // Optional memory-conflict block (after any update region; disjoint).
  if (Out.HasConflict) {
    int J = F.addScalar("j", ElemType::I32);
    Body.push_back(F.assignScalar(J, F.arrayRef(IdxArr, F.indexRef())));
    const Expr *JRef = F.scalarRef(J);
    const Expr *NewVal =
        F.binary(BinOp::Add, F.arrayRef(Rw, JRef),
                 F.binary(BinOp::And, G.randomValue(1),
                          F.constInt(ElemType::I32, 15)));
    Body.push_back(F.storeArray(Rw, JRef, NewVal));
  }

  F.setBody(Body);
  return Out;
}

void gen::buildConventionInputs(const ir::LoopFunction &F, Rng &R,
                                const InputPlan &P, mem::Memory &M,
                                ir::Bindings &B) {
  mem::BumpAllocator Alloc(M);
  int64_t Len = std::max<int64_t>(
      {P.Trip + P.ArraySlack, P.IndexMask + 1, P.IndexBound, 512});
  for (size_t A = 0; A < F.arrays().size(); ++A) {
    const ArrayParam &AP = F.arrays()[A];
    bool IsIndex = AP.Name == "iarr" || AP.Name.rfind("idx", 0) == 0 ||
                   AP.Name.rfind("dst", 0) == 0;
    std::vector<int32_t> Data(static_cast<size_t>(Len));
    for (auto &V : Data) {
      if (IsIndex)
        V = static_cast<int32_t>(R.nextBelow(
            static_cast<uint64_t>(std::max<int64_t>(1, P.IndexBound))));
      else if (AP.ReadOnly)
        V = static_cast<int32_t>(R.nextInRange(-100, 100));
      else
        V = static_cast<int32_t>(R.nextInRange(-50, 50));
    }
    B.ArrayBases[static_cast<int>(A)] = Alloc.allocArray(Data);
  }
  for (size_t S = 0; S < F.scalars().size(); ++S) {
    int Id = static_cast<int>(S);
    if (Id == F.tripCountScalar())
      B.setInt(Id, P.Trip);
    else if (F.scalar(Id).Name == "best")
      B.setInt(Id, 1 << 20);
    else if (F.scalar(Id).Name == "sentinel")
      B.setInt(Id, 7);
    else
      B.setInt(Id, static_cast<int32_t>(R.nextInRange(-20, 20)));
  }
}
