//===- gen/Differential.h - Six-variant differential check ------*- C++ -*-===//
//
// One call that runs a loop through everything the differential harness
// enforces: DSL round-trip (so the reproducer we would print is usable),
// plan legality, the no-silent-decline remark invariant, the reference-
// interpreter cross-check over every generated variant — including
// flexvec-adaptive through the multi-invocation path that drives its
// dispatch cell — and, optionally, an RTM conflict storm through the
// fault harness for the transactional variants.
//
// The result is a (class, variant) pair rather than a bool so the shrinker
// can minimize while preserving the *same* failure, not just any failure.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_GEN_DIFFERENTIAL_H
#define FLEXVEC_GEN_DIFFERENTIAL_H

#include "gen/Gen.h"

#include <cstdint>
#include <string>

namespace flexvec {
namespace gen {

/// What went wrong, coarsest-first. None means every check passed.
enum class FailureClass : uint8_t {
  None = 0,
  RoundTrip,        ///< printLoopDsl -> parse -> re-print not byte-equal.
  NotVectorizable,  ///< The plan declined a loop the envelope promises.
  SilentDecline,    ///< Variant absent without a lower-pass missed remark.
  MissingApplied,   ///< Variant present without a lower-pass applied remark.
  RunError,         ///< A generated program failed to run to completion.
  Mismatch,         ///< A generated program diverged from the reference.
  StormDivergence,  ///< Scalar/vector outcomes split under the RTM storm.
};

const char *failureClassName(FailureClass C);

struct CheckOptions {
  unsigned RtmTile = 64;
  /// Vector width every variant compiles and runs at (width sweeps rerun
  /// the same loop/seed at several configs). Defaults to the session
  /// configuration (FLEXVEC_VL, else 512-bit).
  isa::VectorConfig Vec = isa::defaultVectorConfig();
  /// SVE-style predicated loop control for the compiled variants.
  bool Predicated = false;
  int Rounds = 2;          ///< Random-input rounds per loop.
  int64_t MinTrip = 1;
  int64_t MaxTrip = 400;
  InputPlan Inputs;        ///< Trip is overwritten per round.
  /// 0 disables the storm pass; otherwise flexvec-rtm and flexvec-adaptive
  /// also run a multi-invocation differential under a seeded conflict
  /// storm with this abort probability.
  uint64_t StormSeed = 0;
  double StormAbortProb = 0.75;
  size_t StormInvocations = 10;
};

struct CheckResult {
  FailureClass Class = FailureClass::None;
  std::string Variant; ///< Failing column ("flexvec-rtm", ...), or empty.
  std::string Detail;  ///< Human-readable context incl. DSL reproducer.

  bool ok() const { return Class == FailureClass::None; }
  /// Same divergence class: what the shrinker preserves.
  bool sameFailure(const CheckResult &O) const {
    return Class == O.Class && Variant == O.Variant;
  }
};

/// Runs every check on \p F. Inputs derive deterministically from
/// \p InputSeed, so a (loop, seed, options) triple always yields the same
/// verdict.
CheckResult checkLoop(const ir::LoopFunction &F, uint64_t InputSeed,
                      const CheckOptions &Opts = {});

} // namespace gen
} // namespace flexvec

#endif // FLEXVEC_GEN_DIFFERENTIAL_H
