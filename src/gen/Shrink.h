//===- gen/Shrink.h - Greedy test-case shrinker -----------------*- C++ -*-===//
//
// Minimizes a failing loop to a small DSL reproducer. The shrinker applies
// structural reductions — delete a statement, hoist an if-region over its
// guard, collapse a binary to one operand, flatten a gather to a constant,
// drop unused parameters — and keeps a reduction whenever the caller's
// predicate still holds on the smaller loop (greedy first-improvement with
// restart, to a fixed point).
//
// Everything is deterministic: candidates are enumerated in a fixed
// lexical order and no randomness is consumed, so the same (loop,
// predicate) always shrinks to the same reproducer. The predicate is
// typically "gen::checkLoop reports the same divergence class" so shrunk
// loops still reproduce the original failure.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_GEN_SHRINK_H
#define FLEXVEC_GEN_SHRINK_H

#include "ir/IR.h"

#include <functional>
#include <memory>

namespace flexvec {
namespace gen {

/// Structural deep copy of \p F (the IR is arena-owned and non-copyable;
/// the clone rebuilds through the builder API, renumbering statements in
/// lexical order).
std::unique_ptr<ir::LoopFunction> cloneLoop(const ir::LoopFunction &F);

/// Returns true when the candidate loop still exhibits the failure being
/// minimized. Must be deterministic for the shrink to be reproducible.
using ShrinkPredicate = std::function<bool(const ir::LoopFunction &)>;

struct ShrinkOptions {
  /// Budget of predicate evaluations; the greedy loop stops (keeping the
  /// best loop so far) when it runs out.
  int MaxAttempts = 2000;
};

struct ShrinkResult {
  std::unique_ptr<ir::LoopFunction> F; ///< The minimized loop.
  int Attempts = 0;  ///< Predicate evaluations spent.
  int Accepted = 0;  ///< Reductions that kept the failure alive.
  bool BudgetExhausted = false;
};

/// Shrinks \p F while \p Holds stays true. \p Holds is assumed true for
/// \p F itself (the caller observed the failure there); the result is the
/// smallest loop reached before the fixed point or the attempt budget.
ShrinkResult shrinkLoop(const ir::LoopFunction &F, const ShrinkPredicate &Holds,
                        const ShrinkOptions &Opts = {});

} // namespace gen
} // namespace flexvec

#endif // FLEXVEC_GEN_SHRINK_H
