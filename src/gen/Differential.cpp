//===- gen/Differential.cpp -----------------------------------------------===//

#include "gen/Differential.h"

#include "core/FaultHarness.h"
#include "core/ParallelEvaluator.h"
#include "core/Pipeline.h"
#include "driver/Remarks.h"
#include "ir/Parser.h"
#include "support/Hash.h"

using namespace flexvec;
using namespace flexvec::gen;

const char *gen::failureClassName(FailureClass C) {
  switch (C) {
  case FailureClass::None:
    return "none";
  case FailureClass::RoundTrip:
    return "round-trip";
  case FailureClass::NotVectorizable:
    return "not-vectorizable";
  case FailureClass::SilentDecline:
    return "silent-decline";
  case FailureClass::MissingApplied:
    return "missing-applied-remark";
  case FailureClass::RunError:
    return "run-error";
  case FailureClass::Mismatch:
    return "mismatch";
  case FailureClass::StormDivergence:
    return "storm-divergence";
  }
  return "?";
}

namespace {

CheckResult fail(FailureClass C, std::string Variant, std::string Detail) {
  CheckResult R;
  R.Class = C;
  R.Variant = std::move(Variant);
  R.Detail = std::move(Detail);
  return R;
}

} // namespace

CheckResult gen::checkLoop(const ir::LoopFunction &F, uint64_t InputSeed,
                           const CheckOptions &Opts) {
  // 1. The reproducer path itself: the loop must survive a DSL round trip
  // byte-identically, or every failure we print is unreplayable.
  std::string Dsl = ir::printLoopDsl(F);
  ir::ParseResult P = ir::parseLoop(Dsl);
  if (!P)
    return fail(FailureClass::RoundTrip, "",
                "reparse failed: " + P.Error + "\n" + Dsl);
  if (ir::printLoopDsl(*P.F) != Dsl)
    return fail(FailureClass::RoundTrip, "",
                "re-print differs from original:\n" + Dsl);

  driver::DriverOptions DOpts;
  DOpts.RtmTile = Opts.RtmTile;
  DOpts.Vec = Opts.Vec;
  DOpts.Predicated = Opts.Predicated;
  core::PipelineResult PR = driver::compileLoop(F, DOpts);
  if (!PR.Plan.Vectorizable)
    return fail(FailureClass::NotVectorizable, "",
                PR.Plan.Reason + "\n" + Dsl);

  // 2. No silent declines: every absent vector variant must carry a
  // lower-pass missed remark, every present one an applied remark.
  for (unsigned V = 1; V < core::NumVariants; ++V) {
    const char *Name = core::variantName(static_cast<core::VariantId>(V));
    bool Generated =
        core::selectVariant(PR, static_cast<core::VariantId>(V)) != nullptr;
    bool Applied = false, Missed = false;
    for (const driver::Remark &Rk : PR.Remarks.remarks()) {
      if (Rk.Pass != "lower" || Rk.Variant != Name)
        continue;
      Applied |= Rk.Kind == driver::RemarkKind::Applied;
      Missed |= Rk.Kind == driver::RemarkKind::Missed;
    }
    if (Generated && !Applied)
      return fail(FailureClass::MissingApplied, Name,
                  "generated without an applied remark\n" + Dsl);
    if (!Generated && !Missed)
      return fail(FailureClass::SilentDecline, Name,
                  "declined without a missed remark\n" + Dsl);
  }

  // 3. Differential rounds: fresh random inputs per round, every generated
  // variant against the reference interpreter. The adaptive variant runs
  // through the multi-invocation path, which maps and tears down its
  // dispatch cell.
  for (int Round = 0; Round < Opts.Rounds; ++Round) {
    Rng R(deriveStreamSeed(InputSeed, static_cast<uint64_t>(Round)));
    InputPlan Plan = Opts.Inputs;
    Plan.Trip = Opts.MinTrip +
                static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(
                    Opts.MaxTrip - Opts.MinTrip + 1)));
    mem::Memory M;
    ir::Bindings B = ir::Bindings::forFunction(F);
    buildConventionInputs(F, R, Plan, M, B);
    std::vector<ir::Bindings> Invocations{B};

    core::RunOutcome Ref = core::runReferenceMulti(F, M, Invocations);
    if (!Ref.Ok)
      return fail(FailureClass::RunError, "reference",
                  "round " + std::to_string(Round) + ": " + Ref.Error + "\n" +
                      Dsl);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      const char *Name = core::variantName(static_cast<core::VariantId>(V));
      core::RunOutcome Out = core::runProgramMulti(F, *CL, M, Invocations);
      std::string Ctx = std::string(Name) + " (round " +
                        std::to_string(Round) + ", trip " +
                        std::to_string(Plan.Trip) + ")";
      if (!Out.Ok)
        return fail(FailureClass::RunError, Name,
                    Ctx + ": " + Out.Error + "\n" + Dsl);
      if (!core::outcomesMatch(F, Ref, Out))
        return fail(FailureClass::Mismatch, Name,
                    Ctx + " diverges from the reference\n" + Dsl);
    }
  }

  // 4. Conflict-storm pass: the transactional variants re-run the same
  // inputs as a multi-invocation sequence under a seeded abort storm;
  // RTM retries/falls back and adaptive demotes, but architectural
  // equivalence with the stormed scalar run must hold throughout.
  if (Opts.StormSeed) {
    Rng R(deriveStreamSeed(InputSeed, 0x5702)); // Independent input round.
    InputPlan Plan = Opts.Inputs;
    Plan.Trip = Opts.MinTrip +
                static_cast<int64_t>(R.nextBelow(static_cast<uint64_t>(
                    Opts.MaxTrip - Opts.MinTrip + 1)));
    mem::Memory M;
    ir::Bindings B = ir::Bindings::forFunction(F);
    buildConventionInputs(F, R, Plan, M, B);
    std::vector<ir::Bindings> Invocations(Opts.StormInvocations, B);

    for (core::VariantId V : {core::VariantId::Rtm, core::VariantId::Adaptive}) {
      const codegen::CompiledLoop *CL = core::selectVariant(PR, V);
      if (!CL)
        continue;
      core::FaultPlan FP;
      FP.Tx.Seed = deriveStreamSeed(Opts.StormSeed, static_cast<uint64_t>(V));
      FP.Tx.AbortProb = Opts.StormAbortProb;
      FP.Tx.Reason = rtm::AbortReason::Conflict;
      core::DiffVerdict Verdict = core::runDifferentialMulti(
          F, PR.Scalar, *CL, M, Invocations, FP);
      if (!Verdict.Equivalent)
        return fail(FailureClass::StormDivergence, core::variantName(V),
                    Verdict.Detail + "\n" + Dsl);
    }
  }
  return CheckResult();
}
