//===- gen/Shrink.cpp -----------------------------------------------------===//

#include "gen/Shrink.h"

#include <vector>

using namespace flexvec;
using namespace flexvec::gen;
using namespace flexvec::ir;

namespace {

/// One structural reduction. Expr targets are identified by their ordinal
/// in a fixed pre-order walk (statements in lexical order; within a
/// statement: If condition, then-region, else-region; store index before
/// value), so enumeration and application agree on addressing without the
/// two sharing any pointers.
struct Mutation {
  enum class Kind {
    None,        ///< Plain clone.
    DeleteStmt,  ///< Remove the statement (and its children).
    HoistThen,   ///< Replace an if with its then-region.
    HoistElse,   ///< Replace an if with its else-region.
    TakeLhs,     ///< Replace a binary/logical-and with its left operand.
    TakeRhs,     ///< Replace a binary/logical-and with its right operand.
    FlattenLoad, ///< Replace an array read with the constant 1.
    DropUnused,  ///< Drop parameters no statement references.
  };
  Kind K = Kind::None;
  int StmtId = -1;
  int ExprOrd = -1;
};

/// Rebuilds \p Old into a fresh LoopFunction, applying at most one
/// mutation along the way.
class Rebuilder {
public:
  Rebuilder(const LoopFunction &Old, const Mutation &M) : Old(Old), M(M) {}

  std::unique_ptr<LoopFunction> run() {
    auto New = std::make_unique<LoopFunction>(Old.name());
    Out = New.get();

    // Parameter survival: with DropUnused, keep only referenced
    // parameters (the trip scalar always survives).
    std::vector<bool> ScalarUsed(Old.scalars().size(),
                                 M.K != Mutation::Kind::DropUnused);
    std::vector<bool> ArrayUsed(Old.arrays().size(),
                                M.K != Mutation::Kind::DropUnused);
    if (M.K == Mutation::Kind::DropUnused)
      collectUses(ScalarUsed, ArrayUsed);

    ScalarMap.assign(Old.scalars().size(), -1);
    ArrayMap.assign(Old.arrays().size(), -1);
    for (size_t S = 0; S < Old.scalars().size(); ++S) {
      if (!ScalarUsed[S] &&
          static_cast<int>(S) != Old.tripCountScalar())
        continue;
      const ScalarParam &P = Old.scalars()[S];
      ScalarMap[S] = Out->addScalar(P.Name, P.Type, P.IsLiveOut);
    }
    for (size_t A = 0; A < Old.arrays().size(); ++A) {
      if (!ArrayUsed[A])
        continue;
      const ArrayParam &P = Old.arrays()[A];
      ArrayMap[A] = Out->addArray(P.Name, P.Elem, P.ReadOnly);
    }
    Out->setTripCountScalar(ScalarMap[Old.tripCountScalar()]);

    Out->setBody(copyStmtList(Old.body()));
    return New;
  }

  bool applied() const { return Applied; }

private:
  void collectUsesExpr(const Expr *E, std::vector<bool> &Scalars,
                       std::vector<bool> &Arrays) {
    if (!E)
      return;
    if (E->Kind == ExprKind::ScalarRef)
      Scalars[E->ScalarId] = true;
    if (E->Kind == ExprKind::ArrayRef) {
      Arrays[E->ArrayId] = true;
      collectUsesExpr(E->Index, Scalars, Arrays);
    }
    collectUsesExpr(E->Lhs, Scalars, Arrays);
    collectUsesExpr(E->Rhs, Scalars, Arrays);
  }

  void collectUses(std::vector<bool> &Scalars, std::vector<bool> &Arrays) {
    Old.forEachStmt([&](const Stmt *S) {
      if (S->Kind == StmtKind::AssignScalar)
        Scalars[S->ScalarId] = true;
      if (S->Kind == StmtKind::StoreArray) {
        Arrays[S->ArrayId] = true;
        collectUsesExpr(S->Index, Scalars, Arrays);
      }
      collectUsesExpr(S->Value, Scalars, Arrays);
      collectUsesExpr(S->Cond, Scalars, Arrays);
    });
  }

  const Expr *copyExpr(const Expr *E) {
    int Ord = ExprOrd++;
    bool Target = Ord == M.ExprOrd && !Applied;
    switch (E->Kind) {
    case ExprKind::ConstInt:
      return Out->constInt(E->Type, E->IntValue);
    case ExprKind::ConstFloat:
      return Out->constFloat(E->Type, E->FloatValue);
    case ExprKind::ScalarRef:
      return Out->scalarRef(ScalarMap[E->ScalarId]);
    case ExprKind::IndexRef:
      return Out->indexRef();
    case ExprKind::ArrayRef:
      if (Target && M.K == Mutation::Kind::FlattenLoad) {
        Applied = true;
        return Out->constInt(E->Type, 1);
      }
      return Out->arrayRef(ArrayMap[E->ArrayId], copyExpr(E->Index));
    case ExprKind::Binary:
      if (Target && M.K == Mutation::Kind::TakeLhs) {
        Applied = true;
        return copyExpr(E->Lhs);
      }
      if (Target && M.K == Mutation::Kind::TakeRhs) {
        Applied = true;
        return copyExpr(E->Rhs);
      }
      return Out->binary(E->Op, copyExpr(E->Lhs), copyExpr(E->Rhs));
    case ExprKind::Compare:
      return Out->compare(E->Cmp, copyExpr(E->Lhs), copyExpr(E->Rhs));
    case ExprKind::LogicalAnd:
      if (Target && M.K == Mutation::Kind::TakeLhs) {
        Applied = true;
        return copyExpr(E->Lhs);
      }
      if (Target && M.K == Mutation::Kind::TakeRhs) {
        Applied = true;
        return copyExpr(E->Rhs);
      }
      return Out->logicalAnd(copyExpr(E->Lhs), copyExpr(E->Rhs));
    }
    return nullptr;
  }

  void copyStmt(const Stmt *S, std::vector<Stmt *> &List) {
    if (S->Id == M.StmtId && !Applied) {
      if (M.K == Mutation::Kind::DeleteStmt) {
        Applied = true;
        return;
      }
      if (M.K == Mutation::Kind::HoistThen && S->Kind == StmtKind::If) {
        Applied = true;
        for (const Stmt *C : S->Then)
          copyStmt(C, List);
        return;
      }
      if (M.K == Mutation::Kind::HoistElse && S->Kind == StmtKind::If) {
        Applied = true;
        for (const Stmt *C : S->Else)
          copyStmt(C, List);
        return;
      }
    }
    switch (S->Kind) {
    case StmtKind::AssignScalar:
      List.push_back(
          Out->assignScalar(ScalarMap[S->ScalarId], copyExpr(S->Value)));
      return;
    case StmtKind::StoreArray:
      List.push_back(Out->storeArray(ArrayMap[S->ArrayId],
                                     copyExpr(S->Index),
                                     copyExpr(S->Value)));
      return;
    case StmtKind::If: {
      Stmt *If = Out->makeIfShell(copyExpr(S->Cond));
      for (Stmt *C : copyStmtList(S->Then))
        Out->addThen(If, C);
      for (Stmt *C : copyStmtList(S->Else))
        Out->addElse(If, C);
      List.push_back(If);
      return;
    }
    case StmtKind::Break:
      List.push_back(Out->makeBreak());
      return;
    }
  }

  std::vector<Stmt *> copyStmtList(const std::vector<Stmt *> &Stmts) {
    std::vector<Stmt *> List;
    for (const Stmt *S : Stmts)
      copyStmt(S, List);
    return List;
  }

  const LoopFunction &Old;
  const Mutation &M;
  LoopFunction *Out = nullptr;
  std::vector<int> ScalarMap, ArrayMap;
  int ExprOrd = 0;
  bool Applied = false;
};

/// Applies \p M to \p F; returns null when the mutation had no effect
/// (target missing, or DropUnused with nothing to drop).
std::unique_ptr<LoopFunction> applyMutation(const LoopFunction &F,
                                            const Mutation &M) {
  Rebuilder RB(F, M);
  std::unique_ptr<LoopFunction> New = RB.run();
  if (M.K == Mutation::Kind::DropUnused) {
    bool Dropped = New->scalars().size() != F.scalars().size() ||
                   New->arrays().size() != F.arrays().size();
    return Dropped ? std::move(New) : nullptr;
  }
  if (!RB.applied())
    return nullptr;
  return New;
}

/// Enumerates every applicable reduction of \p F in fixed lexical order:
/// statement deletions and hoists first (big wins), then parameter drops,
/// then expression simplifications.
std::vector<Mutation> enumerateMutations(const LoopFunction &F) {
  std::vector<Mutation> Ms;
  F.forEachStmt([&](const Stmt *S) {
    Ms.push_back({Mutation::Kind::DeleteStmt, S->Id, -1});
    if (S->Kind == StmtKind::If) {
      if (!S->Then.empty())
        Ms.push_back({Mutation::Kind::HoistThen, S->Id, -1});
      if (!S->Else.empty())
        Ms.push_back({Mutation::Kind::HoistElse, S->Id, -1});
    }
  });
  Ms.push_back({Mutation::Kind::DropUnused, -1, -1});

  // Expression ordinals in the exact order copyExpr visits them.
  int Ord = 0;
  std::function<void(const Expr *)> Walk = [&](const Expr *E) {
    int MyOrd = Ord++;
    switch (E->Kind) {
    case ExprKind::Binary:
    case ExprKind::LogicalAnd:
      Ms.push_back({Mutation::Kind::TakeLhs, -1, MyOrd});
      Ms.push_back({Mutation::Kind::TakeRhs, -1, MyOrd});
      Walk(E->Lhs);
      Walk(E->Rhs);
      return;
    case ExprKind::Compare:
      Walk(E->Lhs);
      Walk(E->Rhs);
      return;
    case ExprKind::ArrayRef:
      Ms.push_back({Mutation::Kind::FlattenLoad, -1, MyOrd});
      Walk(E->Index);
      return;
    default:
      return;
    }
  };
  // Statement-lexical expr walk, mirroring Rebuilder::copyStmt.
  std::function<void(const std::vector<Stmt *> &)> WalkStmts =
      [&](const std::vector<Stmt *> &Stmts) {
        for (const Stmt *S : Stmts) {
          switch (S->Kind) {
          case StmtKind::AssignScalar:
            Walk(S->Value);
            break;
          case StmtKind::StoreArray:
            Walk(S->Index);
            Walk(S->Value);
            break;
          case StmtKind::If:
            Walk(S->Cond);
            WalkStmts(S->Then);
            WalkStmts(S->Else);
            break;
          case StmtKind::Break:
            break;
          }
        }
      };
  WalkStmts(F.body());
  return Ms;
}

} // namespace

std::unique_ptr<LoopFunction> gen::cloneLoop(const LoopFunction &F) {
  Mutation None;
  return Rebuilder(F, None).run();
}

ShrinkResult gen::shrinkLoop(const LoopFunction &F,
                             const ShrinkPredicate &Holds,
                             const ShrinkOptions &Opts) {
  ShrinkResult R;
  R.F = cloneLoop(F);
  bool Improved = true;
  while (Improved) {
    Improved = false;
    for (const Mutation &M : enumerateMutations(*R.F)) {
      std::unique_ptr<LoopFunction> Cand = applyMutation(*R.F, M);
      if (!Cand)
        continue;
      if (R.Attempts >= Opts.MaxAttempts) {
        R.BudgetExhausted = true;
        return R;
      }
      ++R.Attempts;
      if (!Holds(*Cand))
        continue;
      R.F = std::move(Cand);
      ++R.Accepted;
      Improved = true; // Restart enumeration on the smaller loop.
      break;
    }
  }
  return R;
}
