//===- gen/Gen.h - Seeded, envelope-configurable loop generator -*- C++ -*-===//
//
// The scenario mill: generates random structured loops inside the legal
// FlexVec envelope from a single 64-bit seed. The generator used to live
// inline in tests/FuzzDifferentialTest.cpp; it is a library now so the
// standing fuzz test, the flexvec-fuzz driver, and the shrinker all draw
// from one implementation (and one set of input-building conventions).
//
// An Envelope describes the distribution the mill samples from: the
// pattern mix (early exit, conditional update, memory conflict, masked
// regions), expression-tree depth, and the subscript-shape knobs. The
// classic() envelope reproduces the shapes the original in-test generator
// emitted; widened() adds nested indirect gathers, non-unit-stride reads,
// non-zero affine offsets, and affine output stores — the Autovesk-style
// irregular shapes the hand-written corpus never covered.
//
// Every loop generateLoop() returns must compile to a vectorizable plan:
// the generator staying inside the documented legality envelope is itself
// an invariant the differential tests assert.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_GEN_GEN_H
#define FLEXVEC_GEN_GEN_H

#include "ir/IR.h"
#include "ir/Interp.h"
#include "memory/Memory.h"
#include "support/Random.h"

#include <memory>
#include <string>

namespace flexvec {
namespace gen {

/// The distribution the generator samples loops from. All probabilities
/// are in [0, 1]; masks and table sizes must be powers of two (the
/// generator keeps wild subscripts in bounds by masking).
struct Envelope {
  // --- Pattern mix ---
  double UpdateProb = 0.6;   ///< Conditional-update (argmin) region.
  double ExitProb = 0.4;     ///< Top-level early-exit guard.
  double ConflictProb = 0.5; ///< Indexed read-modify-write table block.
  double MaskedIfProb = 0.5; ///< Plain masked if over the temporaries.
  double ElseProb = 0.4;     ///< Else region on the masked if.

  // --- Expression shape ---
  int MaxDepth = 2;             ///< Expression-tree depth bound.
  unsigned MaxRoArrays = 3;     ///< 1..MaxRoArrays read-only input arrays.
  double IndirectLoadProb = 0.3;///< a[(expr & IndexMask)] gathers.
  double NestedIndexProb = 0;   ///< Gather whose index is itself a gather.
  double StrideLoadProb = 0;    ///< a[((i * s) + c) & IndexMask], s in 2..4.
  double AffineOffsetProb = 0;  ///< a[(i + c)], c in 1..MaxAffineOffset.
  int MaxAffineOffset = 4;
  double AffineStoreProb = 0;   ///< Dedicated out[] array with out[i] = e.

  // --- Bounds shared with input generation ---
  int64_t IndexMask = 255; ///< Wild subscripts are masked to [0, IndexMask].
  int64_t TableSize = 64;  ///< Conflict-table entries (idx values < this).

  /// The original FuzzDifferentialTest envelope: affine and masked-indirect
  /// reads only, unit stride, no affine store.
  static Envelope classic();

  /// classic() plus the irregular-shape knobs: nested gathers, non-unit
  /// strides, affine offsets, and affine output stores.
  static Envelope widened();
};

/// One generated loop plus the structural facts the generator chose.
struct GeneratedLoop {
  std::unique_ptr<ir::LoopFunction> F;
  uint64_t Seed = 0;
  int NumRoArrays = 0;
  bool HasUpdate = false;
  bool HasExit = false;
  bool HasMasked = false;
  bool HasConflict = false;
  bool HasOut = false; ///< Affine out[i] store present.
};

/// Generates one loop from \p Seed under \p E. Deterministic: the same
/// (Seed, Envelope) always yields a byte-identical loop.
GeneratedLoop generateLoop(uint64_t Seed, const Envelope &E);

/// Sizing for convention-based input generation.
struct InputPlan {
  int64_t Trip = 64;
  int64_t IndexBound = 64;  ///< Values stored in idx-convention arrays.
  int64_t IndexMask = 255;  ///< Largest masked subscript any read can form.
  int64_t ArraySlack = 8;   ///< Extra elements past the trip count (affine
                            ///< offsets read up to Trip - 1 + offset).
};

/// Builds a memory image and bindings for \p F by naming conventions, the
/// shared contract between the generator, the checked-in corpus, and
/// shrunk reproducers:
///  * arrays named "iarr" or with an "idx"/"dst" prefix hold indices in
///    [0, IndexBound); every other read-only array holds values in
///    [-100, 100], writable arrays in [-50, 50];
///  * all arrays are sized max(Trip + ArraySlack, IndexMask + 1,
///    IndexBound, 512) so affine, strided, and masked subscripts all land
///    in bounds;
///  * the trip scalar gets Trip, "best" 1 << 20, "sentinel" 7, everything
///    else a small random value.
void buildConventionInputs(const ir::LoopFunction &F, Rng &R,
                           const InputPlan &P, mem::Memory &M,
                           ir::Bindings &B);

} // namespace gen
} // namespace flexvec

#endif // FLEXVEC_GEN_GEN_H
