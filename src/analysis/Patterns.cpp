//===- analysis/Patterns.cpp ----------------------------------------------===//

#include "analysis/Patterns.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace flexvec;
using namespace flexvec::analysis;
using namespace flexvec::ir;
using namespace flexvec::pdg;

namespace {

/// True if \p E reads scalar \p ScalarId anywhere.
bool exprReadsScalar(const Expr *E, int ScalarId) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::IndexRef:
    return false;
  case ExprKind::ScalarRef:
    return E->ScalarId == ScalarId;
  case ExprKind::ArrayRef:
    return exprReadsScalar(E->Index, ScalarId);
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    return exprReadsScalar(E->Lhs, ScalarId) ||
           exprReadsScalar(E->Rhs, ScalarId);
  }
  unreachable("unknown expr kind");
}

/// True if \p E contains any array read.
bool exprHasArrayRead(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::IndexRef:
  case ExprKind::ScalarRef:
    return false;
  case ExprKind::ArrayRef:
    return true;
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    return exprHasArrayRead(E->Lhs) || exprHasArrayRead(E->Rhs);
  }
  unreachable("unknown expr kind");
}

/// True if statement node \p N contains an array read.
bool stmtHasArrayRead(const Stmt *S) {
  switch (S->Kind) {
  case StmtKind::AssignScalar:
    return exprHasArrayRead(S->Value);
  case StmtKind::StoreArray:
    return exprHasArrayRead(S->Index) || exprHasArrayRead(S->Value);
  case StmtKind::If:
    return exprHasArrayRead(S->Cond);
  case StmtKind::Break:
    return false;
  }
  unreachable("unknown stmt kind");
}

/// Maps a node to its top-level ancestor's index in F.body(); -1 on error.
int topLevelIndexOf(const Pdg &P, int Node) {
  int N = Node;
  while (P.controlParent(N) != Pdg::HeaderNode)
    N = P.controlParent(N);
  const auto &Body = P.function().body();
  for (size_t I = 0; I < Body.size(); ++I)
    if (Body[I]->Id == N)
      return static_cast<int>(I);
  return -1;
}

/// Recognizes reduction idioms on the def at node \p D. Uses[] is the set
/// of nodes reading the scalar.
bool matchReduction(const Pdg &P, int D, const std::vector<int> &UseNodes,
                    ReductionInfo &Out) {
  const Stmt *Def = P.stmtOf(D);
  int S = Def->ScalarId;

  // Direct form: s = s <op> e (op in {+, min, max}), s read only here.
  if (Def->Value->Kind == ExprKind::Binary) {
    const Expr *V = Def->Value;
    bool LhsIsS =
        V->Lhs->Kind == ExprKind::ScalarRef && V->Lhs->ScalarId == S;
    bool RhsIsS =
        V->Rhs->Kind == ExprKind::ScalarRef && V->Rhs->ScalarId == S;
    const Expr *Other = LhsIsS ? V->Rhs : V->Lhs;
    if ((LhsIsS || RhsIsS) && !exprReadsScalar(Other, S)) {
      ReductionKind Kind;
      switch (V->Op) {
      case BinOp::Add:
        Kind = ReductionKind::Add;
        break;
      case BinOp::Min:
        Kind = ReductionKind::Min;
        break;
      case BinOp::Max:
        Kind = ReductionKind::Max;
        break;
      default:
        return false;
      }
      // The accumulator must not be read anywhere else in the loop.
      for (int U : UseNodes)
        if (U != D)
          return false;
      // A direct reduction must execute unconditionally (a guarded add is
      // still fine for if-conversion but complicates last-value extraction;
      // masked reduce handles it, so allow guards too).
      Out = ReductionInfo{D, S, Kind, 0};
      return true;
    }
  }

  // Guarded form:  if (e < s) s = e;   (and the 3 comparison variants).
  int G = P.controlParent(D);
  if (G == Pdg::HeaderNode)
    return false;
  const Stmt *Guard = P.stmtOf(G);
  if (Guard->Then.size() != 1 || !Guard->Else.empty() ||
      Guard->Then[0]->Id != Def->Id)
    return false;
  if (Guard->Cond->Kind != ExprKind::Compare)
    return false;
  const Expr *C = Guard->Cond;
  bool LhsIsS = C->Lhs->Kind == ExprKind::ScalarRef && C->Lhs->ScalarId == S;
  bool RhsIsS = C->Rhs->Kind == ExprKind::ScalarRef && C->Rhs->ScalarId == S;
  if (!LhsIsS && !RhsIsS)
    return false;
  // The updated value must not itself read s.
  if (exprReadsScalar(Def->Value, S))
    return false;
  // s must be read only by the guard condition.
  for (int U : UseNodes)
    if (U != G)
      return false;
  // Direction: (e < s) then s = e  → min;  (e > s) → max.
  CmpKind K = C->Cmp;
  if (RhsIsS) {
    // e <K> s forms.
    if (K == CmpKind::LT || K == CmpKind::LE)
      Out = ReductionInfo{D, S, ReductionKind::Min, G};
    else if (K == CmpKind::GT || K == CmpKind::GE)
      Out = ReductionInfo{D, S, ReductionKind::Max, G};
    else
      return false;
  } else {
    // s <K> e forms.
    if (K == CmpKind::GT || K == CmpKind::GE)
      Out = ReductionInfo{D, S, ReductionKind::Min, G};
    else if (K == CmpKind::LT || K == CmpKind::LE)
      Out = ReductionInfo{D, S, ReductionKind::Max, G};
    else
      return false;
  }
  return true;
}

} // namespace

void VectorizationPlan::seal(int NumStmts) {
  SpecLoadBits.assign(static_cast<size_t>(NumStmts) / 64 + 1, 0);
  for (int N : SpeculativeLoadNodes)
    if (N >= 0 && N <= NumStmts)
      SpecLoadBits[static_cast<size_t>(N) / 64] |=
          static_cast<uint64_t>(1) << (N % 64);
}

std::string VectorizationPlan::describe(const LoopFunction &F) const {
  std::string Out = "plan for " + F.name() + ": ";
  if (!Vectorizable)
    return Out + "not vectorizable (" + Reason + ")";
  Out += needsFlexVec() ? "FlexVec" : "traditional";
  for (const auto &R : Reductions)
    Out += "; reduction of " + F.scalar(R.ScalarId).Name;
  for (const auto &E : EarlyExits)
    Out += "; early-exit guard S" + std::to_string(E.GuardNode);
  for (const auto &V : CondUpdateVpls) {
    Out += "; cond-update VPL over body[" + std::to_string(V.FirstTop) +
           ".." + std::to_string(V.LastTop) + "] updating";
    for (const auto &U : V.Updates)
      Out += " " + F.scalar(U.ScalarId).Name;
  }
  for (const auto &V : MemConflictVpls)
    Out += "; mem-conflict VPL over body[" + std::to_string(V.FirstTop) +
           ".." + std::to_string(V.LastTop) + "] on " +
           F.array(V.ArrayId).Name;
  if (!SpeculativeLoadNodes.empty()) {
    Out += "; speculative loads in";
    for (int N : SpeculativeLoadNodes)
      Out += " S" + std::to_string(N);
  }
  return Out;
}

VectorizationPlan analysis::analyzeLoop(const Pdg &P) {
  const LoopFunction &F = P.function();
  VectorizationPlan Plan;

  // Per-scalar use-node lists.
  std::vector<std::vector<int>> UseNodesOf(F.scalars().size());
  for (int N = 1; N < P.numNodes(); ++N)
    for (int S : P.scalarUses(N))
      UseNodesOf[S].push_back(N);

  // 1. Idiom recognition (Section 3, "idiom recognition is used to identify
  //    SCCs that are recurrences supported by the vector instruction set").
  std::vector<bool> IsReductionDef(P.numNodes(), false);
  for (int N = 1; N < P.numNodes(); ++N) {
    const Stmt *S = P.stmtOf(N);
    if (S->Kind != StmtKind::AssignScalar)
      continue;
    ReductionInfo R;
    if (matchReduction(P, N, UseNodesOf[S->ScalarId], R)) {
      Plan.Reductions.push_back(R);
      IsReductionDef[N] = true;
    }
  }

  // 2. Collect relaxable / eliminable edges.
  std::vector<size_t> Removed;
  struct CondUpdateCandidate {
    int DefNode;
    int ScalarId;
    int FirstUsePos; // Lexically earliest carried-use position.
  };
  std::vector<CondUpdateCandidate> CondCands;
  struct ConflictCandidate {
    int StoreNode;
    int ArrayId;
    std::vector<const Expr *> LoadExprs;
    int MinPos, MaxPos;
  };
  std::vector<ConflictCandidate> ConflictCands;

  const std::vector<DepEdge> &Edges = P.edges();
  for (size_t I = 0; I < Edges.size(); ++I) {
    const DepEdge &E = Edges[I];
    switch (E.Kind) {
    case DepKind::ScalarAnti:
      // Eliminated by vector read-before-write plus register renaming
      // (scalar expansion); FlexVec makes definitions cover uses
      // dynamically.
      Removed.push_back(I);
      break;
    case DepKind::ControlCarried: {
      Removed.push_back(I);
      // Locate the break controlled by this guard.
      int Guard = E.From;
      for (int N = 1; N < P.numNodes(); ++N) {
        const Stmt *S = P.stmtOf(N);
        if (S->Kind == StmtKind::Break && P.controlParent(N) == Guard) {
          bool Dup = false;
          for (const auto &EE : Plan.EarlyExits)
            Dup |= EE.BreakNode == N;
          if (!Dup)
            Plan.EarlyExits.push_back(
                EarlyExitInfo{Guard, N, P.inElseRegion(N)});
        }
      }
      break;
    }
    case DepKind::ScalarFlowCarried: {
      int D = E.From;
      if (IsReductionDef[D]) {
        Removed.push_back(I); // Idiom-handled recurrence.
        break;
      }
      bool Conditional = P.controlParent(D) != Pdg::HeaderNode;
      if (!Conditional)
        break; // Unconditional recurrence: leave the edge; if it forms a
               // cycle the loop is rejected below.
      Removed.push_back(I);
      // Record / extend the candidate for this def.
      int UsePos = P.lexicalPos(E.To);
      bool Found = false;
      for (auto &C : CondCands) {
        if (C.DefNode == D) {
          C.FirstUsePos = std::min(C.FirstUsePos, UsePos);
          Found = true;
        }
      }
      if (!Found)
        CondCands.push_back(CondUpdateCandidate{D, E.ScalarId, UsePos});
      break;
    }
    case DepKind::MemoryMaybeCarried: {
      Removed.push_back(I);
      int Pos1 = P.lexicalPos(E.From);
      int Pos2 = P.lexicalPos(E.To);
      bool Found = false;
      for (auto &C : ConflictCands) {
        if (C.StoreNode == E.From) {
          C.LoadExprs.push_back(E.LoadExpr);
          C.MinPos = std::min(C.MinPos, std::min(Pos1, Pos2));
          C.MaxPos = std::max(C.MaxPos, std::max(Pos1, Pos2));
          Found = true;
        }
      }
      if (!Found)
        ConflictCands.push_back(ConflictCandidate{
            E.From, E.ArrayId, {E.LoadExpr}, std::min(Pos1, Pos2),
            std::max(Pos1, Pos2)});
      break;
    }
    case DepKind::MemoryFlowCarried:
      // Provable short-distance recurrence through memory: traditional
      // vectorization is illegal and FlexVec does not target it. Distances
      // of a full vector or more are safe for VL-wide execution.
      if (E.Distance < 16)
        break; // Edge stays; cycle check below rejects if cyclic. Even
               // acyclic, this forces scalar execution — handled by caller
               // via plan flag below.
      Removed.push_back(I);
      break;
    case DepKind::Control:
    case DepKind::ScalarFlow:
      break;
    }
  }

  // A provable short-distance memory recurrence rules out vector execution
  // outright (lanes within one vector instruction would violate it).
  for (const DepEdge &E : Edges) {
    if (E.Kind == DepKind::MemoryFlowCarried && E.Distance < 16) {
      Plan.Vectorizable = false;
      Plan.Reason = "provable cross-iteration memory dependence of distance " +
                    std::to_string(E.Distance) + " on array " +
                    F.array(E.ArrayId).Name;
      return Plan;
    }
  }

  // 3. Residual cycles after relaxation? (Including self loops, e.g. an
  //    unconditional s = a[s] recurrence.)
  auto Sccs = P.stronglyConnectedComponents(Removed);
  for (const auto &Scc : Sccs) {
    bool Cyclic = Scc.size() > 1;
    if (!Cyclic) {
      std::vector<bool> IsRemoved(Edges.size(), false);
      for (size_t I : Removed)
        IsRemoved[I] = true;
      for (size_t I = 0; I < Edges.size(); ++I)
        if (!IsRemoved[I] && Edges[I].From == Scc[0] &&
            Edges[I].To == Scc[0])
          Cyclic = true;
    }
    if (!Cyclic)
      continue;
    Plan.Vectorizable = false;
    Plan.Reason = "irreducible dependence cycle over nodes";
    for (int N : Scc)
      Plan.Reason += " S" + std::to_string(N);
    return Plan;
  }

  Plan.Vectorizable = true;

  // 4. Conditional-update VPLs: compute top-level intervals and merge
  //    overlaps (multiple updates under one guard share a VPL).
  struct Interval {
    int FirstTop, LastTop;
    std::vector<CondUpdateScalar> Updates;
  };
  std::vector<Interval> Intervals;
  for (const auto &C : CondCands) {
    // The VPL covers from the earliest stale use to the update itself.
    int FirstNode = -1;
    for (int N = 1; N < P.numNodes(); ++N)
      if (P.lexicalPos(N) == C.FirstUsePos)
        FirstNode = N;
    assert(FirstNode > 0 && "carried-use position not found");
    int FirstTop = topLevelIndexOf(P, FirstNode);
    int LastTop = topLevelIndexOf(P, C.DefNode);
    if (FirstTop > LastTop)
      std::swap(FirstTop, LastTop);

    CondUpdateScalar U;
    U.UpdateNode = C.DefNode;
    U.ScalarId = C.ScalarId;
    U.GuardNode = P.controlParent(C.DefNode);
    U.UsedInLoop = !UseNodesOf[C.ScalarId].empty();
    U.UsedAfterUpdate = false;
    for (int UN : UseNodesOf[C.ScalarId])
      if (P.lexicalPos(UN) > P.lexicalPos(C.DefNode))
        U.UsedAfterUpdate = true;

    bool Merged = false;
    for (auto &Iv : Intervals) {
      if (FirstTop <= Iv.LastTop && Iv.FirstTop <= LastTop) {
        Iv.FirstTop = std::min(Iv.FirstTop, FirstTop);
        Iv.LastTop = std::max(Iv.LastTop, LastTop);
        Iv.Updates.push_back(U);
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Intervals.push_back(Interval{FirstTop, LastTop, {U}});
  }
  for (auto &Iv : Intervals) {
    CondUpdateVpl V;
    V.FirstTop = Iv.FirstTop;
    V.LastTop = Iv.LastTop;
    V.Updates = std::move(Iv.Updates);
    // Live-out payload updates under the same guard (the paper's best_pos
    // in Figure 6) have no in-loop uses and thus no carried arcs, but they
    // must commit with VPSLCTLAST alongside the value they accompany.
    for (int N = 1; N < P.numNodes(); ++N) {
      const Stmt *S = P.stmtOf(N);
      if (S->Kind != StmtKind::AssignScalar || IsReductionDef[N])
        continue;
      if (!F.scalar(S->ScalarId).IsLiveOut)
        continue;
      bool SameGuard = false;
      for (const auto &U : V.Updates)
        SameGuard |= P.controlParent(N) == U.GuardNode;
      bool Already = false;
      for (const auto &U : V.Updates)
        Already |= U.UpdateNode == N;
      if (!SameGuard || Already)
        continue;
      CondUpdateScalar U;
      U.UpdateNode = N;
      U.ScalarId = S->ScalarId;
      U.GuardNode = P.controlParent(N);
      U.UsedInLoop = !UseNodesOf[S->ScalarId].empty();
      U.UsedAfterUpdate = false;
      for (int UN : UseNodesOf[S->ScalarId])
        if (P.lexicalPos(UN) > P.lexicalPos(N))
          U.UsedAfterUpdate = true;
      V.Updates.push_back(U);
    }
    // Deterministic order: by update node id.
    std::sort(V.Updates.begin(), V.Updates.end(),
              [](const CondUpdateScalar &A, const CondUpdateScalar &B) {
                return A.UpdateNode < B.UpdateNode;
              });
    Plan.CondUpdateVpls.push_back(std::move(V));
  }
  std::sort(Plan.CondUpdateVpls.begin(), Plan.CondUpdateVpls.end(),
            [](const CondUpdateVpl &A, const CondUpdateVpl &B) {
              return A.FirstTop < B.FirstTop;
            });

  // 5. Memory-conflict VPLs.
  for (const auto &C : ConflictCands) {
    MemConflictVpl V;
    V.ArrayId = C.ArrayId;
    V.StoreIndex = P.stmtOf(C.StoreNode)->Index;
    for (const Expr *L : C.LoadExprs)
      V.LoadIndices.push_back(L->Index);
    // Region closure over top-level statements.
    int MinTop = -1, MaxTop = -1;
    for (int N = 1; N < P.numNodes(); ++N) {
      if (P.lexicalPos(N) < C.MinPos || P.lexicalPos(N) > C.MaxPos)
        continue;
      int Top = topLevelIndexOf(P, N);
      if (MinTop < 0 || Top < MinTop)
        MinTop = Top;
      if (MaxTop < 0 || Top > MaxTop)
        MaxTop = Top;
    }
    V.FirstTop = MinTop;
    V.LastTop = MaxTop;
    Plan.MemConflictVpls.push_back(std::move(V));
  }
  // Overlapping conflict VPLs (multiple stores into one region) are out of
  // scope, as in the paper's examples.
  std::sort(Plan.MemConflictVpls.begin(), Plan.MemConflictVpls.end(),
            [](const MemConflictVpl &A, const MemConflictVpl &B) {
              return A.FirstTop < B.FirstTop;
            });
  for (size_t I = 1; I < Plan.MemConflictVpls.size(); ++I) {
    if (Plan.MemConflictVpls[I].FirstTop <=
        Plan.MemConflictVpls[I - 1].LastTop) {
      Plan.Vectorizable = false;
      Plan.Reason = "overlapping memory-conflict regions";
      return Plan;
    }
  }
  // Conflict VPLs overlapping cond-update VPLs: merge is unsupported.
  for (const auto &MV : Plan.MemConflictVpls)
    for (const auto &CV : Plan.CondUpdateVpls)
      if (MV.FirstTop <= CV.LastTop && CV.FirstTop <= MV.LastTop) {
        Plan.Vectorizable = false;
        Plan.Reason = "conditional-update and memory-conflict regions overlap";
        return Plan;
      }

  // 6. Speculative load tagging.
  auto markSpeculative = [&Plan](int Node) {
    if (!Plan.isSpeculative(Node))
      Plan.SpeculativeLoadNodes.push_back(Node);
  };
  for (const auto &EE : Plan.EarlyExits) {
    // Everything at or before the exit guard executes before the exit
    // condition of later lanes is known (Section 4.1).
    for (int N = 1; N < P.numNodes(); ++N)
      if (P.lexicalPos(N) <= P.lexicalPos(EE.GuardNode) &&
          stmtHasArrayRead(P.stmtOf(N)))
        markSpeculative(N);
  }
  for (const auto &V : Plan.CondUpdateVpls) {
    // Loads under a guard whose condition reads a relaxed scalar read stale
    // control state and must be first-faulting (Section 4.2).
    for (int N = 1; N < P.numNodes(); ++N) {
      if (!stmtHasArrayRead(P.stmtOf(N)))
        continue;
      int Top = topLevelIndexOf(P, N);
      if (Top < V.FirstTop || Top > V.LastTop)
        continue;
      // Walk ancestor guards.
      for (int G = P.controlParent(N); G != Pdg::HeaderNode;
           G = P.controlParent(G)) {
        const Stmt *Guard = P.stmtOf(G);
        bool ReadsRelaxed = false;
        for (const auto &U : V.Updates)
          ReadsRelaxed |= exprReadsScalar(Guard->Cond, U.ScalarId);
        if (ReadsRelaxed) {
          markSpeculative(N);
          break;
        }
      }
    }
  }
  std::sort(Plan.SpeculativeLoadNodes.begin(),
            Plan.SpeculativeLoadNodes.end());

  return Plan;
}
