//===- analysis/Patterns.h - FlexVec pattern detection ----------*- C++ -*-===//
//
// The FlexVec analysis module (paper Section 4): takes the PDG, recognizes
// reduction idioms, relaxes the infrequent backward dependence arcs that
// form the three FlexVec patterns, and produces a VectorizationPlan — the
// statement tags the if-conversion code generator consumes.
//
// Patterns (Sections 4.1-4.3):
//  * Early loop termination  — backward control arc from the immediate
//    dominator of a break to the loop header.
//  * Conditional scalar update — backward (loop-carried) scalar flow arcs
//    from a conditionally executed definition.
//  * Runtime memory dependencies — "maybe" carried store→load arcs through
//    non-affine subscripts, checked at run time with VPCONFLICTM.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ANALYSIS_PATTERNS_H
#define FLEXVEC_ANALYSIS_PATTERNS_H

#include "pdg/Pdg.h"

#include <string>
#include <vector>

namespace flexvec {
namespace analysis {

/// Recognized reduction idioms (handled by classic vectorization, no VPL).
enum class ReductionKind : uint8_t { Add, Min, Max };

struct ReductionInfo {
  int Node = 0;        ///< The reducing AssignScalar.
  int ScalarId = -1;   ///< The accumulator.
  ReductionKind Kind = ReductionKind::Add;
  int GuardNode = 0;   ///< For guarded min/max form; 0 if direct.
};

/// Early loop termination (Section 4.1).
struct EarlyExitInfo {
  int GuardNode = 0;  ///< Immediate dominator (controlling if) of the break.
  int BreakNode = 0;
  bool BreakInElse = false; ///< Break sits in the guard's false-region.
};

/// One conditionally updated scalar inside a conditional-update VPL.
struct CondUpdateScalar {
  int UpdateNode = 0; ///< The conditional AssignScalar.
  int ScalarId = -1;
  int GuardNode = 0;  ///< Innermost controlling if of the update.
  /// True if the scalar is read by statements lexically after the update
  /// (requires the selective k_rem broadcast rather than VPSLCTLAST alone).
  bool UsedAfterUpdate = false;
  /// True if the scalar is read anywhere in the loop (a pure live-out
  /// "last value" needs no propagation to later lanes at all).
  bool UsedInLoop = false;
};

/// A conditional-update vector partitioning loop (Section 4.2). The VPL
/// encloses the contiguous range [FirstTop, LastTop] of top-level body
/// statements (the smallest region closure covering the relaxed SCC);
/// statements in the range are re-executed when an update fires.
struct CondUpdateVpl {
  int FirstTop = 0; ///< Index into LoopFunction::body().
  int LastTop = 0;  ///< Inclusive.
  std::vector<CondUpdateScalar> Updates;
};

/// A runtime memory-dependence VPL (Section 4.3). Same region convention
/// as CondUpdateVpl.
struct MemConflictVpl {
  int FirstTop = 0;
  int LastTop = 0;
  int ArrayId = -1;
  /// Index expressions for the conflicting store and loads: the operands of
  /// the VPCONFLICTM runtime check (duplicated subtrees in the paper).
  const ir::Expr *StoreIndex = nullptr;
  std::vector<const ir::Expr *> LoadIndices;
};

/// The complete plan handed to the vectorizer.
struct VectorizationPlan {
  bool Vectorizable = false;
  std::string Reason; ///< Diagnostic when not vectorizable.

  std::vector<ReductionInfo> Reductions;
  std::vector<EarlyExitInfo> EarlyExits;
  std::vector<CondUpdateVpl> CondUpdateVpls;
  std::vector<MemConflictVpl> MemConflictVpls;

  /// Statement nodes whose array loads must use first-faulting variants
  /// (they execute speculatively in the shadow of a relaxed dependence).
  std::vector<int> SpeculativeLoadNodes;

  /// Bitset over statement ids mirroring SpeculativeLoadNodes, built once
  /// by seal() in plan legalization; empty until sealed.
  std::vector<uint64_t> SpecLoadBits;

  /// True if any FlexVec-specific mechanism is required (i.e. a traditional
  /// vectorizer would reject the loop).
  bool needsFlexVec() const {
    return !EarlyExits.empty() || !CondUpdateVpls.empty() ||
           !MemConflictVpls.empty();
  }

  /// Finalizes the plan for emission: builds the speculative-load bitset
  /// (\p NumStmts is the highest statement id, per LoopFunction::numStmts).
  void seal(int NumStmts);

  bool isSpeculative(int Node) const {
    if (!SpecLoadBits.empty()) {
      unsigned N = static_cast<unsigned>(Node);
      if (N >= SpecLoadBits.size() * 64)
        return false;
      return (SpecLoadBits[N / 64] >> (N % 64)) & 1;
    }
    // Unsealed plans (hand-built in tests, queries during analysis) fall
    // back to the scan.
    for (int N : SpeculativeLoadNodes)
      if (N == Node)
        return true;
    return false;
  }

  std::string describe(const ir::LoopFunction &F) const;
};

/// Runs the FlexVec analysis over \p P.
VectorizationPlan analyzeLoop(const pdg::Pdg &P);

} // namespace analysis
} // namespace flexvec

#endif // FLEXVEC_ANALYSIS_PATTERNS_H
