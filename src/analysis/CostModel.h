//===- analysis/CostModel.h - Profile-guided selection ----------*- C++ -*-===//
//
// The paper's hotloop selection heuristics (Section 5): vectorize hotloops
// with minimum coverage ≈ 5%, minimum average trip count 16, minimum
// effective vector length 6, and vector memory-to-compute ratio ≤ 2.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_ANALYSIS_COSTMODEL_H
#define FLEXVEC_ANALYSIS_COSTMODEL_H

#include "analysis/Patterns.h"

#include <string>

namespace flexvec {
namespace analysis {

/// Profile summary for one candidate loop (produced by src/profile).
struct LoopProfile {
  double AvgTripCount = 0;
  /// Average dynamic cross-iteration dependency events per invocation
  /// (conditional updates taken, conflicts detected, early exits).
  double AvgDepEvents = 0;
  /// Effective vector length: avg trip count / avg (dep events + 1).
  double EffectiveVL = 0;
  /// Fraction of whole-application time spent in this loop.
  double Coverage = 0;
};

/// Static shape summary derived from the IR.
struct LoopShape {
  unsigned VectorMemoryOps = 0; ///< Gathers + scatters + vector loads/stores.
  unsigned GatherScatterOps = 0;
  unsigned ComputeOps = 0; ///< Arithmetic/compare operations.

  double memToComputeRatio() const {
    return ComputeOps == 0 ? static_cast<double>(VectorMemoryOps)
                           : static_cast<double>(VectorMemoryOps) /
                                 static_cast<double>(ComputeOps);
  }
};

/// Computes the static shape of \p F (counts vector memory and compute ops
/// the vectorized loop will need).
LoopShape computeLoopShape(const ir::LoopFunction &F);

/// Selection thresholds (paper defaults).
struct CostModelParams {
  double MinCoverage = 0.05;
  double MinTripCount = 16;
  double MinEffectiveVL = 6;
  double MaxMemToCompute = 2.0;
};

/// Decision with an explanation.
struct CostDecision {
  bool Vectorize = false;
  std::string Reason;
};

/// Applies the paper's profile-guided heuristics.
CostDecision shouldVectorize(const VectorizationPlan &Plan,
                             const LoopShape &Shape,
                             const LoopProfile &Profile,
                             const CostModelParams &Params = CostModelParams());

} // namespace analysis
} // namespace flexvec

#endif // FLEXVEC_ANALYSIS_COSTMODEL_H
