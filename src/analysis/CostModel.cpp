//===- analysis/CostModel.cpp ---------------------------------------------===//

#include "analysis/CostModel.h"

#include "support/Error.h"

using namespace flexvec;
using namespace flexvec::analysis;
using namespace flexvec::ir;

namespace {

void countExpr(const Expr *E, LoopShape &Shape) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::ScalarRef:
  case ExprKind::IndexRef:
    return;
  case ExprKind::ArrayRef:
    ++Shape.VectorMemoryOps;
    if (!pdg::matchAffine(E->Index))
      ++Shape.GatherScatterOps;
    countExpr(E->Index, Shape);
    return;
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    ++Shape.ComputeOps;
    countExpr(E->Lhs, Shape);
    countExpr(E->Rhs, Shape);
    return;
  }
  unreachable("unknown expr kind");
}

} // namespace

LoopShape analysis::computeLoopShape(const LoopFunction &F) {
  LoopShape Shape;
  F.forEachStmt([&Shape](const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::AssignScalar:
      countExpr(S->Value, Shape);
      break;
    case StmtKind::StoreArray:
      ++Shape.VectorMemoryOps;
      if (!pdg::matchAffine(S->Index))
        ++Shape.GatherScatterOps;
      countExpr(S->Index, Shape);
      countExpr(S->Value, Shape);
      break;
    case StmtKind::If:
      countExpr(S->Cond, Shape);
      break;
    case StmtKind::Break:
      break;
    }
  });
  return Shape;
}

CostDecision analysis::shouldVectorize(const VectorizationPlan &Plan,
                                       const LoopShape &Shape,
                                       const LoopProfile &Profile,
                                       const CostModelParams &Params) {
  CostDecision D;
  if (!Plan.Vectorizable) {
    D.Reason = "not legal: " + Plan.Reason;
    return D;
  }
  if (Profile.Coverage < Params.MinCoverage) {
    D.Reason = "coverage below threshold";
    return D;
  }
  if (Profile.AvgTripCount < Params.MinTripCount) {
    D.Reason = "average trip count below 16";
    return D;
  }
  if (Plan.needsFlexVec() && Profile.EffectiveVL < Params.MinEffectiveVL) {
    D.Reason = "effective vector length below 6";
    return D;
  }
  if (Shape.memToComputeRatio() > Params.MaxMemToCompute) {
    D.Reason = "vector memory to compute ratio above 2";
    return D;
  }
  D.Vectorize = true;
  D.Reason = "profitable";
  return D;
}
