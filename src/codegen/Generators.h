//===- codegen/Generators.h - Loop code generators --------------*- C++ -*-===//
//
// The four vector code generators compared in the evaluation:
//
//  * generateTraditional — classic AVX-512-style vectorization; refuses any
//    loop needing FlexVec mechanisms (these are exactly the paper's
//    candidate loops, for which the baseline compiler emits scalar code).
//  * generateSpeculative — the PACT'13-style all-or-nothing baseline
//    (Section 2): check the dependence condition for the whole vector up
//    front; if any lane may fire, execute the chunk in scalar.
//  * generateFlexVec — partial vector code with VPLs, KFTM masks,
//    VPSLCTLAST propagation, VPCONFLICTM checks, and first-faulting loads
//    with a scalar fallback (Sections 3-4).
//  * generateFlexVecRtm — the RTM alternative (Sections 3.3.2, 4.1):
//    strip-mined tiles inside rollback-only transactions using plain
//    loads; aborts re-execute the tile in scalar.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CODEGEN_GENERATORS_H
#define FLEXVEC_CODEGEN_GENERATORS_H

#include "codegen/Compiled.h"

#include <optional>

namespace flexvec {
namespace codegen {

/// Default RTM strip-mining tile, in scalar iterations (the paper found
/// 128-256 within 1-2% of first-faulting codegen).
inline constexpr unsigned DefaultRtmTile = 192;

std::optional<CompiledLoop>
generateTraditional(const ir::LoopFunction &F,
                    const analysis::VectorizationPlan &Plan);

std::optional<CompiledLoop>
generateSpeculative(const ir::LoopFunction &F,
                    const analysis::VectorizationPlan &Plan);

/// \p WhyNot, when non-null, receives a diagnostic when the generator
/// declines the loop (instead of the historical process-fatal error).
std::optional<CompiledLoop>
generateFlexVec(const ir::LoopFunction &F,
                const analysis::VectorizationPlan &Plan,
                std::string *WhyNot = nullptr);

std::optional<CompiledLoop>
generateFlexVecRtm(const ir::LoopFunction &F,
                   const analysis::VectorizationPlan &Plan,
                   unsigned TileIterations = DefaultRtmTile);

} // namespace codegen
} // namespace flexvec

#endif // FLEXVEC_CODEGEN_GENERATORS_H
