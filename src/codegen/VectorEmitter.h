//===- codegen/VectorEmitter.h - Shared vector code emission ---*- C++ -*-===//
//
// The if-conversion machinery of Figure 4, factored so the traditional,
// speculative, FlexVec, and FlexVec-RTM generators share one emitter:
//
//  * lane configuration (all arrays in a loop share one element width;
//    VL = 16 for 32-bit lanes, 8 for 64-bit lanes),
//  * masked expression evaluation (loads under the current predicate,
//    conditions evaluated directly into mask registers),
//  * scalar classification: invariant (pre-broadcast), reduction (vector
//    accumulator + final reduce), committed (conditionally updated values
//    propagated with VPSLCTLAST and re-synchronized to scalar registers at
//    chunk boundaries), temporary (scalar-expanded, per-lane),
//  * the two Vector Partitioning Loop forms (conditional update with
//    KFTM.INC, memory conflict with VPCONFLICTM + KFTM.EXC),
//  * early-exit guard lowering, and
//  * first-faulting load sequences with bail-out to a scalar fallback.
//
// Mask register roles follow codegen/Compiled.h.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CODEGEN_VECTOREMITTER_H
#define FLEXVEC_CODEGEN_VECTOREMITTER_H

#include "codegen/Compiled.h"

#include <functional>
#include <optional>
#include <tuple>
#include <vector>

namespace flexvec {
namespace codegen {

/// How each scalar variable is realized in vector code.
enum class ScalarClass : uint8_t {
  Invariant, ///< Never assigned: broadcast once in the preheader.
  Reduction, ///< Idiom-recognized accumulator (vector partials + reduce).
  Committed, ///< Conditionally updated / early-exit committed: VPSLCTLAST
             ///< propagation, scalar-register image at chunk boundaries.
  Temp,      ///< Scalar-expanded per-lane temporary (defined before use
             ///< within each iteration).
};

class VectorEmitter {
public:
  struct Options {
    /// Use VMOVFF/VPGATHERFF for speculative loads; when false (RTM mode)
    /// plain loads are used and faults surface as transaction aborts.
    bool UseFirstFaulting = true;
    /// Label of the scalar fallback entry used when a first-faulting check
    /// detects a clipped mask. Only consulted when UseFirstFaulting.
    isa::ProgramBuilder::Label FaultBail = 0;
    bool HasFaultBail = false;
    /// PACT'13-style speculative mode: emit the body as plain if-converted
    /// straight-line vector code with no VPLs; the caller guarantees (via
    /// up-front checks) that no relaxed dependence fires in this chunk.
    bool StraightlineOnly = false;
    /// Vector register width this loop is compiled for; VL derives from it
    /// and the loop's lane width. Defaults to the 512-bit baseline.
    unsigned VectorBytes = isa::VectorBytes;
    /// SVE-style predicated loop control: the chunk head computes k_loop
    /// with KWHILELT and the prolog skips the bound broadcast + compare.
    bool Predicated = false;
  };

  VectorEmitter(isa::ProgramBuilder &B, const ir::LoopFunction &F,
                const analysis::VectorizationPlan &Plan, Options Opts);

  /// Lanes per vector for this loop.
  unsigned vl() const { return VL; }
  isa::ElemType intTy() const { return IntTy; }
  isa::ElemType floatTy() const { return FloatTy; }

  ScalarClass classOf(int ScalarId) const { return Classes[ScalarId]; }

  /// Scalar register acting as the early-exit flag (set when any lane
  /// breaks).
  isa::Reg breakFlag() const { return isa::Reg::scalar(31); }

  /// Broadcasts invariants, initializes reduction accumulators and the
  /// break flag, zeroes the induction variable.
  void emitPreheader();

  /// Per-chunk setup: v_i, k_loop against \p BoundReg, re-broadcast of
  /// committed scalars from their scalar registers. Under Options::
  /// Predicated the head already computed k_loop, so only v_i and the
  /// re-broadcasts are emitted.
  void emitChunkProlog(isa::Reg BoundReg);

  /// Predicated loop-control head (Options::Predicated):
  ///   k_loop = whilelt(i, Bound); t = ktest k_loop; brZero t, ExitTo
  void emitPredicatedHead(isa::Reg HeadTemp, isa::Reg BoundReg,
                          isa::ProgramBuilder::Label ExitTo);

  /// Emits the whole body for one chunk (top-level statements, VPLs, early
  /// exits) under k_loop.
  void emitBody();

  /// Synchronizes committed scalars back to scalar registers and advances
  /// the induction variable by VL.
  void emitChunkEpilog();

  /// Final reductions into the live-out scalar registers (vector exit path
  /// only; the scalar fallback path maintains scalar registers directly).
  void emitLiveOuts();

  /// Generator notes for CompiledLoop::Notes.
  std::string notes() const;

  /// Speculative-baseline support: sets bits of \p FlagReg when any k_loop
  /// lane satisfies \p Cond (evaluated with current broadcast state).
  void emitSpecCondCheck(const ir::Expr *Cond, isa::Reg FlagReg);

  /// Speculative-baseline support: sets bits of \p FlagReg when any lane of
  /// the conflict region has a cross-lane memory dependence.
  void emitSpecConflictCheck(const analysis::MemConflictVpl &Vpl,
                             isa::Reg FlagReg);

  /// Speculative-baseline support: emits one top-level statement as plain
  /// if-converted code under k_loop (no VPLs).
  void emitStraightlineTopLevel(const ir::Stmt *S);

private:
  struct VecPool;

  // Mask register roles.
  static isa::Reg kLoop() { return isa::Reg::mask(1); }
  static isa::Reg kIf0() { return isa::Reg::mask(2); }
  static isa::Reg kIf1() { return isa::Reg::mask(3); }
  static isa::Reg kTodo() { return isa::Reg::mask(4); }
  static isa::Reg kStop() { return isa::Reg::mask(5); }
  static isa::Reg kSafe() { return isa::Reg::mask(6); }
  static isa::Reg kScratch() { return isa::Reg::mask(7); }
  static isa::Reg kAll() { return isa::Reg::mask(0); }

  isa::Reg scalarVecReg(int ScalarId) const {
    return isa::Reg::vector(2 + static_cast<unsigned>(ScalarId));
  }
  isa::Reg indexVec() const { return isa::Reg::vector(0); }

  /// Maps a declared element type onto this loop's lane types.
  isa::ElemType laneType(isa::ElemType Declared) const;

  isa::Reg acquireVec();
  void releaseVec(isa::Reg R);
  void releaseIfScratch(isa::Reg R);
  void noteConstant(isa::ElemType Ty, int64_t Bits);
  isa::Reg constantReg(isa::ElemType Ty, int64_t Bits) const;

  /// Evaluates a boolean expression into mask \p DestK, constrained by
  /// \p WriteMask (result ⊆ WriteMask).
  void evalCond(const ir::Expr *E, isa::Reg WriteMask, isa::Reg DestK);

  /// Evaluates a value expression; loads are masked by CurMask. The result
  /// may be a canonical register (v_i or a scalar image) — callers that
  /// need the value to survive later writes must copy it.
  isa::Reg evalVec(const ir::Expr *E);

  /// Emits a (possibly first-faulting) vector load for an ArrayRef.
  isa::Reg emitArrayLoad(const ir::Expr *E);

  /// dst = Mask ? Src : dst  (full-register select).
  void emitMaskedMove(isa::Reg Dst, isa::ElemType Ty, isa::Reg Mask,
                      isa::Reg Src);

  struct RegionCtx {
    bool InCondVpl = false;
    const analysis::CondUpdateVpl *Vpl = nullptr;
    /// Per-update persistent value registers (parallel to Vpl->Updates).
    std::vector<isa::Reg> UpdateVals;
    /// True while emitting the commit region of an early-exit guard (the
    /// current predicate is the first-exiting-lane singleton).
    bool InExitRegion = false;
    /// Lanes at or after the first exiting lane (selective broadcast mask).
    isa::Reg ExitRemMask;
    /// Speculative mode: plain if-conversion everywhere.
    bool StraightlineOnly = false;
  };

  void emitStmtList(const std::vector<ir::Stmt *> &Stmts, RegionCtx &Ctx);
  void emitStmt(const ir::Stmt *S, RegionCtx &Ctx);
  void emitAssign(const ir::Stmt *S, RegionCtx &Ctx);
  void emitStore(const ir::Stmt *S, RegionCtx &Ctx);
  void emitIf(const ir::Stmt *S, RegionCtx &Ctx);

  void emitEarlyExitGuard(const ir::Stmt *Guard,
                          const analysis::EarlyExitInfo &EE);
  void emitCondUpdateVpl(const analysis::CondUpdateVpl &Vpl);
  void emitMemConflictVpl(const analysis::MemConflictVpl &Vpl);

  const analysis::ReductionInfo *reductionOf(int ScalarId) const;
  const analysis::EarlyExitInfo *earlyExitAt(const ir::Stmt *S) const;

  bool isSpeculativeLoadSite(int StmtId) const;

  isa::ProgramBuilder &B;
  const ir::LoopFunction &F;
  const analysis::VectorizationPlan &Plan;
  Options Opts;

  unsigned VL = 16;
  isa::ElemType IntTy = isa::ElemType::I32;
  isa::ElemType FloatTy = isa::ElemType::F32;

  std::vector<ScalarClass> Classes;
  std::vector<uint8_t> VecFree; ///< Scratch vector registers v16..v31.
  /// Pre-broadcast constant pool: (lane type, raw bits) -> persistent
  /// register, filled by emitPreheader so loop bodies never re-broadcast
  /// immediates.
  std::vector<std::tuple<isa::ElemType, int64_t, isa::Reg>> ConstPool;
  std::vector<uint8_t> Persistent; ///< Registers exempt from release.

  isa::Reg CurMask;       ///< Active predicate during body emission.
  int IfDepth = 0;        ///< Depth of the k2/k3 if-conversion stack.
  int CurrentStmtId = 0;  ///< For speculative-load lookup.
  std::string NotesText;
};

} // namespace codegen
} // namespace flexvec

#endif // FLEXVEC_CODEGEN_VECTOREMITTER_H
