//===- codegen/Peephole.h - Downstream program optimizations ----*- C++ -*-===//
//
// Section 3.7 of the paper argues that the concise FlexVec intrinsics make
// the generated partial vector code easy for "the down-stream passes of
// the compiler to manipulate and optimize", and Section 4.2 applies a
// mask-aware redundant code elimination to the VPL (Figure 6(f)). This
// module provides those downstream passes over finalized programs:
//
//  * loop-invariant code motion — hoists re-materialized constants and
//    invariant broadcasts out of the vector loop (and out of VPLs),
//  * block-local common subexpression elimination — removes the duplicate
//    re-computations if-conversion leaves behind,
//  * dead code elimination — drops instructions whose results are never
//    read (conservatively; memory, control, and mask-writing side effects
//    are kept).
//
// All passes preserve program semantics; the ablation benchmark
// (bench/bench_peephole) measures their cycle contribution.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CODEGEN_PEEPHOLE_H
#define FLEXVEC_CODEGEN_PEEPHOLE_H

#include "isa/Program.h"

#include <string>
#include <vector>

namespace flexvec {
namespace codegen {

/// Which passes to run.
struct PeepholeOptions {
  bool HoistLoopInvariants = true;
  bool LocalCse = true;
  bool DeadCodeElimination = true;
  /// Dead-code roots: when true (default), every scalar register is
  /// treated as observable after Halt (live-outs are returned in scalar
  /// registers); vector and mask registers are dead at exit. Tests may
  /// clear this and list precise roots in LiveOutRegs.
  bool AllScalarsLiveOut = true;
  std::vector<isa::Reg> LiveOutRegs;
};

/// What the passes did.
struct PeepholeStats {
  unsigned Hoisted = 0;
  unsigned CseRemoved = 0;
  unsigned DeadRemoved = 0;

  unsigned total() const { return Hoisted + CseRemoved + DeadRemoved; }
  std::string describe() const;
};

/// Runs the enabled passes to a fixed point (bounded) and returns the
/// optimized program. Branch targets are remapped across deletions and
/// insertions.
isa::Program optimizeProgram(const isa::Program &P,
                             const PeepholeOptions &Opts = PeepholeOptions(),
                             PeepholeStats *Stats = nullptr);

} // namespace codegen
} // namespace flexvec

#endif // FLEXVEC_CODEGEN_PEEPHOLE_H
