//===- codegen/Generators.cpp ---------------------------------------------===//

#include "codegen/Generators.h"

#include "codegen/ScalarCodeGen.h"
#include "codegen/VectorEmitter.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace flexvec;
using namespace flexvec::codegen;
using namespace flexvec::ir;
using namespace flexvec::isa;
using flexvec::analysis::VectorizationPlan;

namespace {

Reg tripReg(const LoopFunction &F) {
  return scalarParamReg(F.tripCountScalar());
}

/// Scalars read by \p E.
void scalarReadsOf(const Expr *E, std::vector<int> &Out) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::IndexRef:
    return;
  case ExprKind::ScalarRef:
    Out.push_back(E->ScalarId);
    return;
  case ExprKind::ArrayRef:
    scalarReadsOf(E->Index, Out);
    return;
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    scalarReadsOf(E->Lhs, Out);
    scalarReadsOf(E->Rhs, Out);
    return;
  }
}

void assignedIn(const std::vector<Stmt *> &Stmts, std::vector<bool> &Set) {
  for (const Stmt *S : Stmts) {
    if (S->Kind == StmtKind::AssignScalar)
      Set[S->ScalarId] = true;
    if (S->Kind == StmtKind::If) {
      assignedIn(S->Then, Set);
      assignedIn(S->Else, Set);
    }
  }
}

bool containsStmt(const Stmt *Root, int Id) {
  if (Root->Id == Id)
    return true;
  if (Root->Kind != StmtKind::If)
    return false;
  for (const Stmt *C : Root->Then)
    if (containsStmt(C, Id))
      return true;
  for (const Stmt *C : Root->Else)
    if (containsStmt(C, Id))
      return true;
  return false;
}

bool hasStoreIn(const std::vector<Stmt *> &Stmts) {
  for (const Stmt *S : Stmts) {
    if (S->Kind == StmtKind::StoreArray)
      return true;
    if (S->Kind == StmtKind::If &&
        (hasStoreIn(S->Then) || hasStoreIn(S->Else)))
      return true;
  }
  return false;
}

} // namespace

// --- Traditional ----------------------------------------------------------===//

std::optional<CompiledLoop>
codegen::generateTraditional(const LoopFunction &F,
                             const VectorizationPlan &Plan) {
  if (!Plan.Vectorizable || Plan.needsFlexVec())
    return std::nullopt; // Exactly the loops the baseline cannot vectorize.

  CompiledLoop Out;
  Out.Kind = CodeGenKind::Traditional;
  ProgramBuilder B;
  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = false;
  VectorEmitter Em(B, F, Plan, Opts);

  ProgramBuilder::Label VecLoop = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  Reg T = Reg::scalar(25);

  Em.emitPreheader();
  B.bind(VecLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  Em.emitChunkProlog(tripReg(F));
  Em.emitBody();
  Em.emitChunkEpilog();
  B.jmp(VecLoop);
  B.bind(VecExit);
  Em.emitLiveOuts();
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "traditional masked vectorization; " + Em.notes();
  return Out;
}

// --- FlexVec ---------------------------------------------------------------===//

std::optional<CompiledLoop>
codegen::generateFlexVec(const LoopFunction &F,
                         const VectorizationPlan &Plan,
                         std::string *WhyNot) {
  if (!Plan.Vectorizable) {
    if (WhyNot)
      *WhyNot = "loop is not vectorizable: " + Plan.Reason;
    return std::nullopt;
  }

  bool HasSpec = !Plan.SpeculativeLoadNodes.empty();
  if (HasSpec && !Plan.Reductions.empty()) {
    // Declining is recoverable — the pipeline still has the scalar and
    // RTM variants; a process abort here would take the whole driver down.
    if (WhyNot)
      *WhyNot = "reductions combined with speculative loads are "
                "unsupported (the scalar fallback cannot undo optimistic "
                "accumulation)";
    return std::nullopt;
  }

  CompiledLoop Out;
  Out.Kind = CodeGenKind::FlexVec;
  ProgramBuilder B;
  ProgramBuilder::Label VecLoop = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  ProgramBuilder::Label HaltL = B.createLabel();
  ProgramBuilder::Label ScalarEntry = B.createLabel();

  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = true;
  Opts.HasFaultBail = HasSpec;
  Opts.FaultBail = ScalarEntry;
  VectorEmitter Em(B, F, Plan, Opts);
  Reg T = Reg::scalar(25);

  Em.emitPreheader();
  B.bind(VecLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  Em.emitChunkProlog(tripReg(F));
  Em.emitBody();
  Em.emitChunkEpilog();
  if (!Plan.EarlyExits.empty())
    B.brNonZero(Em.breakFlag(), VecExit).Comment = "a lane broke: stop";
  B.jmp(VecLoop);

  B.bind(VecExit);
  Em.emitLiveOuts();
  B.jmp(HaltL);

  // Scalar fallback: re-executes from the current chunk start with the
  // chunk-entry scalar state (no side effects have committed when a
  // first-faulting check bails).
  B.bind(ScalarEntry);
  emitScalarLoopBody(B, F, tripReg(F), HaltL);

  B.bind(HaltL);
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "FlexVec partial vector code; " + Em.notes() +
              (HasSpec ? "; first-faulting loads with scalar fallback" : "");
  return Out;
}

// --- FlexVec over RTM -------------------------------------------------------===//

std::optional<CompiledLoop>
codegen::generateFlexVecRtm(const LoopFunction &F,
                            const VectorizationPlan &Plan,
                            unsigned TileIterations) {
  if (!Plan.Vectorizable)
    return std::nullopt;

  CompiledLoop Out;
  Out.Kind = CodeGenKind::FlexVecRtm;
  ProgramBuilder B;
  ProgramBuilder::Label Outer = B.createLabel();
  ProgramBuilder::Label InnerLoop = B.createLabel();
  ProgramBuilder::Label InnerDone = B.createLabel();
  ProgramBuilder::Label AbortHandler = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  ProgramBuilder::Label HaltL = B.createLabel();

  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = false; // Faults abort the transaction instead.
  VectorEmitter Em(B, F, Plan, Opts);

  Reg T = Reg::scalar(25);
  // The tile bound must survive the scalar abort handler, whose expression
  // scratch pool owns r25..r31; r0 is reserved for loop bounds.
  Reg TileEnd = Reg::scalar(0);

  Em.emitPreheader();
  B.bind(Outer);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  // tile_end = min(i + TILE, n); computed before XBEGIN so the abort path
  // sees the same bound after register rollback.
  B.binOpImm(Opcode::AddImm, TileEnd, inductionReg(),
             static_cast<int64_t>(TileIterations));
  B.binOp(Opcode::Min, TileEnd, TileEnd, tripReg(F)).Comment =
      "tile_end = min(i + tile, n)";
  B.xbegin(AbortHandler).Comment = "speculative tile begins";

  B.bind(InnerLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), TileEnd);
  B.brZero(T, InnerDone);
  Em.emitChunkProlog(TileEnd);
  Em.emitBody();
  Em.emitChunkEpilog();
  if (!Plan.EarlyExits.empty())
    B.brNonZero(Em.breakFlag(), InnerDone);
  B.jmp(InnerLoop);

  B.bind(InnerDone);
  // The last chunk's `i += VL` can overshoot a tile boundary that is not a
  // multiple of VL; the next tile must resume exactly at tile_end.
  B.mov(inductionReg(), TileEnd).Comment = "i = tile_end";
  B.xend().Comment = "tile commits";
  if (!Plan.EarlyExits.empty())
    B.brNonZero(Em.breakFlag(), VecExit);
  B.jmp(Outer);

  // Abort handler: registers (including i and the scalar images) were
  // rolled back to the XBEGIN point and memory was restored; re-execute the
  // tile in scalar, then resume vector execution.
  B.bind(AbortHandler);
  emitScalarLoopBody(B, F, TileEnd, VecExit);
  B.jmp(Outer);

  B.bind(VecExit);
  Em.emitLiveOuts();
  B.jmp(HaltL);
  B.bind(HaltL);
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "FlexVec over RTM; tile=" + std::to_string(TileIterations) +
              "; " + Em.notes();
  return Out;
}

// --- Speculative (PACT'13-style) baseline ------------------------------------===//

std::optional<CompiledLoop>
codegen::generateSpeculative(const LoopFunction &F,
                             const VectorizationPlan &Plan) {
  if (!Plan.Vectorizable)
    return std::nullopt;
  if (!Plan.needsFlexVec())
    return std::nullopt; // Same as traditional; nothing to speculate on.

  const std::vector<Stmt *> &Body = F.body();

  // Checkpoints: (top-level index, kind).
  struct Check {
    int Top;
    enum { CondUpdate, Conflict, Exit } Kind;
    const analysis::CondUpdateVpl *CU = nullptr;
    const analysis::MemConflictVpl *MC = nullptr;
    const analysis::EarlyExitInfo *EE = nullptr;
    const Expr *GuardCond = nullptr;
    bool Invert = false;
  };
  std::vector<Check> Checks;

  // Reject when the check conditions need values defined at/after their
  // checkpoint, or when stores precede a checkpoint (the scalar chunk
  // would re-execute them non-idempotently).
  auto readsDefinedLater = [&](const Expr *E, int FromTop,
                               const std::vector<int> &Allowed) {
    std::vector<bool> Later(F.scalars().size(), false);
    std::vector<Stmt *> Tail(Body.begin() + FromTop, Body.end());
    assignedIn(Tail, Later);
    std::vector<int> Reads;
    scalarReadsOf(E, Reads);
    for (int S : Reads) {
      bool IsAllowed = false;
      for (int A : Allowed)
        IsAllowed |= A == S;
      if (Later[S] && !IsAllowed)
        return true;
    }
    return false;
  };

  for (const auto &CU : Plan.CondUpdateVpls) {
    // The dependence condition is the outermost guard of the first update.
    const Stmt *TopGuard = nullptr;
    for (int I = CU.FirstTop; I <= CU.LastTop; ++I)
      if (containsStmt(Body[I], CU.Updates[0].UpdateNode))
        TopGuard = Body[I];
    if (!TopGuard || TopGuard->Kind != StmtKind::If)
      return std::nullopt;
    std::vector<int> Allowed;
    for (const auto &U : CU.Updates)
      Allowed.push_back(U.ScalarId);
    if (readsDefinedLater(TopGuard->Cond, CU.FirstTop, Allowed))
      return std::nullopt;
    Check C;
    C.Top = CU.FirstTop;
    C.Kind = Check::CondUpdate;
    C.CU = &CU;
    C.GuardCond = TopGuard->Cond;
    Checks.push_back(C);
  }
  for (const auto &MC : Plan.MemConflictVpls) {
    std::vector<int> Allowed;
    if (readsDefinedLater(MC.StoreIndex, MC.FirstTop, Allowed))
      return std::nullopt;
    for (const Expr *L : MC.LoadIndices)
      if (readsDefinedLater(L, MC.FirstTop, Allowed))
        return std::nullopt;
    Check C;
    C.Top = MC.FirstTop;
    C.Kind = Check::Conflict;
    C.MC = &MC;
    Checks.push_back(C);
  }
  for (const auto &EE : Plan.EarlyExits) {
    if (EE.BreakInElse)
      return std::nullopt; // Inverted exit checks are unsupported here.
    int Top = -1;
    for (size_t I = 0; I < Body.size(); ++I)
      if (Body[I]->Id == EE.GuardNode)
        Top = static_cast<int>(I);
    if (Top < 0)
      return std::nullopt; // Nested exit guard.
    const Stmt *Guard = Body[Top];
    std::vector<int> Allowed;
    if (readsDefinedLater(Guard->Cond, Top, Allowed))
      return std::nullopt;
    Check C;
    C.Top = Top;
    C.Kind = Check::Exit;
    C.EE = &EE;
    C.GuardCond = Guard->Cond;
    C.Invert = EE.BreakInElse;
    Checks.push_back(C);
  }
  // Every statement emitted before the bail-out branch is re-executed by
  // the scalar chunk, so stores anywhere before the last checkpoint make
  // the fallback non-idempotent; reject those shapes.
  int LastCheck = 0;
  for (const Check &C : Checks)
    LastCheck = std::max(LastCheck, C.Top);
  for (int I = 0; I < LastCheck; ++I)
    if (hasStoreIn({Body[static_cast<size_t>(I)]}))
      return std::nullopt;

  CompiledLoop Out;
  Out.Kind = CodeGenKind::Speculative;
  ProgramBuilder B;
  ProgramBuilder::Label VecLoop = B.createLabel();
  ProgramBuilder::Label VecExit = B.createLabel();
  ProgramBuilder::Label ScalarChunk = B.createLabel();
  ProgramBuilder::Label HaltL = B.createLabel();

  VectorEmitter::Options Opts;
  Opts.UseFirstFaulting = false;
  Opts.StraightlineOnly = true;
  VectorEmitter Em(B, F, Plan, Opts);

  Reg T = Reg::scalar(25);
  // r0/r1 are outside both the parameter map and the scalar scratch pool,
  // so the chunk bound and the check flag survive the scalar fallback.
  Reg ChunkEnd = Reg::scalar(0);
  Reg DepFlag = Reg::scalar(1);

  Em.emitPreheader();
  B.bind(VecLoop);
  B.cmp(T, CmpKind::LT, inductionReg(), tripReg(F));
  B.brZero(T, VecExit);
  Em.emitChunkProlog(tripReg(F));
  B.movImm(DepFlag, 0);

  // Emit the body straightline, inserting checks at their checkpoints.
  // (emitBody in straightline mode emits everything; we instead emit
  // statement ranges manually around the checkpoints.)
  // Sort checks by position.
  std::sort(Checks.begin(), Checks.end(),
            [](const Check &A, const Check &B2) { return A.Top < B2.Top; });

  // The straightline body is emitted in one piece after all checks whose
  // conditions are evaluable up front; since readsDefinedLater() verified
  // evaluability at each checkpoint, and checkpoints only move earlier
  // evaluation, we conservatively emit all checks first when they are all
  // at positions whose prefixes contain no assignments they read. To keep
  // the generated code faithful to PACT'13 we emit prefix statements
  // between checkpoints.
  size_t NextStmt = 0;
  for (const Check &C : Checks) {
    // Emit statements before this checkpoint.
    while (NextStmt < Body.size() &&
           static_cast<int>(NextStmt) < C.Top) {
      Em.emitStraightlineTopLevel(Body[NextStmt]);
      ++NextStmt;
    }
    switch (C.Kind) {
    case Check::CondUpdate:
    case Check::Exit:
      Em.emitSpecCondCheck(C.GuardCond, DepFlag);
      break;
    case Check::Conflict:
      Em.emitSpecConflictCheck(*C.MC, DepFlag);
      break;
    }
  }
  B.brNonZero(DepFlag, ScalarChunk).Comment =
      "dependence may fire: roll back to scalar for this chunk";
  while (NextStmt < Body.size()) {
    Em.emitStraightlineTopLevel(Body[NextStmt]);
    ++NextStmt;
  }
  Em.emitChunkEpilog();
  B.jmp(VecLoop);

  // Scalar chunk: VL iterations starting at i.
  B.bind(ScalarChunk);
  B.binOpImm(Opcode::AddImm, ChunkEnd, inductionReg(),
             static_cast<int64_t>(Em.vl()));
  B.binOp(Opcode::Min, ChunkEnd, ChunkEnd, tripReg(F));
  emitScalarLoopBody(B, F, ChunkEnd, VecExit);
  B.jmp(VecLoop);

  B.bind(VecExit);
  Em.emitLiveOuts();
  B.jmp(HaltL);
  B.bind(HaltL);
  B.halt();

  Out.Prog = B.finalize();
  Out.Notes = "PACT'13-style speculative vectorization: all-or-nothing "
              "chunks; " + Em.notes();
  return Out;
}
