//===- codegen/Compiled.h - Compiled loop artifacts -------------*- C++ -*-===//
//
// Register conventions shared by every code generator, so one evaluator can
// set up inputs and read back live-outs for scalar, traditional-vector,
// speculative, FlexVec, and RTM programs alike.
//
//  r2 + ScalarId   initial value / live-out of each scalar parameter
//  r14 + ArrayId   base address of each array parameter
//  r24             loop induction variable
//  r25..r31        scalar scratch
//  v0              induction lane vector (v_i)
//  v2 + ScalarId   vector image of each scalar variable
//  v16..v31        vector scratch
//  k1              k_loop;  k2/k3 if-conversion stack;  k4 k_todo;
//  k5              k_stop;  k6 k_safe;  k7 scratch (k_rem / FF checks)
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CODEGEN_COMPILED_H
#define FLEXVEC_CODEGEN_COMPILED_H

#include "analysis/Patterns.h"
#include "ir/IR.h"
#include "isa/Program.h"

#include <string>

namespace flexvec {
namespace codegen {

/// Maximum parameter counts imposed by the register conventions.
inline constexpr unsigned MaxScalarParams = 12;
inline constexpr unsigned MaxArrayParams = 10;

inline isa::Reg scalarParamReg(int ScalarId) {
  return isa::Reg::scalar(2 + static_cast<unsigned>(ScalarId));
}

inline isa::Reg arrayBaseReg(int ArrayId) {
  return isa::Reg::scalar(14 + static_cast<unsigned>(ArrayId));
}

inline isa::Reg inductionReg() { return isa::Reg::scalar(24); }

/// Which generator produced a program.
enum class CodeGenKind : uint8_t {
  Scalar,       ///< Strict scalar reference code (the "branchy" baseline).
  Traditional,  ///< Classic AVX-512-style vectorization (no FlexVec).
  Speculative,  ///< PACT'13-style all-or-nothing speculative vectorization.
  FlexVec,      ///< Partial vector code with VPLs and FlexVec instructions.
  FlexVecRtm,   ///< FlexVec with RTM speculation instead of FF loads.
  FlexVecAdaptive, ///< Speculative + traditional behind a runtime dispatch
                   ///< guard with abort-rate-driven demotion.
};

const char *codeGenKindName(CodeGenKind K);

/// A generated program plus its metadata.
struct CompiledLoop {
  CodeGenKind Kind = CodeGenKind::Scalar;
  isa::Program Prog;
  std::string Notes; ///< Generator commentary (chosen VL, tile size, ...).
};

} // namespace codegen
} // namespace flexvec

#endif // FLEXVEC_CODEGEN_COMPILED_H
