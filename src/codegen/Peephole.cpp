//===- codegen/Peephole.cpp -----------------------------------------------===//

#include "codegen/Peephole.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

using namespace flexvec;
using namespace flexvec::codegen;
using namespace flexvec::isa;

namespace {

/// True when the instruction's merge-masked (or selecting) semantics read
/// the previous destination value.
bool readsOwnDest(const Instruction &I) {
  if (!I.Dst.isValid() || !I.Dst.isVector())
    return false;
  if (I.Op == Opcode::VBlend)
    return true;
  if (I.Op == Opcode::VSlctLast || I.Op == Opcode::VIndex)
    return false;
  return I.MaskReg.isValid() && I.MaskReg.Index != 0;
}

/// Registers read by \p I (merge-masked destinations included).
void collectReads(const Instruction &I, std::vector<Reg> &Out) {
  for (Reg R : {I.Src1, I.Src2, I.Src3})
    if (R.isValid())
      Out.push_back(R);
  if (I.MaskReg.isValid())
    Out.push_back(I.MaskReg);
  if (readsOwnDest(I))
    Out.push_back(I.Dst);
}

/// Registers written by \p I.
void collectWrites(const Instruction &I, std::vector<Reg> &Out) {
  if (I.Dst.isValid())
    Out.push_back(I.Dst);
  if (I.isFirstFaulting() && I.MaskReg.isValid())
    Out.push_back(I.MaskReg);
}

/// Instructions that must never be moved or removed.
bool hasSideEffects(const Instruction &I) {
  return I.isStore() || I.isBranch() || I.Op == Opcode::Halt ||
         I.Op == Opcode::XBegin || I.Op == Opcode::XEnd ||
         I.Op == Opcode::XAbort;
}

unsigned regKey(Reg R) {
  switch (R.Class) {
  case RegClass::Scalar:
    return R.Index;
  case RegClass::Vector:
    return 32u + R.Index;
  case RegClass::Mask:
    return 64u + R.Index;
  case RegClass::None:
    break;
  }
  unreachable("invalid register");
}

/// Rebuilds a program keeping instructions where Keep[i], remapping branch
/// targets to the next kept instruction at or after the old target.
Program rebuild(const std::vector<Instruction> &Instrs,
                const std::vector<bool> &Keep, unsigned VecBytes) {
  std::vector<int32_t> NewIndex(Instrs.size() + 1, 0);
  int32_t Next = 0;
  for (size_t I = 0; I < Instrs.size(); ++I) {
    NewIndex[I] = Next;
    if (Keep[I])
      ++Next;
  }
  NewIndex[Instrs.size()] = Next;

  std::vector<Instruction> Out;
  Out.reserve(static_cast<size_t>(Next));
  for (size_t I = 0; I < Instrs.size(); ++I) {
    if (!Keep[I])
      continue;
    Instruction Ins = Instrs[I];
    if (Ins.Target != NoTarget)
      Ins.Target = NewIndex[static_cast<size_t>(Ins.Target)];
    Out.push_back(std::move(Ins));
  }
  return Program(std::move(Out), VecBytes);
}

// --- Dead code elimination ------------------------------------------------===//

unsigned deadCodeElimination(Program &P, const PeepholeOptions &Opts) {
  const auto &Instrs = P.instructions();
  std::vector<bool> Live(Instrs.size(), false);

  std::vector<bool> RootRegs(96, false);
  if (Opts.AllScalarsLiveOut)
    for (unsigned R = 0; R < 32; ++R)
      RootRegs[R] = true;
  for (Reg R : Opts.LiveOutRegs)
    RootRegs[regKey(R)] = true;

  // Flow-insensitive fixpoint: side-effecting instructions are live; an
  // instruction is live if a live instruction reads any register it
  // writes. (Conservative: ignores kill positions, so it never removes a
  // value that any retained instruction could observe.)
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<bool> ReadByLive = RootRegs;
    for (size_t I = 0; I < Instrs.size(); ++I) {
      if (!Live[I] && !hasSideEffects(Instrs[I]))
        continue;
      std::vector<Reg> Reads;
      collectReads(Instrs[I], Reads);
      for (Reg R : Reads)
        ReadByLive[regKey(R)] = true;
    }
    for (size_t I = 0; I < Instrs.size(); ++I) {
      if (Live[I])
        continue;
      if (hasSideEffects(Instrs[I])) {
        Live[I] = true;
        Changed = true;
        continue;
      }
      std::vector<Reg> Writes;
      collectWrites(Instrs[I], Writes);
      bool Needed = Writes.empty(); // Pure no-output (nop): drop below.
      for (Reg R : Writes)
        Needed |= ReadByLive[regKey(R)];
      if (Instrs[I].Op == Opcode::Nop)
        Needed = false;
      if (Needed && !Live[I]) {
        Live[I] = true;
        Changed = true;
      }
    }
  }

  unsigned Removed = 0;
  for (size_t I = 0; I < Instrs.size(); ++I)
    if (!Live[I])
      ++Removed;
  if (Removed)
    P = rebuild(Instrs, Live, P.vectorBytes());
  return Removed;
}

// --- Block-local CSE --------------------------------------------------------===//

/// Basic-block leader mask: entry, branch targets, fall-throughs after
/// branches.
std::vector<bool> blockLeaders(const Program &P) {
  const auto &Instrs = P.instructions();
  std::vector<bool> Leader(Instrs.size(), false);
  if (!Instrs.empty())
    Leader[0] = true;
  for (size_t I = 0; I < Instrs.size(); ++I) {
    const Instruction &Ins = Instrs[I];
    if (Ins.Target != NoTarget)
      Leader[static_cast<size_t>(Ins.Target)] = true;
    if (Ins.isBranch() && I + 1 < Instrs.size())
      Leader[I + 1] = true;
  }
  return Leader;
}

/// A structural identity key for pure instructions (comment excluded).
struct InstrKey {
  uint8_t Op, Type, Cond;
  unsigned Dst, Src1, Src2, Src3, Mask;
  int64_t Imm, Disp;
  uint8_t Scale;

  bool operator<(const InstrKey &O) const {
    return std::tie(Op, Type, Cond, Dst, Src1, Src2, Src3, Mask, Imm, Disp,
                    Scale) < std::tie(O.Op, O.Type, O.Cond, O.Dst, O.Src1,
                                      O.Src2, O.Src3, O.Mask, O.Imm, O.Disp,
                                      O.Scale);
  }
};

InstrKey keyOf(const Instruction &I) {
  auto K = [](Reg R) { return R.isValid() ? regKey(R) + 1 : 0u; };
  return InstrKey{static_cast<uint8_t>(I.Op), static_cast<uint8_t>(I.Type),
                  static_cast<uint8_t>(I.Cond), K(I.Dst), K(I.Src1),
                  K(I.Src2), K(I.Src3), K(I.MaskReg), I.Imm, I.Disp,
                  I.Scale};
}

unsigned localCse(Program &P) {
  const auto &Instrs = P.instructions();
  std::vector<bool> Leader = blockLeaders(P);
  std::vector<bool> Keep(Instrs.size(), true);
  unsigned Removed = 0;

  std::map<InstrKey, size_t> Available;
  for (size_t I = 0; I < Instrs.size(); ++I) {
    if (Leader[I])
      Available.clear();
    const Instruction &Ins = Instrs[I];

    // Memory reads are not CSE'd (a store may intervene between blocks and
    // tracking store aliasing is not worth it here); anything with side
    // effects or no destination invalidates nothing but is skipped.
    bool Pure = !hasSideEffects(Ins) && !Ins.isLoad() &&
                Ins.Dst.isValid() && Ins.Op != Opcode::Nop;

    if (Pure) {
      InstrKey Key = keyOf(Ins);
      auto It = Available.find(Key);
      if (It != Available.end()) {
        Keep[I] = false;
        ++Removed;
        continue; // Identical value already in the same register.
      }
      Available[Key] = I;
    }

    // Invalidate available expressions whose inputs or outputs this
    // instruction overwrites.
    std::vector<Reg> Writes;
    collectWrites(Ins, Writes);
    if (!Writes.empty()) {
      for (auto It = Available.begin(); It != Available.end();) {
        const Instruction &Prev = Instrs[It->second];
        std::vector<Reg> Deps;
        collectReads(Prev, Deps);
        if (Prev.Dst.isValid())
          Deps.push_back(Prev.Dst);
        bool Clobbered = false;
        for (Reg W : Writes)
          for (Reg D : Deps)
            Clobbered |= W == D;
        // Do not invalidate the entry this very instruction installed.
        if (Clobbered && It->second != I)
          It = Available.erase(It);
        else
          ++It;
      }
    }
  }

  if (Removed)
    P = rebuild(Instrs, Keep, P.vectorBytes());
  return Removed;
}

// --- Loop-invariant code motion ---------------------------------------------===//

unsigned hoistOneLoop(Program &P) {
  const auto &Instrs = P.instructions();

  // Find the first innermost loop with hoistable instructions: a backward
  // branch [Head, Back] containing no smaller backward branch with work to
  // hoist is handled on a later fixpoint round anyway, so greedily take
  // the smallest candidate region first.
  struct Region {
    size_t Head, Back;
  };
  std::vector<Region> Regions;
  for (size_t I = 0; I < Instrs.size(); ++I)
    if (Instrs[I].isBranch() && Instrs[I].Target != NoTarget &&
        static_cast<size_t>(Instrs[I].Target) <= I)
      Regions.push_back(Region{static_cast<size_t>(Instrs[I].Target), I});
  std::sort(Regions.begin(), Regions.end(),
            [](const Region &A, const Region &B) {
              return (A.Back - A.Head) < (B.Back - B.Head);
            });

  for (const Region &R : Regions) {
    // Registers written anywhere in the region, with write counts per reg.
    std::vector<unsigned> WriteCount(96, 0);
    for (size_t I = R.Head; I <= R.Back; ++I) {
      std::vector<Reg> Writes;
      collectWrites(Instrs[I], Writes);
      for (Reg W : Writes)
        ++WriteCount[regKey(W)];
    }
    // A branch from inside the region jumping *into* the middle from
    // outside would break preheader placement; targets of outside branches
    // must not land strictly inside the region.
    bool EntryClean = true;
    for (size_t I = 0; I < Instrs.size(); ++I) {
      if (I >= R.Head && I <= R.Back)
        continue;
      if (Instrs[I].Target != NoTarget &&
          static_cast<size_t>(Instrs[I].Target) > R.Head &&
          static_cast<size_t>(Instrs[I].Target) <= R.Back)
        EntryClean = false;
    }
    if (!EntryClean)
      continue;

    for (size_t I = R.Head; I <= R.Back; ++I) {
      const Instruction &Ins = Instrs[I];
      if (hasSideEffects(Ins) || Ins.isLoad() || Ins.Op == Opcode::Nop)
        continue;
      if (!Ins.Dst.isValid())
        continue;
      std::vector<Reg> Reads;
      collectReads(Ins, Reads);
      bool Invariant = true;
      for (Reg Src : Reads)
        Invariant &= WriteCount[regKey(Src)] == 0;
      std::vector<Reg> Writes;
      collectWrites(Ins, Writes);
      for (Reg W : Writes)
        Invariant &= WriteCount[regKey(W)] == 1; // Only this instruction.
      if (!Invariant)
        continue;
      // A read of the destination earlier in the region (a cross-iteration
      // use-before-def) would change meaning if the definition moved to
      // the preheader.
      bool UsedBeforeDef = false;
      for (size_t J = R.Head; J < I && !UsedBeforeDef; ++J) {
        std::vector<Reg> EarlierReads;
        collectReads(Instrs[J], EarlierReads);
        for (Reg Rd : EarlierReads)
          for (Reg W : Writes)
            UsedBeforeDef |= Rd == W;
      }
      if (UsedBeforeDef)
        continue;

      // Hoist: rebuild with the instruction moved to just before Head.
      std::vector<Instruction> Out;
      Out.reserve(Instrs.size());
      std::vector<int32_t> NewIndex(Instrs.size() + 1);
      for (size_t J = 0; J <= Instrs.size(); ++J) {
        int32_t N = static_cast<int32_t>(J);
        if (J >= R.Head && J <= I)
          N += 1; // Shifted down by the inserted preheader copy.
        if (J > I)
          N += 0; // Deleted original cancels the insertion.
        NewIndex[J] = N;
      }
      for (size_t J = 0; J < Instrs.size(); ++J) {
        if (J == R.Head)
          Out.push_back(Instrs[I]); // Preheader copy.
        if (J == I)
          continue; // Original removed.
        Instruction Copy = Instrs[J];
        if (Copy.Target != NoTarget)
          Copy.Target = NewIndex[static_cast<size_t>(Copy.Target)];
        Out.push_back(std::move(Copy));
      }
      // The hoisted copy itself cannot be a branch (checked above).
      P = Program(std::move(Out), P.vectorBytes());
      return 1;
    }
  }
  return 0;
}

} // namespace

std::string PeepholeStats::describe() const {
  return "hoisted " + std::to_string(Hoisted) + ", cse-removed " +
         std::to_string(CseRemoved) + ", dead-removed " +
         std::to_string(DeadRemoved);
}

Program codegen::optimizeProgram(const Program &In,
                                 const PeepholeOptions &Opts,
                                 PeepholeStats *Stats) {
  Program P = In;
  PeepholeStats S;
  // Bounded fixpoint: each LICM round moves one instruction; CSE and DCE
  // run between rounds.
  for (int Round = 0; Round < 256; ++Round) {
    unsigned Work = 0;
    if (Opts.LocalCse) {
      unsigned N = localCse(P);
      S.CseRemoved += N;
      Work += N;
    }
    if (Opts.HoistLoopInvariants) {
      unsigned N = hoistOneLoop(P);
      S.Hoisted += N;
      Work += N;
    }
    if (Work == 0)
      break;
  }
  if (Opts.DeadCodeElimination)
    S.DeadRemoved = deadCodeElimination(P, Opts);
  if (Stats)
    *Stats = S;
  return P;
}
