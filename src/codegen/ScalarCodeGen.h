//===- codegen/ScalarCodeGen.h - Scalar code generation ---------*- C++ -*-===//
//
// Generates strict scalar (iteration-ordered) machine code for a loop.
// This is (a) the baseline for loops the traditional vectorizer rejects —
// the paper's FlexVec candidates are exactly those — and (b) the fallback
// body embedded into FlexVec programs for first-faulting bailouts and RTM
// abort handlers.
//
// Control flow uses conditional branches (not CMOV), matching the "branchy"
// baseline behaviour the paper discusses for 450.soplex.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_CODEGEN_SCALARCODEGEN_H
#define FLEXVEC_CODEGEN_SCALARCODEGEN_H

#include "codegen/Compiled.h"

namespace flexvec {
namespace codegen {

/// Emits a complete scalar program for \p F (inputs per the shared register
/// conventions; ends with Halt).
CompiledLoop generateScalar(const ir::LoopFunction &F);

/// Emits a scalar loop over iterations [inductionReg(), \p BoundReg) into
/// an existing builder. Scalar variables live in their scalarParamReg()s.
/// On a break, control transfers to \p BreakTarget; on normal exhaustion it
/// falls through. Used to embed fallback/abort-handler bodies.
void emitScalarLoopBody(isa::ProgramBuilder &B, const ir::LoopFunction &F,
                        isa::Reg BoundReg,
                        isa::ProgramBuilder::Label BreakTarget);

} // namespace codegen
} // namespace flexvec

#endif // FLEXVEC_CODEGEN_SCALARCODEGEN_H
