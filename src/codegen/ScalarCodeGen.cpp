//===- codegen/ScalarCodeGen.cpp ------------------------------------------===//

#include "codegen/ScalarCodeGen.h"

#include "support/Error.h"

#include <cassert>

using namespace flexvec;
using namespace flexvec::codegen;
using namespace flexvec::ir;
using namespace flexvec::isa;

namespace {

/// Stack-discipline pool over the scalar scratch registers r25..r31.
class ScratchPool {
public:
  Reg acquire() {
    if (Next > 31)
      fatalError("scalar expression too deep for the scratch register pool");
    return Reg::scalar(Next++);
  }
  void release([[maybe_unused]] Reg R) {
    assert(R.isScalar() && R.Index == Next - 1 &&
           "scratch registers must be released in LIFO order");
    --Next;
  }
  /// Releases only if \p R is a scratch register (refs to parameter
  /// registers are returned unpooled).
  void releaseIfScratch(Reg R) {
    if (R.Index >= 25)
      release(R);
  }

private:
  unsigned Next = 25;
};

class ScalarEmitter {
public:
  ScalarEmitter(ProgramBuilder &B, const LoopFunction &F) : B(B), F(F) {}

  /// Evaluates \p E; the result register may be a parameter register (do
  /// not write to it). Boolean expressions yield 0/1.
  Reg evalExpr(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::ConstInt: {
      Reg T = Pool.acquire();
      B.movImm(T, E->IntValue);
      return T;
    }
    case ExprKind::ConstFloat: {
      Reg T = Pool.acquire();
      B.fmovImm(T, E->Type, E->FloatValue);
      return T;
    }
    case ExprKind::ScalarRef:
      return scalarParamReg(E->ScalarId);
    case ExprKind::IndexRef:
      return inductionReg();
    case ExprKind::ArrayRef: {
      Reg Idx = evalExpr(E->Index);
      Reg T = Idx.Index >= 25 ? Idx : Pool.acquire();
      const ArrayParam &A = F.array(E->ArrayId);
      B.load(T, A.Elem, arrayBaseReg(E->ArrayId), Idx,
             static_cast<uint8_t>(elemSize(A.Elem)), 0);
      return T;
    }
    case ExprKind::Binary: {
      Reg L = evalExpr(E->Lhs);
      Reg R = evalExpr(E->Rhs);
      // Reuse the deeper scratch when possible to keep LIFO discipline.
      Pool.releaseIfScratch(R);
      Pool.releaseIfScratch(L);
      Reg T = Pool.acquire();
      if (isFloatType(E->Type))
        B.fbinOp(fpOpcode(E->Op), E->Type, T, L, R);
      else
        B.binOp(intOpcode(E->Op), T, L, R);
      return T;
    }
    case ExprKind::Compare: {
      Reg L = evalExpr(E->Lhs);
      Reg R = evalExpr(E->Rhs);
      Pool.releaseIfScratch(R);
      Pool.releaseIfScratch(L);
      Reg T = Pool.acquire();
      if (isFloatType(E->Lhs->Type))
        B.fcmp(T, E->Cmp, E->Lhs->Type, L, R);
      else
        B.cmp(T, E->Cmp, L, R);
      return T;
    }
    case ExprKind::LogicalAnd: {
      Reg L = evalExpr(E->Lhs);
      Reg R = evalExpr(E->Rhs);
      Pool.releaseIfScratch(R);
      Pool.releaseIfScratch(L);
      Reg T = Pool.acquire();
      B.binOp(Opcode::And, T, L, R);
      return T;
    }
    }
    unreachable("unknown expr kind");
  }

  void emitStmts(const std::vector<Stmt *> &Stmts,
                 ProgramBuilder::Label BreakTarget) {
    for (const Stmt *S : Stmts) {
      switch (S->Kind) {
      case StmtKind::AssignScalar: {
        Reg V = evalExpr(S->Value);
        B.mov(scalarParamReg(S->ScalarId), V).Comment = S->str(F);
        Pool.releaseIfScratch(V);
        break;
      }
      case StmtKind::StoreArray: {
        Reg Idx = evalExpr(S->Index);
        Reg V = evalExpr(S->Value);
        const ArrayParam &A = F.array(S->ArrayId);
        B.store(A.Elem, arrayBaseReg(S->ArrayId), Idx,
                static_cast<uint8_t>(elemSize(A.Elem)), 0, V)
            .Comment = S->str(F);
        Pool.releaseIfScratch(V);
        Pool.releaseIfScratch(Idx);
        break;
      }
      case StmtKind::If: {
        Reg C = evalExpr(S->Cond);
        ProgramBuilder::Label ElseL = B.createLabel();
        B.brZero(C, ElseL).Comment = S->str(F);
        Pool.releaseIfScratch(C);
        emitStmts(S->Then, BreakTarget);
        if (S->Else.empty()) {
          B.bind(ElseL);
        } else {
          ProgramBuilder::Label EndL = B.createLabel();
          B.jmp(EndL);
          B.bind(ElseL);
          emitStmts(S->Else, BreakTarget);
          B.bind(EndL);
        }
        break;
      }
      case StmtKind::Break:
        B.jmp(BreakTarget).Comment = S->str(F);
        break;
      }
    }
  }

private:
  static Opcode intOpcode(BinOp Op) {
    switch (Op) {
    case BinOp::Add:
      return Opcode::Add;
    case BinOp::Sub:
      return Opcode::Sub;
    case BinOp::Mul:
      return Opcode::Mul;
    case BinOp::Div:
      return Opcode::Div;
    case BinOp::And:
      return Opcode::And;
    case BinOp::Or:
      return Opcode::Or;
    case BinOp::Xor:
      return Opcode::Xor;
    case BinOp::Shl:
      return Opcode::Shl;
    case BinOp::Shr:
      return Opcode::Shr;
    case BinOp::Min:
      return Opcode::Min;
    case BinOp::Max:
      return Opcode::Max;
    }
    unreachable("unknown binop");
  }

  static Opcode fpOpcode(BinOp Op) {
    switch (Op) {
    case BinOp::Add:
      return Opcode::FAdd;
    case BinOp::Sub:
      return Opcode::FSub;
    case BinOp::Mul:
      return Opcode::FMul;
    case BinOp::Div:
      return Opcode::FDiv;
    case BinOp::Min:
      return Opcode::FMin;
    case BinOp::Max:
      return Opcode::FMax;
    default:
      unreachable("bitwise binop on floats");
    }
  }

  ProgramBuilder &B;
  const LoopFunction &F;
  ScratchPool Pool;
};

} // namespace

const char *codegen::codeGenKindName(CodeGenKind K) {
  switch (K) {
  case CodeGenKind::Scalar:
    return "scalar";
  case CodeGenKind::Traditional:
    return "avx512-traditional";
  case CodeGenKind::Speculative:
    return "speculative-pact13";
  case CodeGenKind::FlexVec:
    return "flexvec";
  case CodeGenKind::FlexVecRtm:
    return "flexvec-rtm";
  case CodeGenKind::FlexVecAdaptive:
    return "flexvec-adaptive";
  }
  unreachable("unknown codegen kind");
}

void codegen::emitScalarLoopBody(ProgramBuilder &B, const LoopFunction &F,
                                 Reg BoundReg,
                                 ProgramBuilder::Label BreakTarget) {
  ScalarEmitter E(B, F);
  ProgramBuilder::Label Header = B.createLabel();
  ProgramBuilder::Label Done = B.createLabel();
  Reg I = inductionReg();
  Reg T = Reg::scalar(25);
  B.bind(Header);
  B.cmp(T, CmpKind::LT, I, BoundReg).Comment = "scalar loop header";
  B.brZero(T, Done);
  E.emitStmts(F.body(), BreakTarget);
  B.binOpImm(Opcode::AddImm, I, I, 1);
  B.jmp(Header);
  B.bind(Done);
}

CompiledLoop codegen::generateScalar(const LoopFunction &F) {
  assert(F.scalars().size() <= MaxScalarParams &&
         F.arrays().size() <= MaxArrayParams &&
         "loop exceeds the register conventions");
  CompiledLoop Out;
  Out.Kind = CodeGenKind::Scalar;
  ProgramBuilder B;
  ProgramBuilder::Label Exit = B.createLabel();
  B.movImm(inductionReg(), 0).Comment = "i = 0";
  emitScalarLoopBody(B, F, scalarParamReg(F.tripCountScalar()), Exit);
  B.bind(Exit);
  B.halt();
  Out.Prog = B.finalize();
  Out.Notes = "strict scalar order; branches for control flow";
  return Out;
}
