//===- codegen/VectorEmitter.cpp ------------------------------------------===//

#include "codegen/VectorEmitter.h"

#include "pdg/Pdg.h"
#include "support/Error.h"

#include <cassert>
#include <cstring>

using namespace flexvec;
using namespace flexvec::codegen;
using namespace flexvec::ir;
using namespace flexvec::isa;
using flexvec::analysis::CondUpdateVpl;
using flexvec::analysis::EarlyExitInfo;
using flexvec::analysis::MemConflictVpl;
using flexvec::analysis::ReductionKind;

namespace {

/// True if \p E reads scalar \p Id.
bool readsScalar(const Expr *E, int Id) {
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
  case ExprKind::IndexRef:
    return false;
  case ExprKind::ScalarRef:
    return E->ScalarId == Id;
  case ExprKind::ArrayRef:
    return readsScalar(E->Index, Id);
  case ExprKind::Binary:
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    return readsScalar(E->Lhs, Id) || readsScalar(E->Rhs, Id);
  }
  unreachable("unknown expr kind");
}

bool stmtReadsScalar(const Stmt *S, int Id) {
  switch (S->Kind) {
  case StmtKind::AssignScalar:
    return readsScalar(S->Value, Id);
  case StmtKind::StoreArray:
    return readsScalar(S->Index, Id) || readsScalar(S->Value, Id);
  case StmtKind::If:
    return readsScalar(S->Cond, Id);
  case StmtKind::Break:
    return false;
  }
  unreachable("unknown stmt kind");
}

void collectAssignedScalars(const std::vector<Stmt *> &Stmts,
                            std::vector<bool> &Assigned) {
  for (const Stmt *S : Stmts) {
    if (S->Kind == StmtKind::AssignScalar)
      Assigned[S->ScalarId] = true;
    if (S->Kind == StmtKind::If) {
      collectAssignedScalars(S->Then, Assigned);
      collectAssignedScalars(S->Else, Assigned);
    }
  }
}

} // namespace

VectorEmitter::VectorEmitter(ProgramBuilder &B, const LoopFunction &F,
                             const analysis::VectorizationPlan &Plan,
                             Options Opts)
    : B(B), F(F), Plan(Plan), Opts(Opts) {
  // Lane configuration: all arrays must share one element width.
  unsigned Width = 0;
  for (const ArrayParam &A : F.arrays()) {
    unsigned W = elemSize(A.Elem);
    if (Width == 0)
      Width = W;
    else if (Width != W)
      fatalError("loop " + F.name() +
                 " mixes 4- and 8-byte array elements; one lane width per "
                 "loop is required");
  }
  if (Width == 0)
    Width = 4;
  assert(isa::VectorConfig::isValidBytes(Opts.VectorBytes) &&
         "invalid vector width");
  VL = Opts.VectorBytes / Width;
  IntTy = Width == 4 ? ElemType::I32 : ElemType::I64;
  FloatTy = Width == 4 ? ElemType::F32 : ElemType::F64;

  // Scalar classification.
  size_t NumScalars = F.scalars().size();
  assert(NumScalars <= MaxScalarParams && "too many scalar parameters");
  assert(F.arrays().size() <= MaxArrayParams && "too many array parameters");
  std::vector<bool> Assigned(NumScalars, false);
  collectAssignedScalars(F.body(), Assigned);

  Classes.assign(NumScalars, ScalarClass::Invariant);
  for (size_t S = 0; S < NumScalars; ++S)
    if (Assigned[S])
      Classes[S] = ScalarClass::Temp;
  for (const auto &R : Plan.Reductions)
    Classes[R.ScalarId] = ScalarClass::Reduction;
  for (const auto &V : Plan.CondUpdateVpls)
    for (const auto &U : V.Updates)
      Classes[U.ScalarId] = ScalarClass::Committed;
  for (const auto &EE : Plan.EarlyExits) {
    // Scalars assigned in the break-side region commit at the first exiting
    // lane; the continue-side region is ordinary if-converted code.
    std::vector<bool> InGuard(NumScalars, false);
    F.forEachStmt([&](const Stmt *S) {
      if (S->Id == EE.GuardNode)
        collectAssignedScalars(EE.BreakInElse ? S->Else : S->Then, InGuard);
    });
    for (size_t S = 0; S < NumScalars; ++S)
      if (InGuard[S] && Classes[S] == ScalarClass::Temp)
        Classes[S] = ScalarClass::Committed;
  }

  for (size_t S = 0; S < NumScalars; ++S) {
    if (Classes[S] == ScalarClass::Temp && F.scalar(S).IsLiveOut)
      fatalError("live-out scalar '" + F.scalar(S).Name +
                 "' is neither a reduction nor a committed update; "
                 "unsupported by the vector code generators");
    bool Read = false;
    F.forEachStmt([&](const Stmt *St) {
      Read |= stmtReadsScalar(St, static_cast<int>(S));
    });
    if ((Read || Assigned[S]) && isFloatType(F.scalar(S).Type) &&
        elemSize(F.scalar(S).Type) != elemSize(FloatTy))
      fatalError("float scalar '" + F.scalar(S).Name +
                 "' width does not match the loop lane width");
  }

  // Scratch vector registers v16..v31.
  for (unsigned R = 31; R >= 16; --R)
    VecFree.push_back(static_cast<uint8_t>(R));

  CurMask = kLoop();
  NotesText = "VL=" + std::to_string(VL);
  if (Opts.Predicated)
    NotesText += "; predicated";

  // Collect the distinct immediates the body will need as vectors, so the
  // preheader can broadcast each exactly once (re-materializing them per
  // chunk would put a VBROADCASTI on every loop iteration's trace).
  std::function<void(const Expr *)> ScanExpr = [&](const Expr *E) {
    switch (E->Kind) {
    case ExprKind::ConstInt:
      noteConstant(IntTy, E->IntValue);
      return;
    case ExprKind::ConstFloat: {
      int64_t Bits;
      if (FloatTy == ElemType::F32) {
        float V = static_cast<float>(E->FloatValue);
        uint32_t B32;
        std::memcpy(&B32, &V, 4);
        Bits = B32;
      } else {
        std::memcpy(&Bits, &E->FloatValue, 8);
      }
      noteConstant(FloatTy, Bits);
      return;
    }
    case ExprKind::ScalarRef:
    case ExprKind::IndexRef:
      return;
    case ExprKind::ArrayRef:
      ScanExpr(E->Index);
      return;
    case ExprKind::Binary:
    case ExprKind::Compare:
    case ExprKind::LogicalAnd:
      ScanExpr(E->Lhs);
      ScanExpr(E->Rhs);
      return;
    }
  };
  F.forEachStmt([&](const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::AssignScalar:
      ScanExpr(S->Value);
      break;
    case StmtKind::StoreArray:
      ScanExpr(S->Index);
      ScanExpr(S->Value);
      break;
    case StmtKind::If:
      ScanExpr(S->Cond);
      break;
    case StmtKind::Break:
      break;
    }
  });
}

void VectorEmitter::noteConstant(ElemType Ty, int64_t Bits) {
  for (auto &[T, B, R] : ConstPool)
    if (T == Ty && B == Bits)
      return;
  // Bound the pool so deep loops keep enough scratch registers.
  if (ConstPool.size() >= 6)
    return;
  Reg R = acquireVec();
  Persistent.push_back(R.Index);
  ConstPool.emplace_back(Ty, Bits, R);
}

isa::Reg VectorEmitter::constantReg(ElemType Ty, int64_t Bits) const {
  for (const auto &[T, B, R] : ConstPool)
    if (T == Ty && B == Bits)
      return R;
  return Reg::none();
}

ElemType VectorEmitter::laneType(ElemType Declared) const {
  return isFloatType(Declared) ? FloatTy : IntTy;
}

std::string VectorEmitter::notes() const { return NotesText; }

Reg VectorEmitter::acquireVec() {
  if (VecFree.empty())
    fatalError("vector scratch registers exhausted");
  Reg R = Reg::vector(VecFree.back());
  VecFree.pop_back();
  return R;
}

void VectorEmitter::releaseVec(Reg R) {
  assert(R.isVector() && R.Index >= 16 && "not a scratch vector register");
  VecFree.push_back(R.Index);
}

void VectorEmitter::releaseIfScratch(Reg R) {
  if (!R.isVector() || R.Index < 16)
    return;
  for (uint8_t P : Persistent)
    if (P == R.Index)
      return;
  releaseVec(R);
}

const analysis::ReductionInfo *VectorEmitter::reductionOf(int ScalarId) const {
  for (const auto &R : Plan.Reductions)
    if (R.ScalarId == ScalarId)
      return &R;
  return nullptr;
}

const EarlyExitInfo *VectorEmitter::earlyExitAt(const Stmt *S) const {
  for (const auto &EE : Plan.EarlyExits)
    if (EE.GuardNode == S->Id)
      return &EE;
  return nullptr;
}

bool VectorEmitter::isSpeculativeLoadSite(int StmtId) const {
  return Plan.isSpeculative(StmtId);
}

void VectorEmitter::emitMaskedMove(Reg Dst, ElemType Ty, Reg Mask, Reg Src) {
  // dst = Mask ? Src : dst.
  B.vblend(Dst, Ty, Mask, Src, Dst);
}

// --- Expression evaluation ----------------------------------------------===//

void VectorEmitter::evalCond(const Expr *E, Reg WriteMask, Reg DestK) {
  if (E->Kind == ExprKind::LogicalAnd) {
    evalCond(E->Lhs, WriteMask, DestK);
    evalCond(E->Rhs, DestK, DestK);
    return;
  }
  if (E->Kind != ExprKind::Compare)
    fatalError("vector condition must be a comparison or logical-and");

  // Operand loads are masked by the lanes under test.
  Reg Saved = CurMask;
  CurMask = WriteMask;
  Reg L = evalVec(E->Lhs);
  Reg R = evalVec(E->Rhs);
  CurMask = Saved;

  ElemType Ty = laneType(E->Lhs->Type);
  B.vcmp(DestK, E->Cmp, Ty, L, R, WriteMask);
  releaseIfScratch(R);
  releaseIfScratch(L);
}

Reg VectorEmitter::emitArrayLoad(const Expr *E) {
  const ArrayParam &A = F.array(E->ArrayId);
  ElemType Ty = laneType(A.Elem);
  uint8_t Scale = static_cast<uint8_t>(elemSize(A.Elem));
  std::optional<pdg::AffineSubscript> Aff = pdg::matchAffine(E->Index);

  bool Spec = isSpeculativeLoadSite(CurrentStmtId) && Opts.UseFirstFaulting;
  Reg T = acquireVec();

  if (!Spec) {
    if (Aff) {
      B.vload(T, Ty, CurMask, arrayBaseReg(E->ArrayId), inductionReg(), Scale,
              Aff->Offset * Scale);
    } else {
      Reg Idx = evalVec(E->Index);
      B.vgather(T, Ty, CurMask, arrayBaseReg(E->ArrayId), Idx, Scale, 0);
      releaseIfScratch(Idx);
    }
    return T;
  }

  // First-faulting sequence (Section 4.1): copy the current predicate into
  // a writable mask, load, and bail to the scalar fallback if the returned
  // mask was clipped by a speculative fault.
  assert(Opts.HasFaultBail && "speculative load without a bail-out target");
  assert(!(CurMask == kScratch()) && !(CurMask == kSafe()) &&
         "FF sequence would clobber its own mask");
  B.kmov(kScratch(), CurMask).Comment = "FF mask <- current predicate";
  if (Aff) {
    B.vmovff(T, Ty, kScratch(), arrayBaseReg(E->ArrayId), inductionReg(),
             Scale, Aff->Offset * Scale);
  } else {
    Reg Idx = evalVec(E->Index);
    B.vgatherff(T, Ty, kScratch(), arrayBaseReg(E->ArrayId), Idx, Scale, 0);
    releaseIfScratch(Idx);
  }
  B.kbinOp(Opcode::KXor, kSafe(), kScratch(), CurMask);
  Reg Chk = Reg::scalar(25);
  B.ktest(Chk, kSafe());
  B.brNonZero(Chk, Opts.FaultBail).Comment =
      "speculative fault: fall back to scalar";
  return T;
}

Reg VectorEmitter::evalVec(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::ConstInt: {
    Reg Pooled = constantReg(IntTy, E->IntValue);
    if (Pooled.isValid())
      return Pooled;
    Reg T = acquireVec();
    B.vbroadcastImm(T, IntTy, E->IntValue);
    return T;
  }
  case ExprKind::ConstFloat: {
    int64_t Bits;
    if (FloatTy == ElemType::F32) {
      float V = static_cast<float>(E->FloatValue);
      uint32_t B32;
      std::memcpy(&B32, &V, 4);
      Bits = B32;
    } else {
      std::memcpy(&Bits, &E->FloatValue, 8);
    }
    Reg Pooled = constantReg(FloatTy, Bits);
    if (Pooled.isValid())
      return Pooled;
    Reg T = acquireVec();
    B.vbroadcastImm(T, FloatTy, Bits);
    return T;
  }
  case ExprKind::ScalarRef:
    return scalarVecReg(E->ScalarId);
  case ExprKind::IndexRef:
    return indexVec();
  case ExprKind::ArrayRef:
    return emitArrayLoad(E);
  case ExprKind::Binary: {
    Reg L = evalVec(E->Lhs);
    Reg R = evalVec(E->Rhs);
    releaseIfScratch(R);
    releaseIfScratch(L);
    Reg T = acquireVec();
    ElemType Ty = laneType(E->Type);
    Opcode Op = Opcode::VAdd;
    if (isFloatType(E->Type)) {
      switch (E->Op) {
      case BinOp::Add:
        Op = Opcode::VFAdd;
        break;
      case BinOp::Sub:
        Op = Opcode::VFSub;
        break;
      case BinOp::Mul:
        Op = Opcode::VFMul;
        break;
      case BinOp::Div:
        Op = Opcode::VFDiv;
        break;
      case BinOp::Min:
        Op = Opcode::VFMin;
        break;
      case BinOp::Max:
        Op = Opcode::VFMax;
        break;
      default:
        fatalError("bitwise operator on float lanes");
      }
    } else {
      switch (E->Op) {
      case BinOp::Add:
        Op = Opcode::VAdd;
        break;
      case BinOp::Sub:
        Op = Opcode::VSub;
        break;
      case BinOp::Mul:
        Op = Opcode::VMul;
        break;
      case BinOp::And:
        Op = Opcode::VAnd;
        break;
      case BinOp::Or:
        Op = Opcode::VOr;
        break;
      case BinOp::Xor:
        Op = Opcode::VXor;
        break;
      case BinOp::Min:
        Op = Opcode::VMin;
        break;
      case BinOp::Max:
        Op = Opcode::VMax;
        break;
      case BinOp::Shl:
      case BinOp::Shr:
      case BinOp::Div:
        fatalError("vector shift/divide on integer lanes is unsupported");
      }
    }
    B.vbinOp(Op, Ty, T, L, R);
    return T;
  }
  case ExprKind::Compare:
  case ExprKind::LogicalAnd:
    fatalError("boolean expression used as a vector value");
  }
  unreachable("unknown expr kind");
}

// --- Statements ----------------------------------------------------------===//

void VectorEmitter::emitStmtList(const std::vector<Stmt *> &Stmts,
                                 RegionCtx &Ctx) {
  for (const Stmt *S : Stmts)
    emitStmt(S, Ctx);
}

void VectorEmitter::emitStmt(const Stmt *S, RegionCtx &Ctx) {
  CurrentStmtId = S->Id;
  switch (S->Kind) {
  case StmtKind::AssignScalar:
    emitAssign(S, Ctx);
    return;
  case StmtKind::StoreArray:
    emitStore(S, Ctx);
    return;
  case StmtKind::If:
    emitIf(S, Ctx);
    return;
  case StmtKind::Break:
    // Break effects (flag, k_loop clipping) are produced by
    // emitEarlyExitGuard when it processes the guard; nothing to do here.
    return;
  }
}

void VectorEmitter::emitAssign(const Stmt *S, RegionCtx &Ctx) {
  int Id = S->ScalarId;
  ElemType Ty = laneType(F.scalar(Id).Type);

  // Reduction accumulators.
  if (const analysis::ReductionInfo *R = reductionOf(Id)) {
    Reg Acc = scalarVecReg(Id);
    if (S->Value->Kind == ExprKind::Binary) {
      const Expr *V = S->Value;
      bool LhsIsS =
          V->Lhs->Kind == ExprKind::ScalarRef && V->Lhs->ScalarId == Id;
      bool RhsIsS =
          V->Rhs->Kind == ExprKind::ScalarRef && V->Rhs->ScalarId == Id;
      if (LhsIsS || RhsIsS) {
        // Direct form s = s <op> e.
        Reg E = evalVec(LhsIsS ? V->Rhs : V->Lhs);
        Opcode Op = Opcode::VAdd;
        bool Fp = isFloatType(Ty);
        switch (R->Kind) {
        case ReductionKind::Add:
          Op = Fp ? Opcode::VFAdd : Opcode::VAdd;
          break;
        case ReductionKind::Min:
          Op = Fp ? Opcode::VFMin : Opcode::VMin;
          break;
        case ReductionKind::Max:
          Op = Fp ? Opcode::VFMax : Opcode::VMax;
          break;
        }
        B.vbinOp(Op, Ty, Acc, Acc, E, CurMask).Comment = S->str(F);
        releaseIfScratch(E);
        return;
      }
    }
    // Guarded form (if (e < s) s = e): masked move into the accumulator.
    Reg V = evalVec(S->Value);
    emitMaskedMove(Acc, Ty, CurMask, V);
    releaseIfScratch(V);
    return;
  }

  // Conditional-update targets inside a VPL: capture the value and mark the
  // updating lanes; the commit happens in the VPL tail (Section 4.2).
  if (Ctx.InCondVpl) {
    for (size_t U = 0; U < Ctx.Vpl->Updates.size(); ++U) {
      if (Ctx.Vpl->Updates[U].UpdateNode != S->Id)
        continue;
      Reg V = evalVec(S->Value);
      B.vblend(Ctx.UpdateVals[U], Ty, kAll(), V, V).Comment =
          S->str(F) + " (captured update value)";
      releaseIfScratch(V);
      B.kbinOp(Opcode::KOr, kStop(), kStop(), CurMask).Comment =
          "k_stop |= updating lanes";
      return;
    }
  }

  // Early-exit commit region: propagate with VPSLCTLAST (Section 4.1).
  if (Ctx.InExitRegion) {
    Reg V = evalVec(S->Value);
    bool UsedInLoop = false;
    F.forEachStmt(
        [&](const Stmt *T) { UsedInLoop |= stmtReadsScalar(T, Id); });
    if (!UsedInLoop) {
      B.vslctlast(scalarVecReg(Id), Ty, CurMask, V).Comment =
          S->str(F) + " (broadcast at exit lane)";
    } else {
      Reg Tmp = acquireVec();
      B.vslctlast(Tmp, Ty, CurMask, V);
      B.vblend(scalarVecReg(Id), Ty, Ctx.ExitRemMask, Tmp, scalarVecReg(Id))
          .Comment = S->str(F) + " (selective forward broadcast)";
      releaseVec(Tmp);
    }
    releaseIfScratch(V);
    return;
  }

  if (Classes[Id] == ScalarClass::Committed && !Ctx.StraightlineOnly)
    fatalError("committed scalar '" + F.scalar(Id).Name +
               "' assigned outside its VPL/exit region");

  // Scalar-expanded temporary.
  Reg V = evalVec(S->Value);
  emitMaskedMove(scalarVecReg(Id), Ty, CurMask, V);
  releaseIfScratch(V);
}

void VectorEmitter::emitStore(const Stmt *S, RegionCtx &Ctx) {
  if (Ctx.InCondVpl)
    fatalError("array store inside a conditional-update region is "
               "unsupported (stores must be delayed past mask validation)");
  const ArrayParam &A = F.array(S->ArrayId);
  ElemType Ty = laneType(A.Elem);
  uint8_t Scale = static_cast<uint8_t>(elemSize(A.Elem));
  Reg V = evalVec(S->Value);
  std::optional<pdg::AffineSubscript> Aff = pdg::matchAffine(S->Index);
  if (Aff) {
    B.vstore(Ty, CurMask, arrayBaseReg(S->ArrayId), inductionReg(), Scale,
             Aff->Offset * Scale, V)
        .Comment = S->str(F);
  } else {
    Reg Idx = evalVec(S->Index);
    B.vscatter(Ty, CurMask, arrayBaseReg(S->ArrayId), Idx, Scale, 0, V)
        .Comment = S->str(F);
    releaseIfScratch(Idx);
  }
  releaseIfScratch(V);
}

void VectorEmitter::emitIf(const Stmt *S, RegionCtx &Ctx) {
  if (!Ctx.StraightlineOnly) {
    if (const EarlyExitInfo *EE = earlyExitAt(S)) {
      emitEarlyExitGuard(S, *EE);
      return;
    }
  }
  if (IfDepth >= 2)
    fatalError("if-conversion nesting deeper than 2 exceeds the mask "
               "register budget");
  Reg KT = IfDepth == 0 ? kIf0() : kIf1();
  ++IfDepth;
  Reg Parent = CurMask;
  evalCond(S->Cond, Parent, KT);
  CurMask = KT;
  emitStmtList(S->Then, Ctx);
  if (!S->Else.empty()) {
    // KT = ~KT & Parent — the false region of the parent predicate.
    B.kbinOp(Opcode::KAndN, KT, KT, Parent).Comment =
        "S" + std::to_string(S->Id) + ": else region";
    emitStmtList(S->Else, Ctx);
  }
  CurMask = Parent;
  --IfDepth;
}

// --- Early loop termination (Section 4.1) --------------------------------===//

void VectorEmitter::emitEarlyExitGuard(const Stmt *Guard,
                                       const EarlyExitInfo &EE) {
  assert(CurMask == kLoop() && "early-exit guard must be at top level");
  // k2 = lanes that want to exit.
  evalCond(Guard->Cond, kLoop(), kIf0());
  if (EE.BreakInElse)
    B.kbinOp(Opcode::KAndN, kIf0(), kIf0(), kLoop()).Comment =
        "exit lanes are the guard's false region";

  // k6 = lanes through the first exiting lane (KFTM.INC).
  B.kftmInc(kSafe(), IntTy, kLoop(), kIf0()).Comment =
      "S" + std::to_string(Guard->Id) + ": lanes through first exit";
  // k7 = the first exiting lane only.
  B.kbinOp(Opcode::KAnd, kScratch(), kIf0(), kSafe());

  // Break flag.
  Reg T = Reg::scalar(25);
  B.ktest(T, kIf0());
  B.binOp(Opcode::Or, breakFlag(), breakFlag(), T).Comment =
      "record early exit";

  // k3 = lanes at/after the first exiting lane (selective broadcast mask).
  B.kbinOp(Opcode::KAndN, kIf1(), kSafe(), kLoop());
  B.kbinOp(Opcode::KOr, kIf1(), kIf1(), kScratch());

  // Clip k_loop: only lanes strictly before the first exit keep executing.
  B.kbinOp(Opcode::KAndN, kLoop(), kIf0(), kSafe()).Comment =
      "k_loop &= lanes before first exit";

  // Commit region: statements sharing the region with the break, executed
  // for the first exiting lane only. Skipped entirely when no lane exits
  // (VPSLCTLAST with an empty mask would select the last lane).
  const std::vector<Stmt *> &ExitRegion =
      EE.BreakInElse ? Guard->Else : Guard->Then;
  const std::vector<Stmt *> &ContRegion =
      EE.BreakInElse ? Guard->Then : Guard->Else;

  ProgramBuilder::Label SkipCommit = B.createLabel();
  B.brZero(T, SkipCommit).Comment = "no lane exits: skip commit region";
  RegionCtx ExitCtx;
  ExitCtx.InExitRegion = true;
  ExitCtx.ExitRemMask = kIf1();
  Reg Saved = CurMask;
  CurMask = kScratch();
  for (const Stmt *S : ExitRegion) {
    if (S->Kind == StmtKind::Break)
      continue;
    if (S->Kind == StmtKind::If)
      fatalError("nested control flow inside an early-exit commit region "
                 "is unsupported");
    emitStmt(S, ExitCtx);
  }
  CurMask = Saved;
  B.bind(SkipCommit);

  // Continue region: lanes before the first exit (already equal to the
  // clipped k_loop).
  RegionCtx ContCtx;
  CurMask = kLoop();
  emitStmtList(ContRegion, ContCtx);
}

// --- Conditional scalar update VPL (Section 4.2) -------------------------===//

void VectorEmitter::emitCondUpdateVpl(const CondUpdateVpl &Vpl) {
  // All updates must share one innermost guard so a single k_stop commit
  // lane is correct for every update.
  for (size_t U = 1; U < Vpl.Updates.size(); ++U)
    if (Vpl.Updates[U].GuardNode != Vpl.Updates[0].GuardNode)
      fatalError("conditional updates under distinct guards in one VPL are "
                 "unsupported");

  RegionCtx Ctx;
  Ctx.InCondVpl = true;
  Ctx.Vpl = &Vpl;
  for (size_t U = 0; U < Vpl.Updates.size(); ++U)
    Ctx.UpdateVals.push_back(acquireVec());

  B.kmov(kTodo(), kLoop()).Comment = "k_todo = unprocessed lanes";

  ProgramBuilder::Label VplTop = B.createLabel();
  ProgramBuilder::Label SkipCommit = B.createLabel();
  B.bind(VplTop);
  B.kset(kStop(), 0).Comment = "VPL: clear updating-lane mask";

  // Phase A: evaluate the enclosed statements under k_todo; updates are
  // captured, not committed.
  Reg Saved = CurMask;
  CurMask = kTodo();
  for (int I = Vpl.FirstTop; I <= Vpl.LastTop; ++I)
    emitStmt(F.body()[I], Ctx);
  CurMask = Saved;

  // k_safe = lanes through the first updating lane (KFTM.INC).
  B.kftmInc(kSafe(), IntTy, kTodo(), kStop()).Comment =
      "k_safe = lanes through first update";

  Reg T = Reg::scalar(25);
  B.ktest(T, kStop());
  B.brZero(T, SkipCommit).Comment = "no update fired";

  // Commit: k3 = the committing lane (first updater); k7 = current and
  // succeeding lanes (k_rem).
  B.kbinOp(Opcode::KAnd, kIf1(), kStop(), kSafe()).Comment =
      "commit lane (first updater)";
  B.kbinOp(Opcode::KAndN, kScratch(), kSafe(), kTodo());
  B.kbinOp(Opcode::KOr, kScratch(), kScratch(), kIf1()).Comment =
      "k_rem = lanes at/after the update";

  for (size_t U = 0; U < Vpl.Updates.size(); ++U) {
    const analysis::CondUpdateScalar &Upd = Vpl.Updates[U];
    ElemType Ty = laneType(F.scalar(Upd.ScalarId).Type);
    if (!Upd.UsedAfterUpdate) {
      // Simple broadcast (Figure 4 line 91): VPSLCTLAST straight into the
      // scalar's vector image.
      B.vslctlast(scalarVecReg(Upd.ScalarId), Ty, kIf1(), Ctx.UpdateVals[U])
          .Comment = F.scalar(Upd.ScalarId).Name + " <- committed update";
    } else {
      // Selective forward broadcast (Figure 4 line 89): preserve values in
      // lanes preceding the update.
      Reg Tmp = acquireVec();
      B.vslctlast(Tmp, Ty, kIf1(), Ctx.UpdateVals[U]);
      B.vblend(scalarVecReg(Upd.ScalarId), Ty, kScratch(), Tmp,
               scalarVecReg(Upd.ScalarId))
          .Comment =
          F.scalar(Upd.ScalarId).Name + " <- selective forward broadcast";
      releaseVec(Tmp);
    }
  }

  B.bind(SkipCommit);
  // Retire the safely executed lanes and iterate while any remain.
  B.kbinOp(Opcode::KAndN, kTodo(), kSafe(), kTodo()).Comment =
      "k_todo &= ~k_safe";
  B.ktest(T, kTodo());
  B.brNonZero(T, VplTop).Comment = "VPL: re-execute remaining lanes";

  for (Reg R : Ctx.UpdateVals)
    releaseVec(R);
}

// --- Runtime memory dependence VPL (Section 4.3) -------------------------===//

void VectorEmitter::emitMemConflictVpl(const MemConflictVpl &Vpl) {
  B.kmov(kTodo(), kLoop()).Comment = "k_todo = unprocessed lanes";

  // Evaluate the conflicting subscripts once (loop-invariant within the
  // vector iteration; the paper hoists the conflict check out of the VPL).
  Reg Saved = CurMask;
  CurMask = kTodo();
  Reg StoreIdx = evalVec(Vpl.StoreIndex);
  B.kset(kStop(), 0);
  for (const Expr *LoadIdx : Vpl.LoadIndices) {
    Reg L = LoadIdx == Vpl.StoreIndex ? StoreIdx : evalVec(LoadIdx);
    B.vconflictm(kScratch(), IntTy, kTodo(), L, StoreIdx).Comment =
        "detect read-after-write lanes";
    B.kbinOp(Opcode::KOr, kStop(), kStop(), kScratch());
    if (!(L == StoreIdx))
      releaseIfScratch(L);
  }
  CurMask = Saved;
  releaseIfScratch(StoreIdx);

  ProgramBuilder::Label VplTop = B.createLabel();
  B.bind(VplTop);
  // k_safe = unprocessed lanes up to (not including) the next conflict; a
  // conflict at the leading remaining lane no longer waits.
  B.kftmExc(kSafe(), IntTy, kTodo(), kStop()).Comment =
      "k_safe = lanes safe to execute";

  RegionCtx Ctx;
  CurMask = kSafe();
  for (int I = Vpl.FirstTop; I <= Vpl.LastTop; ++I)
    emitStmt(F.body()[I], Ctx);
  CurMask = Saved;

  Reg T = Reg::scalar(25);
  B.kbinOp(Opcode::KAndN, kTodo(), kSafe(), kTodo()).Comment =
      "k_todo &= ~k_safe";
  B.kbinOp(Opcode::KAnd, kStop(), kStop(), kTodo());
  B.ktest(T, kStop());
  B.brNonZero(T, VplTop).Comment = "VPL: serialize dependent lanes";
}

// --- Chunk framing --------------------------------------------------------===//

void VectorEmitter::emitPreheader() {
  B.movImm(inductionReg(), 0).Comment = "i = 0";
  B.movImm(breakFlag(), 0);
  for (const auto &[Ty, Bits, R] : ConstPool)
    B.vbroadcastImm(R, Ty, Bits).Comment = "constant pool";
  for (size_t S = 0; S < F.scalars().size(); ++S) {
    ElemType Ty = laneType(F.scalar(S).Type);
    switch (Classes[S]) {
    case ScalarClass::Invariant: {
      // Broadcast only scalars the body actually reads.
      bool Used = false;
      F.forEachStmt([&](const Stmt *St) {
        Used |= stmtReadsScalar(St, static_cast<int>(S));
      });
      if (Used)
        B.vbroadcast(scalarVecReg(static_cast<int>(S)), Ty,
                     scalarParamReg(static_cast<int>(S)))
            .Comment = "broadcast invariant " + F.scalar(S).Name;
      break;
    }
    case ScalarClass::Reduction: {
      const analysis::ReductionInfo *R = reductionOf(static_cast<int>(S));
      assert(R && "reduction class without reduction info");
      if (R->Kind == ReductionKind::Add) {
        B.vbroadcastImm(scalarVecReg(static_cast<int>(S)), Ty, 0).Comment =
            "zero accumulator for " + F.scalar(S).Name;
      } else {
        B.vbroadcast(scalarVecReg(static_cast<int>(S)), Ty,
                     scalarParamReg(static_cast<int>(S)))
            .Comment = "seed min/max accumulator for " + F.scalar(S).Name;
      }
      break;
    }
    case ScalarClass::Committed:
    case ScalarClass::Temp:
      break; // Committed scalars broadcast per chunk; temps defined in-loop.
    }
  }
}

void VectorEmitter::emitPredicatedHead(Reg HeadTemp, Reg BoundReg,
                                       ProgramBuilder::Label ExitTo) {
  B.kwhilelt(kLoop(), IntTy, inductionReg(), BoundReg).Comment =
      "k_loop = whilelt(i, bound)";
  B.ktest(HeadTemp, kLoop());
  B.brZero(HeadTemp, ExitTo);
}

void VectorEmitter::emitChunkProlog(Reg BoundReg) {
  B.vindex(indexVec(), IntTy, inductionReg()).Comment = "v_i = i + lane";
  if (!Opts.Predicated) {
    Reg Bound = acquireVec();
    B.vbroadcast(Bound, IntTy, BoundReg);
    B.vcmp(kLoop(), CmpKind::LT, IntTy, indexVec(), Bound).Comment =
        "k_loop = v_i < bound";
    releaseVec(Bound);
  }
  for (size_t S = 0; S < F.scalars().size(); ++S)
    if (Classes[S] == ScalarClass::Committed)
      B.vbroadcast(scalarVecReg(static_cast<int>(S)),
                   laneType(F.scalar(S).Type),
                   scalarParamReg(static_cast<int>(S)))
          .Comment = "re-broadcast " + F.scalar(S).Name;
}

void VectorEmitter::emitSpecCondCheck(const Expr *Cond, Reg FlagReg) {
  evalCond(Cond, kLoop(), kIf0());
  Reg T = Reg::scalar(25);
  B.ktest(T, kIf0());
  B.binOp(Opcode::Or, FlagReg, FlagReg, T).Comment =
      "speculation check: dependence condition may fire";
}

void VectorEmitter::emitSpecConflictCheck(const MemConflictVpl &Vpl,
                                          Reg FlagReg) {
  Reg Saved = CurMask;
  CurMask = kLoop();
  Reg StoreIdx = evalVec(Vpl.StoreIndex);
  Reg T = Reg::scalar(25);
  for (const Expr *LoadIdx : Vpl.LoadIndices) {
    Reg L = LoadIdx == Vpl.StoreIndex ? StoreIdx : evalVec(LoadIdx);
    B.vconflictm(kIf0(), IntTy, kLoop(), L, StoreIdx).Comment =
        "speculation check: memory conflict";
    B.ktest(T, kIf0());
    B.binOp(Opcode::Or, FlagReg, FlagReg, T);
    if (!(L == StoreIdx))
      releaseIfScratch(L);
  }
  releaseIfScratch(StoreIdx);
  CurMask = Saved;
}

void VectorEmitter::emitStraightlineTopLevel(const Stmt *S) {
  CurMask = kLoop();
  RegionCtx Ctx;
  Ctx.StraightlineOnly = true;
  emitStmt(S, Ctx);
}

void VectorEmitter::emitBody() {
  CurMask = kLoop();
  const std::vector<Stmt *> &Body = F.body();
  if (Opts.StraightlineOnly) {
    // Speculative mode: plain if-conversion; relaxed dependences are
    // guaranteed (by the caller's up-front checks) not to fire.
    RegionCtx Ctx;
    Ctx.StraightlineOnly = true;
    emitStmtList(Body, Ctx);
    return;
  }
  size_t I = 0;
  while (I < Body.size()) {
    bool Handled = false;
    for (const auto &V : Plan.CondUpdateVpls) {
      if (static_cast<int>(I) == V.FirstTop) {
        emitCondUpdateVpl(V);
        I = static_cast<size_t>(V.LastTop) + 1;
        Handled = true;
        break;
      }
    }
    if (Handled)
      continue;
    for (const auto &V : Plan.MemConflictVpls) {
      if (static_cast<int>(I) == V.FirstTop) {
        emitMemConflictVpl(V);
        I = static_cast<size_t>(V.LastTop) + 1;
        Handled = true;
        break;
      }
    }
    if (Handled)
      continue;
    RegionCtx Ctx;
    emitStmt(Body[I], Ctx);
    ++I;
  }
}

void VectorEmitter::emitChunkEpilog() {
  for (size_t S = 0; S < F.scalars().size(); ++S)
    if (Classes[S] == ScalarClass::Committed)
      B.vextractLast(scalarParamReg(static_cast<int>(S)),
                     laneType(F.scalar(S).Type), kAll(),
                     scalarVecReg(static_cast<int>(S)))
          .Comment = "sync " + F.scalar(S).Name + " to scalar";
  B.binOpImm(Opcode::AddImm, inductionReg(), inductionReg(),
             static_cast<int64_t>(VL))
      .Comment = "i += VL";
}

void VectorEmitter::emitLiveOuts() {
  for (const auto &R : Plan.Reductions) {
    if (!F.scalar(R.ScalarId).IsLiveOut)
      continue;
    ElemType Ty = laneType(F.scalar(R.ScalarId).Type);
    Opcode Op = Opcode::VReduceAdd;
    switch (R.Kind) {
    case ReductionKind::Add:
      Op = Opcode::VReduceAdd;
      break;
    case ReductionKind::Min:
      Op = Opcode::VReduceMin;
      break;
    case ReductionKind::Max:
      Op = Opcode::VReduceMax;
      break;
    }
    B.vreduce(Op, Ty, scalarParamReg(R.ScalarId), kAll(),
              scalarVecReg(R.ScalarId), scalarParamReg(R.ScalarId))
        .Comment = "final reduce of " + F.scalar(R.ScalarId).Name;
  }
}
