//===- emu/simd/SimdAvx512.cpp - AVX-512 kernel table ---------------------===//
//
// Compiles the shared kernel bodies at -mavx512f/bw/dq/vl (set per-file
// by CMake when the compiler supports it); 64-byte GNU vectors lower to
// single 512-bit operations matching the guest register width. If the
// flags are unavailable the table degrades to the scalar reference and
// avx512Compiled() reports it.
//
//===----------------------------------------------------------------------===//

#include "emu/simd/Kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#define FLEXVEC_SIMD_NS avx512impl
#include "emu/simd/KernelsImpl.inc"
#undef FLEXVEC_SIMD_NS

namespace flexvec {
namespace emu {
namespace simd {
const KernelTable &avx512Kernels() {
  static const KernelTable T = avx512impl::buildTable();
  return T;
}
bool avx512Compiled() { return true; }
} // namespace simd
} // namespace emu
} // namespace flexvec

#else // !AVX-512

namespace flexvec {
namespace emu {
namespace simd {
const KernelTable &avx512Kernels() { return scalarKernels(); }
bool avx512Compiled() { return false; }
} // namespace simd
} // namespace emu
} // namespace flexvec

#endif
