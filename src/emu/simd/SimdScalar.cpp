//===- emu/simd/SimdScalar.cpp - Reference lane-loop kernel table ---------===//
//
// The scalar backend: every kernel is the literal per-lane loop the
// monolithic Interp.inc handlers executed, written against raw register
// bytes with the exact VecReg extension/truncation rules (isa/LaneTraits.h)
// and the exact arithmetic of the retired applyVector{Int,Fp}Op helpers.
// This table is the semantic anchor the SIMD backends are differentially
// tested against — it deliberately shares no implementation with
// KernelsImpl.inc, so a bug in the vector-extension code cannot hide.
//
//===----------------------------------------------------------------------===//

#include "emu/simd/Kernels.h"

#include <algorithm>
#include <cstring>

using namespace flexvec;
using namespace flexvec::emu::simd;
using isa::CmpKind;
using isa::ElemType;

namespace {

inline bool bit(uint64_t M, unsigned L) { return (M >> L) & 1; }

/// VecReg::laneInt, on raw bytes: I32 sign-extends, F32 zero-extends,
/// 8-byte types are identity.
inline int64_t laneGet(ElemType Ty, const uint8_t *P, unsigned L) {
  switch (Ty) {
  case ElemType::I32: {
    int32_t V;
    std::memcpy(&V, P + L * 4, 4);
    return V;
  }
  case ElemType::F32: {
    uint32_t V;
    std::memcpy(&V, P + L * 4, 4);
    return static_cast<int64_t>(V);
  }
  default: {
    int64_t V;
    std::memcpy(&V, P + L * 8, 8);
    return V;
  }
  }
}

/// VecReg::setLaneInt: 4-byte lanes truncate.
inline void laneSet(ElemType Ty, uint8_t *P, unsigned L, int64_t V) {
  if (isa::laneBytes(Ty) == 4) {
    uint32_t W = static_cast<uint32_t>(V);
    std::memcpy(P + L * 4, &W, 4);
  } else {
    std::memcpy(P + L * 8, &V, 8);
  }
}

/// VecReg::laneFloat: F32 lanes widen to double.
inline double laneGetF(ElemType Ty, const uint8_t *P, unsigned L) {
  if (Ty == ElemType::F32) {
    float V;
    std::memcpy(&V, P + L * 4, 4);
    return V;
  }
  double V;
  std::memcpy(&V, P + L * 8, 8);
  return V;
}

/// VecReg::setLaneFloat: F32 lanes narrow from double.
inline void laneSetF(ElemType Ty, uint8_t *P, unsigned L, double V) {
  if (Ty == ElemType::F32) {
    float F = static_cast<float>(V);
    std::memcpy(P + L * 4, &F, 4);
  } else {
    std::memcpy(P + L * 8, &V, 8);
  }
}

/// Element wrap of the retired applyVectorIntOp helper.
inline int64_t wrap(bool Is32, int64_t X) {
  return Is32 ? static_cast<int64_t>(static_cast<int32_t>(X)) : X;
}

enum class IOp { Add, Sub, Mul, And, Or, Xor, Min, Max };
enum class MOp { AddImm, MulImm, ShlImm };
enum class FOp { Add, Sub, Mul, Div, Min, Max };

template <IOp Op> inline int64_t intOp(bool Is32, int64_t Va, int64_t Vb) {
  switch (Op) {
  case IOp::Add:
    return wrap(Is32, static_cast<int64_t>(static_cast<uint64_t>(Va) +
                                           static_cast<uint64_t>(Vb)));
  case IOp::Sub:
    return wrap(Is32, static_cast<int64_t>(static_cast<uint64_t>(Va) -
                                           static_cast<uint64_t>(Vb)));
  case IOp::Mul:
    return wrap(Is32, static_cast<int64_t>(static_cast<uint64_t>(Va) *
                                           static_cast<uint64_t>(Vb)));
  case IOp::And:
    return Va & Vb;
  case IOp::Or:
    return Va | Vb;
  case IOp::Xor:
    return Va ^ Vb;
  case IOp::Min:
    return std::min(Va, Vb);
  case IOp::Max:
    return std::max(Va, Vb);
  }
  return 0;
}

template <FOp Op> inline double fpOp(double Va, double Vb) {
  switch (Op) {
  case FOp::Add:
    return Va + Vb;
  case FOp::Sub:
    return Va - Vb;
  case FOp::Mul:
    return Va * Vb;
  case FOp::Div:
    return Va / Vb;
  case FOp::Min:
    return std::min(Va, Vb);
  case FOp::Max:
    return std::max(Va, Vb);
  }
  return 0;
}

template <IOp Op, ElemType Ty>
void intBinRef(uint8_t *Dst, const uint8_t *A, const uint8_t *B,
               uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  constexpr bool Is32 = isa::laneBytes(Ty) == 4;
  for (unsigned L = 0; L < Lanes; ++L)
    if (bit(Mask, L))
      laneSet(Ty, Dst, L, intOp<Op>(Is32, laneGet(Ty, A, L),
                                    laneGet(Ty, B, L)));
}

template <MOp Op, ElemType Ty>
void intImmRef(uint8_t *Dst, const uint8_t *A, int64_t Imm, uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  constexpr bool Is32 = isa::laneBytes(Ty) == 4;
  for (unsigned L = 0; L < Lanes; ++L) {
    if (!bit(Mask, L))
      continue;
    const int64_t Va = laneGet(Ty, A, L);
    int64_t R;
    if (Op == MOp::AddImm)
      R = intOp<IOp::Add>(Is32, Va, Imm);
    else if (Op == MOp::MulImm)
      R = intOp<IOp::Mul>(Is32, Va, Imm);
    else
      R = wrap(Is32, static_cast<int64_t>(static_cast<uint64_t>(Va)
                                          << (static_cast<uint64_t>(Imm) &
                                              63)));
    laneSet(Ty, Dst, L, R);
  }
}

/// Raw lane bits, for the paths that must never launder a value through an
/// FP register or conversion (min/max selection, operand-NaN delivery).
inline uint64_t laneBits(ElemType Ty, const uint8_t *P, unsigned L) {
  if (Ty == ElemType::F32) {
    uint32_t V;
    std::memcpy(&V, P + L * 4, 4);
    return V;
  }
  uint64_t V;
  std::memcpy(&V, P + L * 8, 8);
  return V;
}
inline void setLaneBits(ElemType Ty, uint8_t *P, unsigned L, uint64_t V) {
  if (Ty == ElemType::F32) {
    const uint32_t W = static_cast<uint32_t>(V);
    std::memcpy(P + L * 4, &W, 4);
  } else {
    std::memcpy(P + L * 8, &V, 8);
  }
}

// FP NaN convention, pinned bit-exactly so every backend can match it:
//  - min/max select one operand's RAW bits on the widened-double compare
//    (NaN compares false, so the first operand wins); no lane is rounded
//    or quieted, a signaling-NaN operand passes through untouched.
//  - add/sub/mul/div with a NaN operand deliver that operand's payload
//    with the quiet bit forced on, the FIRST operand winning when both
//    are NaN (x86's src1 rule; hardware applies it to whichever operand
//    order the compiler emitted, so it is made explicit here instead).
//  - generated NaNs (inf-inf, 0*inf, 0/0, neither operand NaN) take the
//    ordinary arithmetic result: the hardware indefinite, identical
//    computed in float or narrowed from double.
template <FOp Op, ElemType Ty>
void fpBinRef(uint8_t *Dst, const uint8_t *A, const uint8_t *B,
              uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  constexpr bool IsSelect = Op == FOp::Min || Op == FOp::Max;
  constexpr uint64_t QBit =
      Ty == ElemType::F32 ? 0x00400000ull : 1ull << 51;
  for (unsigned L = 0; L < Lanes; ++L) {
    if (!bit(Mask, L))
      continue;
    const double Va = laneGetF(Ty, A, L), Vb = laneGetF(Ty, B, L);
    if (IsSelect) {
      const bool TakeB = Op == FOp::Min ? Vb < Va : Va < Vb;
      setLaneBits(Ty, Dst, L, laneBits(Ty, TakeB ? B : A, L));
    } else if (Va != Va) {
      setLaneBits(Ty, Dst, L, laneBits(Ty, A, L) | QBit);
    } else if (Vb != Vb) {
      setLaneBits(Ty, Dst, L, laneBits(Ty, B, L) | QBit);
    } else {
      laneSetF(Ty, Dst, L, fpOp<Op>(Va, Vb));
    }
  }
}

template <CmpKind C, ElemType Ty>
uint64_t cmpIntRef(const uint8_t *A, const uint8_t *B, uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  uint64_t Out = 0;
  for (unsigned L = 0; L < Lanes; ++L)
    if (bit(Mask, L) && isa::evalCmp(C, laneGet(Ty, A, L), laneGet(Ty, B, L)))
      Out |= 1ULL << L;
  return Out;
}

template <CmpKind C, ElemType Ty>
uint64_t cmpImmIntRef(const uint8_t *A, int64_t Imm, uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  uint64_t Out = 0;
  for (unsigned L = 0; L < Lanes; ++L)
    if (bit(Mask, L) && isa::evalCmp(C, laneGet(Ty, A, L), Imm))
      Out |= 1ULL << L;
  return Out;
}

template <CmpKind C, ElemType Ty>
uint64_t cmpFpRef(const uint8_t *A, const uint8_t *B, uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  uint64_t Out = 0;
  for (unsigned L = 0; L < Lanes; ++L)
    if (bit(Mask, L) &&
        isa::evalCmp(C, laneGetF(Ty, A, L), laneGetF(Ty, B, L)))
      Out |= 1ULL << L;
  return Out;
}

template <CmpKind C, ElemType Ty>
uint64_t cmpImmFpRef(const uint8_t *A, int64_t Imm, uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  const double BVal = static_cast<double>(Imm);
  uint64_t Out = 0;
  for (unsigned L = 0; L < Lanes; ++L)
    if (bit(Mask, L) && isa::evalCmp(C, laneGetF(Ty, A, L), BVal))
      Out |= 1ULL << L;
  return Out;
}

template <ElemType Ty>
void blendRef(uint8_t *Dst, const uint8_t *A, const uint8_t *B,
              uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  for (unsigned L = 0; L < Lanes; ++L)
    laneSet(Ty, Dst, L, bit(Mask, L) ? laneGet(Ty, A, L) : laneGet(Ty, B, L));
}

template <ElemType Ty>
void bcastRef(uint8_t *Dst, int64_t Value, uint64_t Mask) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  for (unsigned L = 0; L < Lanes; ++L)
    if (bit(Mask, L))
      laneSet(Ty, Dst, L, Value);
}

template <ElemType Ty> void indexRef(uint8_t *Dst, int64_t Base) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  for (unsigned L = 0; L < Lanes; ++L)
    laneSet(Ty, Dst, L, Base + L);
}

template <ElemType Ty>
uint64_t conflictRef(const uint8_t *V1, const uint8_t *V2, uint64_t Enable) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  uint64_t Out = 0;
  unsigned WindowStart = 0;
  for (unsigned J = 0; J < Lanes; ++J) {
    const int64_t Needle = laneGet(Ty, V1, J);
    for (unsigned Prev = WindowStart; Prev < J; ++Prev) {
      if (!bit(Enable, Prev))
        continue;
      if (laneGet(Ty, V2, Prev) == Needle) {
        Out |= 1ULL << J;
        WindowStart = J;
        break;
      }
    }
  }
  return Out;
}

template <ElemType Ty>
void gatherAddrRef(uint64_t *Addrs, const uint8_t *Idx, uint64_t Base,
                   int64_t Disp, uint8_t Scale) {
  constexpr unsigned Lanes = isa::laneCount(Ty);
  for (unsigned L = 0; L < Lanes; ++L)
    Addrs[L] = Base +
               static_cast<uint64_t>(laneGet(Ty, Idx, L)) * Scale +
               static_cast<uint64_t>(Disp);
}

KernelTable buildScalarTable() {
  KernelTable T{};

#define FV_FOR_TYPES(M, ...)                                                  \
  M(ElemType::I32, 0, __VA_ARGS__)                                            \
  M(ElemType::I64, 1, __VA_ARGS__)                                            \
  M(ElemType::F32, 2, __VA_ARGS__)                                            \
  M(ElemType::F64, 3, __VA_ARGS__)

#define FV_SET_IBIN(TY, TI, SLOT, OP)                                         \
  T.IntBin[SLOT][TI] = intBinRef<IOp::OP, TY>;
  FV_FOR_TYPES(FV_SET_IBIN, 0, Add)
  FV_FOR_TYPES(FV_SET_IBIN, 1, Sub)
  FV_FOR_TYPES(FV_SET_IBIN, 2, Mul)
  FV_FOR_TYPES(FV_SET_IBIN, 3, And)
  FV_FOR_TYPES(FV_SET_IBIN, 4, Or)
  FV_FOR_TYPES(FV_SET_IBIN, 5, Xor)
  FV_FOR_TYPES(FV_SET_IBIN, 6, Min)
  FV_FOR_TYPES(FV_SET_IBIN, 7, Max)
#undef FV_SET_IBIN

#define FV_SET_IIMM(TY, TI, SLOT, OP)                                         \
  T.IntImm[SLOT][TI] = intImmRef<MOp::OP, TY>;
  FV_FOR_TYPES(FV_SET_IIMM, 0, AddImm)
  FV_FOR_TYPES(FV_SET_IIMM, 1, MulImm)
  FV_FOR_TYPES(FV_SET_IIMM, 2, ShlImm)
#undef FV_SET_IIMM

#define FV_SET_FBIN(SLOT, OP)                                                 \
  T.FpBin[SLOT][0] = fpBinRef<FOp::OP, ElemType::F32>;                        \
  T.FpBin[SLOT][1] = fpBinRef<FOp::OP, ElemType::F64>;
  FV_SET_FBIN(0, Add)
  FV_SET_FBIN(1, Sub)
  FV_SET_FBIN(2, Mul)
  FV_SET_FBIN(3, Div)
  FV_SET_FBIN(4, Min)
  FV_SET_FBIN(5, Max)
#undef FV_SET_FBIN

#define FV_SET_CMP(TY, TI, COND)                                              \
  T.CmpInt[static_cast<unsigned>(CmpKind::COND)][TI] =                        \
      cmpIntRef<CmpKind::COND, TY>;                                           \
  T.CmpImmInt[static_cast<unsigned>(CmpKind::COND)][TI] =                     \
      cmpImmIntRef<CmpKind::COND, TY>;
#define FV_SET_CMPF(COND)                                                     \
  T.CmpFp[static_cast<unsigned>(CmpKind::COND)][0] =                          \
      cmpFpRef<CmpKind::COND, ElemType::F32>;                                 \
  T.CmpFp[static_cast<unsigned>(CmpKind::COND)][1] =                          \
      cmpFpRef<CmpKind::COND, ElemType::F64>;                                 \
  T.CmpImmFp[static_cast<unsigned>(CmpKind::COND)][0] =                       \
      cmpImmFpRef<CmpKind::COND, ElemType::F32>;                              \
  T.CmpImmFp[static_cast<unsigned>(CmpKind::COND)][1] =                       \
      cmpImmFpRef<CmpKind::COND, ElemType::F64>;
#define FV_SET_COND(COND)                                                     \
  FV_FOR_TYPES(FV_SET_CMP, COND)                                              \
  FV_SET_CMPF(COND)
  FV_SET_COND(EQ)
  FV_SET_COND(NE)
  FV_SET_COND(LT)
  FV_SET_COND(LE)
  FV_SET_COND(GT)
  FV_SET_COND(GE)
#undef FV_SET_COND
#undef FV_SET_CMPF
#undef FV_SET_CMP

#define FV_SET_MISC(TY, TI, ...)                                              \
  T.Blend[TI] = blendRef<TY>;                                                 \
  T.Broadcast[TI] = bcastRef<TY>;                                             \
  T.Index[TI] = indexRef<TY>;                                                 \
  T.Conflict[TI] = conflictRef<TY>;                                           \
  T.GatherAddr[TI] = gatherAddrRef<TY>;
  FV_FOR_TYPES(FV_SET_MISC, )
#undef FV_SET_MISC
#undef FV_FOR_TYPES

  return T;
}

} // namespace

const KernelTable &emu::simd::scalarKernels() {
  static const KernelTable T = buildScalarTable();
  return T;
}
