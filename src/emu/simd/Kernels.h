//===- emu/simd/Kernels.h - Width-generic lane-kernel layer -----*- C++ -*-===//
//
// Host-SIMD execution of the hot vector handler bodies in emu/Interp.inc.
// A KernelTable is a flat table of function pointers, one slot per
// (operation family, element type) — plus per-CmpKind slots for the
// compare families — that the interpreter indexes per retired vector
// instruction. Three tables exist:
//
//   scalarKernels()  - reference lane loops, bit-for-bit the semantics the
//                      monolithic handlers executed (and still execute for
//                      the paths that stay un-kernelized: reductions,
//                      first-faulting loads, VPL mask ops).
//   avx2Kernels()    - the shared vector-extension implementation
//                      (KernelsImpl.inc) compiled for AVX2 (2x256-bit).
//   avx512Kernels()  - the same implementation compiled for AVX-512
//                      (1x512-bit, full-width guest registers).
//
// Exactness is the contract: every table is observably identical to the
// scalar reference — same result bits, same mask bits, same lane
// extension rules (isa/LaneTraits.h) — which SimdEquivalenceTest enforces
// differentially and docs/PERFORMANCE.md argues analytically (no FMA
// contraction, no reassociation, double rounding innocuous for binary32
// +,-,*,/ computed via binary64).
//
// Kernel calling convention: raw 64-byte register blocks (VecReg::Bytes),
// a resolved 64-bit write mask, and plain integers — no header coupling
// back into the Machine. Kernels read all inputs before writing Dst, so
// Dst may alias either source. Masked-off lanes are preserved in Dst
// (except Blend, which by VBlend semantics writes every lane).
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_EMU_SIMD_KERNELS_H
#define FLEXVEC_EMU_SIMD_KERNELS_H

#include "isa/LaneTraits.h"
#include "isa/Opcode.h"

#include <cstdint>

namespace flexvec {
namespace emu {
namespace simd {

/// Dst[active] = A op B; inactive Dst lanes preserved.
using VecBinFn = void (*)(uint8_t *Dst, const uint8_t *A, const uint8_t *B,
                          uint64_t Mask);
/// Dst[active] = A op Imm (or Imm alone, for broadcasts).
using VecImmFn = void (*)(uint8_t *Dst, const uint8_t *A, int64_t Imm,
                          uint64_t Mask);
/// Returns the compare-result mask restricted to active lanes.
using VecCmpFn = uint64_t (*)(const uint8_t *A, const uint8_t *B,
                              uint64_t Mask);
using VecCmpImmFn = uint64_t (*)(const uint8_t *A, int64_t Imm, uint64_t Mask);
/// Every lane: Dst = Mask[lane] ? A : B (VBlend writes all lanes).
using VecBlendFn = void (*)(uint8_t *Dst, const uint8_t *A, const uint8_t *B,
                            uint64_t Mask);
/// Dst[active] = Value (truncated to the lane width).
using VecBcastFn = void (*)(uint8_t *Dst, int64_t Value, uint64_t Mask);
/// Dst[lane] = Base + lane for every lane (VIndex ignores the mask).
using VecIndexFn = void (*)(uint8_t *Dst, int64_t Base);
/// VConflictM windowed equality scan; returns the conflict mask.
using VecConflictFn = uint64_t (*)(const uint8_t *V1, const uint8_t *V2,
                                   uint64_t Enable);
/// Gather/scatter address generation: Addrs[lane] = Base +
/// laneInt(Idx)*Scale + Disp for every lane (callers use active ones).
using GatherAddrFn = void (*)(uint64_t *Addrs, const uint8_t *Idx,
                              uint64_t Base, int64_t Disp, uint8_t Scale);

/// Slot indices for the contiguous opcode families; the *Idx helpers below
/// map opcodes onto them and static_asserts in Backend.cpp pin the enum
/// layout they rely on.
inline constexpr unsigned NumIntBinOps = 8; ///< VAdd..VMax.
inline constexpr unsigned NumIntImmOps = 3; ///< VAddImm, VMulImm, VShlImm.
inline constexpr unsigned NumFpBinOps = 6;  ///< VFAdd..VFMax.

inline unsigned intBinIdx(isa::Opcode Op) {
  return static_cast<unsigned>(Op) - static_cast<unsigned>(isa::Opcode::VAdd);
}
inline unsigned intImmIdx(isa::Opcode Op) {
  return static_cast<unsigned>(Op) -
         static_cast<unsigned>(isa::Opcode::VAddImm);
}
inline unsigned fpBinIdx(isa::Opcode Op) {
  return static_cast<unsigned>(Op) - static_cast<unsigned>(isa::Opcode::VFAdd);
}
/// FP tables are indexed F32=0, F64=1.
inline unsigned fpTypeIdx(isa::ElemType Ty) {
  return Ty == isa::ElemType::F64 ? 1u : 0u;
}

struct KernelTable {
  /// Integer binary family, [opcode][ElemType]. The F32 column applies the
  /// zero-extension convention of laneInt (unsigned 32-bit min/max), the
  /// F64 column raw 64-bit — see isa/LaneTraits.h.
  VecBinFn IntBin[NumIntBinOps][isa::NumElemTypes];
  VecImmFn IntImm[NumIntImmOps][isa::NumElemTypes];
  /// FP binary family, [opcode][F32|F64].
  VecBinFn FpBin[NumFpBinOps][2];
  /// Compares, [CmpKind][type column]. Int columns follow laneInt
  /// extension; FP compares run in double exactly like evalCmp.
  VecCmpFn CmpInt[isa::NumCmpKinds][isa::NumElemTypes];
  VecCmpImmFn CmpImmInt[isa::NumCmpKinds][isa::NumElemTypes];
  VecCmpFn CmpFp[isa::NumCmpKinds][2];
  VecCmpImmFn CmpImmFp[isa::NumCmpKinds][2];
  VecBlendFn Blend[isa::NumElemTypes];
  VecBcastFn Broadcast[isa::NumElemTypes];
  VecIndexFn Index[isa::NumElemTypes];
  VecConflictFn Conflict[isa::NumElemTypes];
  GatherAddrFn GatherAddr[isa::NumElemTypes];
};

/// The reference table (lane loops). Always available.
const KernelTable &scalarKernels();
/// SIMD tables; on builds where the compiler cannot target the ISA these
/// return the scalar table (and the matching *Compiled() query is false).
const KernelTable &avx2Kernels();
const KernelTable &avx512Kernels();
bool avx2Compiled();
bool avx512Compiled();

/// Runtime CPUID support queries (false off x86 or without the GNU
/// builtin).
bool hostHasAvx2();
bool hostHasAvx512();

} // namespace simd
} // namespace emu
} // namespace flexvec

#endif // FLEXVEC_EMU_SIMD_KERNELS_H
