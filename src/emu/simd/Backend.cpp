//===- emu/simd/Backend.cpp - SIMD backend selection ----------------------===//
//
// Runtime backend resolution: the FLEXVEC_SIMD override, CPUID capability
// queries, and the clamp from a requested backend to one this build and
// host can execute. Mirrors the FLEXVEC_DISPATCH / DispatchMode plumbing.
//
// Also pins, at compile time, the opcode/enum layout the kernel-table
// index helpers (emu/simd/Kernels.h) silently rely on.
//
//===----------------------------------------------------------------------===//

#include "emu/Machine.h"
#include "emu/simd/Kernels.h"

#include <cstdlib>
#include <cstring>

using namespace flexvec;
using namespace flexvec::emu;

// The *Idx helpers map opcodes to table slots by subtraction; freeze the
// enum intervals they assume.
#define FV_ASSERT_NEXT(A, B)                                                  \
  static_assert(static_cast<unsigned>(isa::Opcode::B) ==                      \
                    static_cast<unsigned>(isa::Opcode::A) + 1,                \
                "kernel table slot order relies on opcode adjacency")
FV_ASSERT_NEXT(VAdd, VSub);
FV_ASSERT_NEXT(VSub, VMul);
FV_ASSERT_NEXT(VMul, VAnd);
FV_ASSERT_NEXT(VAnd, VOr);
FV_ASSERT_NEXT(VOr, VXor);
FV_ASSERT_NEXT(VXor, VMin);
FV_ASSERT_NEXT(VMin, VMax);
FV_ASSERT_NEXT(VAddImm, VMulImm);
FV_ASSERT_NEXT(VMulImm, VShlImm);
FV_ASSERT_NEXT(VFAdd, VFSub);
FV_ASSERT_NEXT(VFSub, VFMul);
FV_ASSERT_NEXT(VFMul, VFDiv);
FV_ASSERT_NEXT(VFDiv, VFMin);
FV_ASSERT_NEXT(VFMin, VFMax);
#undef FV_ASSERT_NEXT

static_assert(static_cast<unsigned>(isa::Opcode::VMax) -
                      static_cast<unsigned>(isa::Opcode::VAdd) + 1 ==
                  simd::NumIntBinOps,
              "IntBin table dimension");
static_assert(static_cast<unsigned>(isa::Opcode::VShlImm) -
                      static_cast<unsigned>(isa::Opcode::VAddImm) + 1 ==
                  simd::NumIntImmOps,
              "IntImm table dimension");
static_assert(static_cast<unsigned>(isa::Opcode::VFMax) -
                      static_cast<unsigned>(isa::Opcode::VFAdd) + 1 ==
                  simd::NumFpBinOps,
              "FpBin table dimension");

static_assert(static_cast<unsigned>(isa::ElemType::I32) == 0 &&
                  static_cast<unsigned>(isa::ElemType::I64) == 1 &&
                  static_cast<unsigned>(isa::ElemType::F32) == 2 &&
                  static_cast<unsigned>(isa::ElemType::F64) == 3 &&
                  isa::NumElemTypes == 4,
              "kernel tables are built in ElemType declaration order");
static_assert(static_cast<unsigned>(isa::CmpKind::EQ) == 0 &&
                  static_cast<unsigned>(isa::CmpKind::GE) == 5 &&
                  isa::NumCmpKinds == 6,
              "compare tables are built in CmpKind declaration order");

bool simd::hostHasAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool simd::hostHasAvx512() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

SimdBackend emu::defaultSimdBackend() {
  static const SimdBackend Cached = [] {
    if (const char *Env = std::getenv("FLEXVEC_SIMD")) {
      if (std::strcmp(Env, "scalar") == 0)
        return SimdBackend::Scalar;
      if (std::strcmp(Env, "avx2") == 0)
        return SimdBackend::Avx2;
      if (std::strcmp(Env, "avx512") == 0)
        return SimdBackend::Avx512;
      if (std::strcmp(Env, "native") == 0)
        return SimdBackend::Native;
    }
    return SimdBackend::Native;
  }();
  return Cached;
}

const char *emu::simdBackendName(SimdBackend B) {
  switch (B) {
  case SimdBackend::Auto:
    return "auto";
  case SimdBackend::Scalar:
    return "scalar";
  case SimdBackend::Avx2:
    return "avx2";
  case SimdBackend::Avx512:
    return "avx512";
  case SimdBackend::Native:
    return "native";
  }
  return "?";
}

SimdBackend emu::resolveSimdBackend(SimdBackend Requested) {
  SimdBackend B = Requested;
  if (B == SimdBackend::Auto)
    B = defaultSimdBackend();
  if (B == SimdBackend::Native || B == SimdBackend::Avx512) {
    if (simd::hostHasAvx512() && simd::avx512Compiled())
      return SimdBackend::Avx512;
    B = (B == SimdBackend::Native) ? SimdBackend::Native : SimdBackend::Avx2;
  }
  if (B == SimdBackend::Native || B == SimdBackend::Avx2) {
    if (simd::hostHasAvx2() && simd::avx2Compiled())
      return SimdBackend::Avx2;
  }
  return SimdBackend::Scalar;
}

namespace flexvec {
namespace emu {
namespace simd {

const KernelTable &kernelsFor(SimdBackend B) {
  switch (resolveSimdBackend(B)) {
  case SimdBackend::Avx512:
    return avx512Kernels();
  case SimdBackend::Avx2:
    return avx2Kernels();
  default:
    return scalarKernels();
  }
}

} // namespace simd
} // namespace emu
} // namespace flexvec
