//===- emu/simd/SimdAvx2.cpp - AVX2 kernel table --------------------------===//
//
// Compiles the shared kernel bodies at -mavx2 (set per-file by CMake when
// the compiler supports it); 64-byte GNU vectors lower to pairs of
// 256-bit operations. If the flag is unavailable the table degrades to
// the scalar reference and avx2Compiled() reports it.
//
//===----------------------------------------------------------------------===//

#include "emu/simd/Kernels.h"

#if defined(__AVX2__)

#define FLEXVEC_SIMD_NS avx2impl
#include "emu/simd/KernelsImpl.inc"
#undef FLEXVEC_SIMD_NS

namespace flexvec {
namespace emu {
namespace simd {
const KernelTable &avx2Kernels() {
  static const KernelTable T = avx2impl::buildTable();
  return T;
}
bool avx2Compiled() { return true; }
} // namespace simd
} // namespace emu
} // namespace flexvec

#else // !__AVX2__

namespace flexvec {
namespace emu {
namespace simd {
const KernelTable &avx2Kernels() { return scalarKernels(); }
bool avx2Compiled() { return false; }
} // namespace simd
} // namespace emu
} // namespace flexvec

#endif
