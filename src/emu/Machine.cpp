//===- emu/Machine.cpp ----------------------------------------------------===//

#include "emu/Machine.h"

#include "emu/simd/Kernels.h"
#include "obs/Metrics.h"
#include "support/Bits.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace flexvec;
using namespace flexvec::emu;
using namespace flexvec::isa;

unsigned emu::defaultRtmRetries() {
  static const unsigned Cached = [] {
    if (const char *Env = std::getenv("FLEXVEC_RTM_RETRIES")) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Env, &End, 10);
      if (End && *End == '\0' && V <= 1u << 20)
        return static_cast<unsigned>(V);
    }
    return 4u;
  }();
  return Cached;
}

TraceSink::~TraceSink() = default;

void TraceSink::onBatch(const DynInstr *Batch, size_t N) {
  // Compatibility shim: sinks that predate batching observe the exact
  // per-instruction stream they always did.
  for (size_t I = 0; I < N; ++I)
    onInstr(Batch[I]);
}

const char *emu::stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::Halted:
    return "halted";
  case StopReason::Fault:
    return "fault";
  case StopReason::BudgetExceeded:
    return "budget-exceeded";
  }
  unreachable("unknown stop reason");
}

void ExecStats::merge(const ExecStats &O) {
  Instructions += O.Instructions;
  Branches += O.Branches;
  TakenBranches += O.TakenBranches;
  MemoryAccesses += O.MemoryAccesses;
  VectorOps += O.VectorOps;
  RtmRetries += O.RtmRetries;
  RtmFallbacks += O.RtmFallbacks;
  RtmBudgetExhausted += O.RtmBudgetExhausted;
  BackoffCycles += O.BackoffCycles;
  TraceBatches += O.TraceBatches;
  VplSteps += O.VplSteps;
  VplPartitions += O.VplPartitions;
  FFClips += O.FFClips;
  FFSuppressedLanes += O.FFSuppressedLanes;
  ConflictChecks += O.ConflictChecks;
  ConflictHits += O.ConflictHits;
  SimdUnitStrideHits += O.SimdUnitStrideHits;
  SimdMaskShortcircuits += O.SimdMaskShortcircuits;
  MaskDensityUsed = std::max(MaskDensityUsed, O.MaskDensityUsed);
  for (size_t I = 0; I < MaskDensity.size(); ++I)
    MaskDensity[I] += O.MaskDensity[I];
  for (size_t I = 0; I < RtmRetryDepth.size(); ++I)
    RtmRetryDepth[I] += O.RtmRetryDepth[I];
  for (size_t I = 0; I < OpcodeCounts.size(); ++I)
    OpcodeCounts[I] += O.OpcodeCounts[I];
}

std::string ExecResult::describe() const {
  std::string S = stopReasonName(Reason);
  if (Reason != StopReason::Halted) {
    S += " at pc=" + std::to_string(FaultPC) + " (" +
         isa::opcodeName(FaultOp) + ")";
    if (Reason == StopReason::Fault || FaultAddr != 0)
      S += ", fault addr=" + std::to_string(FaultAddr);
  }
  if (!AbortHistory.empty()) {
    S += ", aborts=[";
    for (size_t I = 0; I < AbortHistory.size(); ++I) {
      if (I)
        S += " ";
      S += rtm::abortReasonName(AbortHistory[I]);
    }
    S += "]";
  }
  if (Stats.RtmRetries || Stats.RtmFallbacks)
    S += ", rtm retries=" + std::to_string(Stats.RtmRetries) +
         " fallbacks=" + std::to_string(Stats.RtmFallbacks);
  return S;
}

// --- VecReg lane accessors ----------------------------------------------===//

int64_t VecReg::laneInt(ElemType Ty, unsigned Lane) const {
  assert(Lane < laneCountFor(MaxVectorBytes, Ty) && "lane out of range");
  switch (Ty) {
  case ElemType::I32: {
    int32_t V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return V;
  }
  case ElemType::I64: {
    int64_t V;
    std::memcpy(&V, Bytes.data() + Lane * 8, 8);
    return V;
  }
  case ElemType::F32: {
    uint32_t V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return static_cast<int64_t>(V);
  }
  case ElemType::F64: {
    uint64_t V;
    std::memcpy(&V, Bytes.data() + Lane * 8, 8);
    return static_cast<int64_t>(V);
  }
  }
  unreachable("covered switch");
}

void VecReg::setLaneInt(ElemType Ty, unsigned Lane, int64_t Value) {
  assert(Lane < laneCountFor(MaxVectorBytes, Ty) && "lane out of range");
  switch (Ty) {
  case ElemType::I32:
  case ElemType::F32: {
    uint32_t V = static_cast<uint32_t>(Value);
    std::memcpy(Bytes.data() + Lane * 4, &V, 4);
    return;
  }
  case ElemType::I64:
  case ElemType::F64: {
    std::memcpy(Bytes.data() + Lane * 8, &Value, 8);
    return;
  }
  }
  unreachable("covered switch");
}

double VecReg::laneFloat(ElemType Ty, unsigned Lane) const {
  assert(Lane < laneCountFor(MaxVectorBytes, Ty) && "lane out of range");
  if (Ty == ElemType::F32) {
    float V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return V;
  }
  assert(Ty == ElemType::F64 && "float lane access on integer type");
  double V;
  std::memcpy(&V, Bytes.data() + Lane * 8, 8);
  return V;
}

void VecReg::setLaneFloat(ElemType Ty, unsigned Lane, double Value) {
  assert(Lane < laneCountFor(MaxVectorBytes, Ty) && "lane out of range");
  if (Ty == ElemType::F32) {
    float V = static_cast<float>(Value);
    std::memcpy(Bytes.data() + Lane * 4, &V, 4);
    return;
  }
  assert(Ty == ElemType::F64 && "float lane access on integer type");
  std::memcpy(Bytes.data() + Lane * 8, &Value, 8);
}

// --- Machine scalar FP helpers ------------------------------------------===//

double Machine::getScalarF64(unsigned I) const {
  double V;
  int64_t Bits = R[I];
  std::memcpy(&V, &Bits, 8);
  return V;
}

void Machine::setScalarF64(unsigned I, double V) {
  int64_t Bits;
  std::memcpy(&Bits, &V, 8);
  R[I] = Bits;
}

float Machine::getScalarF32(unsigned I) const {
  float V;
  uint32_t Bits = static_cast<uint32_t>(R[I]);
  std::memcpy(&V, &Bits, 4);
  return V;
}

void Machine::setScalarF32(unsigned I, float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, 4);
  R[I] = static_cast<int64_t>(static_cast<uint64_t>(Bits));
}

void Machine::resetRegisters() {
  R.fill(0);
  for (VecReg &Reg : V)
    Reg.Bytes.fill(0);
  K.fill(0);
  TxAborted = false;
  Faulted = false;
}

void Machine::predecode(const Program &P) {
  Plan.clear();
  Plan.reserve(P.size());
  VecBytes = P.vectorBytes();
  assert(isa::VectorConfig::isValidBytes(VecBytes) &&
         "program compiled for an unsupported vector width");
  for (size_t Idx = 0; Idx < P.size(); ++Idx) {
    const Instruction &I = P[Idx];
    DecodedInstr D;
    D.Op = I.Op;
    D.Type = I.Type;
    D.Cond = I.Cond;
    D.ES = static_cast<uint8_t>(elemSize(I.Type));
    D.Lanes = static_cast<uint8_t>(laneCountFor(VecBytes, I.Type));
    D.Dst = I.Dst.Index;
    D.Src1 = I.Src1.Index;
    D.Src2 = I.Src2.Index;
    D.Src3 = I.Src3.Index;
    // k0 (or no mask register) enables all lanes of the element type.
    D.EffMask = (!I.MaskReg.isValid() || I.MaskReg.Index == 0)
                    ? NoEffMask
                    : I.MaskReg.Index;
    D.Scale = I.Scale;
    D.Flags = static_cast<uint8_t>((I.isBranch() ? FlagBranch : 0) |
                                   (I.isVector() ? FlagVector : 0) |
                                   (I.Src2.isValid() ? FlagSrc2Valid : 0) |
                                   (I.isMemory() ? FlagMemory : 0));
    D.AllMask = lowBitMask(D.Lanes);
    D.Imm = I.Imm;
    D.Disp = I.Disp;
    D.Target = I.Target;
    // Dispatch token: plain opcodes; fusePlan() may later rewrite heads of
    // fusable sequences to superinstruction tokens (>= NumOpcodes).
    D.Handler = static_cast<uint16_t>(I.Op);
    Plan.push_back(D);
  }
}

void Machine::flushBatch(TraceSink *Sink, ExecStats &Stats) {
  if (BatchLen == 0)
    return;
  // Fix up the address-pool pointers now: the pool may have reallocated
  // while the batch filled, so offsets were recorded instead.
  for (size_t I = 0; I < BatchLen; ++I)
    Batch[I].MemAddrs =
        Batch[I].NumMemAddrs ? AddrPool.data() + BatchAddrOff[I] : nullptr;
  Sink->onBatch(Batch.data(), BatchLen);
  ++Stats.TraceBatches;
  BatchLen = 0;
  AddrPool.clear();
}

bool Machine::memRead(uint64_t Addr, void *Out, uint64_t Size) {
  if (Tx.isActive()) {
    rtm::AbortReason Reason;
    if (!Tx.read(Addr, Out, Size, Reason)) {
      TxAborted = true;
      return false;
    }
    return true;
  }
  mem::AccessResult Res = M.read(Addr, Out, Size);
  if (!Res.Ok) {
    Faulted = true;
    FaultAddr = Res.FaultAddr;
    return false;
  }
  return true;
}

bool Machine::memWrite(uint64_t Addr, const void *Data, uint64_t Size) {
  if (Tx.isActive()) {
    rtm::AbortReason Reason;
    if (!Tx.write(Addr, Data, Size, Reason)) {
      TxAborted = true;
      return false;
    }
    return true;
  }
  mem::AccessResult Res = M.write(Addr, Data, Size);
  if (!Res.Ok) {
    Faulted = true;
    FaultAddr = Res.FaultAddr;
    return false;
  }
  return true;
}

// --- Main interpreter ----------------------------------------------------===//

namespace {

/// Dispatch tokens >= HandlerFusedBase select superinstruction handlers,
/// indexed by FusedKind.
constexpr uint16_t HandlerFusedBase = static_cast<uint16_t>(isa::NumOpcodes);

/// Minimum static-pair-histogram frequency before a site is fused. Every
/// fusion decision is a pure function of the static opcode sequence (the
/// histogram and the per-site checks below), never of loop names or
/// instruction addresses — the cache-safety contract.
constexpr uint64_t MinStaticPairCount = 1;

/// Middle ops admissible in a gather->op->scatter superinstruction: the
/// register-register vector ALU ranges (no memory, no masks written).
bool isFusableVectorOp(Opcode Op) {
  return (Op >= Opcode::VAdd && Op <= Opcode::VMax) ||
         (Op >= Opcode::VFAdd && Op <= Opcode::VFMax);
}

double applyScalarFpOp(Opcode Op, double A, double B) {
  switch (Op) {
  case Opcode::FAdd:
    return A + B;
  case Opcode::FSub:
    return A - B;
  case Opcode::FMul:
    return A * B;
  case Opcode::FDiv:
    return A / B;
  case Opcode::FMin:
    return std::min(A, B);
  case Opcode::FMax:
    return std::max(A, B);
  default:
    unreachable("not a scalar fp binary opcode");
  }
}

} // namespace

DispatchMode emu::defaultDispatchMode() {
  static const DispatchMode Cached = [] {
    if (const char *Env = std::getenv("FLEXVEC_DISPATCH")) {
      if (std::strcmp(Env, "plain") == 0)
        return DispatchMode::Plain;
      if (std::strcmp(Env, "threaded") == 0)
        return DispatchMode::Threaded;
    }
    return DispatchMode::Threaded;
  }();
  return Cached;
}

const char *emu::fusedKindName(FusedKind K) {
  switch (K) {
  case FusedKind::CmpBr:
    return "cmp+br";
  case FusedKind::KTestBr:
    return "ktest+br";
  case FusedKind::AddImmCmp:
    return "addi+cmp";
  case FusedKind::GatherOpScatter:
    return "gather+op+scatter";
  }
  unreachable("unknown fused kind");
}

void Machine::fusePlan() {
  Fusion.Pairs.clear();
  Fusion.Sites.clear();
  const size_t N = Plan.size();
  IsJumpTarget.assign(N, 0);
  if (N < 2)
    return;

  // Static pair histogram over the finalized plan; the fusion table below
  // is driven by it, so what fuses is a pure function of the static
  // opcode sequence.
  for (size_t I = 0; I + 1 < N; ++I)
    Fusion.Pairs.add(static_cast<unsigned>(Plan[I].Op),
                     static_cast<unsigned>(Plan[I + 1].Op));

  // A follower that is a branch (or abort-handler) target must stay
  // individually dispatchable: control flow can enter the sequence in the
  // middle. XBegin is not isBranch() but its abort target is a real entry
  // point (the scalar fallback body).
  for (const DecodedInstr &D : Plan)
    if (((D.Flags & FlagBranch) || D.Op == Opcode::XBegin) && D.Target >= 0 &&
        static_cast<size_t>(D.Target) < N)
      IsJumpTarget[static_cast<size_t>(D.Target)] = 1;

  // Greedy left-to-right matching of the dominant static shapes observed
  // across the workload suite (see tests/golden/histogram.golden):
  // compare->mask-branch, gather->op->scatter, index-increment->compare.
  for (size_t I = 0; I + 1 < N; ++I) {
    const DecodedInstr &A = Plan[I];
    const DecodedInstr &B = Plan[I + 1];
    if (IsJumpTarget[I + 1])
      continue;
    const bool CondBr = B.Op == Opcode::BrZero || B.Op == Opcode::BrNonZero;
    FusedKind Kind;
    uint8_t Len = 2;
    if ((A.Op == Opcode::Cmp || A.Op == Opcode::CmpImm) && CondBr &&
        B.Src1 == A.Dst) {
      Kind = FusedKind::CmpBr;
    } else if (A.Op == Opcode::KTest && CondBr && B.Src1 == A.Dst) {
      Kind = FusedKind::KTestBr;
    } else if (A.Op == Opcode::AddImm &&
               (B.Op == Opcode::Cmp || B.Op == Opcode::CmpImm)) {
      Kind = FusedKind::AddImmCmp;
    } else if (A.Op == Opcode::VGather && I + 2 < N &&
               isFusableVectorOp(B.Op) && Plan[I + 2].Op == Opcode::VScatter &&
               !IsJumpTarget[I + 2]) {
      Kind = FusedKind::GatherOpScatter;
      Len = 3;
    } else {
      continue;
    }
    if (Fusion.Pairs.count(static_cast<unsigned>(A.Op),
                           static_cast<unsigned>(B.Op)) < MinStaticPairCount)
      continue;
    Plan[I].Handler = HandlerFusedBase + static_cast<uint16_t>(Kind);
    Fusion.Sites.push_back({static_cast<uint32_t>(I), Kind, Len});
    I += Len - 1; // Consumed followers cannot head another fusion.
  }
}

ExecResult Machine::run(const Program &P, RunLimits Limits, TraceSink *Sink) {
  if (P.empty())
    return ExecResult();

  // Decode once into the dense plan; the dynamic loop never touches the
  // (string-carrying) isa::Instruction records again except to hand trace
  // consumers their static-instruction pointer.
  predecode(P);
  Fusion.Pairs.clear();
  Fusion.Sites.clear();

  DispatchMode Mode = Limits.Dispatch;
  if (Mode == DispatchMode::Auto)
    Mode = defaultDispatchMode();

  // Bind the lane-kernel table for this run. Resolution clamps to what
  // the build and host support, so every dispatch loop below can index
  // the table unconditionally.
  SimdKern = &simd::kernelsFor(Limits.Simd);

  if (Mode == DispatchMode::Threaded) {
    // Superinstructions batch dispatch only; component instructions still
    // retire statistics individually. A sink needs every component staged
    // as its own DynInstr, so fusion is engaged only for untraced runs —
    // traced runs take threaded dispatch with an unfused plan.
    if (!Sink)
      fusePlan();
    return runThreaded(P, Limits, Sink);
  }
  return runPlain(P, Limits, Sink);
}

// Instantiate the shared interpreter body (emu/Interp.inc) twice: the
// token-threaded switch (reference), then computed-goto dispatch where the
// `&&label` extension exists.
#define FLEXVEC_INTERP_GOTO 0
#define FLEXVEC_INTERP_FN runPlain
#include "emu/Interp.inc"
#undef FLEXVEC_INTERP_FN
#undef FLEXVEC_INTERP_GOTO

#if defined(__GNUC__) || defined(__clang__)
#define FLEXVEC_INTERP_GOTO 1
#define FLEXVEC_INTERP_FN runThreaded
#include "emu/Interp.inc"
#undef FLEXVEC_INTERP_FN
#undef FLEXVEC_INTERP_GOTO
#else
// Without the computed-goto extension, token-threaded dispatch over the
// predecoded Handler tokens (superinstructions included) IS threaded mode.
ExecResult Machine::runThreaded(const Program &P, RunLimits Limits,
                                TraceSink *Sink) {
  return runPlain(P, Limits, Sink);
}
#endif

// --- Metrics export ------------------------------------------------------===//

void emu::recordMetrics(const ExecStats &S, obs::Registry &R) {
  R.counter("emu.instructions").inc(S.Instructions);
  R.counter("emu.branches").inc(S.Branches);
  R.counter("emu.taken_branches").inc(S.TakenBranches);
  R.counter("emu.memory_accesses").inc(S.MemoryAccesses);
  R.counter("emu.vector_ops").inc(S.VectorOps);
  R.counter("emu.vpl.steps").inc(S.VplSteps);
  R.counter("emu.vpl.partitions").inc(S.VplPartitions);
  R.counter("emu.ff.clips").inc(S.FFClips);
  R.counter("emu.ff.suppressed_lanes").inc(S.FFSuppressedLanes);
  R.counter("emu.conflict.checks").inc(S.ConflictChecks);
  R.counter("emu.conflict.hits").inc(S.ConflictHits);
  R.counter("emu.simd.fastpath.unit_stride_hits").inc(S.SimdUnitStrideHits);
  R.counter("emu.simd.fastpath.mask_shortcircuits")
      .inc(S.SimdMaskShortcircuits);
  R.counter("emu.rtm.retries").inc(S.RtmRetries);
  R.counter("emu.rtm.fallbacks").inc(S.RtmFallbacks);
  R.counter("emu.rtm.budget_exhausted").inc(S.RtmBudgetExhausted);
  R.counter("emu.rtm.backoff_cycles").inc(S.BackoffCycles);
  R.counter("emu.trace.batches").inc(S.TraceBatches);
  // Bucket count tracks the producing run's vector width (17 at the
  // 512-bit default) so rendered payloads are unchanged there.
  obs::Histogram &MD = R.histogram("emu.mask_density", S.MaskDensityUsed);
  for (unsigned B = 0; B < S.MaskDensityUsed; ++B)
    if (S.MaskDensity[B])
      MD.addToBucket(B, S.MaskDensity[B]);
  obs::Histogram &RD =
      R.histogram("emu.rtm.retry_depth", ExecStats::RtmRetryDepthBuckets);
  for (unsigned B = 0; B < ExecStats::RtmRetryDepthBuckets; ++B)
    if (S.RtmRetryDepth[B])
      RD.addToBucket(B, S.RtmRetryDepth[B]);
}
