//===- emu/Machine.cpp ----------------------------------------------------===//

#include "emu/Machine.h"

#include "obs/Metrics.h"
#include "support/Bits.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace flexvec;
using namespace flexvec::emu;
using namespace flexvec::isa;

TraceSink::~TraceSink() = default;

const char *emu::stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::Halted:
    return "halted";
  case StopReason::Fault:
    return "fault";
  case StopReason::BudgetExceeded:
    return "budget-exceeded";
  }
  unreachable("unknown stop reason");
}

void ExecStats::merge(const ExecStats &O) {
  Instructions += O.Instructions;
  Branches += O.Branches;
  TakenBranches += O.TakenBranches;
  MemoryAccesses += O.MemoryAccesses;
  VectorOps += O.VectorOps;
  RtmRetries += O.RtmRetries;
  RtmFallbacks += O.RtmFallbacks;
  BackoffCycles += O.BackoffCycles;
  VplSteps += O.VplSteps;
  VplPartitions += O.VplPartitions;
  FFClips += O.FFClips;
  FFSuppressedLanes += O.FFSuppressedLanes;
  ConflictChecks += O.ConflictChecks;
  ConflictHits += O.ConflictHits;
  for (size_t I = 0; I < MaskDensity.size(); ++I)
    MaskDensity[I] += O.MaskDensity[I];
  for (size_t I = 0; I < RtmRetryDepth.size(); ++I)
    RtmRetryDepth[I] += O.RtmRetryDepth[I];
  for (size_t I = 0; I < OpcodeCounts.size(); ++I)
    OpcodeCounts[I] += O.OpcodeCounts[I];
}

std::string ExecResult::describe() const {
  std::string S = stopReasonName(Reason);
  if (Reason != StopReason::Halted) {
    S += " at pc=" + std::to_string(FaultPC) + " (" +
         isa::opcodeName(FaultOp) + ")";
    if (Reason == StopReason::Fault || FaultAddr != 0)
      S += ", fault addr=" + std::to_string(FaultAddr);
  }
  if (!AbortHistory.empty()) {
    S += ", aborts=[";
    for (size_t I = 0; I < AbortHistory.size(); ++I) {
      if (I)
        S += " ";
      S += rtm::abortReasonName(AbortHistory[I]);
    }
    S += "]";
  }
  if (Stats.RtmRetries || Stats.RtmFallbacks)
    S += ", rtm retries=" + std::to_string(Stats.RtmRetries) +
         " fallbacks=" + std::to_string(Stats.RtmFallbacks);
  return S;
}

// --- VecReg lane accessors ----------------------------------------------===//

int64_t VecReg::laneInt(ElemType Ty, unsigned Lane) const {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  switch (Ty) {
  case ElemType::I32: {
    int32_t V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return V;
  }
  case ElemType::I64: {
    int64_t V;
    std::memcpy(&V, Bytes.data() + Lane * 8, 8);
    return V;
  }
  case ElemType::F32: {
    uint32_t V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return static_cast<int64_t>(V);
  }
  case ElemType::F64: {
    uint64_t V;
    std::memcpy(&V, Bytes.data() + Lane * 8, 8);
    return static_cast<int64_t>(V);
  }
  }
  unreachable("covered switch");
}

void VecReg::setLaneInt(ElemType Ty, unsigned Lane, int64_t Value) {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  switch (Ty) {
  case ElemType::I32:
  case ElemType::F32: {
    uint32_t V = static_cast<uint32_t>(Value);
    std::memcpy(Bytes.data() + Lane * 4, &V, 4);
    return;
  }
  case ElemType::I64:
  case ElemType::F64: {
    std::memcpy(Bytes.data() + Lane * 8, &Value, 8);
    return;
  }
  }
  unreachable("covered switch");
}

double VecReg::laneFloat(ElemType Ty, unsigned Lane) const {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  if (Ty == ElemType::F32) {
    float V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return V;
  }
  assert(Ty == ElemType::F64 && "float lane access on integer type");
  double V;
  std::memcpy(&V, Bytes.data() + Lane * 8, 8);
  return V;
}

void VecReg::setLaneFloat(ElemType Ty, unsigned Lane, double Value) {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  if (Ty == ElemType::F32) {
    float V = static_cast<float>(Value);
    std::memcpy(Bytes.data() + Lane * 4, &V, 4);
    return;
  }
  assert(Ty == ElemType::F64 && "float lane access on integer type");
  std::memcpy(Bytes.data() + Lane * 8, &Value, 8);
}

// --- Machine scalar FP helpers ------------------------------------------===//

double Machine::getScalarF64(unsigned I) const {
  double V;
  int64_t Bits = R[I];
  std::memcpy(&V, &Bits, 8);
  return V;
}

void Machine::setScalarF64(unsigned I, double V) {
  int64_t Bits;
  std::memcpy(&Bits, &V, 8);
  R[I] = Bits;
}

float Machine::getScalarF32(unsigned I) const {
  float V;
  uint32_t Bits = static_cast<uint32_t>(R[I]);
  std::memcpy(&V, &Bits, 4);
  return V;
}

void Machine::setScalarF32(unsigned I, float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, 4);
  R[I] = static_cast<int64_t>(static_cast<uint64_t>(Bits));
}

void Machine::resetRegisters() {
  R.fill(0);
  for (VecReg &Reg : V)
    Reg.Bytes.fill(0);
  K.fill(0);
  TxAborted = false;
  Faulted = false;
}

uint64_t Machine::effectiveMask(const Instruction &I) const {
  uint64_t AllLanes = lowBitMask(lanesFor(I.Type));
  if (!I.MaskReg.isValid() || I.MaskReg.Index == 0)
    return AllLanes;
  return K[I.MaskReg.Index] & AllLanes;
}

bool Machine::memRead(uint64_t Addr, void *Out, uint64_t Size) {
  if (Tx.isActive()) {
    rtm::AbortReason Reason;
    if (!Tx.read(Addr, Out, Size, Reason)) {
      TxAborted = true;
      return false;
    }
    return true;
  }
  mem::AccessResult Res = M.read(Addr, Out, Size);
  if (!Res.Ok) {
    Faulted = true;
    FaultAddr = Res.FaultAddr;
    return false;
  }
  return true;
}

bool Machine::memWrite(uint64_t Addr, const void *Data, uint64_t Size) {
  if (Tx.isActive()) {
    rtm::AbortReason Reason;
    if (!Tx.write(Addr, Data, Size, Reason)) {
      TxAborted = true;
      return false;
    }
    return true;
  }
  mem::AccessResult Res = M.write(Addr, Data, Size);
  if (!Res.Ok) {
    Faulted = true;
    FaultAddr = Res.FaultAddr;
    return false;
  }
  return true;
}

// --- Main interpreter ----------------------------------------------------===//

namespace {

int64_t applyScalarIntOp(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  case Opcode::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                static_cast<uint64_t>(B));
  case Opcode::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(A) *
                                static_cast<uint64_t>(B));
  case Opcode::Div:
    assert(B != 0 && "division by zero");
    return A / B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(A)
                                << (static_cast<uint64_t>(B) & 63));
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >>
                                (static_cast<uint64_t>(B) & 63));
  case Opcode::Min:
    return std::min(A, B);
  case Opcode::Max:
    return std::max(A, B);
  default:
    unreachable("not a scalar integer binary opcode");
  }
}

double applyScalarFpOp(Opcode Op, double A, double B) {
  switch (Op) {
  case Opcode::FAdd:
    return A + B;
  case Opcode::FSub:
    return A - B;
  case Opcode::FMul:
    return A * B;
  case Opcode::FDiv:
    return A / B;
  case Opcode::FMin:
    return std::min(A, B);
  case Opcode::FMax:
    return std::max(A, B);
  default:
    unreachable("not a scalar fp binary opcode");
  }
}

int64_t applyVectorIntOp(Opcode Op, ElemType Ty, int64_t A, int64_t B) {
  bool Is32 = elemSize(Ty) == 4;
  auto wrap = [Is32](int64_t X) {
    return Is32 ? static_cast<int64_t>(static_cast<int32_t>(X)) : X;
  };
  switch (Op) {
  case Opcode::VAdd:
  case Opcode::VAddImm:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A) +
                                     static_cast<uint64_t>(B)));
  case Opcode::VSub:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A) -
                                     static_cast<uint64_t>(B)));
  case Opcode::VMul:
  case Opcode::VMulImm:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A) *
                                     static_cast<uint64_t>(B)));
  case Opcode::VAnd:
    return A & B;
  case Opcode::VOr:
    return A | B;
  case Opcode::VXor:
    return A ^ B;
  case Opcode::VMin:
    return std::min(A, B);
  case Opcode::VMax:
    return std::max(A, B);
  case Opcode::VShlImm:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A)
                                     << (static_cast<uint64_t>(B) & 63)));
  default:
    unreachable("not a vector integer binary opcode");
  }
}

double applyVectorFpOp(Opcode Op, double A, double B) {
  switch (Op) {
  case Opcode::VFAdd:
    return A + B;
  case Opcode::VFSub:
    return A - B;
  case Opcode::VFMul:
    return A * B;
  case Opcode::VFDiv:
    return A / B;
  case Opcode::VFMin:
    return std::min(A, B);
  case Opcode::VFMax:
    return std::max(A, B);
  default:
    unreachable("not a vector fp binary opcode");
  }
}

} // namespace

ExecResult Machine::run(const Program &P, RunLimits Limits, TraceSink *Sink) {
  ExecResult Result;
  ExecStats &Stats = Result.Stats;
  if (P.empty())
    return Result;

  std::vector<uint64_t> AddrScratch;
  uint32_t PC = 0;

  // Resilience-policy state for this run.
  unsigned TxAttempts = 0;   ///< Retries burned at the current XBEGIN site.
  uint32_t TxBeginPC = 0;    ///< PC of the active transaction's XBEGIN.
  uint64_t LastFault = 0;    ///< Last fault address observed (any kind).
  auto recordAbort = [&Result](rtm::AbortReason Why) {
    if (Result.AbortHistory.size() < ExecResult::MaxAbortHistory)
      Result.AbortHistory.push_back(Why);
  };

  while (true) {
    if (Stats.Instructions >= Limits.MaxInstructions) {
      // Watchdog: a VPL that stopped making forward progress (or a
      // runaway retry storm) is reported with enough context to debug it.
      Result.Reason = StopReason::BudgetExceeded;
      Result.FaultPC = PC;
      Result.FaultOp = PC < P.size() ? P[PC].Op : isa::Opcode::Nop;
      Result.FaultAddr = LastFault;
      return Result;
    }
    assert(PC < P.size() && "program counter out of range");
    const Instruction &I = P[PC];
    uint32_t NextPC = PC + 1;
    bool Taken = false;
    uint64_t ActiveMask = 0;
    unsigned AccessSize = 0;
    AddrScratch.clear();
    Faulted = false;
    TxAborted = false;

    unsigned ES = elemSize(I.Type);
    unsigned Lanes = lanesFor(I.Type);

    // Effective scalar address for scalar/contiguous-vector memory ops.
    auto scalarAddr = [&]() {
      uint64_t A = static_cast<uint64_t>(R[I.Src1.Index]) + I.Disp;
      if (I.Src2.isValid())
        A += static_cast<uint64_t>(R[I.Src2.Index]) * I.Scale;
      return A;
    };
    // Effective address for lane L of a gather/scatter.
    auto gatherAddr = [&](unsigned L) {
      return static_cast<uint64_t>(R[I.Src1.Index]) +
             static_cast<uint64_t>(V[I.Src2.Index].laneInt(I.Type, L)) *
                 I.Scale +
             I.Disp;
    };

    switch (I.Op) {
    case Opcode::Halt:
      ++Stats.Instructions;
      ++Stats.OpcodeCounts[static_cast<unsigned>(I.Op)];
      Result.Reason = StopReason::Halted;
      return Result;
    case Opcode::Nop:
      break;
    case Opcode::Jmp:
      Taken = true;
      NextPC = static_cast<uint32_t>(I.Target);
      break;
    case Opcode::BrZero:
      Taken = R[I.Src1.Index] == 0;
      if (Taken)
        NextPC = static_cast<uint32_t>(I.Target);
      break;
    case Opcode::BrNonZero:
      Taken = R[I.Src1.Index] != 0;
      if (Taken)
        NextPC = static_cast<uint32_t>(I.Target);
      break;

    case Opcode::MovImm:
      R[I.Dst.Index] = I.Imm;
      break;
    case Opcode::Mov:
      R[I.Dst.Index] = R[I.Src1.Index];
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Min:
    case Opcode::Max:
      R[I.Dst.Index] =
          applyScalarIntOp(I.Op, R[I.Src1.Index], R[I.Src2.Index]);
      break;
    case Opcode::AddImm:
      R[I.Dst.Index] = applyScalarIntOp(Opcode::Add, R[I.Src1.Index], I.Imm);
      break;
    case Opcode::MulImm:
      R[I.Dst.Index] = applyScalarIntOp(Opcode::Mul, R[I.Src1.Index], I.Imm);
      break;
    case Opcode::AndImm:
      R[I.Dst.Index] = R[I.Src1.Index] & I.Imm;
      break;
    case Opcode::ShlImm:
      R[I.Dst.Index] = applyScalarIntOp(Opcode::Shl, R[I.Src1.Index], I.Imm);
      break;
    case Opcode::ShrImm:
      R[I.Dst.Index] = applyScalarIntOp(Opcode::Shr, R[I.Src1.Index], I.Imm);
      break;
    case Opcode::Cmp:
      R[I.Dst.Index] =
          evalCmp(I.Cond, R[I.Src1.Index], R[I.Src2.Index]) ? 1 : 0;
      break;
    case Opcode::CmpImm:
      R[I.Dst.Index] = evalCmp(I.Cond, R[I.Src1.Index], I.Imm) ? 1 : 0;
      break;
    case Opcode::Select:
      R[I.Dst.Index] =
          R[I.Src1.Index] != 0 ? R[I.Src2.Index] : R[I.Src3.Index];
      break;

    case Opcode::FMovImm:
      R[I.Dst.Index] = I.Imm;
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FMin:
    case Opcode::FMax: {
      if (I.Type == ElemType::F32) {
        float A = getScalarF32(I.Src1.Index);
        float B = getScalarF32(I.Src2.Index);
        setScalarF32(I.Dst.Index,
                     static_cast<float>(applyScalarFpOp(I.Op, A, B)));
      } else {
        setScalarF64(I.Dst.Index,
                     applyScalarFpOp(I.Op, getScalarF64(I.Src1.Index),
                                     getScalarF64(I.Src2.Index)));
      }
      break;
    }
    case Opcode::FCmp: {
      double A, B;
      if (I.Type == ElemType::F32) {
        A = getScalarF32(I.Src1.Index);
        B = getScalarF32(I.Src2.Index);
      } else {
        A = getScalarF64(I.Src1.Index);
        B = getScalarF64(I.Src2.Index);
      }
      R[I.Dst.Index] = evalCmp(I.Cond, A, B) ? 1 : 0;
      break;
    }

    case Opcode::Load: {
      uint64_t Addr = scalarAddr();
      AccessSize = ES;
      AddrScratch.push_back(Addr);
      if (ES == 4) {
        uint32_t Raw;
        if (!memRead(Addr, &Raw, 4))
          break;
        R[I.Dst.Index] = I.Type == ElemType::I32
                             ? static_cast<int64_t>(static_cast<int32_t>(Raw))
                             : static_cast<int64_t>(Raw);
      } else {
        int64_t Raw;
        if (!memRead(Addr, &Raw, 8))
          break;
        R[I.Dst.Index] = Raw;
      }
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = scalarAddr();
      AccessSize = ES;
      AddrScratch.push_back(Addr);
      if (ES == 4) {
        uint32_t Raw = static_cast<uint32_t>(R[I.Src3.Index]);
        memWrite(Addr, &Raw, 4);
      } else {
        int64_t Raw = R[I.Src3.Index];
        memWrite(Addr, &Raw, 8);
      }
      break;
    }

    case Opcode::VBroadcast: {
      ActiveMask = effectiveMask(I);
      VecReg &D = V[I.Dst.Index];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          D.setLaneInt(I.Type, L, R[I.Src1.Index]);
      break;
    }
    case Opcode::VBroadcastImm: {
      ActiveMask = effectiveMask(I);
      VecReg &D = V[I.Dst.Index];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          D.setLaneInt(I.Type, L, I.Imm);
      break;
    }
    case Opcode::VIndex: {
      ActiveMask = lowBitMask(Lanes);
      VecReg &D = V[I.Dst.Index];
      for (unsigned L = 0; L < Lanes; ++L)
        D.setLaneInt(I.Type, L, R[I.Src1.Index] + L);
      break;
    }
    case Opcode::VAdd:
    case Opcode::VSub:
    case Opcode::VMul:
    case Opcode::VAnd:
    case Opcode::VOr:
    case Opcode::VXor:
    case Opcode::VMin:
    case Opcode::VMax: {
      ActiveMask = effectiveMask(I);
      const VecReg A = V[I.Src1.Index];
      const VecReg B = V[I.Src2.Index];
      VecReg &D = V[I.Dst.Index];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          D.setLaneInt(I.Type, L,
                       applyVectorIntOp(I.Op, I.Type, A.laneInt(I.Type, L),
                                        B.laneInt(I.Type, L)));
      break;
    }
    case Opcode::VAddImm:
    case Opcode::VMulImm:
    case Opcode::VShlImm: {
      ActiveMask = effectiveMask(I);
      const VecReg A = V[I.Src1.Index];
      VecReg &D = V[I.Dst.Index];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          D.setLaneInt(I.Type, L,
                       applyVectorIntOp(I.Op, I.Type, A.laneInt(I.Type, L),
                                        I.Imm));
      break;
    }
    case Opcode::VFAdd:
    case Opcode::VFSub:
    case Opcode::VFMul:
    case Opcode::VFDiv:
    case Opcode::VFMin:
    case Opcode::VFMax: {
      ActiveMask = effectiveMask(I);
      const VecReg A = V[I.Src1.Index];
      const VecReg B = V[I.Src2.Index];
      VecReg &D = V[I.Dst.Index];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          D.setLaneFloat(I.Type, L,
                         applyVectorFpOp(I.Op, A.laneFloat(I.Type, L),
                                         B.laneFloat(I.Type, L)));
      break;
    }
    case Opcode::VCmp:
    case Opcode::VCmpImm: {
      ActiveMask = effectiveMask(I);
      const VecReg A = V[I.Src1.Index];
      uint64_t Out = 0;
      for (unsigned L = 0; L < Lanes; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        bool Bit;
        if (isFloatType(I.Type)) {
          double BVal = I.Op == Opcode::VCmp
                            ? V[I.Src2.Index].laneFloat(I.Type, L)
                            : static_cast<double>(I.Imm);
          Bit = evalCmp(I.Cond, A.laneFloat(I.Type, L), BVal);
        } else {
          int64_t BVal = I.Op == Opcode::VCmp
                             ? V[I.Src2.Index].laneInt(I.Type, L)
                             : I.Imm;
          Bit = evalCmp(I.Cond, A.laneInt(I.Type, L), BVal);
        }
        if (Bit)
          Out |= 1ULL << L;
      }
      K[I.Dst.Index] = Out;
      break;
    }
    case Opcode::VBlend: {
      ActiveMask = effectiveMask(I);
      const VecReg A = V[I.Src1.Index];
      const VecReg B = V[I.Src2.Index];
      VecReg &D = V[I.Dst.Index];
      for (unsigned L = 0; L < Lanes; ++L)
        D.setLaneInt(I.Type, L,
                     testBit(ActiveMask, L) ? A.laneInt(I.Type, L)
                                            : B.laneInt(I.Type, L));
      break;
    }
    case Opcode::VExtractLast:
    case Opcode::VSlctLast: {
      ActiveMask = effectiveMask(I);
      const VecReg S = V[I.Src1.Index];
      unsigned Lane = Lanes - 1;
      uint64_t Enabled = ActiveMask & lowBitMask(Lanes);
      if (Enabled != 0)
        Lane = 63 - static_cast<unsigned>(std::countl_zero(Enabled));
      int64_t Value = S.laneInt(I.Type, Lane);
      if (I.Op == Opcode::VExtractLast) {
        R[I.Dst.Index] = Value;
      } else {
        VecReg &D = V[I.Dst.Index];
        for (unsigned L = 0; L < Lanes; ++L)
          D.setLaneInt(I.Type, L, Value);
      }
      break;
    }
    case Opcode::VReduceAdd:
    case Opcode::VReduceMin:
    case Opcode::VReduceMax: {
      ActiveMask = effectiveMask(I);
      const VecReg S = V[I.Src1.Index];
      if (isFloatType(I.Type)) {
        double Acc = I.Type == ElemType::F32
                         ? static_cast<double>(getScalarF32(I.Src2.Index))
                         : getScalarF64(I.Src2.Index);
        for (unsigned L = 0; L < Lanes; ++L) {
          if (!testBit(ActiveMask, L))
            continue;
          double X = S.laneFloat(I.Type, L);
          if (I.Op == Opcode::VReduceAdd)
            Acc += X;
          else if (I.Op == Opcode::VReduceMin)
            Acc = std::min(Acc, X);
          else
            Acc = std::max(Acc, X);
        }
        if (I.Type == ElemType::F32)
          setScalarF32(I.Dst.Index, static_cast<float>(Acc));
        else
          setScalarF64(I.Dst.Index, Acc);
      } else {
        int64_t Acc = R[I.Src2.Index];
        for (unsigned L = 0; L < Lanes; ++L) {
          if (!testBit(ActiveMask, L))
            continue;
          int64_t X = S.laneInt(I.Type, L);
          if (I.Op == Opcode::VReduceAdd)
            Acc = static_cast<int64_t>(static_cast<uint64_t>(Acc) +
                                       static_cast<uint64_t>(X));
          else if (I.Op == Opcode::VReduceMin)
            Acc = std::min(Acc, X);
          else
            Acc = std::max(Acc, X);
        }
        R[I.Dst.Index] = Acc;
      }
      break;
    }

    case Opcode::VLoad: {
      ActiveMask = effectiveMask(I);
      AccessSize = ES;
      uint64_t Base = scalarAddr();
      VecReg &D = V[I.Dst.Index];
      bool Stop = false;
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = Base + static_cast<uint64_t>(L) * ES;
        AddrScratch.push_back(Addr);
        int64_t Raw = 0;
        if (!memRead(Addr, &Raw, ES)) {
          Stop = true;
          break;
        }
        if (ES == 4 && I.Type == ElemType::I32)
          Raw = static_cast<int64_t>(static_cast<int32_t>(Raw));
        D.setLaneInt(I.Type, L, Raw);
      }
      break;
    }
    case Opcode::VStore: {
      ActiveMask = effectiveMask(I);
      AccessSize = ES;
      uint64_t Base = scalarAddr();
      const VecReg S = V[I.Src3.Index];
      bool Stop = false;
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = Base + static_cast<uint64_t>(L) * ES;
        AddrScratch.push_back(Addr);
        int64_t Raw = S.laneInt(I.Type, L);
        if (!memWrite(Addr, &Raw, ES))
          Stop = true;
      }
      break;
    }
    case Opcode::VGather: {
      ActiveMask = effectiveMask(I);
      AccessSize = ES;
      VecReg &D = V[I.Dst.Index];
      bool Stop = false;
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = gatherAddr(L);
        AddrScratch.push_back(Addr);
        int64_t Raw = 0;
        if (!memRead(Addr, &Raw, ES)) {
          Stop = true;
          break;
        }
        if (ES == 4 && I.Type == ElemType::I32)
          Raw = static_cast<int64_t>(static_cast<int32_t>(Raw));
        D.setLaneInt(I.Type, L, Raw);
      }
      break;
    }
    case Opcode::VScatter: {
      ActiveMask = effectiveMask(I);
      AccessSize = ES;
      const VecReg S = V[I.Src3.Index];
      bool Stop = false;
      // Lanes are stored in increasing order so that a later lane's store to
      // the same address wins, matching scalar iteration order.
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = gatherAddr(L);
        AddrScratch.push_back(Addr);
        int64_t Raw = S.laneInt(I.Type, L);
        if (!memWrite(Addr, &Raw, ES))
          Stop = true;
      }
      break;
    }

    case Opcode::VMovFF:
    case Opcode::VGatherFF: {
      // First-faulting semantics (Section 3.3.1): the leftmost write-mask
      // enabled element is non-speculative and faults architecturally; a
      // fault on any later enabled element zeroes the write mask from that
      // lane rightward and suppresses the exception.
      assert(I.MaskReg.isValid() && I.MaskReg.Index != 0 &&
             "first-faulting ops require a writable mask");
      uint64_t Mask = K[I.MaskReg.Index] & lowBitMask(Lanes);
      ActiveMask = Mask;
      AccessSize = ES;
      VecReg &D = V[I.Dst.Index];
      uint64_t Base =
          I.Op == Opcode::VMovFF ? scalarAddr() : 0; // gather uses per-lane
      bool SeenNonSpec = false;
      for (unsigned L = 0; L < Lanes; ++L) {
        if (!testBit(Mask, L))
          continue;
        uint64_t Addr = I.Op == Opcode::VMovFF
                            ? Base + static_cast<uint64_t>(L) * ES
                            : gatherAddr(L);
        int64_t Raw = 0;
        mem::AccessResult Res = M.read(Addr, &Raw, ES);
        if (!Res.Ok) {
          LastFault = Res.FaultAddr;
          if (!SeenNonSpec) {
            // Fault on the non-speculative element: architectural fault.
            Faulted = true;
            FaultAddr = Res.FaultAddr;
          } else {
            // Speculative fault: clip the write mask from this lane on.
            ++Stats.FFClips;
            Stats.FFSuppressedLanes += popcount(Mask & ~lowBitMask(L));
            K[I.MaskReg.Index] &= lowBitMask(L);
          }
          break;
        }
        AddrScratch.push_back(Addr);
        if (ES == 4 && I.Type == ElemType::I32)
          Raw = static_cast<int64_t>(static_cast<int32_t>(Raw));
        D.setLaneInt(I.Type, L, Raw);
        SeenNonSpec = true;
      }
      break;
    }

    case Opcode::VConflictM: {
      // Section 3.6: serialization points restart the comparison window.
      assert(!isFloatType(I.Type) && "conflict detection is on indices");
      uint64_t Enable = effectiveMask(I);
      const VecReg &V1 = V[I.Src1.Index];
      const VecReg &V2 = V[I.Src2.Index];
      uint64_t Out = 0;
      unsigned WindowStart = 0;
      for (unsigned J = 0; J < Lanes; ++J) {
        int64_t Needle = V1.laneInt(I.Type, J);
        for (unsigned P = WindowStart; P < J; ++P) {
          if (!testBit(Enable, P))
            continue;
          if (V2.laneInt(I.Type, P) == Needle) {
            Out |= 1ULL << J;
            WindowStart = J;
            break;
          }
        }
      }
      ++Stats.ConflictChecks;
      Stats.ConflictHits += popcount(Out);
      K[I.Dst.Index] = Out;
      break;
    }

    case Opcode::KFtmExc:
    case Opcode::KFtmInc: {
      // Section 3.4: scan KStop (Src1) through the write-enable mask; safe
      // lanes are the enabled lanes before (EXC) / through (INC) the first
      // enabled stop bit. For the exclusive variant, a stop bit at the
      // leading enabled lane is ignored: that lane has no preceding lanes
      // left to wait for, which is what guarantees forward progress of the
      // do/while VPL in Figure 2(b).
      uint64_t Enable = effectiveMask(I);
      uint64_t Stop = K[I.Src1.Index] & Enable;
      if (I.Op == Opcode::KFtmExc && Enable != 0)
        Stop &= ~(1ULL << countTrailingZeros(Enable));
      uint64_t Out;
      if (Stop == 0) {
        Out = Enable;
      } else {
        unsigned First = countTrailingZeros(Stop);
        unsigned Cut = I.Op == Opcode::KFtmExc ? First : First + 1;
        Out = Enable & lowBitMask(Cut);
      }
      ++Stats.VplSteps;
      if (Out != Enable)
        ++Stats.VplPartitions;
      K[I.Dst.Index] = Out;
      break;
    }

    case Opcode::KMov:
      K[I.Dst.Index] = K[I.Src1.Index];
      break;
    case Opcode::KSet:
      K[I.Dst.Index] = static_cast<uint64_t>(I.Imm);
      break;
    case Opcode::KAnd:
      K[I.Dst.Index] = K[I.Src1.Index] & K[I.Src2.Index];
      break;
    case Opcode::KOr:
      K[I.Dst.Index] = K[I.Src1.Index] | K[I.Src2.Index];
      break;
    case Opcode::KXor:
      K[I.Dst.Index] = K[I.Src1.Index] ^ K[I.Src2.Index];
      break;
    case Opcode::KAndN:
      K[I.Dst.Index] = ~K[I.Src1.Index] & K[I.Src2.Index];
      break;
    case Opcode::KNot:
      K[I.Dst.Index] = ~K[I.Src1.Index] & lowBitMask(Lanes);
      break;
    case Opcode::KTest:
      R[I.Dst.Index] = K[I.Src1.Index] != 0 ? 1 : 0;
      break;
    case Opcode::KPopcnt:
      R[I.Dst.Index] = popcount(K[I.Src1.Index]);
      break;

    case Opcode::XBegin:
      if (Tx.isActive()) {
        // Nested XBEGIN: architectural abort of the running transaction.
        // The existing snapshot and abort target stay in place so the
        // rollback below behaves like any other abort.
        Tx.begin();
        TxAborted = true;
        break;
      }
      TxSnapshot.R = R;
      TxSnapshot.V = V;
      TxSnapshot.K = K;
      TxAbortTarget = I.Target;
      TxBeginPC = PC;
      Tx.begin();
      break;
    case Opcode::XEnd:
      if (Tx.commit()) {
        ++Stats.RtmRetryDepth[std::min(
            TxAttempts, ExecStats::RtmRetryDepthBuckets - 1)];
        TxAttempts = 0;
      } else {
        TxAborted = true; // Injected commit-time abort.
      }
      break;
    case Opcode::XAbort:
      Tx.abort(rtm::AbortReason::Explicit);
      TxAborted = true;
      break;
    }

    // Transaction abort: memory is already rolled back; restore registers,
    // then apply the resilience policy — transient aborts re-execute from
    // XBEGIN (bounded, with exponential backoff) and everything else, or an
    // exhausted retry budget, dispatches to the abort handler (the
    // compiled scalar fallback body).
    if (TxAborted) {
      R = TxSnapshot.R;
      V = TxSnapshot.V;
      K = TxSnapshot.K;
      rtm::AbortReason Why = Tx.lastAbortReason();
      recordAbort(Why);
      if (rtm::isRetryableAbort(Why) && TxAttempts < Limits.MaxRtmRetries) {
        ++TxAttempts;
        ++Stats.RtmRetries;
        Stats.BackoffCycles += 1ULL << std::min(TxAttempts, 16u);
        NextPC = TxBeginPC; // Re-execute the XBEGIN.
      } else {
        TxAttempts = 0;
        ++Stats.RtmFallbacks;
        NextPC = static_cast<uint32_t>(TxAbortTarget);
      }
      Taken = true;
      TxAborted = false;
    }

    ++Stats.Instructions;
    ++Stats.OpcodeCounts[static_cast<unsigned>(I.Op)];
    if (I.isBranch()) {
      ++Stats.Branches;
      if (Taken)
        ++Stats.TakenBranches;
    }
    if (I.isVector()) {
      ++Stats.VectorOps;
      ++Stats.MaskDensity[std::min(
          popcount(ActiveMask), ExecStats::MaskDensityBuckets - 1)];
    }
    Stats.MemoryAccesses += AddrScratch.size();

    if (Sink) {
      DynInstr DI;
      DI.Instr = &I;
      DI.InstrIdx = PC;
      DI.NextIdx = NextPC;
      DI.Taken = Taken;
      DI.ActiveMask = ActiveMask;
      DI.AccessSize = AccessSize;
      DI.MemAddrs = &AddrScratch;
      Sink->onInstr(DI);
    }

    if (Faulted) {
      Result.Reason = StopReason::Fault;
      Result.FaultAddr = FaultAddr;
      Result.FaultPC = PC;
      Result.FaultOp = I.Op;
      return Result;
    }

    PC = NextPC;
  }
}

// --- Metrics export ------------------------------------------------------===//

void emu::recordMetrics(const ExecStats &S, obs::Registry &R) {
  R.counter("emu.instructions").inc(S.Instructions);
  R.counter("emu.branches").inc(S.Branches);
  R.counter("emu.taken_branches").inc(S.TakenBranches);
  R.counter("emu.memory_accesses").inc(S.MemoryAccesses);
  R.counter("emu.vector_ops").inc(S.VectorOps);
  R.counter("emu.vpl.steps").inc(S.VplSteps);
  R.counter("emu.vpl.partitions").inc(S.VplPartitions);
  R.counter("emu.ff.clips").inc(S.FFClips);
  R.counter("emu.ff.suppressed_lanes").inc(S.FFSuppressedLanes);
  R.counter("emu.conflict.checks").inc(S.ConflictChecks);
  R.counter("emu.conflict.hits").inc(S.ConflictHits);
  R.counter("emu.rtm.retries").inc(S.RtmRetries);
  R.counter("emu.rtm.fallbacks").inc(S.RtmFallbacks);
  R.counter("emu.rtm.backoff_cycles").inc(S.BackoffCycles);
  obs::Histogram &MD =
      R.histogram("emu.mask_density", ExecStats::MaskDensityBuckets);
  for (unsigned B = 0; B < ExecStats::MaskDensityBuckets; ++B)
    if (S.MaskDensity[B])
      MD.addToBucket(B, S.MaskDensity[B]);
  obs::Histogram &RD =
      R.histogram("emu.rtm.retry_depth", ExecStats::RtmRetryDepthBuckets);
  for (unsigned B = 0; B < ExecStats::RtmRetryDepthBuckets; ++B)
    if (S.RtmRetryDepth[B])
      RD.addToBucket(B, S.RtmRetryDepth[B]);
}
