//===- emu/Machine.cpp ----------------------------------------------------===//

#include "emu/Machine.h"

#include "obs/Metrics.h"
#include "support/Bits.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace flexvec;
using namespace flexvec::emu;
using namespace flexvec::isa;

unsigned emu::defaultRtmRetries() {
  static const unsigned Cached = [] {
    if (const char *Env = std::getenv("FLEXVEC_RTM_RETRIES")) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Env, &End, 10);
      if (End && *End == '\0' && V <= 1u << 20)
        return static_cast<unsigned>(V);
    }
    return 4u;
  }();
  return Cached;
}

TraceSink::~TraceSink() = default;

void TraceSink::onBatch(const DynInstr *Batch, size_t N) {
  // Compatibility shim: sinks that predate batching observe the exact
  // per-instruction stream they always did.
  for (size_t I = 0; I < N; ++I)
    onInstr(Batch[I]);
}

const char *emu::stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::Halted:
    return "halted";
  case StopReason::Fault:
    return "fault";
  case StopReason::BudgetExceeded:
    return "budget-exceeded";
  }
  unreachable("unknown stop reason");
}

void ExecStats::merge(const ExecStats &O) {
  Instructions += O.Instructions;
  Branches += O.Branches;
  TakenBranches += O.TakenBranches;
  MemoryAccesses += O.MemoryAccesses;
  VectorOps += O.VectorOps;
  RtmRetries += O.RtmRetries;
  RtmFallbacks += O.RtmFallbacks;
  RtmBudgetExhausted += O.RtmBudgetExhausted;
  BackoffCycles += O.BackoffCycles;
  TraceBatches += O.TraceBatches;
  VplSteps += O.VplSteps;
  VplPartitions += O.VplPartitions;
  FFClips += O.FFClips;
  FFSuppressedLanes += O.FFSuppressedLanes;
  ConflictChecks += O.ConflictChecks;
  ConflictHits += O.ConflictHits;
  for (size_t I = 0; I < MaskDensity.size(); ++I)
    MaskDensity[I] += O.MaskDensity[I];
  for (size_t I = 0; I < RtmRetryDepth.size(); ++I)
    RtmRetryDepth[I] += O.RtmRetryDepth[I];
  for (size_t I = 0; I < OpcodeCounts.size(); ++I)
    OpcodeCounts[I] += O.OpcodeCounts[I];
}

std::string ExecResult::describe() const {
  std::string S = stopReasonName(Reason);
  if (Reason != StopReason::Halted) {
    S += " at pc=" + std::to_string(FaultPC) + " (" +
         isa::opcodeName(FaultOp) + ")";
    if (Reason == StopReason::Fault || FaultAddr != 0)
      S += ", fault addr=" + std::to_string(FaultAddr);
  }
  if (!AbortHistory.empty()) {
    S += ", aborts=[";
    for (size_t I = 0; I < AbortHistory.size(); ++I) {
      if (I)
        S += " ";
      S += rtm::abortReasonName(AbortHistory[I]);
    }
    S += "]";
  }
  if (Stats.RtmRetries || Stats.RtmFallbacks)
    S += ", rtm retries=" + std::to_string(Stats.RtmRetries) +
         " fallbacks=" + std::to_string(Stats.RtmFallbacks);
  return S;
}

// --- VecReg lane accessors ----------------------------------------------===//

int64_t VecReg::laneInt(ElemType Ty, unsigned Lane) const {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  switch (Ty) {
  case ElemType::I32: {
    int32_t V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return V;
  }
  case ElemType::I64: {
    int64_t V;
    std::memcpy(&V, Bytes.data() + Lane * 8, 8);
    return V;
  }
  case ElemType::F32: {
    uint32_t V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return static_cast<int64_t>(V);
  }
  case ElemType::F64: {
    uint64_t V;
    std::memcpy(&V, Bytes.data() + Lane * 8, 8);
    return static_cast<int64_t>(V);
  }
  }
  unreachable("covered switch");
}

void VecReg::setLaneInt(ElemType Ty, unsigned Lane, int64_t Value) {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  switch (Ty) {
  case ElemType::I32:
  case ElemType::F32: {
    uint32_t V = static_cast<uint32_t>(Value);
    std::memcpy(Bytes.data() + Lane * 4, &V, 4);
    return;
  }
  case ElemType::I64:
  case ElemType::F64: {
    std::memcpy(Bytes.data() + Lane * 8, &Value, 8);
    return;
  }
  }
  unreachable("covered switch");
}

double VecReg::laneFloat(ElemType Ty, unsigned Lane) const {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  if (Ty == ElemType::F32) {
    float V;
    std::memcpy(&V, Bytes.data() + Lane * 4, 4);
    return V;
  }
  assert(Ty == ElemType::F64 && "float lane access on integer type");
  double V;
  std::memcpy(&V, Bytes.data() + Lane * 8, 8);
  return V;
}

void VecReg::setLaneFloat(ElemType Ty, unsigned Lane, double Value) {
  assert(Lane < lanesFor(Ty) && "lane out of range");
  if (Ty == ElemType::F32) {
    float V = static_cast<float>(Value);
    std::memcpy(Bytes.data() + Lane * 4, &V, 4);
    return;
  }
  assert(Ty == ElemType::F64 && "float lane access on integer type");
  std::memcpy(Bytes.data() + Lane * 8, &Value, 8);
}

// --- Machine scalar FP helpers ------------------------------------------===//

double Machine::getScalarF64(unsigned I) const {
  double V;
  int64_t Bits = R[I];
  std::memcpy(&V, &Bits, 8);
  return V;
}

void Machine::setScalarF64(unsigned I, double V) {
  int64_t Bits;
  std::memcpy(&Bits, &V, 8);
  R[I] = Bits;
}

float Machine::getScalarF32(unsigned I) const {
  float V;
  uint32_t Bits = static_cast<uint32_t>(R[I]);
  std::memcpy(&V, &Bits, 4);
  return V;
}

void Machine::setScalarF32(unsigned I, float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, 4);
  R[I] = static_cast<int64_t>(static_cast<uint64_t>(Bits));
}

void Machine::resetRegisters() {
  R.fill(0);
  for (VecReg &Reg : V)
    Reg.Bytes.fill(0);
  K.fill(0);
  TxAborted = false;
  Faulted = false;
}

void Machine::predecode(const Program &P) {
  Plan.clear();
  Plan.reserve(P.size());
  for (size_t Idx = 0; Idx < P.size(); ++Idx) {
    const Instruction &I = P[Idx];
    DecodedInstr D;
    D.Op = I.Op;
    D.Type = I.Type;
    D.Cond = I.Cond;
    D.ES = static_cast<uint8_t>(elemSize(I.Type));
    D.Lanes = static_cast<uint8_t>(lanesFor(I.Type));
    D.Dst = I.Dst.Index;
    D.Src1 = I.Src1.Index;
    D.Src2 = I.Src2.Index;
    D.Src3 = I.Src3.Index;
    // k0 (or no mask register) enables all lanes of the element type.
    D.EffMask = (!I.MaskReg.isValid() || I.MaskReg.Index == 0)
                    ? NoEffMask
                    : I.MaskReg.Index;
    D.Scale = I.Scale;
    D.Flags = static_cast<uint8_t>((I.isBranch() ? FlagBranch : 0) |
                                   (I.isVector() ? FlagVector : 0) |
                                   (I.Src2.isValid() ? FlagSrc2Valid : 0) |
                                   (I.isMemory() ? FlagMemory : 0));
    D.AllMask = lowBitMask(D.Lanes);
    D.Imm = I.Imm;
    D.Disp = I.Disp;
    D.Target = I.Target;
    Plan.push_back(D);
  }
}

void Machine::flushBatch(TraceSink *Sink, ExecStats &Stats) {
  if (BatchLen == 0)
    return;
  // Fix up the address-pool pointers now: the pool may have reallocated
  // while the batch filled, so offsets were recorded instead.
  for (size_t I = 0; I < BatchLen; ++I)
    Batch[I].MemAddrs =
        Batch[I].NumMemAddrs ? AddrPool.data() + BatchAddrOff[I] : nullptr;
  Sink->onBatch(Batch.data(), BatchLen);
  ++Stats.TraceBatches;
  BatchLen = 0;
  AddrPool.clear();
}

bool Machine::memRead(uint64_t Addr, void *Out, uint64_t Size) {
  if (Tx.isActive()) {
    rtm::AbortReason Reason;
    if (!Tx.read(Addr, Out, Size, Reason)) {
      TxAborted = true;
      return false;
    }
    return true;
  }
  mem::AccessResult Res = M.read(Addr, Out, Size);
  if (!Res.Ok) {
    Faulted = true;
    FaultAddr = Res.FaultAddr;
    return false;
  }
  return true;
}

bool Machine::memWrite(uint64_t Addr, const void *Data, uint64_t Size) {
  if (Tx.isActive()) {
    rtm::AbortReason Reason;
    if (!Tx.write(Addr, Data, Size, Reason)) {
      TxAborted = true;
      return false;
    }
    return true;
  }
  mem::AccessResult Res = M.write(Addr, Data, Size);
  if (!Res.Ok) {
    Faulted = true;
    FaultAddr = Res.FaultAddr;
    return false;
  }
  return true;
}

// --- Main interpreter ----------------------------------------------------===//

namespace {

int64_t applyScalarIntOp(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  case Opcode::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                static_cast<uint64_t>(B));
  case Opcode::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(A) *
                                static_cast<uint64_t>(B));
  case Opcode::Div:
    assert(B != 0 && "division by zero");
    return A / B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(A)
                                << (static_cast<uint64_t>(B) & 63));
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >>
                                (static_cast<uint64_t>(B) & 63));
  case Opcode::Min:
    return std::min(A, B);
  case Opcode::Max:
    return std::max(A, B);
  default:
    unreachable("not a scalar integer binary opcode");
  }
}

double applyScalarFpOp(Opcode Op, double A, double B) {
  switch (Op) {
  case Opcode::FAdd:
    return A + B;
  case Opcode::FSub:
    return A - B;
  case Opcode::FMul:
    return A * B;
  case Opcode::FDiv:
    return A / B;
  case Opcode::FMin:
    return std::min(A, B);
  case Opcode::FMax:
    return std::max(A, B);
  default:
    unreachable("not a scalar fp binary opcode");
  }
}

int64_t applyVectorIntOp(Opcode Op, ElemType Ty, int64_t A, int64_t B) {
  bool Is32 = elemSize(Ty) == 4;
  auto wrap = [Is32](int64_t X) {
    return Is32 ? static_cast<int64_t>(static_cast<int32_t>(X)) : X;
  };
  switch (Op) {
  case Opcode::VAdd:
  case Opcode::VAddImm:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A) +
                                     static_cast<uint64_t>(B)));
  case Opcode::VSub:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A) -
                                     static_cast<uint64_t>(B)));
  case Opcode::VMul:
  case Opcode::VMulImm:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A) *
                                     static_cast<uint64_t>(B)));
  case Opcode::VAnd:
    return A & B;
  case Opcode::VOr:
    return A | B;
  case Opcode::VXor:
    return A ^ B;
  case Opcode::VMin:
    return std::min(A, B);
  case Opcode::VMax:
    return std::max(A, B);
  case Opcode::VShlImm:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(A)
                                     << (static_cast<uint64_t>(B) & 63)));
  default:
    unreachable("not a vector integer binary opcode");
  }
}

double applyVectorFpOp(Opcode Op, double A, double B) {
  switch (Op) {
  case Opcode::VFAdd:
    return A + B;
  case Opcode::VFSub:
    return A - B;
  case Opcode::VFMul:
    return A * B;
  case Opcode::VFDiv:
    return A / B;
  case Opcode::VFMin:
    return std::min(A, B);
  case Opcode::VFMax:
    return std::max(A, B);
  default:
    unreachable("not a vector fp binary opcode");
  }
}

} // namespace

ExecResult Machine::run(const Program &P, RunLimits Limits, TraceSink *Sink) {
  ExecResult Result;
  ExecStats &Stats = Result.Stats;
  if (P.empty())
    return Result;

  // Decode once into the dense plan; the dynamic loop below never touches
  // the (string-carrying) isa::Instruction records again except to hand
  // trace consumers their static-instruction pointer.
  predecode(P);
  const bool Collect = Sink != nullptr;
  AddrPool.clear();
  BatchLen = 0;

  uint32_t PC = 0;

  // Resilience-policy state for this run.
  unsigned TxAttempts = 0;   ///< Retries burned at the current XBEGIN site.
  uint32_t TxBeginPC = 0;    ///< PC of the active transaction's XBEGIN.
  uint64_t LastFault = 0;    ///< Last fault address observed (any kind).
  auto recordAbort = [&Result](rtm::AbortReason Why) {
    if (Result.AbortHistory.size() < ExecResult::MaxAbortHistory)
      Result.AbortHistory.push_back(Why);
  };

  while (true) {
    if (Stats.Instructions >= Limits.MaxInstructions) {
      // Watchdog: a VPL that stopped making forward progress (or a
      // runaway retry storm) is reported with enough context to debug it.
      Result.Reason = StopReason::BudgetExceeded;
      Result.FaultPC = PC;
      Result.FaultOp = PC < P.size() ? P[PC].Op : isa::Opcode::Nop;
      Result.FaultAddr = LastFault;
      if (Sink)
        flushBatch(Sink, Stats);
      return Result;
    }
    assert(PC < Plan.size() && "program counter out of range");
    const DecodedInstr &D = Plan[PC];
    uint32_t NextPC = PC + 1;
    bool Taken = false;
    uint64_t ActiveMask = 0;
    // Effective addresses are counted always (for Stats.MemoryAccesses)
    // but only materialized into the pool when a sink will consume them.
    uint32_t AddrStart = static_cast<uint32_t>(AddrPool.size());
    uint32_t AddrCount = 0;
    auto pushAddr = [&](uint64_t A) {
      ++AddrCount;
      if (Collect)
        AddrPool.push_back(A);
    };
    Faulted = false;
    TxAborted = false;

    unsigned ES = D.ES;
    unsigned Lanes = D.Lanes;

    /// Resolved write mask: k0 (or no mask) enables all lanes.
    auto effMask = [&]() {
      return D.EffMask == NoEffMask ? D.AllMask : (K[D.EffMask] & D.AllMask);
    };
    // Effective scalar address for scalar/contiguous-vector memory ops.
    auto scalarAddr = [&]() {
      uint64_t A = static_cast<uint64_t>(R[D.Src1]) + D.Disp;
      if (D.Flags & FlagSrc2Valid)
        A += static_cast<uint64_t>(R[D.Src2]) * D.Scale;
      return A;
    };
    // Effective address for lane L of a gather/scatter.
    auto gatherAddr = [&](unsigned L) {
      return static_cast<uint64_t>(R[D.Src1]) +
             static_cast<uint64_t>(V[D.Src2].laneInt(D.Type, L)) * D.Scale +
             D.Disp;
    };

    switch (D.Op) {
    case Opcode::Halt:
      ++Stats.Instructions;
      ++Stats.OpcodeCounts[static_cast<unsigned>(D.Op)];
      // Halt itself is never delivered to the sink; drain what precedes it.
      if (Sink)
        flushBatch(Sink, Stats);
      Result.Reason = StopReason::Halted;
      return Result;
    case Opcode::Nop:
      break;
    case Opcode::Jmp:
      Taken = true;
      NextPC = static_cast<uint32_t>(D.Target);
      break;
    case Opcode::BrZero:
      Taken = R[D.Src1] == 0;
      if (Taken)
        NextPC = static_cast<uint32_t>(D.Target);
      break;
    case Opcode::BrNonZero:
      Taken = R[D.Src1] != 0;
      if (Taken)
        NextPC = static_cast<uint32_t>(D.Target);
      break;

    case Opcode::MovImm:
      R[D.Dst] = D.Imm;
      break;
    case Opcode::Mov:
      R[D.Dst] = R[D.Src1];
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Min:
    case Opcode::Max:
      R[D.Dst] = applyScalarIntOp(D.Op, R[D.Src1], R[D.Src2]);
      break;
    case Opcode::AddImm:
      R[D.Dst] = applyScalarIntOp(Opcode::Add, R[D.Src1], D.Imm);
      break;
    case Opcode::MulImm:
      R[D.Dst] = applyScalarIntOp(Opcode::Mul, R[D.Src1], D.Imm);
      break;
    case Opcode::AndImm:
      R[D.Dst] = R[D.Src1] & D.Imm;
      break;
    case Opcode::ShlImm:
      R[D.Dst] = applyScalarIntOp(Opcode::Shl, R[D.Src1], D.Imm);
      break;
    case Opcode::ShrImm:
      R[D.Dst] = applyScalarIntOp(Opcode::Shr, R[D.Src1], D.Imm);
      break;
    case Opcode::Cmp:
      R[D.Dst] = evalCmp(D.Cond, R[D.Src1], R[D.Src2]) ? 1 : 0;
      break;
    case Opcode::CmpImm:
      R[D.Dst] = evalCmp(D.Cond, R[D.Src1], D.Imm) ? 1 : 0;
      break;
    case Opcode::Select:
      R[D.Dst] = R[D.Src1] != 0 ? R[D.Src2] : R[D.Src3];
      break;

    case Opcode::FMovImm:
      R[D.Dst] = D.Imm;
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FMin:
    case Opcode::FMax: {
      if (D.Type == ElemType::F32) {
        float A = getScalarF32(D.Src1);
        float B = getScalarF32(D.Src2);
        setScalarF32(D.Dst, static_cast<float>(applyScalarFpOp(D.Op, A, B)));
      } else {
        setScalarF64(D.Dst, applyScalarFpOp(D.Op, getScalarF64(D.Src1),
                                            getScalarF64(D.Src2)));
      }
      break;
    }
    case Opcode::FCmp: {
      double A, B;
      if (D.Type == ElemType::F32) {
        A = getScalarF32(D.Src1);
        B = getScalarF32(D.Src2);
      } else {
        A = getScalarF64(D.Src1);
        B = getScalarF64(D.Src2);
      }
      R[D.Dst] = evalCmp(D.Cond, A, B) ? 1 : 0;
      break;
    }

    case Opcode::Load: {
      uint64_t Addr = scalarAddr();
      pushAddr(Addr);
      if (ES == 4) {
        uint32_t Raw;
        if (!memRead(Addr, &Raw, 4))
          break;
        R[D.Dst] = D.Type == ElemType::I32
                       ? static_cast<int64_t>(static_cast<int32_t>(Raw))
                       : static_cast<int64_t>(Raw);
      } else {
        int64_t Raw;
        if (!memRead(Addr, &Raw, 8))
          break;
        R[D.Dst] = Raw;
      }
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = scalarAddr();
      pushAddr(Addr);
      if (ES == 4) {
        uint32_t Raw = static_cast<uint32_t>(R[D.Src3]);
        memWrite(Addr, &Raw, 4);
      } else {
        int64_t Raw = R[D.Src3];
        memWrite(Addr, &Raw, 8);
      }
      break;
    }

    case Opcode::VBroadcast: {
      ActiveMask = effMask();
      VecReg &Dv = V[D.Dst];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          Dv.setLaneInt(D.Type, L, R[D.Src1]);
      break;
    }
    case Opcode::VBroadcastImm: {
      ActiveMask = effMask();
      VecReg &Dv = V[D.Dst];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          Dv.setLaneInt(D.Type, L, D.Imm);
      break;
    }
    case Opcode::VIndex: {
      ActiveMask = D.AllMask;
      VecReg &Dv = V[D.Dst];
      for (unsigned L = 0; L < Lanes; ++L)
        Dv.setLaneInt(D.Type, L, R[D.Src1] + L);
      break;
    }
    case Opcode::VAdd:
    case Opcode::VSub:
    case Opcode::VMul:
    case Opcode::VAnd:
    case Opcode::VOr:
    case Opcode::VXor:
    case Opcode::VMin:
    case Opcode::VMax: {
      ActiveMask = effMask();
      const VecReg A = V[D.Src1];
      const VecReg B = V[D.Src2];
      VecReg &Dv = V[D.Dst];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          Dv.setLaneInt(D.Type, L,
                        applyVectorIntOp(D.Op, D.Type, A.laneInt(D.Type, L),
                                         B.laneInt(D.Type, L)));
      break;
    }
    case Opcode::VAddImm:
    case Opcode::VMulImm:
    case Opcode::VShlImm: {
      ActiveMask = effMask();
      const VecReg A = V[D.Src1];
      VecReg &Dv = V[D.Dst];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          Dv.setLaneInt(D.Type, L,
                        applyVectorIntOp(D.Op, D.Type, A.laneInt(D.Type, L),
                                         D.Imm));
      break;
    }
    case Opcode::VFAdd:
    case Opcode::VFSub:
    case Opcode::VFMul:
    case Opcode::VFDiv:
    case Opcode::VFMin:
    case Opcode::VFMax: {
      ActiveMask = effMask();
      const VecReg A = V[D.Src1];
      const VecReg B = V[D.Src2];
      VecReg &Dv = V[D.Dst];
      for (unsigned L = 0; L < Lanes; ++L)
        if (testBit(ActiveMask, L))
          Dv.setLaneFloat(D.Type, L,
                          applyVectorFpOp(D.Op, A.laneFloat(D.Type, L),
                                          B.laneFloat(D.Type, L)));
      break;
    }
    case Opcode::VCmp:
    case Opcode::VCmpImm: {
      ActiveMask = effMask();
      const VecReg A = V[D.Src1];
      uint64_t Out = 0;
      for (unsigned L = 0; L < Lanes; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        bool Bit;
        if (isFloatType(D.Type)) {
          double BVal = D.Op == Opcode::VCmp ? V[D.Src2].laneFloat(D.Type, L)
                                             : static_cast<double>(D.Imm);
          Bit = evalCmp(D.Cond, A.laneFloat(D.Type, L), BVal);
        } else {
          int64_t BVal =
              D.Op == Opcode::VCmp ? V[D.Src2].laneInt(D.Type, L) : D.Imm;
          Bit = evalCmp(D.Cond, A.laneInt(D.Type, L), BVal);
        }
        if (Bit)
          Out |= 1ULL << L;
      }
      K[D.Dst] = Out;
      break;
    }
    case Opcode::VBlend: {
      ActiveMask = effMask();
      const VecReg A = V[D.Src1];
      const VecReg B = V[D.Src2];
      VecReg &Dv = V[D.Dst];
      for (unsigned L = 0; L < Lanes; ++L)
        Dv.setLaneInt(D.Type, L,
                      testBit(ActiveMask, L) ? A.laneInt(D.Type, L)
                                             : B.laneInt(D.Type, L));
      break;
    }
    case Opcode::VExtractLast:
    case Opcode::VSlctLast: {
      ActiveMask = effMask();
      const VecReg S = V[D.Src1];
      unsigned Lane = Lanes - 1;
      uint64_t Enabled = ActiveMask & D.AllMask;
      if (Enabled != 0)
        Lane = 63 - static_cast<unsigned>(std::countl_zero(Enabled));
      int64_t Value = S.laneInt(D.Type, Lane);
      if (D.Op == Opcode::VExtractLast) {
        R[D.Dst] = Value;
      } else {
        VecReg &Dv = V[D.Dst];
        for (unsigned L = 0; L < Lanes; ++L)
          Dv.setLaneInt(D.Type, L, Value);
      }
      break;
    }
    case Opcode::VReduceAdd:
    case Opcode::VReduceMin:
    case Opcode::VReduceMax: {
      ActiveMask = effMask();
      const VecReg S = V[D.Src1];
      if (isFloatType(D.Type)) {
        double Acc = D.Type == ElemType::F32
                         ? static_cast<double>(getScalarF32(D.Src2))
                         : getScalarF64(D.Src2);
        for (unsigned L = 0; L < Lanes; ++L) {
          if (!testBit(ActiveMask, L))
            continue;
          double X = S.laneFloat(D.Type, L);
          if (D.Op == Opcode::VReduceAdd)
            Acc += X;
          else if (D.Op == Opcode::VReduceMin)
            Acc = std::min(Acc, X);
          else
            Acc = std::max(Acc, X);
        }
        if (D.Type == ElemType::F32)
          setScalarF32(D.Dst, static_cast<float>(Acc));
        else
          setScalarF64(D.Dst, Acc);
      } else {
        int64_t Acc = R[D.Src2];
        for (unsigned L = 0; L < Lanes; ++L) {
          if (!testBit(ActiveMask, L))
            continue;
          int64_t X = S.laneInt(D.Type, L);
          if (D.Op == Opcode::VReduceAdd)
            Acc = static_cast<int64_t>(static_cast<uint64_t>(Acc) +
                                       static_cast<uint64_t>(X));
          else if (D.Op == Opcode::VReduceMin)
            Acc = std::min(Acc, X);
          else
            Acc = std::max(Acc, X);
        }
        R[D.Dst] = Acc;
      }
      break;
    }

    case Opcode::VLoad: {
      ActiveMask = effMask();
      uint64_t Base = scalarAddr();
      VecReg &Dv = V[D.Dst];
      bool Stop = false;
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = Base + static_cast<uint64_t>(L) * ES;
        pushAddr(Addr);
        int64_t Raw = 0;
        if (!memRead(Addr, &Raw, ES)) {
          Stop = true;
          break;
        }
        if (ES == 4 && D.Type == ElemType::I32)
          Raw = static_cast<int64_t>(static_cast<int32_t>(Raw));
        Dv.setLaneInt(D.Type, L, Raw);
      }
      break;
    }
    case Opcode::VStore: {
      ActiveMask = effMask();
      uint64_t Base = scalarAddr();
      const VecReg S = V[D.Src3];
      bool Stop = false;
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = Base + static_cast<uint64_t>(L) * ES;
        pushAddr(Addr);
        int64_t Raw = S.laneInt(D.Type, L);
        if (!memWrite(Addr, &Raw, ES))
          Stop = true;
      }
      break;
    }
    case Opcode::VGather: {
      ActiveMask = effMask();
      VecReg &Dv = V[D.Dst];
      bool Stop = false;
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = gatherAddr(L);
        pushAddr(Addr);
        int64_t Raw = 0;
        if (!memRead(Addr, &Raw, ES)) {
          Stop = true;
          break;
        }
        if (ES == 4 && D.Type == ElemType::I32)
          Raw = static_cast<int64_t>(static_cast<int32_t>(Raw));
        Dv.setLaneInt(D.Type, L, Raw);
      }
      break;
    }
    case Opcode::VScatter: {
      ActiveMask = effMask();
      const VecReg S = V[D.Src3];
      bool Stop = false;
      // Lanes are stored in increasing order so that a later lane's store to
      // the same address wins, matching scalar iteration order.
      for (unsigned L = 0; L < Lanes && !Stop; ++L) {
        if (!testBit(ActiveMask, L))
          continue;
        uint64_t Addr = gatherAddr(L);
        pushAddr(Addr);
        int64_t Raw = S.laneInt(D.Type, L);
        if (!memWrite(Addr, &Raw, ES))
          Stop = true;
      }
      break;
    }

    case Opcode::VMovFF:
    case Opcode::VGatherFF: {
      // First-faulting semantics (Section 3.3.1): the leftmost write-mask
      // enabled element is non-speculative and faults architecturally; a
      // fault on any later enabled element zeroes the write mask from that
      // lane rightward and suppresses the exception.
      assert(D.EffMask != NoEffMask &&
             "first-faulting ops require a writable mask");
      uint64_t Mask = K[D.EffMask] & D.AllMask;
      ActiveMask = Mask;
      VecReg &Dv = V[D.Dst];
      uint64_t Base =
          D.Op == Opcode::VMovFF ? scalarAddr() : 0; // gather uses per-lane
      bool SeenNonSpec = false;
      for (unsigned L = 0; L < Lanes; ++L) {
        if (!testBit(Mask, L))
          continue;
        uint64_t Addr = D.Op == Opcode::VMovFF
                            ? Base + static_cast<uint64_t>(L) * ES
                            : gatherAddr(L);
        int64_t Raw = 0;
        mem::AccessResult Res = M.read(Addr, &Raw, ES);
        if (!Res.Ok) {
          LastFault = Res.FaultAddr;
          if (!SeenNonSpec) {
            // Fault on the non-speculative element: architectural fault.
            Faulted = true;
            FaultAddr = Res.FaultAddr;
          } else {
            // Speculative fault: clip the write mask from this lane on.
            ++Stats.FFClips;
            Stats.FFSuppressedLanes += popcount(Mask & ~lowBitMask(L));
            K[D.EffMask] &= lowBitMask(L);
          }
          break;
        }
        pushAddr(Addr);
        if (ES == 4 && D.Type == ElemType::I32)
          Raw = static_cast<int64_t>(static_cast<int32_t>(Raw));
        Dv.setLaneInt(D.Type, L, Raw);
        SeenNonSpec = true;
      }
      break;
    }

    case Opcode::VConflictM: {
      // Section 3.6: serialization points restart the comparison window.
      assert(!isFloatType(D.Type) && "conflict detection is on indices");
      uint64_t Enable = effMask();
      const VecReg &V1 = V[D.Src1];
      const VecReg &V2 = V[D.Src2];
      uint64_t Out = 0;
      unsigned WindowStart = 0;
      for (unsigned J = 0; J < Lanes; ++J) {
        int64_t Needle = V1.laneInt(D.Type, J);
        for (unsigned Prev = WindowStart; Prev < J; ++Prev) {
          if (!testBit(Enable, Prev))
            continue;
          if (V2.laneInt(D.Type, Prev) == Needle) {
            Out |= 1ULL << J;
            WindowStart = J;
            break;
          }
        }
      }
      ++Stats.ConflictChecks;
      Stats.ConflictHits += popcount(Out);
      K[D.Dst] = Out;
      break;
    }

    case Opcode::KFtmExc:
    case Opcode::KFtmInc: {
      // Section 3.4: scan KStop (Src1) through the write-enable mask; safe
      // lanes are the enabled lanes before (EXC) / through (INC) the first
      // enabled stop bit. For the exclusive variant, a stop bit at the
      // leading enabled lane is ignored: that lane has no preceding lanes
      // left to wait for, which is what guarantees forward progress of the
      // do/while VPL in Figure 2(b).
      uint64_t Enable = effMask();
      uint64_t Stop = K[D.Src1] & Enable;
      if (D.Op == Opcode::KFtmExc && Enable != 0)
        Stop &= ~(1ULL << countTrailingZeros(Enable));
      uint64_t Out;
      if (Stop == 0) {
        Out = Enable;
      } else {
        unsigned First = countTrailingZeros(Stop);
        unsigned Cut = D.Op == Opcode::KFtmExc ? First : First + 1;
        Out = Enable & lowBitMask(Cut);
      }
      ++Stats.VplSteps;
      if (Out != Enable)
        ++Stats.VplPartitions;
      K[D.Dst] = Out;
      break;
    }

    case Opcode::KMov:
      K[D.Dst] = K[D.Src1];
      break;
    case Opcode::KSet:
      K[D.Dst] = static_cast<uint64_t>(D.Imm);
      break;
    case Opcode::KAnd:
      K[D.Dst] = K[D.Src1] & K[D.Src2];
      break;
    case Opcode::KOr:
      K[D.Dst] = K[D.Src1] | K[D.Src2];
      break;
    case Opcode::KXor:
      K[D.Dst] = K[D.Src1] ^ K[D.Src2];
      break;
    case Opcode::KAndN:
      K[D.Dst] = ~K[D.Src1] & K[D.Src2];
      break;
    case Opcode::KNot:
      K[D.Dst] = ~K[D.Src1] & D.AllMask;
      break;
    case Opcode::KTest:
      R[D.Dst] = K[D.Src1] != 0 ? 1 : 0;
      break;
    case Opcode::KPopcnt:
      R[D.Dst] = popcount(K[D.Src1]);
      break;

    case Opcode::XBegin:
      if (Tx.isActive()) {
        // Nested XBEGIN: architectural abort of the running transaction.
        // The existing snapshot and abort target stay in place so the
        // rollback below behaves like any other abort.
        Tx.begin();
        TxAborted = true;
        break;
      }
      TxSnapshot.R = R;
      TxSnapshot.V = V;
      TxSnapshot.K = K;
      TxAbortTarget = D.Target;
      TxBeginPC = PC;
      Tx.begin();
      break;
    case Opcode::XEnd:
      if (Tx.commit()) {
        ++Stats.RtmRetryDepth[std::min(TxAttempts,
                                       ExecStats::RtmRetryDepthBuckets - 1)];
        TxAttempts = 0;
      } else {
        TxAborted = true; // Injected commit-time abort.
      }
      break;
    case Opcode::XAbort:
      Tx.abort(rtm::AbortReason::Explicit);
      TxAborted = true;
      break;
    }

    // Transaction abort: memory is already rolled back; restore registers,
    // then apply the resilience policy — transient aborts re-execute from
    // XBEGIN (bounded, with exponential backoff) and everything else, or an
    // exhausted retry budget, dispatches to the abort handler (the
    // compiled scalar fallback body).
    if (TxAborted) {
      R = TxSnapshot.R;
      V = TxSnapshot.V;
      K = TxSnapshot.K;
      rtm::AbortReason Why = Tx.lastAbortReason();
      recordAbort(Why);
      if (rtm::isRetryableAbort(Why) && TxAttempts < Limits.MaxRtmRetries) {
        ++TxAttempts;
        ++Stats.RtmRetries;
        Stats.BackoffCycles +=
            1ULL << std::min(TxAttempts, Limits.MaxRtmBackoffShift);
        NextPC = TxBeginPC; // Re-execute the XBEGIN.
      } else {
        if (rtm::isRetryableAbort(Why))
          ++Stats.RtmBudgetExhausted; // Retryable, but the budget ran out.
        TxAttempts = 0;
        ++Stats.RtmFallbacks;
        NextPC = static_cast<uint32_t>(TxAbortTarget);
      }
      Taken = true;
      TxAborted = false;
    }

    ++Stats.Instructions;
    ++Stats.OpcodeCounts[static_cast<unsigned>(D.Op)];
    if (D.Flags & FlagBranch) {
      ++Stats.Branches;
      if (Taken)
        ++Stats.TakenBranches;
    }
    if (D.Flags & FlagVector) {
      ++Stats.VectorOps;
      ++Stats.MaskDensity[std::min(popcount(ActiveMask),
                                   ExecStats::MaskDensityBuckets - 1)];
    }
    Stats.MemoryAccesses += AddrCount;

    if (Sink) {
      DynInstr &DI = Batch[BatchLen];
      DI.Instr = &P[PC];
      DI.InstrIdx = PC;
      DI.NextIdx = NextPC;
      DI.Taken = Taken;
      DI.ActiveMask = ActiveMask;
      DI.AccessSize = (D.Flags & FlagMemory) ? D.ES : 0;
      DI.MemAddrs = nullptr; // Fixed up against the pool at flush time.
      DI.NumMemAddrs = AddrCount;
      BatchAddrOff[BatchLen] = AddrStart;
      if (++BatchLen == TraceBatchSize)
        flushBatch(Sink, Stats);
    }

    if (Faulted) {
      // The faulting instruction is delivered before the run stops, just
      // as the per-instruction path reported it.
      if (Sink)
        flushBatch(Sink, Stats);
      Result.Reason = StopReason::Fault;
      Result.FaultAddr = FaultAddr;
      Result.FaultPC = PC;
      Result.FaultOp = D.Op;
      return Result;
    }

    PC = NextPC;
  }
}

// --- Metrics export ------------------------------------------------------===//

void emu::recordMetrics(const ExecStats &S, obs::Registry &R) {
  R.counter("emu.instructions").inc(S.Instructions);
  R.counter("emu.branches").inc(S.Branches);
  R.counter("emu.taken_branches").inc(S.TakenBranches);
  R.counter("emu.memory_accesses").inc(S.MemoryAccesses);
  R.counter("emu.vector_ops").inc(S.VectorOps);
  R.counter("emu.vpl.steps").inc(S.VplSteps);
  R.counter("emu.vpl.partitions").inc(S.VplPartitions);
  R.counter("emu.ff.clips").inc(S.FFClips);
  R.counter("emu.ff.suppressed_lanes").inc(S.FFSuppressedLanes);
  R.counter("emu.conflict.checks").inc(S.ConflictChecks);
  R.counter("emu.conflict.hits").inc(S.ConflictHits);
  R.counter("emu.rtm.retries").inc(S.RtmRetries);
  R.counter("emu.rtm.fallbacks").inc(S.RtmFallbacks);
  R.counter("emu.rtm.budget_exhausted").inc(S.RtmBudgetExhausted);
  R.counter("emu.rtm.backoff_cycles").inc(S.BackoffCycles);
  R.counter("emu.trace.batches").inc(S.TraceBatches);
  obs::Histogram &MD =
      R.histogram("emu.mask_density", ExecStats::MaskDensityBuckets);
  for (unsigned B = 0; B < ExecStats::MaskDensityBuckets; ++B)
    if (S.MaskDensity[B])
      MD.addToBucket(B, S.MaskDensity[B]);
  obs::Histogram &RD =
      R.histogram("emu.rtm.retry_depth", ExecStats::RtmRetryDepthBuckets);
  for (unsigned B = 0; B < ExecStats::RtmRetryDepthBuckets; ++B)
    if (S.RtmRetryDepth[B])
      RD.addToBucket(B, S.RtmRetryDepth[B]);
}
