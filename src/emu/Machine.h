//===- emu/Machine.h - Functional ISA emulator ------------------*- C++ -*-===//
//
// Architectural-state emulator for the FlexVec target: 32 scalar registers,
// 32 512-bit vector registers, 8 mask registers, a paged memory, and a
// rollback-only transaction unit. Executes finalized Programs and
// optionally streams a dynamic-instruction trace to a sink; the
// out-of-order timing model (src/sim) is such a sink, mirroring the
// trace-driven (LIT checkpoint) methodology of the paper's evaluation.
//
// FlexVec instruction semantics follow the worked examples in Section 3 of
// the paper lane for lane; those examples are encoded as unit tests.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_EMU_MACHINE_H
#define FLEXVEC_EMU_MACHINE_H

#include "isa/Program.h"
#include "memory/Memory.h"
#include "obs/StaticPairs.h"
#include "rtm/Transaction.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace flexvec {
namespace obs {
class Registry;
}
namespace emu {
namespace simd {
struct KernelTable;
}

/// One vector register with typed lane accessors. Storage is sized for the
/// widest supported configuration (2048-bit); a run at a narrower vector
/// width simply leaves the upper bytes untouched.
struct VecReg {
  alignas(64) std::array<uint8_t, isa::MaxVectorBytes> Bytes{};

  int64_t laneInt(isa::ElemType Ty, unsigned Lane) const;
  void setLaneInt(isa::ElemType Ty, unsigned Lane, int64_t Value);
  double laneFloat(isa::ElemType Ty, unsigned Lane) const;
  void setLaneFloat(isa::ElemType Ty, unsigned Lane, double Value);

  bool operator==(const VecReg &O) const { return Bytes == O.Bytes; }
};

/// One dynamic instruction, streamed to a TraceSink as it retires from the
/// functional model.
struct DynInstr {
  const isa::Instruction *Instr = nullptr;
  uint32_t InstrIdx = 0;   ///< Static index within the program.
  uint32_t NextIdx = 0;    ///< Dynamic successor (branch-resolved).
  bool Taken = false;      ///< For branches: taken?
  uint64_t ActiveMask = 0; ///< Resolved write mask (vector ops).
  unsigned AccessSize = 0; ///< Bytes per memory access (memory ops).
  /// Vector-register width (bytes) of the producing run; timing models
  /// scale vector-op micro-op counts by it.
  uint16_t VecBytes = isa::VectorBytes;
  /// Effective addresses of the memory accesses this instruction performed
  /// (one per active lane for gathers/scatters). Points into the machine's
  /// batch address pool: valid only for the duration of the sink call that
  /// delivered this record; nullptr when NumMemAddrs is 0.
  const uint64_t *MemAddrs = nullptr;
  uint32_t NumMemAddrs = 0;
};

/// Consumer of the dynamic instruction stream. Delivery is chunked: the
/// machine stages retired instructions in a fixed-size ring and hands the
/// sink whole batches, which replaces one virtual call per retired
/// instruction with one per batch (docs/PERFORMANCE.md). Sinks that only
/// implement onInstr keep working through the default onBatch shim.
class TraceSink {
public:
  virtual ~TraceSink();
  /// Per-instruction delivery (legacy interface); the default onBatch
  /// funnels every batched record through this.
  virtual void onInstr(const DynInstr &DI) = 0;
  /// Batched delivery: \p N retired instructions in program order. The
  /// array and the MemAddrs ranges it references are owned by the machine
  /// and valid only for the duration of the call.
  virtual void onBatch(const DynInstr *Batch, size_t N);
};

/// Why execution stopped.
enum class StopReason : uint8_t {
  Halted,         ///< Halt executed (normal completion).
  Fault,          ///< Unhandled (non-speculative) memory fault.
  BudgetExceeded, ///< Instruction-budget watchdog fired (runaway loop).
};

const char *stopReasonName(StopReason R);

/// Dynamic execution statistics. Everything here is a pure event count —
/// a function of (program, inputs) only — which is what lets the bench
/// export these as byte-stable metrics under --deterministic.
struct ExecStats {
  uint64_t Instructions = 0;
  uint64_t Branches = 0;
  uint64_t TakenBranches = 0;
  uint64_t MemoryAccesses = 0;
  uint64_t VectorOps = 0;     ///< Instructions with isVector() semantics.
  uint64_t RtmRetries = 0;   ///< Aborted transactions re-executed in place.
  uint64_t RtmFallbacks = 0; ///< Aborts dispatched to the abort handler.
  /// Fallbacks caused specifically by a *retryable* abort running out of
  /// retry budget (the demotion-relevant subset of RtmFallbacks).
  uint64_t RtmBudgetExhausted = 0;
  uint64_t BackoffCycles = 0; ///< Simulated stall cycles between retries.
  uint64_t TraceBatches = 0; ///< onBatch deliveries (0 without a sink).

  // Vector Partitioning Loop behaviour (paper Section 3.4): every
  // KFTM.EXC/INC is one VPL step; a step whose safe mask came out smaller
  // than the enabled mask cut the vector short and forces a re-execution
  // partition.
  uint64_t VplSteps = 0;
  uint64_t VplPartitions = 0;

  // First-faulting loads (Section 3.3.1): clip events where a speculative
  // lane faulted and the write mask was truncated, plus how many enabled
  // lanes each clip suppressed.
  uint64_t FFClips = 0;
  uint64_t FFSuppressedLanes = 0;

  // Conflict detection (Section 3.6): VCONFLICTM executions and the total
  // number of lanes they flagged as conflicting.
  uint64_t ConflictChecks = 0;
  uint64_t ConflictHits = 0;

  // Vector-memory fast paths (src/emu/simd): unit-stride full-mask
  // loads/stores that collapsed to one block copy, and vector ops skipped
  // outright because their write mask was all-zeros. Both are decided by
  // (program, inputs, memory layout) only — never by the host backend —
  // so they are deterministic-payload safe.
  uint64_t SimdUnitStrideHits = 0;
  uint64_t SimdMaskShortcircuits = 0;

  /// Write-mask density of vector ops: bucket N counts vector instructions
  /// that executed with exactly N active lanes (0..16 for 512-bit / 32-bit
  /// elements). The paper's partial-vector efficiency argument is read
  /// straight off this distribution. Storage spans the widest supported
  /// configuration (2048-bit / 32-bit elements = 64 lanes); the run stamps
  /// how many buckets its vector width can populate so metric rendering
  /// stays unchanged at the 512-bit default.
  static constexpr unsigned MaskDensityBuckets = 17;
  static constexpr unsigned MaskDensityMaxBuckets =
      isa::MaxVectorBytes / 4 + 1;
  std::array<uint64_t, MaskDensityMaxBuckets> MaskDensity{};
  /// Buckets the producing run's vector width can populate (lanes of the
  /// narrowest element type + 1); 17 for the 512-bit default.
  unsigned MaskDensityUsed = MaskDensityBuckets;

  /// Retry depth of successful transactions: bucket N counts commits that
  /// needed N in-place retries first (last bucket saturates).
  static constexpr unsigned RtmRetryDepthBuckets = 8;
  std::array<uint64_t, RtmRetryDepthBuckets> RtmRetryDepth{};

  std::array<uint64_t, isa::NumOpcodes> OpcodeCounts{};

  uint64_t countOf(isa::Opcode Op) const {
    return OpcodeCounts[static_cast<unsigned>(Op)];
  }

  /// Element-wise accumulation of another run's counts.
  void merge(const ExecStats &O);
};

/// Result of Machine::run. Beyond the stop reason, carries enough
/// diagnostic context to make a fault report actionable: the faulting (or
/// watchdog-interrupted) PC and opcode, the last fault address observed,
/// and the history of transaction aborts seen during the run.
struct ExecResult {
  StopReason Reason = StopReason::Halted;
  uint64_t FaultAddr = 0;  ///< Faulting address (Fault), or the last fault
                           ///< address observed (BudgetExceeded; 0 if none).
  uint32_t FaultPC = 0;    ///< PC of the faulting/interrupted instruction.
  isa::Opcode FaultOp = isa::Opcode::Nop; ///< Its opcode.
  /// Abort reasons in occurrence order (capped at MaxAbortHistory).
  std::vector<rtm::AbortReason> AbortHistory;
  static constexpr size_t MaxAbortHistory = 64;
  ExecStats Stats;

  /// Human-readable diagnostic line, e.g. for harness output.
  std::string describe() const;
};

/// Default RTM retry budget: the FLEXVEC_RTM_RETRIES environment variable
/// when set to a non-negative integer, else 4. Read once per process.
unsigned defaultRtmRetries();

/// Interpreter dispatch strategy. Threaded and Plain are observably
/// identical — same ExecStats field for field, same trace-batch stream,
/// same memory effects (JitEquivalenceTest holds the contract) — so the
/// choice is purely a speed knob.
enum class DispatchMode : uint8_t {
  /// Resolve via the FLEXVEC_DISPATCH environment variable ("plain" or
  /// "threaded"); threaded when unset.
  Auto,
  /// The reference token-threaded switch loop, superinstructions off.
  Plain,
  /// Computed-goto threaded dispatch (token-threaded where the `&&label`
  /// extension is unavailable) plus the superinstruction pass on
  /// sinkless runs.
  Threaded,
};

/// The process-default dispatch mode (resolves DispatchMode::Auto).
DispatchMode defaultDispatchMode();

/// Host-SIMD lane-kernel backend for the hot vector handler bodies
/// (src/emu/simd). Every backend is observably identical to Scalar —
/// ExecStats field for field, trace streams, memory effects, deterministic
/// payloads (SimdEquivalenceTest holds the contract) — so, like
/// DispatchMode, the choice is purely a speed knob.
enum class SimdBackend : uint8_t {
  /// Resolve via the FLEXVEC_SIMD environment variable
  /// ("scalar" | "avx2" | "avx512" | "native"); Native when unset.
  Auto,
  /// Reference lane loops (always available).
  Scalar,
  /// AVX2 kernel table (2x256-bit), if compiled in and supported.
  Avx2,
  /// AVX-512 kernel table (1x512-bit), if compiled in and supported.
  Avx512,
  /// Best table the host CPU supports.
  Native,
};

/// The process-default SIMD backend (resolves SimdBackend::Auto).
SimdBackend defaultSimdBackend();

/// Lower-case name ("scalar", "avx2", ...) for logs and metrics.
const char *simdBackendName(SimdBackend B);

/// Clamps a request to what this build and host can actually execute;
/// the result is always one of Scalar/Avx2/Avx512. Unsupported requests
/// degrade (Avx512 -> Avx2 -> Scalar) rather than fail.
SimdBackend resolveSimdBackend(SimdBackend Requested);

namespace simd {
/// The kernel table implementing \p B (resolved first); emu/simd/Kernels.h.
const KernelTable &kernelsFor(SimdBackend B);
} // namespace simd

/// Superinstructions: dominant static pairs/triples the peephole fusion
/// pass collapses into one dispatch (docs/PERFORMANCE.md). Component
/// semantics, statistics, and fault behaviour are preserved exactly —
/// fusion is batched dispatch, nothing more.
enum class FusedKind : uint8_t {
  CmpBr,           ///< Cmp/CmpImm feeding BrZero/BrNonZero on its result.
  KTestBr,         ///< KTest feeding BrZero/BrNonZero on its result.
  AddImmCmp,       ///< AddImm followed by Cmp/CmpImm (index += k; bounds).
  GatherOpScatter, ///< VGather -> vector ALU op -> VScatter triple.
};
inline constexpr unsigned NumFusedKinds = 4;

const char *fusedKindName(FusedKind K);

/// One fusion decision over the predecoded plan.
struct FusionSite {
  uint32_t PC = 0;    ///< Plan index of the fused head.
  FusedKind Kind = FusedKind::CmpBr;
  uint8_t Len = 2;    ///< Component instructions collapsed (2 or 3).

  bool operator==(const FusionSite &O) const {
    return PC == O.PC && Kind == O.Kind && Len == O.Len;
  }
};

/// What the superinstruction pass decided for one program: the static
/// opcode-pair histogram it keyed every decision on, and the fused sites.
/// Both are pure functions of the static opcode/operand sequence —
/// never of loop names or addresses — which is what makes fusion safe
/// under compiled-loop cache sharing.
struct FusionReport {
  obs::StaticPairHistogram Pairs;
  std::vector<FusionSite> Sites;
};

/// Execution budget and resilience policy.
struct RunLimits {
  /// Instruction-budget watchdog: stops runaway loops (a Vector
  /// Partitioning Loop that fails to make forward progress) with
  /// StopReason::BudgetExceeded plus diagnostics.
  uint64_t MaxInstructions = 1ULL << 32;
  /// Bounded RTM retry: a transaction aborted for a transient reason
  /// (conflict/spurious) is re-executed from XBEGIN up to this many times
  /// with exponential backoff before control dispatches to the abort
  /// target (the compiled scalar fallback). Deterministic aborts (fault,
  /// capacity, explicit, nested) dispatch immediately. Defaults to the
  /// FLEXVEC_RTM_RETRIES environment variable when set, else 4.
  unsigned MaxRtmRetries = defaultRtmRetries();
  /// Cap on the exponential-backoff shift: retry k stalls 2^min(k, cap)
  /// simulated cycles.
  unsigned MaxRtmBackoffShift = 16;
  /// Interpreter dispatch strategy; Auto defers to FLEXVEC_DISPATCH.
  DispatchMode Dispatch = DispatchMode::Auto;
  /// Lane-kernel backend; Auto defers to FLEXVEC_SIMD.
  SimdBackend Simd = SimdBackend::Auto;
};

/// The architectural machine.
class Machine {
public:
  explicit Machine(mem::Memory &M) : M(M), Tx(M) {}

  /// Scalar register access (FP values live in scalar registers as bit
  /// patterns; see the typed helpers).
  int64_t getScalar(unsigned I) const { return R[I]; }
  void setScalar(unsigned I, int64_t V) { R[I] = V; }
  double getScalarF64(unsigned I) const;
  void setScalarF64(unsigned I, double V);
  float getScalarF32(unsigned I) const;
  void setScalarF32(unsigned I, float V);

  const VecReg &getVector(unsigned I) const { return V[I]; }
  VecReg &vectorReg(unsigned I) { return V[I]; }

  uint64_t getMask(unsigned I) const { return K[I]; }
  void setMask(unsigned I, uint64_t Value) { K[I] = Value; }

  mem::Memory &memory() { return M; }
  const rtm::TxStats &txStats() const { return Tx.stats(); }

  /// The transaction unit, exposed so fault injectors can hook it.
  rtm::TransactionManager &tx() { return Tx; }

  /// Resets registers (memory is untouched).
  void resetRegisters();

  /// Runs \p P from instruction 0 until Halt, fault, or the limit.
  ExecResult run(const isa::Program &P, RunLimits Limits = RunLimits(),
                 TraceSink *Sink = nullptr);

  /// The superinstruction pass's decisions for the most recent run that
  /// engaged it (threaded dispatch, no sink); empty otherwise. Valid
  /// until the next run() call.
  const FusionReport &fusionReport() const { return Fusion; }

private:
  struct RegSnapshot {
    std::array<int64_t, isa::NumScalarRegs> R;
    std::array<VecReg, isa::NumVectorRegs> V;
    std::array<uint64_t, isa::NumMaskRegs> K;
  };

  /// One pre-decoded instruction: everything the dispatch loop needs,
  /// resolved once per run() instead of per dynamic execution. A dense POD
  /// (isa::Instruction carries a std::string comment and symbolic register
  /// records, so re-deriving element sizes, lane counts, and mask validity
  /// per retired instruction was a measurable cost; see
  /// docs/PERFORMANCE.md).
  struct DecodedInstr {
    isa::Opcode Op;
    isa::ElemType Type;
    isa::CmpKind Cond;
    uint8_t ES;    ///< Element size in bytes.
    uint8_t Lanes; ///< Lanes at this element size and the run's width.
    uint8_t Dst, Src1, Src2, Src3;
    uint8_t EffMask; ///< Write-mask register; NoEffMask = all lanes.
    uint8_t Scale;
    uint8_t Flags;    ///< FlagBranch | FlagVector | FlagSrc2Valid | FlagMemory.
    /// Dispatch token: the opcode value, or NumOpcodes + FusedKind when
    /// the superinstruction pass made this instruction a fused head.
    uint16_t Handler;
    uint64_t AllMask; ///< lowBitMask(Lanes).
    int64_t Imm;
    int64_t Disp;
    int32_t Target;
  };
  static constexpr uint8_t NoEffMask = 0xff;
  static constexpr uint8_t FlagBranch = 1;
  static constexpr uint8_t FlagVector = 2;
  static constexpr uint8_t FlagSrc2Valid = 4;
  static constexpr uint8_t FlagMemory = 8;

  /// Fills Plan from \p P. Runs once per run() call — the plan must not
  /// outlive the Program it was decoded from, and keying a cache on the
  /// Program's address would misfire when a freed program's storage is
  /// reused.
  void predecode(const isa::Program &P);

  /// The superinstruction pass: rewrites Handler fields of fused heads.
  /// Engaged only for sinkless threaded runs — with a sink attached the
  /// per-instruction trace stream must be produced anyway, so fusion
  /// would buy nothing and is simply skipped.
  void fusePlan();

  /// The two interpreter loops, generated from the same body
  /// (emu/Interp.inc): runPlain is the token-threaded switch (also the
  /// fallback where computed goto is unavailable), runThreaded the
  /// computed-goto loop.
  ExecResult runPlain(const isa::Program &P, RunLimits Limits,
                      TraceSink *Sink);
  ExecResult runThreaded(const isa::Program &P, RunLimits Limits,
                         TraceSink *Sink);

  /// Delivers the staged batch (if any) to \p Sink and resets it.
  void flushBatch(TraceSink *Sink, ExecStats &Stats);

  /// Memory access routed through the transaction unit when one is active.
  /// Returns false on a fault outside a transaction (sets FaultAddr); when
  /// a transaction is active, faults abort it and set TxAborted.
  bool memRead(uint64_t Addr, void *Out, uint64_t Size);
  bool memWrite(uint64_t Addr, const void *Data, uint64_t Size);

  mem::Memory &M;
  rtm::TransactionManager Tx;
  std::array<int64_t, isa::NumScalarRegs> R{};
  std::array<VecReg, isa::NumVectorRegs> V{};
  std::array<uint64_t, isa::NumMaskRegs> K{};

  /// Vector width (bytes) of the program being executed; predecode() reads
  /// it off the Program and bakes lane counts / all-lanes masks into the
  /// plan.
  unsigned VecBytes = isa::VectorBytes;

  // Transaction control state.
  bool TxAborted = false;
  int32_t TxAbortTarget = 0;
  RegSnapshot TxSnapshot;

  // Fault bookkeeping for the current step.
  bool Faulted = false;
  uint64_t FaultAddr = 0;

  /// Lane-kernel table for the current run(), bound from the resolved
  /// RunLimits::Simd before dispatch starts.
  const simd::KernelTable *SimdKern = nullptr;

  // Pre-decoded dispatch plan and trace-batching state, reused across
  // run() calls so the hot loop performs no per-instruction allocation.
  static constexpr size_t TraceBatchSize = 64;
  std::vector<DecodedInstr> Plan;
  /// Flat pool of effective addresses for the staged batch; DynInstr
  /// records reference ranges of it (fixed up at flush, since the pool may
  /// reallocate while the batch fills).
  std::vector<uint64_t> AddrPool;
  std::array<DynInstr, TraceBatchSize> Batch;
  std::array<uint32_t, TraceBatchSize> BatchAddrOff;
  size_t BatchLen = 0;

  /// Superinstruction pass state (see fusionReport()).
  FusionReport Fusion;
  /// Scratch: instruction indices that are branch (or abort) targets and
  /// therefore must stay dispatchable on their own.
  std::vector<uint8_t> IsJumpTarget;
};

/// Exports \p S into \p R under the `emu.` metric namespace (counters plus
/// the mask-density and RTM-retry-depth histograms); see
/// docs/OBSERVABILITY.md for the catalog.
void recordMetrics(const ExecStats &S, obs::Registry &R);

} // namespace emu
} // namespace flexvec

#endif // FLEXVEC_EMU_MACHINE_H
