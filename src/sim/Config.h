//===- sim/Config.h - Simulated machine configuration ----------*- C++ -*-===//
//
// Table 1 of the paper: an aggressive out-of-order core. Defaults
// reproduce the published configuration:
//
//   Fetch/Dispatch/Issue/Commit   5/5/8/5 wide
//   RS 97, ROB 224, LQ/SQ 80/56
//   L1I 32K/4w (1 cycle), L1D 32K/8w (4-cycle load-to-use),
//   L2 256K/8w (12), L3 8M/32w (25), memory 200 cycles
//   2 load ports, 1 store port
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SIM_CONFIG_H
#define FLEXVEC_SIM_CONFIG_H

#include <cstdint>

namespace flexvec {
namespace sim {

struct CacheLevelConfig {
  uint64_t SizeBytes;
  unsigned Ways;
  unsigned LatencyCycles;
};

struct CoreConfig {
  unsigned FetchWidth = 5;
  unsigned DispatchWidth = 5;
  unsigned IssueWidth = 8;
  unsigned CommitWidth = 5;

  unsigned RsEntries = 97;
  unsigned RobEntries = 224;
  unsigned LoadQueueEntries = 80;
  unsigned StoreQueueEntries = 56;

  unsigned AluUnits = 4;  ///< Scalar integer (also resolves branches).
  unsigned MulUnits = 1;
  unsigned VecUnits = 2;  ///< Vector/FP/mask execution.
  unsigned LoadPorts = 2; ///< Table 1.
  unsigned StorePorts = 1;

  unsigned MispredictPenalty = 14; ///< Redirect + front-end refill.

  CacheLevelConfig L1D{32 * 1024, 8, 4};
  CacheLevelConfig L2{256 * 1024, 8, 12};
  CacheLevelConfig L3{8 * 1024 * 1024, 32, 25};
  unsigned MemoryLatency = 200;
  unsigned LineBytes = 64;

  /// Store-to-load forwarding latency when a load hits an in-flight store.
  unsigned ForwardLatency = 5;

  /// Stride prefetcher: degree of lines fetched ahead; never crosses a
  /// 4 KiB page (the behaviour the paper calls out in Section 5).
  unsigned PrefetchDegree = 2;
  bool EnablePrefetcher = true;
};

} // namespace sim
} // namespace flexvec

#endif // FLEXVEC_SIM_CONFIG_H
