//===- sim/Sampled.cpp ----------------------------------------------------===//

#include "sim/Sampled.h"

#include <algorithm>
#include <cassert>

using namespace flexvec;
using namespace flexvec::sim;

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix, so consecutive
/// interval indices land at uncorrelated window offsets.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

} // namespace

SampledCore::SampledCore(OooCore &Inner, const SampleConfig &Cfg)
    : Inner(Inner), Cfg(Cfg) {
  // Sanitize degenerate regimens instead of rejecting them: a window must
  // measure at least one instruction, and a window longer than its
  // interval simply means "simulate everything" (back-to-back windows).
  this->Cfg.DetailInstrs = std::max<uint64_t>(1, this->Cfg.DetailInstrs);
  uint64_t Window = this->Cfg.WarmupInstrs + this->Cfg.DetailInstrs;
  this->Cfg.IntervalInstrs = std::max(this->Cfg.IntervalInstrs, Window);
  // Interval 0's window is pinned to offset 0 (see windowOffset), so the
  // run opens in warmup — or directly in measure with no warmup.
  Ph = this->Cfg.WarmupInstrs ? Phase::Warmup : Phase::Measure;
  NextBoundary = this->Cfg.WarmupInstrs ? this->Cfg.WarmupInstrs
                                        : this->Cfg.DetailInstrs;
  if (Ph == Phase::Measure) {
    CycAtMeasureStart = 0;
    MeasureStartIdx = 0;
  }
}

uint64_t SampledCore::windowOffset(uint64_t K) const {
  if (K == 0)
    return 0; // Pin the first window so short runs are simulated exactly.
  uint64_t Window = Cfg.WarmupInstrs + Cfg.DetailInstrs;
  uint64_t Range = Cfg.IntervalInstrs - Window + 1;
  return mix64(Cfg.Seed ^ mix64(K)) % Range;
}

void SampledCore::advancePhase() {
  switch (Ph) {
  case Phase::Warmup:
    Ph = Phase::Measure;
    CycAtMeasureStart = Inner.cycles();
    MeasureStartIdx = GlobalIdx;
    NextBoundary = GlobalIdx + Cfg.DetailInstrs;
    return;
  case Phase::Measure: {
    // Window complete: record its cycle delta, keyed by interval index
    // (stats() charges each interval at its own window's CPI).
    assert(WindowCycles.size() == IntervalIdx && "one window per interval");
    WindowCycles.push_back(Inner.cycles() - CycAtMeasureStart);
    ++IntervalIdx;
    uint64_t Start =
        IntervalIdx * Cfg.IntervalInstrs + windowOffset(IntervalIdx);
    if (Start > GlobalIdx) {
      Ph = Phase::Skip;
      NextBoundary = Start;
    } else {
      // Back-to-back windows (interval == window): straight into warmup.
      Ph = Cfg.WarmupInstrs ? Phase::Warmup : Phase::Measure;
      NextBoundary = GlobalIdx + (Cfg.WarmupInstrs ? Cfg.WarmupInstrs
                                                   : Cfg.DetailInstrs);
      if (Ph == Phase::Measure) {
        CycAtMeasureStart = Inner.cycles();
        MeasureStartIdx = GlobalIdx;
      }
    }
    return;
  }
  case Phase::Skip:
    Inner.resyncClock(); // See OooCore.h: avoids post-gap retire bunching.
    Ph = Cfg.WarmupInstrs ? Phase::Warmup : Phase::Measure;
    NextBoundary = GlobalIdx + (Cfg.WarmupInstrs ? Cfg.WarmupInstrs
                                                 : Cfg.DetailInstrs);
    if (Ph == Phase::Measure) {
      CycAtMeasureStart = Inner.cycles();
      MeasureStartIdx = GlobalIdx;
    }
    return;
  }
}

void SampledCore::onInstr(const emu::DynInstr &DI) { onBatch(&DI, 1); }

void SampledCore::onBatch(const emu::DynInstr *Batch, size_t N) {
  size_t Off = 0;
  while (Off < N) {
    size_t Chunk = N - Off;
    uint64_t ToBoundary = NextBoundary - GlobalIdx;
    if (ToBoundary < Chunk)
      Chunk = static_cast<size_t>(ToBoundary);
    if (Ph != Phase::Skip) {
      Inner.onBatch(Batch + Off, Chunk);
      DetailedInstrs += Chunk;
    } else {
      // Functional warming: skipped instructions still train caches and
      // the predictor (no scoreboard), so the next window's CPI is not
      // poisoned by artificial cold misses. Attribution is per interval
      // (a skip span can cross an interval boundary, so clip the chunk).
      uint64_t K = GlobalIdx / Cfg.IntervalInstrs;
      uint64_t IvalEnd = (K + 1) * Cfg.IntervalInstrs;
      if (IvalEnd - GlobalIdx < Chunk)
        Chunk = static_cast<size_t>(IvalEnd - GlobalIdx);
      if (SkippedPer.size() <= K)
        SkippedPer.resize(K + 1, 0);
      SkippedPer[K] += Chunk;
      Inner.warmBatch(Batch + Off, Chunk);
    }
    GlobalIdx += Chunk;
    Off += Chunk;
    if (GlobalIdx == NextBoundary)
      advancePhase();
  }
}

SampledStats SampledCore::stats() const {
  SampledStats S;
  S.Instructions = GlobalIdx;
  S.DetailedInstructions = DetailedInstrs;
  S.Windows = WindowCycles.size();
  S.MeasuredInstructions = S.Windows * Cfg.DetailInstrs;
  if (Ph == Phase::Measure && GlobalIdx > MeasureStartIdx)
    S.MeasuredInstructions += GlobalIdx - MeasureStartIdx;

  // Every detailed instruction (warmup and measure alike) is charged at
  // its real cost: the inner clock only advances while the model is fed,
  // so Inner.cycles() is exactly the cycles of the detailed subset. Only
  // skipped spans are extrapolated, each at its own interval's window CPI
  // — integer arithmetic throughout (__int128 intermediates; cycles per
  // window and instructions per span are both far below 2^40), so the
  // estimate is a pure function of (trace, config). A stream that never
  // skipped — shorter than interval 0's pinned window, or a back-to-back
  // regimen — therefore degrades to the exact full-fidelity cycle count.
  unsigned __int128 Est = Inner.cycles();
  for (uint64_t K = 0; K < SkippedPer.size(); ++K) {
    if (!SkippedPer[K])
      continue;
    uint64_t Cyc, Ins;
    if (K == 0 && WindowCycles.size() >= 2) {
      // Interval 0's window is pinned at offset 0, so its CPI folds in the
      // program's cold-start transient — but the interval's skipped span
      // lies entirely *after* that window and runs warm. Charge it at the
      // next window's (warm) CPI; on short streams this is the difference
      // between a few percent and ~15% of systematic overestimate.
      Cyc = WindowCycles[1];
      Ins = Cfg.DetailInstrs;
    } else if (K < WindowCycles.size()) {
      Cyc = WindowCycles[K];
      Ins = Cfg.DetailInstrs;
    } else if (Ph == Phase::Measure && GlobalIdx > MeasureStartIdx) {
      // Tail interval whose window was still measuring at stream end:
      // use the partial delta (nearest measurement in program order).
      Cyc = Inner.cycles() - CycAtMeasureStart;
      Ins = GlobalIdx - MeasureStartIdx;
    } else {
      // Tail skipped/warming at stream end: reuse the last window's CPI.
      // SkippedPer is only populated after a window completed (interval
      // 0's window is pinned at offset 0), so WindowCycles is non-empty.
      Cyc = WindowCycles.back();
      Ins = Cfg.DetailInstrs;
    }
    if (!Ins)
      continue;
    Est += static_cast<unsigned __int128>(Cyc) * SkippedPer[K] / Ins;
  }
  S.EstimatedCycles = static_cast<uint64_t>(Est);
  return S;
}
