//===- sim/OooCore.cpp ----------------------------------------------------===//

#include "sim/OooCore.h"

#include "isa/InstrInfo.h"
#include "obs/Metrics.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace flexvec;
using namespace flexvec::sim;
using namespace flexvec::isa;

OooCore::OooCore(const CoreConfig &Cfg)
    : Cfg(Cfg), Mem(Cfg), RobRing(Cfg.RobEntries, 0), RsRing(Cfg.RsEntries, 0),
      LqRing(Cfg.LoadQueueEntries, 0), SqRing(Cfg.StoreQueueEntries, 0),
      AluRing(Cfg.AluUnits), MulRing(Cfg.MulUnits), VecRing(Cfg.VecUnits),
      LoadRing(Cfg.LoadPorts), StoreRing(Cfg.StorePorts), L3BwRing(1),
      DramBwRing(1) {
  StoreBuf.resize(Cfg.StoreQueueEntries, PendingStore{~0ULL, 0});
}

unsigned OooCore::regId(Reg R) {
  switch (R.Class) {
  case RegClass::Scalar:
    return R.Index;
  case RegClass::Vector:
    return 32 + R.Index;
  case RegClass::Mask:
    return 64 + R.Index;
  case RegClass::None:
    break;
  }
  unreachable("invalid register for scoreboard");
}

template <bool IsLoadU, bool IsStoreU>
uint64_t OooCore::issueUop(const UopDesc &U, uint64_t SrcReady, uint32_t Pc) {
  ++Stats.Uops;
  uint64_t Fetch = fetchSlot() + FrontEndDepth;
  uint64_t Window = std::max(RobRing[RobHead], RsRing[RsHead]);
  if constexpr (IsLoadU)
    Window = std::max(Window, LqRing[LqHead]);
  if constexpr (IsStoreU)
    Window = std::max(Window, SqRing[SqHead]);
  uint64_t Dispatch = std::max(Fetch, Window);

  uint64_t DepReady = std::max(SrcReady, U.ReadyExtra);
  uint64_t Ready = std::max(Dispatch, DepReady);
  uint64_t Issue = reservePort(U.Port, Ready);

  // Attribute this uop's issue time to the binding constraint.
  if (Issue > Ready)
    ++Stats.BoundByPorts;
  else if (DepReady >= Dispatch)
    ++Stats.BoundByDeps;
  else if (Window > Fetch)
    ++Stats.BoundByWindow;
  else
    ++Stats.BoundByFrontEnd;

  uint64_t Complete = Issue + U.Latency;
  if constexpr (IsLoadU) {
    // Store-to-load forwarding against in-flight stores. The counting
    // filter proves most loads have no matching granule anywhere in the
    // buffer, so the scan only runs when a forward (or a filter-bucket
    // collision) is actually possible.
    uint64_t Granule = U.Addr >> 3;
    bool Forwarded = false;
    if (StoreGranFilter[Granule & 255] != 0) {
      for (size_t I = 0; I < StoreBuf.size(); ++I) {
        const PendingStore &PS = StoreBuf[I];
        if (PS.Granule == Granule) {
          Complete = std::max(Issue, PS.Ready) + Cfg.ForwardLatency;
          Forwarded = true;
          break;
        }
      }
    }
    if (!Forwarded) {
      MemoryHierarchy::Level Lv;
      unsigned Lat = Mem.accessLatency(U.Addr, Pc, &Lv);
      uint64_t Fill = Issue;
      if (Lv == MemoryHierarchy::Level::L3)
        Fill = L3BwRing.reserve(Issue);
      else if (Lv == MemoryHierarchy::Level::Dram)
        Fill = DramBwRing.reserve(Issue >> 1) << 1;
      Complete = Fill + U.Latency + Lat;
    }
  }
  if constexpr (IsStoreU) {
    // Writes retire into the hierarchy; model the tag access for stats and
    // prefetcher training, but keep it off the completion critical path.
    Mem.accessLatency(U.Addr, Pc);
    PendingStore &Slot = StoreBuf[StoreBufHead];
    if (Slot.Granule != ~0ULL)
      --StoreGranFilter[Slot.Granule & 255];
    Slot = PendingStore{U.Addr >> 3, Complete};
    ++StoreGranFilter[Slot.Granule & 255];
    if (++StoreBufHead == StoreBuf.size())
      StoreBufHead = 0;
  }

  // In-order retirement.
  uint64_t Retire = commitSlot(std::max(Complete + 1, LastRetire));
  LastRetire = Retire;

  RobRing[RobHead] = Retire;
  if (++RobHead == RobRing.size())
    RobHead = 0;
  RsRing[RsHead] = Issue;
  if (++RsHead == RsRing.size())
    RsHead = 0;
  if constexpr (IsLoadU) {
    LqRing[LqHead] = Retire;
    if (++LqHead == LqRing.size())
      LqHead = 0;
  }
  if constexpr (IsStoreU) {
    SqRing[SqHead] = Retire;
    if (++SqHead == SqRing.size())
      SqHead = 0;
  }
  if (Retire > Stats.Cycles)
    Stats.Cycles = Retire;
  return Complete;
}

void OooCore::onInstr(const emu::DynInstr &DI) { step(DI); }

void OooCore::onBatch(const emu::DynInstr *Batch, size_t N) {
  Mem.beginBatch();
  for (size_t I = 0; I < N; ++I)
    step(Batch[I]);
}

const OooCore::DecodedSim &OooCore::decoded(const emu::DynInstr &DI) {
  if (DI.InstrIdx >= Decoded.size())
    Decoded.resize(DI.InstrIdx + 1);
  DecodedSim &D = Decoded[DI.InstrIdx];
  if (D.Tag == DI.Instr)
    return D;

  const Instruction &I = *DI.Instr;
  const InstrTiming &T = instrTiming(I.Op);
  D = DecodedSim{};
  D.Tag = DI.Instr;
  D.Latency = static_cast<uint16_t>(T.Latency);
  D.Port = T.Port;
  D.FixedUops = static_cast<uint8_t>(T.FixedUops);
  D.LanesPerMemUop = static_cast<uint8_t>(T.LanesPerMemUop);
  D.Skip = T.Port == PortKind::None && !I.isBranch(); // halt / nop
  // Transaction boundaries drain the pipeline: XBEGIN/XEND cannot execute
  // until every older uop has retired (store-buffer drain), though the
  // front end keeps fetching.
  D.SerializesRetire = I.Op == Opcode::XBegin || I.Op == Opcode::XEnd;
  D.IsXAbort = I.Op == Opcode::XAbort;
  D.IsCondBranch = I.isConditionalBranch();
  D.IsLoad = I.isLoad();
  D.IsStore = I.isStore();
  D.IsMemory = I.isMemory();
  // Vector-unit (non-memory) ops occupy the 512-bit datapath once per
  // native slice: a 1024-bit configuration double-pumps, 2048-bit
  // quad-pumps. Memory ops are handled per address below.
  D.IsVecAlu = T.Port == PortKind::Vec && I.isVector() && !D.IsMemory;
  for (Reg R : {I.Src1, I.Src2, I.Src3})
    if (R.isValid())
      D.WaitIds[D.NumWaits++] = static_cast<uint8_t>(regId(R));
  if (I.MaskReg.isValid())
    D.WaitIds[D.NumWaits++] = static_cast<uint8_t>(regId(I.MaskReg));
  if (I.Dst.isValid())
    D.DstId = static_cast<int16_t>(regId(I.Dst));
  // Only genuinely merge-masked vector writes read their old destination
  // (VBLEND selects; masked ALU ops merge). Loads and gathers are treated
  // as zero-masking, which is how baseline compilers break the false
  // dependence, and full-width writes (broadcast-class results, VSLCTLAST)
  // replace every lane.
  bool ReadsDest = false;
  if (I.Dst.isValid() && I.Dst.isVector()) {
    if (I.Op == Opcode::VBlend)
      ReadsDest = true;
    else if (I.MaskReg.isValid() && I.MaskReg.Index != 0 && !I.isLoad() &&
             I.Op != Opcode::VSlctLast)
      ReadsDest = true;
  }
  if (ReadsDest)
    D.WaitIds[D.NumWaits++] = static_cast<uint8_t>(D.DstId);
  if (I.isFirstFaulting() && I.MaskReg.isValid())
    D.FFMaskId = static_cast<int16_t>(regId(I.MaskReg));
  return D;
}

void OooCore::step(const emu::DynInstr &DI) {
  ++Stats.Instructions;
  const DecodedSim &D = decoded(DI);

  if (D.Skip)
    return; // halt / nop

  // Source readiness (pre-resolved scoreboard ids, see DecodedSim).
  uint64_t SrcReady = D.SerializesRetire ? LastRetire : 0;
  for (unsigned W = 0; W < D.NumWaits; ++W)
    SrcReady = std::max(SrcReady, RegReady[D.WaitIds[W]]);

  uint64_t Complete = 0;

  if (D.LanesPerMemUop > 0) {
    // Gather/scatter: an AGU uop followed by one memory uop per active
    // lane over the two load ports (or the store port). The load/store
    // split is hoisted out of the lane loop so each iteration runs the
    // fully specialized uop path.
    UopDesc Agu{PortKind::Vec, 1};
    uint64_t AguDone = issueUop<false, false>(Agu, SrcReady, DI.InstrIdx);
    Complete = AguDone;
    if (D.IsLoad) {
      for (uint32_t A = 0; A < DI.NumMemAddrs; ++A) {
        UopDesc MemU{PortKind::Load, D.Latency, DI.MemAddrs[A], AguDone};
        uint64_t Done = issueUop<true, false>(MemU, SrcReady, DI.InstrIdx);
        Complete = std::max(Complete, Done);
      }
    } else {
      for (uint32_t A = 0; A < DI.NumMemAddrs; ++A) {
        UopDesc MemU{PortKind::Store, D.Latency, DI.MemAddrs[A], AguDone};
        uint64_t Done = issueUop<false, true>(MemU, SrcReady, DI.InstrIdx);
        Complete = std::max(Complete, Done);
      }
    }
  } else if (D.IsMemory) {
    // Scalar or contiguous vector access: one memory uop; a 512-bit access
    // can straddle two lines — charge the slower line.
    uint64_t First = 0, Last = 0;
    if (DI.NumMemAddrs) {
      First = DI.MemAddrs[0];
      Last = DI.MemAddrs[DI.NumMemAddrs - 1];
    }
    if (D.IsLoad) {
      UopDesc MemU{PortKind::Load, D.Latency, First, 0};
      Complete = issueUop<true, false>(MemU, SrcReady, DI.InstrIdx);
      if ((Last >> 6) != (First >> 6)) {
        // The access spans multiple lines (a straddling access, or a wide
        // VL whose contiguous block covers several): the result waits for
        // the slowest of the extra lines. A two-line access touches only
        // the trailing address, exactly the historical straddle charge.
        unsigned Extra = 0;
        for (uint64_t Line = (First >> 6) + 1; Line < (Last >> 6); ++Line)
          Extra = std::max(Extra, Mem.accessLatency(Line << 6, DI.InstrIdx));
        Extra = std::max(Extra, Mem.accessLatency(Last, DI.InstrIdx));
        if (Extra > Cfg.L1D.LatencyCycles)
          Complete += Extra - Cfg.L1D.LatencyCycles;
      }
    } else {
      UopDesc MemU{PortKind::Store, D.Latency, First, 0};
      Complete = issueUop<false, true>(MemU, SrcReady, DI.InstrIdx);
    }
  } else {
    // Non-memory: FixedUops micro-ops on the unit; the result is ready
    // Latency cycles after the first issues. Vector ALU ops wider than the
    // 512-bit datapath issue one slice-uop group per native slice.
    unsigned Uops = D.FixedUops;
    if (D.IsVecAlu && DI.VecBytes > 64)
      Uops *= DI.VecBytes / 64;
    uint64_t FirstDone = 0;
    for (unsigned U = 0; U < Uops; ++U) {
      UopDesc Desc{D.Port, U == 0 ? D.Latency : 1u};
      uint64_t Done = issueUop<false, false>(Desc, SrcReady, DI.InstrIdx);
      if (U == 0)
        FirstDone = Done;
      Complete = std::max(Complete, std::max(Done, FirstDone));
    }
  }

  // Destination scoreboard updates.
  if (D.DstId >= 0)
    RegReady[D.DstId] = Complete;
  if (D.FFMaskId >= 0)
    RegReady[D.FFMaskId] = Complete; // Mask is also written.

  // Control flow.
  if (D.IsCondBranch) {
    ++Stats.Branches;
    bool Correct = Bp.predictAndUpdate(DI.InstrIdx, DI.Taken);
    if (!Correct) {
      ++Stats.Mispredicts;
      uint64_t Redirect =
          Complete + (Cfg.MispredictPenalty > FrontEndDepth
                          ? Cfg.MispredictPenalty - FrontEndDepth
                          : 1);
      if (Redirect > FetchCycle) {
        FetchCycle = Redirect;
        FetchedThisCycle = 0;
      }
    }
  }

  // Transaction aborts flush the pipeline; XBEGIN/XEND are expensive but
  // non-serializing on real RTM hardware (the tile-size study depends on
  // inter-tile overlap surviving commits).
  if (D.IsXAbort) {
    if (Complete > FetchCycle) {
      FetchCycle = Complete;
      FetchedThisCycle = 0;
    }
  }
}

void OooCore::warmBatch(const emu::DynInstr *Batch, size_t N) {
  Mem.beginBatch();
  for (size_t I = 0; I < N; ++I) {
    const emu::DynInstr &DI = Batch[I];
    const DecodedSim &D = decoded(DI);
    if (D.Skip)
      continue;
    if (D.IsCondBranch)
      Bp.predictAndUpdate(DI.InstrIdx, DI.Taken);
    if (!D.IsMemory)
      continue;
    if (D.LanesPerMemUop > 0) {
      for (uint32_t A = 0; A < DI.NumMemAddrs; ++A)
        Mem.accessLatency(DI.MemAddrs[A], DI.InstrIdx);
    } else if (DI.NumMemAddrs) {
      // Same line-touch pattern as the detailed scalar path: the first
      // address, interior lines of a wide contiguous access, then the
      // trailing line of a straddling access.
      uint64_t First = DI.MemAddrs[0];
      uint64_t Last = DI.MemAddrs[DI.NumMemAddrs - 1];
      Mem.accessLatency(First, DI.InstrIdx);
      if ((Last >> 6) != (First >> 6)) {
        for (uint64_t Line = (First >> 6) + 1; Line < (Last >> 6); ++Line)
          Mem.accessLatency(Line << 6, DI.InstrIdx);
        Mem.accessLatency(Last, DI.InstrIdx);
      }
    }
  }
}

SimStats OooCore::stats() const {
  SimStats S = Stats;
  S.Mem = Mem.stats();
  S.Mispredicts = Bp.mispredicts();
  return S;
}

// --- Metrics export ------------------------------------------------------===//

void sim::recordMetrics(const SimStats &S, obs::Registry &R) {
  R.counter("sim.cycles").inc(S.Cycles);
  R.counter("sim.instructions").inc(S.Instructions);
  R.counter("sim.uops").inc(S.Uops);
  R.counter("sim.branches").inc(S.Branches);
  R.counter("sim.mispredicts").inc(S.Mispredicts);
  R.counter("sim.bound.front_end").inc(S.BoundByFrontEnd);
  R.counter("sim.bound.window").inc(S.BoundByWindow);
  R.counter("sim.bound.deps").inc(S.BoundByDeps);
  R.counter("sim.bound.ports").inc(S.BoundByPorts);
  R.gauge("sim.ipc").set(S.ipc());
  R.gauge("sim.upc").set(S.upc());
  recordMetrics(S.Mem, R);
}
