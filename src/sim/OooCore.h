//===- sim/OooCore.h - Out-of-order core timing model -----------*- C++ -*-===//
//
// Trace-driven timing model of the aggressive OOO core in Table 1. The
// functional emulator streams retired instructions (with resolved branch
// outcomes and memory addresses); the model expands them into micro-ops
// and plays a one-pass scoreboard over:
//
//   * front end: 5-wide fetch, gshare direction prediction, redirect
//     penalty on mispredicts, serializing RTM boundaries,
//   * dispatch: 5-wide, stalls on ROB (224) / RS (97) / LQ (80) / SQ (56),
//   * issue: 8-wide over typed units (4 ALU, 1 mul, 2 vector, 2 load
//     ports, 1 store port) honoring per-opcode reciprocal throughput,
//   * execute: per-opcode latencies (Table 1 bottom for the FlexVec
//     instructions), cache hierarchy latencies for memory, store-to-load
//     forwarding,
//   * commit: 5-wide in order.
//
// Gathers and scatters expand to one memory micro-op per active lane with
// two load ports, matching the paper's "1-cycle AGU latency, 2 loads per
// cycle" for VPGATHERFF.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SIM_OOOCORE_H
#define FLEXVEC_SIM_OOOCORE_H

#include "emu/Machine.h"
#include "isa/InstrInfo.h"
#include "sim/BranchPredictor.h"
#include "sim/Cache.h"
#include "sim/Config.h"

#include <array>
#include <cstdint>
#include <vector>

namespace flexvec {
namespace sim {

/// Results of one simulated execution.
struct SimStats {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Uops = 0;
  uint64_t Mispredicts = 0;
  uint64_t Branches = 0;
  MemStats Mem;

  /// Issue-constraint attribution: for each uop, which term decided its
  /// issue cycle (useful for explaining where time goes).
  uint64_t BoundByFrontEnd = 0; ///< Fetch/dispatch (incl. redirects).
  uint64_t BoundByWindow = 0;   ///< ROB/RS/LQ/SQ occupancy.
  uint64_t BoundByDeps = 0;     ///< Waiting on source operands.
  uint64_t BoundByPorts = 0;    ///< Structural (execution unit busy).
  double ipc() const {
    return Cycles ? static_cast<double>(Instructions) /
                        static_cast<double>(Cycles)
                  : 0.0;
  }
  double upc() const {
    return Cycles ? static_cast<double>(Uops) / static_cast<double>(Cycles)
                  : 0.0;
  }
};

/// The timing model; attach as the emulator's trace sink.
class OooCore : public emu::TraceSink {
public:
  explicit OooCore(const CoreConfig &Cfg = CoreConfig());

  /// Legacy per-instruction delivery; identical to a one-element batch.
  void onInstr(const emu::DynInstr &DI) override;

  /// Batched delivery from the emulator; processes the records in order
  /// with the hierarchy's same-line memo armed (see Cache.h).
  void onBatch(const emu::DynInstr *Batch, size_t N) override;

  /// Final statistics (cycle count is the last retirement).
  SimStats stats() const;

  /// Current cycle count, maintained live at every retirement. Cheap —
  /// the sampled-simulation wrapper reads it at window boundaries.
  uint64_t cycles() const { return Stats.Cycles; }

  /// Functional warming: trains the caches (demand path and prefetcher)
  /// and the branch predictor with a skipped subrange of the stream,
  /// without touching the scoreboard or the cycle clock. Sampled
  /// simulation routes skip gaps through this so measurement windows open
  /// with warm microarchitectural state (the SMARTS recipe); without it,
  /// post-gap cold misses inflate window CPI by tens of percent.
  void warmBatch(const emu::DynInstr *Batch, size_t N);

  /// Re-aligns the front-end and commit clocks with the retirement
  /// watermark. After a sampled skip gap the fetch clock is frozen below
  /// LastRetire, so the first post-gap instructions would retire in a
  /// zero-cost bunch at the watermark and then pay the latency ramp again
  /// inside the measured window — a systematic per-window bias. Jumping
  /// both clocks to the watermark makes the resumed stream behave as a
  /// steady-state continuation.
  void resyncClock() {
    if (LastRetire > FetchCycle) {
      FetchCycle = LastRetire;
      FetchedThisCycle = 0;
    }
    if (LastRetire > CommitCycle) {
      CommitCycle = LastRetire;
      CommittedThisCycle = 0;
    }
  }

private:
  /// Plays one retired instruction through the scoreboard.
  void step(const emu::DynInstr &DI);

  // Architectural register scoreboard: 32 scalar + 32 vector + 8 mask.
  static constexpr unsigned NumRegs = 72;
  static unsigned regId(isa::Reg R);

  /// Everything step() needs from the static instruction, resolved once
  /// per program instruction instead of per retired one: scoreboard ids
  /// for every register the uop waits on (sources, mask, and — when the
  /// op genuinely merge-masks — the old destination), timing-table
  /// fields, and the classification flags. Indexed by DynInstr::InstrIdx
  /// and tag-checked against the Instruction's address, so a core fed
  /// from more than one program just re-decodes on the switch.
  struct DecodedSim {
    const isa::Instruction *Tag = nullptr;
    uint8_t NumWaits = 0;
    uint8_t WaitIds[5];
    int16_t DstId = -1;
    int16_t FFMaskId = -1; ///< First-faulting ops also write their mask.
    uint16_t Latency = 1;
    isa::PortKind Port = isa::PortKind::ALU;
    uint8_t FixedUops = 1;
    uint8_t LanesPerMemUop = 0;
    bool Skip = false;             ///< Untimed (halt / nop).
    bool IsVecAlu = false;         ///< Vector-unit op; uops scale with VL.
    bool SerializesRetire = false; ///< XBEGIN/XEND store-buffer drain.
    bool IsXAbort = false;
    bool IsCondBranch = false;
    bool IsLoad = false;
    bool IsStore = false;
    bool IsMemory = false;
  };
  const DecodedSim &decoded(const emu::DynInstr &DI);
  std::vector<DecodedSim> Decoded;

  struct UopDesc {
    isa::PortKind Port;
    unsigned Latency;
    uint64_t Addr = 0;
    uint64_t ReadyExtra = 0; ///< Extra readiness constraint (chained uops).
  };

  /// Runs one micro-op through the scoreboard; returns its completion
  /// cycle. Load/store-ness is a template parameter so each of the three
  /// shapes (ALU, load, store) specializes with its queue checks and
  /// memory path resolved at compile time — step() picks the
  /// instantiation once per instruction, outside the per-lane uop loops.
  template <bool IsLoadU, bool IsStoreU>
  uint64_t issueUop(const UopDesc &U, uint64_t SrcReady, uint32_t Pc);

  /// Out-of-order issue: finds the earliest cycle >= Earliest with a free
  /// unit of \p Port and reserves it (per-cycle occupancy rings, so a late
  /// dependent uop does not block younger independent ones).
  uint64_t reservePort(isa::PortKind Port, uint64_t Earliest) {
    switch (Port) {
    case isa::PortKind::ALU:
    case isa::PortKind::Branch:
      return AluRing.reserve(Earliest);
    case isa::PortKind::Mul:
      return MulRing.reserve(Earliest);
    case isa::PortKind::FP:
    case isa::PortKind::Vec:
      return VecRing.reserve(Earliest);
    case isa::PortKind::Load:
      return LoadRing.reserve(Earliest);
    case isa::PortKind::Store:
      return StoreRing.reserve(Earliest);
    case isa::PortKind::None:
      return Earliest;
    }
    return Earliest; // Unreachable; keeps the inline body noexcept-simple.
  }

  /// Consumes one fetch slot; returns the fetch cycle.
  uint64_t fetchSlot() {
    if (FetchedThisCycle >= Cfg.FetchWidth) {
      ++FetchCycle;
      FetchedThisCycle = 0;
    }
    ++FetchedThisCycle;
    return FetchCycle;
  }

  /// Consumes one commit slot at or after \p Earliest; returns the cycle.
  uint64_t commitSlot(uint64_t Earliest) {
    if (Earliest > CommitCycle) {
      CommitCycle = Earliest;
      CommittedThisCycle = 0;
    }
    if (CommittedThisCycle >= Cfg.CommitWidth) {
      ++CommitCycle;
      CommittedThisCycle = 0;
    }
    ++CommittedThisCycle;
    return CommitCycle;
  }

  CoreConfig Cfg;
  MemoryHierarchy Mem;
  BranchPredictor Bp;

  std::array<uint64_t, NumRegs> RegReady{};

  // Front end.
  uint64_t FetchCycle = 0;
  unsigned FetchedThisCycle = 0;
  static constexpr unsigned FrontEndDepth = 5;

  // Commit.
  uint64_t CommitCycle = 0;
  unsigned CommittedThisCycle = 0;
  uint64_t LastRetire = 0;

  // Resource rings: cycle at which the slot N-entries-ago frees.
  std::vector<uint64_t> RobRing, RsRing, LqRing, SqRing;
  size_t RobHead = 0, RsHead = 0, LqHead = 0, SqHead = 0;

  // Execution units: per-cycle occupancy rings per port kind. The window
  // only needs to span the spread of cycles that can be live at once —
  // bounded by the ROB depth times the worst per-uop latency (DRAM ~200
  // cycles plus bandwidth queueing), far below 4096 — while staying small
  // enough that all seven rings sit in L2 instead of streaming through
  // megabytes of tags.
  struct PortRing {
    static constexpr size_t RingSize = 1u << 10;
    explicit PortRing(unsigned Units = 1)
        : Units(Units), CycleTag(RingSize, ~0ULL), Count(RingSize, 0) {}
    /// Earliest cycle >= Earliest with spare capacity; reserves it.
    uint64_t reserve(uint64_t Earliest) {
      // Cycles below the watermark are known full; starting there is
      // exactly where the plain walk would have arrived.
      uint64_t C = Earliest > FullBelow ? Earliest : FullBelow;
      while (true) {
        size_t Slot = C & (RingSize - 1);
        if (CycleTag[Slot] != C) {
          CycleTag[Slot] = C;
          Count[Slot] = 0;
        }
        if (Count[Slot] < Units) {
          ++Count[Slot];
          if (C == FullBelow && Count[Slot] == Units)
            FullBelow = C + 1;
          return C;
        }
        if (C == FullBelow)
          FullBelow = C + 1;
        ++C;
      }
    }
    unsigned Units;
    /// Every cycle below this is at capacity. Occupancy is monotone —
    /// reservations only add — so the watermark lets a probe on a
    /// saturated port start at the frontier instead of walking the full
    /// prefix cycle by cycle; it only advances over cycles proven full
    /// contiguously from the previous watermark, so the reserved cycle is
    /// identical to the walked answer.
    uint64_t FullBelow = 0;
    std::vector<uint64_t> CycleTag;
    std::vector<uint8_t> Count;
  };
  PortRing AluRing, MulRing, VecRing, LoadRing, StoreRing;
  /// Shared-resource bandwidth: one L3 access per cycle, one DRAM fill per
  /// two cycles (the ring is keyed at half-cycle granularity).
  PortRing L3BwRing, DramBwRing;

  // Store buffer for forwarding: (8-byte granule, data-ready cycle).
  struct PendingStore {
    uint64_t Granule;
    uint64_t Ready;
  };
  std::vector<PendingStore> StoreBuf;
  size_t StoreBufHead = 0;
  /// Counting filter over the granules currently in StoreBuf (hashed into
  /// 256 buckets): a load whose bucket count is zero cannot forward and
  /// skips the buffer scan. Maintained exactly on every insert/evict, so
  /// the scan outcome is unchanged — only the no-match common case gets
  /// cheaper.
  std::array<uint16_t, 256> StoreGranFilter{};

  SimStats Stats;
};

/// Exports \p S into \p R under the `sim.` metric namespace — cycle/
/// instruction/uop counters, issue-bound attribution, branch mispredicts,
/// the IPC/UPC gauges — and delegates the hierarchy counters to the
/// MemStats overload.
void recordMetrics(const SimStats &S, obs::Registry &R);

} // namespace sim
} // namespace flexvec

#endif // FLEXVEC_SIM_OOOCORE_H
