//===- sim/OooCore.h - Out-of-order core timing model -----------*- C++ -*-===//
//
// Trace-driven timing model of the aggressive OOO core in Table 1. The
// functional emulator streams retired instructions (with resolved branch
// outcomes and memory addresses); the model expands them into micro-ops
// and plays a one-pass scoreboard over:
//
//   * front end: 5-wide fetch, gshare direction prediction, redirect
//     penalty on mispredicts, serializing RTM boundaries,
//   * dispatch: 5-wide, stalls on ROB (224) / RS (97) / LQ (80) / SQ (56),
//   * issue: 8-wide over typed units (4 ALU, 1 mul, 2 vector, 2 load
//     ports, 1 store port) honoring per-opcode reciprocal throughput,
//   * execute: per-opcode latencies (Table 1 bottom for the FlexVec
//     instructions), cache hierarchy latencies for memory, store-to-load
//     forwarding,
//   * commit: 5-wide in order.
//
// Gathers and scatters expand to one memory micro-op per active lane with
// two load ports, matching the paper's "1-cycle AGU latency, 2 loads per
// cycle" for VPGATHERFF.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SIM_OOOCORE_H
#define FLEXVEC_SIM_OOOCORE_H

#include "emu/Machine.h"
#include "isa/InstrInfo.h"
#include "sim/BranchPredictor.h"
#include "sim/Cache.h"
#include "sim/Config.h"

#include <array>
#include <cstdint>
#include <vector>

namespace flexvec {
namespace sim {

/// Results of one simulated execution.
struct SimStats {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Uops = 0;
  uint64_t Mispredicts = 0;
  uint64_t Branches = 0;
  MemStats Mem;

  /// Issue-constraint attribution: for each uop, which term decided its
  /// issue cycle (useful for explaining where time goes).
  uint64_t BoundByFrontEnd = 0; ///< Fetch/dispatch (incl. redirects).
  uint64_t BoundByWindow = 0;   ///< ROB/RS/LQ/SQ occupancy.
  uint64_t BoundByDeps = 0;     ///< Waiting on source operands.
  uint64_t BoundByPorts = 0;    ///< Structural (execution unit busy).
  double ipc() const {
    return Cycles ? static_cast<double>(Instructions) /
                        static_cast<double>(Cycles)
                  : 0.0;
  }
  double upc() const {
    return Cycles ? static_cast<double>(Uops) / static_cast<double>(Cycles)
                  : 0.0;
  }
};

/// The timing model; attach as the emulator's trace sink.
class OooCore : public emu::TraceSink {
public:
  explicit OooCore(const CoreConfig &Cfg = CoreConfig());

  void onInstr(const emu::DynInstr &DI) override;

  /// Final statistics (cycle count is the last retirement).
  SimStats stats() const;

private:
  // Architectural register scoreboard: 32 scalar + 32 vector + 8 mask.
  static constexpr unsigned NumRegs = 72;
  static unsigned regId(isa::Reg R);

  struct UopDesc {
    isa::PortKind Port;
    unsigned Latency;
    bool IsLoad = false;
    bool IsStore = false;
    uint64_t Addr = 0;
    uint64_t ReadyExtra = 0; ///< Extra readiness constraint (chained uops).
  };

  /// Runs one micro-op through the scoreboard; returns its completion
  /// cycle.
  uint64_t issueUop(const UopDesc &U, uint64_t SrcReady, uint32_t Pc);

  /// Out-of-order issue: finds the earliest cycle >= Earliest with a free
  /// unit of \p Port and reserves it (per-cycle occupancy rings, so a late
  /// dependent uop does not block younger independent ones).
  uint64_t reservePort(isa::PortKind Port, uint64_t Earliest);

  /// Consumes one fetch slot; returns the fetch cycle.
  uint64_t fetchSlot();

  /// Consumes one commit slot at or after \p Earliest; returns the cycle.
  uint64_t commitSlot(uint64_t Earliest);

  CoreConfig Cfg;
  MemoryHierarchy Mem;
  BranchPredictor Bp;

  std::array<uint64_t, NumRegs> RegReady{};

  // Front end.
  uint64_t FetchCycle = 0;
  unsigned FetchedThisCycle = 0;
  static constexpr unsigned FrontEndDepth = 5;

  // Commit.
  uint64_t CommitCycle = 0;
  unsigned CommittedThisCycle = 0;
  uint64_t LastRetire = 0;

  // Resource rings: cycle at which the slot N-entries-ago frees.
  std::vector<uint64_t> RobRing, RsRing, LqRing, SqRing;
  size_t RobHead = 0, RsHead = 0, LqHead = 0, SqHead = 0;

  // Execution units: per-cycle occupancy rings per port kind.
  struct PortRing {
    explicit PortRing(unsigned Units = 1);
    /// Earliest cycle >= Earliest with spare capacity; reserves it.
    uint64_t reserve(uint64_t Earliest);
    unsigned Units;
    std::vector<uint64_t> CycleTag;
    std::vector<uint8_t> Count;
  };
  PortRing AluRing, MulRing, VecRing, LoadRing, StoreRing;
  /// Shared-resource bandwidth: one L3 access per cycle, one DRAM fill per
  /// two cycles (the ring is keyed at half-cycle granularity).
  PortRing L3BwRing, DramBwRing;

  // Store buffer for forwarding: (8-byte granule, data-ready cycle).
  struct PendingStore {
    uint64_t Granule;
    uint64_t Ready;
  };
  std::vector<PendingStore> StoreBuf;
  size_t StoreBufHead = 0;

  SimStats Stats;
};

/// Exports \p S into \p R under the `sim.` metric namespace — cycle/
/// instruction/uop counters, issue-bound attribution, branch mispredicts,
/// the IPC/UPC gauges — and delegates the hierarchy counters to the
/// MemStats overload.
void recordMetrics(const SimStats &S, obs::Registry &R);

} // namespace sim
} // namespace flexvec

#endif // FLEXVEC_SIM_OOOCORE_H
