//===- sim/Sampled.h - Sampled (interval) simulation ------------*- C++ -*-===//
//
// SMARTS-style sampled simulation: the functional emulator always runs at
// full speed, but the detailed OOO model only sees deterministic,
// seed-chosen windows of the retirement stream. Each interval of
// IntervalInstrs retired instructions contributes one window of
// WarmupInstrs (fed to the model to re-warm caches, predictor, and
// scoreboard after a skip gap, but not measured) followed by DetailInstrs
// measured instructions; the cycles spent over the measured portion give
// the window's CPI, and the whole interval is charged at that CPI. All
// arithmetic is integer (__int128 intermediates), so the estimate is a
// pure function of (trace, config) — byte-stable across hosts and worker
// counts, exactly like the full-fidelity payload.
//
// Window placement is deterministic: interval k's window starts at offset
// hash(Seed, k) within the interval (uniform over the legal range), except
// interval 0, whose window is pinned to offset 0 so short programs are
// simulated in full and the estimate degrades to the exact cycle count.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SIM_SAMPLED_H
#define FLEXVEC_SIM_SAMPLED_H

#include "sim/OooCore.h"

#include <cstdint>
#include <vector>

namespace flexvec {
namespace sim {

/// Sampling regimen. The defaults target the Figure 8 sweep, whose
/// per-cell streams run tens of thousands to a few million instructions:
/// a (3k warmup + 10k measure) window every 25k instructions holds the
/// sweep's group geomeans within ~0.4% of full fidelity (documented bound
/// 2%; SampledErrorBoundTest asserts it) while skipping roughly half the
/// scoreboard work. Longer streams tolerate proportionally longer
/// intervals — the error decomposition is in docs/PERFORMANCE.md.
struct SampleConfig {
  uint64_t IntervalInstrs = 25000; ///< Instructions per sampling interval.
  uint64_t DetailInstrs = 10000;   ///< Measured instructions per window.
  uint64_t WarmupInstrs = 3000;    ///< Unmeasured warmup before measuring.
  uint64_t Seed = 1;               ///< Window-placement seed.
};

/// Results of one sampled execution.
struct SampledStats {
  uint64_t Instructions = 0;         ///< Total retired (full stream).
  uint64_t EstimatedCycles = 0;      ///< Extrapolated cycle count.
  uint64_t MeasuredInstructions = 0; ///< Instructions in measure phases.
  uint64_t DetailedInstructions = 0; ///< Fed to the model (warmup+measure).
  uint64_t Windows = 0;              ///< Completed measurement windows.
};

/// Trace sink that routes seed-chosen subranges of the retirement stream
/// into an inner OooCore and extrapolates whole-run cycles from the
/// per-window measurements. Attach in place of the OooCore itself.
class SampledCore : public emu::TraceSink {
public:
  SampledCore(OooCore &Inner, const SampleConfig &Cfg);

  void onInstr(const emu::DynInstr &DI) override;
  void onBatch(const emu::DynInstr *Batch, size_t N) override;

  /// Final statistics; performs the tail extrapolation (see Sampled.cpp).
  SampledStats stats() const;

  /// The wrapped detailed model (its counters cover only the detailed
  /// subset of the stream).
  const OooCore &inner() const { return Inner; }

private:
  enum class Phase : uint8_t { Skip, Warmup, Measure };

  /// Start-of-window offset for interval \p K, in [0, Interval - Window].
  uint64_t windowOffset(uint64_t K) const;

  /// Crosses the phase boundary at NextBoundary and arms the next one.
  void advancePhase();

  OooCore &Inner;
  SampleConfig Cfg;

  uint64_t GlobalIdx = 0;    ///< Retired instructions seen so far.
  uint64_t IntervalIdx = 0;  ///< Interval currently in flight.
  Phase Ph = Phase::Warmup;  ///< Interval 0's window starts at offset 0.
  uint64_t NextBoundary = 0; ///< GlobalIdx at which Ph changes.

  uint64_t CycAtMeasureStart = 0;
  uint64_t MeasureStartIdx = 0;
  /// Measured cycle delta of each completed window, by interval index.
  std::vector<uint64_t> WindowCycles;
  /// Skipped (warm-only) instructions of each interval. The estimator
  /// charges detailed instructions at their real cost — the inner clock
  /// only advances while feeding — and extrapolates just these spans at
  /// the owning interval's window CPI.
  std::vector<uint64_t> SkippedPer;

  uint64_t DetailedInstrs = 0;
};

} // namespace sim
} // namespace flexvec

#endif // FLEXVEC_SIM_SAMPLED_H
