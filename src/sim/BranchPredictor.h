//===- sim/BranchPredictor.h - Gshare direction predictor ------*- C++ -*-===//

#ifndef FLEXVEC_SIM_BRANCHPREDICTOR_H
#define FLEXVEC_SIM_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace flexvec {
namespace sim {

/// Gshare: global-history-xor-PC indexed table of 2-bit counters.
class BranchPredictor {
public:
  explicit BranchPredictor(unsigned TableBits = 14, unsigned HistoryBits = 12)
      : Table(1u << TableBits, 2 /*weakly taken*/),
        IndexMask((1u << TableBits) - 1),
        HistoryMask((1u << HistoryBits) - 1) {}

  /// Predicts the direction for static instruction \p Pc, then updates the
  /// predictor with the real \p Taken outcome. Returns true when the
  /// prediction was correct.
  bool predictAndUpdate(uint32_t Pc, bool Taken) {
    uint32_t Idx = (Pc ^ History) & IndexMask;
    uint8_t &Ctr = Table[Idx];
    bool Predicted = Ctr >= 2;
    if (Taken && Ctr < 3)
      ++Ctr;
    if (!Taken && Ctr > 0)
      --Ctr;
    History = ((History << 1) | (Taken ? 1u : 0u)) & HistoryMask;
    if (Predicted == Taken)
      ++Correct;
    else
      ++Wrong;
    return Predicted == Taken;
  }

  uint64_t correct() const { return Correct; }
  uint64_t mispredicts() const { return Wrong; }

private:
  std::vector<uint8_t> Table;
  uint32_t IndexMask;
  uint32_t HistoryMask;
  uint32_t History = 0;
  uint64_t Correct = 0;
  uint64_t Wrong = 0;
};

} // namespace sim
} // namespace flexvec

#endif // FLEXVEC_SIM_BRANCHPREDICTOR_H
