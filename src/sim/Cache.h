//===- sim/Cache.h - Cache hierarchy model ----------------------*- C++ -*-===//
//
// Set-associative LRU caches (L1D/L2/L3 + memory) with a per-PC stride
// prefetcher that does not cross page boundaries — the paper's Section 5
// notes that hardware prefetchers stopping at page boundaries hurt the
// gather-heavy vector code, so that behaviour is modeled explicitly.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SIM_CACHE_H
#define FLEXVEC_SIM_CACHE_H

#include "sim/Config.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace flexvec {
namespace obs {
class Registry;
}
namespace sim {

/// One set-associative LRU cache level.
class CacheLevel {
public:
  CacheLevel(const CacheLevelConfig &Cfg, unsigned LineBytes);

  /// True if the line holding \p Addr is present; updates LRU on hit.
  bool access(uint64_t Addr);

  /// Installs the line holding \p Addr (LRU replacement).
  void install(uint64_t Addr);

  /// Books a hit without touching LRU state. Used by the hierarchy's
  /// same-line memo, which only fires when the line is already at MRU — so
  /// the LRU move this skips would have been a no-op.
  void countHit() { ++Hits; }

  unsigned latency() const { return Latency; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  unsigned Latency;
  unsigned LineShift;
  uint64_t NumSets;
  unsigned Ways;
  /// Flat tag store, Ways slots per set, most recent first; empty slots
  /// hold ~0 (never a real tag — line indices are addresses >> LineShift).
  /// Same LRU order and hit/miss sequence as a per-set list, without the
  /// per-set heap node or erase/insert traffic.
  std::vector<uint64_t> Lines;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Aggregated statistics for the hierarchy.
struct MemStats {
  uint64_t Accesses = 0;
  uint64_t L1Hits = 0, L2Hits = 0, L3Hits = 0, MemAccesses = 0;
  uint64_t PrefetchIssued = 0;
};

/// Exports \p S into \p R under the `sim.mem.` metric namespace: demand
/// access counters per level plus derived hit-rate gauges.
void recordMetrics(const MemStats &S, obs::Registry &R);

/// The full hierarchy. loadLatency() returns the load-to-use latency for
/// an access and performs all fills.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const CoreConfig &Cfg);

  /// Hierarchy levels for bandwidth accounting.
  enum class Level : uint8_t { L1, L2, L3, Dram };

  /// Latency of a (demand) access at \p Addr issued by static instruction
  /// \p Pc. Stores use the same path (write-allocate). \p LevelOut, when
  /// non-null, receives the level that serviced the access.
  ///
  /// The same-line memo fast path lives here so the (dominant) repeat
  /// access folds into the caller; see accessLatencySlow in Cache.cpp for
  /// the exactness argument. The counter updates replicate a full-walk L1
  /// hit bit for bit.
  unsigned accessLatency(uint64_t Addr, uint32_t Pc,
                         Level *LevelOut = nullptr) {
    if ((Addr >> 6) == MemoLine) {
      ++Stats.Accesses;
      ++Stats.L1Hits;
      L1.countHit();
      if (LevelOut)
        *LevelOut = Level::L1;
      return L1.latency();
    }
    return accessLatencySlow(Addr, Pc, LevelOut);
  }

  /// Arms the same-line memo for a fresh trace batch (defensive reset; the
  /// memo is exact across batch boundaries too, see Cache.cpp).
  void beginBatch() { MemoLine = ~0ULL; }

  const MemStats &stats() const { return Stats; }

private:
  /// The full walk (L1 -> L2 -> L3 -> DRAM) with fills and prefetcher
  /// training; entered only when the memo above missed.
  unsigned accessLatencySlow(uint64_t Addr, uint32_t Pc, Level *LevelOut);

  void prefetch(uint64_t Addr);
  void installAll(uint64_t Addr);

  CoreConfig Cfg;
  CacheLevel L1, L2, L3;
  MemStats Stats;

  /// Line of the previous demand access. A repeat access to the same line
  /// is a guaranteed L1 hit and is serviced without walking the hierarchy
  /// (the ~0ULL sentinel can never equal Addr >> 6).
  uint64_t MemoLine = ~0ULL;

  /// Per-page stream detector: direction-confirmed sequential access
  /// within a 4 KiB page triggers prefetch of the next lines of that page.
  /// Re-accessing the same line (VPL re-execution) neither trains nor
  /// untrains the stream.
  struct StreamEntry {
    uint64_t Page = ~0ULL;
    uint64_t LastLine = 0;
    int Dir = 0;
    int Confidence = 0;
  };
  static constexpr size_t NumStreams = 16;
  std::vector<StreamEntry> Streams;
  size_t StreamVictim = 0;
};

} // namespace sim
} // namespace flexvec

#endif // FLEXVEC_SIM_CACHE_H
