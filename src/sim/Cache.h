//===- sim/Cache.h - Cache hierarchy model ----------------------*- C++ -*-===//
//
// Set-associative LRU caches (L1D/L2/L3 + memory) with a per-PC stride
// prefetcher that does not cross page boundaries — the paper's Section 5
// notes that hardware prefetchers stopping at page boundaries hurt the
// gather-heavy vector code, so that behaviour is modeled explicitly.
//
//===----------------------------------------------------------------------===//

#ifndef FLEXVEC_SIM_CACHE_H
#define FLEXVEC_SIM_CACHE_H

#include "sim/Config.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace flexvec {
namespace obs {
class Registry;
}
namespace sim {

/// One set-associative LRU cache level.
class CacheLevel {
public:
  CacheLevel(const CacheLevelConfig &Cfg, unsigned LineBytes);

  /// True if the line holding \p Addr is present; updates LRU on hit.
  bool access(uint64_t Addr);

  /// Installs the line holding \p Addr (LRU replacement).
  void install(uint64_t Addr);

  unsigned latency() const { return Latency; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  unsigned Latency;
  unsigned LineShift;
  uint64_t NumSets;
  unsigned Ways;
  /// Sets[set] = list of line tags, most recent first.
  std::vector<std::vector<uint64_t>> Sets;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Aggregated statistics for the hierarchy.
struct MemStats {
  uint64_t Accesses = 0;
  uint64_t L1Hits = 0, L2Hits = 0, L3Hits = 0, MemAccesses = 0;
  uint64_t PrefetchIssued = 0;
};

/// Exports \p S into \p R under the `sim.mem.` metric namespace: demand
/// access counters per level plus derived hit-rate gauges.
void recordMetrics(const MemStats &S, obs::Registry &R);

/// The full hierarchy. loadLatency() returns the load-to-use latency for
/// an access and performs all fills.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const CoreConfig &Cfg);

  /// Hierarchy levels for bandwidth accounting.
  enum class Level : uint8_t { L1, L2, L3, Dram };

  /// Latency of a (demand) access at \p Addr issued by static instruction
  /// \p Pc. Stores use the same path (write-allocate). \p LevelOut, when
  /// non-null, receives the level that serviced the access.
  unsigned accessLatency(uint64_t Addr, uint32_t Pc,
                         Level *LevelOut = nullptr);

  const MemStats &stats() const { return Stats; }

private:
  void prefetch(uint64_t Addr);
  void installAll(uint64_t Addr);

  CoreConfig Cfg;
  CacheLevel L1, L2, L3;
  MemStats Stats;

  /// Per-page stream detector: direction-confirmed sequential access
  /// within a 4 KiB page triggers prefetch of the next lines of that page.
  /// Re-accessing the same line (VPL re-execution) neither trains nor
  /// untrains the stream.
  struct StreamEntry {
    uint64_t Page = ~0ULL;
    uint64_t LastLine = 0;
    int Dir = 0;
    int Confidence = 0;
  };
  static constexpr size_t NumStreams = 16;
  std::vector<StreamEntry> Streams;
  size_t StreamVictim = 0;
};

} // namespace sim
} // namespace flexvec

#endif // FLEXVEC_SIM_CACHE_H
