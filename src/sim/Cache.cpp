//===- sim/Cache.cpp ------------------------------------------------------===//

#include "sim/Cache.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace flexvec;
using namespace flexvec::sim;

CacheLevel::CacheLevel(const CacheLevelConfig &Cfg, unsigned LineBytes)
    : Latency(Cfg.LatencyCycles), Ways(Cfg.Ways) {
  LineShift = static_cast<unsigned>(std::countr_zero(LineBytes));
  NumSets = Cfg.SizeBytes / (static_cast<uint64_t>(LineBytes) * Cfg.Ways);
  assert(NumSets > 0 && (NumSets & (NumSets - 1)) == 0 &&
         "sets must be a power of two");
  Lines.assign(NumSets * Ways, ~0ULL);
}

bool CacheLevel::access(uint64_t Addr) {
  uint64_t Line = Addr >> LineShift;
  uint64_t *Set = &Lines[(Line & (NumSets - 1)) * Ways];
  for (unsigned I = 0; I < Ways; ++I) {
    if (Set[I] == Line) {
      // Move to MRU position (no-op shift for an MRU re-hit).
      for (unsigned J = I; J > 0; --J)
        Set[J] = Set[J - 1];
      Set[0] = Line;
      ++Hits;
      return true;
    }
  }
  ++Misses;
  return false;
}

void CacheLevel::install(uint64_t Addr) {
  uint64_t Line = Addr >> LineShift;
  uint64_t *Set = &Lines[(Line & (NumSets - 1)) * Ways];
  // Shift down to the line's old slot if present, else over the LRU way.
  unsigned I = Ways - 1;
  for (unsigned K = 0; K < Ways; ++K) {
    if (Set[K] == Line) {
      I = K;
      break;
    }
  }
  for (unsigned J = I; J > 0; --J)
    Set[J] = Set[J - 1];
  Set[0] = Line;
}

MemoryHierarchy::MemoryHierarchy(const CoreConfig &Cfg)
    : Cfg(Cfg), L1(Cfg.L1D, Cfg.LineBytes), L2(Cfg.L2, Cfg.LineBytes),
      L3(Cfg.L3, Cfg.LineBytes), Streams(NumStreams) {}

void MemoryHierarchy::installAll(uint64_t Addr) {
  L1.install(Addr);
  L2.install(Addr);
  L3.install(Addr);
}

void MemoryHierarchy::prefetch(uint64_t Addr) {
  if (!Cfg.EnablePrefetcher)
    return;
  uint64_t Page = Addr >> 12;
  uint64_t Line = Addr >> 6;

  StreamEntry *E = nullptr;
  for (StreamEntry &S : Streams)
    if (S.Page == Page)
      E = &S;
  if (!E) {
    E = &Streams[StreamVictim];
    StreamVictim = (StreamVictim + 1) % Streams.size();
    *E = StreamEntry{Page, Line, 0, 0};
    return;
  }
  if (Line == E->LastLine)
    return; // Re-touching a line (e.g. VPL re-execution) is neutral.
  int Dir = Line > E->LastLine ? 1 : -1;
  if (Dir == E->Dir) {
    if (E->Confidence < 4)
      ++E->Confidence;
  } else {
    E->Dir = Dir;
    E->Confidence = 1;
  }
  E->LastLine = Line;
  if (E->Confidence < 2)
    return;
  // Prefetch ahead, never crossing the page boundary (Section 5).
  for (unsigned D = 1; D <= Cfg.PrefetchDegree; ++D) {
    uint64_t Target = Line + static_cast<uint64_t>(Dir) * D;
    if ((Target << 6 >> 12) != Page)
      break;
    installAll(Target << 6);
    ++Stats.PrefetchIssued;
  }
}

unsigned MemoryHierarchy::accessLatencySlow(uint64_t Addr, uint32_t,
                                            Level *LevelOut) {
  // Same-line memo (the inline fast path in Cache.h): a repeat access to
  // the line the previous access touched is exactly an L1 hit — the
  // previous access left the line at MRU of its L1 set (hits move to MRU,
  // misses install at MRU, and the prefetcher only installs *other*
  // lines, whose adjacent line indices map to different sets), so the LRU
  // move is a no-op and the stride prefetcher's re-touch of the same line
  // is neutral by construction (prefetch() returns early when
  // Line == LastLine, and the stream entry from the previous access is
  // still resident because no other access has run). Replicating the
  // hit's counter updates keeps every statistic identical to the full
  // walk. This slow path only runs when the memo missed.
  uint64_t Line = Addr >> 6;
  MemoLine = Line;

  ++Stats.Accesses;
  if (LevelOut)
    *LevelOut = Level::L1;
  if (L1.access(Addr)) {
    ++Stats.L1Hits;
    prefetch(Addr);
    return L1.latency();
  }
  if (L2.access(Addr)) {
    ++Stats.L2Hits;
    L1.install(Addr);
    prefetch(Addr);
    if (LevelOut)
      *LevelOut = Level::L2;
    return L2.latency();
  }
  if (L3.access(Addr)) {
    ++Stats.L3Hits;
    L1.install(Addr);
    L2.install(Addr);
    prefetch(Addr);
    if (LevelOut)
      *LevelOut = Level::L3;
    return L3.latency();
  }
  ++Stats.MemAccesses;
  installAll(Addr);
  prefetch(Addr);
  if (LevelOut)
    *LevelOut = Level::Dram;
  return Cfg.MemoryLatency;
}

// --- Metrics export ------------------------------------------------------===//

void sim::recordMetrics(const MemStats &S, obs::Registry &R) {
  R.counter("sim.mem.accesses").inc(S.Accesses);
  R.counter("sim.mem.l1_hits").inc(S.L1Hits);
  R.counter("sim.mem.l2_hits").inc(S.L2Hits);
  R.counter("sim.mem.l3_hits").inc(S.L3Hits);
  R.counter("sim.mem.dram_accesses").inc(S.MemAccesses);
  R.counter("sim.mem.prefetches").inc(S.PrefetchIssued);
  if (S.Accesses) {
    double N = static_cast<double>(S.Accesses);
    R.gauge("sim.mem.l1_hit_rate").set(static_cast<double>(S.L1Hits) / N);
    R.gauge("sim.mem.l2_hit_rate").set(static_cast<double>(S.L2Hits) / N);
    R.gauge("sim.mem.l3_hit_rate").set(static_cast<double>(S.L3Hits) / N);
  }
}
