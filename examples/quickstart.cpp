//===- examples/quickstart.cpp - FlexVec in five minutes -------------------===//
//
// Builds the paper's h264ref motion-search loop (Section 1.1) in the loop
// IR, runs the FlexVec pipeline, verifies every generated variant against
// the reference interpreter, and measures cycles on the Table 1 core.
//
//   $ ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "support/Table.h"
#include "workloads/PaperLoops.h"

#include <cstdio>

using namespace flexvec;

int main() {
  // 1. The loop, as the compiler sees it.
  auto F = workloads::buildH264Loop();
  std::printf("== Input loop ==\n%s\n", F->print().c_str());

  // 2. Analysis + code generation.
  core::PipelineResult PR = core::compileLoop(*F);
  std::printf("== Analysis ==\n%s\n\n", PR.Plan.describe(*F).c_str());

  std::printf("== FlexVec vector code (disassembly) ==\n%s\n",
              PR.FlexVec->Prog.disassemble().c_str());

  // 3. Inputs: 100k iterations, inner update fires ~2% of the time
  //    (effective vector length ~16).
  Rng R(7);
  workloads::LoopInputs In =
      workloads::genH264Inputs(*F, R, /*N=*/100000, /*UpdateProb=*/0.02);

  // 4. Correctness: every variant must match the reference interpreter.
  core::RunOutcome Ref = core::runReference(*F, In.Image, In.B);
  auto check = [&](const char *Name, const codegen::CompiledLoop &CL) {
    core::RunOutcome Out = core::runProgram(CL, In.Image, In.B);
    std::printf("  %-14s %s\n", Name,
                core::outcomesMatch(*F, Ref, Out) ? "matches reference"
                                                  : "MISMATCH");
  };
  std::printf("== Correctness ==\n");
  check("scalar", PR.Scalar);
  if (PR.Speculative)
    check("speculative", *PR.Speculative);
  check("flexvec", *PR.FlexVec);
  check("flexvec-rtm", *PR.Rtm);
  if (PR.Adaptive)
    check("flexvec-adaptive", *PR.Adaptive);

  // 5. Performance on the Table 1 core.
  std::printf("\n== Timing (Table 1 core) ==\n");
  TextTable T({"variant", "cycles", "instrs", "IPC", "speedup vs scalar"});
  core::Measurement Base = core::measureProgram(PR.Scalar, In.Image, In.B);
  auto row = [&](const char *Name, const codegen::CompiledLoop &CL) {
    core::Measurement M = core::measureProgram(CL, In.Image, In.B);
    T.addRow({Name, TextTable::fmtInt(static_cast<long long>(M.Timing.Cycles)),
              TextTable::fmtInt(static_cast<long long>(M.Timing.Instructions)),
              TextTable::fmt(M.Timing.ipc(), 2),
              TextTable::fmt(core::speedup(Base, M), 2) + "x"});
  };
  row("scalar", PR.Scalar);
  if (PR.Speculative)
    row("speculative", *PR.Speculative);
  row("flexvec", *PR.FlexVec);
  row("flexvec-rtm", *PR.Rtm);
  if (PR.Adaptive)
    row("flexvec-adaptive", *PR.Adaptive);
  T.print();

  std::printf("\n== Microarchitectural detail ==\n");
  TextTable D({"variant", "uops", "branches", "mispredicts", "L1 hits",
               "L2+L3 hits", "mem accesses", "bound by (FE/win/dep/port)"});
  auto detail = [&](const char *Name, const codegen::CompiledLoop &CL) {
    core::Measurement M = core::measureProgram(CL, In.Image, In.B);
    const sim::SimStats &S = M.Timing;
    D.addRow({Name, TextTable::fmtInt(static_cast<long long>(S.Uops)),
              TextTable::fmtInt(static_cast<long long>(S.Branches)),
              TextTable::fmtInt(static_cast<long long>(S.Mispredicts)),
              TextTable::fmtInt(static_cast<long long>(S.Mem.L1Hits)),
              TextTable::fmtInt(
                  static_cast<long long>(S.Mem.L2Hits + S.Mem.L3Hits)),
              TextTable::fmtInt(static_cast<long long>(S.Mem.MemAccesses)),
              TextTable::fmtPercent(
                  static_cast<double>(S.BoundByFrontEnd) / S.Uops, 0) + "/" +
                  TextTable::fmtPercent(
                      static_cast<double>(S.BoundByWindow) / S.Uops, 0) +
                  "/" +
                  TextTable::fmtPercent(
                      static_cast<double>(S.BoundByDeps) / S.Uops, 0) +
                  "/" +
                  TextTable::fmtPercent(
                      static_cast<double>(S.BoundByPorts) / S.Uops, 0)});
  };
  detail("scalar", PR.Scalar);
  if (PR.Speculative)
    detail("speculative", *PR.Speculative);
  detail("flexvec", *PR.FlexVec);
  detail("flexvec-rtm", *PR.Rtm);
  D.print();
  return 0;
}
