//===- examples/paper_figures.cpp - Walk the paper's figures ---------------===//
//
// Reproduces the paper's worked compilation examples as text: for each of
// the three pattern loops (Figures 2, 5, and 6/7), prints the source-level
// IR, the program dependence graph with the backward arcs FlexVec relaxes,
// the analysis plan (statement tags), and the generated partial vector
// code with VPLs.
//
//   $ ./examples/paper_figures [h264|conflict|earlyexit]
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "pdg/Pdg.h"
#include "workloads/PaperLoops.h"

#include <cstdio>
#include <cstring>

using namespace flexvec;

namespace {

void show(const char *Title, const char *FigureRef,
          const ir::LoopFunction &F) {
  std::printf("==========================================================\n");
  std::printf("%s (%s)\n", Title, FigureRef);
  std::printf("==========================================================\n\n");

  std::printf("-- source loop --\n%s\n", F.print().c_str());

  pdg::Pdg P(F);
  std::printf("-- program dependence graph --\n%s\n", P.dump().c_str());

  core::PipelineResult PR = core::compileLoop(F);
  std::printf("-- analysis --\n%s\n\n", PR.Plan.describe(F).c_str());

  std::printf("-- FlexVec partial vector code --\n%s\n",
              PR.FlexVec->Prog.disassemble().c_str());

  std::printf("-- RTM variant (strip-mined, Figure 3 / Figure 5(f)) --\n");
  std::printf("%s\n", PR.Rtm->Notes.c_str());
  std::printf("(instructions: %zu; XBEGIN used: %s)\n\n",
              PR.Rtm->Prog.size(),
              PR.Rtm->Prog.usesOpcode(isa::Opcode::XBegin) ? "yes" : "no");
}

} // namespace

int main(int argc, char **argv) {
  const char *Which = argc > 1 ? argv[1] : "all";
  bool All = std::strcmp(Which, "all") == 0;

  if (All || std::strcmp(Which, "conflict") == 0) {
    auto F = workloads::buildConflictLoop();
    show("Runtime memory dependence", "Figure 2 / Figure 7", *F);
  }
  if (All || std::strcmp(Which, "earlyexit") == 0) {
    auto F = workloads::buildEarlyExitLoop();
    show("Early loop termination", "Figure 5", *F);
  }
  if (All || std::strcmp(Which, "h264") == 0) {
    auto F = workloads::buildH264Loop();
    show("Conditional scalar update (464.h264ref)", "Figures 1 and 6", *F);
  }
  return 0;
}
