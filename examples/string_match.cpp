//===- examples/string_match.cpp - Early termination with FF loads ---------===//
//
// Domain scenario: a gzip/zlib-style match scan — walk a corpus until a
// sentinel is found, with a data-dependent table lookup per element
// (Figure 5 of the paper). Demonstrates:
//
//  1. vectorized early exit: the first matching lane commits `best_pos`
//     via VPSLCTLAST and clips k_loop for the lanes past it,
//  2. speculative safety: when the string ends exactly at a page boundary
//     one element past the match, the first-faulting load clips its mask
//     and the program falls back to scalar — and still gets the right
//     answer, and
//  3. the RTM alternative surviving the same scenario via abort + scalar
//     tile.
//
//   $ ./examples/string_match
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "support/Table.h"
#include "workloads/PaperLoops.h"

#include <cstdio>

using namespace flexvec;
using namespace flexvec::workloads;

int main() {
  auto F = buildEarlyExitLoop();
  std::printf("== The loop (Figure 5 of the paper) ==\n%s\n",
              F->print().c_str());
  core::PipelineResult PR = core::compileLoop(*F);
  std::printf("== Plan ==\n%s\n\n", PR.Plan.describe(*F).c_str());

  // 1. Match-position sweep: the earlier the match, the less there is to
  //    vectorize; speedup grows with the scan length.
  std::printf("== Match position sweep (declared length 40000) ==\n");
  TextTable T({"match at", "scalar cycles", "flexvec cycles", "speedup",
               "best_pos correct"});
  for (int64_t MatchPos : {5L, 100L, 2000L, 20000L, 39999L}) {
    Rng R(9);
    LoopInputs In = genEarlyExitInputs(*F, R, 40000, MatchPos);
    core::RunOutcome Ref = core::runReference(*F, In.Image, In.B);
    core::Measurement Scalar =
        core::measureProgram(PR.Scalar, In.Image, In.B);
    core::Measurement Flex =
        core::measureProgram(*PR.FlexVec, In.Image, In.B);
    T.addRow({TextTable::fmtInt(MatchPos),
              TextTable::fmtInt(static_cast<long long>(Scalar.Timing.Cycles)),
              TextTable::fmtInt(static_cast<long long>(Flex.Timing.Cycles)),
              TextTable::fmt(core::speedup(Scalar, Flex), 2) + "x",
              core::outcomesMatch(*F, Ref, Flex.Outcome) ? "yes" : "NO"});
  }
  T.print();

  // 2. Speculative fault: the string is mapped only up to one element past
  //    the match, ending exactly at a page boundary.
  std::printf("\n== Speculation past the end of the mapped string ==\n");
  Rng R(10);
  LoopInputs Tight = genEarlyExitInputs(*F, R, /*N=*/4000, /*MatchPos=*/777,
                                        /*TightPages=*/true);
  core::RunOutcome Ref = core::runReference(*F, Tight.Image, Tight.B);
  core::RunOutcome Flex = core::runProgram(*PR.FlexVec, Tight.Image, Tight.B);
  core::RunOutcome Rtm = core::runProgram(*PR.Rtm, Tight.Image, Tight.B);
  std::printf("  reference best_pos     = %lld\n",
              static_cast<long long>(Ref.LiveOuts[2]));
  std::printf("  flexvec (FF fallback)  = %lld  [%s, ran to completion: %s]\n",
              static_cast<long long>(Flex.LiveOuts[2]),
              core::outcomesMatch(*F, Ref, Flex) ? "correct" : "WRONG",
              Flex.Ok ? "yes" : "no");
  std::printf("  flexvec-rtm (abort)    = %lld  [%s]\n",
              static_cast<long long>(Rtm.LiveOuts[2]),
              core::outcomesMatch(*F, Ref, Rtm) ? "correct" : "WRONG");
  std::printf("\nWithout first-faulting semantics a plain vector load would "
              "deliver an architectural fault the scalar program never\n"
              "raises; VMOVFF clips the write-mask instead, the emitted "
              "check notices, and execution completes in scalar.\n");
  return 0;
}
