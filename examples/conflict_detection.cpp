//===- examples/conflict_detection.cpp - Runtime memory dependences --------===//
//
// Domain scenario: a table-update loop in the 473.astar mold (Figure 2 of
// the paper) whose store can hit a slot read by a later iteration. Shows
// how VPCONFLICTM + KFTM.EXC partition each vector iteration at runtime:
// the example runs the same loop at several conflict rates, verifies the
// results against the reference interpreter, and reports how many VPL
// rounds were needed and what that does to cycles.
//
//   $ ./examples/conflict_detection
//
//===----------------------------------------------------------------------===//

#include "core/Measure.h"
#include "core/Pipeline.h"
#include "support/Table.h"
#include "workloads/PaperLoops.h"

#include <cstdio>

using namespace flexvec;
using namespace flexvec::workloads;

int main() {
  auto F = buildConflictLoop();
  std::printf("== The loop (Figure 2 of the paper) ==\n%s\n",
              F->print().c_str());

  core::PipelineResult PR = core::compileLoop(*F);
  std::printf("== Plan ==\n%s\n\n", PR.Plan.describe(*F).c_str());

  std::printf("The conflict check and the vector partitioning loop in the "
              "generated code:\n\n");
  // Print just the VPL region: from the first vconflictm to the backward
  // branch that closes the do/while.
  const isa::Program &P = PR.FlexVec->Prog;
  size_t First = 0, Last = 0;
  for (size_t I = 0; I < P.size(); ++I) {
    if (P[I].Op == isa::Opcode::VConflictM && First == 0)
      First = I > 2 ? I - 2 : 0;
    if (P[I].Op == isa::Opcode::KFtmExc)
      Last = I;
  }
  for (size_t I = First; I < std::min(P.size(), Last + 8); ++I)
    std::printf("%4zu:  %s\n", I, P[I].str().c_str());

  std::printf("\n== Sweeping the runtime conflict rate (n = 30000) ==\n");
  TextTable T({"conflict prob", "VPL rounds/chunk", "scalar cycles",
               "flexvec cycles", "speedup", "correct"});
  for (double Prob : {0.0, 0.02, 0.1, 0.3}) {
    Rng R(5);
    LoopInputs In = genConflictInputs(*F, R, 30000, Prob, 2048);

    core::RunOutcome Ref = core::runReference(*F, In.Image, In.B);
    core::Measurement Scalar =
        core::measureProgram(PR.Scalar, In.Image, In.B);
    core::Measurement Flex =
        core::measureProgram(*PR.FlexVec, In.Image, In.B);
    bool Correct = core::outcomesMatch(*F, Ref, Flex.Outcome);

    uint64_t Kftm = Flex.Outcome.Exec.Stats.countOf(isa::Opcode::KFtmExc);
    double Rounds = static_cast<double>(Kftm) / (30000.0 / 16.0);
    T.addRow({TextTable::fmt(Prob, 2), TextTable::fmt(Rounds, 2),
              TextTable::fmtInt(static_cast<long long>(Scalar.Timing.Cycles)),
              TextTable::fmtInt(static_cast<long long>(Flex.Timing.Cycles)),
              TextTable::fmt(core::speedup(Scalar, Flex), 2) + "x",
              Correct ? "yes" : "NO"});
  }
  T.print();

  std::printf("\nEvery store-to-load order the scalar loop would produce is "
              "preserved: the VPL executes the lanes before each detected\n"
              "conflict, retires them from k_todo, and re-runs the gather "
              "for the dependent lanes after the store has committed.\n");
  return 0;
}
