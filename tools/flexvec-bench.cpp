//===- tools/flexvec-bench.cpp - Figure 8 sweep driver ---------------------===//
//
// Runs the full 18-workload x 6-variant Figure 8 / Table 2 sweep on the
// parallel evaluation engine and emits the machine-readable trajectory
// file (BENCH_figure8.json). See docs/EVALUATION.md for the JSON schema
// and the determinism contract.
//
//   flexvec-bench [options]
//     --jobs=N        worker threads (default: one per hardware thread)
//     --seed=N        base seed for the workload input streams (default 1)
//     --scale=X       iteration scale for the workloads (default 1.0)
//     --trips=N       whole-matrix repetitions; trips > 1 exercise the
//                     compiled-loop cache across sweeps (default 1)
//     --out=PATH      JSON output path (default BENCH_figure8.json)
//     --fault-seed=N  chaos mode: run every cell under a seeded RTM
//                     conflict-abort storm (prob 0.5); also settable via
//                     the FLEXVEC_FAULT_SEED environment variable (the
//                     flag wins). 0 = off (default)
//     --sim-mode=M    timing-model fidelity: "full" (every retired
//                     instruction through the OOO model; the default) or
//                     "sampled" (deterministic interval sampling with
//                     extrapolation; emits the v2-sampled schema)
//     --sample-interval=N / --sample-detail=N / --sample-warmup=N /
//     --sample-seed=N sampling regimen (defaults 25000/10000/3000/1);
//                     only meaningful with --sim-mode=sampled
//     --vl=BITS       vector width every cell compiles and runs at: 128,
//                     256, 512, 1024, or 2048 bits (default: FLEXVEC_VL,
//                     else 512). A non-default width also runs the
//                     fixed-512 reference sweep and emits per-workload
//                     width-comparison rows (table + "width_compare" in
//                     the JSON); the payload then carries a "vl" field
//                     and is not comparable against the 512-bit baseline
//     --deterministic omit wall-time fields from the JSON (byte-stable
//                     across worker counts and machines)
//     --quiet         suppress the human-readable table
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "isa/Reg.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workloads/Figure8.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace flexvec;

namespace {

struct BenchOptions {
  core::SweepOptions Sweep;
  std::string OutPath = "BENCH_figure8.json";
  bool Deterministic = false;
  bool Quiet = false;
};

void usage(std::FILE *To) {
  std::fprintf(To,
               "usage: flexvec-bench [--jobs=N] [--seed=N] [--scale=X] "
               "[--trips=N] [--out=PATH] [--fault-seed=N] "
               "[--sim-mode=full|sampled] [--sample-interval=N] "
               "[--sample-detail=N] [--sample-warmup=N] [--sample-seed=N] "
               "[--vl=128|256|512|1024|2048] [--deterministic] [--quiet]\n");
}

bool parseArgs(int Argc, char **Argv, BenchOptions &Opts) {
  Opts.Sweep.Jobs = 0; // Default: one worker per hardware thread.
  // Environment default for CI chaos sweeps; an explicit --fault-seed=
  // flag overrides it.
  if (const char *Env = std::getenv("FLEXVEC_FAULT_SEED")) {
    uint64_t U = 0;
    if (parseUInt(Env, U))
      Opts.Sweep.FaultSeed = U;
  }
  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    uint64_t U = 0;
    double D = 0;
    if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), U)) {
        std::fprintf(stderr, "error: --jobs expects a non-negative integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Jobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), U)) {
        std::fprintf(stderr, "error: --seed expects a non-negative integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Seed = U;
    } else if (Arg.rfind("--scale=", 0) == 0) {
      if (!parseDouble(Arg.substr(8), D) || D <= 0) {
        std::fprintf(stderr, "error: --scale expects a positive number, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Scale = D;
    } else if (Arg.rfind("--trips=", 0) == 0) {
      if (!parseUInt(Arg.substr(8), U) || U == 0) {
        std::fprintf(stderr, "error: --trips expects a positive integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Trips = static_cast<unsigned>(U);
    } else if (Arg.rfind("--fault-seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(13), U)) {
        std::fprintf(stderr, "error: --fault-seed expects a non-negative "
                             "integer, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.FaultSeed = U;
    } else if (Arg.rfind("--sim-mode=", 0) == 0) {
      std::string Mode = Arg.substr(11);
      if (Mode == "full") {
        Opts.Sweep.Sim = core::SimMode::Full;
      } else if (Mode == "sampled") {
        Opts.Sweep.Sim = core::SimMode::Sampled;
      } else {
        std::fprintf(stderr, "error: --sim-mode expects 'full' or "
                             "'sampled', got '%s'\n", Mode.c_str());
        return false;
      }
    } else if (Arg.rfind("--sample-interval=", 0) == 0) {
      if (!parseUInt(Arg.substr(18), U) || U == 0) {
        std::fprintf(stderr, "error: --sample-interval expects a positive "
                             "integer, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Sample.IntervalInstrs = U;
    } else if (Arg.rfind("--sample-detail=", 0) == 0) {
      if (!parseUInt(Arg.substr(16), U) || U == 0) {
        std::fprintf(stderr, "error: --sample-detail expects a positive "
                             "integer, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Sample.DetailInstrs = U;
    } else if (Arg.rfind("--sample-warmup=", 0) == 0) {
      if (!parseUInt(Arg.substr(16), U)) {
        std::fprintf(stderr, "error: --sample-warmup expects a non-negative "
                             "integer, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Sample.WarmupInstrs = U;
    } else if (Arg.rfind("--sample-seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(14), U)) {
        std::fprintf(stderr, "error: --sample-seed expects a non-negative "
                             "integer, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Sample.Seed = U;
    } else if (Arg.rfind("--vl=", 0) == 0) {
      if (!parseUInt(Arg.substr(5), U) ||
          !isa::VectorConfig::isValidBits(static_cast<unsigned>(U))) {
        std::fprintf(stderr, "error: --vl expects a power-of-two vector "
                             "length in bits between 128 and 2048, got "
                             "'%s'\n", Arg.c_str());
        return false;
      }
      Opts.Sweep.Vec = isa::VectorConfig(static_cast<unsigned>(U) / 8);
    } else if (Arg.rfind("--out=", 0) == 0) {
      Opts.OutPath = Arg.substr(6);
      if (Opts.OutPath.empty()) {
        std::fprintf(stderr, "error: --out expects a path\n");
        return false;
      }
    } else if (Arg == "--deterministic") {
      Opts.Deterministic = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(stderr);
    return 2;
  }

  // Build the suite here (rather than through runFigure8Sweep) so a
  // failing cell can be reported with its loop's DSL reproducer.
  core::CompileCache Cache;
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(Opts.Sweep.Scale);
  core::SweepResult R = core::runSweep(Suite.Workloads, Opts.Sweep, &Cache);

  // Width sweep axis: at a non-default VL, also run the fixed-512
  // reference sweep so the output carries 512-vs-requested comparison
  // rows. The cache keeps the two widths apart (VL is part of the key).
  bool HaveRef = Opts.Sweep.Vec.Bytes != isa::VectorBytes;
  core::SweepResult Ref;
  if (HaveRef) {
    core::SweepOptions RefOpts = Opts.Sweep;
    RefOpts.Vec = isa::VectorConfig(); // the fixed 512-bit reference
    Ref = core::runSweep(Suite.Workloads, RefOpts, &Cache);
  }

  if (!Opts.Quiet) {
    std::printf("Figure 8 / Table 2 sweep: %zu cells, %u worker(s), "
                "%.2fs wall\n\n",
                R.Cells.size(), R.Workers, R.WallSeconds);
    TextTable T({"benchmark", "group", "variant", "cycles", "hot speedup",
                 "overall", "paper", "correct"});
    for (const core::CellResult &Cell : R.Cells) {
      if (!Cell.Generated)
        continue;
      T.addRow({Cell.Benchmark, Cell.Group, Cell.Variant,
                TextTable::fmtInt(static_cast<long long>(Cell.Cycles)),
                TextTable::fmt(Cell.HotSpeedup, 2) + "x",
                TextTable::fmt(Cell.Overall, 3) + "x",
                TextTable::fmt(Cell.PaperSpeedup, 2) + "x",
                Cell.Correct ? "yes" : "NO"});
    }
    T.addSeparator();
    T.addRow({"GEOMEAN (SPEC, flexvec)", "", "", "", "",
              TextTable::fmt(R.SpecGeomean, 3) + "x", "1.09x", ""});
    T.addRow({"GEOMEAN (apps, flexvec)", "", "", "", "",
              TextTable::fmt(R.AppsGeomean, 3) + "x", "1.11x", ""});
    // Imported kernel-family groups have no paper reference column.
    for (const auto &Geo : R.GroupGeomeans) {
      if (Geo.first == "SPEC" || Geo.first == "APPS")
        continue;
      T.addRow({"GEOMEAN (" + Geo.first + ", flexvec)", "", "", "", "",
                TextTable::fmt(Geo.second, 3) + "x", "-", ""});
    }
    T.print();
    if (HaveRef) {
      std::printf("\nwidth sweep: flexvec at %u-bit vs the fixed 512-bit "
                  "reference\n\n", R.Vec.bits());
      TextTable WT({"benchmark", "cycles@512",
                    "cycles@" + std::to_string(R.Vec.bits()), "ratio"});
      for (size_t W = 0; W < Suite.Workloads.size(); ++W) {
        size_t I = W * core::NumVariants +
                   static_cast<size_t>(core::VariantId::FlexVec);
        const core::CellResult &Cur = R.Cells[I];
        const core::CellResult &R512 = Ref.Cells[I];
        if (!Cur.Generated || !R512.Generated || !Cur.Cycles)
          continue;
        WT.addRow({Cur.Benchmark,
                   TextTable::fmtInt(static_cast<long long>(R512.Cycles)),
                   TextTable::fmtInt(static_cast<long long>(Cur.Cycles)),
                   TextTable::fmt(static_cast<double>(R512.Cycles) /
                                      static_cast<double>(Cur.Cycles),
                                  2) + "x"});
      }
      WT.print();
    }
    std::printf("\ncompile cache: %llu hits, %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(R.CacheHits),
                static_cast<unsigned long long>(R.CacheMisses),
                100.0 * R.cacheHitRate());
  }

  // Any incorrect generated cell is a hard failure: the sweep's numbers
  // are only meaningful when every program matched the reference. Each
  // failing cell is reported with the DSL form of its loop so the
  // divergence can be replayed through flexvec-cli without rerunning the
  // whole sweep.
  int Incorrect = 0;
  for (const core::CellResult &Cell : R.Cells) {
    if (!Cell.Generated || Cell.Correct)
      continue;
    ++Incorrect;
    std::fprintf(stderr,
                 "error: %s/%s diverged from the reference interpreter "
                 "(seed=%llu, scale=%g)\n",
                 Cell.Benchmark.c_str(), Cell.Variant.c_str(),
                 static_cast<unsigned long long>(R.Seed), R.Scale);
    for (const core::SweepWorkload &W : Suite.Workloads) {
      if (W.Name != Cell.Benchmark || !W.F)
        continue;
      std::fprintf(stderr, "DSL reproducer:\n%s\n",
                   ir::printLoopDsl(*W.F).c_str());
      break;
    }
  }
  if (Incorrect)
    std::fprintf(stderr, "error: %d cell(s) diverged from the reference "
                         "interpreter\n", Incorrect);

  std::ofstream Out(Opts.OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Opts.OutPath.c_str());
    return 2;
  }
  Json Doc = core::benchJson(R, Opts.Deterministic);
  if (HaveRef) {
    // Fixed-512-vs-requested-width comparison rows, flexvec column only.
    // Additive: present only when the payload already carries a "vl"
    // field, so the default 512-bit document is untouched.
    Json Rows = Json::array();
    for (size_t W = 0; W < Suite.Workloads.size(); ++W) {
      size_t I = W * core::NumVariants +
                 static_cast<size_t>(core::VariantId::FlexVec);
      const core::CellResult &Cur = R.Cells[I];
      const core::CellResult &R512 = Ref.Cells[I];
      if (!Cur.Generated || !R512.Generated || !Cur.Cycles)
        continue;
      Json Row = Json::object();
      Row.set("benchmark", Cur.Benchmark);
      Row.set("cycles_512", R512.Cycles);
      Row.set("cycles_vl", Cur.Cycles);
      Row.set("speedup_vs_512", static_cast<double>(R512.Cycles) /
                                    static_cast<double>(Cur.Cycles));
      Rows.push(std::move(Row));
    }
    Doc.set("width_compare", std::move(Rows));
  }
  Out << Doc.dump();
  if (!Opts.Quiet)
    std::printf("wrote %s\n", Opts.OutPath.c_str());
  return Incorrect ? 1 : 0;
}
