//===- tools/flexvec-benchdiff.cpp - Bench regression comparator ----------===//
//
// Compares two flexvec-bench JSON documents and fails on regression; the
// CI bench-gate job runs this against the checked-in deterministic
// baseline on every PR (see docs/OBSERVABILITY.md).
//
//   flexvec-benchdiff [options] baseline.json current.json
//     --cycles-tolerance=PCT    max per-cell cycle growth (default 2)
//     --geomean-tolerance=PCT   max geomean-speedup drop (default 2)
//     --metric-threshold=NAME=PCT
//                               fail when aggregate metric NAME grows by
//                               more than PCT percent (repeatable)
//     --quiet                   print regressions only, not drift notes
//
// Exit codes: 0 no regression, 1 regression, 2 unusable input (parse or
// schema failure, different sweep configuration, bad usage).
//
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace flexvec;

namespace {

struct ToolOptions {
  obs::BenchDiffOptions Diff;
  std::string BaselinePath;
  std::string CurrentPath;
  bool Quiet = false;
};

void usage(std::FILE *To) {
  std::fprintf(To,
               "usage: flexvec-benchdiff [--cycles-tolerance=PCT] "
               "[--geomean-tolerance=PCT] [--metric-threshold=NAME=PCT] "
               "[--quiet] baseline.json current.json\n");
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  std::vector<std::string> Positional;
  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    double D = 0;
    if (Arg.rfind("--cycles-tolerance=", 0) == 0) {
      if (!parseDouble(Arg.substr(19), D) || D < 0) {
        std::fprintf(stderr, "error: --cycles-tolerance expects a "
                             "non-negative percent, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Diff.CyclesTolerancePct = D;
    } else if (Arg.rfind("--geomean-tolerance=", 0) == 0) {
      if (!parseDouble(Arg.substr(20), D) || D < 0) {
        std::fprintf(stderr, "error: --geomean-tolerance expects a "
                             "non-negative percent, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Diff.GeomeanTolerancePct = D;
    } else if (Arg.rfind("--metric-threshold=", 0) == 0) {
      std::string Spec = Arg.substr(19);
      size_t Eq = Spec.rfind('=');
      if (Eq == std::string::npos || Eq == 0 ||
          !parseDouble(Spec.substr(Eq + 1), D) || D < 0) {
        std::fprintf(stderr, "error: --metric-threshold expects NAME=PCT, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Diff.MetricThresholds.emplace_back(Spec.substr(0, Eq), D);
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Positional.push_back(Arg);
    }
  }
  if (Positional.size() != 2) {
    std::fprintf(stderr, "error: expected exactly two input files, got %zu\n",
                 Positional.size());
    return false;
  }
  Opts.BaselinePath = Positional[0];
  Opts.CurrentPath = Positional[1];
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(stderr);
    return 2;
  }

  obs::BenchDiffReport R =
      obs::diffBenchFiles(Opts.BaselinePath, Opts.CurrentPath, Opts.Diff);

  for (const std::string &Line : R.Regressions)
    std::fprintf(stderr, "%s: %s\n", R.ExitCode == 2 ? "error" : "REGRESSION",
                 Line.c_str());
  if (!Opts.Quiet)
    for (const std::string &Line : R.Notes)
      std::printf("note: %s\n", Line.c_str());

  if (R.ExitCode == 0)
    std::printf("benchdiff: no regression (%s vs %s)\n",
                Opts.BaselinePath.c_str(), Opts.CurrentPath.c_str());
  else if (R.ExitCode == 1)
    std::fprintf(stderr, "benchdiff: %zu regression(s)\n",
                 R.Regressions.size());
  return R.ExitCode;
}
