//===- tools/flexvec-fuzz.cpp - Differential fuzzing driver ----------------===//
//
// The scenario mill as a standalone driver: generates N loops from the
// src/gen envelope, runs each through gen::checkLoop — DSL round-trip,
// plan legality, the no-silent-decline remark invariant, the six-variant
// differential against the reference interpreter, and an RTM conflict
// storm over the transactional variants — and, on failure, shrinks the
// loop to a minimal reproducer and writes it (plus the original) to the
// artifacts directory.
//
//   flexvec-fuzz [options]
//     --count=N         generated loops (default 200)
//     --seed=N          base seed; case seeds derive from (seed, index)
//     --case-seed=N     replay exactly one case by its derived seed
//     --jobs=N          worker threads (0 = one per hardware thread;
//                       default 0). Results are a pure function of the
//                       seeds: any job count yields the same verdicts.
//     --envelope=NAME   classic | widened (default widened)
//     --rounds=N        random-input rounds per loop (default 2)
//     --max-trip=N      largest random trip count (default 400)
//     --storm=0|1       RTM conflict-storm pass on/off (default 1)
//     --artifacts=DIR   where shrunk reproducers land (default
//                       fuzz-artifacts; created on first failure)
//     --out=PATH        machine-readable JSON summary (flexvec-fuzz/v1)
//     --deterministic   omit wall-clock fields from the JSON summary
//     --quiet           suppress the human-readable summary
//
// Exit status: 0 all cases passed, 1 at least one failure, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "gen/Differential.h"
#include "gen/Gen.h"
#include "gen/Shrink.h"
#include "ir/Parser.h"
#include "support/ArgParse.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace flexvec;

namespace {

struct FuzzOptions {
  uint64_t Count = 200;
  uint64_t Seed = 1;
  std::optional<uint64_t> CaseSeed;
  unsigned Jobs = 0;
  std::string EnvelopeName = "widened";
  int Rounds = 2;
  int64_t MaxTrip = 400;
  bool Storm = true;
  std::string ArtifactsDir = "fuzz-artifacts";
  std::string OutPath;
  bool Deterministic = false;
  bool Quiet = false;
};

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: flexvec-fuzz [--count=N] [--seed=N] [--case-seed=N] "
      "[--jobs=N] [--envelope=classic|widened] [--rounds=N] [--max-trip=N] "
      "[--storm=0|1] [--artifacts=DIR] [--out=PATH] [--deterministic] "
      "[--quiet]\n");
}

bool parseArgs(int Argc, char **Argv, FuzzOptions &Opts) {
  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    uint64_t U = 0;
    if (Arg.rfind("--count=", 0) == 0) {
      if (!parseUInt(Arg.substr(8), U) || U == 0) {
        std::fprintf(stderr, "error: --count expects a positive integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Count = U;
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), U)) {
        std::fprintf(stderr, "error: --seed expects a non-negative integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Seed = U;
    } else if (Arg.rfind("--case-seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(12), U)) {
        std::fprintf(stderr, "error: --case-seed expects a non-negative "
                             "integer, got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.CaseSeed = U;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), U)) {
        std::fprintf(stderr, "error: --jobs expects a non-negative integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Jobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--envelope=", 0) == 0) {
      Opts.EnvelopeName = Arg.substr(11);
      if (Opts.EnvelopeName != "classic" && Opts.EnvelopeName != "widened") {
        std::fprintf(stderr, "error: --envelope expects 'classic' or "
                             "'widened', got '%s'\n", Arg.c_str());
        return false;
      }
    } else if (Arg.rfind("--rounds=", 0) == 0) {
      if (!parseUInt(Arg.substr(9), U) || U == 0) {
        std::fprintf(stderr, "error: --rounds expects a positive integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.Rounds = static_cast<int>(U);
    } else if (Arg.rfind("--max-trip=", 0) == 0) {
      if (!parseUInt(Arg.substr(11), U) || U == 0) {
        std::fprintf(stderr, "error: --max-trip expects a positive integer, "
                             "got '%s'\n", Arg.c_str());
        return false;
      }
      Opts.MaxTrip = static_cast<int64_t>(U);
    } else if (Arg.rfind("--storm=", 0) == 0) {
      std::string V = Arg.substr(8);
      if (V != "0" && V != "1") {
        std::fprintf(stderr, "error: --storm expects 0 or 1, got '%s'\n",
                     Arg.c_str());
        return false;
      }
      Opts.Storm = V == "1";
    } else if (Arg.rfind("--artifacts=", 0) == 0) {
      Opts.ArtifactsDir = Arg.substr(12);
      if (Opts.ArtifactsDir.empty()) {
        std::fprintf(stderr, "error: --artifacts expects a directory\n");
        return false;
      }
    } else if (Arg.rfind("--out=", 0) == 0) {
      Opts.OutPath = Arg.substr(6);
      if (Opts.OutPath.empty()) {
        std::fprintf(stderr, "error: --out expects a path\n");
        return false;
      }
    } else if (Arg == "--deterministic") {
      Opts.Deterministic = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

struct CaseOutcome {
  size_t Index = 0;
  uint64_t CaseSeed = 0;
  gen::CheckResult Check;
  std::string Dsl;       ///< Original generated loop.
  std::string ShrunkDsl; ///< Minimized reproducer (failures only).
  int ShrinkAttempts = 0;
  int ShrinkAccepted = 0;
};

/// One case, a pure function of its seed: generate, check, and on failure
/// shrink while the same (class, variant) failure reproduces.
CaseOutcome runCase(size_t Index, uint64_t CaseSeed, const gen::Envelope &E,
                    const gen::CheckOptions &CO) {
  CaseOutcome Out;
  Out.Index = Index;
  Out.CaseSeed = CaseSeed;
  gen::GeneratedLoop G = gen::generateLoop(CaseSeed, E);
  Out.Dsl = ir::printLoopDsl(*G.F);
  Out.Check = gen::checkLoop(*G.F, CaseSeed, CO);
  if (Out.Check.ok())
    return Out;

  gen::ShrinkOptions SO;
  SO.MaxAttempts = 800;
  gen::ShrinkResult SR = gen::shrinkLoop(
      *G.F,
      [&](const ir::LoopFunction &Cand) {
        return gen::checkLoop(Cand, CaseSeed, CO).sameFailure(Out.Check);
      },
      SO);
  Out.ShrunkDsl = ir::printLoopDsl(*SR.F);
  Out.ShrinkAttempts = SR.Attempts;
  Out.ShrinkAccepted = SR.Accepted;
  return Out;
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Contents;
  return Out.good();
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(stderr);
    return 2;
  }

  gen::Envelope E = Opts.EnvelopeName == "classic"
                        ? gen::Envelope::classic()
                        : gen::Envelope::widened();
  gen::CheckOptions CO;
  CO.Rounds = Opts.Rounds;
  CO.MaxTrip = Opts.MaxTrip;
  CO.Inputs.IndexMask = E.IndexMask;
  CO.Inputs.IndexBound = E.TableSize;
  CO.Inputs.ArraySlack = E.MaxAffineOffset + 4;

  size_t Count = Opts.CaseSeed ? 1 : static_cast<size_t>(Opts.Count);
  auto Start = std::chrono::steady_clock::now();
  ThreadPool Pool(Opts.Jobs);
  std::vector<CaseOutcome> Results =
      Pool.map<CaseOutcome>(Count, [&](size_t I) {
        uint64_t CaseSeed =
            Opts.CaseSeed ? *Opts.CaseSeed
                          : deriveStreamSeed(Opts.Seed, static_cast<uint64_t>(I));
        gen::CheckOptions Case = CO;
        // Per-case storm seed so two cases never share an abort schedule.
        Case.StormSeed =
            Opts.Storm ? deriveStreamSeed(CaseSeed, 0xfa117) : 0;
        return runCase(I, CaseSeed, E, Case);
      });
  double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Artifacts: the shrunk reproducer (with a replay header the DSL parser
  // treats as comments) plus the unshrunk original, one pair per failure.
  std::vector<const CaseOutcome *> Failures;
  for (const CaseOutcome &C : Results)
    if (!C.Check.ok())
      Failures.push_back(&C);

  if (!Failures.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Opts.ArtifactsDir, Ec);
    if (Ec)
      std::fprintf(stderr, "error: cannot create artifacts dir '%s': %s\n",
                   Opts.ArtifactsDir.c_str(), Ec.message().c_str());
    for (const CaseOutcome *C : Failures) {
      std::string Stem = Opts.ArtifactsDir + "/case_" +
                         std::to_string(C->CaseSeed) + "_" +
                         gen::failureClassName(C->Check.Class);
      std::string Header =
          "// flexvec-fuzz reproducer (shrunk)\n"
          "// replay: flexvec-fuzz --case-seed=" +
          std::to_string(C->CaseSeed) + " --envelope=" + Opts.EnvelopeName +
          "\n// class: " + gen::failureClassName(C->Check.Class) +
          (C->Check.Variant.empty() ? std::string()
                                    : " variant: " + C->Check.Variant) +
          "\n";
      if (!writeFile(Stem + ".fv", Header + C->ShrunkDsl) ||
          !writeFile(Stem + ".orig.fv", C->Dsl))
        std::fprintf(stderr, "error: cannot write artifacts under '%s'\n",
                     Opts.ArtifactsDir.c_str());
      std::fprintf(stderr,
                   "FAIL case %zu (seed %llu): %s%s%s\n%s\nshrunk reproducer "
                   "(%d lines) written to %s.fv\n",
                   C->Index, static_cast<unsigned long long>(C->CaseSeed),
                   gen::failureClassName(C->Check.Class),
                   C->Check.Variant.empty() ? "" : " in ",
                   C->Check.Variant.c_str(), C->Check.Detail.c_str(),
                   static_cast<int>(
                       std::count(C->ShrunkDsl.begin(), C->ShrunkDsl.end(),
                                  '\n')),
                   Stem.c_str());
    }
  }

  // Machine-readable summary: a pure function of (seed, count, envelope,
  // check options) under --deterministic, byte-stable across --jobs.
  if (!Opts.OutPath.empty()) {
    Json Doc = Json::object();
    Doc.set("schema", "flexvec-fuzz/v1");
    Doc.set("seed", Opts.Seed);
    Doc.set("count", static_cast<uint64_t>(Count));
    Doc.set("envelope", Opts.EnvelopeName);
    Doc.set("rounds", static_cast<uint64_t>(Opts.Rounds));
    Doc.set("max_trip", static_cast<uint64_t>(Opts.MaxTrip));
    Doc.set("storm", Opts.Storm);
    if (!Opts.Deterministic) {
      Json Run = Json::object();
      Run.set("jobs", Opts.Jobs);
      Run.set("wall_seconds", WallSeconds);
      Doc.set("run", std::move(Run));
    }
    Doc.set("failure_count", static_cast<uint64_t>(Failures.size()));
    Json Fails = Json::array();
    for (const CaseOutcome *C : Failures) {
      Json J = Json::object();
      J.set("index", static_cast<uint64_t>(C->Index));
      J.set("case_seed", C->CaseSeed);
      J.set("class", gen::failureClassName(C->Check.Class));
      J.set("variant", C->Check.Variant);
      J.set("shrink_attempts", static_cast<uint64_t>(C->ShrinkAttempts));
      J.set("shrink_accepted", static_cast<uint64_t>(C->ShrinkAccepted));
      J.set("shrunk_dsl", C->ShrunkDsl);
      Fails.push(std::move(J));
    }
    Doc.set("failures", std::move(Fails));
    std::ofstream Out(Opts.OutPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Opts.OutPath.c_str());
      return 2;
    }
    Out << Doc.dump();
  }

  if (!Opts.Quiet)
    std::printf("flexvec-fuzz: %zu case(s), %zu failure(s) "
                "(envelope=%s, seed=%llu, storm=%s, %.2fs)\n",
                Count, Failures.size(), Opts.EnvelopeName.c_str(),
                static_cast<unsigned long long>(Opts.Seed),
                Opts.Storm ? "on" : "off", WallSeconds);
  return Failures.empty() ? 0 : 1;
}
