//===- tools/flexvec-cli.cpp - Command-line driver --------------------------===//
//
// Compile a loop written in the textual DSL (ir/Parser.h) through the full
// FlexVec pipeline: print the analysis, disassemble the generated
// programs, and optionally execute them on random inputs with correctness
// cross-checking and Table 1 timing.
//
//   flexvec-cli LOOP.fv [options]
//     --dump-pdg          print the program dependence graph
//     --dump-all          disassemble every generated variant
//     --remarks           print the structured vectorization remarks —
//                         what each pass recognized, which strategies
//                         fired, and why the others declined
//     --remarks=json      print ONLY the remark stream as JSON (for
//                         tooling; suppresses all other output)
//     --run               execute on random inputs and report timing
//     --jobs=N            measure the variants on N worker threads
//                         (results are identical for every N; default 1)
//     --trip=N            trip count for --run (default 10000)
//     --seed=N            PRNG seed for --run (default 1)
//     --arraysize=N       elements per array for --run (default 65536)
//     --set NAME=V        initial value for scalar NAME (repeatable)
//     --vl=BITS           vector width to compile for: 128, 256, 512,
//                         1024, or 2048 bits (default: FLEXVEC_VL, else
//                         512)
//     --predicated        SVE-style predicated loop control (whilelt
//                         masks instead of the broadcast/vcmp chunk
//                         bound)
//
//   Unknown flags and malformed values exit with status 2 and a usage
//   hint; numeric values must parse in full (no atoll-style truncation).
//
//   Fault injection (see docs/FAULTS.md):
//     --fault-diff        run scalar vs. FlexVec under the same injected
//                         fault schedule and report equivalence
//     --fault-seed=N      seed for the injection policies (default 1)
//     --fault-nth=N       fail the Nth architectural memory access
//     --fault-range=LO:HI:PROB[:transient|persistent]
//                         poison cache lines in [LO,HI) with probability
//                         PROB (repeatable)
//     --tx-abort-nth=N    abort the Nth transactional operation
//     --tx-abort-prob=P   abort each transactional op with probability P
//     --tx-abort-reason=conflict|capacity|spurious  (default conflict)
//     --rtm-retries=N     bounded RTM retry budget (default 4)
//     --budget=N          instruction-budget watchdog (default 2^32)
//
// Example:
//   ./build/tools/flexvec-cli examples/loops/argmin.fv --run --trip=50000
//   ./build/tools/flexvec-cli examples/loops/find_first.fv --fault-diff
//       --fault-range=0x10000:0x20000:0.001
//
//===----------------------------------------------------------------------===//

#include "core/FaultHarness.h"
#include "core/Measure.h"
#include "core/Pipeline.h"
#include "ir/Parser.h"
#include "support/ArgParse.h"
#include "support/Random.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

using namespace flexvec;

namespace {

struct CliOptions {
  std::string Path;
  bool DumpPdg = false;
  bool DumpAll = false;
  bool Remarks = false;
  bool RemarksJson = false;
  bool Run = false;
  bool FaultDiff = false;
  unsigned Jobs = 1;
  int64_t Trip = 10000;
  uint64_t Seed = 1;
  int64_t ArraySize = 65536;
  std::map<std::string, double> Sets;
  core::FaultPlan Faults;
  isa::VectorConfig Vec = isa::defaultVectorConfig();
  bool Predicated = false;
};

void usage(std::FILE *To) {
  std::fprintf(To,
               "usage: flexvec-cli LOOP.fv [--dump-pdg] [--dump-all] "
               "[--remarks[=json]] "
               "[--run] [--jobs=N] [--trip=N] [--seed=N] [--arraysize=N] "
               "[--set NAME=V] [--fault-diff] [--fault-seed=N] "
               "[--fault-nth=N] [--fault-range=LO:HI:PROB[:DUR]] "
               "[--tx-abort-nth=N] [--tx-abort-prob=P] "
               "[--tx-abort-reason=R] [--rtm-retries=N] "
               "[--rtm-retry-budget=N] [--budget=N] "
               "[--vl=128|256|512|1024|2048] [--predicated]\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  // Every numeric value parses strictly: "--trip=1O0" or "--seed=" is an
  // error, never a silent zero.
  auto badValue = [](const std::string &Arg, const char *Expected) {
    std::fprintf(stderr, "error: %s: expected %s\n", Arg.c_str(), Expected);
    return false;
  };
  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    int64_t I = 0;
    uint64_t U = 0;
    double D = 0;
    if (Arg == "--dump-pdg") {
      Opts.DumpPdg = true;
    } else if (Arg == "--dump-all") {
      Opts.DumpAll = true;
    } else if (Arg == "--remarks") {
      Opts.Remarks = true;
    } else if (Arg == "--remarks=json") {
      Opts.RemarksJson = true;
    } else if (Arg.rfind("--remarks=", 0) == 0) {
      std::fprintf(stderr, "error: --remarks takes no value or '=json', "
                           "got '%s'\n", Arg.c_str());
      return false;
    } else if (Arg == "--run") {
      Opts.Run = true;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), U))
        return badValue(Arg, "a non-negative integer");
      Opts.Jobs = static_cast<unsigned>(U);
    } else if (Arg.rfind("--trip=", 0) == 0) {
      if (!parseInt(Arg.substr(7), I) || I <= 0)
        return badValue(Arg, "a positive integer");
      Opts.Trip = I;
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(7), U))
        return badValue(Arg, "a non-negative integer");
      Opts.Seed = U;
    } else if (Arg.rfind("--arraysize=", 0) == 0) {
      if (!parseInt(Arg.substr(12), I) || I <= 0)
        return badValue(Arg, "a positive integer");
      Opts.ArraySize = I;
    } else if (Arg == "--fault-diff") {
      Opts.FaultDiff = true;
    } else if (Arg.rfind("--fault-seed=", 0) == 0) {
      if (!parseUInt(Arg.substr(13), U))
        return badValue(Arg, "a non-negative integer");
      Opts.Faults.Mem.Seed = U;
      Opts.Faults.Tx.Seed = U;
    } else if (Arg.rfind("--fault-nth=", 0) == 0) {
      if (!parseUInt(Arg.substr(12), U))
        return badValue(Arg, "a non-negative integer");
      Opts.Faults.Mem.FailNthAccess = U;
    } else if (Arg.rfind("--fault-range=", 0) == 0) {
      faults::RangeFault R;
      std::string Error;
      if (!faults::parseRangeFault(Arg.substr(14), R, Error)) {
        std::fprintf(stderr, "error: --fault-range: %s\n", Error.c_str());
        return false;
      }
      Opts.Faults.Mem.Ranges.push_back(R);
    } else if (Arg.rfind("--tx-abort-nth=", 0) == 0) {
      if (!parseUInt(Arg.substr(15), U))
        return badValue(Arg, "a non-negative integer");
      Opts.Faults.Tx.AbortNthOp = U;
    } else if (Arg.rfind("--tx-abort-prob=", 0) == 0) {
      if (!parseDouble(Arg.substr(16), D) || D < 0 || D > 1)
        return badValue(Arg, "a probability in [0, 1]");
      Opts.Faults.Tx.AbortProb = D;
    } else if (Arg.rfind("--tx-abort-reason=", 0) == 0) {
      std::string Reason = Arg.substr(18);
      if (Reason == "conflict")
        Opts.Faults.Tx.Reason = rtm::AbortReason::Conflict;
      else if (Reason == "capacity")
        Opts.Faults.Tx.Reason = rtm::AbortReason::Capacity;
      else if (Reason == "spurious")
        Opts.Faults.Tx.Reason = rtm::AbortReason::Spurious;
      else {
        std::fprintf(stderr,
                     "error: --tx-abort-reason must be conflict, capacity, "
                     "or spurious\n");
        return false;
      }
    } else if (Arg.rfind("--rtm-retries=", 0) == 0) {
      if (!parseUInt(Arg.substr(14), U))
        return badValue(Arg, "a non-negative integer");
      Opts.Faults.MaxRtmRetries = static_cast<unsigned>(U);
    } else if (Arg.rfind("--rtm-retry-budget=", 0) == 0) {
      // Alias of --rtm-retries, matching the FLEXVEC_RTM_RETRIES env knob.
      if (!parseUInt(Arg.substr(19), U))
        return badValue(Arg, "a non-negative integer");
      Opts.Faults.MaxRtmRetries = static_cast<unsigned>(U);
    } else if (Arg.rfind("--budget=", 0) == 0) {
      if (!parseUInt(Arg.substr(9), U) || U == 0)
        return badValue(Arg, "a positive integer");
      Opts.Faults.MaxInstructions = U;
    } else if (Arg.rfind("--vl=", 0) == 0) {
      if (!parseUInt(Arg.substr(5), U) ||
          !isa::VectorConfig::isValidBits(static_cast<unsigned>(U)))
        return badValue(Arg, "a power-of-two vector length in bits "
                             "between 128 and 2048");
      Opts.Vec = isa::VectorConfig(static_cast<unsigned>(U) / 8);
    } else if (Arg == "--predicated") {
      Opts.Predicated = true;
    } else if (Arg == "--set") {
      if (A + 1 >= Argc) {
        std::fprintf(stderr, "error: --set expects a NAME=VALUE argument\n");
        return false;
      }
      std::string KV = Argv[++A];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos || Eq == 0 ||
          !parseDouble(KV.substr(Eq + 1), D)) {
        std::fprintf(stderr, "error: --set expects NAME=VALUE with a "
                             "numeric value, got '%s'\n", KV.c_str());
        return false;
      }
      Opts.Sets[KV.substr(0, Eq)] = D;
    } else if (Arg[0] != '-') {
      if (!Opts.Path.empty()) {
        std::fprintf(stderr, "error: multiple loop files ('%s' and '%s')\n",
                     Opts.Path.c_str(), Arg.c_str());
        return false;
      }
      Opts.Path = Arg;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Opts.Path.empty()) {
    std::fprintf(stderr, "error: no loop file given\n");
    return false;
  }
  return true;
}

void dumpVariant(const char *Name,
                 const std::optional<codegen::CompiledLoop> &CL) {
  if (!CL) {
    std::printf("-- %s: not generated --\n\n", Name);
    return;
  }
  std::printf("-- %s (%s) --\n%s\n", Name, CL->Notes.c_str(),
              CL->Prog.disassemble().c_str());
}

struct CliInputs {
  mem::Memory Image;
  ir::Bindings B;
};

CliInputs buildInputs(const ir::LoopFunction &F, const CliOptions &Opts) {
  Rng R(Opts.Seed);
  CliInputs In{mem::Memory(), ir::Bindings::forFunction(F)};
  mem::Memory &Image = In.Image;
  mem::BumpAllocator Alloc(Image);
  ir::Bindings &B = In.B;

  for (size_t A = 0; A < F.arrays().size(); ++A) {
    const ir::ArrayParam &P = F.array(static_cast<int>(A));
    int64_t Len = std::max<int64_t>(Opts.Trip, Opts.ArraySize);
    if (isFloatType(P.Elem) && isa::elemSize(P.Elem) == 4) {
      std::vector<float> Data(static_cast<size_t>(Len));
      for (auto &V : Data)
        V = static_cast<float>(R.nextInRange(0, 100));
      B.ArrayBases[A] = Alloc.allocArray(Data);
    } else if (isFloatType(P.Elem)) {
      std::vector<double> Data(static_cast<size_t>(Len));
      for (auto &V : Data)
        V = static_cast<double>(R.nextInRange(0, 100));
      B.ArrayBases[A] = Alloc.allocArray(Data);
    } else if (isa::elemSize(P.Elem) == 4) {
      std::vector<int32_t> Data(static_cast<size_t>(Len));
      for (auto &V : Data)
        V = static_cast<int32_t>(R.nextBelow(100));
      B.ArrayBases[A] = Alloc.allocArray(Data);
    } else {
      std::vector<int64_t> Data(static_cast<size_t>(Len));
      for (auto &V : Data)
        V = static_cast<int64_t>(R.nextBelow(100));
      B.ArrayBases[A] = Alloc.allocArray(Data);
    }
  }
  B.setInt(F.tripCountScalar(), Opts.Trip);
  for (size_t S = 0; S < F.scalars().size(); ++S) {
    auto It = Opts.Sets.find(F.scalar(static_cast<int>(S)).Name);
    if (It == Opts.Sets.end())
      continue;
    if (isFloatType(F.scalar(static_cast<int>(S)).Type))
      B.setFloat(F.scalar(static_cast<int>(S)).Type, static_cast<int>(S),
                 It->second);
    else
      B.setInt(static_cast<int>(S), static_cast<int64_t>(It->second));
  }
  return In;
}

int runLoop(const ir::LoopFunction &F, const core::PipelineResult &PR,
            const CliOptions &Opts) {
  CliInputs In = buildInputs(F, Opts);
  mem::Memory &Image = In.Image;
  ir::Bindings &B = In.B;

  core::RunOutcome Ref = core::runReference(F, Image, B);
  std::printf("== Run (trip=%lld, seed=%llu) ==\n",
              static_cast<long long>(Opts.Trip),
              static_cast<unsigned long long>(Opts.Seed));
  std::printf("reference live-outs:");
  for (size_t S = 0; S < F.scalars().size(); ++S)
    if (F.scalar(static_cast<int>(S)).IsLiveOut)
      std::printf(" %s=%lld", F.scalar(static_cast<int>(S)).Name.c_str(),
                  static_cast<long long>(Ref.LiveOuts[S]));
  std::printf("\n\n");

  // Measure every generated variant, fanned over --jobs workers. Each job
  // clones the base image, so the measurements are independent and the
  // table is identical for every worker count.
  std::vector<std::pair<const char *, const codegen::CompiledLoop *>>
      Variants;
  auto addVariant = [&](const char *Name,
                        const std::optional<codegen::CompiledLoop> &CL) {
    if (CL)
      Variants.emplace_back(Name, &*CL);
  };
  Variants.emplace_back("scalar", &PR.Scalar);
  addVariant("traditional", PR.Traditional);
  addVariant("speculative", PR.Speculative);
  addVariant("flexvec", PR.FlexVec);
  addVariant("flexvec-opt", PR.FlexVecOpt);
  addVariant("flexvec-rtm", PR.Rtm);
  addVariant("flexvec-adaptive", PR.Adaptive);

  ThreadPool Pool(Opts.Jobs);
  std::vector<core::Measurement> Ms =
      Pool.map<core::Measurement>(Variants.size(), [&](size_t I) {
        return core::measureProgram(*Variants[I].second, Image, B);
      });

  TextTable T({"variant", "cycles", "IPC", "speedup vs scalar", "correct"});
  const core::Measurement &Base = Ms[0]; // Scalar is always first.
  for (size_t I = 0; I < Variants.size(); ++I) {
    const core::Measurement &M = Ms[I];
    T.addRow({Variants[I].first,
              TextTable::fmtInt(static_cast<long long>(M.Timing.Cycles)),
              TextTable::fmt(M.Timing.ipc(), 2),
              TextTable::fmt(core::speedup(Base, M), 2) + "x",
              core::outcomesMatch(F, Ref, M.Outcome) ? "yes" : "NO"});
  }
  T.print();
  return 0;
}

int runFaultDiff(const ir::LoopFunction &F, const core::PipelineResult &PR,
                 const CliOptions &Opts) {
  CliInputs In = buildInputs(F, Opts);

  std::printf("== Differential fault-tolerance run ==\n");
  faults::FaultInjector Preview(Opts.Faults.Mem, Opts.Faults.Tx);
  std::printf("policy: %s, rtm-retries=%u, budget=%llu\n",
              Preview.describe().c_str(), Opts.Faults.MaxRtmRetries,
              static_cast<unsigned long long>(Opts.Faults.MaxInstructions));

  int Divergences = 0;
  auto diffOne = [&](const char *Name,
                     const std::optional<codegen::CompiledLoop> &CL) {
    if (!CL)
      return;
    core::DiffVerdict V = core::runDifferential(F, PR.Scalar, *CL, In.Image,
                                                In.B, Opts.Faults);
    std::printf("\n[%s] %s\n", Name, V.describe().c_str());
    if (!V.Equivalent)
      ++Divergences;
  };
  diffOne("flexvec", PR.FlexVec);
  diffOne("flexvec-opt", PR.FlexVecOpt);
  diffOne("flexvec-rtm", PR.Rtm);
  diffOne("flexvec-adaptive", PR.Adaptive);

  if (Divergences) {
    std::printf("\n%d variant(s) diverged from scalar under faults\n",
                Divergences);
    return 1;
  }
  std::printf("\nall variants equivalent to scalar under faults\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(stderr);
    return 2;
  }

  std::ifstream In(Opts.Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.Path.c_str());
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  ir::ParseResult Parsed = ir::parseLoop(Buf.str());
  if (!Parsed) {
    std::fprintf(stderr, "%s: parse error: %s\n", Opts.Path.c_str(),
                 Parsed.Error.c_str());
    return 1;
  }
  const ir::LoopFunction &F = *Parsed.F;

  // Machine-readable mode: emit only the remark stream so the output pipes
  // straight into tooling (the stream is deterministic JSON, see
  // docs/COMPILER.md for the schema).
  driver::DriverOptions DOpts;
  DOpts.Vec = Opts.Vec;
  DOpts.Predicated = Opts.Predicated;

  if (Opts.RemarksJson) {
    core::PipelineResult PR = driver::compileLoop(F, DOpts);
    std::fputs(PR.Remarks.toJson().dump().c_str(), stdout);
    return 0;
  }

  std::printf("== Parsed loop ==\n%s\n", F.print().c_str());

  core::PipelineResult PR = driver::compileLoop(F, DOpts);
  if (Opts.DumpPdg)
    std::printf("== PDG ==\n%s\n", PR.PdgDump.c_str());
  std::printf("== Analysis ==\n%s\n\n", PR.Plan.describe(F).c_str());

  if (Opts.DumpAll) {
    dumpVariant("scalar", std::optional<codegen::CompiledLoop>(PR.Scalar));
    dumpVariant("traditional", PR.Traditional);
    dumpVariant("speculative", PR.Speculative);
    dumpVariant("flexvec", PR.FlexVec);
    dumpVariant("flexvec-opt", PR.FlexVecOpt);
    dumpVariant("flexvec-rtm", PR.Rtm);
    dumpVariant("flexvec-adaptive", PR.Adaptive);
  } else if (PR.FlexVec) {
    dumpVariant("flexvec", PR.FlexVec);
  }

  if (Opts.Remarks)
    std::printf("== Remarks ==\n%s\n", PR.Remarks.render().c_str());

  for (const std::string &D : PR.Diagnostics)
    std::printf("note: %s\n", D.c_str());

  if (Opts.FaultDiff)
    return runFaultDiff(F, PR, Opts);

  if (Opts.Run) {
    if (!PR.Plan.Vectorizable)
      std::printf("note: loop is not vectorizable (%s); running scalar "
                  "only\n",
                  PR.Plan.Reason.c_str());
    return runLoop(F, PR, Opts);
  }
  return 0;
}
