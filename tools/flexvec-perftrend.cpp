//===- tools/flexvec-perftrend.cpp - Wall-clock trend comparator ----------===//
//
// Compares the schedule-dependent run section of flexvec-bench JSON
// payloads (wall_seconds, cells_per_sec, emu_instrs_per_sec) against the
// checked-in throughput budgets in bench/PERF_budget.json and prints a
// trend table. This is deliberately separate from flexvec-benchdiff: the
// benchdiff gate compares deterministic cycle counts and fails hard,
// while wall-clock on shared CI runners is noisy — so this tool backs a
// *non-gating* CI step whose artifact gives a per-commit wall-clock
// record, and only flags a breach when a gauge blows through the budget
// times its slack factor.
//
//   flexvec-perftrend [--budget=PATH] bench1.json [bench2.json ...]
//
// Each payload is matched to a budget profile by its (scale, jobs)
// configuration; payloads without a matching profile are reported and
// skipped. A payload produced with --deterministic has no run section and
// is a usage error — this tool exists precisely for the wall-clock runs.
//
// Exit codes: 0 within budget, 1 budget breached, 2 unusable input.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace flexvec;

namespace {

struct Gauge {
  std::string Name;
  bool IsMax = true; ///< true: fail above Budget*Slack; false: below /Slack.
  double Budget = 0;
};

struct Profile {
  std::string Name;
  double Scale = 0;
  uint64_t Jobs = 0;
  double Slack = 1.0;
  std::vector<Gauge> Gauges;
};

void usage(std::FILE *To) {
  std::fprintf(To, "usage: flexvec-perftrend [--budget=PATH] bench1.json "
                   "[bench2.json ...]\n");
}

bool loadJson(const std::string &Path, Json &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  if (!Json::parse(Buf.str(), Out, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return false;
  }
  return true;
}

bool loadBudget(const std::string &Path, std::vector<Profile> &Profiles) {
  Json B;
  if (!loadJson(Path, B))
    return false;
  const Json *Schema = B.find("schema");
  if (!Schema || Schema->asString() != "flexvec-perf-budget/v1") {
    std::fprintf(stderr, "error: %s: not a flexvec-perf-budget/v1 document\n",
                 Path.c_str());
    return false;
  }
  const Json *Ps = B.find("profiles");
  if (!Ps || !Ps->isArray() || Ps->size() == 0) {
    std::fprintf(stderr, "error: %s: no profiles\n", Path.c_str());
    return false;
  }
  for (const Json &P : Ps->elems()) {
    Profile Out;
    const Json *Name = P.find("name");
    const Json *Match = P.find("match");
    const Json *Slack = P.find("slack");
    const Json *Gs = P.find("gauges");
    if (!Name || !Match || !Gs || !Gs->isObject()) {
      std::fprintf(stderr, "error: %s: profile missing name/match/gauges\n",
                   Path.c_str());
      return false;
    }
    Out.Name = Name->asString();
    const Json *Scale = Match->find("scale");
    const Json *Jobs = Match->find("jobs");
    if (!Scale || !Jobs) {
      std::fprintf(stderr, "error: %s: profile '%s' match needs scale+jobs\n",
                   Path.c_str(), Out.Name.c_str());
      return false;
    }
    Out.Scale = Scale->asDouble();
    Out.Jobs = Jobs->asUInt();
    Out.Slack = Slack ? Slack->asDouble() : 1.0;
    if (!(Out.Slack >= 1.0)) {
      std::fprintf(stderr, "error: %s: profile '%s' slack must be >= 1\n",
                   Path.c_str(), Out.Name.c_str());
      return false;
    }
    for (const auto &M : Gs->members()) {
      Gauge G;
      G.Name = M.first;
      const Json *Kind = M.second.find("kind");
      const Json *Budget = M.second.find("budget");
      if (!Kind || !Budget ||
          (Kind->asString() != "max" && Kind->asString() != "min")) {
        std::fprintf(stderr,
                     "error: %s: gauge '%s' needs kind max|min and budget\n",
                     Path.c_str(), G.Name.c_str());
        return false;
      }
      G.IsMax = Kind->asString() == "max";
      G.Budget = Budget->asDouble();
      Out.Gauges.push_back(G);
    }
    Profiles.push_back(Out);
  }
  return true;
}

std::string fmtValue(double V) {
  char Buf[64];
  if (V >= 10000)
    std::snprintf(Buf, sizeof(Buf), "%.3g", V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BudgetPath = "bench/PERF_budget.json";
  std::vector<std::string> Inputs;
  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    if (Arg.rfind("--budget=", 0) == 0) {
      BudgetPath = Arg.substr(9);
      if (BudgetPath.empty()) {
        std::fprintf(stderr, "error: --budget expects a path\n");
        usage(stderr);
        return 2;
      }
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(stderr);
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "error: expected at least one bench JSON\n");
    usage(stderr);
    return 2;
  }

  std::vector<Profile> Profiles;
  if (!loadBudget(BudgetPath, Profiles))
    return 2;

  TextTable T({"payload", "profile", "gauge", "value", "budget", "headroom",
               "verdict"});
  int Breaches = 0;
  bool Unusable = false;
  for (const std::string &Path : Inputs) {
    Json D;
    if (!loadJson(Path, D)) {
      Unusable = true;
      continue;
    }
    const Json *Run = D.find("run");
    const Json *Scale = D.find("scale");
    if (!Run || !Run->isObject() || !Scale) {
      std::fprintf(stderr,
                   "error: %s: no run section (was it produced with "
                   "--deterministic?)\n",
                   Path.c_str());
      Unusable = true;
      continue;
    }
    const Json *Jobs = Run->find("jobs");
    const Profile *P = nullptr;
    for (const Profile &Cand : Profiles) {
      if (Jobs && Jobs->asUInt() == Cand.Jobs &&
          std::fabs(Scale->asDouble() - Cand.Scale) < 1e-9) {
        P = &Cand;
        break;
      }
    }
    if (!P) {
      std::fprintf(stderr,
                   "note: %s: no budget profile matches scale=%g jobs=%llu "
                   "— skipped\n",
                   Path.c_str(), Scale->asDouble(),
                   Jobs ? static_cast<unsigned long long>(Jobs->asUInt())
                        : 0ULL);
      continue;
    }
    for (const Gauge &G : P->Gauges) {
      const Json *V = Run->find(G.Name);
      if (!V || !V->isNumber()) {
        std::fprintf(stderr, "error: %s: run.%s missing\n", Path.c_str(),
                     G.Name.c_str());
        Unusable = true;
        continue;
      }
      double Value = V->asDouble();
      // The effective limit folds the profile's slack in; headroom is the
      // distance to that limit in the gauge's failing direction.
      double Limit = G.IsMax ? G.Budget * P->Slack : G.Budget / P->Slack;
      bool Over = G.IsMax ? Value > Limit : Value < Limit;
      double Headroom =
          G.IsMax ? (Limit - Value) / Limit : (Value - Limit) / Limit;
      Breaches += Over;
      T.addRow({Path, P->Name, G.Name, fmtValue(Value),
                (G.IsMax ? "<= " : ">= ") + fmtValue(Limit),
                fmtValue(Headroom * 100) + "%", Over ? "OVER" : "ok"});
    }
  }
  T.print();
  if (Unusable)
    return 2;
  if (Breaches) {
    std::fprintf(stderr, "perftrend: %d gauge(s) past budget\n", Breaches);
    return 1;
  }
  std::printf("perftrend: all gauges within budget\n");
  return 0;
}
