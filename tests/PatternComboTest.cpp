//===- tests/PatternComboTest.cpp - Pattern interaction tests --------------===//
//
// Deterministic coverage of loops that combine the paper's three patterns
// in one body (the gzip/bzip2 shapes the paper discusses mix early exit
// with conditional updates; LAMMPS-class loops mix conditional updates
// with runtime memory dependences), plus RTM-tile correctness sweeps.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "ir/Parser.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::ir;

namespace {

struct Built {
  std::unique_ptr<LoopFunction> F;
  mem::Memory Image;
  Bindings B;
};

/// Early exit + conditional update in one loop: scan for a sentinel while
/// tracking the running minimum seen so far.
Built buildExitPlusUpdate(Rng &R, int64_t Trip, int64_t MatchPos,
                          double UpdateProb) {
  ParseResult P = parseLoop(R"(
loop scan_min(i64 n trip, i32 sentinel, i32 pos liveout,
              i32 best liveout, i32 best_idx liveout, i32 t,
              i32 a[] readonly) {
  t = a[i];
  if (t == sentinel) {
    pos = i;
    break;
  }
  if (t < best) {
    best = t;
    best_idx = i;
  }
})");
  EXPECT_TRUE(P) << P.Error;
  Built Out;
  Out.F = std::move(P.F);

  constexpr int32_t Sentinel = -999999;
  std::vector<int32_t> Data(static_cast<size_t>(Trip));
  int64_t Cur = 1 << 22;
  for (int64_t I = 0; I < Trip; ++I) {
    if (R.nextBool(UpdateProb))
      Cur -= R.nextInRange(1, 8);
    Data[static_cast<size_t>(I)] =
        R.nextBool(UpdateProb) ? static_cast<int32_t>(Cur)
                               : static_cast<int32_t>(
                                     Cur + R.nextBelow(1000));
  }
  if (MatchPos < Trip)
    Data[static_cast<size_t>(MatchPos)] = Sentinel;

  mem::BumpAllocator Alloc(Out.Image);
  Out.B = Bindings::forFunction(*Out.F);
  Out.B.ArrayBases[0] = Alloc.allocArray(Data);
  Out.B.setInt(0, Trip);
  Out.B.setInt(1, Sentinel);
  Out.B.setInt(2, -1);      // pos
  Out.B.setInt(3, 1 << 22); // best
  Out.B.setInt(4, -1);      // best_idx
  return Out;
}

/// Conditional update + memory conflict in one loop (the "force" shape).
Built buildUpdatePlusConflict(Rng &R, int64_t Trip, int64_t TableSize) {
  ParseResult P = parseLoop(R"(
loop force_like(i64 n trip, i32 maxw liveout, i32 argmax liveout,
                i32 e, i32 j, i32 w[] readonly, i32 idx[] readonly,
                i32 d[]) {
  e = w[i];
  if (e > maxw) {
    maxw = e;
    argmax = i;
  }
  j = idx[i];
  d[j] = d[j] + e;
})");
  EXPECT_TRUE(P) << P.Error;
  Built Out;
  Out.F = std::move(P.F);

  std::vector<int32_t> W(static_cast<size_t>(Trip));
  for (auto &V : W)
    V = static_cast<int32_t>(R.nextBelow(1000));
  std::vector<int32_t> Idx(static_cast<size_t>(Trip));
  for (auto &V : Idx)
    V = static_cast<int32_t>(R.nextBelow(static_cast<uint64_t>(TableSize)));
  std::vector<int32_t> D(static_cast<size_t>(TableSize), 0);

  mem::BumpAllocator Alloc(Out.Image);
  Out.B = Bindings::forFunction(*Out.F);
  Out.B.ArrayBases[0] = Alloc.allocArray(W);
  Out.B.ArrayBases[1] = Alloc.allocArray(Idx);
  Out.B.ArrayBases[2] = Alloc.allocArray(D);
  Out.B.setInt(0, Trip);
  Out.B.setInt(1, -1); // maxw
  Out.B.setInt(2, -1); // argmax
  return Out;
}

void expectAllMatch(const Built &L, unsigned RtmTile = 64) {
  core::PipelineResult PR = core::compileLoop(*L.F, RtmTile);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  core::RunOutcome Ref = core::runReference(*L.F, L.Image, L.B);
  for (const auto *CL : {&PR.Scalar, &*PR.FlexVec, &*PR.FlexVecOpt,
                         &*PR.Rtm}) {
    core::RunOutcome Out = core::runProgram(*CL, L.Image, L.B);
    ASSERT_TRUE(Out.Ok) << Out.Error;
    EXPECT_TRUE(core::outcomesMatch(*L.F, Ref, Out))
        << codegen::codeGenKindName(CL->Kind);
  }
}

} // namespace

TEST(PatternCombo, ExitPlusUpdatePlanShape) {
  Rng R(1);
  Built L = buildExitPlusUpdate(R, 500, 250, 0.05);
  core::PipelineResult PR = core::compileLoop(*L.F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  EXPECT_EQ(PR.Plan.EarlyExits.size(), 1u);
  EXPECT_EQ(PR.Plan.CondUpdateVpls.size(), 1u);
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VSlctLast));
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VMovFF));
}

class ExitPlusUpdate : public ::testing::TestWithParam<int> {};

TEST_P(ExitPlusUpdate, AllVariantsMatch) {
  Rng R(100 + static_cast<uint64_t>(GetParam()));
  int64_t Trip = 50 + static_cast<int64_t>(R.nextBelow(600));
  // Cycle through: early match, late match, no match.
  int64_t MatchPos;
  switch (GetParam() % 3) {
  case 0:
    MatchPos = static_cast<int64_t>(R.nextBelow(32));
    break;
  case 1:
    MatchPos = Trip - 1;
    break;
  default:
    MatchPos = Trip + 50;
  }
  Built L = buildExitPlusUpdate(R, Trip, MatchPos, 0.08);
  expectAllMatch(L);
}

INSTANTIATE_TEST_SUITE_P(Cases, ExitPlusUpdate, ::testing::Range(0, 9));

TEST(PatternCombo, UpdatePlusConflictPlanShape) {
  Rng R(2);
  Built L = buildUpdatePlusConflict(R, 500, 64);
  core::PipelineResult PR = core::compileLoop(*L.F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  EXPECT_EQ(PR.Plan.CondUpdateVpls.size(), 1u);
  EXPECT_EQ(PR.Plan.MemConflictVpls.size(), 1u);
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VConflictM));
  EXPECT_TRUE(PR.FlexVec->Prog.usesOpcode(isa::Opcode::VSlctLast));
}

class UpdatePlusConflict : public ::testing::TestWithParam<int> {};

TEST_P(UpdatePlusConflict, AllVariantsMatch) {
  Rng R(200 + static_cast<uint64_t>(GetParam()));
  int64_t Trip = 30 + static_cast<int64_t>(R.nextBelow(800));
  // Table sizes from pathological (every chunk conflicts) to sparse.
  int64_t Table = 4 + static_cast<int64_t>(R.nextBelow(500));
  Built L = buildUpdatePlusConflict(R, Trip, Table);
  expectAllMatch(L);
}

INSTANTIATE_TEST_SUITE_P(Cases, UpdatePlusConflict, ::testing::Range(0, 9));

class RtmTileSweep : public ::testing::TestWithParam<int> {};

TEST_P(RtmTileSweep, CorrectAtEveryTileSize) {
  unsigned Tile = static_cast<unsigned>(GetParam());
  Rng R(300 + Tile);
  Built L = buildExitPlusUpdate(R, 700, 650, 0.05);
  expectAllMatch(L, Tile);
  Built L2 = buildUpdatePlusConflict(R, 700, 64);
  expectAllMatch(L2, Tile);
}

INSTANTIATE_TEST_SUITE_P(Tiles, RtmTileSweep,
                         ::testing::Values(16, 17, 31, 64, 128, 255, 1024));

TEST(PatternCombo, SingleLaneTableMaximallyConflicts) {
  // Every iteration hits bucket 0: the VPL must serialize all 16 lanes of
  // every chunk and still be exact.
  Rng R(3);
  Built L = buildUpdatePlusConflict(R, 333, 1);
  expectAllMatch(L);
}
