//===- tests/TraceBatchTest.cpp - Batched trace delivery equivalence -------===//
//
// The trace-batching contract: a sink consuming whole batches via onBatch
// observes exactly the DynInstr sequence a legacy per-instruction sink
// (onInstr only, served through the default onBatch shim) observes —
// same records, same order, same effective-address lists — for every
// Figure-8 workload x variant cell. Plus structural checks on the batch
// stream itself (sizes, counts, and the no-sink fast path).
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/ParallelEvaluator.h"
#include "core/Pipeline.h"
#include "support/Hash.h"
#include "support/Random.h"
#include "workloads/Figure8.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace flexvec;

namespace {

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

/// Folds every observable field of a DynInstr record — including the
/// opcode behind the Instr pointer and the per-lane effective addresses —
/// into a running order-sensitive hash.
struct RecordDigest {
  uint64_t H = 0;
  uint64_t Count = 0;

  void fold(const emu::DynInstr &DI) {
    H = hashCombine(H, static_cast<uint64_t>(DI.Instr->Op));
    H = hashCombine(H, DI.InstrIdx);
    H = hashCombine(H, DI.NextIdx);
    H = hashCombine(H, DI.Taken ? 1 : 0);
    H = hashCombine(H, DI.ActiveMask);
    H = hashCombine(H, DI.AccessSize);
    H = hashCombine(H, DI.NumMemAddrs);
    for (uint32_t A = 0; A < DI.NumMemAddrs; ++A)
      H = hashCombine(H, DI.MemAddrs[A]);
    ++Count;
  }
};

/// A sink from before the batch API: implements only onInstr and relies
/// on the default onBatch shim to unbatch for it.
class LegacySink : public emu::TraceSink {
public:
  RecordDigest D;
  void onInstr(const emu::DynInstr &DI) override { D.fold(DI); }
};

/// A batch-native sink: consumes whole batches directly.
class BatchSink : public emu::TraceSink {
public:
  RecordDigest D;
  uint64_t Batches = 0;
  size_t MaxBatch = 0;
  void onInstr(const emu::DynInstr &DI) override { D.fold(DI); }
  void onBatch(const emu::DynInstr *Batch, size_t N) override {
    ++Batches;
    MaxBatch = std::max(MaxBatch, N);
    for (size_t I = 0; I < N; ++I)
      D.fold(Batch[I]);
  }
};

/// A sink that copies every record (and its address list) into owned
/// storage, for field-by-field comparison on small runs.
class RecordingSink : public emu::TraceSink {
public:
  struct Rec {
    const isa::Instruction *Instr;
    uint32_t InstrIdx, NextIdx;
    bool Taken;
    uint64_t ActiveMask;
    unsigned AccessSize;
    std::vector<uint64_t> Addrs;
  };
  std::vector<Rec> Recs;
  bool UseBatch;

  explicit RecordingSink(bool UseBatch) : UseBatch(UseBatch) {}

  void record(const emu::DynInstr &DI) {
    Recs.push_back({DI.Instr, DI.InstrIdx, DI.NextIdx, DI.Taken,
                    DI.ActiveMask, DI.AccessSize,
                    std::vector<uint64_t>(DI.MemAddrs,
                                          DI.MemAddrs + DI.NumMemAddrs)});
  }
  void onInstr(const emu::DynInstr &DI) override {
    ASSERT_FALSE(UseBatch) << "batch sink must not fall back to the shim";
    record(DI);
  }
  void onBatch(const emu::DynInstr *Batch, size_t N) override {
    if (!UseBatch) { // take the legacy shim path
      emu::TraceSink::onBatch(Batch, N);
      return;
    }
    for (size_t I = 0; I < N; ++I)
      record(Batch[I]);
  }
};

TEST(TraceBatch, EveryFigure8CellDeliversIdenticalSequences) {
  workloads::Figure8Suite Suite = workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  uint64_t CellsChecked = 0, RecordsChecked = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    Rng R(deriveStreamSeed(/*BaseSeed=*/1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    for (unsigned V = 0; V < core::NumVariants; ++V) {
      const codegen::CompiledLoop *CL =
          core::selectVariant(PR, static_cast<core::VariantId>(V));
      if (!CL)
        continue;
      LegacySink Legacy;
      BatchSink Batched;
      core::RunOutcome A =
          core::runProgramMulti(*W.F, *CL, In.Image, In.Invocations, &Legacy);
      core::RunOutcome B =
          core::runProgramMulti(*W.F, *CL, In.Image, In.Invocations, &Batched);
      ASSERT_TRUE(A.Ok) << W.Name << " variant " << V << ": " << A.Error;
      ASSERT_TRUE(B.Ok) << W.Name << " variant " << V << ": " << B.Error;

      // Identical record streams, field for field.
      EXPECT_EQ(Legacy.D.Count, Batched.D.Count)
          << W.Name << "/" << core::variantName(
                 static_cast<core::VariantId>(V));
      EXPECT_EQ(Legacy.D.H, Batched.D.H)
          << W.Name << "/" << core::variantName(
                 static_cast<core::VariantId>(V))
          << ": batched delivery diverged from the onInstr shim";

      // The runs themselves are oblivious to the sink flavour.
      EXPECT_EQ(A.MemFingerprint, B.MemFingerprint);
      EXPECT_EQ(A.LiveOutHash, B.LiveOutHash);
      EXPECT_EQ(A.Exec.Stats.Instructions, B.Exec.Stats.Instructions);

      // Batch accounting: every record arrives in some batch, batches
      // never exceed the ring, and the stats counter matches delivery.
      EXPECT_GT(Batched.Batches, 0u);
      EXPECT_LE(Batched.MaxBatch, 64u);
      EXPECT_EQ(B.Exec.Stats.TraceBatches, Batched.Batches);
      EXPECT_EQ(Batched.D.Count,
                B.Exec.Stats.Instructions - In.Invocations.size())
          << "every retired instruction except the final Halt per "
             "invocation must be delivered";

      ++CellsChecked;
      RecordsChecked += Batched.D.Count;
    }
  }
  // The matrix must actually have been swept.
  EXPECT_GE(CellsChecked, 18u * 2u);
  EXPECT_GT(RecordsChecked, 0u);
}

TEST(TraceBatch, RecordedStreamsMatchFieldByField) {
  // One cell in full detail: every field of every record, including the
  // owned copies of the gather/scatter address lists.
  workloads::Figure8Suite Suite = workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  const core::SweepWorkload &W = Suite.Workloads.front();
  core::PipelineResult PR = core::compileLoop(*W.F);
  const codegen::CompiledLoop *CL =
      core::selectVariant(PR, core::VariantId::FlexVec);
  ASSERT_NE(CL, nullptr);
  Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
  core::WorkloadInstance In = W.Gen(R);

  RecordingSink Legacy(/*UseBatch=*/false);
  RecordingSink Batched(/*UseBatch=*/true);
  core::RunOutcome A =
      core::runProgramMulti(*W.F, *CL, In.Image, In.Invocations, &Legacy);
  core::RunOutcome B =
      core::runProgramMulti(*W.F, *CL, In.Image, In.Invocations, &Batched);
  ASSERT_TRUE(A.Ok && B.Ok);

  ASSERT_EQ(Legacy.Recs.size(), Batched.Recs.size());
  ASSERT_GT(Legacy.Recs.size(), 0u);
  bool SawAddrs = false;
  for (size_t I = 0; I < Legacy.Recs.size(); ++I) {
    const RecordingSink::Rec &L = Legacy.Recs[I];
    const RecordingSink::Rec &Bt = Batched.Recs[I];
    ASSERT_EQ(L.Instr, Bt.Instr) << "record " << I;
    EXPECT_EQ(L.InstrIdx, Bt.InstrIdx) << "record " << I;
    EXPECT_EQ(L.NextIdx, Bt.NextIdx) << "record " << I;
    EXPECT_EQ(L.Taken, Bt.Taken) << "record " << I;
    EXPECT_EQ(L.ActiveMask, Bt.ActiveMask) << "record " << I;
    EXPECT_EQ(L.AccessSize, Bt.AccessSize) << "record " << I;
    EXPECT_EQ(L.Addrs, Bt.Addrs) << "record " << I;
    SawAddrs |= !L.Addrs.empty();
  }
  EXPECT_TRUE(SawAddrs) << "the cell must exercise the address pool";
}

TEST(TraceBatch, NoSinkRunStillCountsAccessesButNoBatches) {
  workloads::Figure8Suite Suite = workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  const core::SweepWorkload &W = Suite.Workloads.front();
  core::PipelineResult PR = core::compileLoop(*W.F);
  Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
  core::WorkloadInstance In = W.Gen(R);

  BatchSink Sink;
  core::RunOutcome WithSink =
      core::runProgramMulti(*W.F, PR.Scalar, In.Image, In.Invocations, &Sink);
  core::RunOutcome NoSink =
      core::runProgramMulti(*W.F, PR.Scalar, In.Image, In.Invocations);
  ASSERT_TRUE(WithSink.Ok && NoSink.Ok);

  // Skipping address collection must not change any architectural stat.
  EXPECT_EQ(NoSink.Exec.Stats.Instructions, WithSink.Exec.Stats.Instructions);
  EXPECT_EQ(NoSink.Exec.Stats.MemoryAccesses,
            WithSink.Exec.Stats.MemoryAccesses);
  EXPECT_EQ(NoSink.MemFingerprint, WithSink.MemFingerprint);
  EXPECT_EQ(NoSink.LiveOutHash, WithSink.LiveOutHash);
  EXPECT_EQ(NoSink.Exec.Stats.TraceBatches, 0u)
      << "no sink, no batch deliveries";
  EXPECT_GT(WithSink.Exec.Stats.TraceBatches, 0u);
}

} // namespace
