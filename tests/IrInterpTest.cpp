//===- tests/IrInterpTest.cpp - Loop IR and reference interpreter ----------===//

#include "ir/IR.h"
#include "ir/Interp.h"
#include "memory/Memory.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::ir;
using isa::CmpKind;
using isa::ElemType;

namespace {

struct SimpleLoop {
  LoopFunction F{"simple"};
  int N, S, A;
  SimpleLoop() {
    N = F.addScalar("n", ElemType::I64);
    S = F.addScalar("s", ElemType::I32, /*IsLiveOut=*/true);
    A = F.addArray("a", ElemType::I32, true);
    F.setTripCountScalar(N);
  }
};

} // namespace

TEST(Ir, PrintShowsStatementsAndIds) {
  SimpleLoop L;
  L.F.setBody({L.F.assignScalar(
      L.S, L.F.binary(BinOp::Add, L.F.scalarRef(L.S),
                      L.F.arrayRef(L.A, L.F.indexRef())))});
  std::string Text = L.F.print();
  EXPECT_NE(Text.find("for (i = 0; i < n; ++i)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("S1: s = (s + a[i])"), std::string::npos) << Text;
}

TEST(Ir, StatementIdsFollowCreationOrder) {
  SimpleLoop L;
  Stmt *A = L.F.assignScalar(L.S, L.F.constInt(ElemType::I32, 1));
  Stmt *B = L.F.makeBreak();
  EXPECT_EQ(A->Id, 1);
  EXPECT_EQ(B->Id, 2);
  EXPECT_EQ(L.F.numStmts(), 2);
}

TEST(Interp, SumLoop) {
  SimpleLoop L;
  L.F.setBody({L.F.assignScalar(
      L.S, L.F.binary(BinOp::Add, L.F.scalarRef(L.S),
                      L.F.arrayRef(L.A, L.F.indexRef())))});
  mem::Memory M;
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Data = {1, 2, 3, 4, 5};
  Bindings B = Bindings::forFunction(L.F);
  B.ArrayBases[L.A] = Alloc.allocArray(Data);
  B.setInt(L.N, 5);
  B.setInt(L.S, 100);
  Interpreter I(M);
  InterpResult R = I.run(L.F, B);
  EXPECT_EQ(R.IterationsExecuted, 5);
  EXPECT_FALSE(R.BrokeEarly);
  EXPECT_EQ(B.getInt(L.S), 115);
}

TEST(Interp, BreakStopsTheLoop) {
  SimpleLoop L;
  // if (a[i] == 3) break;  s = s + 1;
  Stmt *Guard = L.F.makeIfShell(L.F.compare(
      CmpKind::EQ, L.F.arrayRef(L.A, L.F.indexRef()),
      L.F.constInt(ElemType::I32, 3)));
  L.F.addThen(Guard, L.F.makeBreak());
  Stmt *Inc = L.F.assignScalar(
      L.S, L.F.binary(BinOp::Add, L.F.scalarRef(L.S),
                      L.F.constInt(ElemType::I32, 1)));
  L.F.setBody({Guard, Inc});

  mem::Memory M;
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Data = {0, 1, 3, 0, 0};
  Bindings B = Bindings::forFunction(L.F);
  B.ArrayBases[L.A] = Alloc.allocArray(Data);
  B.setInt(L.N, 5);
  Interpreter I(M);
  InterpResult R = I.run(L.F, B);
  EXPECT_TRUE(R.BrokeEarly);
  EXPECT_EQ(R.IterationsExecuted, 3);
  EXPECT_EQ(B.getInt(L.S), 2) << "the iteration that breaks skips the rest";
}

TEST(Interp, IfElseSelectsRegions) {
  SimpleLoop L;
  Stmt *Guard = L.F.makeIfShell(L.F.compare(
      CmpKind::LT, L.F.arrayRef(L.A, L.F.indexRef()),
      L.F.constInt(ElemType::I32, 10)));
  L.F.addThen(Guard, L.F.assignScalar(
                         L.S, L.F.binary(BinOp::Add, L.F.scalarRef(L.S),
                                         L.F.constInt(ElemType::I32, 1))));
  L.F.addElse(Guard, L.F.assignScalar(
                         L.S, L.F.binary(BinOp::Add, L.F.scalarRef(L.S),
                                         L.F.constInt(ElemType::I32, 100))));
  L.F.setBody({Guard});

  mem::Memory M;
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Data = {5, 50, 5, 50};
  Bindings B = Bindings::forFunction(L.F);
  B.ArrayBases[L.A] = Alloc.allocArray(Data);
  B.setInt(L.N, 4);
  Interpreter I(M);
  I.run(L.F, B);
  EXPECT_EQ(B.getInt(L.S), 202);
}

TEST(Interp, Int32ArithmeticWrapsAtLaneWidth) {
  // (1<<30) * 4 wraps to 0 in i32 lanes; the interpreter must match the
  // vector unit.
  SimpleLoop L;
  L.F.setBody({L.F.assignScalar(
      L.S, L.F.binary(BinOp::Mul, L.F.arrayRef(L.A, L.F.indexRef()),
                      L.F.constInt(ElemType::I32, 4)))});
  mem::Memory M;
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Data = {1 << 30};
  Bindings B = Bindings::forFunction(L.F);
  B.ArrayBases[L.A] = Alloc.allocArray(Data);
  B.setInt(L.N, 1);
  Interpreter I(M);
  I.run(L.F, B);
  EXPECT_EQ(B.getInt(L.S), 0);
}

TEST(Interp, F32RoundsToSinglePrecision) {
  LoopFunction F("f32");
  int N = F.addScalar("n", ElemType::I64);
  int S = F.addScalar("s", ElemType::F32, /*IsLiveOut=*/true);
  int A = F.addArray("a", ElemType::F32, true);
  F.setTripCountScalar(N);
  F.setBody({F.assignScalar(
      S, F.binary(BinOp::Add, F.scalarRef(S), F.arrayRef(A, F.indexRef())))});

  mem::Memory M;
  mem::BumpAllocator Alloc(M);
  // 2^24 + 1 is not representable in f32; adding 1.0f leaves 2^24.
  std::vector<float> Data = {1.0f};
  Bindings B = Bindings::forFunction(F);
  B.ArrayBases[0] = Alloc.allocArray(Data);
  B.setInt(N, 1);
  B.setFloat(ElemType::F32, S, 16777216.0);
  Interpreter I(M);
  I.run(F, B);
  EXPECT_EQ(B.getFloat(ElemType::F32, S), 16777216.0);
}

TEST(Interp, FloatComparisonDrivesControl) {
  LoopFunction F("fcmp");
  int N = F.addScalar("n", ElemType::I64);
  int Min = F.addScalar("m", ElemType::F32, /*IsLiveOut=*/true);
  int A = F.addArray("a", ElemType::F32, true);
  F.setTripCountScalar(N);
  Stmt *Guard = F.makeIfShell(F.compare(CmpKind::LT,
                                        F.arrayRef(A, F.indexRef()),
                                        F.scalarRef(Min)));
  F.addThen(Guard, F.assignScalar(Min, F.arrayRef(A, F.indexRef())));
  F.setBody({Guard});

  mem::Memory M;
  mem::BumpAllocator Alloc(M);
  std::vector<float> Data = {5.5f, 2.25f, 9.0f, 1.125f, 3.0f};
  Bindings B = Bindings::forFunction(F);
  B.ArrayBases[0] = Alloc.allocArray(Data);
  B.setInt(N, 5);
  B.setFloat(ElemType::F32, Min, 100.0);
  Interpreter I(M);
  I.run(F, B);
  EXPECT_FLOAT_EQ(static_cast<float>(B.getFloat(ElemType::F32, Min)), 1.125f);
}

TEST(Interp, ObserverSeesEvents) {
  struct Counter : Observer {
    int Iters = 0, Assigns = 0, Loads = 0, Stores = 0, Breaks = 0;
    void onIterationStart(int64_t) override { ++Iters; }
    void onScalarAssign(const Stmt *, int64_t, int64_t, int64_t) override {
      ++Assigns;
    }
    void onArrayLoad(int, int64_t, int64_t) override { ++Loads; }
    void onArrayStore(const Stmt *, int64_t, int64_t) override { ++Stores; }
    void onBreak(const Stmt *, int64_t) override { ++Breaks; }
  };

  LoopFunction F("obs");
  int N = F.addScalar("n", ElemType::I64);
  F.setTripCountScalar(N);
  int A = F.addArray("a", ElemType::I32);
  F.setBody({F.storeArray(A, F.indexRef(),
                          F.binary(BinOp::Add, F.arrayRef(A, F.indexRef()),
                                   F.constInt(ElemType::I32, 1)))});
  mem::Memory M;
  mem::BumpAllocator Alloc(M);
  std::vector<int32_t> Data(10, 0);
  Bindings B = Bindings::forFunction(F);
  B.ArrayBases[0] = Alloc.allocArray(Data);
  B.setInt(N, 10);
  Counter C;
  Interpreter I(M);
  I.run(F, B, &C);
  EXPECT_EQ(C.Iters, 10);
  EXPECT_EQ(C.Loads, 10);
  EXPECT_EQ(C.Stores, 10);
  EXPECT_EQ(C.Breaks, 0);
}
