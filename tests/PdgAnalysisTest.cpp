//===- tests/PdgAnalysisTest.cpp - PDG construction and pattern analysis ---===//
//
// Checks that the dependence graphs and plans for the paper's example
// loops match the structures in Figures 2, 5, 6, and 7, plus reduction
// idiom recognition and the loops FlexVec must reject.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "analysis/Patterns.h"
#include "pdg/Pdg.h"
#include "workloads/PaperLoops.h"

#include <gtest/gtest.h>

using namespace flexvec;
using namespace flexvec::ir;
using namespace flexvec::pdg;
using namespace flexvec::analysis;
using isa::CmpKind;
using isa::ElemType;

namespace {

bool hasEdge(const Pdg &P, int From, int To, DepKind Kind) {
  for (const DepEdge &E : P.edges())
    if (E.From == From && E.To == To && E.Kind == Kind)
      return true;
  return false;
}

} // namespace

TEST(Affine, MatchesCanonicalForms) {
  LoopFunction F("t");
  int N = F.addScalar("n", ElemType::I64);
  F.setTripCountScalar(N);
  int A = F.addArray("a", ElemType::I32, true);

  EXPECT_TRUE(matchAffine(F.indexRef()).has_value());
  auto Plus = matchAffine(
      F.binary(BinOp::Add, F.indexRef(), F.constInt(ElemType::I64, 3)));
  ASSERT_TRUE(Plus.has_value());
  EXPECT_EQ(Plus->Offset, 3);
  auto Minus = matchAffine(
      F.binary(BinOp::Sub, F.indexRef(), F.constInt(ElemType::I64, 2)));
  ASSERT_TRUE(Minus.has_value());
  EXPECT_EQ(Minus->Offset, -2);
  // Indirect subscripts are not affine.
  EXPECT_FALSE(matchAffine(F.arrayRef(A, F.indexRef())).has_value());
}

TEST(Pdg, H264HasCarriedScalarArcs) {
  auto F = workloads::buildH264Loop();
  Pdg P(*F);
  // S1 = outer if, S5 = inner if, S6 = min_mcost update (creation order in
  // buildH264Loop: Outer=1, LoadSad=2, LoadCand=3, AddMv=4, Inner=5,
  // Upd=6, Payload=7).
  EXPECT_TRUE(hasEdge(P, 6, 1, DepKind::ScalarFlowCarried))
      << "min_mcost def must reach the outer guard in the next iteration\n"
      << P.dump();
  EXPECT_TRUE(hasEdge(P, 6, 5, DepKind::ScalarFlowCarried));
  // mcost is killed by its unconditional-in-region def at S2 — no carried
  // self arc for S4 (mcost = mcost + mv[cand]).
  EXPECT_FALSE(hasEdge(P, 4, 4, DepKind::ScalarFlowCarried))
      << "kill analysis must suppress the within-iteration recurrence\n"
      << P.dump();
  // The relaxed graph must be acyclic.
  VectorizationPlan Plan = analyzeLoop(P);
  EXPECT_TRUE(Plan.Vectorizable) << Plan.Reason;
}

TEST(Pdg, ConflictLoopHasMaybeCarriedMemoryArc) {
  auto F = workloads::buildConflictLoop();
  Pdg P(*F);
  // S5 (store d_arr) -> S4 (guard loading d_arr).
  EXPECT_TRUE(hasEdge(P, 5, 4, DepKind::MemoryMaybeCarried)) << P.dump();
  auto Sccs = P.nontrivialSccs();
  ASSERT_FALSE(Sccs.empty()) << "the unrelaxed PDG must be cyclic";
}

TEST(Pdg, EarlyExitLoopHasBackwardControlArc) {
  auto F = workloads::buildEarlyExitLoop();
  Pdg P(*F);
  // Guard S3 -> loop header (node 0).
  EXPECT_TRUE(hasEdge(P, 3, Pdg::HeaderNode, DepKind::ControlCarried))
      << P.dump();
}

TEST(Pdg, ProvableDistanceIsComputed) {
  LoopFunction F("recur");
  int N = F.addScalar("n", ElemType::I64);
  F.setTripCountScalar(N);
  int A = F.addArray("a", ElemType::I32);
  // a[i+1] = a[i] + 1: provable carried flow, distance 1.
  auto *S = F.storeArray(
      A, F.binary(BinOp::Add, F.indexRef(), F.constInt(ElemType::I64, 1)),
      F.binary(BinOp::Add, F.arrayRef(A, F.indexRef()),
               F.constInt(ElemType::I32, 1)));
  F.setBody({S});
  Pdg P(F);
  bool Found = false;
  for (const DepEdge &E : P.edges())
    if (E.Kind == DepKind::MemoryFlowCarried) {
      Found = true;
      EXPECT_EQ(E.Distance, 1);
    }
  EXPECT_TRUE(Found);
  // And the analysis must reject the loop.
  VectorizationPlan Plan = analyzeLoop(P);
  EXPECT_FALSE(Plan.Vectorizable);
}

TEST(Analysis, H264PlanShape) {
  auto F = workloads::buildH264Loop();
  Pdg P(*F);
  VectorizationPlan Plan = analyzeLoop(P);
  ASSERT_TRUE(Plan.Vectorizable) << Plan.Reason;
  ASSERT_EQ(Plan.CondUpdateVpls.size(), 1u);
  const CondUpdateVpl &V = Plan.CondUpdateVpls[0];
  ASSERT_EQ(V.Updates.size(), 2u) << "min_mcost + best_pos payload";
  EXPECT_EQ(V.Updates[0].ScalarId, 1); // min_mcost
  EXPECT_EQ(V.Updates[1].ScalarId, 2); // best_pos
  EXPECT_FALSE(V.Updates[1].UsedInLoop);
  // Loads guarded by the stale value are speculative: S3 (spiral load) and
  // S4 (mv gather) — plus S2 which also reads an array under the guard.
  EXPECT_TRUE(Plan.isSpeculative(3));
  EXPECT_TRUE(Plan.isSpeculative(4));
}

TEST(Analysis, ConflictPlanShape) {
  auto F = workloads::buildConflictLoop();
  Pdg P(*F);
  VectorizationPlan Plan = analyzeLoop(P);
  ASSERT_TRUE(Plan.Vectorizable) << Plan.Reason;
  ASSERT_EQ(Plan.MemConflictVpls.size(), 1u);
  EXPECT_EQ(Plan.MemConflictVpls[0].ArrayId, 2); // d_arr
  ASSERT_EQ(Plan.MemConflictVpls[0].LoadIndices.size(), 1u);
  // Both subscripts are the same expression node (evaluated once).
  EXPECT_EQ(Plan.MemConflictVpls[0].LoadIndices[0],
            Plan.MemConflictVpls[0].StoreIndex);
  EXPECT_TRUE(Plan.SpeculativeLoadNodes.empty())
      << "conflict loops need no load speculation";
}

TEST(Analysis, PureMinReductionIsTraditional) {
  // if (a[i] < m) m = a[i];  — with m otherwise unused: a classic min
  // idiom, vectorizable without FlexVec.
  LoopFunction F("pure_min");
  int N = F.addScalar("n", ElemType::I64);
  int Min = F.addScalar("m", ElemType::I32, /*IsLiveOut=*/true);
  int A = F.addArray("a", ElemType::I32, true);
  F.setTripCountScalar(N);
  Stmt *Guard = F.makeIfShell(F.compare(CmpKind::LT,
                                        F.arrayRef(A, F.indexRef()),
                                        F.scalarRef(Min)));
  F.addThen(Guard, F.assignScalar(Min, F.arrayRef(A, F.indexRef())));
  F.setBody({Guard});

  Pdg P(F);
  VectorizationPlan Plan = analyzeLoop(P);
  ASSERT_TRUE(Plan.Vectorizable) << Plan.Reason;
  EXPECT_FALSE(Plan.needsFlexVec())
      << "idiom recognition must claim the recurrence";
  ASSERT_EQ(Plan.Reductions.size(), 1u);
  EXPECT_EQ(Plan.Reductions[0].Kind, ReductionKind::Min);
}

TEST(Analysis, SumReductionIsTraditional) {
  LoopFunction F("sum");
  int N = F.addScalar("n", ElemType::I64);
  int S = F.addScalar("s", ElemType::I32, /*IsLiveOut=*/true);
  int A = F.addArray("a", ElemType::I32, true);
  F.setTripCountScalar(N);
  F.setBody({F.assignScalar(
      S, F.binary(BinOp::Add, F.scalarRef(S), F.arrayRef(A, F.indexRef())))});
  Pdg P(F);
  VectorizationPlan Plan = analyzeLoop(P);
  ASSERT_TRUE(Plan.Vectorizable) << Plan.Reason;
  EXPECT_FALSE(Plan.needsFlexVec());
  ASSERT_EQ(Plan.Reductions.size(), 1u);
  EXPECT_EQ(Plan.Reductions[0].Kind, ReductionKind::Add);
}

TEST(Analysis, UnconditionalRecurrenceIsRejected) {
  // s = a[s] every iteration: a genuine pointer-chase recurrence.
  LoopFunction F("chase");
  int N = F.addScalar("n", ElemType::I64);
  int S = F.addScalar("s", ElemType::I32, /*IsLiveOut=*/true);
  int A = F.addArray("a", ElemType::I32, true);
  F.setTripCountScalar(N);
  F.setBody({F.assignScalar(S, F.arrayRef(A, F.scalarRef(S)))});
  Pdg P(F);
  VectorizationPlan Plan = analyzeLoop(P);
  EXPECT_FALSE(Plan.Vectorizable);
  // The live-out must nonetheless survive scalar codegen (tested via
  // scalar programs elsewhere); here we only require a diagnostic.
  EXPECT_FALSE(Plan.Reason.empty());
}

TEST(CostModel, PaperThresholds) {
  auto F = workloads::buildH264Loop();
  Pdg P(*F);
  VectorizationPlan Plan = analyzeLoop(P);
  LoopShape Shape = computeLoopShape(*F);

  LoopProfile Good;
  Good.AvgTripCount = 1089;
  Good.AvgDepEvents = 20;
  Good.EffectiveVL = 1089.0 / 21.0;
  Good.Coverage = 0.6;
  EXPECT_TRUE(shouldVectorize(Plan, Shape, Good).Vectorize);

  LoopProfile LowTrip = Good;
  LowTrip.AvgTripCount = 8;
  EXPECT_FALSE(shouldVectorize(Plan, Shape, LowTrip).Vectorize);

  LoopProfile LowVl = Good;
  LowVl.EffectiveVL = 3;
  EXPECT_FALSE(shouldVectorize(Plan, Shape, LowVl).Vectorize);

  LoopProfile Cold = Good;
  Cold.Coverage = 0.01;
  EXPECT_FALSE(shouldVectorize(Plan, Shape, Cold).Vectorize);
}

TEST(CostModel, MemToComputeRatioRejectsGatherOnlyLoops) {
  // d[x[i]] = s[y[i]]: four memory ops, zero compute.
  LoopFunction F("memonly");
  int N = F.addScalar("n", ElemType::I64);
  F.setTripCountScalar(N);
  int X = F.addArray("x", ElemType::I32, true);
  int S = F.addArray("s", ElemType::I32, true);
  int D = F.addArray("d", ElemType::I32);
  F.setBody({F.storeArray(D, F.arrayRef(X, F.indexRef()),
                          F.arrayRef(S, F.arrayRef(X, F.indexRef())))});
  LoopShape Shape = computeLoopShape(F);
  EXPECT_GT(Shape.memToComputeRatio(), 2.0);
  Pdg P(F);
  VectorizationPlan Plan = analyzeLoop(P);
  LoopProfile Prof;
  Prof.AvgTripCount = 1000;
  Prof.EffectiveVL = 100;
  Prof.Coverage = 0.5;
  CostDecision Dec = shouldVectorize(Plan, Shape, Prof);
  EXPECT_FALSE(Dec.Vectorize);
  EXPECT_NE(Dec.Reason.find("memory"), std::string::npos);
}
