//===- tests/ParserTest.cpp - Loop DSL parser tests ------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "ir/Parser.h"
#include "workloads/PaperLoops.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace flexvec;
using namespace flexvec::ir;

namespace {

const char *H264Text = R"(
// The paper's Section 1.1 motion-search loop.
loop h264_motion_search(i64 max_pos trip, i32 min_mcost liveout,
                        i32 best_pos liveout, i32 mcost, i32 cand,
                        i32 block_sad[] readonly, i32 spiral[] readonly,
                        i32 mv[] readonly) {
  if (block_sad[i] < min_mcost) {
    mcost = block_sad[i];
    cand = spiral[i];
    mcost = mcost + mv[cand];
    if (mcost < min_mcost) {
      min_mcost = mcost;
      best_pos = i;
    }
  }
}
)";

} // namespace

TEST(Parser, ParsesTheH264Loop) {
  ParseResult R = parseLoop(H264Text);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.F->name(), "h264_motion_search");
  EXPECT_EQ(R.F->scalars().size(), 5u);
  EXPECT_EQ(R.F->arrays().size(), 3u);
  EXPECT_EQ(R.F->tripCountScalar(), 0);
  EXPECT_TRUE(R.F->scalar(1).IsLiveOut);
  EXPECT_TRUE(R.F->array(0).ReadOnly);
  EXPECT_EQ(R.F->numStmts(), 7);
}

TEST(Parser, ParsedLoopMatchesBuilderLoopBehaviour) {
  ParseResult R = parseLoop(H264Text);
  ASSERT_TRUE(R) << R.Error;
  auto Builder = workloads::buildH264Loop();

  core::PipelineResult PP = core::compileLoop(*R.F);
  core::PipelineResult PB = core::compileLoop(*Builder);
  ASSERT_TRUE(PP.Plan.Vectorizable) << PP.Plan.Reason;
  EXPECT_EQ(PP.Plan.needsFlexVec(), PB.Plan.needsFlexVec());
  EXPECT_EQ(PP.Plan.CondUpdateVpls.size(), PB.Plan.CondUpdateVpls.size());
  EXPECT_EQ(PP.Plan.SpeculativeLoadNodes, PB.Plan.SpeculativeLoadNodes);

  // Same bindings layout (parameter order matches) → identical results.
  Rng Rand(5);
  workloads::LoopInputs In = workloads::genH264Inputs(*Builder, Rand, 3000,
                                                      0.05);
  core::RunOutcome RefBuilder = core::runReference(*Builder, In.Image, In.B);
  core::RunOutcome RefParsed = core::runReference(*R.F, In.Image, In.B);
  EXPECT_EQ(RefBuilder.MemFingerprint, RefParsed.MemFingerprint);
  EXPECT_EQ(RefBuilder.LiveOuts, RefParsed.LiveOuts);

  core::RunOutcome Flex = core::runProgram(*PP.FlexVec, In.Image, In.B);
  EXPECT_TRUE(core::outcomesMatch(*R.F, RefParsed, Flex));
}

TEST(Parser, FloatLiteralsCoerceToContext) {
  ParseResult R = parseLoop(R"(
loop fsum(i64 n trip, f32 acc liveout, f32 w[] readonly) {
  acc = acc + w[i] * 3;
})");
  ASSERT_TRUE(R) << R.Error;
  // `3` must have become an f32 constant.
  const Stmt *S = R.F->body()[0];
  ASSERT_EQ(S->Kind, StmtKind::AssignScalar);
  EXPECT_TRUE(isa::isFloatType(S->Value->Type));

  // And the loop should compile as a float add-reduction.
  core::PipelineResult PR = core::compileLoop(*R.F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  ASSERT_EQ(PR.Plan.Reductions.size(), 1u);
}

TEST(Parser, FloatConstantsRoundTripExactlyThroughDsl) {
  // The unparser output is pasted back in as a reproducer when a
  // differential test fails, so every finite double must survive
  // print -> parse bit-for-bit (%g's 6 significant digits did not).
  const double Awkward[] = {0.30000000000000004, 1.0 / 3.0, 1e-7,
                            6.02214076e23, 1.0000000000000002};
  for (double V : Awkward) {
    char Src[160];
    std::snprintf(Src, sizeof(Src),
                  "loop fc(i64 n trip, f64 acc liveout) { acc = %.17g; }", V);
    ParseResult R = parseLoop(Src);
    ASSERT_TRUE(R) << R.Error;
    std::string Dsl = printLoopDsl(*R.F);
    ParseResult R2 = parseLoop(Dsl);
    ASSERT_TRUE(R2) << R2.Error << "\n" << Dsl;
    const Stmt *S = R2.F->body()[0];
    ASSERT_EQ(S->Value->Kind, ExprKind::ConstFloat) << Dsl;
    EXPECT_EQ(S->Value->FloatValue, V) << Dsl;
  }
}

TEST(Parser, OperatorPrecedenceAndParens) {
  ParseResult R = parseLoop(R"(
loop prec(i64 n trip, i32 s, i32 a[] readonly) {
  s = a[i] + a[i] * 2;
  s = (a[i] + a[i]) * 2;
  s = min(a[i], 7) - max(a[i], 3);
})");
  ASSERT_TRUE(R) << R.Error;
  const Stmt *S1 = R.F->body()[0];
  EXPECT_EQ(S1->Value->Op, BinOp::Add); // Mul binds tighter.
  const Stmt *S2 = R.F->body()[1];
  EXPECT_EQ(S2->Value->Op, BinOp::Mul); // Parens override.
  const Stmt *S3 = R.F->body()[2];
  EXPECT_EQ(S3->Value->Op, BinOp::Sub);
  EXPECT_EQ(S3->Value->Lhs->Op, BinOp::Min);
  EXPECT_EQ(S3->Value->Rhs->Op, BinOp::Max);
}

TEST(Parser, BreakAndElseRegions) {
  ParseResult R = parseLoop(R"(
loop scan(i64 n trip, i32 pos liveout, i32 t, i32 a[] readonly) {
  t = a[i];
  if (t == 9) {
    pos = i;
    break;
  } else {
    t = t + 1;
  }
})");
  ASSERT_TRUE(R) << R.Error;
  core::PipelineResult PR = core::compileLoop(*R.F);
  ASSERT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
  ASSERT_EQ(PR.Plan.EarlyExits.size(), 1u);
  EXPECT_FALSE(PR.Plan.EarlyExits[0].BreakInElse);
}

TEST(Parser, StatementIdsFollowSourceOrder) {
  ParseResult R = parseLoop(H264Text);
  ASSERT_TRUE(R) << R.Error;
  // The outer if is S1; its first child S2; the inner if S5.
  const Stmt *Outer = R.F->body()[0];
  EXPECT_EQ(Outer->Id, 1);
  EXPECT_EQ(Outer->Then[0]->Id, 2);
  EXPECT_EQ(Outer->Then[3]->Id, 5);
  EXPECT_EQ(Outer->Then[3]->Then[0]->Id, 6);
}

TEST(Parser, DiagnosticsCarryLineNumbers) {
  ParseResult R = parseLoop("loop x(i64 n trip) {\n  y = 1;\n}");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("line 2"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("unknown scalar 'y'"), std::string::npos) << R.Error;
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_FALSE(parseLoop(""));
  EXPECT_FALSE(parseLoop("loop (i64 n trip) {}"));
  EXPECT_FALSE(parseLoop("loop x(i64 n) {}")); // No trip.
  EXPECT_FALSE(parseLoop("loop x(i64 n trip, q32 a) {}")); // Bad type.
  EXPECT_FALSE(parseLoop("loop x(i64 n trip) { if (1) {} }")); // Non-bool.
  EXPECT_FALSE(parseLoop("loop x(i64 n trip, i32 a[] liveout) {}"));
  EXPECT_FALSE(
      parseLoop("loop x(i64 n trip, i32 a[] readonly) { a[i] = 1; }"));
  EXPECT_FALSE(parseLoop("loop x(i64 i trip) {}")); // Reserved name.
  EXPECT_FALSE(parseLoop("loop x(i64 n trip) {} extra"));
}

TEST(Parser, CommentsAreIgnored) {
  ParseResult R = parseLoop(R"(
// header comment
loop c(i64 n trip, i32 s, i32 a[] readonly) {
  s = a[i]; // trailing comment
  // full-line comment
})");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.F->numStmts(), 1);
}

TEST(Parser, ExampleLoopFilesCompile) {
  // The .fv files shipped under examples/loops must parse and vectorize.
  const char *Argmin = R"(
loop argmin(i64 n trip, i32 min_val liveout, i32 min_idx liveout,
            i32 key[] readonly) {
  if (key[i] < min_val) {
    min_val = key[i];
    min_idx = i;
  }
})";
  const char *Histogram = R"(
loop histogram(i64 n trip, i32 b, i32 bucket[] readonly, i32 hist[]) {
  b = bucket[i];
  hist[b] = hist[b] + 1;
})";
  for (const char *Text : {Argmin, Histogram}) {
    ParseResult R = parseLoop(Text);
    ASSERT_TRUE(R) << R.Error;
    core::PipelineResult PR = core::compileLoop(*R.F);
    EXPECT_TRUE(PR.Plan.Vectorizable) << PR.Plan.Reason;
    EXPECT_TRUE(PR.Plan.needsFlexVec());
  }
}
