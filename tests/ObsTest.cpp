//===- tests/ObsTest.cpp - Metrics registry and JSON parser tests ----------===//
//
// The observability substrate's contract (src/obs/Metrics.h):
//
//   * Registry renders in first-registration order, so two registries
//     populated by the same code path dump byte-identically — the property
//     the per-cell bench metrics rely on.
//   * Histograms clamp to the last bucket from both observe() and
//     addToBucket(), and merge() sums counters/histograms while skipping
//     gauges (per-scope derived values).
//   * The disabled path is free: null-registry helpers and
//     ScopedTimer(nullptr, ...) record nothing.
//
// Plus the strict Json::parse() reader that flexvec-benchdiff depends on:
// round-trips of dump() output and rejection of malformed documents with a
// byte offset in the error.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "support/Json.h"

#include <gtest/gtest.h>

using namespace flexvec;

namespace {

//===----------------------------------------------------------------------===//
// Counters, gauges, histograms
//===----------------------------------------------------------------------===//

TEST(Obs, CounterAccumulates) {
  obs::Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(Obs, GaugeKeepsLastValue) {
  obs::Gauge G;
  G.set(1.5);
  G.set(0.25);
  EXPECT_EQ(G.value(), 0.25);
}

TEST(Obs, HistogramClampsToLastBucket) {
  obs::Histogram H(4);
  H.observe(0);
  H.observe(3);
  H.observe(4);   // Clamped into bucket 3.
  H.observe(999); // Likewise.
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 0u);
  EXPECT_EQ(H.bucket(2), 0u);
  EXPECT_EQ(H.bucket(3), 3u);
  EXPECT_EQ(H.total(), 4u);
}

TEST(Obs, HistogramBulkAddClampsToo) {
  obs::Histogram H(3);
  H.addToBucket(1, 10);
  H.addToBucket(7, 5); // Clamped into bucket 2.
  EXPECT_EQ(H.bucket(1), 10u);
  EXPECT_EQ(H.bucket(2), 5u);
  EXPECT_EQ(H.total(), 15u);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Obs, RegistryCreatesOnFirstUseAndReturnsSameMetric) {
  obs::Registry R;
  EXPECT_TRUE(R.empty());
  R.counter("a").inc();
  R.counter("a").inc();
  EXPECT_EQ(R.size(), 1u);
  ASSERT_NE(R.findCounter("a"), nullptr);
  EXPECT_EQ(R.findCounter("a")->value(), 2u);
  EXPECT_EQ(R.findCounter("missing"), nullptr);
  EXPECT_EQ(R.findHistogram("a"), nullptr) << "kind-mismatched lookup";
}

TEST(Obs, RegistryRendersInRegistrationOrder) {
  obs::Registry A, B;
  // Same population path -> byte-identical dumps.
  for (obs::Registry *R : {&A, &B}) {
    R->counter("z.last").inc(3);
    R->gauge("rate").set(0.5);
    R->histogram("depth", 3).observe(1);
    R->counter("a.first").inc(7);
  }
  std::string DumpA = A.toJson().dump();
  EXPECT_EQ(DumpA, B.toJson().dump());
  // Insertion order, not alphabetical: z.last renders before a.first.
  EXPECT_LT(DumpA.find("z.last"), DumpA.find("a.first"));
}

TEST(Obs, RegistryCopyIsDeep) {
  obs::Registry A;
  A.counter("n").inc(5);
  obs::Registry B = A;
  B.counter("n").inc();
  EXPECT_EQ(A.findCounter("n")->value(), 5u);
  EXPECT_EQ(B.findCounter("n")->value(), 6u);
}

TEST(Obs, MergeSumsCountersAndHistogramsSkipsGauges) {
  obs::Registry A;
  A.counter("ops").inc(10);
  A.histogram("mask", 4).observe(2);
  A.gauge("ipc").set(1.5);

  obs::Registry B;
  B.counter("ops").inc(32);
  B.counter("new_in_b").inc(1);
  B.histogram("mask", 4).observe(2);
  B.histogram("mask", 4).observe(3);
  B.gauge("ipc").set(9.9);

  A.merge(B);
  EXPECT_EQ(A.findCounter("ops")->value(), 42u);
  EXPECT_EQ(A.findCounter("new_in_b")->value(), 1u) << "new names append";
  EXPECT_EQ(A.findHistogram("mask")->bucket(2), 2u);
  EXPECT_EQ(A.findHistogram("mask")->bucket(3), 1u);
  EXPECT_EQ(A.findHistogram("mask")->total(), 3u);
  // Gauges are per-scope derived values: merge must not sum them.
  std::string Dump = A.toJson().dump();
  EXPECT_NE(Dump.find("\"ipc\": 1.5"), std::string::npos) << Dump;
}

TEST(Obs, MergeIsDeterministicAcrossMergeOrderOfDisjointTails) {
  // Shared prefix metrics keep the target's order; two sources whose
  // unique names differ append in source order — the bench aggregate
  // relies on merging cells in matrix order, which this pins down.
  obs::Registry X, Y;
  X.counter("shared").inc(1);
  X.counter("only_x").inc(1);
  Y.counter("shared").inc(1);
  Y.counter("only_y").inc(1);

  obs::Registry T1;
  T1.merge(X);
  T1.merge(Y);
  std::string D = T1.toJson().dump();
  EXPECT_LT(D.find("shared"), D.find("only_x"));
  EXPECT_LT(D.find("only_x"), D.find("only_y"));
}

TEST(Obs, ToJsonRendersKindsAndFiltersTimers) {
  obs::Registry R;
  R.counter("count").inc(7);
  R.gauge("ratio").set(0.5);
  R.histogram("hist", 2).observe(0);
  R.timer("wall").add(12.5);

  std::string Full = R.toJson(/*IncludeTimers=*/true).dump();
  EXPECT_NE(Full.find("\"count\": 7"), std::string::npos) << Full;
  EXPECT_NE(Full.find("\"ratio\": 0.5"), std::string::npos) << Full;
  EXPECT_NE(Full.find("\"wall\""), std::string::npos) << Full;

  std::string Det = R.toJson(/*IncludeTimers=*/false).dump();
  EXPECT_EQ(Det.find("\"wall\""), std::string::npos)
      << "timers are wall-clock and must not reach deterministic output";
  EXPECT_NE(Det.find("\"count\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ScopedTimer and the null-safe helpers (the disabled path)
//===----------------------------------------------------------------------===//

TEST(Obs, ScopedTimerAccumulatesIntoDoubleSink) {
  double Ms = 0;
  {
    obs::ScopedTimer T(Ms);
  }
  {
    obs::ScopedTimer T(Ms);
  }
  EXPECT_GE(Ms, 0.0);
}

TEST(Obs, ScopedTimerRecordsIntoRegistry) {
  obs::Registry R;
  {
    obs::ScopedTimer T(&R, "stage");
  }
  EXPECT_EQ(R.size(), 1u);
  std::string Dump = R.toJson(/*IncludeTimers=*/true).dump();
  EXPECT_NE(Dump.find("\"stage\""), std::string::npos);
}

TEST(Obs, DisabledPathRecordsNothing) {
  {
    obs::ScopedTimer T(nullptr, "unused");
  }
  obs::inc(nullptr, "c");
  obs::set(nullptr, "g", 1.0);
  obs::observe(nullptr, "h", 4, 2);

  obs::Registry R;
  obs::inc(&R, "c", 2);
  obs::set(&R, "g", 1.0);
  obs::observe(&R, "h", 4, 2);
  EXPECT_EQ(R.size(), 3u);
  EXPECT_EQ(R.findCounter("c")->value(), 2u);
}

//===----------------------------------------------------------------------===//
// Json::parse — the reader behind flexvec-benchdiff
//===----------------------------------------------------------------------===//

TEST(JsonParse, RoundTripsDumpOutput) {
  Json Doc = Json::object();
  Doc.set("schema", "flexvec-bench-figure8/v2");
  Doc.set("seed", uint64_t(1));
  Doc.set("scale", 0.1);
  Doc.set("ok", true);
  Doc.set("nothing", Json());
  Json Arr = Json::array();
  Arr.push(uint64_t(1));
  Arr.push(int64_t(-2));
  Arr.push(3.5);
  Arr.push("s \"quoted\" \\ and\nnewline");
  Doc.set("mixed", std::move(Arr));

  std::string Text = Doc.dump();
  Json Back;
  std::string Err;
  ASSERT_TRUE(Json::parse(Text, Back, Err)) << Err;
  EXPECT_EQ(Back.dump(), Text) << "parse(dump(x)).dump() must be identity";
}

TEST(JsonParse, NumberClassification) {
  Json V;
  std::string Err;
  ASSERT_TRUE(Json::parse("[18446744073709551615, -3, 2.5, 1e3]", V, Err))
      << Err;
  ASSERT_EQ(V.size(), 4u);
  EXPECT_EQ(V.elems()[0].kind(), Json::Kind::UInt);
  EXPECT_EQ(V.elems()[0].asUInt(), 18446744073709551615ull);
  EXPECT_EQ(V.elems()[1].kind(), Json::Kind::Int);
  EXPECT_EQ(V.elems()[1].asInt(), -3);
  EXPECT_EQ(V.elems()[2].kind(), Json::Kind::Double);
  EXPECT_EQ(V.elems()[3].asDouble(), 1000.0);
}

TEST(JsonParse, FindAndAccessorsOnParsedDocument) {
  Json V;
  std::string Err;
  ASSERT_TRUE(Json::parse(R"({"a": {"b": [1, 2]}, "s": "x"})", V, Err)) << Err;
  const Json *A = V.find("a");
  ASSERT_NE(A, nullptr);
  const Json *B = A->find("b");
  ASSERT_NE(B, nullptr);
  ASSERT_TRUE(B->isArray());
  EXPECT_EQ(B->elems()[1].asUInt(), 2u);
  EXPECT_EQ(V.find("s")->asString(), "x");
  EXPECT_EQ(V.find("absent"), nullptr);
  EXPECT_EQ(B->find("not_an_object"), nullptr);
}

TEST(JsonParse, UnicodeEscapes) {
  Json V;
  std::string Err;
  ASSERT_TRUE(Json::parse(R"(["\u0041\u00e9\u20ac"])", V, Err)) << Err;
  EXPECT_EQ(V.elems()[0].asString(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParse, RejectsMalformedInputWithByteOffset) {
  Json V;
  std::string Err;
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "[1] trailing",
        "{\"a\": 01}", "nan", "[\"\\ud800\"]"}) {
    EXPECT_FALSE(Json::parse(Bad, V, Err)) << "accepted: " << Bad;
    EXPECT_NE(Err.find("offset"), std::string::npos)
        << Bad << " error lacks a byte offset: " << Err;
  }
}

TEST(JsonParse, DuplicateKeysKeepLastMatchingSet) {
  Json V;
  std::string Err;
  ASSERT_TRUE(Json::parse(R"({"k": 1, "k": 2})", V, Err)) << Err;
  EXPECT_EQ(V.size(), 1u);
  EXPECT_EQ(V.find("k")->asUInt(), 2u);
}

TEST(JsonParse, NestingDepthIsBoundedWithByteOffset) {
  // A hostile 10k-deep array must fail with a structured depth error (and
  // the byte offset of the bracket that crossed the limit), not crash the
  // recursive-descent reader by exhausting the stack.
  std::string Deep(10000, '[');
  Deep += "1";
  Deep.append(10000, ']');
  Json V;
  std::string Err;
  EXPECT_FALSE(Json::parse(Deep, V, Err));
  EXPECT_NE(Err.find("nest"), std::string::npos)
      << "depth error should name nesting: " << Err;
  EXPECT_NE(Err.find("offset"), std::string::npos)
      << "depth error lacks a byte offset: " << Err;

  // Real payloads stay far under the limit: 200 levels parse fine.
  std::string Fine(200, '[');
  Fine += "1";
  Fine.append(200, ']');
  ASSERT_TRUE(Json::parse(Fine, V, Err)) << Err;
  // And exercise mixed object/array nesting at a depth benchdiff can hit.
  std::string Mixed;
  for (int I = 0; I < 100; ++I)
    Mixed += "{\"k\": [";
  Mixed += "true";
  for (int I = 0; I < 100; ++I)
    Mixed += "]}";
  ASSERT_TRUE(Json::parse(Mixed, V, Err)) << Err;
}

} // namespace
