//===- tests/AdaptiveDispatchTest.cpp - Adaptive multi-version dispatch ----===//
//
// The acceptance bar for the flexvec-adaptive variant: across the full
// 18-kernel Figure 8 corpus, an injected RTM conflict storm (abort
// probability well past the demotion threshold) makes every adaptive
// program demote to its traditional path within the configured window,
// with outputs bit-identical to the scalar reference before, during, and
// after the demotion-boundary invocation. With faults off, the adaptive
// program's outcome is identical to the speculative variant's, and the
// preheader guard (min-trip, alias-range overlap) routes around the
// speculative body without ever diverging.
//
//===----------------------------------------------------------------------===//

#include "core/FaultHarness.h"
#include "core/Pipeline.h"
#include "driver/AdaptiveStrategy.h"
#include "ir/Parser.h"
#include "support/Hash.h"
#include "support/Random.h"
#include "workloads/Figure8.h"

#include <gtest/gtest.h>

using namespace flexvec;

namespace {

/// Cycles \p In.Invocations until it holds at least \p Want entries, so
/// short-invocation kernels still cross the demotion window.
void extendInvocations(core::WorkloadInstance &In, size_t Want) {
  ASSERT_FALSE(In.Invocations.empty());
  for (size_t I = 0; In.Invocations.size() < Want; ++I)
    In.Invocations.push_back(In.Invocations[I % In.Invocations.size()]);
}

} // namespace

// Under a sustained conflict storm every corpus kernel's adaptive program
// must (i) demote exactly once, within the window, and (ii) stay
// bit-identical to the scalar reference across the whole invocation
// sequence — including the demotion-boundary invocation itself.
TEST(AdaptiveDispatch, CorpusConflictStormDemotesWithinWindowBitExact) {
  workloads::Figure8Suite Suite = workloads::buildFigure8Suite(1.0);
  const unsigned Window = driver::AdaptiveConfig().Window;
  const size_t TotalInvocations = 12;
  size_t Checked = 0, Table2Rows = 0;
  for (const core::SweepWorkload &W : Suite.Workloads) {
    // This bar is calibrated for the Table 2 corpus: every row has a
    // transactional hot path, so the storm must force exactly one demotion.
    // The imported kernel-family rows (POLY/IRREG) include affine kernels
    // whose adaptive body may never open a transaction; their storm
    // behavior is covered in KernelFamiliesTest with an abort-conditional
    // assertion.
    if (W.Group != "SPEC" && W.Group != "APPS")
      continue;
    ++Table2Rows;
    core::PipelineResult PR = core::compileLoop(*W.F);
    ASSERT_TRUE(PR.Adaptive) << W.Name << ": no adaptive variant";
    Rng R(deriveStreamSeed(33, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    extendInvocations(In, TotalInvocations);

    core::FaultPlan Plan;
    Plan.Tx.Seed = fnv1a64(W.Name);
    Plan.Tx.AbortProb = 0.75;
    Plan.Tx.Reason = rtm::AbortReason::Conflict;
    core::DiffVerdict V = core::runDifferentialMulti(
        *W.F, PR.Scalar, *PR.Adaptive, In.Image, In.Invocations, Plan);
    ASSERT_TRUE(V.Equivalent) << W.Name << ": " << V.describe();
    ASSERT_TRUE(V.Vector.Outcome.Ok) << W.Name;
    ASSERT_TRUE(V.Vector.Outcome.HasDispatch) << W.Name;
    const driver::DispatchCounts &D = V.Vector.Outcome.Dispatch;
    EXPECT_EQ(D.Demotions, 1u) << W.Name << ": must demote exactly once";
    EXPECT_EQ(D.State, 1u) << W.Name << ": demotion must be sticky";
    EXPECT_GE(D.Invocations, Window)
        << W.Name << ": demotion needs a full observation window";
    EXPECT_LE(D.Invocations, Window + 2)
        << W.Name << ": demotion must land within the window, not drift";
    EXPECT_GT(D.AbortEvents, 0u) << W.Name;
    EXPECT_EQ(D.GuardFail, 0u)
        << W.Name << ": corpus arrays are disjoint; the guard must pass";
    ++Checked;
  }
  EXPECT_EQ(Checked, Table2Rows);
  EXPECT_EQ(Checked, 18u) << "Table 2 corpus must stay at 18 rows";
}

// With no faults injected, the adaptive program stays speculative for the
// whole run and its architectural outcome matches the plain speculative
// (flexvec-rtm) variant's, invocation for invocation.
TEST(AdaptiveDispatch, CleanRunMatchesSpeculativeVariantExactly) {
  workloads::Figure8Suite Suite = workloads::buildFigure8Suite(1.0);
  for (const core::SweepWorkload &W : Suite.Workloads) {
    core::PipelineResult PR = core::compileLoop(*W.F);
    if (!PR.Adaptive || !PR.Rtm)
      continue;
    Rng R(deriveStreamSeed(44, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    core::RunOutcome Spec =
        core::runProgramMulti(*W.F, *PR.Rtm, In.Image, In.Invocations);
    core::RunOutcome Adaptive =
        core::runProgramMulti(*W.F, *PR.Adaptive, In.Image, In.Invocations);
    ASSERT_TRUE(Spec.Ok && Adaptive.Ok) << W.Name;
    EXPECT_TRUE(core::outcomesMatch(*W.F, Spec, Adaptive))
        << W.Name << ": clean adaptive run must equal the speculative "
        << "variant (fingerprint " << Adaptive.MemFingerprint << " vs "
        << Spec.MemFingerprint << ")";
    ASSERT_TRUE(Adaptive.HasDispatch);
    const driver::DispatchCounts &D = Adaptive.Dispatch;
    EXPECT_EQ(D.State, 0u) << W.Name << ": no demotion without aborts";
    EXPECT_EQ(D.Demotions, 0u) << W.Name;
    EXPECT_EQ(D.GuardPass, In.Invocations.size()) << W.Name;
    EXPECT_EQ(D.Invocations, In.Invocations.size()) << W.Name;
  }
}

// Identical base addresses make the alias-range guard fire on every
// invocation (the ranges overlap exactly), routing each invocation down
// the demoted path without ever counting it as speculative. dst == src
// keeps the loop semantics order-independent, so the run must still be
// bit-identical to scalar.
TEST(AdaptiveDispatch, AliasedArraysFailGuardEveryInvocationAndStayExact) {
  ir::ParseResult R = ir::parseLoop(R"(
loop stream(i64 n trip, i32 t, i32 dst[], i32 src[] readonly) {
  t = src[i];
  dst[i] = t + 1;
})");
  ASSERT_TRUE(R) << R.Error;
  core::PipelineResult PR = core::compileLoop(*R.F);
  ASSERT_TRUE(PR.Adaptive) << "stream loop must produce an adaptive variant";

  const int64_t N = 256;
  mem::Memory Image;
  const uint64_t Base = 0x10000;
  Image.map(Base, mem::PageSize);
  for (int64_t I = 0; I < N; ++I)
    Image.set<int32_t>(Base + 4 * static_cast<uint64_t>(I),
                       static_cast<int32_t>(I * 3 - 40));
  ir::Bindings B = ir::Bindings::forFunction(*R.F);
  B.setInt(0, N);        // trip
  B.ArrayBases[0] = Base; // dst
  B.ArrayBases[1] = Base; // src aliases dst exactly
  std::vector<ir::Bindings> Invocations(3, B);

  core::FaultPlan Plan; // Nothing injected; the guard alone routes.
  core::DiffVerdict V = core::runDifferentialMulti(
      *R.F, PR.Scalar, *PR.Adaptive, Image, Invocations, Plan);
  ASSERT_TRUE(V.Equivalent) << V.describe();
  ASSERT_TRUE(V.Vector.Outcome.HasDispatch);
  const driver::DispatchCounts &D = V.Vector.Outcome.Dispatch;
  EXPECT_EQ(D.GuardFail, Invocations.size())
      << "every invocation must fail the overlap check";
  EXPECT_EQ(D.GuardPass, 0u);
  EXPECT_EQ(D.Invocations, 0u) << "guard-failed runs are not speculative";
  EXPECT_EQ(D.State, 0u) << "guard failures are not demotions";
  EXPECT_EQ(D.Demotions, 0u);
}

// Trip counts below the minimum make the guard route to the demoted path
// without burning a speculative invocation.
TEST(AdaptiveDispatch, ShortTripsFailGuardAndStayExact) {
  ir::ParseResult R = ir::parseLoop(R"(
loop shorty(i64 n trip, i64 acc liveout, i32 a[] readonly) {
  acc = acc + a[i];
})");
  ASSERT_TRUE(R) << R.Error;
  core::PipelineResult PR = core::compileLoop(*R.F);
  ASSERT_TRUE(PR.Adaptive);

  mem::Memory Image;
  const uint64_t Base = 0x20000;
  Image.map(Base, mem::PageSize);
  for (int64_t I = 0; I < 64; ++I)
    Image.set<int32_t>(Base + 4 * static_cast<uint64_t>(I),
                       static_cast<int32_t>(7 * I + 1));
  ir::Bindings B = ir::Bindings::forFunction(*R.F);
  B.setInt(0, driver::AdaptiveConfig().MinTrip - 1);
  B.ArrayBases[0] = Base;
  std::vector<ir::Bindings> Invocations(2, B);

  core::FaultPlan Plan;
  core::DiffVerdict V = core::runDifferentialMulti(
      *R.F, PR.Scalar, *PR.Adaptive, Image, Invocations, Plan);
  ASSERT_TRUE(V.Equivalent) << V.describe();
  ASSERT_TRUE(V.Vector.Outcome.HasDispatch);
  const driver::DispatchCounts &D = V.Vector.Outcome.Dispatch;
  EXPECT_EQ(D.GuardFail, Invocations.size());
  EXPECT_EQ(D.GuardPass, 0u);
  EXPECT_EQ(D.Demotions, 0u);
}

// The demotion verdict surfaces as typed remarks: a storm run must render
// dispatch.demoted, a clean run dispatch.promoted-stay, and a guard-failed
// run dispatch.guard-failed — never silence.
TEST(AdaptiveDispatch, DispatchRemarksNameTheVerdict) {
  driver::DispatchCounts Stormed;
  Stormed.State = 1;
  Stormed.Invocations = 8;
  Stormed.AbortedInvocations = 8;
  Stormed.Demotions = 1;
  std::vector<driver::Remark> Rs = driver::dispatchRemarks(Stormed);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_EQ(Rs[0].Id, "dispatch.demoted");
  EXPECT_EQ(Rs[0].Variant, "flexvec-adaptive");

  driver::DispatchCounts Clean;
  Clean.Invocations = 4;
  Rs = driver::dispatchRemarks(Clean);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_EQ(Rs[0].Id, "dispatch.promoted-stay");

  driver::DispatchCounts Guarded;
  Guarded.GuardFail = 3;
  Guarded.Invocations = 2;
  Rs = driver::dispatchRemarks(Guarded);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_EQ(Rs[0].Id, "dispatch.guard-failed");
  EXPECT_EQ(Rs[1].Id, "dispatch.promoted-stay");
}
