//===- tests/SampledErrorBoundTest.cpp - Sampled-simulation accuracy -------===//
//
// The accuracy contract of --sim-mode=sampled (sim/Sampled.h): under the
// default regimen, every Figure-8 group's geomean of sampled-vs-full cycle
// ratios stays within a documented 2% bound, and individual rows stay
// within a (looser) per-row bound. Both bounds are overridable through the
// environment so the nightly lane can tighten or a debug run can relax
// them without a rebuild:
//
//   FLEXVEC_SAMPLED_ERROR_BOUND  group-geomean bound (default 0.02)
//   FLEXVEC_SAMPLED_ROW_BOUND    per-cell bound      (default 0.25)
//   FLEXVEC_SAMPLED_SCALE        sweep scale         (default 1.0)
//
// Also pins the exact-degradation and determinism guarantees: a regimen
// with no skip phase reproduces full-fidelity cycles bit for bit, and the
// estimate is a pure function of (trace, config).
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/ParallelEvaluator.h"
#include "core/Pipeline.h"
#include "sim/OooCore.h"
#include "sim/Sampled.h"
#include "support/Hash.h"
#include "support/Random.h"
#include "workloads/Figure8.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

using namespace flexvec;

namespace {

double envOr(const char *Name, double Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  char *End = nullptr;
  double D = std::strtod(V, &End);
  return (End && *End == '\0' && D > 0) ? D : Default;
}

TEST(SampledErrorBound, GroupGeomeansWithinBoundOnEveryRow) {
  const double Bound = envOr("FLEXVEC_SAMPLED_ERROR_BOUND", 0.02);
  const double RowBound = envOr("FLEXVEC_SAMPLED_ROW_BOUND", 0.25);
  const double Scale = envOr("FLEXVEC_SAMPLED_SCALE", 1.0);

  workloads::Figure8Suite Suite = workloads::buildFigure8Suite(Scale);
  ASSERT_GE(Suite.Workloads.size(), 25u)
      << "the sweep must cover all imported rows";

  core::SweepOptions Opts;
  Opts.Jobs = 1;
  Opts.Scale = Scale;
  // The documented error bound is calibrated on the 512-bit cycle
  // streams; pin the width so a FLEXVEC_VL override doesn't shift the
  // regimen out of its calibration.
  Opts.Vec = isa::VectorConfig();
  core::CompileCache Cache;
  core::SweepResult Full = core::runSweep(Suite.Workloads, Opts, &Cache);

  Opts.Sim = core::SimMode::Sampled; // Default regimen (25000/10000/3000/1).
  core::SweepResult Sampled = core::runSweep(Suite.Workloads, Opts, &Cache);

  ASSERT_EQ(Full.Cells.size(), Sampled.Cells.size());
  EXPECT_EQ(Sampled.Sim, core::SimMode::Sampled);

  // Per-group log-accumulated ratios; per-cell bound along the way.
  std::map<std::string, std::pair<double, unsigned>> Groups;
  uint64_t CellsCompared = 0, CellsExtrapolated = 0;
  for (size_t I = 0; I < Full.Cells.size(); ++I) {
    const core::CellResult &F = Full.Cells[I];
    const core::CellResult &S = Sampled.Cells[I];
    ASSERT_EQ(F.Benchmark, S.Benchmark);
    ASSERT_EQ(F.Variant, S.Variant);
    if (!F.Generated)
      continue;
    // Sampling must never compromise correctness: the functional emulator
    // runs the full stream either way.
    EXPECT_TRUE(S.Correct) << F.Benchmark << "/" << F.Variant;
    ASSERT_GT(F.Cycles, 0u);
    ASSERT_GT(S.Cycles, 0u);
    // The functional stream is identical; only the timing is estimated.
    EXPECT_EQ(F.EmuInstructions, S.EmuInstructions)
        << F.Benchmark << "/" << F.Variant;
    double Ratio = static_cast<double>(S.Cycles) / F.Cycles;
    EXPECT_LE(std::abs(Ratio - 1.0), RowBound)
        << F.Benchmark << "/" << F.Variant << ": sampled " << S.Cycles
        << " vs full " << F.Cycles;
    auto &G = Groups[F.Group];
    G.first += std::log(Ratio);
    G.second += 1;
    CellsCompared += 1;
    CellsExtrapolated += F.Cycles != S.Cycles;
  }
  ASSERT_GT(CellsCompared, 0u);
  // At the default scale the big rows run far past one interval, so the
  // estimator must actually have extrapolated somewhere — otherwise this
  // test silently degenerated to full-vs-full.
  EXPECT_GT(CellsExtrapolated, 0u);

  for (const auto &G : Groups) {
    ASSERT_GT(G.second.second, 0u);
    double Geo = std::exp(G.second.first / G.second.second);
    EXPECT_LE(std::abs(Geo - 1.0), Bound)
        << "group " << G.first << ": sampled/full cycle geomean " << Geo
        << " breaches the documented error bound";
  }
}

TEST(SampledErrorBound, NoSkipRegimenDegradesToExactCycles) {
  // Interval == window means the stream never skips, so the estimate must
  // be the full-fidelity cycle count bit for bit (Sampled.h's degradation
  // guarantee), not merely close to it.
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.02);
  const core::SweepWorkload &W = Suite.Workloads.front();
  core::PipelineResult PR = core::compileLoop(*W.F);
  Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
  core::WorkloadInstance In = W.Gen(R);

  sim::OooCore Reference;
  core::RunOutcome A = core::runProgramMulti(*W.F, PR.Scalar, In.Image,
                                             In.Invocations, &Reference);

  sim::SampleConfig Cfg;
  Cfg.IntervalInstrs = 1; // Sanitized up to Warmup + Detail: back-to-back.
  sim::OooCore Inner;
  sim::SampledCore Sampler(Inner, Cfg);
  core::RunOutcome B = core::runProgramMulti(*W.F, PR.Scalar, In.Image,
                                             In.Invocations, &Sampler);
  ASSERT_TRUE(A.Ok && B.Ok);

  sim::SampledStats SS = Sampler.stats();
  EXPECT_EQ(SS.EstimatedCycles, Reference.stats().Cycles);
  EXPECT_EQ(SS.Instructions, SS.DetailedInstructions)
      << "a no-skip regimen must feed every instruction to the model";
}

TEST(SampledErrorBound, EstimateIsDeterministic) {
  workloads::Figure8Suite Suite =
      workloads::buildFigure8Suite(/*IterationScale=*/0.1);
  const core::SweepWorkload &W = Suite.Workloads.front();
  core::PipelineResult PR = core::compileLoop(*W.F);

  auto RunOnce = [&](uint64_t SampleSeed) {
    Rng R(deriveStreamSeed(1, fnv1a64(W.Name)));
    core::WorkloadInstance In = W.Gen(R);
    sim::SampleConfig Cfg;
    Cfg.IntervalInstrs = 4000; // Small enough to skip at this scale.
    Cfg.DetailInstrs = 1000;
    Cfg.WarmupInstrs = 300;
    Cfg.Seed = SampleSeed;
    sim::OooCore Inner;
    sim::SampledCore Sampler(Inner, Cfg);
    core::RunOutcome Out = core::runProgramMulti(*W.F, PR.Scalar, In.Image,
                                                 In.Invocations, &Sampler);
    EXPECT_TRUE(Out.Ok) << Out.Error;
    return Sampler.stats();
  };

  sim::SampledStats S1 = RunOnce(7);
  sim::SampledStats S2 = RunOnce(7);
  EXPECT_EQ(S1.EstimatedCycles, S2.EstimatedCycles);
  EXPECT_EQ(S1.Windows, S2.Windows);
  EXPECT_EQ(S1.DetailedInstructions, S2.DetailedInstructions);
  EXPECT_GT(S1.Windows, 1u) << "the regimen must produce multiple windows";
  EXPECT_LT(S1.DetailedInstructions, S1.Instructions)
      << "the regimen must actually skip";
}

} // namespace
