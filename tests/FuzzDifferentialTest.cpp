//===- tests/FuzzDifferentialTest.cpp - Randomized differential testing ----===//
//
// The standing fuzz suite over the src/gen scenario mill: every generated
// loop — classic envelope and the widened irregular-shape envelope — must
// pass gen::checkLoop, i.e. round-trip through the DSL, compile to a
// vectorizable plan, satisfy the no-silent-decline remark invariant, match
// the reference interpreter on every generated variant (all six columns,
// including flexvec-adaptive through its dispatch cell), and stay
// architecturally equivalent under an RTM conflict storm.
//
// The loop generator itself lives in src/gen/Gen.h; this file only decides
// which seeds and envelopes to run. For big batches use the flexvec-fuzz
// driver, which shares every check through the same gen::checkLoop call
// and shrinks failures to minimal reproducers.
//
//===----------------------------------------------------------------------===//

#include "gen/Differential.h"
#include "gen/Gen.h"
#include "ir/Parser.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace flexvec;

namespace {

gen::CheckOptions optionsFor(const gen::Envelope &E, uint64_t StormSeed) {
  gen::CheckOptions CO;
  CO.Inputs.IndexMask = E.IndexMask;
  CO.Inputs.IndexBound = E.TableSize;
  CO.Inputs.ArraySlack = E.MaxAffineOffset + 4;
  CO.StormSeed = StormSeed;
  return CO;
}

void runGenCase(uint64_t Seed, const gen::Envelope &E) {
  gen::GeneratedLoop G = gen::generateLoop(Seed, E);
  gen::CheckResult R = gen::checkLoop(
      *G.F, Seed, optionsFor(E, deriveStreamSeed(Seed, 0xfa117)));
  ASSERT_TRUE(R.ok()) << "seed " << Seed << ": "
                      << gen::failureClassName(R.Class)
                      << (R.Variant.empty() ? "" : " in ") << R.Variant
                      << "\n"
                      << R.Detail;
}

// 8 loops per gtest shard. The classic envelope reproduces the shapes the
// original in-test generator emitted; the widened envelope adds nested
// gathers, non-unit strides, affine offsets, and affine output stores.
class FuzzClassic : public ::testing::TestWithParam<int> {};
class FuzzWidened : public ::testing::TestWithParam<int> {};

TEST_P(FuzzClassic, EveryVariantMatchesReference) {
  for (int Case = 0; Case < 8; ++Case)
    runGenCase(static_cast<uint64_t>(GetParam()) * 1000 +
                   static_cast<uint64_t>(Case),
               gen::Envelope::classic());
}

TEST_P(FuzzWidened, EveryVariantMatchesReference) {
  for (int Case = 0; Case < 8; ++Case)
    runGenCase(0x90000000ULL + static_cast<uint64_t>(GetParam()) * 1000 +
                   static_cast<uint64_t>(Case),
               gen::Envelope::widened());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzClassic, ::testing::Range(0, 6));
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWidened, ::testing::Range(0, 6));

// The failure-reporting path itself: every generated loop must render as
// DSL text that parses back to the same loop, byte-for-byte, under both
// envelopes (so shrunk reproducers and the "reproduce with flexvec-cli"
// output are actually usable). checkLoop also asserts this per case; this
// test covers a wider seed range without paying for the differential.
TEST(FuzzGen, GeneratedLoopsRoundTripThroughDsl) {
  for (const gen::Envelope &E :
       {gen::Envelope::classic(), gen::Envelope::widened()}) {
    for (uint64_t Seed = 0; Seed < 24; ++Seed) {
      gen::GeneratedLoop G = gen::generateLoop(Seed, E);
      std::string Dsl = ir::printLoopDsl(*G.F);
      ir::ParseResult P = ir::parseLoop(Dsl);
      ASSERT_TRUE(P) << "seed " << Seed << ": " << P.Error << "\n" << Dsl;
      EXPECT_EQ(ir::printLoopDsl(*P.F), Dsl) << "seed " << Seed;
    }
  }
}

//===----------------------------------------------------------------------===//
// Checked-in corpus: known-interesting loop shapes under tests/corpus/,
// cross-checked through every variant (including flexvec-adaptive) and the
// conflict storm by the same gen::checkLoop the fuzzer uses. Inputs come
// from the gen::buildConventionInputs naming contract.
//===----------------------------------------------------------------------===//

void runCorpusCase(const std::string &Name) {
  std::string Path =
      std::string(FLEXVEC_SOURCE_DIR) + "/tests/corpus/" + Name + ".fv";
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();

  ir::ParseResult P = ir::parseLoop(SS.str());
  ASSERT_TRUE(P) << Path << ": " << P.Error;

  uint64_t Seed = fnv1a64(Name);
  gen::CheckResult R = gen::checkLoop(
      *P.F, Seed,
      optionsFor(gen::Envelope::classic(), deriveStreamSeed(Seed, 0xc0)));
  ASSERT_TRUE(R.ok()) << Name << ": " << gen::failureClassName(R.Class)
                      << (R.Variant.empty() ? "" : " in ") << R.Variant
                      << "\n"
                      << R.Detail;
}

class CorpusDifferential : public ::testing::TestWithParam<const char *> {};

TEST_P(CorpusDifferential, AllVariantsMatchReference) {
  runCorpusCase(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusDifferential,
    ::testing::Values("argmin_key2", "find_sentinel", "histogram_weighted",
                      "exit_then_update", "masked_else", "update_conflict",
                      "nested_gather", "stride_probe", "gather_heavy"));

} // namespace
