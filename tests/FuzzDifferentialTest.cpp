//===- tests/FuzzDifferentialTest.cpp - Randomized differential testing ----===//
//
// Generates random structured loops within the supported envelope —
// random expression trees over temporaries, invariants and arrays, plus a
// random mixture of the three FlexVec patterns (early exit, conditional
// update, memory conflict) — compiles them through every generator, and
// requires every produced program to match the reference interpreter on
// random inputs.
//
// The generator stays inside the documented restrictions (single lane
// width, no stores inside conditional-update regions, top-level exit
// guards), so a plan that comes back non-vectorizable is itself a test
// failure for these shapes.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "ir/Parser.h"
#include "support/Hash.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace flexvec;
using namespace flexvec::ir;
using isa::CmpKind;
using isa::ElemType;

namespace {

constexpr int64_t TableSize = 64; // RW table entries (power of two).

/// Random-loop builder state.
struct LoopGen {
  Rng &R;
  LoopFunction &F;
  std::vector<int> ReadableScalars; ///< Defined-before-use values.
  std::vector<int> RoArrays;

  const Expr *randomValue(int Depth) {
    switch (R.nextBelow(Depth <= 0 ? 3 : 5)) {
    case 0:
      return F.constInt(ElemType::I32, R.nextInRange(-20, 20));
    case 1:
      return F.scalarRef(
          ReadableScalars[R.nextBelow(ReadableScalars.size())]);
    case 2: {
      // Affine or indirect array read.
      int A = RoArrays[R.nextBelow(RoArrays.size())];
      if (R.nextBool(0.7))
        return F.arrayRef(A, F.indexRef());
      // Indirect: index masked into the array length (all RO arrays share
      // one length >= trip, and trip <= 512, so mask to 255).
      const Expr *Idx =
          F.binary(BinOp::And, randomValue(0),
                   F.constInt(ElemType::I32, 255));
      return F.arrayRef(A, Idx);
    }
    case 3: {
      BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Min, BinOp::Max};
      return F.binary(Ops[R.nextBelow(4)], randomValue(Depth - 1),
                      randomValue(Depth - 1));
    }
    default:
      return F.binary(BinOp::Mul, randomValue(Depth - 1),
                      F.constInt(ElemType::I32,
                                 R.nextInRange(1, 4)));
    }
  }

  const Expr *randomCond(int Depth) {
    CmpKind Kinds[] = {CmpKind::LT, CmpKind::LE, CmpKind::GT,
                       CmpKind::GE, CmpKind::EQ, CmpKind::NE};
    return F.compare(Kinds[R.nextBelow(6)], randomValue(Depth),
                     randomValue(Depth));
  }
};

struct BuiltLoop {
  std::unique_ptr<LoopFunction> F;
  int NumRoArrays = 0;
  bool HasRwTable = false;
  bool HasUpdate = false;
  bool HasExit = false;
};

BuiltLoop buildRandomLoop(Rng &R, uint64_t Seed) {
  BuiltLoop Out;
  Out.F = std::make_unique<LoopFunction>("fuzz_" + std::to_string(Seed));
  LoopFunction &F = *Out.F;

  int N = F.addScalar("n", ElemType::I64);
  F.setTripCountScalar(N);

  // One or two invariant scalars.
  int Inv = F.addScalar("inv", ElemType::I32);
  // Temporaries.
  int T1 = F.addScalar("t1", ElemType::I32);
  int T2 = F.addScalar("t2", ElemType::I32);
  // Conditional-update pair (live-out).
  bool HasUpdate = R.nextBool(0.6);
  int Best = -1, Pay = -1;
  if (HasUpdate) {
    Best = F.addScalar("best", ElemType::I32, /*IsLiveOut=*/true);
    Pay = F.addScalar("pay", ElemType::I32, /*IsLiveOut=*/true);
  }
  bool HasExit = R.nextBool(0.4);
  int ExitPos = -1;
  if (HasExit)
    ExitPos = F.addScalar("exit_pos", ElemType::I32, /*IsLiveOut=*/true);

  Out.NumRoArrays = 1 + static_cast<int>(R.nextBelow(3));
  std::vector<int> Ro;
  for (int A = 0; A < Out.NumRoArrays; ++A)
    Ro.push_back(F.addArray("ro" + std::to_string(A), ElemType::I32, true));
  Out.HasRwTable = R.nextBool(0.5);
  int Rw = -1, IdxArr = -1;
  if (Out.HasRwTable) {
    IdxArr = F.addArray("iarr", ElemType::I32, true);
    Rw = F.addArray("rw", ElemType::I32);
  }

  LoopGen G{R, F, {Inv}, Ro};
  std::vector<Stmt *> Body;

  // Prologue: define the temporaries (unconditionally, so later reads are
  // killed within the iteration).
  Body.push_back(F.assignScalar(T1, G.randomValue(2)));
  G.ReadableScalars.push_back(T1);
  Body.push_back(F.assignScalar(T2, G.randomValue(2)));
  G.ReadableScalars.push_back(T2);

  // Optional early exit (top level, before the other patterns).
  if (HasExit) {
    // Rare-ish exit: equality against a constant.
    const Expr *Cond = F.compare(
        CmpKind::EQ,
        F.binary(BinOp::And, G.randomValue(1),
                 F.constInt(ElemType::I32, 1023)),
        F.constInt(ElemType::I32, 77));
    Stmt *Guard = F.makeIfShell(Cond);
    F.addThen(Guard, F.assignScalar(ExitPos, F.indexRef()));
    F.addThen(Guard, F.makeBreak());
    Body.push_back(Guard);
    Out.HasExit = true;
  }

  // Optional plain masked region.
  if (R.nextBool(0.5)) {
    Stmt *If = F.makeIfShell(G.randomCond(1));
    F.addThen(If, F.assignScalar(T2, G.randomValue(2)));
    if (R.nextBool(0.4))
      F.addElse(If, F.assignScalar(T1, G.randomValue(1)));
    Body.push_back(If);
  }

  // Optional conditional update.
  if (HasUpdate) {
    const Expr *Cand = F.scalarRef(R.nextBool(0.5) ? T1 : T2);
    Stmt *Guard = F.makeIfShell(
        F.compare(CmpKind::LT, Cand, F.scalarRef(Best)));
    F.addThen(Guard, F.assignScalar(Best, Cand));
    F.addThen(Guard, F.assignScalar(Pay, F.indexRef()));
    Body.push_back(Guard);
    Out.HasUpdate = true;
  }

  // Optional memory-conflict block (after any update region; disjoint).
  if (Out.HasRwTable) {
    int J = F.addScalar("j", ElemType::I32);
    Body.push_back(F.assignScalar(J, F.arrayRef(IdxArr, F.indexRef())));
    const Expr *JRef = F.scalarRef(J);
    const Expr *NewVal =
        F.binary(BinOp::Add, F.arrayRef(Rw, JRef),
                 F.binary(BinOp::And, G.randomValue(1),
                          F.constInt(ElemType::I32, 15)));
    Body.push_back(F.storeArray(Rw, JRef, NewVal));
  }

  F.setBody(Body);
  return Out;
}

void runCase(uint64_t Seed) {
  Rng R(Seed);
  BuiltLoop BL = buildRandomLoop(R, Seed);
  LoopFunction &F = *BL.F;

  core::PipelineResult PR = core::compileLoop(F, /*RtmTile=*/64);
  ASSERT_TRUE(PR.Plan.Vectorizable)
      << "seed " << Seed << ": " << PR.Plan.Reason << "\n" << F.print();

  for (int Input = 0; Input < 3; ++Input) {
    int64_t Trip = 1 + static_cast<int64_t>(R.nextBelow(500));
    mem::Memory M;
    mem::BumpAllocator Alloc(M);
    Bindings B = Bindings::forFunction(F);

    // RO arrays sized for both affine (trip) and masked-indirect (256)
    // subscripts.
    int64_t RoLen = std::max<int64_t>(Trip, 256);
    int ArrayId = 0;
    for (int A = 0; A < BL.NumRoArrays; ++A) {
      std::vector<int32_t> Data(static_cast<size_t>(RoLen));
      for (auto &V : Data)
        V = static_cast<int32_t>(R.nextInRange(-100, 100));
      B.ArrayBases[ArrayId++] = Alloc.allocArray(Data);
    }
    if (BL.HasRwTable) {
      std::vector<int32_t> Idx(static_cast<size_t>(Trip));
      for (auto &V : Idx)
        V = static_cast<int32_t>(R.nextBelow(TableSize));
      std::vector<int32_t> Table(static_cast<size_t>(TableSize));
      for (auto &V : Table)
        V = static_cast<int32_t>(R.nextInRange(-50, 50));
      B.ArrayBases[ArrayId++] = Alloc.allocArray(Idx);
      B.ArrayBases[ArrayId++] = Alloc.allocArray(Table);
    }
    B.setInt(0, Trip);
    B.setInt(1, static_cast<int32_t>(R.nextInRange(-20, 20))); // inv
    for (size_t S = 0; S < F.scalars().size(); ++S)
      if (F.scalar(S).Name == "best")
        B.setInt(static_cast<int>(S), 1 << 20);

    core::RunOutcome Ref = core::runReference(F, M, B);
    // Failing loops are reported as DSL text, so a failure in CI can be
    // reproduced directly with `flexvec-cli` from the log.
    auto check = [&](const char *Name, const codegen::CompiledLoop &CL) {
      core::RunOutcome Out = core::runProgram(CL, M, B);
      ASSERT_TRUE(Out.Ok)
          << "seed " << Seed << " " << Name << ": " << Out.Error << "\n"
          << "reproduce with flexvec-cli:\n" << ir::printLoopDsl(F);
      ASSERT_TRUE(core::outcomesMatch(F, Ref, Out))
          << "seed " << Seed << " " << Name << " diverges\n"
          << "reproduce with flexvec-cli:\n" << ir::printLoopDsl(F) << "\n"
          << CL.Prog.disassemble();
    };
    check("scalar", PR.Scalar);
    if (PR.Traditional)
      check("traditional", *PR.Traditional);
    if (PR.Speculative)
      check("speculative", *PR.Speculative);
    if (PR.FlexVec)
      check("flexvec", *PR.FlexVec);
    if (PR.Rtm)
      check("flexvec-rtm", *PR.Rtm);
  }
}

class FuzzDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferential, AllVariantsMatchReference) {
  // 8 random loops per gtest shard, 3 random inputs each.
  for (int Case = 0; Case < 8; ++Case)
    runCase(static_cast<uint64_t>(GetParam()) * 1000 +
            static_cast<uint64_t>(Case));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range(0, 12));

// The failure-reporting path itself: every generated loop must render as
// DSL text that parses back to the same loop (so the "reproduce with
// flexvec-cli" output in the asserts above is actually usable).
TEST(FuzzDifferential, GeneratedLoopsRoundTripThroughDsl) {
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    Rng R(Seed);
    BuiltLoop BL = buildRandomLoop(R, Seed);
    std::string Dsl = ir::printLoopDsl(*BL.F);
    ir::ParseResult P = ir::parseLoop(Dsl);
    ASSERT_TRUE(P) << "seed " << Seed << ": " << P.Error << "\n" << Dsl;
    EXPECT_EQ(ir::printLoopDsl(*P.F), Dsl) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Checked-in corpus: known-interesting loop shapes under tests/corpus/,
// cross-checked through every variant including flexvec-rtm.
//===----------------------------------------------------------------------===//

/// Builds inputs for a corpus loop from naming conventions: arrays are
/// sized max(trip, 512); arrays named idx* hold small non-negative bucket
/// indices; scalars named best/sentinel get their conventional values.
void runCorpusCase(const std::string &Name) {
  std::string Path =
      std::string(FLEXVEC_SOURCE_DIR) + "/tests/corpus/" + Name + ".fv";
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();

  ir::ParseResult P = ir::parseLoop(SS.str());
  ASSERT_TRUE(P) << Path << ": " << P.Error;
  LoopFunction &F = *P.F;

  core::PipelineResult PR = core::compileLoop(F, /*RtmTile=*/64);
  ASSERT_TRUE(PR.Plan.Vectorizable)
      << Name << ": " << PR.Plan.Reason << "\n" << F.print();

  Rng R(fnv1a64(Name));
  for (int Input = 0; Input < 3; ++Input) {
    int64_t Trip = 1 + static_cast<int64_t>(R.nextBelow(400));
    int64_t Len = std::max<int64_t>(Trip, 512);
    mem::Memory M;
    mem::BumpAllocator Alloc(M);
    Bindings B = Bindings::forFunction(F);

    for (size_t A = 0; A < F.arrays().size(); ++A) {
      const ArrayParam &AP = F.arrays()[A];
      std::vector<int32_t> Data(static_cast<size_t>(Len));
      for (auto &V : Data) {
        if (AP.Name.rfind("idx", 0) == 0)
          V = static_cast<int32_t>(R.nextBelow(64)); // bucket indices
        else if (AP.ReadOnly)
          V = static_cast<int32_t>(R.nextInRange(-100, 100));
        else
          V = static_cast<int32_t>(R.nextInRange(-50, 50));
      }
      B.ArrayBases[static_cast<int>(A)] = Alloc.allocArray(Data);
    }
    for (size_t S = 0; S < F.scalars().size(); ++S) {
      int Id = static_cast<int>(S);
      if (Id == F.tripCountScalar())
        B.setInt(Id, Trip);
      else if (F.scalar(S).Name == "best")
        B.setInt(Id, 1 << 20);
      else if (F.scalar(S).Name == "sentinel")
        B.setInt(Id, 7);
      else
        B.setInt(Id, static_cast<int32_t>(R.nextInRange(-20, 20)));
    }

    core::RunOutcome Ref = core::runReference(F, M, B);
    auto check = [&](const char *VName, const codegen::CompiledLoop &CL) {
      core::RunOutcome Out = core::runProgram(CL, M, B);
      ASSERT_TRUE(Out.Ok)
          << Name << " " << VName << ": " << Out.Error << "\n"
          << ir::printLoopDsl(F);
      ASSERT_TRUE(core::outcomesMatch(F, Ref, Out))
          << Name << " " << VName << " diverges (input " << Input
          << ", trip " << Trip << ")\n" << ir::printLoopDsl(F) << "\n"
          << CL.Prog.disassemble();
    };
    check("scalar", PR.Scalar);
    if (PR.Traditional)
      check("traditional", *PR.Traditional);
    if (PR.Speculative)
      check("speculative", *PR.Speculative);
    if (PR.FlexVec)
      check("flexvec", *PR.FlexVec);
    if (PR.Rtm)
      check("flexvec-rtm", *PR.Rtm);
  }
}

class CorpusDifferential : public ::testing::TestWithParam<const char *> {};

TEST_P(CorpusDifferential, AllVariantsMatchReference) {
  runCorpusCase(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusDifferential,
    ::testing::Values("argmin_key2", "find_sentinel", "histogram_weighted",
                      "exit_then_update", "masked_else", "update_conflict"));

} // namespace
