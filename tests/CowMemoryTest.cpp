//===- tests/CowMemoryTest.cpp - COW clone equivalence ---------------------===//
//
// Differential acceptance tests for copy-on-write memory images: a run
// against a COW clone() must be observationally identical — memory
// fingerprint, live-outs, fault behaviour — to the same run against an
// eager deepClone(), across the checked-in loop corpus and under injected
// memory faults. The shared base image must survive every run (including
// faulting ones) byte-for-byte untouched.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "core/Pipeline.h"
#include "faults/FaultInjector.h"
#include "ir/Parser.h"
#include "support/Hash.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace flexvec;
using namespace flexvec::ir;

namespace {

//===----------------------------------------------------------------------===//
// Unit-level COW semantics.
//===----------------------------------------------------------------------===//

TEST(CowMemory, WriteThroughCloneCopiesPageAndPreservesBase) {
  mem::Memory Base;
  Base.map(0x1000, 2 * mem::PageSize);
  Base.set<int32_t>(0x1000, 111);
  Base.set<int32_t>(0x2000, 222);
  uint64_t BaseFp = Base.fingerprint();

  mem::Memory Clone = Base.clone();
  EXPECT_EQ(Clone.stats().CowCopies, 0u) << "clone() must not copy pages";
  EXPECT_TRUE(Clone.contentsEqual(Base));
  EXPECT_EQ(Clone.fingerprint(), BaseFp);

  // First write through the clone copies exactly the touched page.
  Clone.set<int32_t>(0x1000, 999);
  EXPECT_EQ(Clone.stats().CowCopies, 1u);
  EXPECT_EQ(Clone.get<int32_t>(0x1000), 999);
  EXPECT_EQ(Base.get<int32_t>(0x1000), 111) << "base must not see the write";
  EXPECT_EQ(Base.fingerprint(), BaseFp);

  // The page is now exclusively owned: further writes copy nothing.
  Clone.set<int32_t>(0x1004, 7);
  EXPECT_EQ(Clone.stats().CowCopies, 1u);

  // Writes through the *base* to a still-shared page copy on the base's
  // side, leaving the clone's view intact.
  Base.set<int32_t>(0x2000, 333);
  EXPECT_EQ(Base.stats().CowCopies, 1u);
  EXPECT_EQ(Clone.get<int32_t>(0x2000), 222);
}

TEST(CowMemory, CloneOfCloneSharesUntouchedPages) {
  mem::Memory Base;
  Base.map(0x1000, 4 * mem::PageSize);
  for (uint64_t P = 0; P < 4; ++P)
    Base.set<int64_t>(0x1000 + P * mem::PageSize, static_cast<int64_t>(P));
  uint64_t BaseFp = Base.fingerprint();

  mem::Memory A = Base.clone();
  mem::Memory B = A.clone();
  B.set<int64_t>(0x1000, 99);
  EXPECT_EQ(B.stats().CowCopies, 1u);
  EXPECT_EQ(A.get<int64_t>(0x1000), 0);
  EXPECT_EQ(Base.fingerprint(), BaseFp);
  EXPECT_TRUE(A.contentsEqual(Base));
}

TEST(CowMemory, FaultingWriteNeitherCopiesNorMutates) {
  mem::Memory Base;
  Base.map(0x1000, mem::PageSize); // seed contents while writable
  Base.set<int32_t>(0x1000, 77);
  Base.map(0x1000, mem::PageSize, mem::PermRead); // then drop write perm
  uint64_t BaseFp = Base.fingerprint();

  mem::Memory Clone = Base.clone();
  int32_t V = 123;
  mem::AccessResult R = Clone.write(0x1000, &V, sizeof(V));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.FaultAddr, 0x1000u);
  EXPECT_EQ(Clone.stats().CowCopies, 0u)
      << "a faulting write must not trigger the COW copy";
  EXPECT_EQ(Clone.fingerprint(), BaseFp);
  EXPECT_EQ(Base.fingerprint(), BaseFp);
}

TEST(CowMemory, StraddlingFaultingWriteHasNoPartialEffect) {
  mem::Memory Base;
  Base.map(0x1000, mem::PageSize);                // writable page
  Base.map(0x2000, mem::PageSize, mem::PermRead); // read-only neighbour
  uint64_t BaseFp = Base.fingerprint();

  mem::Memory Clone = Base.clone();
  // 8-byte write straddling into the read-only page: must fault without
  // copying or modifying the writable first page.
  int64_t V = -1;
  mem::AccessResult R = Clone.write(0x2000 - 4, &V, sizeof(V));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(Clone.stats().CowCopies, 0u);
  EXPECT_EQ(Clone.fingerprint(), BaseFp);
  EXPECT_EQ(Base.fingerprint(), BaseFp);
}

//===----------------------------------------------------------------------===//
// Corpus differential: COW-cloned vs deep-cloned execution.
//===----------------------------------------------------------------------===//

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

struct MultiRun {
  bool Ok = true;
  uint64_t Fp = 0;
  uint64_t LiveOutHash = 0;
  uint64_t CowCopies = 0;
};

/// Mirror of core::runProgramMulti that executes against \p Img in place
/// (no internal clone), so the caller chooses the cloning strategy.
MultiRun runInvocationsOn(const LoopFunction &F,
                          const codegen::CompiledLoop &CL, mem::Memory &Img,
                          const std::vector<Bindings> &Invocations,
                          faults::FaultInjector *Inj = nullptr) {
  MultiRun Out;
  emu::Machine Mach(Img);
  if (Inj)
    Inj->arm(Img, &Mach.tx());
  for (const Bindings &B : Invocations) {
    Mach.resetRegisters();
    for (size_t S = 0; S < B.ScalarValues.size(); ++S)
      Mach.setScalar(codegen::scalarParamReg(static_cast<int>(S)).Index,
                     B.ScalarValues[S]);
    for (size_t A = 0; A < B.ArrayBases.size(); ++A)
      Mach.setScalar(codegen::arrayBaseReg(static_cast<int>(A)).Index,
                     static_cast<int64_t>(B.ArrayBases[A]));
    emu::ExecResult R = Mach.run(CL.Prog);
    if (R.Reason != emu::StopReason::Halted) {
      Out.Ok = false;
      break;
    }
    for (size_t S = 0; S < F.scalars().size(); ++S)
      if (F.scalar(S).IsLiveOut)
        Out.LiveOutHash = hashCombine(
            Out.LiveOutHash,
            static_cast<uint64_t>(Mach.getScalar(
                codegen::scalarParamReg(static_cast<int>(S)).Index)));
  }
  Out.Fp = Img.fingerprint();
  Out.CowCopies = Img.stats().CowCopies;
  return Out;
}

/// Parses a corpus loop, builds inputs by the corpus naming conventions
/// (same as FuzzDifferentialTest), and returns the prepared pieces.
struct CorpusCase {
  std::unique_ptr<LoopFunction> F;
  core::PipelineResult PR;
  mem::Memory Image;
  std::vector<Bindings> Invocations;
};

CorpusCase buildCorpusCase(const std::string &Name) {
  CorpusCase C;
  std::string Path =
      std::string(FLEXVEC_SOURCE_DIR) + "/tests/corpus/" + Name + ".fv";
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  ir::ParseResult P = ir::parseLoop(SS.str());
  EXPECT_TRUE(P) << Path << ": " << P.Error;
  C.F = std::move(P.F);
  LoopFunction &F = *C.F;
  C.PR = core::compileLoop(F, /*RtmTile=*/64);

  Rng R(fnv1a64(Name));
  int64_t Len = 512;
  mem::BumpAllocator Alloc(C.Image);
  Bindings B = Bindings::forFunction(F);
  for (size_t A = 0; A < F.arrays().size(); ++A) {
    const ArrayParam &AP = F.arrays()[A];
    std::vector<int32_t> Data(static_cast<size_t>(Len));
    for (auto &V : Data) {
      if (AP.Name.rfind("idx", 0) == 0)
        V = static_cast<int32_t>(R.nextBelow(64));
      else
        V = static_cast<int32_t>(R.nextInRange(-100, 100));
    }
    B.ArrayBases[static_cast<int>(A)] = Alloc.allocArray(Data);
  }
  // Three invocations with varying trip counts; scalar state is re-seeded
  // per invocation, array mutations carry across (like repeated hot-loop
  // calls).
  for (int I = 0; I < 3; ++I) {
    Bindings Inv = B;
    int64_t Trip = 1 + static_cast<int64_t>(R.nextBelow(400));
    for (size_t S = 0; S < F.scalars().size(); ++S) {
      int Id = static_cast<int>(S);
      if (Id == F.tripCountScalar())
        Inv.setInt(Id, Trip);
      else if (F.scalar(S).Name == "best")
        Inv.setInt(Id, 1 << 20);
      else if (F.scalar(S).Name == "sentinel")
        Inv.setInt(Id, 7);
      else
        Inv.setInt(Id, static_cast<int32_t>(R.nextInRange(-20, 20)));
    }
    C.Invocations.push_back(std::move(Inv));
  }
  return C;
}

class CowCorpusDifferential : public ::testing::TestWithParam<const char *> {};

TEST_P(CowCorpusDifferential, CowAndDeepClonesAgree) {
  CorpusCase C = buildCorpusCase(GetParam());
  LoopFunction &F = *C.F;
  uint64_t BaseFp = C.Image.fingerprint();

  auto checkVariant = [&](const char *VName,
                          const codegen::CompiledLoop &CL) {
    mem::Memory Cow = C.Image.clone();
    mem::Memory Deep = C.Image.deepClone();
    MultiRun A = runInvocationsOn(F, CL, Cow, C.Invocations);
    MultiRun B = runInvocationsOn(F, CL, Deep, C.Invocations);
    EXPECT_EQ(A.Ok, B.Ok) << GetParam() << " " << VName;
    EXPECT_EQ(A.Fp, B.Fp)
        << GetParam() << " " << VName << ": COW image diverged from deep";
    EXPECT_EQ(A.LiveOutHash, B.LiveOutHash) << GetParam() << " " << VName;
    EXPECT_EQ(B.CowCopies, 0u)
        << "deepClone shares nothing, so it must never COW-copy";

    // The production entry point (which clones internally) agrees too.
    core::RunOutcome Out =
        core::runProgramMulti(F, CL, C.Image, C.Invocations);
    EXPECT_EQ(Out.MemFingerprint, A.Fp) << GetParam() << " " << VName;
    EXPECT_EQ(Out.LiveOutHash, A.LiveOutHash) << GetParam() << " " << VName;

    // The shared base image survives every run untouched.
    EXPECT_EQ(C.Image.fingerprint(), BaseFp)
        << GetParam() << " " << VName << ": run mutated the base image";
  };

  checkVariant("scalar", C.PR.Scalar);
  if (C.PR.Traditional)
    checkVariant("traditional", *C.PR.Traditional);
  if (C.PR.Speculative)
    checkVariant("speculative", *C.PR.Speculative);
  if (C.PR.FlexVec)
    checkVariant("flexvec", *C.PR.FlexVec);
  if (C.PR.Rtm)
    checkVariant("flexvec-rtm", *C.PR.Rtm);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CowCorpusDifferential,
    ::testing::Values("argmin_key2", "find_sentinel", "histogram_weighted",
                      "exit_then_update", "masked_else", "update_conflict"));

// COW must actually trigger across the corpus (stores exist in several
// loops): otherwise the differential above proves nothing about the copy
// path.
TEST(CowCorpusDifferential, CorpusExercisesTheCopyPath) {
  uint64_t TotalCopies = 0;
  for (const char *Name :
       {"argmin_key2", "find_sentinel", "histogram_weighted",
        "exit_then_update", "masked_else", "update_conflict"}) {
    CorpusCase C = buildCorpusCase(Name);
    mem::Memory Cow = C.Image.clone();
    MultiRun A = runInvocationsOn(*C.F, C.PR.Scalar, Cow, C.Invocations);
    EXPECT_TRUE(A.Ok) << Name;
    TotalCopies += A.CowCopies;
  }
  EXPECT_GT(TotalCopies, 0u) << "no corpus run ever wrote a shared page";
}

//===----------------------------------------------------------------------===//
// Fault injection: faulting runs against a COW clone leave the shared
// base pristine, and behave identically to the same faults against a deep
// clone.
//===----------------------------------------------------------------------===//

TEST(CowFaultDifferential, InjectedFaultsNeverLeakIntoTheSharedBase) {
  for (const char *Name : {"histogram_weighted", "update_conflict"}) {
    CorpusCase C = buildCorpusCase(Name);
    uint64_t BaseFp = C.Image.fingerprint();
    // Persistent faults over the first page of every array, at a
    // probability high enough that some run faults and low enough that
    // some complete.
    for (uint64_t Seed : {11u, 22u, 33u}) {
      faults::MemFaultPlan Plan;
      Plan.Seed = Seed;
      for (uint64_t Base : C.Invocations[0].ArrayBases)
        Plan.Ranges.push_back({Base, Base + mem::PageSize, /*Prob=*/0.05,
                               faults::FaultDuration::Persistent});

      faults::FaultInjector InjCow(Plan);
      faults::FaultInjector InjDeep(Plan);
      mem::Memory Cow = C.Image.clone();
      mem::Memory Deep = C.Image.deepClone();
      MultiRun A =
          runInvocationsOn(*C.F, C.PR.Scalar, Cow, C.Invocations, &InjCow);
      MultiRun B =
          runInvocationsOn(*C.F, C.PR.Scalar, Deep, C.Invocations, &InjDeep);

      // Same fault schedule against the same access sequence: identical
      // outcome, whether pages were shared or eagerly copied.
      EXPECT_EQ(A.Ok, B.Ok) << Name << " seed " << Seed;
      EXPECT_EQ(A.Fp, B.Fp) << Name << " seed " << Seed;
      EXPECT_EQ(A.LiveOutHash, B.LiveOutHash) << Name << " seed " << Seed;
      EXPECT_EQ(InjCow.stats().MemFaultsInjected,
                InjDeep.stats().MemFaultsInjected)
          << Name << " seed " << Seed;

      // Whatever happened — completed, faulted mid-run, partial writes
      // before the fault — the shared base never changes.
      EXPECT_EQ(C.Image.fingerprint(), BaseFp)
          << Name << " seed " << Seed << ": faulting run mutated the base";
    }
  }
}

} // namespace
